#include "hetpar/support/log.hpp"

#include <atomic>
#include <cstdio>

namespace hetpar::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::Warn)};

const char* name(Level lvl) {
  switch (lvl) {
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}
}  // namespace

Level level() { return static_cast<Level>(g_level.load(std::memory_order_relaxed)); }

Level setLevel(Level lvl) {
  return static_cast<Level>(
      g_level.exchange(static_cast<int>(lvl), std::memory_order_relaxed));
}

void emit(Level lvl, const std::string& message) {
  if (static_cast<int>(lvl) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[hetpar %s] %s\n", name(lvl), message.c_str());
}

}  // namespace hetpar::log
