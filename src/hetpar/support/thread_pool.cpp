#include "hetpar/support/thread_pool.hpp"

#include <exception>

#include "hetpar/support/log.hpp"

namespace hetpar::support {

ThreadPool::ThreadPool(int numThreads) {
  const int n = numThreads < 1 ? 1 : numThreads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (const std::exception& e) {
      log::error() << "thread pool task escaped with: " << e.what();
    } catch (...) {
      log::error() << "thread pool task escaped with a non-std exception";
    }
  }
}

int ThreadPool::resolveJobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace hetpar::support
