// Minimal leveled logger.
//
// hetpar libraries log at most at `Debug`/`Info`; tools may raise the level.
// The level is an atomic and each line is emitted with a single fprintf, so
// logging from the solve engine's worker threads is safe (lines never tear,
// though their interleaving across threads is unspecified).
#pragma once

#include <sstream>
#include <string>

namespace hetpar::log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the current global log level.
Level level();

/// Sets the global log level. Returns the previous level.
Level setLevel(Level lvl);

/// Emits one log line at `lvl` if `lvl >= level()`.
void emit(Level lvl, const std::string& message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lvl) : lvl_(lvl) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { emit(lvl_, os_.str()); }
  template <class T>
  LineStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::Debug); }
inline detail::LineStream info() { return detail::LineStream(Level::Info); }
inline detail::LineStream warn() { return detail::LineStream(Level::Warn); }
inline detail::LineStream error() { return detail::LineStream(Level::Error); }

/// RAII guard that restores the previous log level on destruction.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level lvl) : prev_(setLevel(lvl)) {}
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;
  ~ScopedLevel() { setLevel(prev_); }

 private:
  Level prev_;
};

}  // namespace hetpar::log
