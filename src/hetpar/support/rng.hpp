// Deterministic pseudo-random number generator (splitmix64 / xoshiro256**).
//
// hetpar uses randomness only in tests, benchmark workload generators, and
// solver tie-breaking experiments; reproducibility across platforms matters
// more than statistical strength, so we fix the algorithm instead of relying
// on implementation-defined std::default_random_engine.
#pragma once

#include <cstdint>

namespace hetpar {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace hetpar
