#include "hetpar/support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace hetpar::strings {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatMinSec(double seconds) {
  if (seconds < 0) seconds = 0;
  long long total = static_cast<long long>(std::llround(seconds));
  long long mins = total / 60;
  long long secs = total % 60;
  return format("%02lld:%02lld", mins, secs);
}

std::string formatThousands(long long n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace hetpar::strings
