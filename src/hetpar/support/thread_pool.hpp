// Fixed-size worker pool for the concurrent solve engine.
//
// Deliberately minimal: a locked FIFO queue and a fixed number of workers,
// no work stealing. hetpar's units of work (one ILP lane, one HTG node
// merge) are large enough that queue contention is irrelevant next to the
// simplex pivots they run, so the simplest scheduler that preserves
// submission order is the right one. Tasks posted with `post` must not
// throw (the engine wraps its continuations); tasks submitted with `submit`
// propagate exceptions through the returned future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace hetpar::support {

class ThreadPool {
 public:
  /// Spawns `numThreads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int numThreads);

  /// Drains the queue (remaining tasks run, nothing is dropped) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues fire-and-forget work. An escaping exception is logged and
  /// swallowed (use `submit` when the caller needs the error).
  void post(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result; exceptions thrown
  /// by `fn` are rethrown from future.get().
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    post([task] { (*task)(); });
    return result;
  }

  /// Resolves a `--jobs` style request: values >= 1 pass through, anything
  /// else (0, negative) maps to the hardware concurrency (at least 1).
  static int resolveJobs(int requested);

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hetpar::support
