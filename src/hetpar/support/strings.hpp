// Small string utilities used across hetpar (parsers, report printers).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hetpar::strings {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view s);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Renders `seconds` as "MM:SS" (paper's Table I time format).
std::string formatMinSec(double seconds);

/// Renders `n` with thousands separators, e.g. 242382 -> "242,382".
std::string formatThousands(long long n);

/// printf-style helper returning std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hetpar::strings
