// Error handling primitives shared by all hetpar subsystems.
//
// hetpar reports unrecoverable misuse and internal invariant violations via
// exceptions derived from hetpar::Error so that callers (tests, tools) can
// distinguish library failures from std:: failures.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace hetpar {

/// Base class of all exceptions thrown by hetpar.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Thrown when input source code cannot be lexed/parsed/analyzed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a semantic check on otherwise well-formed input fails.
class SemaError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an ILP model is malformed or a solve fails unexpectedly.
class SolverError : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant is violated (a hetpar bug, not user error).
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throwInternal(const char* cond, const char* file, int line,
                                       const std::string& what) {
  throw InternalError(std::string("internal invariant violated: ") + cond + " at " + file + ":" +
                      std::to_string(line) + (what.empty() ? "" : (": " + what)));
}
}  // namespace detail

/// Checks a hetpar-internal invariant; throws InternalError on failure.
/// Active in all build types: the costs are negligible next to ILP solving.
#define HETPAR_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) ::hetpar::detail::throwInternal(#cond, __FILE__, __LINE__, \
                                                 std::string{});            \
  } while (false)

#define HETPAR_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) ::hetpar::detail::throwInternal(#cond, __FILE__, __LINE__, \
                                                 (msg));                    \
  } while (false)

/// Validates a user-facing precondition; throws the given exception type.
template <class Exc = Error>
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Exc(message);
}

}  // namespace hetpar
