// Mini-C sources for the benchmark suite. Workloads synthesize their own
// input data (fixed arithmetic patterns), so runs are deterministic and the
// checksums returned from main() double as correctness probes.
#include "hetpar/benchsuite/sources.hpp"

namespace hetpar::benchsuite::sources {

// ADPCM speech encoder, frame-based: each frame is encoded independently
// with a frame-local predictor (standard frame-reset encoding), so the
// frame loop is DOALL while the per-sample encoding inside a frame stays
// strictly sequential (predictor adaptation).
const char* kAdpcmEnc = R"(
int input[16][256];
int code[16][256];

int main() {
  for (int f = 0; f < 16; f = f + 1) {
    for (int s = 0; s < 256; s = s + 1) {
      input[f][s] = (f * 131 + s * 37) % 255 - 127;
    }
  }
  for (int f = 0; f < 16; f = f + 1) {
    int predicted = 0;
    int step = 16;
    for (int s = 0; s < 256; s = s + 1) {
      int diff = input[f][s] - predicted;
      int sign = 0;
      if (diff < 0) { sign = 8; diff = -diff; }
      int delta = 0;
      if (diff >= step) { delta = 4; diff = diff - step; }
      if (2 * diff >= step) { delta = delta + 2; diff = diff - step / 2; }
      if (4 * diff >= step) { delta = delta + 1; }
      code[f][s] = sign + delta;
      int vpdiff = step / 8;
      if (delta >= 4) { vpdiff = vpdiff + step; }
      if (delta - 4 >= 2 || delta >= 2 && delta < 4) { vpdiff = vpdiff + step / 2; }
      if (delta % 2 == 1) { vpdiff = vpdiff + step / 4; }
      if (sign > 0) { predicted = predicted - vpdiff; } else { predicted = predicted + vpdiff; }
      if (predicted > 127) { predicted = 127; }
      if (predicted < -128) { predicted = -128; }
      step = step + step / 4 + delta * 2;
      if (step < 16) { step = 16; }
      if (step > 1024) { step = 1024; }
    }
  }
  int sum = 0;
  for (int f = 0; f < 16; f = f + 1) {
    for (int s = 0; s < 256; s = s + 1) {
      sum = sum + code[f][s];
    }
  }
  return sum;
}
)";

// Boundary value problem (1-D heat equation, Jacobi relaxation): each sweep
// reads one grid and writes the other, so both inner loops are DOALL; the
// outer time loop carries the ping-pong dependence.
const char* kBoundaryValue = R"(
double grid[8194];
double next[8194];

int main() {
  for (int i = 0; i < 8194; i = i + 1) {
    grid[i] = 0.0;
    next[i] = 0.0;
  }
  grid[0] = 100.0;
  grid[8193] = -40.0;
  next[0] = 100.0;
  next[8193] = -40.0;
  for (int t = 0; t < 6; t = t + 1) {
    for (int i = 1; i < 8193; i = i + 1) {
      next[i] = 0.5 * (grid[i - 1] + grid[i + 1]) + 0.01;
    }
    for (int i = 1; i < 8193; i = i + 1) {
      grid[i] = next[i];
    }
  }
  double acc = 0.0;
  for (int i = 0; i < 8194; i = i + 1) {
    acc = acc + grid[i];
  }
  int checksum = acc;
  return checksum;
}
)";

// Image compression: blockwise 1-D DCT (the separable kernel of JPEG-style
// coders) plus quantization. Blocks are independent, the dominant
// block/coefficient loops are DOALL -- the paper's best-performing shape.
const char* kCompress = R"(
double blocks[48][64];
double coeff[48][64];
double basis[64][64];
int quant[48][64];

int main() {
  for (int u = 0; u < 64; u = u + 1) {
    for (int k = 0; k < 64; k = k + 1) {
      basis[u][k] = cos(3.14159265 / 64.0 * (k + 0.5) * u);
    }
  }
  for (int b = 0; b < 48; b = b + 1) {
    for (int k = 0; k < 64; k = k + 1) {
      blocks[b][k] = (b * 7 + k * 3) % 61 - 30;
    }
  }
  for (int b = 0; b < 48; b = b + 1) {
    for (int u = 0; u < 64; u = u + 1) {
      double acc = 0.0;
      for (int k = 0; k < 64; k = k + 1) {
        acc = acc + blocks[b][k] * basis[u][k];
      }
      coeff[b][u] = acc;
    }
  }
  for (int b = 0; b < 48; b = b + 1) {
    for (int u = 0; u < 64; u = u + 1) {
      int q = coeff[b][u] / (1.0 + u);
      quant[b][u] = q;
    }
  }
  int sum = 0;
  for (int b = 0; b < 48; b = b + 1) {
    for (int u = 0; u < 64; u = u + 1) {
      sum = sum + quant[b][u];
    }
  }
  return sum;
}
)";

// Sobel edge detection over a synthetic image: the row loop is DOALL (the
// input image is read-only, each output row is written at its own index).
const char* kEdgeDetect = R"(
int image[96][96];
int edges[96][96];

int main() {
  for (int i = 0; i < 96; i = i + 1) {
    for (int j = 0; j < 96; j = j + 1) {
      image[i][j] = (i * i + j * 3 + i * j) % 256;
      edges[i][j] = 0;
    }
  }
  for (int i = 1; i < 95; i = i + 1) {
    for (int j = 1; j < 95; j = j + 1) {
      int gx = image[i - 1][j + 1] + 2 * image[i][j + 1] + image[i + 1][j + 1]
             - image[i - 1][j - 1] - 2 * image[i][j - 1] - image[i + 1][j - 1];
      int gy = image[i + 1][j - 1] + 2 * image[i + 1][j] + image[i + 1][j + 1]
             - image[i - 1][j - 1] - 2 * image[i - 1][j] - image[i - 1][j + 1];
      int mag = abs(gx) + abs(gy);
      if (mag > 255) { mag = 255; }
      edges[i][j] = mag;
    }
  }
  int sum = 0;
  for (int i = 0; i < 96; i = i + 1) {
    for (int j = 0; j < 96; j = j + 1) {
      sum = sum + edges[i][j];
    }
  }
  return sum;
}
)";

// Filter bank: eight FIR filters with distinct coefficient sets applied to
// one input stream. The bank loop is DOALL (8-way, coarse), and each bank's
// sample loop is DOALL as well, giving the hierarchy a choice of levels.
const char* kFilterbank = R"(
double signal[288];
double coeffs[8][32];
double outputs[8][256];

int main() {
  for (int n = 0; n < 288; n = n + 1) {
    signal[n] = sin(0.02 * n) + 0.3 * sin(0.11 * n);
  }
  for (int m = 0; m < 8; m = m + 1) {
    for (int t = 0; t < 32; t = t + 1) {
      coeffs[m][t] = cos(0.05 * (m + 1) * t) / 32.0;
    }
  }
  for (int m = 0; m < 8; m = m + 1) {
    for (int n = 0; n < 256; n = n + 1) {
      double acc = 0.0;
      for (int t = 0; t < 32; t = t + 1) {
        acc = acc + coeffs[m][t] * signal[n + t];
      }
      outputs[m][n] = acc;
    }
  }
  double total = 0.0;
  for (int m = 0; m < 8; m = m + 1) {
    for (int n = 0; n < 256; n = n + 1) {
      total = total + outputs[m][n] * outputs[m][n];
    }
  }
  int checksum = total * 1000.0;
  return checksum;
}
)";

// 256-tap FIR filter: every output sample only reads the (read-only) input
// window, so the sample loop is perfectly DOALL.
const char* kFir256 = R"(
double x[768];
double h[256];
double y[512];

int main() {
  for (int n = 0; n < 768; n = n + 1) {
    x[n] = sin(0.01 * n) * (1.0 + 0.001 * n);
  }
  for (int k = 0; k < 256; k = k + 1) {
    h[k] = cos(0.007 * k) / 256.0;
  }
  for (int n = 0; n < 512; n = n + 1) {
    double acc = 0.0;
    for (int k = 0; k < 256; k = k + 1) {
      acc = acc + h[k] * x[n + k];
    }
    y[n] = acc;
  }
  double total = 0.0;
  for (int n = 0; n < 512; n = n + 1) {
    total = total + y[n];
  }
  int checksum = total * 1000.0;
  return checksum;
}
)";

// 4th-order IIR (cascaded biquads) over eight independent channels.
// Within a channel the recursion is strictly sequential; across channels
// the work is DOALL with per-channel state arrays.
const char* kIir4 = R"(
double iirin[8][1024];
double iirout[8][1024];
double state[8][8];

int main() {
  for (int c = 0; c < 8; c = c + 1) {
    for (int n = 0; n < 1024; n = n + 1) {
      iirin[c][n] = sin(0.015 * n * (c + 1));
    }
    for (int k = 0; k < 8; k = k + 1) {
      state[c][k] = 0.0;
    }
  }
  for (int c = 0; c < 8; c = c + 1) {
    for (int n = 0; n < 1024; n = n + 1) {
      double v = iirin[c][n];
      for (int s = 0; s < 4; s = s + 1) {
        double w = v - 0.4 * state[c][2 * s] - 0.1 * state[c][2 * s + 1];
        v = w + 0.6 * state[c][2 * s] + 0.3 * state[c][2 * s + 1];
        state[c][2 * s + 1] = state[c][2 * s];
        state[c][2 * s] = w;
      }
      iirout[c][n] = v;
    }
  }
  double total = 0.0;
  for (int c = 0; c < 8; c = c + 1) {
    for (int n = 0; n < 1024; n = n + 1) {
      total = total + iirout[c][n] * iirout[c][n];
    }
  }
  int checksum = total * 100.0;
  return checksum;
}
)";

// 32nd-order normalized lattice filter, frame-based: each frame runs the
// lattice recursion sequentially over its samples (stage state carried),
// frames are independent. Only 8 coarse frames exist, so balancing options
// are limited -- the paper singles latnrm out for exactly that reason.
const char* kLatnrm32 = R"(
double frames[8][512];
double latout[8][512];
double kcoef[32];
double lstate[8][33];

int main() {
  for (int k = 0; k < 32; k = k + 1) {
    kcoef[k] = 0.9 / (1.0 + k);
  }
  for (int f = 0; f < 8; f = f + 1) {
    for (int n = 0; n < 512; n = n + 1) {
      frames[f][n] = sin(0.02 * n + f);
    }
    for (int k = 0; k < 33; k = k + 1) {
      lstate[f][k] = 0.0;
    }
  }
  for (int f = 0; f < 8; f = f + 1) {
    for (int n = 0; n < 512; n = n + 1) {
      double fwd = frames[f][n];
      for (int k = 0; k < 32; k = k + 1) {
        double up = fwd - kcoef[k] * lstate[f][k];
        lstate[f][k] = lstate[f][k] + kcoef[k] * up;
        fwd = up;
      }
      latout[f][n] = fwd;
    }
  }
  double total = 0.0;
  for (int f = 0; f < 8; f = f + 1) {
    for (int n = 0; n < 512; n = n + 1) {
      total = total + latout[f][n] * latout[f][n];
    }
  }
  int checksum = total * 100.0;
  return checksum;
}
)";

// Dense matrix multiply (the UTDSP "mult" kernel scaled up): the row loop
// is DOALL and arithmetic-dominated -- the other best-performing shape.
const char* kMult10 = R"(
double A[40][40];
double B[40][40];
double Cm[40][40];

int main() {
  for (int i = 0; i < 40; i = i + 1) {
    for (int j = 0; j < 40; j = j + 1) {
      A[i][j] = (i * 3 + j * 7) % 23 * 0.5;
      B[i][j] = (i * 5 + j * 2) % 19 * 0.25;
    }
  }
  for (int i = 0; i < 40; i = i + 1) {
    for (int j = 0; j < 40; j = j + 1) {
      double acc = 0.0;
      for (int k = 0; k < 40; k = k + 1) {
        acc = acc + A[i][k] * B[k][j];
      }
      Cm[i][j] = acc;
    }
  }
  double total = 0.0;
  for (int i = 0; i < 40; i = i + 1) {
    for (int j = 0; j < 40; j = j + 1) {
      total = total + Cm[i][j];
    }
  }
  int checksum = total;
  return checksum;
}
)";

// Spectral analysis (periodogram): window, naive DFT, power spectrum, and a
// recursive smoothing pass. The smoothing stage is carried and the stages
// exchange whole arrays, giving this kernel the "higher communication load"
// the paper attributes to spectral.
const char* kSpectral = R"(
double sig[256];
double windowed[256];
double costab[128][256];
double sintab[128][256];
double power[128];
double smooth[128];

int main() {
  for (int n = 0; n < 256; n = n + 1) {
    sig[n] = sin(0.05 * n) + 0.5 * cos(0.13 * n) + 0.1 * sin(0.31 * n);
  }
  for (int k = 0; k < 128; k = k + 1) {
    for (int n = 0; n < 256; n = n + 1) {
      costab[k][n] = cos(0.0245436926 * k * n);
      sintab[k][n] = sin(0.0245436926 * k * n);
    }
  }
  for (int n = 0; n < 256; n = n + 1) {
    windowed[n] = sig[n] * (0.54 - 0.46 * cos(0.0245436926 * n));
  }
  for (int k = 0; k < 128; k = k + 1) {
    double re = 0.0;
    double im = 0.0;
    for (int n = 0; n < 256; n = n + 1) {
      re = re + windowed[n] * costab[k][n];
      im = im - windowed[n] * sintab[k][n];
    }
    power[k] = re * re + im * im;
  }
  smooth[0] = power[0];
  for (int k = 1; k < 128; k = k + 1) {
    smooth[k] = 0.7 * power[k] + 0.3 * smooth[k - 1];
  }
  double total = 0.0;
  for (int k = 0; k < 128; k = k + 1) {
    total = total + smooth[k];
  }
  int checksum = total;
  return checksum;
}
)";

}  // namespace hetpar::benchsuite::sources
