// The evaluation workloads (paper Section VI): mini-C re-creations of the
// UTDSP benchmarks the paper parallelizes, plus the boundary-value problem
// from the physical application domain.
//
// Each kernel keeps the structural skeleton of its namesake — the loop
// shapes, data layouts, and dependence patterns that decide how much
// task/loop parallelism exists — so the HTGs, ILP sizes, and achievable
// speedups match the paper's qualitative pattern. Sizes are scaled so the
// abstract-op totals profile in well under a second while keeping the
// task-creation overhead small relative to real work.
#pragma once

#include <string>
#include <vector>

namespace hetpar::benchsuite {

struct Benchmark {
  std::string name;         ///< Table I row name
  std::string description;  ///< one-line domain description
  const char* source;       ///< mini-C program
};

/// All ten benchmarks in the paper's Table I order.
const std::vector<Benchmark>& suite();

/// Lookup by name; throws hetpar::Error for unknown names.
const Benchmark& find(const std::string& name);

}  // namespace hetpar::benchsuite
