// Raw mini-C sources for the benchmark suite (see suite.hpp).
#pragma once

namespace hetpar::benchsuite::sources {

extern const char* kAdpcmEnc;
extern const char* kBoundaryValue;
extern const char* kCompress;
extern const char* kEdgeDetect;
extern const char* kFilterbank;
extern const char* kFir256;
extern const char* kIir4;
extern const char* kLatnrm32;
extern const char* kMult10;
extern const char* kSpectral;

}  // namespace hetpar::benchsuite::sources
