#include "hetpar/benchsuite/suite.hpp"

#include "hetpar/benchsuite/sources.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::benchsuite {

const std::vector<Benchmark>& suite() {
  static const std::vector<Benchmark> kSuite = {
      {"adpcm_enc", "frame-based ADPCM speech encoder", sources::kAdpcmEnc},
      {"bound_value", "1-D boundary value problem (Jacobi relaxation)",
       sources::kBoundaryValue},
      {"compress", "blockwise DCT image compression", sources::kCompress},
      {"edge_detect", "Sobel edge detection", sources::kEdgeDetect},
      {"filterbank", "8-band FIR filter bank", sources::kFilterbank},
      {"fir_256", "256-tap FIR filter", sources::kFir256},
      {"iir_4", "4th-order IIR over independent channels", sources::kIir4},
      {"latnrm_32", "32nd-order normalized lattice filter (frame-based)",
       sources::kLatnrm32},
      {"mult_10", "dense matrix multiplication", sources::kMult10},
      {"spectral", "spectral analysis / periodogram", sources::kSpectral},
  };
  return kSuite;
}

const Benchmark& find(const std::string& name) {
  for (const Benchmark& b : suite())
    if (b.name == name) return b;
  throw Error("unknown benchmark '" + name + "'");
}

}  // namespace hetpar::benchsuite
