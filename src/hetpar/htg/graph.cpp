#include "hetpar/htg/graph.hpp"

#include "hetpar/support/error.hpp"

namespace hetpar::htg {

NodeId Graph::addNode(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  nodes_.push_back(std::move(node));
  return id;
}

Node& Graph::node(NodeId id) {
  HETPAR_CHECK_MSG(id >= 0 && id < static_cast<NodeId>(nodes_.size()), "bad node id");
  return nodes_[static_cast<std::size_t>(id)];
}

const Node& Graph::node(NodeId id) const {
  HETPAR_CHECK_MSG(id >= 0 && id < static_cast<NodeId>(nodes_.size()), "bad node id");
  return nodes_[static_cast<std::size_t>(id)];
}

double Graph::subtreeOpsPerExec(NodeId id) const {
  const Node& n = node(id);
  double ops = n.opsPerExec;
  if (n.isHierarchical()) {
    for (NodeId c : n.children) {
      const Node& child = node(c);
      const double ratio = n.execCount > 0 ? child.execCount / n.execCount : 0.0;
      ops += ratio * subtreeOpsPerExec(c);
    }
  }
  return ops;
}

cost::OpMix Graph::subtreeMixPerExec(NodeId id) const {
  const Node& n = node(id);
  cost::OpMix mix = n.mixPerExec;
  if (n.isHierarchical()) {
    for (NodeId c : n.children) {
      const Node& child = node(c);
      const double ratio = n.execCount > 0 ? child.execCount / n.execCount : 0.0;
      mix += subtreeMixPerExec(c) * ratio;
    }
  }
  return mix;
}

void Graph::forEach(const std::function<void(const Node&)>& fn) const {
  if (root_ == kNoNode) return;
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    fn(n);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) stack.push_back(*it);
  }
}

int Graph::hierarchicalCount() const {
  int count = 0;
  forEach([&](const Node& n) {
    if (n.isHierarchical()) ++count;
  });
  return count;
}

}  // namespace hetpar::htg
