#include "hetpar/htg/dot.hpp"

#include <sstream>

#include "hetpar/support/strings.hpp"

namespace hetpar::htg {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emitNode(std::ostringstream& os, const Graph& g, NodeId id, int depth,
              const Graph* baseline) {
  const Node& n = g.node(id);
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (!n.isHierarchical()) {
    os << indent << "n" << n.id << " [label=\"" << escape(n.label) << "\\nEC="
       << strings::format("%.0f", n.execCount) << " ops="
       << strings::format("%.1f", n.opsPerExec) << "\", shape=box];\n";
    return;
  }
  os << indent << "subgraph cluster_" << n.id << " {\n";
  os << indent << "  label=\"" << escape(n.label);
  if (n.kind == NodeKind::Loop)
    os << (n.doall ? " [doall]" : " [serial]") << " iter="
       << strings::format("%.0f", n.iterationsPerExec);
  os << "\";\n";
  os << indent << "  n" << n.commIn << " [label=\"comm-in\", shape=ellipse];\n";
  os << indent << "  n" << n.commOut << " [label=\"comm-out\", shape=ellipse];\n";
  for (NodeId c : n.children) emitNode(os, g, c, depth + 1, baseline);
  for (const Edge& e : n.edges) {
    os << indent << "  n" << e.from << " -> n" << e.to;
    os << " [label=\"";
    if (e.kind == ir::DepKind::Flow) {
      os << e.bytes << "B";
      if (baseline != nullptr) {
        // Liveness pruning can shrink a payload without dropping the edge;
        // show the conservative size so the reduction is visible.
        for (const Edge& be : baseline->node(id).edges)
          if (be.from == e.from && be.to == e.to && be.kind == e.kind) {
            if (be.bytes > e.bytes) os << " (was " << be.bytes << "B)";
            break;
          }
      }
    } else {
      os << (e.kind == ir::DepKind::Anti ? "anti" : "out");
    }
    os << "\"";
    if (e.kind != ir::DepKind::Flow) os << ", style=dashed";
    os << "];\n";
  }
  if (baseline != nullptr) {
    // Baseline edges this graph dropped: what the affine analysis pruned.
    const Node& bn = baseline->node(id);
    for (const Edge& be : bn.edges) {
      bool kept = false;
      for (const Edge& e : n.edges)
        if (e.from == be.from && e.to == be.to && e.kind == be.kind) {
          kept = true;
          break;
        }
      if (kept) continue;
      os << indent << "  n" << be.from << " -> n" << be.to << " [label=\"pruned";
      if (be.kind == ir::DepKind::Flow) os << " " << be.bytes << "B";
      os << "\", style=dotted, color=grey, fontcolor=grey];\n";
    }
  }
  os << indent << "}\n";
}

std::string render(const Graph& graph, const Graph* baseline) {
  std::ostringstream os;
  os << "digraph htg {\n";
  os << "  rankdir=TB;\n  node [fontsize=10];\n";
  if (graph.root() != kNoNode) emitNode(os, graph, graph.root(), 1, baseline);
  os << "}\n";
  return os.str();
}

}  // namespace

std::string toDot(const Graph& graph) { return render(graph, nullptr); }

std::string toDotWithBaseline(const Graph& graph, const Graph& baseline) {
  return render(graph, &baseline);
}

}  // namespace hetpar::htg
