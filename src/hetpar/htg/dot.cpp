#include "hetpar/htg/dot.hpp"

#include <sstream>

#include "hetpar/support/strings.hpp"

namespace hetpar::htg {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void emitNode(std::ostringstream& os, const Graph& g, NodeId id, int depth) {
  const Node& n = g.node(id);
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (!n.isHierarchical()) {
    os << indent << "n" << n.id << " [label=\"" << escape(n.label) << "\\nEC="
       << strings::format("%.0f", n.execCount) << " ops="
       << strings::format("%.1f", n.opsPerExec) << "\", shape=box];\n";
    return;
  }
  os << indent << "subgraph cluster_" << n.id << " {\n";
  os << indent << "  label=\"" << escape(n.label);
  if (n.kind == NodeKind::Loop)
    os << (n.doall ? " [doall]" : " [serial]") << " iter="
       << strings::format("%.0f", n.iterationsPerExec);
  os << "\";\n";
  os << indent << "  n" << n.commIn << " [label=\"comm-in\", shape=ellipse];\n";
  os << indent << "  n" << n.commOut << " [label=\"comm-out\", shape=ellipse];\n";
  for (NodeId c : n.children) emitNode(os, g, c, depth + 1);
  for (const Edge& e : n.edges) {
    os << indent << "  n" << e.from << " -> n" << e.to;
    os << " [label=\"";
    if (e.kind == ir::DepKind::Flow) os << e.bytes << "B";
    else os << (e.kind == ir::DepKind::Anti ? "anti" : "out");
    os << "\"";
    if (e.kind != ir::DepKind::Flow) os << ", style=dashed";
    os << "];\n";
  }
  os << indent << "}\n";
}

}  // namespace

std::string toDot(const Graph& graph) {
  std::ostringstream os;
  os << "digraph htg {\n";
  os << "  rankdir=TB;\n  node [fontsize=10];\n";
  if (graph.root() != kNoNode) emitNode(os, graph, graph.root(), 1);
  os << "}\n";
  return os.str();
}

}  // namespace hetpar::htg
