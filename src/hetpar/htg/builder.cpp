#include "hetpar/htg/builder.hpp"

#include <algorithm>

#include "hetpar/cost/interp.hpp"
#include "hetpar/frontend/parser.hpp"
#include "hetpar/frontend/printer.hpp"
#include "hetpar/ir/looppar.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::htg {

using namespace frontend;

namespace {

/// True when the statement is a whole-statement call to a user function
/// (`f(...)` or `x = f(...)`); returns the call expression.
const CallExpr* wholeStatementCall(const Stmt& stmt) {
  const Expr* e = nullptr;
  if (stmt.kind == StmtKind::Expr) e = static_cast<const ExprStmt&>(stmt).expr.get();
  else if (stmt.kind == StmtKind::Assign) e = static_cast<const AssignStmt&>(stmt).value.get();
  if (e == nullptr || e->kind != ExprKind::Call) return nullptr;
  const auto& call = static_cast<const CallExpr&>(*e);
  return isBuiltinFunction(call.callee) ? nullptr : &call;
}

class Builder {
 public:
  explicit Builder(const BuildInputs& in) : in_(in) {}

  Graph build() {
    const Function& main = in_.program.entry();
    Node root;
    root.kind = NodeKind::Root;
    root.scope = &main;
    root.execCount = 1.0;
    root.label = "main";
    const NodeId rootId = graph_.addNode(std::move(root));
    graph_.setRoot(rootId);

    std::vector<const Stmt*> stmts;
    for (const auto& s : main.body) stmts.push_back(s.get());
    buildRegion(rootId, stmts, &main, 1.0);
    return std::move(graph_);
  }

 private:
  /// Absolute profiled ops of the statement subtree (inclusive of calls,
  /// which the profiler attributes to call-site statements).
  double absSubtreeOps(const Stmt& stmt) const {
    double total = 0.0;
    forEachStmt(const_cast<Stmt&>(stmt), [&](Stmt& s) {
      total += in_.profile.of(s.id).ops;
    });
    return total;
  }

  /// Per-kind version of absSubtreeOps.
  cost::OpMix absSubtreeMix(const Stmt& stmt) const {
    cost::OpMix total;
    forEachStmt(const_cast<Stmt&>(stmt), [&](Stmt& s) {
      total += in_.profile.of(s.id).mix;
    });
    // forEachStmt visits nested statements; ops of statements *below* a
    // simple statement do not exist, and hierarchical headers plus children
    // partition the work, so the plain sum is the inclusive total. The one
    // exception is the attribution overlap between a call-site statement and
    // statements under `if`/loops *inside the callee* — those live in the
    // callee's body, outside this subtree, so no double counting occurs.
    return total;
  }

  double execOf(const Stmt& stmt) const {
    return static_cast<double>(in_.profile.of(stmt.id).execCount);
  }

  /// Builds the node for one statement; returns its id.
  NodeId buildStmtNode(const Stmt& stmt, const Function* scope, double execScale) {
    const double exec = execOf(stmt) * execScale;

    if (stmt.kind == StmtKind::For || stmt.kind == StmtKind::While) {
      const auto children = childStatements(const_cast<Stmt&>(stmt));
      if (!children.empty() && exec > 0) return buildLoopNode(stmt, scope, execScale);
    }
    if (const CallExpr* call = wholeStatementCall(stmt)) {
      const Function* callee = in_.program.findFunction(call->callee);
      HETPAR_CHECK(callee != nullptr);
      const double share = in_.profile.callShare(stmt.id, call->callee);
      if (!callee->body.empty() && share > 0 && exec > 0)
        return buildCallNode(stmt, *callee, execScale, share);
    }
    if (stmt.kind == StmtKind::Block) {
      const auto children = childStatements(const_cast<Stmt&>(stmt));
      if (!children.empty()) {
        Node n;
        n.kind = NodeKind::Block;
        n.stmt = &stmt;
        n.scope = scope;
        n.execCount = exec;
        n.opsPerExec = 0.0;
        n.label = "block";
        const NodeId id = graph_.addNode(std::move(n));
        std::vector<const Stmt*> stmts(children.begin(), children.end());
        buildRegion(id, stmts, scope, execScale);
        return id;
      }
    }

    // Leaf (Simple Node): inclusive cost.
    Node n;
    n.kind = NodeKind::Simple;
    n.stmt = &stmt;
    n.scope = scope;
    n.execCount = exec;
    if (execOf(stmt) > 0) {
      n.opsPerExec = absSubtreeOps(stmt) / execOf(stmt);
      n.mixPerExec = absSubtreeMix(stmt) * (1.0 / execOf(stmt));
    }
    n.label = leafLabel(stmt);
    return graph_.addNode(std::move(n));
  }

  NodeId buildLoopNode(const Stmt& stmt, const Function* scope, double execScale) {
    Node n;
    n.kind = NodeKind::Loop;
    n.stmt = &stmt;
    n.scope = scope;
    n.execCount = execOf(stmt) * execScale;
    n.opsPerExec = in_.profile.of(stmt.id).opsPerExec();  // loop-control header
    n.mixPerExec = in_.profile.of(stmt.id).mixPerExec();
    n.label = stmt.kind == StmtKind::For ? "for" : "while";

    if (stmt.kind == StmtKind::For) {
      const ir::LoopParallelism lp =
          ir::analyzeLoop(static_cast<const ForStmt&>(stmt), in_.defuse, scope);
      n.doall = lp.isDoall;
      n.reductionVars = lp.reductions;
      n.doallReason = lp.reason;
    } else {
      n.doallReason = "while loops have unknown iteration spaces";
    }

    const NodeId id = graph_.addNode(std::move(n));
    const auto children = childStatements(const_cast<Stmt&>(stmt));
    std::vector<const Stmt*> stmts(children.begin(), children.end());
    buildRegion(id, stmts, scope, execScale);

    // Iterations per execution: the most frequently executed direct child
    // runs once per iteration.
    Node& loopNode = graph_.node(id);
    double maxChildExec = 0.0;
    for (NodeId c : loopNode.children)
      maxChildExec = std::max(maxChildExec, graph_.node(c).execCount);
    loopNode.iterationsPerExec =
        loopNode.execCount > 0 ? std::max(1.0, maxChildExec / loopNode.execCount) : 1.0;
    return id;
  }

  NodeId buildCallNode(const Stmt& stmt, const Function& callee, double execScale,
                       double share) {
    Node n;
    n.kind = NodeKind::Call;
    n.stmt = &stmt;
    n.scope = &callee;  // children live in the callee's scope
    n.execCount = execOf(stmt) * execScale;
    n.label = "call " + callee.name;

    const NodeId id = graph_.addNode(std::move(n));
    std::vector<const Stmt*> stmts;
    for (const auto& s : callee.body) stmts.push_back(s.get());
    // Children execution counts: profile totals are aggregated over all call
    // sites; this subtree owns `share` of them.
    buildRegion(id, stmts, &callee, execScale * share);

    // Header cost: the call-site statement's inclusive cost minus the work
    // performed by the callee body per call.
    Node& callNode = graph_.node(id);
    cost::OpMix calleeWork;
    for (NodeId c : callNode.children) {
      const Node& child = graph_.node(c);
      if (callNode.execCount > 0)
        calleeWork += graph_.subtreeMixPerExec(c) * (child.execCount / callNode.execCount);
    }
    const cost::OpMix inclusive =
        execOf(stmt) > 0 ? absSubtreeMix(stmt) * (1.0 / execOf(stmt)) : cost::OpMix{};
    callNode.mixPerExec = inclusive.minusClamped(calleeWork);
    callNode.opsPerExec = callNode.mixPerExec.total();
    return id;
  }

  /// Creates children + comm nodes + edges for a hierarchical node.
  void buildRegion(NodeId parentId, const std::vector<const Stmt*>& stmts,
                   const Function* scope, double execScale) {
    std::vector<NodeId> childIds;
    childIds.reserve(stmts.size());
    for (const Stmt* s : stmts) {
      const NodeId c = buildStmtNode(*s, scope, execScale);
      graph_.node(c).parent = parentId;
      childIds.push_back(c);
    }

    const double parentExec = graph_.node(parentId).execCount;
    Node commIn;
    commIn.kind = NodeKind::CommIn;
    commIn.scope = scope;
    commIn.parent = parentId;
    commIn.execCount = parentExec;
    commIn.label = "comm-in";
    const NodeId commInId = graph_.addNode(std::move(commIn));
    Node commOut;
    commOut.kind = NodeKind::CommOut;
    commOut.scope = scope;
    commOut.parent = parentId;
    commOut.execCount = parentExec;
    commOut.label = "comm-out";
    const NodeId commOutId = graph_.addNode(std::move(commOut));

    Node& parent = graph_.node(parentId);
    parent.children = childIds;
    parent.commIn = commInId;
    parent.commOut = commOutId;

    // Dependences among siblings.
    for (const ir::DepEdge& d :
         ir::computeSiblingDeps(stmts, in_.defuse, scope, in_.dependence)) {
      Edge e;
      e.from = childIds[static_cast<std::size_t>(d.from)];
      e.to = childIds[static_cast<std::size_t>(d.to)];
      e.kind = d.kind;
      e.bytes = d.bytes;
      e.vars = d.vars;
      parent.edges.push_back(std::move(e));
    }
    // Boundary flows through the comm nodes.
    const ir::RegionFlow flow =
        ir::computeRegionFlow(stmts, in_.defuse, scope, in_.dependence);
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      long long inBytes = 0;
      std::vector<std::string> inVars;
      for (const auto& [v, b] : flow.inbound[i]) {
        inBytes += b;
        inVars.push_back(v);
      }
      if (!inVars.empty()) {
        Edge e;
        e.from = commInId;
        e.to = childIds[i];
        e.kind = ir::DepKind::Flow;
        e.bytes = inBytes;
        e.vars = std::move(inVars);
        parent.edges.push_back(std::move(e));
      }
      long long outBytes = 0;
      std::vector<std::string> outVars;
      for (const auto& [v, b] : flow.outbound[i]) {
        outBytes += b;
        outVars.push_back(v);
      }
      if (!outVars.empty()) {
        Edge e;
        e.from = childIds[i];
        e.to = commOutId;
        e.kind = ir::DepKind::Flow;
        e.bytes = outBytes;
        e.vars = std::move(outVars);
        parent.edges.push_back(std::move(e));
      }
    }
  }

  static std::string leafLabel(const Stmt& stmt) {
    std::string text = printStmt(stmt);
    // First line, trimmed, capped.
    if (auto nl = text.find('\n'); nl != std::string::npos) text.resize(nl);
    std::string trimmed{hetpar::strings::trim(text)};
    if (trimmed.size() > 40) {
      trimmed.resize(37);
      trimmed += "...";
    }
    return trimmed;
  }

  const BuildInputs& in_;
  Graph graph_;
};

}  // namespace

Graph buildGraph(const BuildInputs& in) { return Builder(in).build(); }

FrontendBundle buildFromSource(std::string_view source, ir::DependenceMode mode,
                               ir::FlowMode flow) {
  FrontendBundle bundle;
  bundle.program = parseProgram(source);
  bundle.sema = analyze(bundle.program);
  bundle.defuse = std::make_unique<ir::DefUseAnalysis>(bundle.program, bundle.sema);
  if (flow == ir::FlowMode::Live) {
    // The dataflow pass builds its own constprop-sharpened section analysis;
    // adopt it so the dumps and the dependence layer see the same sections.
    bundle.dataflow =
        std::make_unique<ir::DataflowAnalysis>(bundle.program, bundle.sema, *bundle.defuse);
    bundle.sections = bundle.dataflow->takeSections();
  } else {
    bundle.sections = std::make_unique<ir::SectionAnalysis>(bundle.program, bundle.sema);
  }
  bundle.profile = cost::interpret(bundle.program, bundle.sema);
  ir::DependenceOptions dep;
  dep.mode = mode;
  dep.sections = bundle.sections.get();
  dep.flow = flow;
  dep.dataflow = bundle.dataflow.get();
  bundle.graph =
      buildGraph({bundle.program, bundle.sema, *bundle.defuse, bundle.profile, dep});
  return bundle;
}

}  // namespace hetpar::htg
