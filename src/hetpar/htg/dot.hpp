// Graphviz rendering of an HTG (mirrors the paper's Figure 1 for
// documentation and debugging).
#pragma once

#include <string>

#include "hetpar/htg/graph.hpp"

namespace hetpar::htg {

/// Renders the graph as Graphviz dot: hierarchical nodes become clusters
/// containing their comm nodes and children; data-flow edges are labeled
/// with byte counts.
std::string toDot(const Graph& graph);

/// Like toDot, but overlays the edges a `baseline` graph (same program,
/// built in conservative dependence mode) has and `graph` does not: they
/// render grey/dotted with a "pruned" label, visualizing what the affine
/// analysis removed. Both graphs must share the node structure.
std::string toDotWithBaseline(const Graph& graph, const Graph& baseline);

}  // namespace hetpar::htg
