// Graphviz rendering of an HTG (mirrors the paper's Figure 1 for
// documentation and debugging).
#pragma once

#include <string>

#include "hetpar/htg/graph.hpp"

namespace hetpar::htg {

/// Renders the graph as Graphviz dot: hierarchical nodes become clusters
/// containing their comm nodes and children; data-flow edges are labeled
/// with byte counts.
std::string toDot(const Graph& graph);

}  // namespace hetpar::htg
