// Constructs the Augmented Hierarchical Task Graph from an analyzed and
// profiled mini-C program (paper Section III-A).
#pragma once

#include "hetpar/cost/profile.hpp"
#include "hetpar/frontend/sema.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/ir/defuse.hpp"

namespace hetpar::htg {

struct BuildInputs {
  const frontend::Program& program;
  const frontend::SemaResult& sema;
  const ir::DefUseAnalysis& defuse;
  const cost::ProgramProfile& profile;
  /// Dependence mode for region edges and comm payloads. The default
  /// (conservative, name-based) reproduces the historical whole-object
  /// graphs bit for bit; Affine requires `dependence.sections`.
  ir::DependenceOptions dependence;
};

/// Builds the HTG rooted at main()'s body. Whole-statement calls expand into
/// Call subtrees over the callee body (each call site gets its own subtree,
/// with execution counts split by profiled call share); `if` statements stay
/// atomic leaves. Throws hetpar::Error on structural problems.
Graph buildGraph(const BuildInputs& in);

/// Convenience: parse + sema + def/use + profile + build in one call.
/// Returns the graph plus the analysis artifacts it borrowed (kept alive in
/// the bundle so the graph's pointers stay valid).
struct FrontendBundle {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<ir::DefUseAnalysis> defuse;
  /// Only built in FlowMode::Live (liveness, constprop, diagnostics).
  std::unique_ptr<ir::DataflowAnalysis> dataflow;
  std::unique_ptr<ir::SectionAnalysis> sections;  ///< always built (for dumps)
  cost::ProgramProfile profile;
  Graph graph;
};

FrontendBundle buildFromSource(std::string_view source,
                               ir::DependenceMode mode = ir::DependenceMode::Conservative,
                               ir::FlowMode flow = ir::FlowMode::Conservative);

}  // namespace hetpar::htg
