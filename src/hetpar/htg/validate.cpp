#include "hetpar/htg/validate.hpp"

#include <algorithm>
#include <map>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::htg {

std::vector<std::string> validate(const Graph& graph) {
  std::vector<std::string> problems;
  auto complain = [&](const std::string& p) { problems.push_back(p); };

  if (graph.root() == kNoNode) {
    complain("graph has no root");
    return problems;
  }

  int rootCount = 0;
  graph.forEach([&](const Node& n) {
    if (n.kind == NodeKind::Root) ++rootCount;

    if (n.execCount < 0) complain(strings::format("node %d has negative exec count", n.id));
    if (n.opsPerExec < 0) complain(strings::format("node %d has negative cost", n.id));

    if (n.isHierarchical()) {
      if (n.children.empty())
        complain(strings::format("hierarchical node %d has no children", n.id));
      if (n.commIn == kNoNode || n.commOut == kNoNode) {
        complain(strings::format("hierarchical node %d lacks comm nodes", n.id));
        return;
      }
      const Node& cin = graph.node(n.commIn);
      const Node& cout = graph.node(n.commOut);
      if (cin.kind != NodeKind::CommIn || cout.kind != NodeKind::CommOut)
        complain(strings::format("node %d comm nodes have wrong kinds", n.id));
      if (cin.execCount != n.execCount || cout.execCount != n.execCount)
        complain(strings::format("node %d comm-node exec counts mismatch", n.id));

      // Child back-links.
      std::map<NodeId, int> position;  // child/comm id -> topological slot
      position[n.commIn] = -1;
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        const Node& c = graph.node(n.children[i]);
        if (c.parent != n.id)
          complain(strings::format("child %d does not point back to parent %d", c.id, n.id));
        if (c.isComm()) complain(strings::format("comm node %d listed as body child", c.id));
        position[c.id] = static_cast<int>(i);
      }
      position[n.commOut] = static_cast<int>(n.children.size());

      for (const Edge& e : n.edges) {
        auto fromIt = position.find(e.from);
        auto toIt = position.find(e.to);
        if (fromIt == position.end() || toIt == position.end()) {
          complain(strings::format("node %d has edge to foreign nodes %d->%d", n.id, e.from,
                                   e.to));
          continue;
        }
        if (e.from == e.to) complain(strings::format("node %d has self-loop on %d", n.id, e.from));
        if (fromIt->second >= toIt->second)
          complain(strings::format("node %d has backward edge %d->%d", n.id, e.from, e.to));
        if (e.bytes < 0) complain(strings::format("edge %d->%d has negative bytes", e.from, e.to));
        if (e.kind == ir::DepKind::Flow && e.bytes == 0 && !e.vars.empty() &&
            !graph.node(e.from).isComm() && !graph.node(e.to).isComm()) {
          // Zero-byte flow edges are legal (zero-size types don't exist in
          // mini-C, but scalars passed through comm nodes may round to 0);
          // keep as informational only — not a problem.
        }
      }
    } else {
      if (!n.children.empty())
        complain(strings::format("leaf node %d has children", n.id));
      // Leaves must be Simple nodes (comm nodes are not leaves of the
      // hierarchy; they are auxiliary).
      if (n.kind != NodeKind::Simple && !n.isComm())
        complain(strings::format("leaf node %d is not a Simple node", n.id));
    }
  });

  if (rootCount != 1) complain(strings::format("expected exactly 1 root, found %d", rootCount));
  return problems;
}

void validateOrThrow(const Graph& graph) {
  const auto problems = validate(graph);
  if (problems.empty()) return;
  std::string all = "HTG validation failed:";
  for (const auto& p : problems) all += "\n  - " + p;
  throw InternalError(all);
}

}  // namespace hetpar::htg
