// Augmented Hierarchical Task Graph (paper Section III-A, Figure 1).
//
// The graph's hierarchy mirrors the source: every node represents one
// statement. Simple Nodes are leaves (assignments, returns, ifs — which we
// deliberately keep atomic); Hierarchical Nodes (loops, whole-statement
// calls, blocks, the root) contain child nodes plus a Communication-In and
// Communication-Out node encapsulating data flow crossing the node
// boundary. Data-flow edges connect children (and comm nodes) and are
// annotated with the number of communicated bytes; they "denote
// communication if source and target node are executed in different tasks".
//
// Leaves carry profiled execution counts and per-execution operation costs
// (once per processor class via the TimingModel); loop nodes additionally
// carry DOALL/reduction classification enabling iteration-level splitting.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "hetpar/cost/profile.hpp"
#include "hetpar/frontend/ast.hpp"
#include "hetpar/ir/dependence.hpp"

namespace hetpar::htg {

enum class NodeKind {
  Simple,   ///< leaf statement
  Loop,     ///< for/while with a decomposable body
  Call,     ///< whole-statement call, children from the callee body
  Block,    ///< brace block
  Root,     ///< function body of main (one per graph)
  CommIn,   ///< communication into a hierarchical node
  CommOut,  ///< communication out of a hierarchical node
};

using NodeId = int;
constexpr NodeId kNoNode = -1;

/// Data-flow or ordering edge between two children of one hierarchical node
/// (comm nodes included). Flow edges carry payload bytes; Anti/Output edges
/// are ordering-only.
struct Edge {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  ir::DepKind kind = ir::DepKind::Flow;
  long long bytes = 0;
  std::vector<std::string> vars;
};

struct Node {
  NodeId id = kNoNode;
  NodeKind kind = NodeKind::Simple;
  const frontend::Stmt* stmt = nullptr;          ///< null for Root/Comm nodes
  const frontend::Function* scope = nullptr;     ///< function owning the statement

  NodeId parent = kNoNode;
  std::vector<NodeId> children;  ///< body children in program order (hierarchical only)
  NodeId commIn = kNoNode;       ///< hierarchical only
  NodeId commOut = kNoNode;      ///< hierarchical only

  /// Edges among this node's children and its comm nodes (hierarchical only).
  std::vector<Edge> edges;

  /// Profiled absolute execution count of this node.
  double execCount = 0.0;
  /// Abstract ops per execution: inclusive work for leaves, header-only work
  /// (loop control / call overhead) for hierarchical nodes.
  double opsPerExec = 0.0;
  /// The same work broken down by op kind (cross-ISA cost modeling);
  /// mixPerExec.total() == opsPerExec.
  cost::OpMix mixPerExec;
  /// Average body iterations per execution (Loop nodes; 1 otherwise).
  double iterationsPerExec = 1.0;

  // Loop-node classification (valid when kind == Loop, stmt is a ForStmt).
  bool doall = false;
  std::set<std::string> reductionVars;
  std::string doallReason;  ///< why not DOALL, for diagnostics

  bool isHierarchical() const {
    return kind == NodeKind::Loop || kind == NodeKind::Call || kind == NodeKind::Block ||
           kind == NodeKind::Root;
  }
  bool isComm() const { return kind == NodeKind::CommIn || kind == NodeKind::CommOut; }

  std::string label;  ///< short human-readable description
};

class Graph {
 public:
  NodeId addNode(Node node);
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

  NodeId root() const { return root_; }
  void setRoot(NodeId id) { root_ = id; }

  /// Total abstract ops of one execution of `id`'s subtree (children scaled
  /// by their execution-count ratios). This is the sequential workload the
  /// speedup baselines divide by.
  double subtreeOpsPerExec(NodeId id) const;

  /// Per-kind breakdown of subtreeOpsPerExec.
  cost::OpMix subtreeMixPerExec(NodeId id) const;

  /// Pre-order walk over hierarchical structure (comm nodes excluded).
  void forEach(const std::function<void(const Node&)>& fn) const;

  /// Number of hierarchical nodes (= number of ILPPAR target regions).
  int hierarchicalCount() const;

 private:
  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
};

}  // namespace hetpar::htg
