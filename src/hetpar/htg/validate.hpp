// Structural validation of an HTG (used by tests and asserted by the
// parallelizer before it trusts a graph).
#pragma once

#include <string>
#include <vector>

#include "hetpar/htg/graph.hpp"

namespace hetpar::htg {

/// Returns a list of human-readable problems; empty means the graph is
/// well-formed. Checked invariants (paper Section III-A):
///  * exactly one Root, which is the graph's root;
///  * every hierarchical node has CommIn/CommOut nodes and >= 1 child;
///  * all leaves are Simple nodes ("By construction, all leaves of the
///    graph are Simple Nodes");
///  * parent/child links are mutually consistent;
///  * edges of a node connect its own children/comm nodes only, never
///    form self-loops, and always point forward (acyclic regions);
///  * execution counts and costs are non-negative; comm-node exec counts
///    match their parent.
std::vector<std::string> validate(const Graph& graph);

/// Throws hetpar::InternalError with all problems if validation fails.
void validateOrThrow(const Graph& graph);

}  // namespace hetpar::htg
