#include "hetpar/frontend/parser.hpp"

#include <utility>

#include "hetpar/frontend/lexer.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse() {
    Program program;
    while (!peek().is(TokenKind::EndOfFile)) {
      // Both globals and functions start with `type identifier`; disambiguate
      // on the token after the name.
      const Type type = parseType();
      const Token nameTok = expectIdentifier("declaration name");
      if (peek().isPunct("(")) {
        program.functions.push_back(parseFunctionRest(type, nameTok));
      } else {
        program.globals.push_back(parseDeclRest(type, nameTok));
      }
    }
    return program;
  }

 private:
  // --- token plumbing -------------------------------------------------------
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  [[noreturn]] void fail(const std::string& what) const {
    const Token& t = peek();
    throw ParseError(strings::format("parse error at line %d column %d: %s (got '%s')",
                                     t.loc.line, t.loc.column, what.c_str(),
                                     t.kind == TokenKind::EndOfFile ? "<eof>" : t.text.c_str()));
  }

  const Token& expectPunct(std::string_view p) {
    if (!peek().isPunct(p)) fail("expected '" + std::string(p) + "'");
    return advance();
  }

  Token expectIdentifier(const std::string& what) {
    if (!peek().is(TokenKind::Identifier)) fail("expected " + what);
    return advance();
  }

  bool consumePunct(std::string_view p) {
    if (peek().isPunct(p)) {
      advance();
      return true;
    }
    return false;
  }

  // --- types ----------------------------------------------------------------
  bool peekIsTypeKeyword() const {
    return peek().isKeyword("int") || peek().isKeyword("float") || peek().isKeyword("double") ||
           peek().isKeyword("void");
  }

  Type parseType() {
    if (!peekIsTypeKeyword()) fail("expected type");
    const Token& t = advance();
    Type type;
    if (t.text == "int") type.scalar = ScalarType::Int;
    else if (t.text == "float") type.scalar = ScalarType::Float;
    else if (t.text == "double") type.scalar = ScalarType::Double;
    else type.scalar = ScalarType::Void;
    return type;
  }

  /// Parses `[N]` suffixes after a declared name.
  void parseArrayDims(Type& type) {
    while (peek().isPunct("[")) {
      advance();
      if (!peek().is(TokenKind::IntLiteral)) fail("expected constant array dimension");
      type.dims.push_back(static_cast<int>(advance().intValue));
      expectPunct("]");
    }
    if (type.dims.size() > 2) fail("mini-C supports at most 2-D arrays");
  }

  // --- declarations -----------------------------------------------------------
  StmtPtr parseDeclRest(Type type, const Token& nameTok) {
    parseArrayDims(type);
    ExprPtr init;
    if (consumePunct("=")) {
      if (type.isArray()) fail("array initializers are not supported");
      init = parseExpr();
    }
    expectPunct(";");
    auto decl = std::make_unique<DeclStmt>(std::move(type), nameTok.text, std::move(init));
    decl->loc = nameTok.loc;
    return decl;
  }

  std::unique_ptr<Function> parseFunctionRest(Type returnType, const Token& nameTok) {
    auto fn = std::make_unique<Function>();
    fn->returnType = std::move(returnType);
    fn->name = nameTok.text;
    fn->loc = nameTok.loc;
    expectPunct("(");
    if (!peek().isPunct(")")) {
      do {
        Param p;
        p.type = parseType();
        p.name = expectIdentifier("parameter name").text;
        parseArrayDims(p.type);
        fn->params.push_back(std::move(p));
      } while (consumePunct(","));
    }
    expectPunct(")");
    expectPunct("{");
    while (!peek().isPunct("}")) fn->body.push_back(parseStmt());
    expectPunct("}");
    return fn;
  }

  // --- statements ---------------------------------------------------------------
  std::vector<StmtPtr> parseStmtBody() {
    std::vector<StmtPtr> body;
    if (consumePunct("{")) {
      while (!peek().isPunct("}")) body.push_back(parseStmt());
      expectPunct("}");
    } else {
      body.push_back(parseStmt());
    }
    return body;
  }

  StmtPtr parseStmt() {
    const SourceLoc loc = peek().loc;
    if (peekIsTypeKeyword()) {
      const Type type = parseType();
      const Token nameTok = expectIdentifier("declaration name");
      return parseDeclRest(type, nameTok);
    }
    if (peek().isKeyword("if")) return parseIf();
    if (peek().isKeyword("for")) return parseFor();
    if (peek().isKeyword("while")) return parseWhile();
    if (peek().isKeyword("return")) {
      advance();
      ExprPtr value;
      if (!peek().isPunct(";")) value = parseExpr();
      expectPunct(";");
      auto s = std::make_unique<ReturnStmt>(std::move(value));
      s->loc = loc;
      return s;
    }
    if (peek().isPunct("{")) {
      auto block = std::make_unique<BlockStmt>();
      block->loc = loc;
      block->body = parseStmtBody();
      return block;
    }
    StmtPtr s = parseSimpleStmt();
    expectPunct(";");
    return s;
  }

  StmtPtr parseIf() {
    const SourceLoc loc = peek().loc;
    advance();  // if
    expectPunct("(");
    auto s = std::make_unique<IfStmt>();
    s->loc = loc;
    s->cond = parseExpr();
    expectPunct(")");
    s->thenBody = parseStmtBody();
    if (peek().isKeyword("else")) {
      advance();
      s->elseBody = parseStmtBody();
    }
    return s;
  }

  StmtPtr parseFor() {
    const SourceLoc loc = peek().loc;
    advance();  // for
    expectPunct("(");
    auto s = std::make_unique<ForStmt>();
    s->loc = loc;
    if (!peek().isPunct(";")) {
      if (peekIsTypeKeyword()) {
        const Type type = parseType();
        const Token nameTok = expectIdentifier("loop variable");
        ExprPtr init;
        if (consumePunct("=")) init = parseExpr();
        auto decl = std::make_unique<DeclStmt>(type, nameTok.text, std::move(init));
        decl->loc = nameTok.loc;
        s->init = std::move(decl);
      } else {
        s->init = parseSimpleStmt();
      }
    }
    expectPunct(";");
    if (!peek().isPunct(";")) s->cond = parseExpr();
    expectPunct(";");
    if (!peek().isPunct(")")) s->step = parseSimpleStmt();
    expectPunct(")");
    s->body = parseStmtBody();
    return s;
  }

  StmtPtr parseWhile() {
    const SourceLoc loc = peek().loc;
    advance();  // while
    expectPunct("(");
    auto s = std::make_unique<WhileStmt>();
    s->loc = loc;
    s->cond = parseExpr();
    expectPunct(")");
    s->body = parseStmtBody();
    return s;
  }

  /// Assignment (incl. compound/increment sugar) or expression statement;
  /// no trailing ';' consumed.
  StmtPtr parseSimpleStmt() {
    const SourceLoc loc = peek().loc;
    if (peek().is(TokenKind::Identifier)) {
      // Look ahead past an optional index list for an assignment operator.
      std::size_t save = pos_;
      const Token nameTok = advance();
      std::vector<ExprPtr> indices;
      while (peek().isPunct("[")) {
        advance();
        indices.push_back(parseExpr());
        expectPunct("]");
      }
      auto makeTargetExpr = [&]() -> ExprPtr {
        if (indices.empty()) return std::make_unique<VarRef>(nameTok.text);
        std::vector<ExprPtr> copy;
        for (const auto& e : indices) copy.push_back(cloneExpr(*e));
        return std::make_unique<IndexExpr>(nameTok.text, std::move(copy));
      };
      const Token& op = peek();
      if (op.isPunct("=")) {
        advance();
        auto s = std::make_unique<AssignStmt>(nameTok.text, std::move(indices), parseExpr());
        s->loc = loc;
        return s;
      }
      if (op.isPunct("+=") || op.isPunct("-=") || op.isPunct("*=") || op.isPunct("/=")) {
        const std::string opText = op.text;
        advance();
        ExprPtr rhs = parseExpr();
        BinaryOp bop = BinaryOp::Add;
        if (opText == "-=") bop = BinaryOp::Sub;
        else if (opText == "*=") bop = BinaryOp::Mul;
        else if (opText == "/=") bop = BinaryOp::Div;
        auto value = std::make_unique<BinaryExpr>(bop, makeTargetExpr(), std::move(rhs));
        auto s = std::make_unique<AssignStmt>(nameTok.text, std::move(indices), std::move(value));
        s->loc = loc;
        return s;
      }
      if (op.isPunct("++") || op.isPunct("--")) {
        const BinaryOp bop = op.isPunct("++") ? BinaryOp::Add : BinaryOp::Sub;
        advance();
        auto value = std::make_unique<BinaryExpr>(bop, makeTargetExpr(),
                                                  std::make_unique<IntLit>(1));
        auto s = std::make_unique<AssignStmt>(nameTok.text, std::move(indices), std::move(value));
        s->loc = loc;
        return s;
      }
      // Not an assignment: rewind and parse as a full expression statement.
      pos_ = save;
    }
    auto s = std::make_unique<ExprStmt>(parseExpr());
    s->loc = loc;
    return s;
  }

  // --- expressions (precedence climbing) -----------------------------------------
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (peek().isPunct("||")) {
      advance();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseEquality();
    while (peek().isPunct("&&")) {
      advance();
      lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(lhs), parseEquality());
    }
    return lhs;
  }

  ExprPtr parseEquality() {
    ExprPtr lhs = parseRelational();
    while (peek().isPunct("==") || peek().isPunct("!=")) {
      const BinaryOp op = peek().isPunct("==") ? BinaryOp::Eq : BinaryOp::Ne;
      advance();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseRelational());
    }
    return lhs;
  }

  ExprPtr parseRelational() {
    ExprPtr lhs = parseAdditive();
    while (peek().isPunct("<") || peek().isPunct("<=") || peek().isPunct(">") ||
           peek().isPunct(">=")) {
      BinaryOp op = BinaryOp::Lt;
      if (peek().isPunct("<=")) op = BinaryOp::Le;
      else if (peek().isPunct(">")) op = BinaryOp::Gt;
      else if (peek().isPunct(">=")) op = BinaryOp::Ge;
      advance();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseAdditive());
    }
    return lhs;
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    while (peek().isPunct("+") || peek().isPunct("-")) {
      const BinaryOp op = peek().isPunct("+") ? BinaryOp::Add : BinaryOp::Sub;
      advance();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseMultiplicative());
    }
    return lhs;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    while (peek().isPunct("*") || peek().isPunct("/") || peek().isPunct("%")) {
      BinaryOp op = BinaryOp::Mul;
      if (peek().isPunct("/")) op = BinaryOp::Div;
      else if (peek().isPunct("%")) op = BinaryOp::Mod;
      advance();
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), parseUnary());
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    const SourceLoc loc = peek().loc;
    if (peek().isPunct("-")) {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary());
      e->loc = loc;
      return e;
    }
    if (peek().isPunct("!")) {
      advance();
      auto e = std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary());
      e->loc = loc;
      return e;
    }
    if (peek().isPunct("+")) {
      advance();
      return parseUnary();
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token& t = peek();
    if (t.is(TokenKind::IntLiteral)) {
      auto e = std::make_unique<IntLit>(advance().intValue);
      e->loc = t.loc;
      return e;
    }
    if (t.is(TokenKind::FloatLiteral)) {
      auto e = std::make_unique<FloatLit>(advance().floatValue);
      e->loc = t.loc;
      return e;
    }
    if (t.isPunct("(")) {
      advance();
      ExprPtr e = parseExpr();
      expectPunct(")");
      return e;
    }
    if (t.is(TokenKind::Identifier)) {
      const Token nameTok = advance();
      if (consumePunct("(")) {
        std::vector<ExprPtr> args;
        if (!peek().isPunct(")")) {
          do {
            args.push_back(parseExpr());
          } while (consumePunct(","));
        }
        expectPunct(")");
        auto e = std::make_unique<CallExpr>(nameTok.text, std::move(args));
        e->loc = nameTok.loc;
        return e;
      }
      if (peek().isPunct("[")) {
        std::vector<ExprPtr> indices;
        while (consumePunct("[")) {
          indices.push_back(parseExpr());
          expectPunct("]");
        }
        auto e = std::make_unique<IndexExpr>(nameTok.text, std::move(indices));
        e->loc = nameTok.loc;
        return e;
      }
      auto e = std::make_unique<VarRef>(nameTok.text);
      e->loc = nameTok.loc;
      return e;
    }
    fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parseProgram(std::string_view source) {
  return Parser(tokenize(source)).parse();
}

ExprPtr cloneExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      const auto& x = static_cast<const IntLit&>(e);
      auto out = std::make_unique<IntLit>(x.value);
      out->loc = e.loc;
      return out;
    }
    case ExprKind::FloatLit: {
      const auto& x = static_cast<const FloatLit&>(e);
      auto out = std::make_unique<FloatLit>(x.value);
      out->loc = e.loc;
      return out;
    }
    case ExprKind::VarRef: {
      const auto& x = static_cast<const VarRef&>(e);
      auto out = std::make_unique<VarRef>(x.name);
      out->loc = e.loc;
      return out;
    }
    case ExprKind::Index: {
      const auto& x = static_cast<const IndexExpr&>(e);
      std::vector<ExprPtr> idx;
      for (const auto& i : x.indices) idx.push_back(cloneExpr(*i));
      auto out = std::make_unique<IndexExpr>(x.name, std::move(idx));
      out->loc = e.loc;
      return out;
    }
    case ExprKind::Unary: {
      const auto& x = static_cast<const UnaryExpr&>(e);
      auto out = std::make_unique<UnaryExpr>(x.op, cloneExpr(*x.operand));
      out->loc = e.loc;
      return out;
    }
    case ExprKind::Binary: {
      const auto& x = static_cast<const BinaryExpr&>(e);
      auto out = std::make_unique<BinaryExpr>(x.op, cloneExpr(*x.lhs), cloneExpr(*x.rhs));
      out->loc = e.loc;
      return out;
    }
    case ExprKind::Call: {
      const auto& x = static_cast<const CallExpr&>(e);
      std::vector<ExprPtr> args;
      for (const auto& a : x.args) args.push_back(cloneExpr(*a));
      auto out = std::make_unique<CallExpr>(x.callee, std::move(args));
      out->loc = e.loc;
      return out;
    }
  }
  throw InternalError("cloneExpr: unknown expression kind");
}

}  // namespace hetpar::frontend
