// Abstract syntax tree for "mini-C", the ANSI-C subset hetpar parallelizes.
//
// The subset covers what the UTDSP-style benchmarks need: int/float/double
// scalars and fixed-size 1-D/2-D arrays, functions, assignments, `if`,
// `for`, `while`, `return`, calls, and the usual arithmetic/logic operators.
// The paper's parallelizer operates on *statements* (each HTG node
// represents one statement), so statements carry unique ids assigned by
// sema; hierarchical statements (loops, ifs, blocks) own their children,
// mirroring the hierarchy the HTG will adopt.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace hetpar::frontend {

struct SourceLoc {
  int line = 0;
  int column = 0;
};

// --- Types ------------------------------------------------------------------

enum class ScalarType { Int, Float, Double, Void };

/// A mini-C type: a scalar, or a fixed-size 1-D/2-D array of scalars.
struct Type {
  ScalarType scalar = ScalarType::Int;
  std::vector<int> dims;  ///< empty for scalars; {n} or {n, m} for arrays

  bool isArray() const { return !dims.empty(); }
  bool isVoid() const { return scalar == ScalarType::Void && dims.empty(); }

  /// Number of scalar elements (1 for scalars).
  long long elementCount() const;

  /// Size of one scalar element in bytes (int/float: 4, double: 8).
  int elementBytes() const;

  /// Total storage in bytes; the HTG uses this as data-flow edge payload.
  long long byteSize() const { return elementCount() * elementBytes(); }

  std::string str() const;

  friend bool operator==(const Type& a, const Type& b) {
    return a.scalar == b.scalar && a.dims == b.dims;
  }
};

// --- Expressions --------------------------------------------------------------

enum class ExprKind { IntLit, FloatLit, VarRef, Index, Unary, Binary, Call };

struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind;
  SourceLoc loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLit final : Expr {
  explicit IntLit(long long v) : Expr(ExprKind::IntLit), value(v) {}
  long long value;
};

struct FloatLit final : Expr {
  explicit FloatLit(double v) : Expr(ExprKind::FloatLit), value(v) {}
  double value;
};

struct VarRef final : Expr {
  explicit VarRef(std::string n) : Expr(ExprKind::VarRef), name(std::move(n)) {}
  std::string name;
};

/// Array access `name[i]` or `name[i][j]`.
struct IndexExpr final : Expr {
  IndexExpr(std::string n, std::vector<ExprPtr> idx)
      : Expr(ExprKind::Index), name(std::move(n)), indices(std::move(idx)) {}
  std::string name;
  std::vector<ExprPtr> indices;
};

enum class UnaryOp { Neg, Not };

struct UnaryExpr final : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e) : Expr(ExprKind::Unary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp { Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or };

struct BinaryExpr final : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::Binary), op(o), lhs(std::move(l)), rhs(std::move(r)) {}
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// Call to a user function or a math builtin (sqrt, fabs, sin, cos, exp, log).
struct CallExpr final : Expr {
  CallExpr(std::string c, std::vector<ExprPtr> a)
      : Expr(ExprKind::Call), callee(std::move(c)), args(std::move(a)) {}
  std::string callee;
  std::vector<ExprPtr> args;
};

/// True for the math builtins evaluated by the interpreter directly.
bool isBuiltinFunction(const std::string& name);

// --- Statements ----------------------------------------------------------------

enum class StmtKind { Decl, Assign, If, For, While, Return, Expr, Block };

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  StmtKind kind;
  SourceLoc loc;
  /// Unique per Program, assigned by sema::analyze; -1 before that.
  int id = -1;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct DeclStmt final : Stmt {
  DeclStmt(Type t, std::string n, ExprPtr i)
      : Stmt(StmtKind::Decl), type(std::move(t)), name(std::move(n)), init(std::move(i)) {}
  Type type;
  std::string name;
  ExprPtr init;  ///< may be null
};

/// `target = value`, `target[i] = value`, or `target[i][j] = value`.
struct AssignStmt final : Stmt {
  AssignStmt(std::string t, std::vector<ExprPtr> idx, ExprPtr v)
      : Stmt(StmtKind::Assign), target(std::move(t)), indices(std::move(idx)),
        value(std::move(v)) {}
  std::string target;
  std::vector<ExprPtr> indices;  ///< empty for scalar targets
  ExprPtr value;
};

struct IfStmt final : Stmt {
  IfStmt() : Stmt(StmtKind::If) {}
  ExprPtr cond;
  std::vector<StmtPtr> thenBody;
  std::vector<StmtPtr> elseBody;
};

/// Canonical counted loop `for (init; cond; step) body`.
struct ForStmt final : Stmt {
  ForStmt() : Stmt(StmtKind::For) {}
  StmtPtr init;  ///< AssignStmt or DeclStmt; may be null
  ExprPtr cond;  ///< may be null (infinite loops are rejected by sema)
  StmtPtr step;  ///< AssignStmt; may be null
  std::vector<StmtPtr> body;
};

struct WhileStmt final : Stmt {
  WhileStmt() : Stmt(StmtKind::While) {}
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

struct ReturnStmt final : Stmt {
  explicit ReturnStmt(ExprPtr v) : Stmt(StmtKind::Return), value(std::move(v)) {}
  ExprPtr value;  ///< may be null for `return;`
};

/// Expression evaluated for side effects (in mini-C: a call).
struct ExprStmt final : Stmt {
  explicit ExprStmt(ExprPtr e) : Stmt(StmtKind::Expr), expr(std::move(e)) {}
  ExprPtr expr;
};

struct BlockStmt final : Stmt {
  BlockStmt() : Stmt(StmtKind::Block) {}
  std::vector<StmtPtr> body;
};

// --- Top level -------------------------------------------------------------------

struct Param {
  Type type;
  std::string name;
};

struct Function {
  Type returnType;
  std::string name;
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  SourceLoc loc;
};

/// A complete translation unit: global declarations plus functions.
/// The entry point is `main`.
struct Program {
  std::vector<StmtPtr> globals;  ///< DeclStmt only
  std::vector<std::unique_ptr<Function>> functions;

  /// nullptr if absent.
  Function* findFunction(const std::string& name) const;
  /// Throws hetpar::SemaError if `main` is missing.
  Function& entry() const;
};

/// Calls `fn` for every statement in the subtree rooted at `stmt`
/// (pre-order, including `stmt` itself and for-init/step statements).
void forEachStmt(Stmt& stmt, const std::function<void(Stmt&)>& fn);
void forEachStmt(const Program& program, const std::function<void(Stmt&)>& fn);

/// Direct hierarchical children of a statement (loop/if/block bodies; for
/// init/step are *not* children — they belong to the loop header).
std::vector<Stmt*> childStatements(Stmt& stmt);

}  // namespace hetpar::frontend
