#include "hetpar/frontend/ast.hpp"

#include <array>
#include <sstream>

#include "hetpar/support/error.hpp"

namespace hetpar::frontend {

long long Type::elementCount() const {
  long long n = 1;
  for (int d : dims) n *= d;
  return n;
}

int Type::elementBytes() const {
  switch (scalar) {
    case ScalarType::Int: return 4;
    case ScalarType::Float: return 4;
    case ScalarType::Double: return 8;
    case ScalarType::Void: return 0;
  }
  return 0;
}

std::string Type::str() const {
  std::ostringstream os;
  switch (scalar) {
    case ScalarType::Int: os << "int"; break;
    case ScalarType::Float: os << "float"; break;
    case ScalarType::Double: os << "double"; break;
    case ScalarType::Void: os << "void"; break;
  }
  for (int d : dims) os << "[" << d << "]";
  return os.str();
}

bool isBuiltinFunction(const std::string& name) {
  static const std::array<const char*, 7> kBuiltins = {"sqrt", "fabs", "sin", "cos",
                                                       "exp",  "log",  "abs"};
  for (const char* b : kBuiltins)
    if (name == b) return true;
  return false;
}

Function* Program::findFunction(const std::string& name) const {
  for (const auto& f : functions)
    if (f->name == name) return f.get();
  return nullptr;
}

Function& Program::entry() const {
  Function* f = findFunction("main");
  require<SemaError>(f != nullptr, "program has no 'main' function");
  return *f;
}

void forEachStmt(Stmt& stmt, const std::function<void(Stmt&)>& fn) {
  fn(stmt);
  switch (stmt.kind) {
    case StmtKind::If: {
      auto& s = static_cast<IfStmt&>(stmt);
      for (auto& c : s.thenBody) forEachStmt(*c, fn);
      for (auto& c : s.elseBody) forEachStmt(*c, fn);
      break;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      if (s.init) forEachStmt(*s.init, fn);
      if (s.step) forEachStmt(*s.step, fn);
      for (auto& c : s.body) forEachStmt(*c, fn);
      break;
    }
    case StmtKind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      for (auto& c : s.body) forEachStmt(*c, fn);
      break;
    }
    case StmtKind::Block: {
      auto& s = static_cast<BlockStmt&>(stmt);
      for (auto& c : s.body) forEachStmt(*c, fn);
      break;
    }
    default:
      break;
  }
}

void forEachStmt(const Program& program, const std::function<void(Stmt&)>& fn) {
  for (const auto& g : program.globals) forEachStmt(*g, fn);
  for (const auto& f : program.functions)
    for (const auto& s : f->body) forEachStmt(*s, fn);
}

std::vector<Stmt*> childStatements(Stmt& stmt) {
  std::vector<Stmt*> out;
  switch (stmt.kind) {
    case StmtKind::If: {
      auto& s = static_cast<IfStmt&>(stmt);
      for (auto& c : s.thenBody) out.push_back(c.get());
      for (auto& c : s.elseBody) out.push_back(c.get());
      break;
    }
    case StmtKind::For: {
      auto& s = static_cast<ForStmt&>(stmt);
      for (auto& c : s.body) out.push_back(c.get());
      break;
    }
    case StmtKind::While: {
      auto& s = static_cast<WhileStmt&>(stmt);
      for (auto& c : s.body) out.push_back(c.get());
      break;
    }
    case StmtKind::Block: {
      auto& s = static_cast<BlockStmt&>(stmt);
      for (auto& c : s.body) out.push_back(c.get());
      break;
    }
    default:
      break;
  }
  return out;
}

}  // namespace hetpar::frontend
