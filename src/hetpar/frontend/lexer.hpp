// Tokenizer for mini-C.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::frontend {

enum class TokenKind {
  Identifier,
  IntLiteral,
  FloatLiteral,
  Keyword,  // int float double void if else for while return
  Punct,    // operators and delimiters, text in Token::text
  EndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;
  long long intValue = 0;
  double floatValue = 0.0;
  SourceLoc loc;

  bool is(TokenKind k) const { return kind == k; }
  bool isPunct(std::string_view p) const { return kind == TokenKind::Punct && text == p; }
  bool isKeyword(std::string_view k) const { return kind == TokenKind::Keyword && text == k; }
};

/// Tokenizes `source`; the result always ends with an EndOfFile token.
/// Handles `//` and `/* */` comments. Throws hetpar::ParseError on bad input.
std::vector<Token> tokenize(std::string_view source);

}  // namespace hetpar::frontend
