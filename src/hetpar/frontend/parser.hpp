// Recursive-descent parser for mini-C.
#pragma once

#include <string_view>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::frontend {

/// Parses a translation unit. Throws hetpar::ParseError with line/column
/// information on syntax errors. The returned Program has not been through
/// sema yet (statement ids are unassigned).
Program parseProgram(std::string_view source);

/// Deep copy of an expression tree (used for desugaring compound
/// assignments and by analyses that rewrite expressions).
ExprPtr cloneExpr(const Expr& e);

}  // namespace hetpar::frontend
