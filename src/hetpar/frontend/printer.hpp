// Source rendering of mini-C ASTs.
//
// Used for diagnostics and by hetpar/codegen, which re-emits the program
// with parallelization annotations. `PrintHooks::beforeStmt` lets a caller
// inject text (e.g. `#pragma hetpar ...` lines) ahead of any statement.
#pragma once

#include <functional>
#include <string>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::frontend {

struct PrintHooks {
  /// Called before each statement; the returned text (if non-empty) is
  /// emitted on its own lines at the statement's indentation.
  std::function<std::string(const Stmt&)> beforeStmt;
};

std::string printExpr(const Expr& expr);
std::string printStmt(const Stmt& stmt, int indent = 0, const PrintHooks* hooks = nullptr);
std::string printProgram(const Program& program, const PrintHooks* hooks = nullptr);

}  // namespace hetpar::frontend
