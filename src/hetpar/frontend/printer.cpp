#include "hetpar/frontend/printer.hpp"

#include <sstream>

#include "hetpar/support/error.hpp"

namespace hetpar::frontend {

namespace {

const char* binOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
  }
  return "?";
}

void printExprTo(std::ostringstream& os, const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      os << static_cast<const IntLit&>(expr).value;
      break;
    case ExprKind::FloatLit: {
      std::ostringstream tmp;
      tmp << static_cast<const FloatLit&>(expr).value;
      std::string s = tmp.str();
      os << s;
      if (s.find('.') == std::string::npos && s.find('e') == std::string::npos) os << ".0";
      break;
    }
    case ExprKind::VarRef:
      os << static_cast<const VarRef&>(expr).name;
      break;
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      os << e.name;
      for (const auto& i : e.indices) {
        os << "[";
        printExprTo(os, *i);
        os << "]";
      }
      break;
    }
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      os << (e.op == UnaryOp::Neg ? "-" : "!") << "(";
      printExprTo(os, *e.operand);
      os << ")";
      break;
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      os << "(";
      printExprTo(os, *e.lhs);
      os << " " << binOpText(e.op) << " ";
      printExprTo(os, *e.rhs);
      os << ")";
      break;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      os << e.callee << "(";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) os << ", ";
        printExprTo(os, *e.args[i]);
      }
      os << ")";
      break;
    }
  }
}

std::string typePrefix(const Type& t) {
  switch (t.scalar) {
    case ScalarType::Int: return "int";
    case ScalarType::Float: return "float";
    case ScalarType::Double: return "double";
    case ScalarType::Void: return "void";
  }
  return "?";
}

std::string declText(const Type& t, const std::string& name) {
  std::string out = typePrefix(t) + " " + name;
  for (int d : t.dims) out += "[" + std::to_string(d) + "]";
  return out;
}

class StmtPrinter {
 public:
  explicit StmtPrinter(const PrintHooks* hooks) : hooks_(hooks) {}

  void print(std::ostringstream& os, const Stmt& stmt, int indent) {
    if (hooks_ && hooks_->beforeStmt) {
      const std::string extra = hooks_->beforeStmt(stmt);
      if (!extra.empty()) {
        for (const char c : extra) {
          if (atLineStart_) {
            os << pad(indent);
            atLineStart_ = false;
          }
          os << c;
          if (c == '\n') atLineStart_ = true;
        }
        if (!atLineStart_) os << "\n";
        atLineStart_ = true;
      }
    }
    atLineStart_ = true;
    switch (stmt.kind) {
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        os << pad(indent) << declText(s.type, s.name);
        if (s.init) {
          os << " = ";
          printExprTo(os, *s.init);
        }
        os << ";\n";
        break;
      }
      case StmtKind::Assign: {
        const auto& s = static_cast<const AssignStmt&>(stmt);
        os << pad(indent) << s.target;
        for (const auto& i : s.indices) {
          os << "[";
          printExprTo(os, *i);
          os << "]";
        }
        os << " = ";
        printExprTo(os, *s.value);
        os << ";\n";
        break;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        os << pad(indent) << "if (";
        printExprTo(os, *s.cond);
        os << ") {\n";
        for (const auto& c : s.thenBody) print(os, *c, indent + 1);
        os << pad(indent) << "}";
        if (!s.elseBody.empty()) {
          os << " else {\n";
          for (const auto& c : s.elseBody) print(os, *c, indent + 1);
          os << pad(indent) << "}";
        }
        os << "\n";
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        os << pad(indent) << "for (";
        if (s.init) os << inlineStmt(*s.init);
        os << "; ";
        if (s.cond) printExprTo(os, *s.cond);
        os << "; ";
        if (s.step) os << inlineStmt(*s.step);
        os << ") {\n";
        for (const auto& c : s.body) print(os, *c, indent + 1);
        os << pad(indent) << "}\n";
        break;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        os << pad(indent) << "while (";
        printExprTo(os, *s.cond);
        os << ") {\n";
        for (const auto& c : s.body) print(os, *c, indent + 1);
        os << pad(indent) << "}\n";
        break;
      }
      case StmtKind::Return: {
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        os << pad(indent) << "return";
        if (s.value) {
          os << " ";
          printExprTo(os, *s.value);
        }
        os << ";\n";
        break;
      }
      case StmtKind::Expr: {
        const auto& s = static_cast<const ExprStmt&>(stmt);
        os << pad(indent);
        printExprTo(os, *s.expr);
        os << ";\n";
        break;
      }
      case StmtKind::Block: {
        const auto& s = static_cast<const BlockStmt&>(stmt);
        os << pad(indent) << "{\n";
        for (const auto& c : s.body) print(os, *c, indent + 1);
        os << pad(indent) << "}\n";
        break;
      }
    }
  }

 private:
  static std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent) * 2, ' '); }

  /// Header-position rendering (no indentation, no trailing ';').
  std::string inlineStmt(const Stmt& stmt) {
    std::ostringstream os;
    if (stmt.kind == StmtKind::Decl) {
      const auto& s = static_cast<const DeclStmt&>(stmt);
      os << declText(s.type, s.name);
      if (s.init) {
        os << " = ";
        printExprTo(os, *s.init);
      }
    } else if (stmt.kind == StmtKind::Assign) {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      os << s.target;
      for (const auto& i : s.indices) {
        os << "[";
        printExprTo(os, *i);
        os << "]";
      }
      os << " = ";
      printExprTo(os, *s.value);
    } else {
      throw InternalError("unsupported statement in for-header position");
    }
    return os.str();
  }

  const PrintHooks* hooks_;
  bool atLineStart_ = true;
};

}  // namespace

std::string printExpr(const Expr& expr) {
  std::ostringstream os;
  printExprTo(os, expr);
  return os.str();
}

std::string printStmt(const Stmt& stmt, int indent, const PrintHooks* hooks) {
  std::ostringstream os;
  StmtPrinter(hooks).print(os, stmt, indent);
  return os.str();
}

std::string printProgram(const Program& program, const PrintHooks* hooks) {
  std::ostringstream os;
  StmtPrinter printer(hooks);
  for (const auto& g : program.globals) printer.print(os, *g, 0);
  if (!program.globals.empty()) os << "\n";
  for (const auto& f : program.functions) {
    os << typePrefix(f->returnType) << " " << f->name << "(";
    for (std::size_t i = 0; i < f->params.size(); ++i) {
      if (i) os << ", ";
      os << declText(f->params[i].type, f->params[i].name);
    }
    os << ") {\n";
    for (const auto& s : f->body) printer.print(os, *s, 1);
    os << "}\n\n";
  }
  return os.str();
}

}  // namespace hetpar::frontend
