// Semantic analysis for mini-C.
//
// Resolves names, checks light type/shape rules, rejects recursion (the HTG
// inlines call costs, so the call graph must be a DAG), and assigns every
// statement a unique id (the parallelizer, cost model, and codegen all key
// on statement ids).
#pragma once

#include <map>
#include <string>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::frontend {

/// Per-function view of every name visible inside it (globals + params +
/// locals). Sema enforces that names are unique within a function across
/// nested scopes, so a flat map is sufficient for all later analyses.
using SymbolTable = std::map<std::string, Type>;

struct SemaResult {
  int numStatements = 0;  ///< ids are 0..numStatements-1, assigned pre-order
  SymbolTable globals;
  std::map<const Function*, SymbolTable> functionScopes;
  /// Functions in reverse-topological call order (callees before callers);
  /// the cost model profiles in this order.
  std::vector<const Function*> bottomUpOrder;

  /// Type of `name` as seen from `fn` (falls back to globals).
  const Type* lookup(const Function* fn, const std::string& name) const;
};

/// Analyzes `program` in place (assigns statement ids). Throws
/// hetpar::SemaError on any violation.
SemaResult analyze(Program& program);

}  // namespace hetpar::frontend
