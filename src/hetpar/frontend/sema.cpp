#include "hetpar/frontend/sema.hpp"

#include <set>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::frontend {

namespace {

[[noreturn]] void fail(const SourceLoc& loc, const std::string& what) {
  throw SemaError(strings::format("sema error at line %d: %s", loc.line, what.c_str()));
}

/// Alpha-renames locals so every name within a function is unique and
/// distinct from all globals. C scoping (blocks, loop headers, branches) is
/// honored during the rewrite; afterwards a flat per-function symbol table
/// is exact, which keeps every downstream analysis simple.
class Renamer {
 public:
  Renamer(Program& program, const std::set<std::string>& globals)
      : program_(program), globals_(globals) {}

  void run() {
    for (auto& f : program_.functions) renameFunction(*f);
  }

 private:
  void renameFunction(Function& fn) {
    used_ = globals_;
    counters_.clear();
    scopes_.clear();
    scopes_.emplace_back();
    for (auto& p : fn.params) p.name = declare(p.name);
    for (auto& s : fn.body) renameStmt(*s);
    scopes_.pop_back();
  }

  std::string declare(const std::string& name) {
    require<SemaError>(scopes_.back().count(name) == 0,
                       "redeclaration of '" + name + "' in the same scope");
    std::string unique = name;
    while (used_.count(unique) > 0)
      unique = name + "_" + std::to_string(++counters_[name]);
    used_.insert(unique);
    scopes_.back()[name] = unique;
    return unique;
  }

  std::string resolve(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return name;  // global or undeclared (sema reports the latter)
  }

  void renameExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::VarRef:
        static_cast<VarRef&>(e).name = resolve(static_cast<VarRef&>(e).name);
        break;
      case ExprKind::Index: {
        auto& x = static_cast<IndexExpr&>(e);
        x.name = resolve(x.name);
        for (auto& i : x.indices) renameExpr(*i);
        break;
      }
      case ExprKind::Unary:
        renameExpr(*static_cast<UnaryExpr&>(e).operand);
        break;
      case ExprKind::Binary: {
        auto& x = static_cast<BinaryExpr&>(e);
        renameExpr(*x.lhs);
        renameExpr(*x.rhs);
        break;
      }
      case ExprKind::Call:
        for (auto& a : static_cast<CallExpr&>(e).args) renameExpr(*a);
        break;
      default:
        break;
    }
  }

  void renameBody(std::vector<StmtPtr>& body) {
    scopes_.emplace_back();
    for (auto& s : body) renameStmt(*s);
    scopes_.pop_back();
  }

  void renameStmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(stmt);
        if (d.init) renameExpr(*d.init);  // initializer sees the outer name
        d.name = declare(d.name);
        break;
      }
      case StmtKind::Assign: {
        auto& a = static_cast<AssignStmt&>(stmt);
        a.target = resolve(a.target);
        for (auto& i : a.indices) renameExpr(*i);
        renameExpr(*a.value);
        break;
      }
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(stmt);
        renameExpr(*s.cond);
        renameBody(s.thenBody);
        renameBody(s.elseBody);
        break;
      }
      case StmtKind::For: {
        auto& s = static_cast<ForStmt&>(stmt);
        scopes_.emplace_back();  // loop-header declarations scope to the loop
        if (s.init) renameStmt(*s.init);
        if (s.cond) renameExpr(*s.cond);
        if (s.step) renameStmt(*s.step);
        renameBody(s.body);
        scopes_.pop_back();
        break;
      }
      case StmtKind::While: {
        auto& s = static_cast<WhileStmt&>(stmt);
        renameExpr(*s.cond);
        renameBody(s.body);
        break;
      }
      case StmtKind::Return: {
        auto& s = static_cast<ReturnStmt&>(stmt);
        if (s.value) renameExpr(*s.value);
        break;
      }
      case StmtKind::Expr:
        renameExpr(*static_cast<ExprStmt&>(stmt).expr);
        break;
      case StmtKind::Block:
        renameBody(static_cast<BlockStmt&>(stmt).body);
        break;
    }
  }

  Program& program_;
  const std::set<std::string>& globals_;
  std::set<std::string> used_;
  std::map<std::string, int> counters_;
  std::vector<std::map<std::string, std::string>> scopes_;
};

class Sema {
 public:
  explicit Sema(Program& program) : program_(program) {}

  SemaResult run() {
    collectGlobals();
    {
      std::set<std::string> globalNames;
      for (const auto& [name, type] : result_.globals) {
        (void)type;
        globalNames.insert(name);
      }
      Renamer(program_, globalNames).run();
    }
    for (auto& f : program_.functions) analyzeFunction(*f);
    require<SemaError>(program_.findFunction("main") != nullptr,
                       "program has no 'main' function");
    checkCallGraph();
    assignIds();
    return std::move(result_);
  }

 private:
  void collectGlobals() {
    for (const auto& g : program_.globals) {
      require<SemaError>(g->kind == StmtKind::Decl, "global scope allows declarations only");
      const auto& d = static_cast<const DeclStmt&>(*g);
      if (d.type.isVoid()) fail(d.loc, "variable '" + d.name + "' has void type");
      const bool inserted = result_.globals.emplace(d.name, d.type).second;
      if (!inserted) fail(d.loc, "duplicate global '" + d.name + "'");
      if (d.init) checkExpr(*d.init, result_.globals, nullptr);
    }
  }

  void analyzeFunction(Function& fn) {
    require<SemaError>(seenFunctions_.insert(fn.name).second,
                       "duplicate function '" + fn.name + "'");
    require<SemaError>(!isBuiltinFunction(fn.name),
                       "function '" + fn.name + "' shadows a math builtin");
    SymbolTable scope = result_.globals;
    for (const auto& p : fn.params) {
      if (p.type.isVoid()) fail(fn.loc, "parameter '" + p.name + "' has void type");
      // Parameters may shadow globals (scope.insert_or_assign), but not
      // repeat each other.
      require<SemaError>(scope.count(p.name) == 0 || result_.globals.count(p.name) > 0,
                         "duplicate parameter '" + p.name + "' in '" + fn.name + "'");
      scope.insert_or_assign(p.name, p.type);
    }
    for (auto& s : fn.body) checkStmt(*s, scope, fn);
    result_.functionScopes.emplace(&fn, std::move(scope));
  }

  void declare(const DeclStmt& d, SymbolTable& scope) {
    if (d.type.isVoid()) fail(d.loc, "variable '" + d.name + "' has void type");
    // Unique within the function (flat scope keeps analyses simple); may
    // shadow a same-named global.
    if (scope.count(d.name) > 0 && result_.globals.count(d.name) == 0)
      fail(d.loc, "redeclaration of '" + d.name + "'");
    scope.insert_or_assign(d.name, d.type);
  }

  void checkStmt(Stmt& stmt, SymbolTable& scope, const Function& fn) {
    switch (stmt.kind) {
      case StmtKind::Decl: {
        auto& d = static_cast<DeclStmt&>(stmt);
        if (d.init) {
          checkExpr(*d.init, scope, &fn);
          if (d.type.isArray()) fail(d.loc, "array initializers are not supported");
        }
        declare(d, scope);
        break;
      }
      case StmtKind::Assign: {
        auto& a = static_cast<AssignStmt&>(stmt);
        auto it = scope.find(a.target);
        if (it == scope.end()) fail(a.loc, "assignment to undeclared '" + a.target + "'");
        const Type& t = it->second;
        if (a.indices.size() != t.dims.size())
          fail(a.loc, strings::format("'%s' expects %zu indices, got %zu", a.target.c_str(),
                                      t.dims.size(), a.indices.size()));
        for (const auto& i : a.indices) checkExpr(*i, scope, &fn);
        checkExpr(*a.value, scope, &fn);
        break;
      }
      case StmtKind::If: {
        auto& s = static_cast<IfStmt&>(stmt);
        checkExpr(*s.cond, scope, &fn);
        for (auto& c : s.thenBody) checkStmt(*c, scope, fn);
        for (auto& c : s.elseBody) checkStmt(*c, scope, fn);
        break;
      }
      case StmtKind::For: {
        auto& s = static_cast<ForStmt&>(stmt);
        if (s.init) checkStmt(*s.init, scope, fn);
        if (s.cond) checkExpr(*s.cond, scope, &fn);
        if (s.step) checkStmt(*s.step, scope, fn);
        require<SemaError>(s.cond != nullptr, "for-loops must have a condition");
        for (auto& c : s.body) checkStmt(*c, scope, fn);
        break;
      }
      case StmtKind::While: {
        auto& s = static_cast<WhileStmt&>(stmt);
        checkExpr(*s.cond, scope, &fn);
        for (auto& c : s.body) checkStmt(*c, scope, fn);
        break;
      }
      case StmtKind::Return: {
        auto& s = static_cast<ReturnStmt&>(stmt);
        if (s.value) {
          checkExpr(*s.value, scope, &fn);
          if (fn.returnType.isVoid())
            fail(s.loc, "'" + fn.name + "' returns void but returns a value");
        } else if (!fn.returnType.isVoid()) {
          fail(s.loc, "'" + fn.name + "' must return a value");
        }
        break;
      }
      case StmtKind::Expr: {
        auto& s = static_cast<ExprStmt&>(stmt);
        checkExpr(*s.expr, scope, &fn);
        break;
      }
      case StmtKind::Block: {
        auto& s = static_cast<BlockStmt&>(stmt);
        for (auto& c : s.body) checkStmt(*c, scope, fn);
        break;
      }
    }
  }

  void checkExpr(const Expr& expr, const SymbolTable& scope, const Function* fn) {
    switch (expr.kind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
        break;
      case ExprKind::VarRef: {
        const auto& e = static_cast<const VarRef&>(expr);
        auto it = scope.find(e.name);
        if (it == scope.end()) fail(e.loc, "use of undeclared '" + e.name + "'");
        // Bare array references are only valid as call arguments; those are
        // checked in the Call case, so a VarRef reaching here must be scalar.
        break;
      }
      case ExprKind::Index: {
        const auto& e = static_cast<const IndexExpr&>(expr);
        auto it = scope.find(e.name);
        if (it == scope.end()) fail(e.loc, "use of undeclared '" + e.name + "'");
        if (e.indices.size() != it->second.dims.size())
          fail(e.loc, strings::format("'%s' expects %zu indices, got %zu", e.name.c_str(),
                                      it->second.dims.size(), e.indices.size()));
        for (const auto& i : e.indices) checkExpr(*i, scope, fn);
        break;
      }
      case ExprKind::Unary:
        checkExpr(*static_cast<const UnaryExpr&>(expr).operand, scope, fn);
        break;
      case ExprKind::Binary: {
        const auto& e = static_cast<const BinaryExpr&>(expr);
        checkExpr(*e.lhs, scope, fn);
        checkExpr(*e.rhs, scope, fn);
        break;
      }
      case ExprKind::Call: {
        const auto& e = static_cast<const CallExpr&>(expr);
        if (isBuiltinFunction(e.callee)) {
          if (e.args.size() != 1) fail(e.loc, "builtin '" + e.callee + "' takes one argument");
          checkExpr(*e.args[0], scope, fn);
          break;
        }
        const Function* callee = program_.findFunction(e.callee);
        if (callee == nullptr) fail(e.loc, "call to unknown function '" + e.callee + "'");
        if (callee->params.size() != e.args.size())
          fail(e.loc, strings::format("'%s' takes %zu arguments, got %zu", e.callee.c_str(),
                                      callee->params.size(), e.args.size()));
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Param& p = callee->params[i];
          const Expr& arg = *e.args[i];
          if (p.type.isArray()) {
            // Array parameters must be passed whole arrays by name.
            if (arg.kind != ExprKind::VarRef)
              fail(arg.loc, "array parameter '" + p.name + "' needs an array argument");
            const auto& ref = static_cast<const VarRef&>(arg);
            auto it = scope.find(ref.name);
            if (it == scope.end()) fail(arg.loc, "use of undeclared '" + ref.name + "'");
            if (it->second.dims != p.type.dims || it->second.scalar != p.type.scalar)
              fail(arg.loc, "array argument '" + ref.name + "' does not match parameter '" +
                                p.name + "' of type " + p.type.str());
          } else {
            checkExpr(arg, scope, fn);
          }
        }
        if (fn != nullptr) callEdges_.emplace(fn->name, e.callee);
        else fail(e.loc, "calls are not allowed in global initializers");
        break;
      }
    }
  }

  void checkCallGraph() {
    // DFS cycle detection over user functions; also records bottom-up order.
    std::map<std::string, int> state;  // 0 unvisited, 1 in stack, 2 done
    std::vector<const Function*> order;
    std::function<void(const Function&)> dfs = [&](const Function& fn) {
      state[fn.name] = 1;
      for (const auto& [caller, callee] : callEdges_) {
        if (caller != fn.name) continue;
        const Function* next = program_.findFunction(callee);
        HETPAR_CHECK(next != nullptr);
        if (state[callee] == 1)
          throw SemaError("recursive call involving '" + callee +
                          "' (mini-C programs must have acyclic call graphs)");
        if (state[callee] == 0) dfs(*next);
      }
      state[fn.name] = 2;
      order.push_back(&fn);
    };
    for (const auto& f : program_.functions)
      if (state[f->name] == 0) dfs(*f);
    result_.bottomUpOrder = std::move(order);
  }

  void assignIds() {
    int next = 0;
    forEachStmt(program_, [&](Stmt& s) { s.id = next++; });
    result_.numStatements = next;
  }

  Program& program_;
  SemaResult result_;
  std::set<std::string> seenFunctions_;
  std::multimap<std::string, std::string> callEdges_;  // caller -> callee
};

}  // namespace

const Type* SemaResult::lookup(const Function* fn, const std::string& name) const {
  if (fn != nullptr) {
    auto fit = functionScopes.find(fn);
    if (fit != functionScopes.end()) {
      auto it = fit->second.find(name);
      if (it != fit->second.end()) return &it->second;
    }
  }
  auto it = globals.find(name);
  return it == globals.end() ? nullptr : &it->second;
}

SemaResult analyze(Program& program) { return Sema(program).run(); }

}  // namespace hetpar::frontend
