#include "hetpar/frontend/lexer.hpp"

#include <array>
#include <cctype>
#include <cstdlib>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::frontend {

namespace {

bool isKeywordWord(const std::string& word) {
  static const std::array<const char*, 9> kKeywords = {"int",   "float", "double",
                                                       "void",  "if",    "else",
                                                       "for",   "while", "return"};
  for (const char* k : kKeywords)
    if (word == k) return true;
  return false;
}

// Multi-character punctuation, longest-match-first.
const char* kPunct2[] = {"<=", ">=", "==", "!=", "&&", "||", "++", "--",
                         "+=", "-=", "*=", "/="};
const char kPunct1[] = "+-*/%<>=!()[]{},;";

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  std::size_t i = 0;

  auto loc = [&] { return SourceLoc{line, column}; };
  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < source.size(); ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
  };

  while (i < source.size()) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      const SourceLoc start = loc();
      advance(2);
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) advance(1);
      require<ParseError>(i + 1 < source.size(),
                          strings::format("unterminated comment at line %d", start.line));
      advance(2);
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.loc = loc();
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) || source[i] == '_'))
        advance(1);
      t.text = std::string(source.substr(start, i - start));
      t.kind = isKeywordWord(t.text) ? TokenKind::Keyword : TokenKind::Identifier;
      tokens.push_back(std::move(t));
      continue;
    }
    // Numeric literals.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      Token t;
      t.loc = loc();
      std::size_t start = i;
      bool isFloat = false;
      while (i < source.size()) {
        const char d = source[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          advance(1);
        } else if (d == '.' && !isFloat) {
          isFloat = true;
          advance(1);
        } else if ((d == 'e' || d == 'E') && i + 1 < source.size() &&
                   (std::isdigit(static_cast<unsigned char>(source[i + 1])) ||
                    source[i + 1] == '+' || source[i + 1] == '-')) {
          isFloat = true;
          advance(2);
        } else if (d == 'f' && isFloat) {
          advance(1);
          break;
        } else {
          break;
        }
      }
      std::string text(source.substr(start, i - start));
      if (!text.empty() && text.back() == 'f') text.pop_back();
      if (isFloat) {
        t.kind = TokenKind::FloatLiteral;
        t.floatValue = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokenKind::IntLiteral;
        t.intValue = std::strtoll(text.c_str(), nullptr, 10);
      }
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    // Two-character punctuation.
    bool matched = false;
    if (i + 1 < source.size()) {
      const std::string_view two = source.substr(i, 2);
      for (const char* p : kPunct2) {
        if (two == p) {
          Token t;
          t.loc = loc();
          t.kind = TokenKind::Punct;
          t.text = std::string(two);
          tokens.push_back(std::move(t));
          advance(2);
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    // Single-character punctuation.
    for (const char* p = kPunct1; *p; ++p) {
      if (c == *p) {
        Token t;
        t.loc = loc();
        t.kind = TokenKind::Punct;
        t.text = std::string(1, c);
        tokens.push_back(std::move(t));
        advance(1);
        matched = true;
        break;
      }
    }
    require<ParseError>(matched, strings::format("unexpected character '%c' at line %d column %d",
                                                 c, line, column));
  }

  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.loc = loc();
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace hetpar::frontend
