// Compilation session: one program through the staged tool flow.
//
// The paper's toolflow is inherently staged — sequential C in, HTG
// construction, cost annotation, ILP-based parallelization, simulation,
// spec emission — and before this subsystem existed every entry point
// (hetparc, hetpar-fuzz, each bench binary, the verify harness) wired those
// stages by hand. A Session owns the artifacts of one run (source, AST,
// HTG + FrontendBundle, ParallelizeOutcome, sim numbers, emitted specs) and
// produces them through named passes:
//
//   parse        source -> AST                          (frontend/parser)
//   sema         symbol/type analysis                   (frontend/sema)
//   sections     def/use + array-section analyses       (ir/defuse, ir/sections)
//   htg          profile + graph build + validation     (cost/interp, htg)
//   parallelize  Algorithm 1 / cached outcome           (parallel, artifact cache)
//   simulate     flatten + discrete-event simulation    (sched, sim)
//   emit         annotated source / MPA spec / premap / dot   (codegen, htg/dot)
//
// Every pass execution is recorded (wall time, artifact size, persistent
// cache traffic) in the session and in the process-wide TimingRegistry.
//
// Passes are lazy and idempotent: each runs at most once per session (emit
// artifacts once per requested artifact) and pulls in its prerequisites.
// The `parallelize` pass consults the optional persistent ArtifactCache
// under `outcomeKey()` — a digest of source, platform, dependence mode and
// the outcome-relevant parallelizer options — and falls back to a clean
// solve on any miss, corruption or version mismatch. Determinism boundary:
// everything a Session computes is independent of `parallelizer.jobs` and
// of cache state (hits return byte-identical outcomes); the only documented
// nondeterminism is the wall-clock ILP time limit, exactly as in the
// underlying solve engine (DESIGN.md §7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/pipeline/artifact_cache.hpp"
#include "hetpar/pipeline/pass.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::pipeline {

/// Runs the frontend passes (parse, sema, sections, htg) standalone,
/// recording timings into `records` (optional) and the global registry.
/// This is the pipeline-client replacement for htg::buildFromSource; the
/// produced bundle is bit-identical to it.
htg::FrontendBundle buildFrontend(std::string_view source,
                                  ir::DependenceMode mode = ir::DependenceMode::Conservative,
                                  ir::FlowMode flow = ir::FlowMode::Conservative,
                                  std::vector<PassRecord>* records = nullptr);

/// Runs the parallelize pass standalone over an existing graph/timing pair
/// (no persistent cache — there is no source to derive a key from). Used by
/// clients that plan one graph against synthetic platform views (verify
/// harness, homogeneous baseline sweeps).
parallel::ParallelizeOutcome runParallelize(const htg::Graph& graph,
                                            const cost::TimingModel& timing,
                                            const parallel::ParallelizerOptions& options,
                                            std::vector<PassRecord>* records = nullptr);

struct SessionInputs {
  std::string name;    ///< diagnostic label (file name, benchmark name)
  std::string source;  ///< the sequential mini-C program
  platform::Platform platform;
  ir::DependenceMode depMode = ir::DependenceMode::Conservative;
  /// FlowMode::Live runs the dataflow pass and prunes comm payloads by
  /// liveness; Conservative reproduces the historical graphs bit for bit.
  ir::FlowMode flowMode = ir::FlowMode::Conservative;
  /// Solver knobs. `dependenceMode`/`flowMode` are overwritten from
  /// `depMode`/`flowMode`; `jobs` and the region cache do not affect
  /// outcomes (and are excluded from the artifact key).
  parallel::ParallelizerOptions parallelizer;
  /// Optional persistent cache shared across sessions and processes.
  std::shared_ptr<ArtifactCache> artifactCache;
};

class Session {
 public:
  explicit Session(SessionInputs inputs);

  // The timing model and the HTG point into session-owned artifacts
  // (platform, AST), so a Session is pinned to its address.
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const SessionInputs& inputs() const { return inputs_; }
  const cost::TimingModel& timing() const { return *timing_; }

  /// parse + sema + sections + htg (validated); lazy, runs once.
  const htg::FrontendBundle& frontend();

  /// Algorithm 1 over the HTG, or a verified artifact-cache hit. On a hit
  /// the outcome's IlpStatistics are zeroed — no solving happened.
  const parallel::ParallelizeOutcome& parallelize();

  /// True when the last `parallelize()` was served from the artifact cache.
  bool parallelizeWasCached() const { return parallelizeCached_; }

  /// Planning-time estimates for the best root solution with the main task
  /// on `mainClass` (no pass: a table lookup).
  struct Estimates {
    double sequentialSeconds = 0.0;
    double parallelSeconds = 0.0;
  };
  Estimates estimates(platform::ClassId mainClass);

  /// Flatten + DES for sequential vs best-parallel on `mainClass`.
  struct SimNumbers {
    double sequentialSeconds = 0.0;
    double parallelSeconds = 0.0;
    std::size_t taskCount = 0;
  };
  SimNumbers simulate(platform::ClassId mainClass);

  /// Emit passes. Each renders from the session's artifacts; the dot
  /// emission overlays pruned conservative edges when the session runs in
  /// affine mode (building the conservative graph counts as emit work).
  std::string emitAnnotated(platform::ClassId mainClass);
  std::string emitParspec(platform::ClassId mainClass);
  std::string emitPremap(platform::ClassId mainClass);
  std::string emitDot();

  /// Content-addressed key of the parallelize artifact: digest of format
  /// version, source, platform description, dependence mode and the
  /// outcome-relevant parallelizer options (NOT jobs / cache wiring).
  std::string outcomeKey() const;

  /// Per-pass records in execution order (hetparc --explain-timings).
  const std::vector<PassRecord>& passes() const { return records_; }

 private:
  template <class F>
  auto timedPass(const char* name, long long cacheHits, long long cacheMisses, F&& fn);

  SessionInputs inputs_;
  std::unique_ptr<cost::TimingModel> timing_;  ///< wraps inputs_.platform
  std::vector<PassRecord> records_;

  std::unique_ptr<htg::FrontendBundle> bundle_;
  std::unique_ptr<parallel::ParallelizeOutcome> outcome_;
  bool parallelizeCached_ = false;
};

}  // namespace hetpar::pipeline
