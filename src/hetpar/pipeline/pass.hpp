// Pass bookkeeping for the staged compilation pipeline.
//
// Every Session runs its stages as named passes (parse, sema, sections,
// htg, parallelize, simulate, emit) and records one PassRecord per
// execution: wall time, an artifact-size estimate, and — for cacheable
// passes — whether the artifact came from the persistent cache. Records
// live in two places: the owning Session (per-run report, `hetparc
// --explain-timings`) and a process-wide TimingRegistry that aggregates
// across sessions (batch driver summary, hetpar-fuzz JSON report).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace hetpar::pipeline {

struct PassRecord {
  std::string name;
  double wallSeconds = 0.0;
  /// Rough size of the produced artifact in bytes (serialized size for
  /// cacheable artifacts, container byte estimates otherwise; 0 = unsized).
  long long artifactBytes = 0;
  /// Persistent-artifact-cache traffic attributable to this pass execution.
  /// Both stay 0 for passes with no cacheable artifact or when no cache is
  /// configured.
  long long cacheHits = 0;
  long long cacheMisses = 0;
};

struct PassTotals {
  long long runs = 0;
  double wallSeconds = 0.0;
  long long artifactBytes = 0;
  long long cacheHits = 0;
  long long cacheMisses = 0;
};

/// Thread-safe process-wide aggregation, keyed by pass name. Sessions and
/// the free-standing pipeline helpers report into `global()`; readers take a
/// snapshot. Purely observational: nothing in the pipeline consults it.
class TimingRegistry {
 public:
  static TimingRegistry& global();

  void record(const PassRecord& r);
  std::map<std::string, PassTotals> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PassTotals> totals_;
};

/// Renders a per-pass table (one line per pass plus a total line), used by
/// `hetparc --explain-timings`. Works for both a single session's records
/// and a registry snapshot collapsed into records.
std::string formatPassTable(const std::vector<PassRecord>& records);
std::string formatPassTable(const std::map<std::string, PassTotals>& totals);

}  // namespace hetpar::pipeline
