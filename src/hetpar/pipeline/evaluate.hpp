// Evaluation harness (paper Section V-VI), as a pipeline client: parallelize
// a benchmark with the heterogeneous tool and the homogeneous baseline [6],
// implement both solutions, and measure speedups on the simulated MPSoC.
// The measurement baseline is "the sequential execution on the main
// processor".
//
// Lived in sim/measure until the staged pipeline existed; it now drives a
// Session per benchmark (named passes, timing records, optional persistent
// artifact cache) instead of wiring the stages by hand.
#pragma once

#include <memory>
#include <string>

#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/pipeline/artifact_cache.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::pipeline {

/// The two application scenarios of Section VI-A.
enum class Scenario {
  Accelerator,  ///< (I) slow main core, faster cores act as accelerators
  SlowerCores,  ///< (II) fast main core, slower cores added to the platform
};

/// Main-core class for a scenario on a platform.
platform::ClassId mainClassFor(const platform::Platform& pf, Scenario scenario);

struct EvalOptions {
  parallel::ParallelizerOptions parallelizer;
  bool runHomogeneousBaseline = true;
  /// Optional persistent cache for the heterogeneous planning outcome
  /// (shared across benchmarks, platforms and processes).
  std::shared_ptr<ArtifactCache> artifactCache;
};

struct EvalResult {
  std::string benchmark;
  platform::ClassId mainClass = 0;
  double sequentialSeconds = 0.0;  ///< simulated, on the main core

  double heterogeneousSeconds = 0.0;
  double heterogeneousSpeedup = 0.0;
  parallel::IlpStatistics heterogeneousStats;

  double homogeneousSeconds = 0.0;
  double homogeneousSpeedup = 0.0;
  parallel::IlpStatistics homogeneousStats;

  double theoreticalLimit = 0.0;  ///< paper's dashed line
};

/// Full pipeline: frontend passes + both parallelizers + flatten + simulate.
/// Throws hetpar::Error on malformed input.
EvalResult evaluateBenchmark(const std::string& name, const std::string& source,
                             const platform::Platform& pf, Scenario scenario,
                             const EvalOptions& options = {});

/// Both scenarios at once. The heterogeneous parallelization depends only on
/// the platform, so it runs a single time and serves both scenarios; the
/// homogeneous baseline re-plans per scenario (its uniform platform view
/// derives from the scenario's main core).
struct ScenarioResults {
  EvalResult accelerator;
  EvalResult slowerCores;
};

ScenarioResults evaluateBenchmarkAllScenarios(const std::string& name,
                                              const std::string& source,
                                              const platform::Platform& pf,
                                              const EvalOptions& options = {});

}  // namespace hetpar::pipeline
