#include "hetpar/pipeline/artifact_cache.hpp"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "hetpar/pipeline/digest.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::pipeline {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'H', 'P', 'A', 'C'};

void putU32(std::string& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 4);
}

void putU64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.append(buf, 8);
}

void putF64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  putU64(out, bits);
}

void putI64(std::string& out, long long v) { putU64(out, static_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader; every getter reports failure instead
/// of reading past the end, so corrupt payloads decode to `false`, never UB.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool u32(std::uint32_t& v) {
    if (data_.size() - pos_ < 4) return failed_ = true, false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (data_.size() - pos_ < 8) return failed_ = true, false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    pos_ += 8;
    return true;
  }

  bool i64(long long& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    v = static_cast<long long>(bits);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t bits;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, 8);
    return true;
  }

  /// A count that will size a container: bounded by the bytes remaining
  /// (every element costs >= 1 byte), so corrupt lengths cannot trigger
  /// multi-gigabyte allocations.
  bool count(std::size_t& n) {
    std::uint64_t v;
    if (!u64(v)) return false;
    if (v > remaining()) return failed_ = true, false;
    n = static_cast<std::size_t>(v);
    return true;
  }

  bool bytes(std::string& out, std::size_t n) {
    if (remaining() < n) return failed_ = true, false;
    out.assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool ok() const { return !failed_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  require(!ec && fs::is_directory(dir_),
          "artifact cache: cannot create directory '" + dir_ + "'");
}

std::string ArtifactCache::pathFor(const std::string& key) const {
  return dir_ + "/" + key + ".art";
}

bool ArtifactCache::load(const std::string& key, std::string& payload) const {
  std::ifstream in(pathFor(key), std::ios::binary);
  if (!in.good()) {
    ++misses_;
    return false;
  }
  std::string file((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  Reader r(file);
  std::string magic;
  if (!r.bytes(magic, 4) || std::memcmp(magic.data(), kMagic, 4) != 0) {
    ++corrupt_;
    return false;
  }
  std::uint32_t version = 0;
  if (!r.u32(version)) {
    ++corrupt_;
    return false;
  }
  if (version != kFormatVersion) {
    ++version_;
    return false;
  }
  std::size_t keyLen = 0;
  std::string storedKey;
  std::uint64_t payloadLen = 0, checksum = 0;
  if (!r.count(keyLen) || !r.bytes(storedKey, keyLen) || !r.u64(payloadLen) ||
      !r.u64(checksum) || storedKey != key || r.remaining() != payloadLen) {
    ++corrupt_;
    return false;
  }
  std::string body;
  if (!r.bytes(body, static_cast<std::size_t>(payloadLen)) || fnv1a64(body) != checksum) {
    ++corrupt_;
    return false;
  }
  payload = std::move(body);
  ++hits_;
  return true;
}

bool ArtifactCache::store(const std::string& key, std::string_view payload) const {
  std::string file;
  file.reserve(payload.size() + key.size() + 32);
  file.append(kMagic, 4);
  putU32(file, kFormatVersion);
  putU64(file, key.size());
  file += key;
  putU64(file, payload.size());
  putU64(file, fnv1a64(payload));
  file.append(payload.data(), payload.size());

  // Unique temp name per (process, store): readers never see partial files,
  // and a concurrent writer's rename simply wins or loses whole-file.
  const std::string temp = strings::format(
      "%s/.tmp-%ld-%u", dir_.c_str(), static_cast<long>(::getpid()),
      tempCounter_.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      ++storeFailures_;
      return false;
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    if (!out.good()) {
      ++storeFailures_;
      return false;
    }
  }
  std::error_code ec;
  fs::rename(temp, pathFor(key), ec);
  if (ec) {
    ++storeFailures_;
    fs::remove(temp, ec);
    return false;
  }
  return true;
}

ArtifactCacheStats ArtifactCache::stats() const {
  ArtifactCacheStats s;
  s.hits = hits_.load();
  s.misses = misses_.load();
  s.rejectedCorrupt = corrupt_.load();
  s.rejectedVersion = version_.load();
  s.storeFailures = storeFailures_.load();
  return s;
}

namespace {

void putCandidate(std::string& out, const parallel::SolutionCandidate& c) {
  putI64(out, static_cast<long long>(c.kind));
  putI64(out, c.mainClass);
  putF64(out, c.timeSeconds);
  putU64(out, c.extraProcs.size());
  for (int e : c.extraProcs) putI64(out, e);
  putU64(out, c.taskClass.size());
  for (platform::ClassId t : c.taskClass) putI64(out, t);
  putU64(out, c.childTask.size());
  for (int t : c.childTask) putI64(out, t);
  putU64(out, c.childChoice.size());
  for (const parallel::SolutionRef& ref : c.childChoice) {
    putI64(out, ref.node);
    putI64(out, ref.index);
  }
  putU64(out, c.chunkIterations.size());
  for (double it : c.chunkIterations) putF64(out, it);
}

bool readCandidate(Reader& r, parallel::SolutionCandidate& c) {
  long long kind = 0, mainClass = 0;
  if (!r.i64(kind) || !r.i64(mainClass) || !r.f64(c.timeSeconds)) return false;
  if (kind < 0 || kind > static_cast<long long>(parallel::SolutionKind::LoopChunked))
    return false;
  c.kind = static_cast<parallel::SolutionKind>(kind);
  c.mainClass = static_cast<platform::ClassId>(mainClass);

  std::size_t n = 0;
  if (!r.count(n)) return false;
  c.extraProcs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    long long v;
    if (!r.i64(v)) return false;
    c.extraProcs[i] = static_cast<int>(v);
  }
  if (!r.count(n)) return false;
  c.taskClass.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    long long v;
    if (!r.i64(v)) return false;
    c.taskClass[i] = static_cast<platform::ClassId>(v);
  }
  if (!r.count(n)) return false;
  c.childTask.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    long long v;
    if (!r.i64(v)) return false;
    c.childTask[i] = static_cast<int>(v);
  }
  if (!r.count(n)) return false;
  c.childChoice.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    long long node, index;
    if (!r.i64(node) || !r.i64(index)) return false;
    c.childChoice[i].node = static_cast<htg::NodeId>(node);
    c.childChoice[i].index = static_cast<int>(index);
  }
  if (!r.count(n)) return false;
  c.chunkIterations.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    if (!r.f64(c.chunkIterations[i])) return false;
  return true;
}

}  // namespace

std::string serializeOutcome(const parallel::ParallelizeOutcome& outcome) {
  std::string out;
  putU64(out, outcome.table.size());
  for (const auto& [node, set] : outcome.table) {
    putI64(out, node);
    putU64(out, set.size());
    for (const parallel::SolutionCandidate& c : set.all()) putCandidate(out, c);
  }
  const parallel::IlpStatistics& s = outcome.stats;
  putI64(out, s.numIlps);
  putI64(out, s.numVars);
  putI64(out, s.numConstraints);
  putI64(out, s.bnbNodes);
  putI64(out, s.simplexIterations);
  putF64(out, s.wallSeconds);
  putI64(out, s.cacheHits);
  putI64(out, s.cacheMisses);
  return out;
}

bool deserializeOutcome(std::string_view payload, parallel::ParallelizeOutcome& out) {
  Reader r(payload);
  parallel::ParallelizeOutcome decoded;
  std::size_t numNodes = 0;
  if (!r.count(numNodes)) return false;
  for (std::size_t i = 0; i < numNodes; ++i) {
    long long node = 0;
    std::size_t numCands = 0;
    if (!r.i64(node) || !r.count(numCands)) return false;
    parallel::ParallelSet set;
    for (std::size_t c = 0; c < numCands; ++c) {
      parallel::SolutionCandidate cand;
      if (!readCandidate(r, cand)) return false;
      set.add(std::move(cand));
    }
    if (!decoded.table.emplace(static_cast<htg::NodeId>(node), std::move(set)).second)
      return false;  // duplicate node id: corrupt
  }
  parallel::IlpStatistics& s = decoded.stats;
  if (!r.i64(s.numIlps) || !r.i64(s.numVars) || !r.i64(s.numConstraints) ||
      !r.i64(s.bnbNodes) || !r.i64(s.simplexIterations) || !r.f64(s.wallSeconds) ||
      !r.i64(s.cacheHits) || !r.i64(s.cacheMisses))
    return false;
  if (!r.ok() || !r.atEnd()) return false;
  out = std::move(decoded);
  return true;
}

bool outcomeFitsGraph(const parallel::ParallelizeOutcome& outcome, const htg::Graph& graph) {
  const auto size = static_cast<htg::NodeId>(graph.size());
  for (const auto& [node, set] : outcome.table) {
    if (node < 0 || node >= size) return false;
    for (const parallel::SolutionCandidate& c : set.all()) {
      if (c.taskClass.empty()) return false;
      for (const parallel::SolutionRef& ref : c.childChoice)
        if (ref.node != htg::kNoNode && (ref.node < 0 || ref.node >= size)) return false;
    }
  }
  const auto root = outcome.table.find(graph.root());
  return root != outcome.table.end() && root->second.size() > 0;
}

}  // namespace hetpar::pipeline
