// Stable content digest for pipeline artifact keys.
//
// The persistent artifact cache (pipeline/artifact_cache.hpp) addresses
// entries by the digest of everything that determines a compilation's
// outcome: source text, platform description, dependence mode, and the
// outcome-relevant parallelizer knobs. The digest must be stable across
// processes and platforms, so it is a fixed algorithm (two independent
// 64-bit FNV-1a streams seeded with different offsets, concatenated to 128
// bits) rather than std::hash, whose value is implementation-defined.
//
// 128 bits keeps accidental collisions out of reach for any realistic cache
// population; corruption and version drift are handled separately by the
// cache file format, never by the key.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hetpar::pipeline {

class Digest {
 public:
  /// Raw bytes, no framing. Prefer the typed putters below, which
  /// length-prefix variable-size fields so adjacent fields cannot alias.
  void putBytes(const void* data, std::size_t n);

  /// Length-prefixed string (so "ab"+"c" != "a"+"bc").
  void put(std::string_view s);
  void putU64(std::uint64_t v);
  void putI64(long long v) { putU64(static_cast<std::uint64_t>(v)); }
  void putF64(double v);  ///< exact bit pattern: identical to the last ulp
  void putBool(bool v) { putU64(v ? 1 : 0); }

  /// 32 lowercase hex characters (128 bits). Safe as a file name.
  std::string hex() const;

 private:
  // FNV-1a offset basis / prime; the second stream starts from a distinct
  // seed so the two 64-bit halves are not correlated.
  std::uint64_t a_ = 0xcbf29ce484222325ULL;
  std::uint64_t b_ = 0x9ae16a3b2f90404fULL;
};

/// One-shot convenience over a single buffer (used for payload checksums).
std::uint64_t fnv1a64(std::string_view data);

}  // namespace hetpar::pipeline
