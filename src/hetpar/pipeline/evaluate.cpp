#include "hetpar/pipeline/evaluate.hpp"

#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/pipeline/session.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"

namespace hetpar::pipeline {

platform::ClassId mainClassFor(const platform::Platform& pf, Scenario scenario) {
  return scenario == Scenario::Accelerator ? pf.slowestClass() : pf.fastestClass();
}

namespace {

/// Fills one scenario's numbers given the session's heterogeneous outcome.
EvalResult evaluateScenario(const std::string& name, Session& session, Scenario scenario,
                            const parallel::IlpStatistics& hetStats,
                            const EvalOptions& options) {
  const platform::Platform& pf = session.inputs().platform;
  const htg::Graph& graph = session.frontend().graph;

  EvalResult result;
  result.benchmark = name;
  result.mainClass = mainClassFor(pf, scenario);
  result.theoreticalLimit = pf.theoreticalMaxSpeedup(result.mainClass);

  const cost::TimingModel& realTiming = session.timing();
  const int mainCore = pf.firstCoreOfClass(result.mainClass);

  // Baseline + heterogeneous tool: the session's simulate pass covers the
  // sequential reference and the class-aware implementation of the best
  // solution in one timed step.
  const Session::SimNumbers numbers = session.simulate(result.mainClass);
  result.sequentialSeconds = numbers.sequentialSeconds;
  result.heterogeneousStats = hetStats;
  result.heterogeneousSeconds = numbers.parallelSeconds;
  result.heterogeneousSpeedup = result.sequentialSeconds / result.heterogeneousSeconds;

  // Homogeneous baseline [6]: plans against a uniform view of the platform
  // (all cores look like the main one); its tasks land on the real cores
  // round-robin, oblivious to classes.
  if (options.runHomogeneousBaseline) {
    parallel::HomogeneousRun homog = parallel::runHomogeneousBaseline(
        graph, pf, result.mainClass, options.parallelizer);
    result.homogeneousStats = homog.outcome.stats;
    const parallel::SolutionRef best = homog.outcome.bestRoot(graph, 0);
    sched::FlattenOptions fo;
    fo.classAwareAllocation = false;
    const sched::FlattenResult flat =
        sched::flatten(graph, homog.outcome.table, best, realTiming, mainCore, fo);
    result.homogeneousSeconds = sim::simulate(flat.graph).makespanSeconds;
    result.homogeneousSpeedup = result.sequentialSeconds / result.homogeneousSeconds;
  }
  return result;
}

SessionInputs makeInputs(const std::string& name, const std::string& source,
                         const platform::Platform& pf, const EvalOptions& options) {
  SessionInputs inputs;
  inputs.name = name;
  inputs.source = source;
  inputs.platform = pf;
  inputs.depMode = options.parallelizer.dependenceMode;
  inputs.parallelizer = options.parallelizer;
  inputs.artifactCache = options.artifactCache;
  return inputs;
}

}  // namespace

EvalResult evaluateBenchmark(const std::string& name, const std::string& source,
                             const platform::Platform& pf, Scenario scenario,
                             const EvalOptions& options) {
  Session session(makeInputs(name, source, pf, options));
  const parallel::IlpStatistics hetStats = session.parallelize().stats;
  return evaluateScenario(name, session, scenario, hetStats, options);
}

ScenarioResults evaluateBenchmarkAllScenarios(const std::string& name,
                                              const std::string& source,
                                              const platform::Platform& pf,
                                              const EvalOptions& options) {
  Session session(makeInputs(name, source, pf, options));
  const parallel::IlpStatistics hetStats = session.parallelize().stats;
  ScenarioResults results;
  results.accelerator =
      evaluateScenario(name, session, Scenario::Accelerator, hetStats, options);
  results.slowerCores =
      evaluateScenario(name, session, Scenario::SlowerCores, hetStats, options);
  return results;
}

}  // namespace hetpar::pipeline
