// Concurrent batch driver: compile many programs through the staged
// pipeline, sharing the persistent artifact cache and the in-process ILP
// region cache across jobs.
//
// Concurrency model (same discipline as the solve engine's wavefront,
// DESIGN.md §7): jobs fan out over a fixed thread pool, but results are
// merged in submission order and each job's report text depends only on its
// own deterministic outcome — so `workers=1` is bit-identical to
// `workers=N`. Cache traffic (which job hits, which misses when two jobs
// race on the same key) is the one thing that varies with scheduling, which
// is why per-job reports never mention cache counters; aggregate counters
// are reported separately, outside the determinism boundary.
//
// Inner solver concurrency is forced to jobs=1: with many programs in
// flight the program level is the better place to spend the machine, and
// nesting both levels oversubscribes small boxes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/pipeline/session.hpp"

namespace hetpar::pipeline {

struct BatchJob {
  std::string name;    ///< display label (file path, benchmark name)
  std::string source;  ///< program text
};

struct BatchConfig {
  platform::Platform platform;
  /// Class running the main task; -1 = the platform's slowest class.
  platform::ClassId mainClass = -1;
  ir::DependenceMode depMode = ir::DependenceMode::Conservative;
  ir::FlowMode flowMode = ir::FlowMode::Conservative;
  parallel::ParallelizerOptions parallelizer;  ///< `jobs` ignored (forced 1)
  bool simulate = false;
  int workers = 1;  ///< concurrent jobs; <1 = hardware concurrency
  std::shared_ptr<ArtifactCache> artifactCache;        ///< shared, optional
  std::shared_ptr<parallel::IlpRegionCache> regionCache;  ///< shared, optional
};

struct BatchJobResult {
  std::string name;
  bool ok = false;
  std::string error;   ///< diagnostic when !ok
  std::string report;  ///< deterministic per-program report text
  bool outcomeCached = false;
  std::vector<PassRecord> passes;
};

struct BatchReport {
  std::vector<BatchJobResult> jobs;  ///< in submission order, always
  double wallSeconds = 0.0;
  int failures = 0;

  /// All jobs' pass records aggregated (order-insensitive totals).
  std::vector<PassRecord> allPasses() const;
};

/// Compiles every job; never throws for per-job failures (they are reported
/// in the corresponding slot so one broken file cannot sink a batch).
BatchReport runBatch(const std::vector<BatchJob>& jobs, const BatchConfig& config);

}  // namespace hetpar::pipeline
