#include "hetpar/pipeline/digest.hpp"

#include <cstring>

namespace hetpar::pipeline {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t step(std::uint64_t h, unsigned char byte) {
  return (h ^ byte) * kFnvPrime;
}

}  // namespace

void Digest::putBytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    a_ = step(a_, p[i]);
    b_ = step(b_, p[i]);
  }
}

void Digest::put(std::string_view s) {
  putU64(s.size());
  putBytes(s.data(), s.size());
}

void Digest::putU64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  putBytes(buf, 8);
}

void Digest::putF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  putU64(bits);
}

std::string Digest::hex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint64_t h : {a_, b_})
    for (int i = 15; i >= 0; --i) out.push_back(kHex[(h >> (4 * i)) & 0xf]);
  return out;
}

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) h = step(h, static_cast<unsigned char>(c));
  return h;
}

}  // namespace hetpar::pipeline
