// Persistent, content-addressed artifact cache for the compilation pipeline.
//
// Generalizes the in-process parallel/region_cache across processes: where
// the region cache memoizes individual ILP solves within one run, this cache
// persists whole per-program artifacts (today: the serialized
// ParallelizeOutcome — the expensive part of a compilation) keyed by a
// digest of everything that determines them (source + platform + dependence
// mode + outcome-relevant parallelizer options + a format version; see
// Session::outcomeKey).
//
// Trust model: entries are NEVER trusted. Every file carries a magic, a
// format-version stamp, an echo of its key, the payload length and a payload
// checksum; any mismatch (truncation, corruption, a cache written by an
// older build) is classified, counted and treated as a miss — the caller
// rebuilds and the bad entry is overwritten. Stores write to a unique temp
// file and rename into place, so concurrent writers (two batch jobs, two
// processes) race benignly: readers only ever observe complete files, and
// the last complete write wins. Deterministic outcomes make that overwrite
// byte-identical in practice.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "hetpar/parallel/parallelizer.hpp"

namespace hetpar::pipeline {

struct ArtifactCacheStats {
  long long hits = 0;
  long long misses = 0;            ///< key absent (cold)
  long long rejectedCorrupt = 0;   ///< truncated / checksum or key mismatch
  long long rejectedVersion = 0;   ///< format-version stamp from another build
  long long storeFailures = 0;     ///< I/O errors while persisting (non-fatal)
};

class ArtifactCache {
 public:
  /// Bump when the serialized artifact layout or key derivation changes;
  /// entries stamped with any other version are rebuilt, never decoded.
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Creates `dir` (and parents) if missing. Throws hetpar::Error when the
  /// directory cannot be created.
  explicit ArtifactCache(std::string dir);

  const std::string& directory() const { return dir_; }

  /// Fills `payload` and returns true on a verified hit; false otherwise
  /// (counting the reason). Never throws on bad cache contents.
  bool load(const std::string& key, std::string& payload) const;

  /// Persists `payload` under `key` (atomic rename). Returns false on I/O
  /// failure — callers proceed without caching; a cache must never turn a
  /// working compile into an error.
  bool store(const std::string& key, std::string_view payload) const;

  /// Path the entry for `key` lives at (exposed for robustness tests that
  /// truncate / corrupt / restamp entries on purpose).
  std::string pathFor(const std::string& key) const;

  ArtifactCacheStats stats() const;

 private:
  std::string dir_;
  mutable std::atomic<long long> hits_{0}, misses_{0}, corrupt_{0}, version_{0},
      storeFailures_{0};
  mutable std::atomic<unsigned> tempCounter_{0};
};

/// Byte-exact serialization of a ParallelizeOutcome (solution table +
/// statistics). Doubles are stored as their bit patterns, so a cache round
/// trip reproduces the outcome to the last ulp.
std::string serializeOutcome(const parallel::ParallelizeOutcome& outcome);

/// Bounds-checked decode; returns false on any malformed payload.
bool deserializeOutcome(std::string_view payload, parallel::ParallelizeOutcome& out);

/// Structural sanity of a decoded outcome against the graph it claims to
/// describe: node ids in range, the root has candidates. A digest collision
/// cannot realistically cause a mismatch — this guards against key-derivation
/// bugs, which must surface as a rebuild rather than an out-of-range access.
bool outcomeFitsGraph(const parallel::ParallelizeOutcome& outcome, const htg::Graph& graph);

}  // namespace hetpar::pipeline
