#include "hetpar/pipeline/session.hpp"

#include <chrono>

#include "hetpar/codegen/annotate.hpp"
#include "hetpar/codegen/mpa_spec.hpp"
#include "hetpar/codegen/premap_spec.hpp"
#include "hetpar/cost/interp.hpp"
#include "hetpar/frontend/parser.hpp"
#include "hetpar/htg/dot.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/pipeline/digest.hpp"
#include "hetpar/platform/parser.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void report(std::vector<PassRecord>* records, PassRecord rec) {
  TimingRegistry::global().record(rec);
  if (records != nullptr) records->push_back(std::move(rec));
}

}  // namespace

htg::FrontendBundle buildFrontend(std::string_view source, ir::DependenceMode mode,
                                  ir::FlowMode flow, std::vector<PassRecord>* records) {
  // Mirrors htg::buildFromSource stage for stage (same calls, same order),
  // adding only timing. The produced bundle is bit-identical to it.
  htg::FrontendBundle bundle;
  {
    const auto start = Clock::now();
    bundle.program = frontend::parseProgram(source);
    report(records, {"parse", secondsSince(start),
                     static_cast<long long>(source.size()), 0, 0});
  }
  {
    const auto start = Clock::now();
    bundle.sema = frontend::analyze(bundle.program);
    report(records, {"sema", secondsSince(start), 0, 0, 0});
  }
  {
    const auto start = Clock::now();
    bundle.defuse = std::make_unique<ir::DefUseAnalysis>(bundle.program, bundle.sema);
    if (flow == ir::FlowMode::Live) {
      // The dataflow pass builds its own constprop-sharpened section
      // analysis; adopt it so every downstream consumer sees one set. Its
      // time (liveness + constprop + diagnostics + the section build) is
      // booked under the separate "dataflow" record.
      bundle.dataflow = std::make_unique<ir::DataflowAnalysis>(bundle.program, bundle.sema,
                                                              *bundle.defuse);
      bundle.sections = bundle.dataflow->takeSections();
      report(records, {"dataflow", secondsSince(start), 0, 0, 0});
    } else {
      bundle.sections = std::make_unique<ir::SectionAnalysis>(bundle.program, bundle.sema);
      report(records, {"sections", secondsSince(start), 0, 0, 0});
    }
  }
  {
    const auto start = Clock::now();
    bundle.profile = cost::interpret(bundle.program, bundle.sema);
    ir::DependenceOptions dep;
    dep.mode = mode;
    dep.sections = bundle.sections.get();
    dep.flow = flow;
    dep.dataflow = bundle.dataflow.get();
    bundle.graph =
        htg::buildGraph({bundle.program, bundle.sema, *bundle.defuse, bundle.profile, dep});
    report(records, {"htg", secondsSince(start),
                     static_cast<long long>(bundle.graph.size() * sizeof(htg::Node)), 0, 0});
  }
  return bundle;
}

parallel::ParallelizeOutcome runParallelize(const htg::Graph& graph,
                                            const cost::TimingModel& timing,
                                            const parallel::ParallelizerOptions& options,
                                            std::vector<PassRecord>* records) {
  const auto start = Clock::now();
  parallel::Parallelizer tool(graph, timing, options);
  parallel::ParallelizeOutcome outcome = tool.run();
  report(records, {"parallelize", secondsSince(start),
                   static_cast<long long>(serializeOutcome(outcome).size()), 0, 0});
  return outcome;
}

Session::Session(SessionInputs inputs) : inputs_(std::move(inputs)) {
  timing_ = std::make_unique<cost::TimingModel>(inputs_.platform);
}

const htg::FrontendBundle& Session::frontend() {
  if (bundle_ != nullptr) return *bundle_;
  bundle_ = std::make_unique<htg::FrontendBundle>(
      buildFrontend(inputs_.source, inputs_.depMode, inputs_.flowMode, &records_));
  htg::validateOrThrow(bundle_->graph);
  return *bundle_;
}

std::string Session::outcomeKey() const {
  // Everything the outcome depends on, and nothing it does not: `jobs`,
  // the region cache and the artifact cache itself are excluded (the solve
  // engine guarantees outcome invariance across them, see DESIGN.md §7).
  Digest d;
  d.put("hetpar-parallelize-outcome");
  d.putU64(ArtifactCache::kFormatVersion);
  d.put(inputs_.source);
  d.put(platform::toText(inputs_.platform));
  d.putI64(static_cast<long long>(inputs_.depMode));
  d.putI64(static_cast<long long>(inputs_.flowMode));
  const parallel::ParallelizerOptions& po = inputs_.parallelizer;
  d.putI64(po.maxTasksPerRegion);
  d.putI64(po.chunkCount);
  d.putF64(po.minRegionTcoMultiple);
  d.putF64(po.ilpTimeLimitSeconds);
  d.putI64(po.ilpMaxNodes);
  d.putBool(po.enableChunking);
  d.putBool(po.enableParallelSetMapping);
  d.putI64(po.maxCandidatesPerClass);
  return d.hex();
}

const parallel::ParallelizeOutcome& Session::parallelize() {
  if (outcome_ != nullptr) return *outcome_;
  const htg::FrontendBundle& bundle = frontend();

  PassRecord rec;
  rec.name = "parallelize";
  const auto start = Clock::now();
  const std::string key = inputs_.artifactCache ? outcomeKey() : std::string();

  if (inputs_.artifactCache) {
    std::string payload;
    if (inputs_.artifactCache->load(key, payload)) {
      auto decoded = std::make_unique<parallel::ParallelizeOutcome>();
      if (deserializeOutcome(payload, *decoded) && outcomeFitsGraph(*decoded, bundle.graph)) {
        // A hit performed no solve: zero the statistics, like the in-process
        // region cache does.
        decoded->stats = parallel::IlpStatistics{};
        outcome_ = std::move(decoded);
        parallelizeCached_ = true;
        rec.cacheHits = 1;
        rec.artifactBytes = static_cast<long long>(payload.size());
        rec.wallSeconds = secondsSince(start);
        TimingRegistry::global().record(rec);
        records_.push_back(std::move(rec));
        return *outcome_;
      }
      // Checksum-valid but undecodable (format bug, key collision): rebuild.
    }
  }

  parallel::ParallelizerOptions po = inputs_.parallelizer;
  po.dependenceMode = inputs_.depMode;
  po.flowMode = inputs_.flowMode;
  parallel::Parallelizer tool(bundle.graph, *timing_, po);
  outcome_ = std::make_unique<parallel::ParallelizeOutcome>(tool.run());
  parallelizeCached_ = false;

  const std::string payload = serializeOutcome(*outcome_);
  rec.artifactBytes = static_cast<long long>(payload.size());
  if (inputs_.artifactCache) {
    inputs_.artifactCache->store(key, payload);
    rec.cacheMisses = 1;
  }
  rec.wallSeconds = secondsSince(start);
  TimingRegistry::global().record(rec);
  records_.push_back(std::move(rec));
  return *outcome_;
}

Session::Estimates Session::estimates(platform::ClassId mainClass) {
  const parallel::ParallelizeOutcome& outcome = parallelize();
  const htg::Graph& graph = frontend().graph;
  const parallel::SolutionRef best = outcome.bestRoot(graph, mainClass);
  require(best.valid(), "no root solution for the requested main class");
  const auto& rootSet = outcome.table.at(graph.root());
  Estimates e;
  e.sequentialSeconds = rootSet.at(rootSet.sequentialFor(mainClass)).timeSeconds;
  e.parallelSeconds = rootSet.at(best.index).timeSeconds;
  return e;
}

Session::SimNumbers Session::simulate(platform::ClassId mainClass) {
  const parallel::ParallelizeOutcome& outcome = parallelize();
  const htg::Graph& graph = frontend().graph;

  const auto start = Clock::now();
  const int mainCore = inputs_.platform.firstCoreOfClass(mainClass);
  SimNumbers numbers;
  numbers.sequentialSeconds =
      sim::simulate(sched::flattenSequential(graph, *timing_, mainCore).graph).makespanSeconds;
  const parallel::SolutionRef best = outcome.bestRoot(graph, mainClass);
  const sched::FlattenResult flat =
      sched::flatten(graph, outcome.table, best, *timing_, mainCore);
  numbers.parallelSeconds = sim::simulate(flat.graph).makespanSeconds;
  numbers.taskCount = flat.graph.tasks.size();
  report(&records_, {"simulate", secondsSince(start),
                     static_cast<long long>(flat.graph.tasks.size() * sizeof(sched::SimTask)),
                     0, 0});
  return numbers;
}

std::string Session::emitAnnotated(platform::ClassId mainClass) {
  const parallel::ParallelizeOutcome& outcome = parallelize();
  const htg::FrontendBundle& bundle = frontend();
  const auto start = Clock::now();
  const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);
  std::string text = codegen::annotateSource(bundle.program, bundle.graph, outcome.table, best,
                                             inputs_.platform);
  report(&records_, {"emit", secondsSince(start), static_cast<long long>(text.size()), 0, 0});
  return text;
}

std::string Session::emitParspec(platform::ClassId mainClass) {
  const parallel::ParallelizeOutcome& outcome = parallelize();
  const htg::Graph& graph = frontend().graph;
  const auto start = Clock::now();
  const parallel::SolutionRef best = outcome.bestRoot(graph, mainClass);
  std::string text = codegen::mpaSpec(graph, outcome.table, best);
  report(&records_, {"emit", secondsSince(start), static_cast<long long>(text.size()), 0, 0});
  return text;
}

std::string Session::emitPremap(platform::ClassId mainClass) {
  const parallel::ParallelizeOutcome& outcome = parallelize();
  const htg::Graph& graph = frontend().graph;
  const auto start = Clock::now();
  const parallel::SolutionRef best = outcome.bestRoot(graph, mainClass);
  std::string text =
      codegen::premapSpec(graph, outcome.table, best, inputs_.platform);
  report(&records_, {"emit", secondsSince(start), static_cast<long long>(text.size()), 0, 0});
  return text;
}

std::string Session::emitDot() {
  const htg::Graph& graph = frontend().graph;
  std::string text;
  if (inputs_.depMode == ir::DependenceMode::Affine ||
      inputs_.flowMode == ir::FlowMode::Live) {
    // Overlay the conservative edges the refined analyses pruned; building
    // the conservative twin records its own frontend passes (it IS a second
    // frontend run — --explain-timings shows it honestly).
    const htg::FrontendBundle cons =
        buildFrontend(inputs_.source, ir::DependenceMode::Conservative,
                      ir::FlowMode::Conservative, &records_);
    const auto start = Clock::now();
    text = htg::toDotWithBaseline(graph, cons.graph);
    report(&records_, {"emit", secondsSince(start), static_cast<long long>(text.size()), 0, 0});
  } else {
    const auto start = Clock::now();
    text = htg::toDot(graph);
    report(&records_, {"emit", secondsSince(start), static_cast<long long>(text.size()), 0, 0});
  }
  return text;
}

}  // namespace hetpar::pipeline
