#include "hetpar/pipeline/pass.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::pipeline {

TimingRegistry& TimingRegistry::global() {
  static TimingRegistry registry;
  return registry;
}

void TimingRegistry::record(const PassRecord& r) {
  std::lock_guard<std::mutex> lock(mutex_);
  PassTotals& t = totals_[r.name];
  ++t.runs;
  t.wallSeconds += r.wallSeconds;
  t.artifactBytes += r.artifactBytes;
  t.cacheHits += r.cacheHits;
  t.cacheMisses += r.cacheMisses;
}

std::map<std::string, PassTotals> TimingRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return totals_;
}

void TimingRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
}

namespace {

std::string tableHeader() {
  return strings::format("%-12s %6s %12s %14s %10s %10s\n", "pass", "runs", "wall [ms]",
                         "artifact [B]", "cache hit", "cache miss");
}

std::string tableLine(const std::string& name, const PassTotals& t) {
  return strings::format("%-12s %6lld %12.3f %14lld %10lld %10lld\n", name.c_str(), t.runs,
                         t.wallSeconds * 1e3, t.artifactBytes, t.cacheHits, t.cacheMisses);
}

}  // namespace

std::string formatPassTable(const std::vector<PassRecord>& records) {
  // Collapse repeated executions of the same pass (e.g. several `emit`
  // artifacts) while keeping first-execution order.
  std::map<std::string, PassTotals> totals;
  std::vector<std::string> order;
  for (const PassRecord& r : records) {
    if (totals.find(r.name) == totals.end()) order.push_back(r.name);
    PassTotals& t = totals[r.name];
    ++t.runs;
    t.wallSeconds += r.wallSeconds;
    t.artifactBytes += r.artifactBytes;
    t.cacheHits += r.cacheHits;
    t.cacheMisses += r.cacheMisses;
  }
  std::string out = tableHeader();
  PassTotals sum;
  for (const std::string& name : order) {
    const PassTotals& t = totals[name];
    out += tableLine(name, t);
    sum.runs += t.runs;
    sum.wallSeconds += t.wallSeconds;
    sum.artifactBytes += t.artifactBytes;
    sum.cacheHits += t.cacheHits;
    sum.cacheMisses += t.cacheMisses;
  }
  out += tableLine("total", sum);
  return out;
}

std::string formatPassTable(const std::map<std::string, PassTotals>& totals) {
  std::string out = tableHeader();
  PassTotals sum;
  for (const auto& [name, t] : totals) {
    out += tableLine(name, t);
    sum.runs += t.runs;
    sum.wallSeconds += t.wallSeconds;
    sum.artifactBytes += t.artifactBytes;
    sum.cacheHits += t.cacheHits;
    sum.cacheMisses += t.cacheMisses;
  }
  out += tableLine("total", sum);
  return out;
}

}  // namespace hetpar::pipeline
