#include "hetpar/pipeline/batch.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>

#include "hetpar/support/strings.hpp"
#include "hetpar/support/thread_pool.hpp"

namespace hetpar::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

BatchJobResult compileOne(const BatchJob& job, const BatchConfig& config) {
  BatchJobResult result;
  result.name = job.name;
  try {
    SessionInputs inputs;
    inputs.name = job.name;
    inputs.source = job.source;
    inputs.platform = config.platform;
    inputs.depMode = config.depMode;
    inputs.flowMode = config.flowMode;
    inputs.parallelizer = config.parallelizer;
    inputs.parallelizer.jobs = 1;
    inputs.parallelizer.regionCache = config.regionCache;
    inputs.artifactCache = config.artifactCache;
    Session session(std::move(inputs));

    const platform::ClassId mainClass =
        config.mainClass >= 0 ? config.mainClass : config.platform.slowestClass();

    // Same lines, same formats as single-program hetparc: batch output for a
    // program is the output the program would get alone.
    const Session::Estimates est = session.estimates(mainClass);
    result.report = strings::format(
        "estimated: sequential %.3f ms, parallel %.3f ms (%.2fx, limit %.2fx)\n",
        est.sequentialSeconds * 1e3, est.parallelSeconds * 1e3,
        est.sequentialSeconds / est.parallelSeconds,
        config.platform.theoreticalMaxSpeedup(mainClass));
    if (config.simulate) {
      const Session::SimNumbers sim = session.simulate(mainClass);
      result.report += strings::format(
          "simulated: sequential %.3f ms, parallel %.3f ms (%.2fx) over %zu tasks\n",
          sim.sequentialSeconds * 1e3, sim.parallelSeconds * 1e3,
          sim.sequentialSeconds / sim.parallelSeconds, sim.taskCount);
    }
    result.outcomeCached = session.parallelizeWasCached();
    result.passes = session.passes();
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

}  // namespace

std::vector<PassRecord> BatchReport::allPasses() const {
  std::vector<PassRecord> all;
  for (const BatchJobResult& job : jobs)
    all.insert(all.end(), job.passes.begin(), job.passes.end());
  return all;
}

BatchReport runBatch(const std::vector<BatchJob>& jobs, const BatchConfig& config) {
  const auto start = Clock::now();
  BatchReport report;
  report.jobs.resize(jobs.size());

  const int requested = support::ThreadPool::resolveJobs(config.workers);
  const int workers = std::min<int>(requested, static_cast<int>(jobs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i)
      report.jobs[i] = compileOne(jobs[i], config);
  } else {
    support::ThreadPool pool(workers);
    std::vector<std::future<BatchJobResult>> futures;
    futures.reserve(jobs.size());
    for (const BatchJob& job : jobs)
      futures.push_back(pool.submit([&job, &config] { return compileOne(job, config); }));
    // Collect in submission order: the merged report is independent of which
    // worker finished first.
    for (std::size_t i = 0; i < jobs.size(); ++i) report.jobs[i] = futures[i].get();
  }

  for (const BatchJobResult& job : report.jobs)
    if (!job.ok) ++report.failures;
  report.wallSeconds = secondsSince(start);
  return report;
}

}  // namespace hetpar::pipeline
