#include "hetpar/parallel/stats.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::parallel {

std::string IlpStatistics::summary() const {
  std::string text =
      strings::format("%lld ILPs, %s vars, %s constraints, %s bnb nodes, %.2fs",
                      numIlps, strings::formatThousands(numVars).c_str(),
                      strings::formatThousands(numConstraints).c_str(),
                      strings::formatThousands(bnbNodes).c_str(), wallSeconds);
  if (cacheHits + cacheMisses > 0)
    text += strings::format(", %lld cache hits / %lld misses", cacheHits, cacheMisses);
  return text;
}

}  // namespace hetpar::parallel
