#include "hetpar/parallel/stats.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::parallel {

std::string IlpStatistics::summary() const {
  return strings::format("%lld ILPs, %s vars, %s constraints, %s bnb nodes, %.2fs",
                         numIlps, strings::formatThousands(numVars).c_str(),
                         strings::formatThousands(numConstraints).c_str(),
                         strings::formatThousands(bnbNodes).c_str(), wallSeconds);
}

}  // namespace hetpar::parallel
