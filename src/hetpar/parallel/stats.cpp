#include "hetpar/parallel/stats.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::parallel {

std::string IlpStatistics::summary() const {
  std::string text =
      strings::format("%lld ILPs, %s vars, %s constraints, %s bnb nodes, %.2fs",
                      numIlps, strings::formatThousands(numVars).c_str(),
                      strings::formatThousands(numConstraints).c_str(),
                      strings::formatThousands(bnbNodes).c_str(), wallSeconds);
  if (simplexIterations > 0)
    text += strings::format(", %s simplex iters (%lld refactor, %lld eta, %s peak fill)",
                            strings::formatThousands(simplexIterations).c_str(),
                            refactorizations, etaUpdates,
                            strings::formatThousands(peakFillNonzeros).c_str());
  if (cacheHits + cacheMisses > 0)
    text += strings::format(", %lld cache hits / %lld misses", cacheHits, cacheMisses);
  return text;
}

}  // namespace hetpar::parallel
