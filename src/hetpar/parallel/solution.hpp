// Parallel solution candidates and parallel sets (paper Section III-B).
//
// Every HTG node accumulates a set of solution candidates while Algorithm 1
// walks the hierarchy bottom-up. Each candidate is "tagged by the processor
// class executing the main task and contains information about the extracted
// node-to-task mapping, the number of inner tasks, the execution time of the
// parallelized (or sequentially executed) node as well as the
// task-to-processor class mapping".
#pragma once

#include <map>
#include <vector>

#include "hetpar/htg/graph.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::parallel {

using platform::ClassId;

/// How the candidate executes the node's children.
enum class SolutionKind {
  Sequential,    ///< everything on the main task
  TaskParallel,  ///< children distributed over tasks (Eq 1-18)
  LoopChunked,   ///< DOALL loop split into iteration ranges over tasks
};

/// Reference to a candidate within a node's ParallelSet.
struct SolutionRef {
  htg::NodeId node = htg::kNoNode;
  int index = -1;
  bool valid() const { return node != htg::kNoNode && index >= 0; }
};

struct SolutionCandidate {
  SolutionKind kind = SolutionKind::Sequential;
  ClassId mainClass = 0;     ///< class running the main task
  double timeSeconds = 0.0;  ///< node execution time per single execution

  /// Processors allocated per class *beyond* the main task's own processor
  /// (the paper's USEDPROCS accounting; see DESIGN.md): the candidate's own
  /// extra tasks plus everything its chosen nested solutions borrow.
  std::vector<int> extraProcs;

  /// Per task: mapped processor class. tasks[0] is the main task.
  std::vector<ClassId> taskClass;

  /// TaskParallel: childTask[i] = task executing body child i, and
  /// childChoice[i] = chosen candidate in that child's parallel set.
  std::vector<int> childTask;
  std::vector<SolutionRef> childChoice;

  /// LoopChunked: iterations assigned to each task (same length as
  /// taskClass); the loop body runs sequentially inside each chunk.
  std::vector<double> chunkIterations;

  int numTasks() const { return static_cast<int>(taskClass.size()); }
  /// Total processors consumed: the main task's processor plus everything
  /// in extraProcs (which already covers the candidate's own extra tasks).
  int totalProcs() const {
    int total = 1;
    for (int e : extraProcs) total += e;
    return total;
  }
};

/// All candidates collected for one node. Guaranteed to contain a
/// Sequential candidate for every processor class (paper: "The parallel
/// solution set of child node n contains at least one solution candidate
/// for each processor class").
class ParallelSet {
 public:
  int add(SolutionCandidate candidate) {
    all_.push_back(std::move(candidate));
    return static_cast<int>(all_.size()) - 1;
  }

  const std::vector<SolutionCandidate>& all() const { return all_; }
  const SolutionCandidate& at(int index) const { return all_.at(static_cast<std::size_t>(index)); }
  /// Mutable access, used by the verification harness to inject defects and
  /// prove the invariant checker catches them.
  SolutionCandidate& at(int index) { return all_.at(static_cast<std::size_t>(index)); }
  std::size_t size() const { return all_.size(); }

  /// Indices of candidates tagged with main class `c`.
  std::vector<int> forClass(ClassId c) const {
    std::vector<int> out;
    for (std::size_t i = 0; i < all_.size(); ++i)
      if (all_[i].mainClass == c) out.push_back(static_cast<int>(i));
    return out;
  }

  /// Index of the sequential candidate for class `c` (-1 if missing).
  int sequentialFor(ClassId c) const {
    for (std::size_t i = 0; i < all_.size(); ++i)
      if (all_[i].mainClass == c && all_[i].kind == SolutionKind::Sequential)
        return static_cast<int>(i);
    return -1;
  }

  /// Index of the fastest candidate for class `c` (-1 if none).
  int bestFor(ClassId c) const {
    int best = -1;
    for (std::size_t i = 0; i < all_.size(); ++i) {
      if (all_[i].mainClass != c) continue;
      if (best < 0 || all_[i].timeSeconds < all_[static_cast<std::size_t>(best)].timeSeconds)
        best = static_cast<int>(i);
    }
    return best;
  }

  /// Drops candidates dominated within their class: another candidate of
  /// the same class is at least as fast and uses no more processors.
  void pruneDominated();

  /// Caps the menu per class to the sequential candidate plus the
  /// `maxPerClass - 1` fastest others (keeps parent ILPs small; the paper
  /// notes the tension between menu size and solution quality).
  void capPerClass(int maxPerClass);

 private:
  std::vector<SolutionCandidate> all_;
};

/// Per-node parallel sets for a whole graph.
using SolutionTable = std::map<htg::NodeId, ParallelSet>;

}  // namespace hetpar::parallel
