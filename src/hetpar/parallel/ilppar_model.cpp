#include "hetpar/parallel/ilppar_model.hpp"

#include <algorithm>
#include <cmath>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::parallel {

using ilp::LinearExpr;
using ilp::Model;
using ilp::Relation;
using ilp::Sense;
using ilp::Var;
using ilp::VarType;

namespace {
// The model is built in microseconds: second-scale coefficients (1e-6..1e0)
// would sit too close to the simplex tolerances.
constexpr double kScale = 1e6;
}  // namespace

Model buildIlpParModel(const IlpRegion& region, IlpParVars& vars) {
  const int N = static_cast<int>(region.children.size());
  const int C = static_cast<int>(region.numProcsPerClass.size());
  // One slot per child PLUS the main task: the main task is pinned to seqPC,
  // so the optimum may leave it idle and host every child on extracted tasks
  // of a faster class. Capping at N (instead of N + 1) silently cut those
  // assignments off — found by the exhaustive oracle in hetpar/verify.
  const int T = std::max(1, std::min(region.maxTasks, N + 1));
  require<SolverError>(N > 0, "ILPPAR needs at least one child");
  require<SolverError>(region.seqPC >= 0 && region.seqPC < C, "bad seqPC");

  Model m("ilppar_" + region.name);
  vars = IlpParVars{};
  vars.numTasks = T;

  // --- Eq 1-2: node-to-task assignment --------------------------------------
  vars.x.assign(static_cast<std::size_t>(N), {});
  for (int n = 0; n < N; ++n) {
    LinearExpr sum;
    for (int t = 0; t < T; ++t) {
      Var x = m.addBool(strings::format("x_n%d_t%d", n, t));
      m.varInfo(x).branchPriority = 2;
      vars.x[static_cast<std::size_t>(n)].push_back(x);
      sum += LinearExpr(x);
    }
    m.addEq(sum, 1.0, strings::format("node%d_in_one_task", n));
  }
  auto X = [&](int n, int t) { return vars.x[static_cast<std::size_t>(n)][static_cast<std::size_t>(t)]; };

  // --- Eq 10: cycle freedom via monotone task ids over topological order ----
  for (int n = 0; n + 1 < N; ++n) {
    LinearExpr idN, idNext;
    for (int t = 0; t < T; ++t) {
      idN += LinearExpr::term(t, X(n, t));
      idNext += LinearExpr::term(t, X(n + 1, t));
    }
    m.addGe(idNext, idN, strings::format("monotone_taskid_%d", n));
  }

  // --- Eq 12-13: task-to-class mapping ---------------------------------------
  vars.map.assign(static_cast<std::size_t>(T), {});
  for (int t = 0; t < T; ++t) {
    LinearExpr sum;
    for (int c = 0; c < C; ++c) {
      Var v = m.addBool(strings::format("map_t%d_c%d", t, c));
      m.varInfo(v).branchPriority = 3;
      if (t == 0) {
        // The main task is pinned to seqPC (Algorithm 1 explores classes by
        // re-running ILPPAR per class).
        auto& info = m.varInfo(v);
        info.lowerBound = info.upperBound = (c == region.seqPC) ? 1.0 : 0.0;
      }
      vars.map[static_cast<std::size_t>(t)].push_back(v);
      sum += LinearExpr(v);
    }
    m.addEq(sum, 1.0, strings::format("task%d_one_class", t));
  }
  auto MAP = [&](int t, int c) { return vars.map[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]; };

  // --- Task-opened indicators + symmetry break -------------------------------
  vars.used.clear();
  for (int t = 0; t < T; ++t) {
    Var u = m.addBool(strings::format("used_t%d", t));
    m.varInfo(u).branchPriority = 3;
    if (t == 0) {
      auto& info = m.varInfo(u);
      info.lowerBound = 1.0;  // main task always exists
    }
    vars.used.push_back(u);
    for (int n = 0; n < N; ++n)
      m.addGe(LinearExpr(u), LinearExpr(X(n, t)), strings::format("used%d_ge_x%d", t, n));
  }
  for (int t = 1; t + 1 < T; ++t)
    m.addGe(LinearExpr(vars.used[static_cast<std::size_t>(t)]),
            LinearExpr(vars.used[static_cast<std::size_t>(t + 1)]),
            strings::format("used_contiguous_%d", t));

  // --- Eq 3-4: parallel-set choice -------------------------------------------
  vars.p.assign(static_cast<std::size_t>(N), {});
  for (int n = 0; n < N; ++n) {
    const IlpChild& child = region.children[static_cast<std::size_t>(n)];
    require<SolverError>(static_cast<int>(child.byClass.size()) == C,
                              "child candidate table does not cover all classes");
    auto& pn = vars.p[static_cast<std::size_t>(n)];
    pn.assign(static_cast<std::size_t>(C), {});
    LinearExpr sum;
    for (int c = 0; c < C; ++c) {
      require<SolverError>(!child.byClass[static_cast<std::size_t>(c)].empty(),
                                "child lacks a candidate for some class");
      for (std::size_t s = 0; s < child.byClass[static_cast<std::size_t>(c)].size(); ++s) {
        Var v = m.addBool(strings::format("p_n%d_c%d_s%zu", n, c, s));
        m.varInfo(v).branchPriority = 1;
        pn[static_cast<std::size_t>(c)].push_back(v);
        sum += LinearExpr(v);
      }
    }
    m.addEq(sum, 1.0, strings::format("node%d_one_candidate", n));
  }

  // --- Eq 17-18: class consistency --------------------------------------------
  // Equivalent inequality-only linearization of
  //   sum_s p[n][c][s] = sum_t x[n][t] AND map[t][c]:
  // when node n sits in task t, its chosen candidate's class must be t's
  // class: sum_s p[n][c][s] <= map[t][c] + (1 - x[n][t]). Together with
  // "exactly one candidate" (Eq 4) and "exactly one class per task" (Eq 13)
  // this pins the candidate to the hosting task's class without the AND
  // variables (3x fewer rows, no auxiliary binaries).
  for (int n = 0; n < N; ++n) {
    for (int c = 0; c < C; ++c) {
      LinearExpr chosen;
      for (Var pv : vars.p[static_cast<std::size_t>(n)][static_cast<std::size_t>(c)])
        chosen += LinearExpr(pv);
      for (int t = 0; t < T; ++t) {
        if (t == 0) {
          // Task 0's class is the constant seqPC.
          if (c == region.seqPC) continue;  // no restriction when classes agree
          m.addLe(chosen, 1.0 - LinearExpr(X(n, 0)),
                  strings::format("class_consistency_n%d_c%d_t0", n, c));
        } else {
          m.addLe(chosen, LinearExpr(MAP(t, c)) + 1.0 - LinearExpr(X(n, t)),
                  strings::format("class_consistency_n%d_c%d_t%d", n, c, t));
        }
      }
    }
  }

  // --- Candidate time selection ------------------------------------------------
  // sel_n = sum_{c,s} time * p[n][c][s]; a big-M row transfers it into the
  // owning task's cost.
  std::vector<LinearExpr> sel(static_cast<std::size_t>(N));
  std::vector<double> maxTime(static_cast<std::size_t>(N), 0.0);
  for (int n = 0; n < N; ++n) {
    const IlpChild& child = region.children[static_cast<std::size_t>(n)];
    for (int c = 0; c < C; ++c) {
      for (std::size_t s = 0; s < child.byClass[static_cast<std::size_t>(c)].size(); ++s) {
        const double tUs = child.byClass[static_cast<std::size_t>(c)][s].timeSeconds * kScale;
        sel[static_cast<std::size_t>(n)] +=
            LinearExpr::term(tUs, vars.p[static_cast<std::size_t>(n)][static_cast<std::size_t>(c)][s]);
        maxTime[static_cast<std::size_t>(n)] = std::max(maxTime[static_cast<std::size_t>(n)], tUs);
      }
    }
  }

  // --- Eq 8: per-task execution cost -------------------------------------------
  // TCO is charged per *created* task; the main task is the already-running
  // thread and spawns the others, so tasks 1..T-1 pay it.
  const double tcoUs = region.taskCreationSeconds * kScale;
  std::vector<LinearExpr> cost(static_cast<std::size_t>(T));
  for (int t = 1; t < T; ++t)
    cost[static_cast<std::size_t>(t)] +=
        LinearExpr::term(tcoUs, vars.used[static_cast<std::size_t>(t)]);

  std::vector<double> minTime(static_cast<std::size_t>(N), 0.0);
  for (int n = 0; n < N; ++n) {
    const IlpChild& child = region.children[static_cast<std::size_t>(n)];
    double lo = ilp::kInfinity;
    for (int c = 0; c < C; ++c)
      for (const IlpCandidate& cand : child.byClass[static_cast<std::size_t>(c)])
        lo = std::min(lo, cand.timeSeconds * kScale);
    minTime[static_cast<std::size_t>(n)] = std::isfinite(lo) ? lo : 0.0;
  }
  for (int n = 0; n < N; ++n) {
    for (int t = 0; t < T; ++t) {
      Var z = m.addContinuous(0.0, ilp::kInfinity, strings::format("z_n%d_t%d", n, t));
      // z >= sel_n - M * (1 - x[n][t])  with M = max candidate time of n
      const double M = maxTime[static_cast<std::size_t>(n)];
      m.addGe(LinearExpr(z),
              sel[static_cast<std::size_t>(n)] - M + LinearExpr::term(M, X(n, t)),
              strings::format("zload_n%d_t%d", n, t));
      // Strengthening cut: whatever candidate is chosen, node n costs at
      // least its cheapest candidate on whichever task hosts it. This keeps
      // the LP relaxation's bound away from zero (pure big-M rows collapse
      // under fractional x).
      if (minTime[static_cast<std::size_t>(n)] > 0)
        m.addGe(LinearExpr(z),
                LinearExpr::term(minTime[static_cast<std::size_t>(n)], X(n, t)),
                strings::format("zmin_n%d_t%d", n, t));
      cost[static_cast<std::size_t>(t)] += LinearExpr(z);
    }
  }

  // --- Eq 5-7 + communication ----------------------------------------------------
  // pred[t][u] for t < u (monotone ids make backward dependences impossible).
  vars.pred.assign(static_cast<std::size_t>(T), {});
  for (int t = 0; t < T; ++t) {
    for (int u = t + 1; u < T; ++u) {
      Var pr = m.addBool(strings::format("pred_t%d_u%d", t, u));
      vars.pred[static_cast<std::size_t>(t)].push_back(pr);
    }
  }
  auto PRED = [&](int t, int u) {  // t < u
    return vars.pred[static_cast<std::size_t>(t)][static_cast<std::size_t>(u - t - 1)];
  };

  for (std::size_t e = 0; e < region.edges.size(); ++e) {
    const IlpEdgeSpec& edge = region.edges[e];
    const double commUs = edge.commSeconds * kScale;
    if (edge.from >= 0 && edge.to < N) {
      // Real child pair: predecessor relation (Eq 6) plus consumer-side
      // communication charge when cut.
      for (int t = 0; t < T; ++t) {
        for (int u = t + 1; u < T; ++u) {
          m.addGe(LinearExpr(PRED(t, u)),
                  LinearExpr(X(edge.from, t)) + LinearExpr(X(edge.to, u)) - 1.0,
                  strings::format("pred_e%zu_t%d_u%d", e, t, u));
        }
      }
      if (!edge.orderingOnly && commUs > 0) {
        // cut_e >= x[from][t] - x[to][t]  (1 iff endpoints differ)
        Var cut = m.addBool(strings::format("cut_e%zu", e));
        for (int t = 0; t < T; ++t)
          m.addGe(LinearExpr(cut), LinearExpr(X(edge.from, t)) - LinearExpr(X(edge.to, t)),
                  strings::format("cutdef_e%zu_t%d", e, t));
        for (int t = 0; t < T; ++t) {
          Var v = m.addContinuous(0.0, ilp::kInfinity, strings::format("v_e%zu_t%d", e, t));
          // v >= comm * (cut + x[to][t] - 1)
          m.addGe(LinearExpr(v),
                  LinearExpr::term(commUs, cut) + LinearExpr::term(commUs, X(edge.to, t)) -
                      commUs,
                  strings::format("vload_e%zu_t%d", e, t));
          cost[static_cast<std::size_t>(t)] += LinearExpr(v);
        }
      }
    } else if (edge.from < 0 && edge.to < N) {
      // CommIn -> child: payload travels from the main task's context.
      if (!edge.orderingOnly && commUs > 0) {
        for (int t = 1; t < T; ++t) {
          Var v = m.addContinuous(0.0, ilp::kInfinity, strings::format("vin_e%zu_t%d", e, t));
          m.addGe(LinearExpr(v), LinearExpr::term(commUs, X(edge.to, t)),
                  strings::format("vinload_e%zu_t%d", e, t));
          cost[static_cast<std::size_t>(t)] += LinearExpr(v);
        }
      }
    } else if (edge.from >= 0 && edge.to >= N) {
      // Child -> CommOut: producer ships results back to the main context.
      if (!edge.orderingOnly && commUs > 0) {
        for (int t = 1; t < T; ++t) {
          Var v = m.addContinuous(0.0, ilp::kInfinity, strings::format("vout_e%zu_t%d", e, t));
          m.addGe(LinearExpr(v), LinearExpr::term(commUs, X(edge.from, t)),
                  strings::format("voutload_e%zu_t%d", e, t));
          cost[static_cast<std::size_t>(t)] += LinearExpr(v);
        }
      }
    }
  }

  // --- Eq 9: accumulated path costs ------------------------------------------------
  double bigM = 1.0 + static_cast<double>(T) * tcoUs;
  for (int n = 0; n < N; ++n) bigM += maxTime[static_cast<std::size_t>(n)];
  for (const IlpEdgeSpec& edge : region.edges) bigM += std::max(0.0, edge.commSeconds * kScale);

  vars.accum.clear();
  for (int t = 0; t < T; ++t) {
    Var a = m.addContinuous(0.0, ilp::kInfinity, strings::format("accum_t%d", t));
    vars.accum.push_back(a);
  }
  for (int t = 0; t < T; ++t) {
    m.addGe(LinearExpr(vars.accum[static_cast<std::size_t>(t)]), cost[static_cast<std::size_t>(t)],
            strings::format("accum%d_ge_cost", t));
    for (int u = 0; u < t; ++u) {
      // accum_t >= accum_u + cost_t - M * (1 - pred[u][t])
      m.addGe(LinearExpr(vars.accum[static_cast<std::size_t>(t)]),
              LinearExpr(vars.accum[static_cast<std::size_t>(u)]) +
                  cost[static_cast<std::size_t>(t)] - bigM + LinearExpr::term(bigM, PRED(u, t)),
              strings::format("path_u%d_t%d", u, t));
    }
  }

  // --- Eq 14-16: processor budgets ------------------------------------------------
  // procsused[t][c] >= U_{s,c} * (p[n][c'][s] + x[n][t] - 1)
  std::vector<std::vector<Var>> procsused(static_cast<std::size_t>(T));
  for (int t = 0; t < T; ++t) {
    for (int c = 0; c < C; ++c) {
      Var pu = m.addContinuous(0.0, ilp::kInfinity, strings::format("procsused_t%d_c%d", t, c));
      procsused[static_cast<std::size_t>(t)].push_back(pu);
    }
  }
  for (int n = 0; n < N; ++n) {
    const IlpChild& child = region.children[static_cast<std::size_t>(n)];
    for (int cTag = 0; cTag < C; ++cTag) {
      for (std::size_t s = 0; s < child.byClass[static_cast<std::size_t>(cTag)].size(); ++s) {
        const auto& cand = child.byClass[static_cast<std::size_t>(cTag)][s];
        for (int c = 0; c < C && c < static_cast<int>(cand.extraProcs.size()); ++c) {
          const double U = cand.extraProcs[static_cast<std::size_t>(c)];
          if (U <= 0) continue;
          for (int t = 0; t < T; ++t) {
            m.addGe(
                LinearExpr(procsused[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]),
                LinearExpr::term(U, vars.p[static_cast<std::size_t>(n)][static_cast<std::size_t>(
                                        cTag)][s]) +
                    LinearExpr::term(U, X(n, t)) - U,
                strings::format("procsused_n%d_c%d_s%zu_t%d", n, c, s, t));
          }
        }
      }
    }
  }
  // "mapped-and-used" indicators so empty tasks do not consume budget.
  for (int c = 0; c < C; ++c) {
    LinearExpr allocated;
    if (c == region.seqPC) allocated += 1.0;  // the main task's processor
    for (int t = 1; t < T; ++t) {
      Var mu = m.addAnd(MAP(t, c), vars.used[static_cast<std::size_t>(t)],
                        strings::format("mu_t%d_c%d", t, c));
      allocated += LinearExpr(mu);
    }
    for (int t = 0; t < T; ++t)
      allocated += LinearExpr(procsused[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]);
    m.addLe(allocated, static_cast<double>(region.numProcsPerClass[static_cast<std::size_t>(c)]),
            strings::format("budget_class%d", c));
  }
  // Algorithm 1's shrinking upper bound i on allocatable processing units.
  {
    LinearExpr total;
    for (int t = 0; t < T; ++t) {
      total += LinearExpr(vars.used[static_cast<std::size_t>(t)]);
      for (int c = 0; c < C; ++c)
        total += LinearExpr(procsused[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]);
    }
    m.addLe(total, static_cast<double>(region.maxProcs), "budget_total");
  }

  // --- Eq 11: objective --------------------------------------------------------------
  vars.exectime = m.addContinuous(
      0.0,
      region.upperBoundSeconds > 0 ? region.upperBoundSeconds * kScale * (1.0 + 1e-9)
                                   : ilp::kInfinity,
      "exectime");
  for (int t = 0; t < T; ++t)
    m.addGe(LinearExpr(vars.exectime), LinearExpr(vars.accum[static_cast<std::size_t>(t)]),
            strings::format("exectime_ge_accum%d", t));
  // Strengthening cut: the makespan is at least the average task load;
  // combined with the zmin cuts this gives the relaxation a work-based
  // lower bound (total-min-work / T).
  {
    LinearExpr totalCost;
    for (int t = 0; t < T; ++t) totalCost += cost[static_cast<std::size_t>(t)];
    m.addGe(LinearExpr::term(static_cast<double>(T), vars.exectime), totalCost,
            "exectime_ge_average_load");
  }
  // A vanishing penalty on opened tasks closes tasks that would otherwise
  // stay open with no work (they would leak processor budget).
  LinearExpr objective = LinearExpr(vars.exectime);
  for (int t = 1; t < T; ++t)
    objective += LinearExpr::term(1e-4, vars.used[static_cast<std::size_t>(t)]);
  m.setObjective(objective, Sense::Minimize);
  return m;
}

ChunkResult solveChunkIlp(const ChunkRegion& region, ilp::Solver& solver) {
  const int C = static_cast<int>(region.numProcsPerClass.size());
  const int T = std::max(1, region.maxTasks);
  const double ITER = static_cast<double>(region.iterations);
  require<SolverError>(region.iterations > 0, "chunk region without iterations");
  require<SolverError>(static_cast<int>(region.secondsPerIter.size()) == C,
                       "per-class iteration times missing");

  Model m("chunkilp_" + region.name);

  // cnt_t: iterations executed by task t (integer -> single-iteration
  // balancing granularity).
  std::vector<Var> cnt;
  {
    LinearExpr total;
    for (int t = 0; t < T; ++t) {
      cnt.push_back(m.addVar(ilp::VarType::Integer, 0.0, ITER,
                             strings::format("cnt_t%d", t)));
      m.varInfo(cnt.back()).branchPriority = 2;
      total += LinearExpr(cnt.back());
    }
    m.addEq(total, ITER, "all_iterations_covered");
  }

  // map/used as in the general model (Eq 12-13).
  std::vector<std::vector<Var>> map(static_cast<std::size_t>(T));
  std::vector<Var> used;
  for (int t = 0; t < T; ++t) {
    LinearExpr sum;
    for (int c = 0; c < C; ++c) {
      Var v = m.addBool(strings::format("map_t%d_c%d", t, c));
      m.varInfo(v).branchPriority = 3;
      if (t == 0) {
        auto& info = m.varInfo(v);
        info.lowerBound = info.upperBound = (c == region.seqPC) ? 1.0 : 0.0;
      }
      map[static_cast<std::size_t>(t)].push_back(v);
      sum += LinearExpr(v);
    }
    m.addEq(sum, 1.0, strings::format("task%d_one_class", t));
    Var u = m.addBool(strings::format("used_t%d", t));
    m.varInfo(u).branchPriority = 3;
    if (t == 0) m.varInfo(u).lowerBound = 1.0;
    used.push_back(u);
    // A task only executes iterations if it is open.
    m.addLe(LinearExpr(cnt[static_cast<std::size_t>(t)]), LinearExpr::term(ITER, u),
            strings::format("cnt%d_needs_used", t));
  }
  for (int t = 1; t + 1 < T; ++t)
    m.addGe(LinearExpr(used[static_cast<std::size_t>(t)]),
            LinearExpr(used[static_cast<std::size_t>(t + 1)]),
            strings::format("used_contiguous_%d", t));

  // Per-task cost: w_{t,c} >= perIter_c * cnt_t - M(1 - map_{t,c}).
  double maxPerIter = 0.0;
  for (double s : region.secondsPerIter) maxPerIter = std::max(maxPerIter, s);
  const double bigM = maxPerIter * ITER * kScale + 1.0;

  Var exectime = m.addContinuous(
      0.0,
      region.upperBoundSeconds > 0 ? region.upperBoundSeconds * kScale * (1.0 + 1e-9)
                                   : ilp::kInfinity,
      "exectime");
  for (int t = 0; t < T; ++t) {
    LinearExpr cost;
    const double tcoUs = region.taskCreationSeconds * kScale;
    if (t > 0) {
      double latency = region.commInLatency + region.commOutLatency;
      cost += LinearExpr::term(tcoUs + latency * kScale, used[static_cast<std::size_t>(t)]);
      const double slope =
          (region.commInSecondsPerIter + region.commOutSecondsPerIter) * kScale;
      if (slope > 0) cost += LinearExpr::term(slope, cnt[static_cast<std::size_t>(t)]);
    }
    if (t == 0) {
      // Main task's class is pinned: no linearization needed.
      cost += LinearExpr::term(region.secondsPerIter[static_cast<std::size_t>(region.seqPC)] *
                                   kScale,
                               cnt[0]);
    } else {
      Var w = m.addContinuous(0.0, ilp::kInfinity, strings::format("w_t%d", t));
      for (int c = 0; c < C; ++c) {
        const double perIterUs = region.secondsPerIter[static_cast<std::size_t>(c)] * kScale;
        // w >= perIter_c * cnt_t - M * (1 - map_{t,c})
        m.addGe(LinearExpr(w),
                LinearExpr::term(perIterUs, cnt[static_cast<std::size_t>(t)]) - bigM +
                    LinearExpr::term(bigM, map[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]),
                strings::format("wload_t%d_c%d", t, c));
      }
      // Strengthening: whatever the class, an iteration costs at least the
      // fastest class's time.
      double minPerIter = ilp::kInfinity;
      for (double s : region.secondsPerIter) minPerIter = std::min(minPerIter, s);
      m.addGe(LinearExpr(w),
              LinearExpr::term(minPerIter * kScale, cnt[static_cast<std::size_t>(t)]),
              strings::format("wmin_t%d", t));
      cost += LinearExpr(w);
    }
    m.addGe(LinearExpr(exectime), cost, strings::format("exectime_ge_cost%d", t));
  }

  // Eq 16: per-class budgets over opened tasks (chunks have no nested
  // solutions, so procsused terms vanish).
  for (int c = 0; c < C; ++c) {
    LinearExpr allocated;
    if (c == region.seqPC) allocated += 1.0;
    for (int t = 1; t < T; ++t) {
      Var mu = m.addAnd(map[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)],
                        used[static_cast<std::size_t>(t)], strings::format("mu_t%d_c%d", t, c));
      allocated += LinearExpr(mu);
    }
    m.addLe(allocated, static_cast<double>(region.numProcsPerClass[static_cast<std::size_t>(c)]),
            strings::format("budget_class%d", c));
  }
  {
    LinearExpr total;
    for (int t = 0; t < T; ++t) total += LinearExpr(used[static_cast<std::size_t>(t)]);
    m.addLe(total, static_cast<double>(region.maxProcs), "budget_total");
  }

  LinearExpr objective = LinearExpr(exectime);
  for (int t = 1; t < T; ++t) objective += LinearExpr::term(1e-4, used[static_cast<std::size_t>(t)]);
  m.setObjective(objective, Sense::Minimize);

  const ilp::Solution sol = solver.solve(m);
  ChunkResult result;
  result.stats = solver.lastStats();
  if (!sol.hasValues()) return result;
  result.feasible = true;
  result.provenOptimal = sol.status == ilp::SolveStatus::Optimal;
  result.timeSeconds = sol.value(exectime) / kScale;

  int usedTasks = 0;
  for (int t = 0; t < T; ++t)
    if (sol.boolean(used[static_cast<std::size_t>(t)])) usedTasks = t + 1;
  usedTasks = std::max(usedTasks, 1);
  result.taskClass.assign(static_cast<std::size_t>(usedTasks), region.seqPC);
  result.taskIterations.assign(static_cast<std::size_t>(usedTasks), 0.0);
  for (int t = 0; t < usedTasks; ++t) {
    for (int c = 0; c < C; ++c)
      if (sol.boolean(map[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]))
        result.taskClass[static_cast<std::size_t>(t)] = c;
    result.taskIterations[static_cast<std::size_t>(t)] =
        static_cast<double>(sol.integral(cnt[static_cast<std::size_t>(t)]));
  }
  return result;
}

IlpParResult solveIlpPar(const IlpRegion& region, ilp::Solver& solver) {
  IlpParVars vars;
  const Model model = buildIlpParModel(region, vars);
  const ilp::Solution sol = solver.solve(model);

  IlpParResult result;
  result.stats = solver.lastStats();
  if (!sol.hasValues()) return result;
  result.feasible = true;
  result.provenOptimal = sol.status == ilp::SolveStatus::Optimal;
  result.timeSeconds = sol.value(vars.exectime) / kScale;

  const int N = static_cast<int>(region.children.size());
  const int T = vars.numTasks;
  const int C = static_cast<int>(region.numProcsPerClass.size());

  // Used tasks are contiguous (symmetry break), so the task count is the
  // number of used indicators set.
  int usedTasks = 0;
  for (int t = 0; t < T; ++t)
    if (sol.boolean(vars.used[static_cast<std::size_t>(t)])) usedTasks = t + 1;
  usedTasks = std::max(usedTasks, 1);

  result.taskClass.resize(static_cast<std::size_t>(usedTasks), region.seqPC);
  for (int t = 0; t < usedTasks; ++t)
    for (int c = 0; c < C; ++c)
      if (sol.boolean(vars.map[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)]))
        result.taskClass[static_cast<std::size_t>(t)] = c;

  result.childTask.resize(static_cast<std::size_t>(N), 0);
  result.childChoice.resize(static_cast<std::size_t>(N), {0, 0});
  for (int n = 0; n < N; ++n) {
    for (int t = 0; t < T; ++t)
      if (sol.boolean(vars.x[static_cast<std::size_t>(n)][static_cast<std::size_t>(t)]))
        result.childTask[static_cast<std::size_t>(n)] = t;
    bool found = false;
    for (int c = 0; c < C && !found; ++c) {
      const auto& pc = vars.p[static_cast<std::size_t>(n)][static_cast<std::size_t>(c)];
      for (std::size_t s = 0; s < pc.size() && !found; ++s) {
        if (sol.boolean(pc[s])) {
          result.childChoice[static_cast<std::size_t>(n)] = {c, static_cast<int>(s)};
          found = true;
        }
      }
    }
    HETPAR_CHECK_MSG(found, "ILPPAR solution chose no candidate for a child");
  }
  return result;
}

}  // namespace hetpar::parallel
