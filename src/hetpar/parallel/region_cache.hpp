// Memoization cache for ILPPAR / chunk ILP solves.
//
// Two regions that agree on every model-relevant field produce the same
// branch-and-bound run and the same decoded result, so the solve can be
// skipped. The cache key is a canonical byte-exact serialization of the
// region (child candidate menus, edges, budgets, overheads, the pruning
// bound) plus the solver limits; it deliberately EXCLUDES the region name,
// child labels, and `IlpCandidate::ref` — those identify where a region came
// from, not what its model looks like, and `buildIlpParModel` never reads
// them. `upperBoundSeconds` IS part of the key: two solves that differ only
// in the bound may surface different equally-optimal corners, and the cache
// must never change an outcome, only skip work.
//
// Keys are compared by full byte equality (no hash-truncation risk: a
// std::unordered_map keyed by the serialized string only uses the hash to
// pick a bucket). Doubles are serialized as their exact bit patterns, so
// "identical" means identical to the last ulp.
//
// Thread-safe. Lookups and stores take a mutex; solves happen outside it,
// so two lanes may race to solve the same region — both produce the same
// deterministic result and the second store is a harmless overwrite.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

#include "hetpar/parallel/ilppar_model.hpp"

namespace hetpar::parallel {

class IlpRegionCache {
 public:
  /// Canonical key for a task-parallel region under the given solver limits.
  /// `keyTag` namespaces keys by the dependence mode the HTG was built with,
  /// so a shared cache never serves a solution across modes.
  static std::string taskKey(const IlpRegion& region, const ilp::SolveOptions& opts,
                             char keyTag = 0);
  /// Canonical key for a loop-chunking region under the given solver limits.
  static std::string chunkKey(const ChunkRegion& region, const ilp::SolveOptions& opts,
                              char keyTag = 0);

  /// Returns true and fills `out` (with `out.stats` zeroed — a hit performed
  /// no solve) when the key is present.
  bool lookupTask(const std::string& key, IlpParResult& out) const;
  bool lookupChunk(const std::string& key, ChunkResult& out) const;

  void storeTask(const std::string& key, const IlpParResult& result);
  void storeChunk(const std::string& key, const ChunkResult& result);

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, IlpParResult> task_;
  std::unordered_map<std::string, ChunkResult> chunk_;
};

}  // namespace hetpar::parallel
