#include "hetpar/parallel/region_cache.hpp"

#include <cstdint>
#include <cstring>

namespace hetpar::parallel {

namespace {

void putI64(std::string& key, long long v) {
  std::uint64_t bits = static_cast<std::uint64_t>(v);
  char buf[8];
  std::memcpy(buf, &bits, 8);
  key.append(buf, 8);
}

void putF64(std::string& key, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  char buf[8];
  std::memcpy(buf, &bits, 8);
  key.append(buf, 8);
}

void putOptions(std::string& key, const ilp::SolveOptions& opts) {
  putF64(key, opts.timeLimitSeconds);
  putI64(key, opts.maxNodes);
  putF64(key, opts.integralityTol);
  putF64(key, opts.feasibilityTol);
  // Engines may break ties among alternate optima differently; memoized
  // solutions must not leak across them.
  putI64(key, static_cast<long long>(opts.engine));
}

}  // namespace

std::string IlpRegionCache::taskKey(const IlpRegion& region, const ilp::SolveOptions& opts,
                                    char keyTag) {
  std::string key;
  key.push_back('T');
  key.push_back(keyTag);
  putOptions(key, opts);
  putI64(key, region.seqPC);
  putI64(key, region.maxProcs);
  putI64(key, region.maxTasks);
  putF64(key, region.taskCreationSeconds);
  putF64(key, region.upperBoundSeconds);
  putI64(key, static_cast<long long>(region.numProcsPerClass.size()));
  for (int n : region.numProcsPerClass) putI64(key, n);
  putI64(key, static_cast<long long>(region.children.size()));
  for (const IlpChild& child : region.children) {
    putI64(key, static_cast<long long>(child.byClass.size()));
    for (const auto& menu : child.byClass) {
      putI64(key, static_cast<long long>(menu.size()));
      for (const IlpCandidate& cand : menu) {
        putF64(key, cand.timeSeconds);
        putI64(key, static_cast<long long>(cand.extraProcs.size()));
        for (int e : cand.extraProcs) putI64(key, e);
      }
    }
  }
  putI64(key, static_cast<long long>(region.edges.size()));
  for (const IlpEdgeSpec& e : region.edges) {
    putI64(key, e.from);
    putI64(key, e.to);
    putF64(key, e.commSeconds);
    putI64(key, e.orderingOnly ? 1 : 0);
  }
  return key;
}

std::string IlpRegionCache::chunkKey(const ChunkRegion& region, const ilp::SolveOptions& opts,
                                     char keyTag) {
  std::string key;
  key.push_back('C');
  key.push_back(keyTag);
  putOptions(key, opts);
  putI64(key, region.iterations);
  putI64(key, region.seqPC);
  putI64(key, region.maxProcs);
  putI64(key, region.maxTasks);
  putF64(key, region.taskCreationSeconds);
  putF64(key, region.upperBoundSeconds);
  putF64(key, region.commInLatency);
  putF64(key, region.commInSecondsPerIter);
  putF64(key, region.commOutLatency);
  putF64(key, region.commOutSecondsPerIter);
  putI64(key, static_cast<long long>(region.numProcsPerClass.size()));
  for (int n : region.numProcsPerClass) putI64(key, n);
  putI64(key, static_cast<long long>(region.secondsPerIter.size()));
  for (double s : region.secondsPerIter) putF64(key, s);
  return key;
}

bool IlpRegionCache::lookupTask(const std::string& key, IlpParResult& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = task_.find(key);
  if (it == task_.end()) return false;
  out = it->second;
  out.stats = ilp::SolveStats{};
  return true;
}

bool IlpRegionCache::lookupChunk(const std::string& key, ChunkResult& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunk_.find(key);
  if (it == chunk_.end()) return false;
  out = it->second;
  out.stats = ilp::SolveStats{};
  return true;
}

void IlpRegionCache::storeTask(const std::string& key, const IlpParResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  task_[key] = result;
}

void IlpRegionCache::storeChunk(const std::string& key, const ChunkResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  chunk_[key] = result;
}

std::size_t IlpRegionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return task_.size() + chunk_.size();
}

void IlpRegionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  task_.clear();
  chunk_.clear();
}

}  // namespace hetpar::parallel
