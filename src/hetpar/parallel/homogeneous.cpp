#include "hetpar/parallel/homogeneous.hpp"

namespace hetpar::parallel {

platform::Platform homogeneousView(const platform::Platform& real, ClassId assumedClass) {
  const platform::ProcessorClass& assumed = real.classAt(assumedClass);
  platform::ProcessorClass uniform = assumed;
  uniform.name = "uniform";
  uniform.count = real.numCores();
  return platform::Platform(real.name() + "_homog_view", {uniform}, real.interconnect(),
                            real.taskCreationOverheadSeconds());
}

HomogeneousRun runHomogeneousBaseline(const htg::Graph& graph, const platform::Platform& real,
                                      ClassId assumedClass, ParallelizerOptions options) {
  HomogeneousRun run{homogeneousView(real, assumedClass), {}};
  const cost::TimingModel timing(run.view);
  Parallelizer parallelizer(graph, timing, options);
  run.outcome = parallelizer.run();
  return run;
}

}  // namespace hetpar::parallel
