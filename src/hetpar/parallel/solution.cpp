#include "hetpar/parallel/solution.hpp"

#include <algorithm>

namespace hetpar::parallel {

void ParallelSet::pruneDominated() {
  // A candidate is dominated when another candidate of the same main class
  // is at least as fast and allocates no more processors. Sequential
  // candidates are always kept (the paper guarantees one per class).
  std::vector<bool> keep(all_.size(), true);
  for (std::size_t i = 0; i < all_.size(); ++i) {
    if (all_[i].kind == SolutionKind::Sequential) continue;
    for (std::size_t j = 0; j < all_.size(); ++j) {
      if (i == j || !keep[j]) continue;
      const SolutionCandidate& a = all_[i];
      const SolutionCandidate& b = all_[j];
      if (a.mainClass != b.mainClass) continue;
      const bool slower = b.timeSeconds <= a.timeSeconds + 1e-15;
      bool noMoreProcs = b.totalProcs() <= a.totalProcs();
      if (slower && noMoreProcs && (b.timeSeconds < a.timeSeconds - 1e-15 ||
                                    b.totalProcs() < a.totalProcs() || j < i)) {
        keep[i] = false;
        break;
      }
    }
  }
  std::vector<SolutionCandidate> pruned;
  pruned.reserve(all_.size());
  for (std::size_t i = 0; i < all_.size(); ++i)
    if (keep[i]) pruned.push_back(std::move(all_[i]));
  all_ = std::move(pruned);
}

void ParallelSet::capPerClass(int maxPerClass) {
  if (maxPerClass <= 0) return;
  // Rank non-sequential candidates per class by time; drop the tail.
  std::map<ClassId, std::vector<int>> nonSeqByClass;
  for (std::size_t i = 0; i < all_.size(); ++i)
    if (all_[i].kind != SolutionKind::Sequential)
      nonSeqByClass[all_[i].mainClass].push_back(static_cast<int>(i));

  std::vector<bool> keep(all_.size(), true);
  for (auto& [cls, indices] : nonSeqByClass) {
    (void)cls;
    std::sort(indices.begin(), indices.end(), [this](int a, int b) {
      return all_[static_cast<std::size_t>(a)].timeSeconds <
             all_[static_cast<std::size_t>(b)].timeSeconds;
    });
    for (std::size_t k = static_cast<std::size_t>(maxPerClass) - 1; k < indices.size(); ++k)
      keep[static_cast<std::size_t>(indices[k])] = false;
  }
  std::vector<SolutionCandidate> trimmed;
  trimmed.reserve(all_.size());
  for (std::size_t i = 0; i < all_.size(); ++i)
    if (keep[i]) trimmed.push_back(std::move(all_[i]));
  all_ = std::move(trimmed);
}

}  // namespace hetpar::parallel
