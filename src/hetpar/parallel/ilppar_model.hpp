// The ILPPAR partitioning-and-mapping model (paper Section IV, Eq 1-18).
//
// One invocation parallelizes one hierarchical node: it maps the node's
// children onto newly extracted tasks (Eq 1-2), chooses one parallel
// solution candidate per child from the parallel sets collected deeper in
// the hierarchy (Eq 3-4), tracks predecessor relations induced by data flow
// (Eq 5-7), accumulates class-dependent execution plus communication plus
// task-creation costs along critical paths (Eq 8-9), keeps the task graph
// cycle-free via monotone task ids over the topological child order
// (Eq 10), maps every task to a processor class (Eq 12-13), respects the
// per-class processor budgets including processors consumed by nested
// solutions (Eq 14-16), and forces the chosen child candidates' classes to
// agree with their tasks' classes (Eq 17-18). The objective minimizes the
// node's completion time (Eq 11).
//
// Linearization notes (documented deviations, see DESIGN.md): conjunctions
// that only need a lower bound (pred, procsused, comm charges) use the
// `z >= a + b - 1` half of Eq 7 directly instead of materializing an AND
// variable; class-consistency (Eq 17-18) uses an equivalent inequality-only
// form (`sum_s p <= map + 1 - x`). Communication is charged to the receiving
// task (inter-task and comm-in edges) or the producing task (comm-out edges)
// rather than tracked as a separate `commcost_u` term — the path sums are
// identical.
#pragma once

#include <string>
#include <vector>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/ilp/model.hpp"
#include "hetpar/parallel/solution.hpp"

namespace hetpar::parallel {

/// One candidate a child offers the ILP, tagged with its main class.
struct IlpCandidate {
  double timeSeconds = 0.0;    ///< contribution per execution of the parent
  std::vector<int> extraProcs; ///< per class, beyond the candidate's main proc
  SolutionRef ref;             ///< original candidate (invalid for loop chunks)
};

/// One child of the node being parallelized.
struct IlpChild {
  /// byClass[c] = candidates whose main task runs on class c. Every class
  /// must offer at least one candidate (the sequential one).
  std::vector<std::vector<IlpCandidate>> byClass;
  std::string label;
};

/// Edge among children; endpoints use child indices, with -1 for the
/// Communication-In node and numChildren for the Communication-Out node.
struct IlpEdgeSpec {
  int from = -1;
  int to = -1;
  double commSeconds = 0.0;  ///< cost if cut, already iteration-scaled
  bool orderingOnly = false; ///< anti/output dependences: order, no payload
};

/// Full problem instance for one ILPPAR call.
struct IlpRegion {
  std::string name;
  std::vector<IlpChild> children;
  std::vector<IlpEdgeSpec> edges;
  ClassId seqPC = 0;        ///< class pinned to the main task (Algorithm 1)
  int maxProcs = 1;         ///< allocatable processing units (Algorithm 1's i)
  int maxTasks = 1;         ///< tasks the model may open (<= maxProcs)
  double taskCreationSeconds = 0.0;     ///< TCO
  std::vector<int> numProcsPerClass;    ///< NUMPROCS_c
  /// Known-achievable execution time (e.g. the sequential candidate);
  /// encoded as `exectime <= bound` so branch-and-bound prunes by
  /// infeasibility. 0 disables the bound.
  double upperBoundSeconds = 0.0;
};

/// Decoded ILPPAR solution.
struct IlpParResult {
  bool feasible = false;
  bool provenOptimal = false;
  double timeSeconds = 0.0;
  std::vector<int> childTask;                    ///< per child
  std::vector<ClassId> taskClass;                ///< per used task, [0]=main
  std::vector<std::pair<ClassId, int>> childChoice;  ///< (class, index in byClass[class])
  ilp::SolveStats stats;
};

/// Variable handles, exposed for white-box tests and ablations.
struct IlpParVars {
  std::vector<std::vector<ilp::Var>> x;     ///< x[n][t] (Eq 1)
  std::vector<std::vector<ilp::Var>> map;   ///< map[t][c] (Eq 12)
  std::vector<std::vector<std::vector<ilp::Var>>> p;  ///< p[n][c][s] (Eq 3)
  std::vector<ilp::Var> used;               ///< task-opened indicators
  std::vector<std::vector<ilp::Var>> pred;  ///< pred[t][u], t<u (Eq 5)
  std::vector<ilp::Var> accum;              ///< accumcost_t (Eq 9)
  ilp::Var exectime;                        ///< objective (Eq 11)
  int numTasks = 0;
};

/// Builds the MILP for `region`. `vars` receives the variable handles.
ilp::Model buildIlpParModel(const IlpRegion& region, IlpParVars& vars);

/// Builds and solves; decodes the assignment into an IlpParResult.
IlpParResult solveIlpPar(const IlpRegion& region, ilp::Solver& solver);

// ---------------------------------------------------------------------------
// DOALL loop splitting at iteration granularity.
//
// For a DOALL loop the children presented to the ILP are iterations, which
// are identical and independent; materializing one binary per iteration
// would drown the solver in a symmetric partitioning problem. The
// iteration-count model keeps the same decisions (how many tasks, which
// class each maps to, how much work each receives, Eq 12-16 budgets) with an
// integer iteration count per task instead of per-chunk binaries.
// ---------------------------------------------------------------------------

struct ChunkRegion {
  std::string name;
  long long iterations = 0;             ///< total loop iterations per node execution
  std::vector<double> secondsPerIter;   ///< sequential body+control time, per class
  /// Inbound/outbound payload per iteration share, split into the bus's
  /// fixed latency (paid once per task) and bandwidth slope (per iteration).
  double commInLatency = 0.0;
  double commInSecondsPerIter = 0.0;
  double commOutLatency = 0.0;
  double commOutSecondsPerIter = 0.0;
  ClassId seqPC = 0;
  int maxProcs = 1;
  int maxTasks = 1;
  double taskCreationSeconds = 0.0;
  std::vector<int> numProcsPerClass;
  /// Same pruning bound as IlpRegion::upperBoundSeconds.
  double upperBoundSeconds = 0.0;
};

struct ChunkResult {
  bool feasible = false;
  bool provenOptimal = false;
  double timeSeconds = 0.0;
  std::vector<ClassId> taskClass;       ///< per used task, [0] = main (seqPC)
  std::vector<double> taskIterations;   ///< iterations per used task
  ilp::SolveStats stats;
};

ChunkResult solveChunkIlp(const ChunkRegion& region, ilp::Solver& solver);

}  // namespace hetpar::parallel
