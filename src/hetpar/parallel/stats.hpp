// Aggregated ILP statistics (feeds the reproduction of the paper's Table I).
#pragma once

#include <string>

#include "hetpar/ilp/model.hpp"

namespace hetpar::parallel {

struct IlpStatistics {
  long long numIlps = 0;
  long long numVars = 0;         ///< summed over all generated ILPs
  long long numConstraints = 0;  ///< summed over all generated ILPs
  long long bnbNodes = 0;
  long long simplexIterations = 0;
  double wallSeconds = 0.0;  ///< total solve time
  /// LP-engine behavior: basis (re)factorizations, eta-file pivot updates
  /// between them, and the peak basis-factor fill across all solves.
  long long refactorizations = 0;
  long long etaUpdates = 0;
  long long peakFillNonzeros = 0;
  /// Region-cache traffic. A hit returns a memoized result without running
  /// the solver, so hits do NOT count toward numIlps or the solve totals;
  /// numIlps + cacheHits = regions the parallelizer asked to solve.
  long long cacheHits = 0;
  long long cacheMisses = 0;

  void absorb(const ilp::SolveStats& s) {
    ++numIlps;
    numVars += static_cast<long long>(s.numVars);
    numConstraints += static_cast<long long>(s.numConstraints);
    bnbNodes += s.nodesExplored;
    simplexIterations += s.simplexIterations;
    wallSeconds += s.wallSeconds;
    refactorizations += s.refactorizations;
    etaUpdates += s.etaUpdates;
    if (s.peakFillNonzeros > peakFillNonzeros) peakFillNonzeros = s.peakFillNonzeros;
  }

  void merge(const IlpStatistics& other) {
    numIlps += other.numIlps;
    numVars += other.numVars;
    numConstraints += other.numConstraints;
    bnbNodes += other.bnbNodes;
    simplexIterations += other.simplexIterations;
    wallSeconds += other.wallSeconds;
    refactorizations += other.refactorizations;
    etaUpdates += other.etaUpdates;
    if (other.peakFillNonzeros > peakFillNonzeros) peakFillNonzeros = other.peakFillNonzeros;
    cacheHits += other.cacheHits;
    cacheMisses += other.cacheMisses;
  }

  std::string summary() const;
};

}  // namespace hetpar::parallel
