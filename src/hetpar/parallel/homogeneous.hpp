// The homogeneous baseline (paper reference [6], CODES+ISSS 2010).
//
// The baseline tool is heterogeneity-oblivious: it models the platform as
// `numCores` identical processors running at the main core's speed, then
// balances tasks uniformly. On a heterogeneous machine its tasks are placed
// round-robin onto the real cores by the evaluation harness, so faster cores
// idle waiting for slower ones — exactly the effect the paper's Figures 7(b)
// and 8(b) show (speedups below 1x).
#pragma once

#include "hetpar/parallel/parallelizer.hpp"

namespace hetpar::parallel {

/// The platform as the homogeneous tool perceives it: one class, all
/// `real.numCores()` units, clocked like `assumedClass`.
platform::Platform homogeneousView(const platform::Platform& real, ClassId assumedClass);

/// Runs the baseline: Algorithm 1 over the homogeneous view. The returned
/// solutions reference class 0 of the *view*; scheduling onto the real
/// platform is the flattener's job (round-robin, heterogeneity-unaware).
struct HomogeneousRun {
  platform::Platform view;   ///< keep alive: solutions refer to its class ids
  ParallelizeOutcome outcome;
};

HomogeneousRun runHomogeneousBaseline(const htg::Graph& graph, const platform::Platform& real,
                                      ClassId assumedClass, ParallelizerOptions options = {});

}  // namespace hetpar::parallel
