#include "hetpar/parallel/parallelizer.hpp"

#include <algorithm>
#include <cmath>

#include "hetpar/support/error.hpp"
#include "hetpar/support/log.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::parallel {

using htg::Node;
using htg::NodeId;

SolutionRef ParallelizeOutcome::bestRoot(const htg::Graph& g, ClassId mainClass) const {
  auto it = table.find(g.root());
  require(it != table.end(), "parallelizer has not produced a root parallel set");
  const int idx = it->second.bestFor(mainClass);
  require(idx >= 0, "no root solution for the requested main class");
  return SolutionRef{g.root(), idx};
}

Parallelizer::Parallelizer(const htg::Graph& graph, const cost::TimingModel& timing,
                           ParallelizerOptions options)
    : graph_(graph), timing_(timing), options_(options) {}

ParallelizeOutcome Parallelizer::run() {
  ParallelizeOutcome out;
  parallelizeNode(graph_.root(), out);
  return out;
}

double Parallelizer::sequentialSeconds(NodeId id, ClassId c, const SolutionTable& table) const {
  // Equivalent to the node's Sequential candidate; kept as a direct
  // computation so callers can query before the set exists.
  const Node& n = graph_.node(id);
  double seconds = timing_.seconds(c, n.mixPerExec);
  if (n.isHierarchical()) {
    for (NodeId childId : n.children) {
      const Node& child = graph_.node(childId);
      const double ratio = n.execCount > 0 ? child.execCount / n.execCount : 0.0;
      auto it = table.find(childId);
      HETPAR_CHECK_MSG(it != table.end(), "child parallel set missing (bottom-up order broken)");
      const int seq = it->second.sequentialFor(c);
      HETPAR_CHECK(seq >= 0);
      seconds += ratio * it->second.at(seq).timeSeconds;
    }
  }
  return seconds;
}

void Parallelizer::addSequentialCandidates(NodeId id, const SolutionTable& table,
                                           ParallelSet& set) {
  const int C = timing_.platform().numClasses();
  for (ClassId c = 0; c < C; ++c) {
    SolutionCandidate cand;
    cand.kind = SolutionKind::Sequential;
    cand.mainClass = c;
    cand.timeSeconds = sequentialSeconds(id, c, table);
    cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
    cand.taskClass = {c};
    set.add(std::move(cand));
  }
}

void Parallelizer::parallelizeNode(NodeId id, ParallelizeOutcome& out) {
  const Node& node = graph_.node(id);

  // "Parallelize bottom-up in hierarchy, first."
  if (node.isHierarchical())
    for (NodeId child : node.children) parallelizeNode(child, out);

  ParallelSet set;
  addSequentialCandidates(id, out.table, set);

  const platform::Platform& pf = timing_.platform();
  const int numCores = pf.numCores();
  const bool worthIt =
      node.isHierarchical() &&
      sequentialSeconds(id, pf.fastestClass(), out.table) >=
          options_.minRegionTcoMultiple * timing_.taskCreationSeconds() &&
      node.execCount > 0;

  if (worthIt) {
    ilp::SolveOptions solveOpts;
    solveOpts.timeLimitSeconds = options_.ilpTimeLimitSeconds;
    solveOpts.maxNodes = options_.ilpMaxNodes;
    ilp::BranchAndBoundSolver solver(solveOpts);

    struct Mode {
      SolutionKind kind;
      bool enabled;
    };
    const bool canTaskParallel = node.children.size() >= 2;
    const bool canChunk = options_.enableChunking && node.kind == htg::NodeKind::Loop &&
                          node.doall && node.iterationsPerExec >= 2.0;
    const Mode modes[] = {{SolutionKind::TaskParallel, canTaskParallel},
                          {SolutionKind::LoopChunked, canChunk}};

    // Algorithm 1's shrinking processor budget exists to hand the *parent*
    // level solutions with fewer allocated units to combine; the root node
    // has no parent, so only the full-budget candidate can ever be chosen.
    const bool isRoot = id == graph_.root();

    for (const Mode& mode : modes) {
      if (!mode.enabled) continue;
      for (ClassId seqPC = 0; seqPC < pf.numClasses(); ++seqPC) {
        int budget = numCores;
        while (budget > 1) {
          SolutionCandidate cand;
          bool feasible = false;
          // Pruning bound: something at least as good as the best known
          // candidate for this class must exist (the sequential candidate
          // guarantees one).
          const int bestSoFar = set.bestFor(seqPC);
          double upperBound = bestSoFar >= 0 ? set.at(bestSoFar).timeSeconds : 0.0;
          if (mode.kind == SolutionKind::TaskParallel) {
            IlpRegion region = buildTaskRegion(id, out.table, seqPC, budget);
            // The greedy all-in-main assignment is always feasible: it
            // seeds the ILP's upper bound and doubles as a fallback
            // candidate when the solver hits its limits first.
            SolutionCandidate greedy = greedyAllInMain(region);
            if (greedy.timeSeconds > 0 &&
                (upperBound <= 0 || greedy.timeSeconds * 1.02 < upperBound))
              upperBound = greedy.timeSeconds * 1.02;
            region.upperBoundSeconds = upperBound;
            const IlpParResult r = solveIlpPar(region, solver);
            out.stats.absorb(r.stats);
            feasible = r.feasible;
            if (feasible) cand = decodeTaskParallel(node, region, r);
            if (greedy.timeSeconds > 0 && greedy.totalProcs() > 1 &&
                (!feasible || greedy.timeSeconds < cand.timeSeconds))
              set.add(greedy);
          } else {
            ChunkRegion region = buildChunkRegion(id, out.table, seqPC, budget);
            region.upperBoundSeconds = upperBound;
            const ChunkResult r = solveChunkIlp(region, solver);
            out.stats.absorb(r.stats);
            feasible = r.feasible;
            if (feasible) cand = decodeChunked(node, r, seqPC);
          }
          if (!feasible) break;
          const int procs = cand.totalProcs();
          if (procs > 1) set.add(std::move(cand));
          if (isRoot) break;
          // Algorithm 1: i <- NUMBEROFTASKS(r) - 1, strictly decreasing.
          budget = std::min(budget - 1, procs - 1);
        }
      }
    }
  }

  set.pruneDominated();
  set.capPerClass(options_.maxCandidatesPerClass);
  out.table.emplace(id, std::move(set));
}

SolutionCandidate Parallelizer::greedyAllInMain(const IlpRegion& region) const {
  // Convert the bound-producing assignment into a real candidate: one task
  // (the main one), every child on it with the greedily chosen nested
  // candidate. Always valid, so it doubles as a fallback when the ILP hits
  // its limits before reproducing it.
  const int C = static_cast<int>(region.numProcsPerClass.size());
  SolutionCandidate cand;
  cand.kind = SolutionKind::TaskParallel;
  cand.mainClass = region.seqPC;
  cand.taskClass = {region.seqPC};
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  cand.childTask.assign(region.children.size(), 0);
  cand.childChoice.resize(region.children.size());
  cand.timeSeconds = 0.0;  // the main task pays no creation overhead

  struct Option {
    const IlpCandidate* seq = nullptr;
    const IlpCandidate* best = nullptr;
  };
  std::vector<Option> options(region.children.size());
  for (std::size_t n = 0; n < region.children.size(); ++n) {
    for (const IlpCandidate& c :
         region.children[n].byClass[static_cast<std::size_t>(region.seqPC)]) {
      int extra = 0;
      for (int e : c.extraProcs) extra += e;
      if (extra == 0 &&
          (options[n].seq == nullptr || c.timeSeconds < options[n].seq->timeSeconds))
        options[n].seq = &c;
      if (options[n].best == nullptr || c.timeSeconds < options[n].best->timeSeconds)
        options[n].best = &c;
    }
    if (options[n].seq == nullptr) {
      cand.timeSeconds = 0.0;  // signals "no valid greedy candidate"
      return cand;
    }
  }

  std::vector<std::size_t> order(options.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double sa = options[a].seq->timeSeconds - options[a].best->timeSeconds;
    const double sb = options[b].seq->timeSeconds - options[b].best->timeSeconds;
    return sa > sb;
  });

  std::vector<int> classMax(static_cast<std::size_t>(C), 0);
  std::vector<const IlpCandidate*> chosen(options.size(), nullptr);
  for (std::size_t i = 0; i < options.size(); ++i) chosen[i] = options[i].seq;
  for (std::size_t i : order) {
    const IlpCandidate* best = options[i].best;
    if (best == options[i].seq) continue;
    std::vector<int> trial = classMax;
    for (int c = 0; c < C && c < static_cast<int>(best->extraProcs.size()); ++c)
      trial[static_cast<std::size_t>(c)] = std::max(
          trial[static_cast<std::size_t>(c)], best->extraProcs[static_cast<std::size_t>(c)]);
    int total = 1;
    bool fits = true;
    for (int c = 0; c < C; ++c) {
      total += trial[static_cast<std::size_t>(c)];
      const int available = region.numProcsPerClass[static_cast<std::size_t>(c)] -
                            (c == region.seqPC ? 1 : 0);
      fits = fits && trial[static_cast<std::size_t>(c)] <= available;
    }
    if (!fits || total > region.maxProcs) continue;
    classMax = std::move(trial);
    chosen[i] = best;
  }
  for (std::size_t n = 0; n < options.size(); ++n) {
    cand.timeSeconds += chosen[n]->timeSeconds;
    cand.childChoice[n] = chosen[n]->ref;
  }
  cand.extraProcs.assign(classMax.begin(), classMax.end());
  return cand;
}

double Parallelizer::allInMainBound(const IlpRegion& region) const {
  const SolutionCandidate greedy = greedyAllInMain(region);
  if (greedy.timeSeconds <= 0) return 0.0;
  // Leave a little slack above the heuristic value so the solver has room
  // to *reach* the bound-achieving corner without tolerance trouble.
  return greedy.timeSeconds * 1.02;
}

IlpRegion Parallelizer::buildTaskRegion(NodeId id, const SolutionTable& table, ClassId seqPC,
                                        int maxProcs) const {
  const Node& node = graph_.node(id);
  const platform::Platform& pf = timing_.platform();
  const int C = pf.numClasses();

  IlpRegion region;
  region.name = strings::format("n%d_pc%d_b%d", id, seqPC, maxProcs);
  region.seqPC = seqPC;
  region.maxProcs = maxProcs;
  region.maxTasks = std::min({options_.maxTasksPerRegion, maxProcs,
                              static_cast<int>(node.children.size())});
  region.taskCreationSeconds = timing_.taskCreationSeconds();
  for (ClassId c = 0; c < C; ++c)
    region.numProcsPerClass.push_back(pf.classAt(c).count);

  // Children with their iteration-scaled candidate menus.
  std::map<NodeId, int> childIndex;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const NodeId childId = node.children[i];
    childIndex[childId] = static_cast<int>(i);
    const Node& child = graph_.node(childId);
    const double ratio = node.execCount > 0 ? child.execCount / node.execCount : 0.0;

    IlpChild ic;
    ic.label = child.label;
    ic.byClass.resize(static_cast<std::size_t>(C));
    const ParallelSet& childSet = table.at(childId);
    for (ClassId c = 0; c < C; ++c) {
      for (int idx : childSet.forClass(c)) {
        const SolutionCandidate& cand = childSet.at(idx);
        if (!options_.enableParallelSetMapping && cand.kind != SolutionKind::Sequential)
          continue;
        IlpCandidate entry;
        entry.timeSeconds = ratio * cand.timeSeconds;
        entry.extraProcs = cand.extraProcs;
        entry.ref = SolutionRef{childId, idx};
        ic.byClass[static_cast<std::size_t>(c)].push_back(std::move(entry));
      }
      HETPAR_CHECK_MSG(!ic.byClass[static_cast<std::size_t>(c)].empty(),
                       "parallel set lost its per-class sequential candidate");
    }
    region.children.push_back(std::move(ic));
  }

  // Edges: per-iteration synchronization for loop regions, one-shot flows
  // elsewhere.
  const double commScale =
      node.kind == htg::NodeKind::Loop ? std::max(1.0, node.iterationsPerExec) : 1.0;
  const int N = static_cast<int>(node.children.size());
  for (const htg::Edge& e : node.edges) {
    IlpEdgeSpec spec;
    spec.orderingOnly = e.kind != ir::DepKind::Flow;
    spec.commSeconds =
        spec.orderingOnly ? 0.0 : commScale * timing_.commSeconds(e.bytes);
    if (e.from == node.commIn) spec.from = -1;
    else spec.from = childIndex.at(e.from);
    if (e.to == node.commOut) spec.to = N;
    else spec.to = childIndex.at(e.to);
    region.edges.push_back(spec);
  }
  return region;
}

ChunkRegion Parallelizer::buildChunkRegion(NodeId id, const SolutionTable& table, ClassId seqPC,
                                           int maxProcs) const {
  const Node& node = graph_.node(id);
  const platform::Platform& pf = timing_.platform();
  const int C = pf.numClasses();
  HETPAR_CHECK(node.kind == htg::NodeKind::Loop && node.doall);

  const double iterations = std::max(1.0, node.iterationsPerExec);

  ChunkRegion region;
  region.name = strings::format("n%d_chunk_pc%d_b%d", id, seqPC, maxProcs);
  region.iterations = static_cast<long long>(std::llround(iterations));
  region.seqPC = seqPC;
  region.maxProcs = maxProcs;
  region.maxTasks = std::min(options_.maxTasksPerRegion, maxProcs);
  region.taskCreationSeconds = timing_.taskCreationSeconds();
  for (ClassId c = 0; c < C; ++c)
    region.numProcsPerClass.push_back(pf.classAt(c).count);

  // Per-iteration sequential body time per class: loop-control header plus
  // the children's sequential candidates, normalized to one iteration.
  for (ClassId c = 0; c < C; ++c) {
    double bodySeconds = timing_.seconds(c, node.mixPerExec);  // header, per node exec
    for (NodeId childId : node.children) {
      const Node& child = graph_.node(childId);
      const double ratio = node.execCount > 0 ? child.execCount / node.execCount : 0.0;
      const ParallelSet& childSet = table.at(childId);
      const int seq = childSet.sequentialFor(c);
      HETPAR_CHECK(seq >= 0);
      bodySeconds += ratio * childSet.at(seq).timeSeconds;
    }
    region.secondsPerIter.push_back(bodySeconds / iterations);
  }

  // Boundary payloads: inbound/outbound bytes through the comm nodes,
  // proportional to the iteration share; reductions add one scalar merge.
  long long inBytes = 0;
  long long outBytes = 0;
  for (const htg::Edge& e : node.edges) {
    if (e.from == node.commIn && e.kind == ir::DepKind::Flow) inBytes += e.bytes;
    if (e.to == node.commOut && e.kind == ir::DepKind::Flow) outBytes += e.bytes;
  }
  outBytes += 8 * static_cast<long long>(node.reductionVars.size());
  const platform::Interconnect& bus = pf.interconnect();
  if (inBytes > 0) {
    region.commInLatency = bus.latencySeconds;
    region.commInSecondsPerIter =
        static_cast<double>(inBytes) / iterations / bus.bytesPerSecond;
  }
  if (outBytes > 0) {
    region.commOutLatency = bus.latencySeconds;
    region.commOutSecondsPerIter =
        static_cast<double>(outBytes) / iterations / bus.bytesPerSecond;
  }
  return region;
}

SolutionCandidate Parallelizer::decodeTaskParallel(const Node& node, const IlpRegion& region,
                                                   const IlpParResult& r) const {
  (void)node;
  const int C = timing_.platform().numClasses();
  SolutionCandidate cand;
  cand.kind = SolutionKind::TaskParallel;
  cand.mainClass = region.seqPC;
  cand.timeSeconds = r.timeSeconds;
  cand.taskClass = r.taskClass;
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  for (std::size_t t = 1; t < r.taskClass.size(); ++t)
    ++cand.extraProcs[static_cast<std::size_t>(r.taskClass[t])];

  cand.childTask = r.childTask;
  cand.childChoice.resize(region.children.size());
  // Children sharing a task run sequentially and reuse the processors their
  // nested solutions borrow, so the per-task footprint is the per-class
  // MAXIMUM over its children (Eq 14's accounting), summed over tasks.
  std::vector<std::vector<int>> perTask(r.taskClass.size(),
                                        std::vector<int>(static_cast<std::size_t>(C), 0));
  for (std::size_t n = 0; n < region.children.size(); ++n) {
    const auto [cls, s] = r.childChoice[n];
    const IlpCandidate& chosen =
        region.children[n].byClass[static_cast<std::size_t>(cls)][static_cast<std::size_t>(s)];
    cand.childChoice[n] = chosen.ref;
    const int t = r.childTask[n];
    if (t < static_cast<int>(perTask.size())) {
      for (int c = 0; c < C && c < static_cast<int>(chosen.extraProcs.size()); ++c)
        perTask[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] =
            std::max(perTask[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)],
                     chosen.extraProcs[static_cast<std::size_t>(c)]);
    }
  }
  for (const auto& taskExtra : perTask)
    for (int c = 0; c < C; ++c)
      cand.extraProcs[static_cast<std::size_t>(c)] += taskExtra[static_cast<std::size_t>(c)];
  return cand;
}

SolutionCandidate Parallelizer::decodeChunked(const Node& node, const ChunkResult& r,
                                              ClassId seqPC) const {
  (void)node;
  const int C = timing_.platform().numClasses();
  SolutionCandidate cand;
  cand.kind = SolutionKind::LoopChunked;
  cand.mainClass = seqPC;
  cand.timeSeconds = r.timeSeconds;
  cand.taskClass = r.taskClass;
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  for (std::size_t t = 1; t < r.taskClass.size(); ++t)
    ++cand.extraProcs[static_cast<std::size_t>(r.taskClass[t])];
  cand.chunkIterations = r.taskIterations;
  return cand;
}

}  // namespace hetpar::parallel
