#include "hetpar/parallel/parallelizer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <utility>

#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/log.hpp"
#include "hetpar/support/strings.hpp"
#include "hetpar/support/thread_pool.hpp"

namespace hetpar::parallel {

using htg::Node;
using htg::NodeId;

SolutionRef ParallelizeOutcome::bestRoot(const htg::Graph& g, ClassId mainClass) const {
  auto it = table.find(g.root());
  require(it != table.end(), "parallelizer has not produced a root parallel set");
  const int idx = it->second.bestFor(mainClass);
  require(idx >= 0, "no root solution for the requested main class");
  return SolutionRef{g.root(), idx};
}

Parallelizer::Parallelizer(const htg::Graph& graph, const cost::TimingModel& timing,
                           ParallelizerOptions options)
    : graph_(graph), timing_(timing), options_(options) {}

namespace {

/// Solves a task region, first consulting the cache when one is active.
/// Hits return the memoized result without touching the solver (and without
/// contributing solve statistics); misses solve, account, and store.
IlpParResult solveTaskCached(const IlpRegion& region, ilp::BranchAndBoundSolver& solver,
                             IlpRegionCache* cache, IlpStatistics& stats, char keyTag) {
  if (cache == nullptr) {
    IlpParResult r = solveIlpPar(region, solver);
    stats.absorb(r.stats);
    return r;
  }
  const std::string key = IlpRegionCache::taskKey(region, solver.options(), keyTag);
  IlpParResult r;
  if (cache->lookupTask(key, r)) {
    ++stats.cacheHits;
    return r;
  }
  r = solveIlpPar(region, solver);
  stats.absorb(r.stats);
  ++stats.cacheMisses;
  cache->storeTask(key, r);
  return r;
}

ChunkResult solveChunkCached(const ChunkRegion& region, ilp::BranchAndBoundSolver& solver,
                             IlpRegionCache* cache, IlpStatistics& stats, char keyTag) {
  if (cache == nullptr) {
    ChunkResult r = solveChunkIlp(region, solver);
    stats.absorb(r.stats);
    return r;
  }
  const std::string key = IlpRegionCache::chunkKey(region, solver.options(), keyTag);
  ChunkResult r;
  if (cache->lookupChunk(key, r)) {
    ++stats.cacheHits;
    return r;
  }
  r = solveChunkIlp(region, solver);
  stats.absorb(r.stats);
  ++stats.cacheMisses;
  cache->storeChunk(key, r);
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Traversal and sweep decomposition (shared by both engines)
// ---------------------------------------------------------------------------

std::vector<NodeId> Parallelizer::postOrder(std::vector<NodeId>& parent) const {
  parent.assign(graph_.size(), htg::kNoNode);
  std::vector<NodeId> order;
  order.reserve(graph_.size());
  // Explicit stack: the traversal depth equals the HTG depth, which
  // generated inputs can make far deeper than the call stack tolerates.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(graph_.root(), 0);
  while (!stack.empty()) {
    auto& [id, next] = stack.back();
    const Node& node = graph_.node(id);
    if (node.isHierarchical() && next < node.children.size()) {
      const NodeId child = node.children[next++];
      parent[static_cast<std::size_t>(child)] = id;
      stack.emplace_back(child, 0);
    } else {
      order.push_back(id);
      stack.pop_back();
    }
  }
  return order;
}

std::vector<SolutionKind> Parallelizer::enabledModes(NodeId id,
                                                     const std::vector<ParallelSet>& sets) const {
  const Node& node = graph_.node(id);
  const platform::Platform& pf = timing_.platform();
  const bool worthIt =
      node.isHierarchical() &&
      sequentialSeconds(id, pf.fastestClass(), sets) >=
          options_.minRegionTcoMultiple * timing_.taskCreationSeconds() &&
      node.execCount > 0;
  std::vector<SolutionKind> modes;
  if (!worthIt) return modes;
  if (node.children.size() >= 2) modes.push_back(SolutionKind::TaskParallel);
  if (options_.enableChunking && node.kind == htg::NodeKind::Loop && node.doall &&
      node.iterationsPerExec >= 2.0)
    modes.push_back(SolutionKind::LoopChunked);
  return modes;
}

Parallelizer::LaneOutput Parallelizer::runLane(NodeId id, SolutionKind kind, ClassId seqPC,
                                               double bestStartSeconds,
                                               const std::vector<ParallelSet>& sets,
                                               IlpRegionCache* cache) const {
  LaneOutput out;
  const Node& node = graph_.node(id);
  const int numCores = timing_.platform().numCores();
  // Algorithm 1's shrinking processor budget exists to hand the *parent*
  // level solutions with fewer allocated units to combine; the root node
  // has no parent, so only the full-budget candidate can ever be chosen.
  const bool isRoot = id == graph_.root();

  ilp::SolveOptions solveOpts;
  solveOpts.timeLimitSeconds = options_.ilpTimeLimitSeconds;
  solveOpts.maxNodes = options_.ilpMaxNodes;
  solveOpts.engine = options_.solverEngine;
  ilp::BranchAndBoundSolver solver(solveOpts);

  // Pruning bound: the fastest known candidate for this class. Only this
  // lane produces candidates tagged `seqPC` within its phase, so the phase
  // snapshot plus the lane's own additions is exactly what the sequential
  // sweep would see.
  double bestSeconds = bestStartSeconds;
  int budget = numCores;
  while (budget > 1) {
    SolutionCandidate cand;
    bool feasible = false;
    double upperBound = bestSeconds;
    if (kind == SolutionKind::TaskParallel) {
      IlpRegion region = buildTaskRegion(id, sets, seqPC, budget);
      // The greedy all-in-main assignment is always feasible: it seeds the
      // ILP's upper bound and doubles as a fallback candidate when the
      // solver hits its limits first.
      SolutionCandidate greedy = greedyAllInMain(region);
      if (greedy.timeSeconds > 0 &&
          (upperBound <= 0 || greedy.timeSeconds * 1.02 < upperBound))
        upperBound = greedy.timeSeconds * 1.02;
      region.upperBoundSeconds = upperBound;
      const char keyTag = static_cast<char>(static_cast<int>(options_.dependenceMode) +
                                            2 * static_cast<int>(options_.flowMode));
      const IlpParResult r = solveTaskCached(region, solver, cache, out.stats, keyTag);
      feasible = r.feasible;
      if (feasible) cand = decodeTaskParallel(node, region, r);
      if (greedy.timeSeconds > 0 && greedy.totalProcs() > 1 &&
          (!feasible || greedy.timeSeconds < cand.timeSeconds)) {
        if (greedy.timeSeconds < bestSeconds) bestSeconds = greedy.timeSeconds;
        out.adds.push_back(std::move(greedy));
      }
    } else {
      ChunkRegion region = buildChunkRegion(id, sets, seqPC, budget);
      region.upperBoundSeconds = upperBound;
      const char keyTag = static_cast<char>(static_cast<int>(options_.dependenceMode) +
                                            2 * static_cast<int>(options_.flowMode));
      const ChunkResult r = solveChunkCached(region, solver, cache, out.stats, keyTag);
      feasible = r.feasible;
      if (feasible) cand = decodeChunked(node, r, seqPC);
    }
    if (!feasible) break;
    const int procs = cand.totalProcs();
    if (procs > 1) {
      if (cand.timeSeconds < bestSeconds) bestSeconds = cand.timeSeconds;
      out.adds.push_back(std::move(cand));
    }
    if (isRoot) break;
    // Algorithm 1: i <- NUMBEROFTASKS(r) - 1, strictly decreasing.
    budget = std::min(budget - 1, procs - 1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sequential engine (jobs == 1): the reference semantics
// ---------------------------------------------------------------------------

void Parallelizer::runSequential(const std::vector<NodeId>& order,
                                 std::vector<ParallelSet>& sets,
                                 std::vector<IlpStatistics>& nodeStats,
                                 IlpRegionCache* cache) const {
  const int C = timing_.platform().numClasses();
  for (NodeId id : order) {
    ParallelSet set;
    addSequentialCandidates(id, sets, set);
    for (SolutionKind kind : enabledModes(id, sets)) {
      for (ClassId seqPC = 0; seqPC < C; ++seqPC) {
        const int best = set.bestFor(seqPC);
        const double bestStart = best >= 0 ? set.at(best).timeSeconds : 0.0;
        LaneOutput lane = runLane(id, kind, seqPC, bestStart, sets, cache);
        for (SolutionCandidate& cand : lane.adds) set.add(std::move(cand));
        nodeStats[static_cast<std::size_t>(id)].merge(lane.stats);
      }
    }
    set.pruneDominated();
    set.capPerClass(options_.maxCandidatesPerClass);
    sets[static_cast<std::size_t>(id)] = std::move(set);
  }
}

// ---------------------------------------------------------------------------
// Concurrent engine (jobs > 1): bottom-up wavefront over the pool
// ---------------------------------------------------------------------------
//
// Continuation-style scheduling: no task ever blocks waiting for another
// (blocking waits inside a fixed-size pool deadlock once the waiters use up
// all workers). Progress is driven by atomic countdowns — the last lane of
// a phase merges and starts the next phase, the last child of a node posts
// its parent — and the calling thread waits on a condition variable until
// every node has been finalized.

struct Parallelizer::RunState {
  struct NodeWork {
    ParallelSet set;
    std::vector<SolutionKind> modes;
    std::size_t phaseIndex = 0;
    std::vector<LaneOutput> lanes;
    std::atomic<int> pendingLanes{0};
    std::atomic<int> pendingChildren{0};
  };

  explicit RunState(std::size_t numNodes) : work(numNodes) {}

  std::vector<NodeWork> work;  ///< indexed by NodeId
  const std::vector<NodeId>* parent = nullptr;
  std::vector<ParallelSet>* sets = nullptr;
  std::vector<IlpStatistics>* nodeStats = nullptr;
  IlpRegionCache* cache = nullptr;
  support::ThreadPool* pool = nullptr;
  std::atomic<int> nodesRemaining{0};

  // First failure wins; everything after it short-circuits to bookkeeping
  // so the countdowns still reach zero and the caller can rethrow.
  std::atomic<bool> aborted{false};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  std::mutex doneMutex;
  std::condition_variable doneCv;

  void recordError(std::exception_ptr error) {
    {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::move(error);
    }
    aborted.store(true, std::memory_order_release);
  }
};

void Parallelizer::processNode(RunState& rs, NodeId id) const {
  RunState::NodeWork& nw = rs.work[static_cast<std::size_t>(id)];
  if (!rs.aborted.load(std::memory_order_acquire)) {
    try {
      addSequentialCandidates(id, *rs.sets, nw.set);
      nw.modes = enabledModes(id, *rs.sets);
    } catch (...) {
      rs.recordError(std::current_exception());
    }
  }
  if (rs.aborted.load(std::memory_order_acquire) || nw.modes.empty()) {
    finalizeNode(rs, id);
    return;
  }
  startPhase(rs, id);
}

void Parallelizer::startPhase(RunState& rs, NodeId id) const {
  RunState::NodeWork& nw = rs.work[static_cast<std::size_t>(id)];
  const SolutionKind kind = nw.modes[nw.phaseIndex];
  const int C = timing_.platform().numClasses();
  nw.lanes.clear();
  nw.lanes.resize(static_cast<std::size_t>(C));
  nw.pendingLanes.store(C, std::memory_order_relaxed);
  // The phase boundary is a barrier on purpose: a LoopChunked lane's
  // starting bound must include the TaskParallel candidates of the same
  // seqPC, exactly like the sequential sweep's mode ordering.
  for (ClassId seqPC = 0; seqPC < C; ++seqPC) {
    const int best = nw.set.bestFor(seqPC);
    const double bestStart = best >= 0 ? nw.set.at(best).timeSeconds : 0.0;
    rs.pool->post([this, &rs, id, kind, seqPC, bestStart] {
      RunState::NodeWork& w = rs.work[static_cast<std::size_t>(id)];
      if (!rs.aborted.load(std::memory_order_acquire)) {
        try {
          w.lanes[static_cast<std::size_t>(seqPC)] =
              runLane(id, kind, seqPC, bestStart, *rs.sets, rs.cache);
        } catch (...) {
          rs.recordError(std::current_exception());
        }
      }
      if (w.pendingLanes.fetch_sub(1, std::memory_order_acq_rel) == 1)
        completePhase(rs, id);
    });
  }
}

void Parallelizer::completePhase(RunState& rs, NodeId id) const {
  RunState::NodeWork& nw = rs.work[static_cast<std::size_t>(id)];
  if (rs.aborted.load(std::memory_order_acquire)) {
    finalizeNode(rs, id);
    return;
  }
  // Canonical merge order: lanes in seqPC order (the phases themselves run
  // in mode order), regardless of which thread finished when.
  for (LaneOutput& lane : nw.lanes) {
    for (SolutionCandidate& cand : lane.adds) nw.set.add(std::move(cand));
    (*rs.nodeStats)[static_cast<std::size_t>(id)].merge(lane.stats);
  }
  ++nw.phaseIndex;
  if (nw.phaseIndex < nw.modes.size())
    startPhase(rs, id);
  else
    finalizeNode(rs, id);
}

void Parallelizer::finalizeNode(RunState& rs, NodeId id) const {
  RunState::NodeWork& nw = rs.work[static_cast<std::size_t>(id)];
  if (!rs.aborted.load(std::memory_order_acquire)) {
    try {
      nw.set.pruneDominated();
      nw.set.capPerClass(options_.maxCandidatesPerClass);
      (*rs.sets)[static_cast<std::size_t>(id)] = std::move(nw.set);
    } catch (...) {
      rs.recordError(std::current_exception());
    }
  }
  const NodeId p = (*rs.parent)[static_cast<std::size_t>(id)];
  if (p != htg::kNoNode &&
      rs.work[static_cast<std::size_t>(p)].pendingChildren.fetch_sub(
          1, std::memory_order_acq_rel) == 1)
    // Post rather than recurse: a chain of trivial ancestors would otherwise
    // unwind on this thread's call stack.
    rs.pool->post([this, &rs, p] { processNode(rs, p); });
  if (rs.nodesRemaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(rs.doneMutex);
    rs.doneCv.notify_all();
  }
}

void Parallelizer::runConcurrent(int jobs, const std::vector<NodeId>& order,
                                 const std::vector<NodeId>& parent,
                                 std::vector<ParallelSet>& sets,
                                 std::vector<IlpStatistics>& nodeStats,
                                 IlpRegionCache* cache) const {
  RunState rs(graph_.size());
  rs.parent = &parent;
  rs.sets = &sets;
  rs.nodeStats = &nodeStats;
  rs.cache = cache;
  rs.nodesRemaining.store(static_cast<int>(order.size()), std::memory_order_relaxed);

  std::vector<NodeId> seeds;
  for (NodeId id : order) {
    const Node& node = graph_.node(id);
    const int kids = node.isHierarchical() ? static_cast<int>(node.children.size()) : 0;
    rs.work[static_cast<std::size_t>(id)].pendingChildren.store(kids,
                                                                std::memory_order_relaxed);
    if (kids == 0) seeds.push_back(id);
  }

  support::ThreadPool pool(jobs);
  rs.pool = &pool;
  for (NodeId id : seeds) pool.post([this, &rs, id] { processNode(rs, id); });

  {
    std::unique_lock<std::mutex> lock(rs.doneMutex);
    rs.doneCv.wait(lock, [&rs] {
      return rs.nodesRemaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (rs.firstError) std::rethrow_exception(rs.firstError);
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

ParallelizeOutcome Parallelizer::run() {
  std::vector<NodeId> parent;
  const std::vector<NodeId> order = postOrder(parent);

  std::unique_ptr<IlpRegionCache> privateCache;
  IlpRegionCache* cache = nullptr;
  if (options_.regionCache != nullptr) {
    cache = options_.regionCache.get();
  } else if (options_.enableRegionCache) {
    privateCache = std::make_unique<IlpRegionCache>();
    cache = privateCache.get();
  }

  std::vector<ParallelSet> sets(graph_.size());
  std::vector<IlpStatistics> nodeStats(graph_.size());

  const int jobs = support::ThreadPool::resolveJobs(options_.jobs);
  if (jobs <= 1)
    runSequential(order, sets, nodeStats, cache);
  else
    runConcurrent(jobs, order, parent, sets, nodeStats, cache);

  ParallelizeOutcome out;
  for (NodeId id : order) {
    // Post-order stats merging keeps the floating-point summation order
    // independent of the jobs count.
    out.stats.merge(nodeStats[static_cast<std::size_t>(id)]);
    out.table.emplace(id, std::move(sets[static_cast<std::size_t>(id)]));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Candidate construction helpers
// ---------------------------------------------------------------------------

double Parallelizer::sequentialSeconds(NodeId id, ClassId c,
                                       const std::vector<ParallelSet>& sets) const {
  // Equivalent to the node's Sequential candidate; kept as a direct
  // computation so callers can query before the set exists.
  const Node& n = graph_.node(id);
  double seconds = timing_.seconds(c, n.mixPerExec);
  if (n.isHierarchical()) {
    for (NodeId childId : n.children) {
      const Node& child = graph_.node(childId);
      const double ratio = n.execCount > 0 ? child.execCount / n.execCount : 0.0;
      const ParallelSet& childSet = sets[static_cast<std::size_t>(childId)];
      const int seq = childSet.sequentialFor(c);
      HETPAR_CHECK_MSG(seq >= 0, "child parallel set missing (bottom-up order broken)");
      seconds += ratio * childSet.at(seq).timeSeconds;
    }
  }
  return seconds;
}

void Parallelizer::addSequentialCandidates(NodeId id, const std::vector<ParallelSet>& sets,
                                           ParallelSet& set) const {
  const int C = timing_.platform().numClasses();
  for (ClassId c = 0; c < C; ++c) {
    SolutionCandidate cand;
    cand.kind = SolutionKind::Sequential;
    cand.mainClass = c;
    cand.timeSeconds = sequentialSeconds(id, c, sets);
    cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
    cand.taskClass = {c};
    set.add(std::move(cand));
  }
}

SolutionCandidate greedyAllInMain(const IlpRegion& region) {
  // Convert the bound-producing assignment into a real candidate: one task
  // (the main one), every child on it with the greedily chosen nested
  // candidate. Always valid, so it doubles as a fallback when the ILP hits
  // its limits before reproducing it.
  const int C = static_cast<int>(region.numProcsPerClass.size());
  SolutionCandidate cand;
  cand.kind = SolutionKind::TaskParallel;
  cand.mainClass = region.seqPC;
  cand.taskClass = {region.seqPC};
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  cand.childTask.assign(region.children.size(), 0);
  cand.childChoice.resize(region.children.size());
  cand.timeSeconds = 0.0;  // the main task pays no creation overhead

  struct Option {
    const IlpCandidate* seq = nullptr;
    const IlpCandidate* best = nullptr;
  };
  std::vector<Option> options(region.children.size());
  for (std::size_t n = 0; n < region.children.size(); ++n) {
    for (const IlpCandidate& c :
         region.children[n].byClass[static_cast<std::size_t>(region.seqPC)]) {
      int extra = 0;
      for (int e : c.extraProcs) extra += e;
      if (extra == 0 &&
          (options[n].seq == nullptr || c.timeSeconds < options[n].seq->timeSeconds))
        options[n].seq = &c;
      if (options[n].best == nullptr || c.timeSeconds < options[n].best->timeSeconds)
        options[n].best = &c;
    }
    if (options[n].seq == nullptr) {
      cand.timeSeconds = 0.0;  // signals "no valid greedy candidate"
      return cand;
    }
  }

  std::vector<std::size_t> order(options.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double sa = options[a].seq->timeSeconds - options[a].best->timeSeconds;
    const double sb = options[b].seq->timeSeconds - options[b].best->timeSeconds;
    return sa > sb;
  });

  std::vector<int> classMax(static_cast<std::size_t>(C), 0);
  std::vector<const IlpCandidate*> chosen(options.size(), nullptr);
  for (std::size_t i = 0; i < options.size(); ++i) chosen[i] = options[i].seq;
  for (std::size_t i : order) {
    const IlpCandidate* best = options[i].best;
    if (best == options[i].seq) continue;
    std::vector<int> trial = classMax;
    for (int c = 0; c < C && c < static_cast<int>(best->extraProcs.size()); ++c)
      trial[static_cast<std::size_t>(c)] = std::max(
          trial[static_cast<std::size_t>(c)], best->extraProcs[static_cast<std::size_t>(c)]);
    int total = 1;
    bool fits = true;
    for (int c = 0; c < C; ++c) {
      total += trial[static_cast<std::size_t>(c)];
      const int available = region.numProcsPerClass[static_cast<std::size_t>(c)] -
                            (c == region.seqPC ? 1 : 0);
      fits = fits && trial[static_cast<std::size_t>(c)] <= available;
    }
    if (!fits || total > region.maxProcs) continue;
    classMax = std::move(trial);
    chosen[i] = best;
  }
  for (std::size_t n = 0; n < options.size(); ++n) {
    cand.timeSeconds += chosen[n]->timeSeconds;
    cand.childChoice[n] = chosen[n]->ref;
  }
  cand.extraProcs.assign(classMax.begin(), classMax.end());
  return cand;
}

double allInMainBound(const IlpRegion& region) {
  const SolutionCandidate greedy = greedyAllInMain(region);
  if (greedy.timeSeconds <= 0) return 0.0;
  // Leave a little slack above the heuristic value so the solver has room
  // to *reach* the bound-achieving corner without tolerance trouble.
  return greedy.timeSeconds * 1.02;
}

IlpRegion Parallelizer::buildTaskRegion(NodeId id, const std::vector<ParallelSet>& sets,
                                        ClassId seqPC, int maxProcs) const {
  const Node& node = graph_.node(id);
  const platform::Platform& pf = timing_.platform();
  const int C = pf.numClasses();

  IlpRegion region;
  region.name = strings::format("n%d_pc%d_b%d", id, seqPC, maxProcs);
  region.seqPC = seqPC;
  region.maxProcs = maxProcs;
  region.maxTasks = std::min({options_.maxTasksPerRegion, maxProcs,
                              static_cast<int>(node.children.size())});
  region.taskCreationSeconds = timing_.taskCreationSeconds();
  for (ClassId c = 0; c < C; ++c)
    region.numProcsPerClass.push_back(pf.classAt(c).count);

  // Children with their iteration-scaled candidate menus.
  std::map<NodeId, int> childIndex;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const NodeId childId = node.children[i];
    childIndex[childId] = static_cast<int>(i);
    const Node& child = graph_.node(childId);
    const double ratio = node.execCount > 0 ? child.execCount / node.execCount : 0.0;

    IlpChild ic;
    ic.label = child.label;
    ic.byClass.resize(static_cast<std::size_t>(C));
    const ParallelSet& childSet = sets[static_cast<std::size_t>(childId)];
    for (ClassId c = 0; c < C; ++c) {
      for (int idx : childSet.forClass(c)) {
        const SolutionCandidate& cand = childSet.at(idx);
        if (!options_.enableParallelSetMapping && cand.kind != SolutionKind::Sequential)
          continue;
        IlpCandidate entry;
        entry.timeSeconds = ratio * cand.timeSeconds;
        entry.extraProcs = cand.extraProcs;
        entry.ref = SolutionRef{childId, idx};
        ic.byClass[static_cast<std::size_t>(c)].push_back(std::move(entry));
      }
      HETPAR_CHECK_MSG(!ic.byClass[static_cast<std::size_t>(c)].empty(),
                       "parallel set lost its per-class sequential candidate");
    }
    region.children.push_back(std::move(ic));
  }

  // Edges: per-iteration synchronization for loop regions, one-shot flows
  // elsewhere.
  const double commScale =
      node.kind == htg::NodeKind::Loop ? std::max(1.0, node.iterationsPerExec) : 1.0;
  const int N = static_cast<int>(node.children.size());
  for (const htg::Edge& e : node.edges) {
    IlpEdgeSpec spec;
    spec.orderingOnly = e.kind != ir::DepKind::Flow;
    spec.commSeconds =
        spec.orderingOnly ? 0.0 : commScale * timing_.commSeconds(e.bytes);
    if (e.from == node.commIn) spec.from = -1;
    else spec.from = childIndex.at(e.from);
    if (e.to == node.commOut) spec.to = N;
    else spec.to = childIndex.at(e.to);
    region.edges.push_back(spec);
  }
  return region;
}

ChunkRegion Parallelizer::buildChunkRegion(NodeId id, const std::vector<ParallelSet>& sets,
                                           ClassId seqPC, int maxProcs) const {
  const Node& node = graph_.node(id);
  const platform::Platform& pf = timing_.platform();
  const int C = pf.numClasses();
  HETPAR_CHECK(node.kind == htg::NodeKind::Loop && node.doall);

  const double iterations = std::max(1.0, node.iterationsPerExec);

  ChunkRegion region;
  region.name = strings::format("n%d_chunk_pc%d_b%d", id, seqPC, maxProcs);
  region.iterations = static_cast<long long>(std::llround(iterations));
  region.seqPC = seqPC;
  region.maxProcs = maxProcs;
  region.maxTasks = std::min(options_.maxTasksPerRegion, maxProcs);
  region.taskCreationSeconds = timing_.taskCreationSeconds();
  for (ClassId c = 0; c < C; ++c)
    region.numProcsPerClass.push_back(pf.classAt(c).count);

  // Per-iteration sequential body time per class: loop-control header plus
  // the children's sequential candidates, normalized to one iteration.
  for (ClassId c = 0; c < C; ++c) {
    double bodySeconds = timing_.seconds(c, node.mixPerExec);  // header, per node exec
    for (NodeId childId : node.children) {
      const Node& child = graph_.node(childId);
      const double ratio = node.execCount > 0 ? child.execCount / node.execCount : 0.0;
      const ParallelSet& childSet = sets[static_cast<std::size_t>(childId)];
      const int seq = childSet.sequentialFor(c);
      HETPAR_CHECK(seq >= 0);
      bodySeconds += ratio * childSet.at(seq).timeSeconds;
    }
    region.secondsPerIter.push_back(bodySeconds / iterations);
  }

  // Boundary payloads: inbound/outbound bytes through the comm nodes,
  // proportional to the iteration share; reductions add one scalar merge.
  long long inBytes = 0;
  long long outBytes = 0;
  for (const htg::Edge& e : node.edges) {
    if (e.from == node.commIn && e.kind == ir::DepKind::Flow) inBytes += e.bytes;
    if (e.to == node.commOut && e.kind == ir::DepKind::Flow) outBytes += e.bytes;
  }
  outBytes += 8 * static_cast<long long>(node.reductionVars.size());
  const platform::Interconnect& bus = pf.interconnect();
  if (inBytes > 0) {
    region.commInLatency = bus.latencySeconds;
    region.commInSecondsPerIter =
        static_cast<double>(inBytes) / iterations / bus.bytesPerSecond;
  }
  if (outBytes > 0) {
    region.commOutLatency = bus.latencySeconds;
    region.commOutSecondsPerIter =
        static_cast<double>(outBytes) / iterations / bus.bytesPerSecond;
  }
  return region;
}

SolutionCandidate Parallelizer::decodeTaskParallel(const Node& node, const IlpRegion& region,
                                                   const IlpParResult& r) const {
  (void)node;
  const int C = timing_.platform().numClasses();
  SolutionCandidate cand;
  cand.kind = SolutionKind::TaskParallel;
  cand.mainClass = region.seqPC;
  cand.timeSeconds = r.timeSeconds;
  cand.taskClass = r.taskClass;
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  for (std::size_t t = 1; t < r.taskClass.size(); ++t)
    ++cand.extraProcs[static_cast<std::size_t>(r.taskClass[t])];

  cand.childTask = r.childTask;
  cand.childChoice.resize(region.children.size());
  // Children sharing a task run sequentially and reuse the processors their
  // nested solutions borrow, so the per-task footprint is the per-class
  // MAXIMUM over its children (Eq 14's accounting), summed over tasks.
  std::vector<std::vector<int>> perTask(r.taskClass.size(),
                                        std::vector<int>(static_cast<std::size_t>(C), 0));
  for (std::size_t n = 0; n < region.children.size(); ++n) {
    const auto [cls, s] = r.childChoice[n];
    const IlpCandidate& chosen =
        region.children[n].byClass[static_cast<std::size_t>(cls)][static_cast<std::size_t>(s)];
    cand.childChoice[n] = chosen.ref;
    const int t = r.childTask[n];
    if (t < static_cast<int>(perTask.size())) {
      for (int c = 0; c < C && c < static_cast<int>(chosen.extraProcs.size()); ++c)
        perTask[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] =
            std::max(perTask[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)],
                     chosen.extraProcs[static_cast<std::size_t>(c)]);
    }
  }
  for (const auto& taskExtra : perTask)
    for (int c = 0; c < C; ++c)
      cand.extraProcs[static_cast<std::size_t>(c)] += taskExtra[static_cast<std::size_t>(c)];
  return cand;
}

SolutionCandidate Parallelizer::decodeChunked(const Node& node, const ChunkResult& r,
                                              ClassId seqPC) const {
  (void)node;
  const int C = timing_.platform().numClasses();
  SolutionCandidate cand;
  cand.kind = SolutionKind::LoopChunked;
  cand.mainClass = seqPC;
  cand.timeSeconds = r.timeSeconds;
  cand.taskClass = r.taskClass;
  cand.extraProcs.assign(static_cast<std::size_t>(C), 0);
  for (std::size_t t = 1; t < r.taskClass.size(); ++t)
    ++cand.extraProcs[static_cast<std::size_t>(r.taskClass[t])];
  cand.chunkIterations = r.taskIterations;
  return cand;
}

}  // namespace hetpar::parallel
