#include "hetpar/parallel/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hetpar/support/error.hpp"
#include "hetpar/support/rng.hpp"

namespace hetpar::parallel {

namespace {

constexpr double kInfeasible = std::numeric_limits<double>::infinity();

struct Chromosome {
  std::vector<int> childTask;      ///< per child, monotone non-decreasing
  std::vector<ClassId> taskClass;  ///< per task; [0] = seqPC
  std::vector<int> childPick;      ///< candidate index within the task's class menu
  double fitness = kInfeasible;
};

class Ga {
 public:
  Ga(const IlpRegion& region, const GaOptions& options)
      : region_(region), options_(options), rng_(options.seed) {
    N_ = static_cast<int>(region.children.size());
    C_ = static_cast<int>(region.numProcsPerClass.size());
    // N_ + 1 slots, same as the ILP model: the pinned main task may stay
    // idle with every child on an extracted task of a faster class.
    T_ = std::max(1, std::min(region.maxTasks, N_ + 1));
  }

  IlpParResult run() {
    std::vector<Chromosome> population(static_cast<std::size_t>(options_.populationSize));
    for (auto& c : population) c = randomChromosome();
    evaluateAll(population);

    for (int gen = 0; gen < options_.generations; ++gen) {
      std::vector<Chromosome> next;
      next.reserve(population.size());
      // Elitism: carry the best chromosome over unchanged.
      next.push_back(best(population));
      while (next.size() < population.size()) {
        Chromosome child = rng_.chance(options_.crossoverRate)
                               ? crossover(tournament(population), tournament(population))
                               : tournament(population);
        mutate(child);
        repair(child);
        child.fitness = evaluateAssignment(region_, child.childTask, child.taskClass,
                                           child.childPick);
        next.push_back(std::move(child));
      }
      population = std::move(next);
    }

    const Chromosome& winner = best(population);
    IlpParResult result;
    result.provenOptimal = false;
    if (!std::isfinite(winner.fitness)) return result;
    result.feasible = true;
    result.timeSeconds = winner.fitness;
    result.childTask = winner.childTask;
    // Trim unused trailing tasks.
    int usedTasks = 1;
    for (int t : winner.childTask) usedTasks = std::max(usedTasks, t + 1);
    result.taskClass.assign(winner.taskClass.begin(), winner.taskClass.begin() + usedTasks);
    result.childChoice.resize(static_cast<std::size_t>(N_));
    for (int n = 0; n < N_; ++n) {
      const ClassId cls = result.taskClass[static_cast<std::size_t>(
          winner.childTask[static_cast<std::size_t>(n)])];
      result.childChoice[static_cast<std::size_t>(n)] = {
          cls, winner.childPick[static_cast<std::size_t>(n)]};
    }
    return result;
  }

 private:
  Chromosome randomChromosome() {
    Chromosome c;
    c.childTask.resize(static_cast<std::size_t>(N_));
    for (int n = 0; n < N_; ++n)
      c.childTask[static_cast<std::size_t>(n)] = static_cast<int>(rng_.below(static_cast<std::uint64_t>(T_)));
    c.taskClass.resize(static_cast<std::size_t>(T_));
    c.taskClass[0] = region_.seqPC;
    for (int t = 1; t < T_; ++t)
      c.taskClass[static_cast<std::size_t>(t)] =
          static_cast<ClassId>(rng_.below(static_cast<std::uint64_t>(C_)));
    c.childPick.assign(static_cast<std::size_t>(N_), 0);
    repair(c);
    // Random (valid) candidate picks.
    for (int n = 0; n < N_; ++n) {
      const ClassId cls = c.taskClass[static_cast<std::size_t>(c.childTask[static_cast<std::size_t>(n)])];
      const auto& menu = region_.children[static_cast<std::size_t>(n)]
                             .byClass[static_cast<std::size_t>(cls)];
      c.childPick[static_cast<std::size_t>(n)] =
          static_cast<int>(rng_.below(static_cast<std::uint64_t>(menu.size())));
    }
    return c;
  }

  void evaluateAll(std::vector<Chromosome>& population) {
    for (auto& c : population)
      c.fitness = evaluateAssignment(region_, c.childTask, c.taskClass, c.childPick);
  }

  const Chromosome& best(const std::vector<Chromosome>& population) {
    const Chromosome* b = &population.front();
    for (const auto& c : population)
      if (c.fitness < b->fitness) b = &c;
    return *b;
  }

  Chromosome tournament(const std::vector<Chromosome>& population) {
    const Chromosome* b = nullptr;
    for (int k = 0; k < options_.tournamentSize; ++k) {
      const Chromosome& c =
          population[rng_.below(static_cast<std::uint64_t>(population.size()))];
      if (b == nullptr || c.fitness < b->fitness) b = &c;
    }
    return *b;
  }

  Chromosome crossover(Chromosome a, const Chromosome& b) {
    const std::size_t cut = rng_.below(static_cast<std::uint64_t>(N_ + 1));
    for (std::size_t n = cut; n < static_cast<std::size_t>(N_); ++n) {
      a.childTask[n] = b.childTask[n];
      a.childPick[n] = b.childPick[n];
    }
    for (int t = 1; t < T_; ++t)
      if (rng_.chance(0.5)) a.taskClass[static_cast<std::size_t>(t)] = b.taskClass[static_cast<std::size_t>(t)];
    return a;
  }

  void mutate(Chromosome& c) {
    for (int n = 0; n < N_; ++n)
      if (rng_.chance(options_.mutationRate))
        c.childTask[static_cast<std::size_t>(n)] =
            static_cast<int>(rng_.below(static_cast<std::uint64_t>(T_)));
    for (int t = 1; t < T_; ++t)
      if (rng_.chance(options_.mutationRate))
        c.taskClass[static_cast<std::size_t>(t)] =
            static_cast<ClassId>(rng_.below(static_cast<std::uint64_t>(C_)));
    for (int n = 0; n < N_; ++n)
      if (rng_.chance(options_.mutationRate / 2)) c.childPick[static_cast<std::size_t>(n)] = -1;
  }

  /// Restores the chromosome's invariants: monotone task ids (Eq 10's
  /// cycle-freedom, enforced structurally here), task 0 on seqPC, and picks
  /// within the hosting class's menu.
  void repair(Chromosome& c) {
    int prev = 0;
    for (int n = 0; n < N_; ++n) {
      auto& t = c.childTask[static_cast<std::size_t>(n)];
      t = std::clamp(t, prev, T_ - 1);
      prev = t;
    }
    c.taskClass[0] = region_.seqPC;
    for (int n = 0; n < N_; ++n) {
      const ClassId cls = c.taskClass[static_cast<std::size_t>(c.childTask[static_cast<std::size_t>(n)])];
      const auto& menu = region_.children[static_cast<std::size_t>(n)]
                             .byClass[static_cast<std::size_t>(cls)];
      auto& pick = c.childPick[static_cast<std::size_t>(n)];
      if (pick < 0 || pick >= static_cast<int>(menu.size()))
        pick = static_cast<int>(rng_.below(static_cast<std::uint64_t>(menu.size())));
    }
  }

  const IlpRegion& region_;
  GaOptions options_;
  Rng rng_;
  int N_ = 0;
  int C_ = 0;
  int T_ = 0;
};

}  // namespace

double evaluateAssignment(const IlpRegion& region, const std::vector<int>& childTask,
                          const std::vector<ClassId>& taskClass,
                          const std::vector<int>& childPick) {
  const int N = static_cast<int>(region.children.size());
  const int C = static_cast<int>(region.numProcsPerClass.size());
  HETPAR_CHECK(static_cast<int>(childTask.size()) == N);
  HETPAR_CHECK(static_cast<int>(childPick.size()) == N);
  if (taskClass.empty() || taskClass[0] != region.seqPC) return kInfeasible;

  int T = 1;
  for (int t : childTask) {
    if (t < 0 || t >= static_cast<int>(taskClass.size())) return kInfeasible;
    T = std::max(T, t + 1);
  }

  // Monotone task ids (cycle freedom, Eq 10).
  for (int n = 0; n + 1 < N; ++n)
    if (childTask[static_cast<std::size_t>(n + 1)] < childTask[static_cast<std::size_t>(n)])
      return kInfeasible;

  // Gather the chosen candidates; class consistency (Eq 17-18) is enforced
  // by indexing the menus through the hosting task's class.
  std::vector<const IlpCandidate*> chosen(static_cast<std::size_t>(N), nullptr);
  for (int n = 0; n < N; ++n) {
    const ClassId cls = taskClass[static_cast<std::size_t>(childTask[static_cast<std::size_t>(n)])];
    if (cls < 0 || cls >= C) return kInfeasible;
    const auto& menu =
        region.children[static_cast<std::size_t>(n)].byClass[static_cast<std::size_t>(cls)];
    const int pick = childPick[static_cast<std::size_t>(n)];
    if (pick < 0 || pick >= static_cast<int>(menu.size())) return kInfeasible;
    chosen[static_cast<std::size_t>(n)] = &menu[static_cast<std::size_t>(pick)];
  }

  // Processor budgets (Eq 14-16): per-task nested footprint is the per-class
  // maximum over its children; each used task beyond the main consumes one
  // unit of its own class.
  std::vector<int> allocated(static_cast<std::size_t>(C), 0);
  allocated[static_cast<std::size_t>(region.seqPC)] += 1;
  std::vector<bool> taskUsed(static_cast<std::size_t>(T), false);
  taskUsed[0] = true;
  for (int n = 0; n < N; ++n) taskUsed[static_cast<std::size_t>(childTask[static_cast<std::size_t>(n)])] = true;
  int totalProcs = 0;
  for (int t = 1; t < T; ++t)
    if (taskUsed[static_cast<std::size_t>(t)])
      allocated[static_cast<std::size_t>(taskClass[static_cast<std::size_t>(t)])] += 1;
  std::vector<std::vector<int>> nested(static_cast<std::size_t>(T),
                                       std::vector<int>(static_cast<std::size_t>(C), 0));
  for (int n = 0; n < N; ++n) {
    const int t = childTask[static_cast<std::size_t>(n)];
    for (int c = 0; c < C && c < static_cast<int>(chosen[static_cast<std::size_t>(n)]->extraProcs.size()); ++c)
      nested[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)] =
          std::max(nested[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)],
                   chosen[static_cast<std::size_t>(n)]->extraProcs[static_cast<std::size_t>(c)]);
  }
  for (int t = 0; t < T; ++t)
    for (int c = 0; c < C; ++c)
      allocated[static_cast<std::size_t>(c)] += nested[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
  for (int c = 0; c < C; ++c) {
    totalProcs += allocated[static_cast<std::size_t>(c)];
    if (allocated[static_cast<std::size_t>(c)] > region.numProcsPerClass[static_cast<std::size_t>(c)])
      return kInfeasible;
  }
  if (totalProcs > region.maxProcs) return kInfeasible;

  // Cost model mirroring the ILP: per-task execution cost (Eq 8) plus
  // communication charges, accumulated along predecessor paths (Eq 9).
  std::vector<double> cost(static_cast<std::size_t>(T), 0.0);
  for (int t = 1; t < T; ++t)
    if (taskUsed[static_cast<std::size_t>(t)]) cost[static_cast<std::size_t>(t)] += region.taskCreationSeconds;
  for (int n = 0; n < N; ++n)
    cost[static_cast<std::size_t>(childTask[static_cast<std::size_t>(n)])] +=
        chosen[static_cast<std::size_t>(n)]->timeSeconds;

  std::vector<std::vector<bool>> pred(static_cast<std::size_t>(T),
                                      std::vector<bool>(static_cast<std::size_t>(T), false));
  for (const IlpEdgeSpec& e : region.edges) {
    if (e.from >= 0 && e.to < N) {
      const int tf = childTask[static_cast<std::size_t>(e.from)];
      const int tt = childTask[static_cast<std::size_t>(e.to)];
      if (tf != tt) {
        pred[static_cast<std::size_t>(tf)][static_cast<std::size_t>(tt)] = true;
        if (!e.orderingOnly) cost[static_cast<std::size_t>(tt)] += e.commSeconds;
      }
    } else if (e.from < 0 && e.to < N) {
      const int tt = childTask[static_cast<std::size_t>(e.to)];
      if (tt != 0 && !e.orderingOnly) cost[static_cast<std::size_t>(tt)] += e.commSeconds;
    } else if (e.from >= 0 && e.to >= N) {
      const int tf = childTask[static_cast<std::size_t>(e.from)];
      if (tf != 0 && !e.orderingOnly) cost[static_cast<std::size_t>(tf)] += e.commSeconds;
    }
  }

  // Longest path over the (forward-only) task DAG.
  std::vector<double> accum(static_cast<std::size_t>(T), 0.0);
  double makespan = 0.0;
  for (int t = 0; t < T; ++t) {
    double best = 0.0;
    for (int u = 0; u < t; ++u)
      if (pred[static_cast<std::size_t>(u)][static_cast<std::size_t>(t)])
        best = std::max(best, accum[static_cast<std::size_t>(u)]);
    accum[static_cast<std::size_t>(t)] = best + cost[static_cast<std::size_t>(t)];
    makespan = std::max(makespan, accum[static_cast<std::size_t>(t)]);
  }
  return makespan;
}

IlpParResult solveGaPar(const IlpRegion& region, const GaOptions& options) {
  require<SolverError>(!region.children.empty(), "GA needs at least one child");
  return Ga(region, options).run();
}

}  // namespace hetpar::parallel
