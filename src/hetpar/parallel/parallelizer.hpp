// The global parallelization algorithm (paper Algorithm 1).
//
// Walks the HTG bottom-up. Every hierarchical node is parallelized in
// isolation: for each processor class `seqPC` and a shrinking processor
// budget `i`, an ILPPAR instance extracts one parallel solution candidate;
// candidates found deeper in the hierarchy are offered to the parent's ILP
// through the parallel sets (Eq 3-4), so new tasks combine with nested
// parallelism whenever that pays off. DOALL loops additionally offer
// iteration-chunked candidates (the HTG's "loop iteration" granularity
// level), which is where heterogeneity-aware balancing shines: the ILP
// hands fast classes proportionally more iterations.
//
// The solve engine exploits the algorithm's own structure for tool-side
// parallelism (see DESIGN.md "Concurrency model"): sibling subtrees are
// independent, so nodes are scheduled as a bottom-up wavefront, and within a
// node the per-(mode, seqPC) sweep lanes are independent given the phase's
// starting bound, so they fan out across a thread pool. Results are merged
// in the canonical (mode, seqPC, budget) order regardless of completion
// order, which makes every jobs count produce the identical outcome.
#pragma once

#include <memory>
#include <vector>

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/parallel/solution.hpp"
#include "hetpar/parallel/stats.hpp"

namespace hetpar::parallel {

class IlpRegionCache;

struct ParallelizerOptions {
  /// Cap on tasks a single ILPPAR call may open (also bounded by the
  /// processor budget and the child count).
  int maxTasksPerRegion = 4;
  /// Iteration-chunk resolution for DOALL loops. Higher values let the ILP
  /// balance finer against class speed ratios at the price of bigger models.
  int chunkCount = 16;
  /// Regions whose sequential time on the fastest class is below this many
  /// task-creation overheads are not worth an ILP (automatic granularity
  /// control, paper contribution 2).
  double minRegionTcoMultiple = 4.0;
  /// Per-ILP solver limits.
  double ilpTimeLimitSeconds = 20.0;
  long long ilpMaxNodes = 400'000;
  /// LP engine underneath branch and bound (Revised = sparse LU production
  /// engine; Dense = the seed's explicit inverse, kept as an oracle).
  ilp::SolverEngine solverEngine = ilp::SolverEngine::Revised;
  /// Enables the LoopChunked mode (ablation hook).
  bool enableChunking = true;
  /// Enables combining nested candidates (ablation hook: when false, only
  /// sequential child candidates are offered, i.e. no Parallel Set Mapping).
  bool enableParallelSetMapping = true;
  /// Menu cap per (node, class): sequential + the fastest others. Keeps the
  /// parent ILPs' p-dimension small.
  int maxCandidatesPerClass = 3;
  /// Solver worker threads. 1 runs fully sequentially (no pool); values < 1
  /// resolve to the hardware concurrency. Any value yields the identical
  /// outcome — only wall-clock time changes.
  int jobs = 1;
  /// Memoizes ILP solves across structurally identical regions.
  bool enableRegionCache = true;
  /// Optional externally owned cache, shared across Parallelizer runs (e.g.
  /// the same program planned against several platform views). When null and
  /// `enableRegionCache` is set, each run uses a private cache.
  std::shared_ptr<IlpRegionCache> regionCache;
  /// Dependence mode the HTG was built with. Folded into region-cache keys
  /// so graphs from different modes never share memoized ILP solutions.
  ir::DependenceMode dependenceMode = ir::DependenceMode::Conservative;
  /// Flow mode the HTG was built with; folded into region-cache keys for the
  /// same reason (Live prunes comm payloads, changing region economics).
  ir::FlowMode flowMode = ir::FlowMode::Conservative;
};

struct ParallelizeOutcome {
  SolutionTable table;  ///< parallel set per hierarchical/leaf node
  IlpStatistics stats;

  /// Best candidate for executing the whole program with the main task on
  /// `mainClass` (what IMPLEMENTBESTSOLUTION consumes).
  SolutionRef bestRoot(const htg::Graph& g, ClassId mainClass) const;
};

/// The always-feasible all-in-main assignment for a task region: one task
/// (the main one), every child on it with the greedily chosen nested
/// candidate that still fits the processor budget. Seeds the ILP's upper
/// bound and doubles as a fallback candidate when the solver hits its
/// limits first. A `timeSeconds` of 0 signals "no valid greedy candidate"
/// (some child offers no zero-extra-processor option for `region.seqPC`).
SolutionCandidate greedyAllInMain(const IlpRegion& region);

/// The bound `greedyAllInMain` achieves, with the solver's slack factor
/// applied; 0 when no greedy candidate exists.
double allInMainBound(const IlpRegion& region);

class Parallelizer {
 public:
  Parallelizer(const htg::Graph& graph, const cost::TimingModel& timing,
               ParallelizerOptions options = {});

  /// Runs Algorithm 1 over the whole graph.
  ParallelizeOutcome run();

 private:
  /// One (mode, seqPC) slice of a node's sweep: the budget loop's appended
  /// candidates in production order, plus the solve statistics it incurred.
  struct LaneOutput {
    std::vector<SolutionCandidate> adds;
    IlpStatistics stats;
  };
  struct RunState;

  /// Post-order over the subtree reachable from the root (explicit stack;
  /// depth-proof) and, via `parent`, the traversal tree.
  std::vector<htg::NodeId> postOrder(std::vector<htg::NodeId>& parent) const;

  /// Modes worth sweeping for `id` ({} when the region is below the
  /// granularity threshold or not hierarchical).
  std::vector<SolutionKind> enabledModes(htg::NodeId id,
                                         const std::vector<ParallelSet>& sets) const;

  /// Runs one sweep lane. `bestStartSeconds` is the fastest known time for
  /// `seqPC` when the lane's phase began; the lane tightens it with its own
  /// candidates only (no other lane adds candidates tagged `seqPC`).
  LaneOutput runLane(htg::NodeId id, SolutionKind kind, ClassId seqPC,
                     double bestStartSeconds, const std::vector<ParallelSet>& sets,
                     IlpRegionCache* cache) const;

  void runSequential(const std::vector<htg::NodeId>& order, std::vector<ParallelSet>& sets,
                     std::vector<IlpStatistics>& nodeStats, IlpRegionCache* cache) const;
  void runConcurrent(int jobs, const std::vector<htg::NodeId>& order,
                     const std::vector<htg::NodeId>& parent, std::vector<ParallelSet>& sets,
                     std::vector<IlpStatistics>& nodeStats, IlpRegionCache* cache) const;
  void processNode(RunState& rs, htg::NodeId id) const;
  void startPhase(RunState& rs, htg::NodeId id) const;
  void completePhase(RunState& rs, htg::NodeId id) const;
  void finalizeNode(RunState& rs, htg::NodeId id) const;

  void addSequentialCandidates(htg::NodeId id, const std::vector<ParallelSet>& sets,
                               ParallelSet& set) const;
  double sequentialSeconds(htg::NodeId id, ClassId c,
                           const std::vector<ParallelSet>& sets) const;

  IlpRegion buildTaskRegion(htg::NodeId id, const std::vector<ParallelSet>& sets, ClassId seqPC,
                            int maxProcs) const;
  ChunkRegion buildChunkRegion(htg::NodeId id, const std::vector<ParallelSet>& sets,
                               ClassId seqPC, int maxProcs) const;
  SolutionCandidate decodeTaskParallel(const htg::Node& node, const IlpRegion& region,
                                       const IlpParResult& r) const;
  SolutionCandidate decodeChunked(const htg::Node& node, const ChunkResult& r,
                                  ClassId seqPC) const;

  const htg::Graph& graph_;
  const cost::TimingModel& timing_;
  ParallelizerOptions options_;
};

}  // namespace hetpar::parallel
