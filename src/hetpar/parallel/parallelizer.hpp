// The global parallelization algorithm (paper Algorithm 1).
//
// Walks the HTG bottom-up. Every hierarchical node is parallelized in
// isolation: for each processor class `seqPC` and a shrinking processor
// budget `i`, an ILPPAR instance extracts one parallel solution candidate;
// candidates found deeper in the hierarchy are offered to the parent's ILP
// through the parallel sets (Eq 3-4), so new tasks combine with nested
// parallelism whenever that pays off. DOALL loops additionally offer
// iteration-chunked candidates (the HTG's "loop iteration" granularity
// level), which is where heterogeneity-aware balancing shines: the ILP
// hands fast classes proportionally more iterations.
#pragma once

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/parallel/solution.hpp"
#include "hetpar/parallel/stats.hpp"

namespace hetpar::parallel {

struct ParallelizerOptions {
  /// Cap on tasks a single ILPPAR call may open (also bounded by the
  /// processor budget and the child count).
  int maxTasksPerRegion = 4;
  /// Iteration-chunk resolution for DOALL loops. Higher values let the ILP
  /// balance finer against class speed ratios at the price of bigger models.
  int chunkCount = 16;
  /// Regions whose sequential time on the fastest class is below this many
  /// task-creation overheads are not worth an ILP (automatic granularity
  /// control, paper contribution 2).
  double minRegionTcoMultiple = 4.0;
  /// Per-ILP solver limits.
  double ilpTimeLimitSeconds = 20.0;
  long long ilpMaxNodes = 400'000;
  /// Enables the LoopChunked mode (ablation hook).
  bool enableChunking = true;
  /// Enables combining nested candidates (ablation hook: when false, only
  /// sequential child candidates are offered, i.e. no Parallel Set Mapping).
  bool enableParallelSetMapping = true;
  /// Menu cap per (node, class): sequential + the fastest others. Keeps the
  /// parent ILPs' p-dimension small.
  int maxCandidatesPerClass = 3;
};

struct ParallelizeOutcome {
  SolutionTable table;  ///< parallel set per hierarchical/leaf node
  IlpStatistics stats;

  /// Best candidate for executing the whole program with the main task on
  /// `mainClass` (what IMPLEMENTBESTSOLUTION consumes).
  SolutionRef bestRoot(const htg::Graph& g, ClassId mainClass) const;
};

class Parallelizer {
 public:
  Parallelizer(const htg::Graph& graph, const cost::TimingModel& timing,
               ParallelizerOptions options = {});

  /// Runs Algorithm 1 over the whole graph.
  ParallelizeOutcome run();

 private:
  void parallelizeNode(htg::NodeId id, ParallelizeOutcome& out);
  void addSequentialCandidates(htg::NodeId id, const SolutionTable& table, ParallelSet& set);
  double sequentialSeconds(htg::NodeId id, ClassId c, const SolutionTable& table) const;

  IlpRegion buildTaskRegion(htg::NodeId id, const SolutionTable& table, ClassId seqPC,
                            int maxProcs) const;
  /// Achievable upper bound: all children on the main task, greedily using
  /// their fastest seqPC-class candidates within the processor budget.
  double allInMainBound(const IlpRegion& region) const;
  /// The assignment realizing that bound, as a full candidate (fallback when
  /// the ILP exhausts its limits before matching it).
  SolutionCandidate greedyAllInMain(const IlpRegion& region) const;
  ChunkRegion buildChunkRegion(htg::NodeId id, const SolutionTable& table, ClassId seqPC,
                               int maxProcs) const;
  SolutionCandidate decodeTaskParallel(const htg::Node& node, const IlpRegion& region,
                                       const IlpParResult& r) const;
  SolutionCandidate decodeChunked(const htg::Node& node, const ChunkResult& r,
                                  ClassId seqPC) const;

  const htg::Graph& graph_;
  const cost::TimingModel& timing_;
  ParallelizerOptions options_;
};

}  // namespace hetpar::parallel
