// Genetic-algorithm partitioner (paper reference [7], the authors' earlier
// DATE 2012 technique; Section II/IV contrast it with the ILP approach:
// "ILP solvers guarantee to find the optimal solution if one exists ...
// This is not the case for other optimization techniques like, e.g.,
// Genetic Algorithms which just iterate until a given stopping criterion
// is met").
//
// solveGaPar optimizes the *same* IlpRegion problem the ILPPAR model solves
// (same candidate menus, edges, cost semantics) so the two optimizers are
// directly comparable; bench/ablation_optimizer pits them against each
// other on solution quality and runtime.
#pragma once

#include <cstdint>

#include "hetpar/parallel/ilppar_model.hpp"

namespace hetpar::parallel {

struct GaOptions {
  int populationSize = 64;
  int generations = 120;
  double crossoverRate = 0.8;
  double mutationRate = 0.15;
  int tournamentSize = 3;
  std::uint64_t seed = 0x5eed;
};

/// Runs the GA; the result mirrors solveIlpPar's (provenOptimal is always
/// false — a GA cannot certify optimality). Infeasible chromosomes are
/// repaired (monotone task ids) or penalized (processor budgets), matching
/// the usual GA treatment in [7].
IlpParResult solveGaPar(const IlpRegion& region, const GaOptions& options = {});

/// Evaluates one explicit assignment with the shared cost model; exposed so
/// tests can cross-validate GA fitness against ILP objective values.
/// `childTask` maps children to tasks (task ids in [0, maxTasks)), and
/// `taskClass` maps tasks to classes (task 0 must be region.seqPC).
/// Returns +inf for budget-infeasible assignments.
double evaluateAssignment(const IlpRegion& region, const std::vector<int>& childTask,
                          const std::vector<ClassId>& taskClass,
                          const std::vector<int>& childPick);

}  // namespace hetpar::parallel
