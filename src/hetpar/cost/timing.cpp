#include "hetpar/cost/timing.hpp"

// TimingModel is header-only today; this translation unit anchors the
// library target and hosts future model variants (e.g. per-class CPI tables
// for cross-ISA platforms).
