// Tree-walking interpreter and profiler for mini-C.
//
// Executes a program starting at main(), with C semantics for the supported
// subset (arrays passed by reference, scalars by value, integer division,
// short-circuit logic). While executing it counts abstract operations per
// statement (see OpCosts) to produce the ProgramProfile that drives the
// high-level timing model.
#pragma once

#include <functional>

#include "hetpar/cost/profile.hpp"
#include "hetpar/frontend/ast.hpp"
#include "hetpar/frontend/sema.hpp"

namespace hetpar::cost {

/// Abstract operation costs (in "ops", i.e. cycles on a 1.0-CPI core).
/// Chosen to reflect typical embedded RISC latencies; the evaluation's
/// heterogeneity comes from per-class frequency, not from this table.
struct OpCosts {
  double intArith = 1.0;
  double intMul = 3.0;
  double intDiv = 10.0;
  double floatArith = 2.0;
  double floatMul = 4.0;
  double floatDiv = 15.0;
  double compare = 1.0;
  double logic = 1.0;
  double load = 2.0;
  double store = 2.0;
  double indexExtra = 1.0;  ///< address computation per subscript
  double builtinMath = 40.0;
  double callOverhead = 15.0;
  double branch = 1.0;
};

struct InterpLimits {
  long long maxSteps = 200'000'000;  ///< abstract op budget before aborting
};

/// Optional hooks observing the interpreter's array element traffic; used by
/// dynamic ground-truth analyses (e.g. the verify harness's section-soundness
/// relation). `storage` identifies the array object and is stable across
/// aliasing through array parameters.
struct AccessObserver {
  /// Every global array, reported once before main() starts.
  std::function<void(const std::string& name, const void* storage)> onGlobalArray;
  /// Every element read/write. `attribution` is the interpreter's statement
  /// attribution stack (statement ids, outermost first) at the access.
  std::function<void(const void* storage, const std::vector<long long>& indices,
                     bool isWrite, const std::vector<int>& attribution)>
      onAccess;
};

/// Runs `program` (already analyzed by sema) and returns its profile.
/// Throws hetpar::Error if the program exceeds the step budget, divides by
/// zero, or indexes out of bounds.
ProgramProfile interpret(const frontend::Program& program, const frontend::SemaResult& sema,
                         const OpCosts& costs = {}, const InterpLimits& limits = {},
                         const AccessObserver* observer = nullptr);

}  // namespace hetpar::cost
