// Profile data produced by interpreting a mini-C program.
//
// The paper extracts per-statement execution costs "by target platform
// simulation ... once per processor class". Our equivalent: the interpreter
// executes the program once, counting abstract operations ("ops") per
// statement; the per-class cost of a statement is then ops scaled by the
// class's op throughput (hetpar/cost/timing.hpp). Ops are attributed
// *inclusively* through call chains: a statement containing a call carries
// the callee's work, which is exactly what a task executing that statement
// would have to do.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hetpar::cost {

/// Operation categories. Same-ISA heterogeneity only scales the total with
/// frequency, but cross-ISA platforms (paper Section VI: the approach
/// "would also perform well for different instruction sets ... since it
/// uses different execution costs for each statement") weight categories
/// differently per class (platform::ProcessorClass::kindFactor).
enum class OpKind : int { IntAlu = 0, FloatAlu = 1, Memory = 2, Control = 3 };
constexpr int kNumOpKinds = 4;

/// Abstract operations broken down by category; the scalar "ops" used all
/// over hetpar is the total of this vector.
struct OpMix {
  double kind[kNumOpKinds] = {0.0, 0.0, 0.0, 0.0};

  double total() const {
    double t = 0.0;
    for (double k : kind) t += k;
    return t;
  }
  double& of(OpKind k) { return kind[static_cast<int>(k)]; }
  double of(OpKind k) const { return kind[static_cast<int>(k)]; }

  OpMix& operator+=(const OpMix& rhs) {
    for (int i = 0; i < kNumOpKinds; ++i) kind[i] += rhs.kind[i];
    return *this;
  }
  OpMix operator*(double f) const {
    OpMix out = *this;
    for (double& k : out.kind) k *= f;
    return out;
  }
  /// Per-kind max(0, a - b): used when deriving header costs from
  /// inclusive profiles.
  OpMix minusClamped(const OpMix& rhs) const {
    OpMix out;
    for (int i = 0; i < kNumOpKinds; ++i)
      out.kind[i] = kind[i] > rhs.kind[i] ? kind[i] - rhs.kind[i] : 0.0;
    return out;
  }
};

struct StmtProfile {
  long long execCount = 0;  ///< times the statement was executed/entered
  double ops = 0.0;         ///< total abstract operations, inclusive of calls
  OpMix mix;                ///< the same operations, by category

  double opsPerExec() const { return execCount > 0 ? ops / double(execCount) : 0.0; }
  OpMix mixPerExec() const {
    return execCount > 0 ? mix * (1.0 / double(execCount)) : OpMix{};
  }
};

struct ProgramProfile {
  /// Indexed by statement id (sema-assigned).
  std::vector<StmtProfile> stmts;
  /// (caller statement id, callee name) -> number of calls from that site.
  std::map<std::pair<int, std::string>, long long> callSiteCalls;
  /// callee name -> total invocations.
  std::map<std::string, long long> functionCalls;
  /// Value returned by main().
  long long exitValue = 0;
  /// Total abstract operations executed by the program (exclusive count;
  /// call attribution does not double count here).
  double totalOps = 0.0;

  const StmtProfile& of(int stmtId) const { return stmts.at(static_cast<std::size_t>(stmtId)); }

  /// Fraction of all calls to `callee` made from `callerStmtId` (1.0 when
  /// the function has a single call site). Used to split profile counts
  /// across call-site HTG subtrees.
  double callShare(int callerStmtId, const std::string& callee) const;
};

}  // namespace hetpar::cost
