#include "hetpar/cost/interp.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <variant>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::cost {

namespace {

using namespace frontend;

/// Scalar runtime value. Integers and floats are kept separate to preserve
/// C's integer division / modulo semantics.
struct Value {
  bool isFloat = false;
  long long i = 0;
  double f = 0.0;

  static Value ofInt(long long v) { return {false, v, 0.0}; }
  static Value ofFloat(double v) { return {true, 0, v}; }
  double asDouble() const { return isFloat ? f : double(i); }
  long long asInt() const { return isFloat ? (long long)f : i; }
  bool truthy() const { return isFloat ? f != 0.0 : i != 0; }
};

/// Array object; shared between caller and callee frames (C decay-to-pointer
/// semantics).
struct ArrayObj {
  ScalarType elem = ScalarType::Int;
  std::vector<long long> idata;
  std::vector<double> fdata;
  std::vector<int> dims;

  explicit ArrayObj(const Type& t) : elem(t.scalar), dims(t.dims) {
    const std::size_t n = static_cast<std::size_t>(t.elementCount());
    if (elem == ScalarType::Int) idata.assign(n, 0);
    else fdata.assign(n, 0.0);
  }

  std::size_t flatten(const std::vector<long long>& idx) const {
    HETPAR_CHECK(idx.size() == dims.size());
    std::size_t flat = 0;
    for (std::size_t k = 0; k < dims.size(); ++k) {
      const long long i = idx[k];
      require(i >= 0 && i < dims[k],
              hetpar::strings::format("array index %lld out of bounds [0,%d)", i, dims[k]));
      flat = flat * static_cast<std::size_t>(dims[k]) + static_cast<std::size_t>(i);
    }
    return flat;
  }

  Value get(const std::vector<long long>& idx) const {
    const std::size_t k = flatten(idx);
    return elem == ScalarType::Int ? Value::ofInt(idata[k]) : Value::ofFloat(fdata[k]);
  }

  void set(const std::vector<long long>& idx, const Value& v) {
    const std::size_t k = flatten(idx);
    if (elem == ScalarType::Int) idata[k] = v.asInt();
    else fdata[k] = v.asDouble();
  }
};

using Slot = std::variant<Value, std::shared_ptr<ArrayObj>>;
using Frame = std::map<std::string, Slot>;

struct ExecResult {
  bool returned = false;
  Value value;
};

class Interp {
 public:
  Interp(const Program& program, const frontend::SemaResult& sema, const OpCosts& costs,
         const InterpLimits& limits, const AccessObserver* observer)
      : program_(program), costs_(costs), limits_(limits), observer_(observer) {
    profile_.stmts.resize(static_cast<std::size_t>(sema.numStatements));
  }

  ProgramProfile run() {
    // Globals live in their own frame at the bottom of the lookup chain.
    for (const auto& g : program_.globals) {
      countEnter(*g);
      execDecl(static_cast<const DeclStmt&>(*g), globals_, nullptr);
    }
    if (observer_ != nullptr && observer_->onGlobalArray) {
      for (const auto& [name, slot] : globals_)
        if (auto* arr = std::get_if<std::shared_ptr<ArrayObj>>(&slot))
          observer_->onGlobalArray(name, arr->get());
    }
    Function& main = program_.entry();
    require(main.params.empty(), "main() must not take parameters");
    Frame frame;
    ExecResult r = execBody(main.body, frame);
    profile_.exitValue = r.returned ? r.value.asInt() : 0;
    profile_.totalOps = totalOps_;
    return std::move(profile_);
  }

 private:
  // --- op accounting ---------------------------------------------------------
  void charge(double ops, OpKind kind = OpKind::IntAlu) {
    totalOps_ += ops;
    require(totalOps_ <= double(limits_.maxSteps), "interpreter exceeded its step budget");
    for (int id : attribution_) {
      StmtProfile& sp = profile_.stmts[static_cast<std::size_t>(id)];
      sp.ops += ops;
      sp.mix.of(kind) += ops;
    }
  }

  void countEnter(const Stmt& s) {
    ++profile_.stmts[static_cast<std::size_t>(s.id)].execCount;
  }

  /// RAII: ops charged while alive are attributed to `stmt` (plus any outer
  /// attribution targets along the call chain).
  class Attribute {
   public:
    Attribute(Interp& in, const Stmt& stmt) : in_(in) {
      in_.attribution_.push_back(stmt.id);
    }
    Attribute(const Attribute&) = delete;
    Attribute& operator=(const Attribute&) = delete;
    ~Attribute() { in_.attribution_.pop_back(); }

   private:
    Interp& in_;
  };

  // --- variable access ----------------------------------------------------------
  Slot* find(Frame& frame, const std::string& name) {
    auto it = frame.find(name);
    if (it != frame.end()) return &it->second;
    auto git = globals_.find(name);
    if (git != globals_.end()) return &git->second;
    return nullptr;
  }

  Value loadScalar(Frame& frame, const std::string& name) {
    Slot* s = find(frame, name);
    require(s != nullptr, "runtime: unknown variable '" + name + "'");
    require(std::holds_alternative<Value>(*s), "runtime: '" + name + "' is not scalar");
    charge(costs_.load, OpKind::Memory);
    return std::get<Value>(*s);
  }

  std::shared_ptr<ArrayObj> loadArray(Frame& frame, const std::string& name) {
    Slot* s = find(frame, name);
    require(s != nullptr, "runtime: unknown variable '" + name + "'");
    require(std::holds_alternative<std::shared_ptr<ArrayObj>>(*s),
            "runtime: '" + name + "' is not an array");
    return std::get<std::shared_ptr<ArrayObj>>(*s);
  }

  // --- expressions -----------------------------------------------------------------
  Value eval(const Expr& expr, Frame& frame) {
    switch (expr.kind) {
      case ExprKind::IntLit:
        return Value::ofInt(static_cast<const IntLit&>(expr).value);
      case ExprKind::FloatLit:
        return Value::ofFloat(static_cast<const FloatLit&>(expr).value);
      case ExprKind::VarRef:
        return loadScalar(frame, static_cast<const VarRef&>(expr).name);
      case ExprKind::Index: {
        const auto& e = static_cast<const IndexExpr&>(expr);
        auto arr = loadArray(frame, e.name);
        std::vector<long long> idx;
        for (const auto& i : e.indices) {
          idx.push_back(eval(*i, frame).asInt());
          charge(costs_.indexExtra, OpKind::Memory);
        }
        charge(costs_.load, OpKind::Memory);
        if (observer_ != nullptr && observer_->onAccess)
          observer_->onAccess(arr.get(), idx, false, attribution_);
        return arr->get(idx);
      }
      case ExprKind::Unary: {
        const auto& e = static_cast<const UnaryExpr&>(expr);
        const Value v = eval(*e.operand, frame);
        if (e.op == UnaryOp::Neg) {
          charge(v.isFloat ? costs_.floatArith : costs_.intArith,
               v.isFloat ? OpKind::FloatAlu : OpKind::IntAlu);
          return v.isFloat ? Value::ofFloat(-v.f) : Value::ofInt(-v.i);
        }
        charge(costs_.logic, OpKind::IntAlu);
        return Value::ofInt(v.truthy() ? 0 : 1);
      }
      case ExprKind::Binary:
        return evalBinary(static_cast<const BinaryExpr&>(expr), frame);
      case ExprKind::Call:
        return evalCall(static_cast<const CallExpr&>(expr), frame);
    }
    throw InternalError("interp: unknown expression kind");
  }

  Value evalBinary(const BinaryExpr& e, Frame& frame) {
    // Short-circuit logic first.
    if (e.op == BinaryOp::And || e.op == BinaryOp::Or) {
      const Value l = eval(*e.lhs, frame);
      charge(costs_.logic, OpKind::IntAlu);
      if (e.op == BinaryOp::And && !l.truthy()) return Value::ofInt(0);
      if (e.op == BinaryOp::Or && l.truthy()) return Value::ofInt(1);
      const Value r = eval(*e.rhs, frame);
      return Value::ofInt(r.truthy() ? 1 : 0);
    }
    const Value l = eval(*e.lhs, frame);
    const Value r = eval(*e.rhs, frame);
    const bool fl = l.isFloat || r.isFloat;
    switch (e.op) {
      case BinaryOp::Add:
        charge(fl ? costs_.floatArith : costs_.intArith, fl ? OpKind::FloatAlu : OpKind::IntAlu);
        return fl ? Value::ofFloat(l.asDouble() + r.asDouble()) : Value::ofInt(l.i + r.i);
      case BinaryOp::Sub:
        charge(fl ? costs_.floatArith : costs_.intArith, fl ? OpKind::FloatAlu : OpKind::IntAlu);
        return fl ? Value::ofFloat(l.asDouble() - r.asDouble()) : Value::ofInt(l.i - r.i);
      case BinaryOp::Mul:
        charge(fl ? costs_.floatMul : costs_.intMul, fl ? OpKind::FloatAlu : OpKind::IntAlu);
        return fl ? Value::ofFloat(l.asDouble() * r.asDouble()) : Value::ofInt(l.i * r.i);
      case BinaryOp::Div:
        charge(fl ? costs_.floatDiv : costs_.intDiv, fl ? OpKind::FloatAlu : OpKind::IntAlu);
        if (fl) {
          require(r.asDouble() != 0.0, "runtime: division by zero");
          return Value::ofFloat(l.asDouble() / r.asDouble());
        }
        require(r.i != 0, "runtime: division by zero");
        return Value::ofInt(l.i / r.i);
      case BinaryOp::Mod:
        charge(costs_.intDiv, OpKind::IntAlu);
        require(!fl, "runtime: % requires integers");
        require(r.i != 0, "runtime: modulo by zero");
        return Value::ofInt(l.i % r.i);
      case BinaryOp::Lt:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() < r.asDouble() ? 1 : 0);
      case BinaryOp::Le:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() <= r.asDouble() ? 1 : 0);
      case BinaryOp::Gt:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() > r.asDouble() ? 1 : 0);
      case BinaryOp::Ge:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() >= r.asDouble() ? 1 : 0);
      case BinaryOp::Eq:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() == r.asDouble() ? 1 : 0);
      case BinaryOp::Ne:
        charge(costs_.compare, OpKind::IntAlu);
        return Value::ofInt(l.asDouble() != r.asDouble() ? 1 : 0);
      default:
        throw InternalError("interp: unexpected binary op");
    }
  }

  Value evalCall(const CallExpr& e, Frame& frame) {
    if (isBuiltinFunction(e.callee)) {
      const Value a = eval(*e.args[0], frame);
      charge(costs_.builtinMath, OpKind::FloatAlu);
      const double x = a.asDouble();
      if (e.callee == "sqrt") {
        require(x >= 0.0, "runtime: sqrt of negative value");
        return Value::ofFloat(std::sqrt(x));
      }
      if (e.callee == "fabs") return Value::ofFloat(std::fabs(x));
      if (e.callee == "sin") return Value::ofFloat(std::sin(x));
      if (e.callee == "cos") return Value::ofFloat(std::cos(x));
      if (e.callee == "exp") return Value::ofFloat(std::exp(x));
      if (e.callee == "log") {
        require(x > 0.0, "runtime: log of non-positive value");
        return Value::ofFloat(std::log(x));
      }
      if (e.callee == "abs") return Value::ofInt(std::llabs(a.asInt()));
      throw InternalError("interp: unknown builtin");
    }

    const Function* callee = program_.findFunction(e.callee);
    HETPAR_CHECK(callee != nullptr);
    charge(costs_.callOverhead, OpKind::Control);

    // Record the call site against the innermost attributed statement.
    if (!attribution_.empty()) {
      ++profile_.callSiteCalls[{attribution_.back(), e.callee}];
    }
    ++profile_.functionCalls[e.callee];

    Frame calleeFrame;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const Param& p = callee->params[i];
      if (p.type.isArray()) {
        const auto& ref = static_cast<const VarRef&>(*e.args[i]);
        calleeFrame.emplace(p.name, loadArray(frame, ref.name));
      } else {
        calleeFrame.emplace(p.name, eval(*e.args[i], frame));
      }
    }
    ExecResult r = execBody(callee->body, calleeFrame);
    return r.returned ? r.value : Value::ofInt(0);
  }

  // --- statements ------------------------------------------------------------------
  ExecResult execBody(const std::vector<StmtPtr>& body, Frame& frame) {
    for (const auto& s : body) {
      ExecResult r = exec(*s, frame);
      if (r.returned) return r;
    }
    return {};
  }

  void execDecl(const DeclStmt& s, Frame& frame, Frame* outer) {
    if (s.type.isArray()) {
      frame.insert_or_assign(s.name, std::make_shared<ArrayObj>(s.type));
    } else {
      Value v = s.init ? eval(*s.init, outer ? *outer : frame) : Value::ofInt(0);
      if (s.type.scalar == ScalarType::Int) v = Value::ofInt(v.asInt());
      else v = Value::ofFloat(v.asDouble());
      charge(costs_.store, OpKind::Memory);
      frame.insert_or_assign(s.name, v);
    }
  }

  ExecResult exec(const Stmt& stmt, Frame& frame) {
    switch (stmt.kind) {
      case StmtKind::Decl: {
        countEnter(stmt);
        Attribute attr(*this, stmt);
        execDecl(static_cast<const DeclStmt&>(stmt), frame, nullptr);
        return {};
      }
      case StmtKind::Assign: {
        countEnter(stmt);
        Attribute attr(*this, stmt);
        const auto& s = static_cast<const AssignStmt&>(stmt);
        if (s.indices.empty()) {
          Slot* slot = find(frame, s.target);
          require(slot != nullptr, "runtime: unknown variable '" + s.target + "'");
          Value v = eval(*s.value, frame);
          // Preserve the declared scalar kind of the target.
          if (std::holds_alternative<Value>(*slot) && !std::get<Value>(*slot).isFloat)
            v = Value::ofInt(v.asInt());
          else
            v = Value::ofFloat(v.asDouble());
          charge(costs_.store, OpKind::Memory);
          *slot = v;
        } else {
          auto arr = loadArray(frame, s.target);
          std::vector<long long> idx;
          for (const auto& i : s.indices) {
            idx.push_back(eval(*i, frame).asInt());
            charge(costs_.indexExtra, OpKind::Memory);
          }
          const Value v = eval(*s.value, frame);
          charge(costs_.store, OpKind::Memory);
          if (observer_ != nullptr && observer_->onAccess)
            observer_->onAccess(arr.get(), idx, true, attribution_);
          arr->set(idx, v);
        }
        return {};
      }
      case StmtKind::If: {
        countEnter(stmt);
        const auto& s = static_cast<const IfStmt&>(stmt);
        bool taken;
        {
          Attribute attr(*this, stmt);
          taken = eval(*s.cond, frame).truthy();
          charge(costs_.branch, OpKind::Control);
        }
        return execBody(taken ? s.thenBody : s.elseBody, frame);
      }
      case StmtKind::For: {
        countEnter(stmt);
        const auto& s = static_cast<const ForStmt&>(stmt);
        {
          Attribute attr(*this, stmt);
          if (s.init) {
            if (s.init->kind == StmtKind::Decl)
              execDecl(static_cast<const DeclStmt&>(*s.init), frame, nullptr);
            else
              exec(*s.init, frame);
          }
        }
        while (true) {
          bool cont;
          {
            Attribute attr(*this, stmt);
            cont = !s.cond || eval(*s.cond, frame).truthy();
            charge(costs_.branch, OpKind::Control);
          }
          if (!cont) break;
          ExecResult r = execBody(s.body, frame);
          if (r.returned) return r;
          if (s.step) {
            Attribute attr(*this, stmt);
            exec(*s.step, frame);
          }
        }
        return {};
      }
      case StmtKind::While: {
        countEnter(stmt);
        const auto& s = static_cast<const WhileStmt&>(stmt);
        while (true) {
          bool cont;
          {
            Attribute attr(*this, stmt);
            cont = eval(*s.cond, frame).truthy();
            charge(costs_.branch, OpKind::Control);
          }
          if (!cont) break;
          ExecResult r = execBody(s.body, frame);
          if (r.returned) return r;
        }
        return {};
      }
      case StmtKind::Return: {
        countEnter(stmt);
        Attribute attr(*this, stmt);
        const auto& s = static_cast<const ReturnStmt&>(stmt);
        ExecResult r;
        r.returned = true;
        if (s.value) r.value = eval(*s.value, frame);
        return r;
      }
      case StmtKind::Expr: {
        countEnter(stmt);
        Attribute attr(*this, stmt);
        eval(*static_cast<const ExprStmt&>(stmt).expr, frame);
        return {};
      }
      case StmtKind::Block: {
        countEnter(stmt);
        return execBody(static_cast<const BlockStmt&>(stmt).body, frame);
      }
    }
    throw InternalError("interp: unknown statement kind");
  }

  const Program& program_;
  const OpCosts& costs_;
  const InterpLimits& limits_;
  const AccessObserver* observer_;
  Frame globals_;
  std::vector<int> attribution_;
  double totalOps_ = 0.0;
  ProgramProfile profile_;
};

}  // namespace

ProgramProfile interpret(const frontend::Program& program, const frontend::SemaResult& sema,
                         const OpCosts& costs, const InterpLimits& limits,
                         const AccessObserver* observer) {
  return Interp(program, sema, costs, limits, observer).run();
}

}  // namespace hetpar::cost
