#include "hetpar/cost/profile.hpp"

namespace hetpar::cost {

double ProgramProfile::callShare(int callerStmtId, const std::string& callee) const {
  auto total = functionCalls.find(callee);
  if (total == functionCalls.end() || total->second == 0) return 0.0;
  auto site = callSiteCalls.find({callerStmtId, callee});
  if (site == callSiteCalls.end()) return 0.0;
  return static_cast<double>(site->second) / static_cast<double>(total->second);
}

}  // namespace hetpar::cost
