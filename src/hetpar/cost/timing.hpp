// High-level timing model (paper Section I: "efficient parallelization based
// on adequate high-level timing models").
//
// Converts profiled abstract operation counts into per-processor-class
// execution times and data-flow byte counts into communication times. This
// is the only place where ops/bytes meet seconds, so experiments can swap
// assumptions in one spot.
#pragma once

#include "hetpar/cost/profile.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::cost {

class TimingModel {
 public:
  explicit TimingModel(const platform::Platform& pf) : pf_(&pf) {}

  const platform::Platform& platform() const { return *pf_; }

  /// Seconds processor class `c` needs for `ops` abstract operations
  /// (same-ISA path: every kind weighs the same).
  double seconds(platform::ClassId c, double ops) const { return pf_->timeForOps(c, ops); }

  /// Seconds for a per-kind operation breakdown (cross-ISA path: the
  /// class's kindFactor weights apply).
  double seconds(platform::ClassId c, const OpMix& mix) const {
    return pf_->timeForKinds(c, mix.kind);
  }

  /// Per-class execution time of one execution of statement `stmtId`.
  double stmtSeconds(platform::ClassId c, const ProgramProfile& profile, int stmtId) const {
    return seconds(c, profile.of(stmtId).opsPerExec());
  }

  /// Seconds to communicate `bytes` across tasks (one cut data-flow edge).
  double commSeconds(long long bytes) const {
    return pf_->commTimeSeconds(static_cast<double>(bytes));
  }

  /// Task creation overhead in seconds (the TCO constant of Eq 8).
  double taskCreationSeconds() const { return pf_->taskCreationOverheadSeconds(); }

 private:
  const platform::Platform* pf_;
};

}  // namespace hetpar::cost
