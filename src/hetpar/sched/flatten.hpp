// Flattens a chosen hierarchical solution into an executable TaskGraph
// (the "IMPLEMENTBESTSOLUTION" step of Algorithm 1, targeting our simulator
// instead of the ATOMIUM tool chain).
//
// Times are *re-derived* from the HTG's profiled operation counts against
// the real platform — never copied from the planning-time candidates. This
// is what makes the homogeneous-baseline comparison honest: the baseline
// planned against a uniform platform view, but its tasks execute at the real
// cores' speeds (paper Section VI: "the faster processors have to wait until
// the slower cores have finished their tasks").
//
// Core allocation is hierarchical: each task of a region receives its own
// core plus a carved-out sub-pool covering the nested solutions of the
// children it hosts (the Eq 14-16 budget guarantees this always fits).
#pragma once

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/solution.hpp"
#include "hetpar/sched/taskgraph.hpp"

namespace hetpar::sched {

struct FlattenOptions {
  /// true: honor the candidates' task-to-class mapping (heterogeneous tool,
  /// pre-mapping specification). false: ignore classes and hand out cores
  /// round-robin (how a heterogeneity-oblivious tool's output gets mapped).
  bool classAwareAllocation = true;
};

struct FlattenResult {
  TaskGraph graph;
  int finalTask = -1;  ///< completion of this task = program completion
};

/// Expands the solution tree rooted at `rootChoice` into a TaskGraph.
/// `realTiming` must wrap the *actual* platform; `mainCore` is the physical
/// core running the main task (the measurement baseline core).
FlattenResult flatten(const htg::Graph& graph, const parallel::SolutionTable& table,
                      parallel::SolutionRef rootChoice, const cost::TimingModel& realTiming,
                      int mainCore, FlattenOptions options = {});

/// Sequential reference: the whole program as one task on `mainCore`.
FlattenResult flattenSequential(const htg::Graph& graph, const cost::TimingModel& realTiming,
                                int mainCore);

}  // namespace hetpar::sched
