#include "hetpar/sched/taskgraph.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::sched {

std::vector<std::string> TaskGraph::validate() const {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const SimTask& t = tasks[i];
    if (t.id != static_cast<int>(i))
      problems.push_back(strings::format("task %zu has id %d", i, t.id));
    if (t.core < 0 || t.core >= numCores)
      problems.push_back(strings::format("task %d on invalid core %d", t.id, t.core));
    if (t.computeSeconds < 0)
      problems.push_back(strings::format("task %d has negative compute", t.id));
    for (int p : t.preds)
      if (p < 0 || p >= t.id)
        problems.push_back(strings::format("task %d has non-topological pred %d", t.id, p));
    for (const auto& [p, secs] : t.transfers) {
      if (p < 0 || p >= t.id)
        problems.push_back(strings::format("task %d has non-topological transfer from %d", t.id, p));
      if (secs < 0)
        problems.push_back(strings::format("task %d has negative transfer time", t.id));
    }
  }
  return problems;
}

double TaskGraph::totalComputeSeconds() const {
  double total = 0.0;
  for (const SimTask& t : tasks) total += t.computeSeconds;
  return total;
}

}  // namespace hetpar::sched
