#include "hetpar/sched/flatten.hpp"

#include <algorithm>
#include <map>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::sched {

using htg::Node;
using htg::NodeId;
using parallel::SolutionCandidate;
using parallel::SolutionKind;
using parallel::SolutionRef;
using parallel::SolutionTable;
using platform::ClassId;

namespace {

class Flattener {
 public:
  Flattener(const htg::Graph& graph, const SolutionTable& table,
            const cost::TimingModel& timing, FlattenOptions options)
      : graph_(graph), table_(table), timing_(timing), options_(options) {}

  FlattenResult run(SolutionRef rootChoice, int mainCore) {
    const platform::Platform& pf = timing_.platform();
    out_ = TaskGraph{};
    out_.numCores = pf.numCores();
    require(mainCore >= 0 && mainCore < pf.numCores(), "main core out of range");

    std::vector<int> rootPool;
    for (int c = 0; c < pf.numCores(); ++c)
      if (c != mainCore) rootPool.push_back(c);
    currentPool_ = &rootPool;
    roundRobinNext_ = 0;

    const SolutionCandidate& cand = table_.at(rootChoice.node).at(rootChoice.index);
    FlattenResult result;
    result.finalTask = flattenNode(rootChoice.node, cand, 1.0, mainCore, {});
    result.graph = std::move(out_);
    const auto problems = result.graph.validate();
    HETPAR_CHECK_MSG(problems.empty(), "flattener produced an invalid task graph: " +
                                           (problems.empty() ? "" : problems[0]));
    return result;
  }

 private:
  double seconds(int core, const cost::OpMix& mix) const {
    return timing_.seconds(timing_.platform().classOfCore(core), mix);
  }

  /// Takes one core from the current pool: by class when class-aware,
  /// round-robin otherwise. Throws if the pool is exhausted (the ILP budget
  /// guarantees it never is for class-aware allocation).
  int acquireCore(ClassId cls) {
    std::vector<int>& pool = *currentPool_;
    require(!pool.empty(), "core pool exhausted during flattening");
    if (options_.classAwareAllocation) {
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (timing_.platform().classOfCore(pool[i]) == cls) {
          const int core = pool[i];
          pool.erase(pool.begin() + static_cast<long>(i));
          return core;
        }
      }
      // The exact class is exhausted (can happen for the oblivious baseline
      // or fallback paths): take any core.
    }
    const std::size_t pick = roundRobinNext_++ % pool.size();
    const int core = pool[pick];
    pool.erase(pool.begin() + static_cast<long>(pick));
    return core;
  }

  int emit(int core, double computeSeconds, std::vector<int> preds,
           std::vector<std::pair<int, double>> transfers, std::string label) {
    SimTask t;
    t.core = core;
    t.computeSeconds = computeSeconds;
    t.preds = std::move(preds);
    t.transfers = std::move(transfers);
    t.label = std::move(label);
    return out_.addTask(std::move(t));
  }

  int flattenNode(NodeId id, const SolutionCandidate& cand, double runs, int core,
                  std::vector<int> preds) {
    switch (cand.kind) {
      case SolutionKind::Sequential: {
        const int seg = emit(core, runs * seconds(core, graph_.subtreeMixPerExec(id)),
                             std::move(preds), {}, graph_.node(id).label);
        out_.tasks[static_cast<std::size_t>(seg)].sourceNode = id;
        return seg;
      }
      case SolutionKind::TaskParallel:
        return flattenTaskParallel(id, cand, runs, core, std::move(preds));
      case SolutionKind::LoopChunked:
        return flattenChunked(id, cand, runs, core, std::move(preds));
    }
    throw InternalError("flatten: unknown solution kind");
  }

  int flattenTaskParallel(NodeId id, const SolutionCandidate& cand, double runs, int core,
                          std::vector<int> preds) {
    const Node& node = graph_.node(id);
    const int T = cand.numTasks();
    const int N = static_cast<int>(node.children.size());
    HETPAR_CHECK(static_cast<int>(cand.childTask.size()) == N);

    // Header segment on the main core (loop control, call overhead, spawn).
    const int header =
        emit(core, runs * seconds(core, node.mixPerExec), std::move(preds), {},
             node.label + ":hdr");

    // One physical core per extracted task, plus a carved sub-pool sized for
    // the nested solutions its children may open.
    const int C = timing_.platform().numClasses();
    std::vector<int> taskCore(static_cast<std::size_t>(T), core);
    std::vector<std::vector<int>> taskPool(static_cast<std::size_t>(T));
    std::vector<int> spawnSeg(static_cast<std::size_t>(T), -1);
    for (int t = 1; t < T; ++t)
      taskCore[static_cast<std::size_t>(t)] =
          acquireCore(cand.taskClass[static_cast<std::size_t>(t)]);
    for (int t = 0; t < T; ++t) {
      std::vector<int> needed(static_cast<std::size_t>(C), 0);
      for (int i = 0; i < N; ++i) {
        if (cand.childTask[static_cast<std::size_t>(i)] != t) continue;
        const SolutionRef ref = cand.childChoice[static_cast<std::size_t>(i)];
        if (!ref.valid()) continue;
        const SolutionCandidate& chosen = table_.at(ref.node).at(ref.index);
        for (int c = 0; c < C && c < static_cast<int>(chosen.extraProcs.size()); ++c)
          needed[static_cast<std::size_t>(c)] =
              std::max(needed[static_cast<std::size_t>(c)],
                       chosen.extraProcs[static_cast<std::size_t>(c)]);
      }
      for (int c = 0; c < C; ++c)
        for (int k = 0; k < needed[static_cast<std::size_t>(c)]; ++k)
          taskPool[static_cast<std::size_t>(t)].push_back(acquireCore(c));
    }

    // Spawn segments: each extracted task pays the creation overhead after
    // the header has run.
    for (int t = 1; t < T; ++t)
      spawnSeg[static_cast<std::size_t>(t)] =
          emit(taskCore[static_cast<std::size_t>(t)],
               runs * timing_.taskCreationSeconds(), {header}, {},
               strings::format("%s:spawn%d", node.label.c_str(), t));

    const double commScale =
        node.kind == htg::NodeKind::Loop ? std::max(1.0, node.iterationsPerExec) : 1.0;

    std::map<NodeId, int> childIndex;
    for (int i = 0; i < N; ++i) childIndex[node.children[static_cast<std::size_t>(i)]] = i;

    std::vector<int> lastSeg(static_cast<std::size_t>(N), -1);
    std::vector<int> lastOfTask(static_cast<std::size_t>(T), -1);
    lastOfTask[0] = header;
    for (int t = 1; t < T; ++t) lastOfTask[static_cast<std::size_t>(t)] = spawnSeg[static_cast<std::size_t>(t)];

    for (int i = 0; i < N; ++i) {
      const int t = cand.childTask[static_cast<std::size_t>(i)];
      const NodeId childId = node.children[static_cast<std::size_t>(i)];
      const Node& child = graph_.node(childId);
      const double ratio = node.execCount > 0 ? child.execCount / node.execCount : 0.0;

      std::vector<int> childPreds{lastOfTask[static_cast<std::size_t>(t)]};
      std::vector<std::pair<int, double>> transfers;
      for (const htg::Edge& e : node.edges) {
        if (e.to != childId) continue;
        if (e.from == node.commIn) {
          if (t != 0 && e.kind == ir::DepKind::Flow && e.bytes > 0) {
            transfers.emplace_back(header,
                                   runs * commScale * timing_.commSeconds(e.bytes));
          }
          continue;
        }
        auto fromIt = childIndex.find(e.from);
        if (fromIt == childIndex.end()) continue;
        const int j = fromIt->second;
        HETPAR_CHECK_MSG(lastSeg[static_cast<std::size_t>(j)] >= 0,
                         "region edge from an unprocessed sibling");
        childPreds.push_back(lastSeg[static_cast<std::size_t>(j)]);
        const int tj = cand.childTask[static_cast<std::size_t>(j)];
        if (tj != t && e.kind == ir::DepKind::Flow && e.bytes > 0) {
          transfers.emplace_back(lastSeg[static_cast<std::size_t>(j)],
                                 runs * commScale * timing_.commSeconds(e.bytes));
        }
      }

      const SolutionRef ref = cand.childChoice[static_cast<std::size_t>(i)];
      HETPAR_CHECK_MSG(ref.valid() && ref.node == childId,
                       "task-parallel candidate lacks a child choice");
      const SolutionCandidate& chosen = table_.at(childId).at(ref.index);

      std::vector<int>* savedPool = currentPool_;
      currentPool_ = &taskPool[static_cast<std::size_t>(t)];
      const int firstChildTask = static_cast<int>(out_.tasks.size());
      const int seg = flattenNode(childId, chosen, runs * ratio,
                                  taskCore[static_cast<std::size_t>(t)], std::move(childPreds));
      currentPool_ = savedPool;
      lastSeg[static_cast<std::size_t>(i)] = seg;
      lastOfTask[static_cast<std::size_t>(t)] = seg;
      // Inbound payloads must arrive before the child's *first* emitted task
      // (the one carrying childPreds), not its last.
      if (!transfers.empty()) {
        SimTask& first = out_.tasks[static_cast<std::size_t>(firstChildTask)];
        for (auto& tr : transfers) first.transfers.push_back(tr);
      }
    }

    // Join on the main core: wait for every task's last segment and ship
    // cut comm-out payloads home.
    std::vector<int> joinPreds;
    for (int t = 0; t < T; ++t)
      if (lastOfTask[static_cast<std::size_t>(t)] >= 0)
        joinPreds.push_back(lastOfTask[static_cast<std::size_t>(t)]);
    std::vector<std::pair<int, double>> joinTransfers;
    for (const htg::Edge& e : node.edges) {
      if (e.to != node.commOut || e.kind != ir::DepKind::Flow || e.bytes <= 0) continue;
      auto fromIt = childIndex.find(e.from);
      if (fromIt == childIndex.end()) continue;
      const int i = fromIt->second;
      if (cand.childTask[static_cast<std::size_t>(i)] == 0) continue;
      joinTransfers.emplace_back(lastSeg[static_cast<std::size_t>(i)],
                                 runs * commScale * timing_.commSeconds(e.bytes));
    }
    const int join =
        emit(core, 0.0, std::move(joinPreds), std::move(joinTransfers), node.label + ":join");

    // Return every borrowed core to the parent pool.
    for (int t = 1; t < T; ++t) currentPool_->push_back(taskCore[static_cast<std::size_t>(t)]);
    for (int t = 0; t < T; ++t)
      for (int c : taskPool[static_cast<std::size_t>(t)]) currentPool_->push_back(c);
    return join;
  }

  int flattenChunked(NodeId id, const SolutionCandidate& cand, double runs, int core,
                     std::vector<int> preds) {
    const Node& node = graph_.node(id);
    const int T = cand.numTasks();
    HETPAR_CHECK(static_cast<int>(cand.chunkIterations.size()) == T);
    const double iterations = std::max(1.0, node.iterationsPerExec);
    const cost::OpMix perIterMix = graph_.subtreeMixPerExec(id) * (1.0 / iterations);

    long long inBytes = 0;
    long long outBytes = 0;
    for (const htg::Edge& e : node.edges) {
      if (e.from == node.commIn && e.kind == ir::DepKind::Flow) inBytes += e.bytes;
      if (e.to == node.commOut && e.kind == ir::DepKind::Flow) outBytes += e.bytes;
    }
    outBytes += 8 * static_cast<long long>(node.reductionVars.size());

    const int header = emit(core, 0.0, std::move(preds), {}, node.label + ":hdr");

    std::vector<int> chunkTasks;
    std::vector<int> borrowed;
    std::vector<std::pair<int, double>> joinTransfers;
    for (int t = 0; t < T; ++t) {
      const double iters = cand.chunkIterations[static_cast<std::size_t>(t)];
      if (iters <= 0 && t != 0) continue;
      int taskCore = core;
      double spawn = 0.0;
      if (t != 0) {
        taskCore = acquireCore(cand.taskClass[static_cast<std::size_t>(t)]);
        borrowed.push_back(taskCore);
        spawn = runs * timing_.taskCreationSeconds();
      }
      const double frac = iters / iterations;
      std::vector<std::pair<int, double>> transfers;
      if (t != 0 && inBytes > 0)
        transfers.emplace_back(header, runs * timing_.commSeconds(inBytes * frac));
      const int seg = emit(
          taskCore, spawn + runs * iters * seconds(taskCore, perIterMix), {header},
          std::move(transfers), strings::format("%s:chunk%d", node.label.c_str(), t));
      out_.tasks[static_cast<std::size_t>(seg)].sourceNode = id;
      chunkTasks.push_back(seg);
      if (t != 0 && outBytes > 0)
        joinTransfers.emplace_back(seg, runs * timing_.commSeconds(outBytes * frac));
    }

    const int join =
        emit(core, 0.0, chunkTasks, std::move(joinTransfers), node.label + ":join");
    for (int c : borrowed) currentPool_->push_back(c);
    return join;
  }

  const htg::Graph& graph_;
  const SolutionTable& table_;
  const cost::TimingModel& timing_;
  FlattenOptions options_;
  TaskGraph out_;
  std::vector<int>* currentPool_ = nullptr;
  std::size_t roundRobinNext_ = 0;
};

}  // namespace

FlattenResult flatten(const htg::Graph& graph, const SolutionTable& table,
                      SolutionRef rootChoice, const cost::TimingModel& realTiming, int mainCore,
                      FlattenOptions options) {
  return Flattener(graph, table, realTiming, options).run(rootChoice, mainCore);
}

FlattenResult flattenSequential(const htg::Graph& graph, const cost::TimingModel& realTiming,
                                int mainCore) {
  FlattenResult result;
  result.graph.numCores = realTiming.platform().numCores();
  SimTask t;
  t.core = mainCore;
  t.computeSeconds = realTiming.seconds(realTiming.platform().classOfCore(mainCore),
                                        graph.subtreeMixPerExec(graph.root()));
  t.label = "sequential";
  t.sourceNode = graph.root();
  result.finalTask = result.graph.addTask(std::move(t));
  return result;
}

}  // namespace hetpar::sched
