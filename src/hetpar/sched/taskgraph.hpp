// Flat task graph: the executable form of a chosen parallel solution.
//
// Produced by the flattener (hetpar/sched/flatten.hpp) and consumed by the
// MPSoC simulator. Each task is a contiguous piece of work statically
// assigned to one physical core; edges carry precedence and, for cut
// data-flow edges, bus-transfer durations.
#pragma once

#include <string>
#include <vector>

namespace hetpar::sched {

struct SimTask {
  int id = -1;
  int core = 0;                 ///< physical core executing this task
  double computeSeconds = 0.0;  ///< busy time on that core (spawn overhead folded in)
  std::vector<int> preds;       ///< tasks that must finish before this starts
  /// Bus transfers that must arrive before this task starts:
  /// (producer task id, transfer duration on the shared bus).
  std::vector<std::pair<int, double>> transfers;
  std::string label;
  /// HTG node whose subtree's work this task executes; -1 for structural
  /// segments (headers, spawns, joins) that perform no program memory
  /// accesses. Lets checkers map simulated tasks back to access summaries.
  int sourceNode = -1;
};

struct TaskGraph {
  std::vector<SimTask> tasks;
  int numCores = 1;

  int addTask(SimTask t) {
    t.id = static_cast<int>(tasks.size());
    tasks.push_back(std::move(t));
    return tasks.back().id;
  }

  /// Structural checks: ids consistent, preds/transfers reference earlier
  /// tasks (the flattener emits in topological order), cores in range.
  /// Returns problems; empty = OK.
  std::vector<std::string> validate() const;

  /// Sum of all compute seconds (the work the cores must perform).
  double totalComputeSeconds() const;
};

}  // namespace hetpar::sched
