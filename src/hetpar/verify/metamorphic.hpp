// Metamorphic and differential relations over the whole parallelization
// pipeline (after Chen et al.'s metamorphic-testing methodology; see also
// Segura et al., "A Survey on Metamorphic Testing", TSE 2016).
//
// No external reference implementation of the paper's tool exists, so the
// harness checks *relations between runs* instead of golden outputs:
//
//   Invariants           every produced solution table passes the
//                        independent checker (hetpar/verify/invariants.hpp)
//   CostScaling          uniformly scaling every platform cost by a
//                        power-of-two factor scales every claimed time by
//                        exactly that factor
//   SingleClassHomogen.  on a single-class platform the heterogeneous tool
//                        and the homogeneous baseline [6] agree bit-exactly
//   JobsInvariance       --jobs 1 and --jobs N produce identical tables
//   CacheInvariance      the region cache never changes the outcome
//   GaVsIlp              the genetic optimizer never beats the ILP optimum
//   OracleTask           ILPPAR == exhaustive enumeration on tiny regions
//   OracleChunk          chunk ILP == exhaustive enumeration on tiny loops
//   SimConsistency       the discrete-event simulator's makespan is
//                        consistent with the claimed critical path
//   RefinementSoundness  the affine dependence mode only *refines* the
//                        conservative one: every affine sibling edge lies in
//                        the transitive closure of the conservative edges,
//                        affine comm-in/out variables are a subset of the
//                        conservative ones, and per-region byte totals never
//                        grow
//   ScheduleValidity     the DES replay of the affine-mode best solution has
//                        no section-level hazard: tasks whose access
//                        summaries may conflict never overlap in simulated
//                        time on different cores
//   SolverDifferential   the production sparse revised simplex and the
//                        retained dense-inverse engine agree on feasibility,
//                        optimality and objective for the same ILPPAR
//                        region (region-level; the two engines share only
//                        the simplex driver, not the basis representation)
//   SectionSoundness     ground truth for the section analysis: the
//                        interpreter traces every global-array element
//                        access and checks, per top-level statement, that
//                        actual accesses stay inside the claimed hulls and
//                        that every mustCover() write really touched its
//                        whole hull. Unlike ScheduleValidity (which judges
//                        conflicts with the analysis' own sections), this
//                        can falsify the analysis itself.
//   LivenessSoundness    ground truth for the liveness analysis: the
//                        interpreter traces element-level def-use chains of
//                        global arrays across main()'s top-level statements
//                        and checks that whenever a value written by
//                        statement t is read by a later statement t', the
//                        array is claimed live-after every statement in
//                        [t, t'). Falsifiable: the deliberate
//                        partial-write-kill bug knob in DataflowAnalysis
//                        makes it fail within a short fuzz run.
//   FlowRefinement       FlowMode::Live only *refines* Conservative flow:
//                        identical graph structure, live comm-in/out
//                        variables are a subset of the conservative ones
//                        per child, and comm payload bytes never grow —
//                        per child, per direction, and per region.
//
// Program-level relations take (source, platform) — which is what lets the
// delta-debugging shrinker re-check a reduced program. Region-level
// relations (GaVsIlp, Oracle*) synthesize a tiny region from a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::verify {

enum class Relation {
  Invariants,
  CostScaling,
  SingleClassHomogeneous,
  JobsInvariance,
  CacheInvariance,
  GaVsIlp,
  OracleTask,
  OracleChunk,
  SolverDifferential,
  SimConsistency,
  RefinementSoundness,
  ScheduleValidity,
  SectionSoundness,
  LivenessSoundness,
  FlowRefinement,
};

/// All relations, in a stable order (the fuzzer round-robins over these).
std::vector<Relation> allRelations();

/// Stable kebab-case name ("cost-scaling", "oracle-task", ...).
std::string relationName(Relation r);

/// Parses a comma-separated relation list ("all" = everything). Throws
/// hetpar::Error on unknown names.
std::vector<Relation> parseRelations(const std::string& spec);

/// True for relations that consume a (program, platform) pair; false for
/// the seed-driven region-level relations.
bool isProgramRelation(Relation r);

struct RelationResult {
  Relation relation = Relation::Invariants;
  std::string name;
  bool passed = false;
  bool skipped = false;  ///< relation not applicable to this input
  std::string detail;    ///< failure explanation / skip reason
};

struct MetamorphicOptions {
  /// Tolerance for comparing two independently derived times.
  double relTol = 1e-6;
  double absTolSeconds = 1e-9;
  /// Claimed sequential time vs simulated sequential run: both derive from
  /// the same profile, differing only in summation order.
  double seqSimRelTol = 1e-3;
  /// Simulated parallel makespan vs claimed critical path: the DES
  /// serializes bus transfers that the additive planning model books in
  /// parallel, so the band is generous (the seed's flatten tests use 25%).
  double simLowerFactor = 0.5;
  double simUpperFactor = 2.0;
  /// Parallelizer configuration. Defaults are made deterministic (no
  /// wall-clock solver limit) by `deterministicOptions`, which bit-identical
  /// relations require.
  parallel::ParallelizerOptions parallelizer = deterministicOptions();

  static parallel::ParallelizerOptions deterministicOptions();
};

/// Byte-for-byte comparison of two solution tables. Returns "" when
/// identical, else a description of the first difference.
std::string diffSolutionTables(const parallel::SolutionTable& a,
                               const parallel::SolutionTable& b);

/// Runs one program-level relation on (source, platform).
RelationResult checkProgramRelation(Relation r, const std::string& source,
                                    const platform::Platform& pf,
                                    const MetamorphicOptions& options = {});

/// Runs one region-level relation on a seed-synthesized tiny instance.
RelationResult checkRegionRelation(Relation r, std::uint64_t seed,
                                   const MetamorphicOptions& options = {});

}  // namespace hetpar::verify
