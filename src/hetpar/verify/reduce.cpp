#include "hetpar/verify/reduce.hpp"

#include <algorithm>

#include "hetpar/support/error.hpp"

namespace hetpar::verify {

namespace {

/// The complement of chunk partition `i` out of `n` equal slices.
std::vector<std::string> withoutSlice(const std::vector<std::string>& chunks, int i, int n) {
  const std::size_t total = chunks.size();
  const std::size_t begin = total * static_cast<std::size_t>(i) / static_cast<std::size_t>(n);
  const std::size_t end =
      total * static_cast<std::size_t>(i + 1) / static_cast<std::size_t>(n);
  std::vector<std::string> out;
  out.reserve(total - (end - begin));
  for (std::size_t k = 0; k < total; ++k)
    if (k < begin || k >= end) out.push_back(chunks[k]);
  return out;
}

}  // namespace

ReduceResult reduceProgram(const GeneratedProgram& program, const FailurePredicate& failing) {
  ReduceResult result;
  result.program = program;
  ++result.probes;
  require(failing(program), "reduceProgram called on a passing input");

  // Classic ddmin over the chunk list: try dropping ever finer slices; on
  // success restart at coarse granularity, else refine until single-chunk
  // granularity stops making progress.
  int granularity = 2;
  while (result.program.statements.size() >= 2) {
    const int n =
        std::min<int>(granularity, static_cast<int>(result.program.statements.size()));
    bool shrunk = false;
    for (int i = 0; i < n; ++i) {
      std::vector<std::string> candidate =
          withoutSlice(result.program.statements, i, n);
      if (candidate.size() == result.program.statements.size()) continue;
      const GeneratedProgram probe = result.program.withStatements(std::move(candidate));
      ++result.probes;
      if (failing(probe)) {
        result.program = probe;
        granularity = std::max(2, n - 1);
        shrunk = true;
        break;
      }
    }
    if (shrunk) continue;
    if (n >= static_cast<int>(result.program.statements.size())) break;
    granularity = std::min<int>(2 * n, static_cast<int>(result.program.statements.size()));
  }
  return result;
}

}  // namespace hetpar::verify
