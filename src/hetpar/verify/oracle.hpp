// Exhaustive optimality oracle for tiny ILPPAR instances.
//
// The paper's claim is that ILPPAR returns the OPTIMAL partition/mapping per
// hierarchical node. For instances small enough to enumerate (a handful of
// children, one or two processor classes) that claim is directly checkable:
// walk every (child-to-task, task-to-class, nested-candidate) assignment the
// model admits — monotone task ids, budget-feasible — score each with the
// shared cost evaluator, and compare the true minimum with the solver's
// objective. The same idea validates the loop-chunking ILP against every
// integer iteration split. (Pattern after Papp et al. 2025, who validate
// their scheduling ILP against exhaustive baselines on small instances.)
#pragma once

#include <cstdint>

#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/support/rng.hpp"

namespace hetpar::verify {

struct OracleResult {
  /// False when no feasible assignment exists (then bestSeconds is
  /// meaningless and the ILP must report infeasibility too).
  bool feasible = false;
  double bestSeconds = 0.0;
  long long assignmentsTried = 0;
  /// One argmin witness (task-model oracle only).
  std::vector<int> childTask;
  std::vector<platform::ClassId> taskClass;
  std::vector<int> childPick;
};

/// Enumerates every admissible assignment of `region` (requires
/// children <= 8, maxTasks <= 4, classes <= 4 to stay enumerable — at the
/// full 4 classes the child cap tightens to 5 so the assignment space stays
/// below a few million leaves; throws otherwise). Scores with
/// parallel::evaluateAssignment — the same evaluator the GA uses, itself
/// cross-validated against the ILP objective.
OracleResult bruteForceTask(const parallel::IlpRegion& region);

/// Enumerates every task count, task-to-class mapping and integer iteration
/// composition of `region` (requires iterations <= 64, maxTasks <= 4).
OracleResult bruteForceChunk(const parallel::ChunkRegion& region);

struct TinyRegionOptions {
  int minChildren = 2;
  int maxChildren = 6;
  /// Up to three classes by default; widened runs may push this to the
  /// oracle's 4-class cap (children are then clamped to 5, see oracle.cpp).
  int maxClasses = 3;
  int maxTasks = 3;
  /// Depth of the per-class nested-candidate menus: each extra candidate
  /// models one more solution of the hosting child's nested region.
  int maxCandidatesPerClass = 3;
  double edgeProbability = 0.4;
  double boundaryEdgeProbability = 0.3;
};

/// Random enumerable ILPPAR instance. Every class menu keeps one
/// zero-extra-processor candidate, so the all-in-main assignment is always
/// feasible and the oracle never degenerates to "everything infeasible".
/// Deeper nested candidates (second and later extras) may claim processors
/// from two distinct classes, exercising multi-class budget interaction.
parallel::IlpRegion randomTinyRegion(Rng& rng, const TinyRegionOptions& options = {});

/// Random enumerable loop-chunking instance (iterations <= 48).
parallel::ChunkRegion randomTinyChunkRegion(Rng& rng, const TinyRegionOptions& options = {});

}  // namespace hetpar::verify
