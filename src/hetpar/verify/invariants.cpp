#include "hetpar/verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "hetpar/ir/dependence.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::verify {

using htg::Node;
using htg::NodeId;
using parallel::ParallelSet;
using parallel::SolutionCandidate;
using parallel::SolutionKind;
using parallel::SolutionTable;
using platform::ClassId;

namespace {

bool closeEnough(double a, double b, const InvariantOptions& opts) {
  const double diff = std::abs(a - b);
  return diff <= opts.relTol * std::max(std::abs(a), std::abs(b)) + opts.absTolSeconds;
}

/// Collects problems for one candidate. All checks run even after the first
/// failure so a report names every violated invariant at once.
class CandidateChecker {
 public:
  CandidateChecker(const htg::Graph& graph, const cost::TimingModel& timing,
                   const SolutionTable& table, const InvariantOptions& options)
      : graph_(graph), timing_(timing), table_(table), options_(options) {}

  std::vector<std::string> check(NodeId id, int index) {
    problems_.clear();
    const ParallelSet* set = findSet(id);
    if (set == nullptr) return std::move(problems_);
    if (index < 0 || index >= static_cast<int>(set->size())) {
      fail("candidate index %d out of range (set has %zu)", index, set->size());
      return std::move(problems_);
    }
    const SolutionCandidate& cand = set->at(index);
    const int C = timing_.platform().numClasses();

    if (cand.mainClass < 0 || cand.mainClass >= C)
      fail("main class %d outside [0, %d)", cand.mainClass, C);
    if (!(cand.timeSeconds >= 0.0) || !std::isfinite(cand.timeSeconds))
      fail("claimed time %.17g is not a finite non-negative number", cand.timeSeconds);
    if (static_cast<int>(cand.extraProcs.size()) != C)
      fail("extraProcs has %zu entries, platform has %d classes", cand.extraProcs.size(), C);
    if (cand.taskClass.empty())
      fail("candidate opens no tasks at all");
    else if (cand.taskClass[0] != cand.mainClass)
      fail("main task mapped to class %d but candidate is tagged class %d",
           cand.taskClass[0], cand.mainClass);
    for (ClassId c : cand.taskClass)
      if (c < 0 || c >= C) fail("task mapped to nonexistent class %d", c);
    if (problems_.empty()) {
      checkBudgets(cand);
      switch (cand.kind) {
        case SolutionKind::Sequential: checkSequential(id, cand); break;
        case SolutionKind::TaskParallel: checkTaskParallel(id, cand); break;
        case SolutionKind::LoopChunked: checkChunked(id, cand); break;
      }
    }
    return std::move(problems_);
  }

 private:
  template <typename... Args>
  void fail(const char* fmt, Args... args) {
    problems_.push_back(strings::format(fmt, args...));
  }

  const ParallelSet* findSet(NodeId id) {
    auto it = table_.find(id);
    if (it == table_.end()) {
      fail("node %d has no parallel set", id);
      return nullptr;
    }
    return &it->second;
  }

  /// Per-class allocation must fit the platform: the main task's own unit
  /// plus everything `extraProcs` accounts for.
  void checkBudgets(const SolutionCandidate& cand) {
    const platform::Platform& pf = timing_.platform();
    for (int c = 0; c < pf.numClasses(); ++c) {
      const int extra = cand.extraProcs[static_cast<std::size_t>(c)];
      if (extra < 0) fail("negative extraProcs[%d] = %d", c, extra);
      const int allocated = extra + (c == cand.mainClass ? 1 : 0);
      if (allocated > pf.classAt(c).count)
        fail("class %d allocation %d exceeds the platform's %d units", c, allocated,
             pf.classAt(c).count);
    }
    if (cand.totalProcs() > pf.numCores())
      fail("total allocation %d exceeds the platform's %d cores", cand.totalProcs(),
           pf.numCores());
  }

  /// Independent recomputation of a node's sequential time on class `c`:
  /// the node's own (header) work plus each child's sequential candidate,
  /// scaled by profiled execution-count ratios.
  double sequentialSeconds(NodeId id, ClassId c) {
    const Node& n = graph_.node(id);
    double seconds = timing_.seconds(c, n.mixPerExec);
    if (!n.isHierarchical()) return seconds;
    for (NodeId childId : n.children) {
      auto it = table_.find(childId);
      if (it == table_.end()) {
        fail("child node %d of node %d has no parallel set", childId, id);
        return seconds;
      }
      const int seq = it->second.sequentialFor(c);
      if (seq < 0) {
        fail("child node %d offers no sequential candidate for class %d", childId, c);
        return seconds;
      }
      const double ratio =
          n.execCount > 0 ? graph_.node(childId).execCount / n.execCount : 0.0;
      seconds += ratio * it->second.at(seq).timeSeconds;
    }
    return seconds;
  }

  void checkSequential(NodeId id, const SolutionCandidate& cand) {
    if (cand.taskClass.size() != 1)
      fail("sequential candidate opens %zu tasks", cand.taskClass.size());
    if (!cand.childTask.empty() || !cand.childChoice.empty())
      fail("sequential candidate carries a child-to-task mapping");
    if (!cand.chunkIterations.empty())
      fail("sequential candidate carries loop chunks");
    for (int e : cand.extraProcs)
      if (e != 0) fail("sequential candidate borrows %d extra processors", e);
    const double derived = sequentialSeconds(id, cand.mainClass);
    if (!closeEnough(cand.timeSeconds, derived, options_))
      fail("sequential time claim %.9g s, re-derived %.9g s", cand.timeSeconds, derived);
  }

  void checkTaskParallel(NodeId id, const SolutionCandidate& cand) {
    const Node& node = graph_.node(id);
    if (!node.isHierarchical()) {
      fail("task-parallel candidate on non-hierarchical node %d", id);
      return;
    }
    const int N = static_cast<int>(node.children.size());
    const int T = cand.numTasks();
    const int C = timing_.platform().numClasses();
    if (static_cast<int>(cand.childTask.size()) != N ||
        static_cast<int>(cand.childChoice.size()) != N) {
      fail("child mapping covers %zu/%zu of %d children", cand.childTask.size(),
           cand.childChoice.size(), N);
      return;
    }

    // Structure: exactly-one-task per child (childTask is that function),
    // monotone ids over the topological child order => acyclic task graph.
    for (int n = 0; n < N; ++n) {
      const int t = cand.childTask[static_cast<std::size_t>(n)];
      if (t < 0 || t >= T) fail("child %d on nonexistent task %d of %d", n, t, T);
      if (n > 0 && t < cand.childTask[static_cast<std::size_t>(n - 1)])
        fail("task ids not monotone at child %d (%d after %d) — task graph may cycle", n, t,
             cand.childTask[static_cast<std::size_t>(n - 1)]);
    }
    if (!problems_.empty()) return;

    // Chosen nested candidates: exist, belong to the right child, and their
    // main class agrees with the hosting task's class (Eq 17-18).
    std::vector<const SolutionCandidate*> chosen(static_cast<std::size_t>(N), nullptr);
    for (int n = 0; n < N; ++n) {
      const parallel::SolutionRef ref = cand.childChoice[static_cast<std::size_t>(n)];
      const NodeId childId = node.children[static_cast<std::size_t>(n)];
      if (ref.node != childId) {
        fail("child %d's choice references node %d, expected child node %d", n, ref.node,
             childId);
        continue;
      }
      auto it = table_.find(childId);
      if (it == table_.end() || ref.index < 0 ||
          ref.index >= static_cast<int>(it->second.size())) {
        fail("child %d's choice index %d is not in its parallel set", n, ref.index);
        continue;
      }
      chosen[static_cast<std::size_t>(n)] = &it->second.at(ref.index);
      const ClassId hostClass =
          cand.taskClass[static_cast<std::size_t>(cand.childTask[static_cast<std::size_t>(n)])];
      if (chosen[static_cast<std::size_t>(n)]->mainClass != hostClass)
        fail("child %d's chosen candidate runs on class %d but its task is class %d", n,
             chosen[static_cast<std::size_t>(n)]->mainClass, hostClass);
    }
    if (!problems_.empty()) return;

    // Processor accounting (Eq 14-16): children sharing a task run
    // sequentially and reuse their nested borrowings, so a task's footprint
    // is the per-class MAXIMUM over its children; tasks sum.
    std::vector<int> derivedExtra(static_cast<std::size_t>(C), 0);
    for (std::size_t t = 1; t < cand.taskClass.size(); ++t)
      ++derivedExtra[static_cast<std::size_t>(cand.taskClass[t])];
    std::vector<std::vector<int>> perTask(
        static_cast<std::size_t>(T), std::vector<int>(static_cast<std::size_t>(C), 0));
    for (int n = 0; n < N; ++n) {
      const auto& extra = chosen[static_cast<std::size_t>(n)]->extraProcs;
      auto& slot = perTask[static_cast<std::size_t>(cand.childTask[static_cast<std::size_t>(n)])];
      for (int c = 0; c < C && c < static_cast<int>(extra.size()); ++c)
        slot[static_cast<std::size_t>(c)] =
            std::max(slot[static_cast<std::size_t>(c)], extra[static_cast<std::size_t>(c)]);
    }
    for (const auto& slot : perTask)
      for (int c = 0; c < C; ++c)
        derivedExtra[static_cast<std::size_t>(c)] += slot[static_cast<std::size_t>(c)];
    if (derivedExtra != cand.extraProcs) {
      std::string got, want;
      for (int c = 0; c < C; ++c) {
        got += strings::format("%d ", cand.extraProcs[static_cast<std::size_t>(c)]);
        want += strings::format("%d ", derivedExtra[static_cast<std::size_t>(c)]);
      }
      fail("extraProcs claim [ %s] but nested accounting derives [ %s]", got.c_str(),
           want.c_str());
    }

    // Cost re-derivation (Eq 8-9, 11): per-task exec + task-creation +
    // communication charges, longest path over the induced task DAG.
    const double ratioBase = node.execCount;
    std::vector<double> cost(static_cast<std::size_t>(T), 0.0);
    for (int t = 1; t < T; ++t)
      cost[static_cast<std::size_t>(t)] += timing_.taskCreationSeconds();
    for (int n = 0; n < N; ++n) {
      const NodeId childId = node.children[static_cast<std::size_t>(n)];
      const double ratio =
          ratioBase > 0 ? graph_.node(childId).execCount / ratioBase : 0.0;
      cost[static_cast<std::size_t>(cand.childTask[static_cast<std::size_t>(n)])] +=
          ratio * chosen[static_cast<std::size_t>(n)]->timeSeconds;
    }

    // Loop regions synchronize once per iteration; one-shot flows elsewhere
    // (mirrors the region builder's commScale).
    const double commScale = node.kind == htg::NodeKind::Loop
                                 ? std::max(1.0, node.iterationsPerExec)
                                 : 1.0;
    std::vector<std::vector<bool>> pred(
        static_cast<std::size_t>(T), std::vector<bool>(static_cast<std::size_t>(T), false));
    std::map<NodeId, int> childIndex;
    for (int n = 0; n < N; ++n) childIndex[node.children[static_cast<std::size_t>(n)]] = n;
    for (const htg::Edge& e : node.edges) {
      const bool orderingOnly = e.kind != ir::DepKind::Flow;
      const double comm =
          orderingOnly ? 0.0 : commScale * timing_.commSeconds(e.bytes);
      const bool fromIn = e.from == node.commIn;
      const bool toOut = e.to == node.commOut;
      if (!fromIn && !toOut) {
        const int tf = cand.childTask[static_cast<std::size_t>(childIndex.at(e.from))];
        const int tt = cand.childTask[static_cast<std::size_t>(childIndex.at(e.to))];
        if (tf != tt) {
          pred[static_cast<std::size_t>(tf)][static_cast<std::size_t>(tt)] = true;
          cost[static_cast<std::size_t>(tt)] += comm;
        }
      } else if (fromIn && !toOut) {
        const int tt = cand.childTask[static_cast<std::size_t>(childIndex.at(e.to))];
        if (tt != 0) cost[static_cast<std::size_t>(tt)] += comm;
      } else if (!fromIn && toOut) {
        const int tf = cand.childTask[static_cast<std::size_t>(childIndex.at(e.from))];
        if (tf != 0) cost[static_cast<std::size_t>(tf)] += comm;
      }
    }

    double derived = 0.0;
    std::vector<double> accum(static_cast<std::size_t>(T), 0.0);
    for (int t = 0; t < T; ++t) {
      double best = 0.0;
      for (int u = 0; u < t; ++u)
        if (pred[static_cast<std::size_t>(u)][static_cast<std::size_t>(t)])
          best = std::max(best, accum[static_cast<std::size_t>(u)]);
      accum[static_cast<std::size_t>(t)] = best + cost[static_cast<std::size_t>(t)];
      derived = std::max(derived, accum[static_cast<std::size_t>(t)]);
    }
    if (!closeEnough(cand.timeSeconds, derived, options_))
      fail("task-parallel time claim %.9g s, critical-path re-derivation %.9g s",
           cand.timeSeconds, derived);
  }

  void checkChunked(NodeId id, const SolutionCandidate& cand) {
    const Node& node = graph_.node(id);
    const platform::Platform& pf = timing_.platform();
    if (node.kind != htg::NodeKind::Loop || !node.doall) {
      fail("loop-chunked candidate on node %d which is not a DOALL loop", id);
      return;
    }
    const int T = cand.numTasks();
    if (static_cast<int>(cand.chunkIterations.size()) != T) {
      fail("%zu iteration chunks for %d tasks", cand.chunkIterations.size(), T);
      return;
    }
    const double iterations = std::max(1.0, node.iterationsPerExec);
    const long long totalIters = std::llround(iterations);
    double assigned = 0.0;
    for (double cnt : cand.chunkIterations) {
      if (cnt < 0) fail("negative iteration chunk %.3f", cnt);
      assigned += cnt;
    }
    if (std::llround(assigned) != totalIters)
      fail("chunks cover %.1f of %lld iterations", assigned, totalIters);
    std::vector<int> derivedExtra(static_cast<std::size_t>(pf.numClasses()), 0);
    for (std::size_t t = 1; t < cand.taskClass.size(); ++t)
      ++derivedExtra[static_cast<std::size_t>(cand.taskClass[t])];
    if (derivedExtra != cand.extraProcs)
      fail("chunked extraProcs disagree with the task-to-class mapping");
    if (!problems_.empty()) return;

    // Re-derive the per-class cost of one iteration and the boundary
    // communication parameters exactly like the region builder, then the
    // chunk cost model: max over tasks.
    std::vector<double> perIter;
    for (int c = 0; c < pf.numClasses(); ++c)
      perIter.push_back(sequentialSeconds(id, c) / iterations);
    long long inBytes = 0;
    long long outBytes = 0;
    for (const htg::Edge& e : node.edges) {
      if (e.from == node.commIn && e.kind == ir::DepKind::Flow) inBytes += e.bytes;
      if (e.to == node.commOut && e.kind == ir::DepKind::Flow) outBytes += e.bytes;
    }
    outBytes += 8 * static_cast<long long>(node.reductionVars.size());
    const platform::Interconnect& bus = pf.interconnect();
    const double inLatency = inBytes > 0 ? bus.latencySeconds : 0.0;
    const double inSlope =
        inBytes > 0 ? static_cast<double>(inBytes) / iterations / bus.bytesPerSecond : 0.0;
    const double outLatency = outBytes > 0 ? bus.latencySeconds : 0.0;
    const double outSlope =
        outBytes > 0 ? static_cast<double>(outBytes) / iterations / bus.bytesPerSecond : 0.0;

    double derived = 0.0;
    for (int t = 0; t < T; ++t) {
      const double cnt = cand.chunkIterations[static_cast<std::size_t>(t)];
      double taskCost =
          perIter[static_cast<std::size_t>(cand.taskClass[static_cast<std::size_t>(t)])] * cnt;
      if (t > 0)
        taskCost += timing_.taskCreationSeconds() + inLatency + outLatency +
                    (inSlope + outSlope) * cnt;
      derived = std::max(derived, taskCost);
    }
    if (!closeEnough(cand.timeSeconds, derived, options_))
      fail("loop-chunked time claim %.9g s, re-derivation %.9g s", cand.timeSeconds, derived);
  }

  const htg::Graph& graph_;
  const cost::TimingModel& timing_;
  const SolutionTable& table_;
  const InvariantOptions& options_;
  std::vector<std::string> problems_;
};

}  // namespace

std::vector<std::string> checkCandidate(const htg::Graph& graph,
                                        const cost::TimingModel& timing,
                                        const SolutionTable& table, NodeId node, int index,
                                        const InvariantOptions& options) {
  CandidateChecker checker(graph, timing, table, options);
  return checker.check(node, index);
}

std::vector<std::string> checkSolutionTable(const htg::Graph& graph,
                                            const cost::TimingModel& timing,
                                            const SolutionTable& table,
                                            const InvariantOptions& options) {
  std::vector<std::string> problems;
  const int C = timing.platform().numClasses();
  for (const auto& [id, set] : table) {
    if (set.size() == 0) {
      problems.push_back(strings::format("node %d: empty parallel set", id));
      continue;
    }
    for (ClassId c = 0; c < C; ++c)
      if (set.sequentialFor(c) < 0)
        problems.push_back(
            strings::format("node %d: no sequential candidate for class %d", id, c));
    CandidateChecker checker(graph, timing, table, options);
    for (int i = 0; i < static_cast<int>(set.size()); ++i)
      for (const std::string& p : checker.check(id, i))
        problems.push_back(strings::format("node %d cand %d: %s", id, i, p.c_str()));
  }
  return problems;
}

}  // namespace hetpar::verify
