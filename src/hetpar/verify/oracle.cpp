#include "hetpar/verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hetpar/parallel/genetic.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::verify {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Recursive enumerator for the task model. Order of nesting: monotone
/// child-to-task assignment, then task classes, then nested-candidate picks
/// (the pick menus depend on the hosting task's class). Every leaf calls
/// parallel::evaluateAssignment, which rejects budget violations itself.
class TaskEnumerator {
 public:
  explicit TaskEnumerator(const parallel::IlpRegion& region)
      : region_(region),
        N_(static_cast<int>(region.children.size())),
        C_(static_cast<int>(region.numProcsPerClass.size())),
        T_(std::max(1, region.maxTasks)) {
    childTask_.assign(static_cast<std::size_t>(N_), 0);
    childPick_.assign(static_cast<std::size_t>(N_), 0);
    taskClass_.assign(static_cast<std::size_t>(T_), region.seqPC);
  }

  OracleResult run() {
    assignTasks(0, 0);
    return std::move(result_);
  }

 private:
  void assignTasks(int n, int minTask) {
    if (n == N_) {
      assignClasses(1);
      return;
    }
    // Monotone task ids over the topological child order (Eq 10): anything
    // non-monotone is infeasible in the model, so skip it outright.
    for (int t = minTask; t < T_; ++t) {
      childTask_[static_cast<std::size_t>(n)] = t;
      assignTasks(n + 1, t);
    }
  }

  void assignClasses(int t) {
    if (t == T_) {
      assignPicks(0);
      return;
    }
    for (int c = 0; c < C_; ++c) {
      taskClass_[static_cast<std::size_t>(t)] = c;
      assignClasses(t + 1);
    }
  }

  void assignPicks(int n) {
    if (n == N_) {
      score();
      return;
    }
    const platform::ClassId cls =
        taskClass_[static_cast<std::size_t>(childTask_[static_cast<std::size_t>(n)])];
    const auto& menu =
        region_.children[static_cast<std::size_t>(n)].byClass[static_cast<std::size_t>(cls)];
    for (int s = 0; s < static_cast<int>(menu.size()); ++s) {
      childPick_[static_cast<std::size_t>(n)] = s;
      assignPicks(n + 1);
    }
  }

  void score() {
    ++result_.assignmentsTried;
    const double v =
        parallel::evaluateAssignment(region_, childTask_, taskClass_, childPick_);
    if (!std::isfinite(v)) return;
    if (!result_.feasible || v < result_.bestSeconds) {
      result_.feasible = true;
      result_.bestSeconds = v;
      result_.childTask = childTask_;
      result_.taskClass = taskClass_;
      result_.childPick = childPick_;
    }
  }

  const parallel::IlpRegion& region_;
  int N_, C_, T_;
  std::vector<int> childTask_;
  std::vector<int> childPick_;
  std::vector<platform::ClassId> taskClass_;
  OracleResult result_;
};

}  // namespace

OracleResult bruteForceTask(const parallel::IlpRegion& region) {
  const int classes = static_cast<int>(region.numProcsPerClass.size());
  require(static_cast<int>(region.children.size()) <= 8,
          "task oracle limited to <= 8 children");
  require(region.maxTasks <= 4, "task oracle limited to <= 4 tasks");
  require(classes <= 4, "task oracle limited to <= 4 classes");
  // At the widest class envelope the per-leaf factors (4^3 class maps x
  // deeper candidate menus) already multiply out; tighten the child cap so
  // the full product stays enumerable in test time.
  require(classes < 4 || static_cast<int>(region.children.size()) <= 5,
          "task oracle limited to <= 5 children at 4 classes");
  return TaskEnumerator(region).run();
}

namespace {

/// Cost of one chunked-loop assignment, mirroring solveChunkIlp: the main
/// task pays only its iteration share on seqPC; every extra opened task pays
/// TCO plus both comm latencies once and the comm slopes plus its class's
/// per-iteration time per assigned iteration. Makespan = max over tasks.
double chunkCost(const parallel::ChunkRegion& region,
                 const std::vector<platform::ClassId>& taskClass,
                 const std::vector<long long>& cnt) {
  double makespan = 0.0;
  for (std::size_t t = 0; t < cnt.size(); ++t) {
    const double n = static_cast<double>(cnt[t]);
    double cost;
    if (t == 0) {
      cost = region.secondsPerIter[static_cast<std::size_t>(region.seqPC)] * n;
    } else {
      cost = region.taskCreationSeconds + region.commInLatency + region.commOutLatency +
             (region.commInSecondsPerIter + region.commOutSecondsPerIter) * n +
             region.secondsPerIter[static_cast<std::size_t>(taskClass[t])] * n;
    }
    makespan = std::max(makespan, cost);
  }
  return makespan;
}

class ChunkEnumerator {
 public:
  explicit ChunkEnumerator(const parallel::ChunkRegion& region)
      : region_(region),
        C_(static_cast<int>(region.numProcsPerClass.size())),
        T_(std::max(1, region.maxTasks)) {}

  OracleResult run() {
    for (int k = 1; k <= std::min(T_, region_.maxProcs); ++k) {
      taskClass_.assign(static_cast<std::size_t>(k), region_.seqPC);
      cnt_.assign(static_cast<std::size_t>(k), 0);
      assignClasses(1, k);
    }
    return std::move(result_);
  }

 private:
  void assignClasses(int t, int k) {
    if (t == k) {
      if (!budgetOk(k)) return;
      splitIterations(0, k, region_.iterations);
      return;
    }
    for (int c = 0; c < C_; ++c) {
      taskClass_[static_cast<std::size_t>(t)] = c;
      assignClasses(t + 1, k);
    }
  }

  bool budgetOk(int k) const {
    std::vector<int> allocated(static_cast<std::size_t>(C_), 0);
    allocated[static_cast<std::size_t>(region_.seqPC)] += 1;
    for (int t = 1; t < k; ++t) allocated[static_cast<std::size_t>(taskClass_[static_cast<std::size_t>(t)])] += 1;
    for (int c = 0; c < C_; ++c)
      if (allocated[static_cast<std::size_t>(c)] >
          region_.numProcsPerClass[static_cast<std::size_t>(c)])
        return false;
    return true;
  }

  void splitIterations(int t, int k, long long remaining) {
    if (t == k - 1) {
      cnt_[static_cast<std::size_t>(t)] = remaining;
      score();
      return;
    }
    for (long long n = 0; n <= remaining; ++n) {
      cnt_[static_cast<std::size_t>(t)] = n;
      splitIterations(t + 1, k, remaining - n);
    }
  }

  void score() {
    ++result_.assignmentsTried;
    const double v = chunkCost(region_, taskClass_, cnt_);
    if (!result_.feasible || v < result_.bestSeconds) {
      result_.feasible = true;
      result_.bestSeconds = v;
      result_.taskClass = taskClass_;
    }
  }

  const parallel::ChunkRegion& region_;
  int C_, T_;
  std::vector<platform::ClassId> taskClass_;
  std::vector<long long> cnt_;
  OracleResult result_;
};

}  // namespace

OracleResult bruteForceChunk(const parallel::ChunkRegion& region) {
  require(region.iterations > 0 && region.iterations <= 64,
          "chunk oracle limited to <= 64 iterations");
  require(region.maxTasks <= 4, "chunk oracle limited to <= 4 tasks");
  require(static_cast<int>(region.numProcsPerClass.size()) <= 4,
          "chunk oracle limited to <= 4 classes");
  require(static_cast<int>(region.secondsPerIter.size()) ==
              static_cast<int>(region.numProcsPerClass.size()),
          "chunk oracle: per-class iteration times missing");
  return ChunkEnumerator(region).run();
}

parallel::IlpRegion randomTinyRegion(Rng& rng, const TinyRegionOptions& options) {
  parallel::IlpRegion region;
  const int C = static_cast<int>(rng.range(1, options.maxClasses));
  // Mirror the oracle's enumerability envelope: at 4 classes the child count
  // must stay <= 5 for the brute force to remain affordable.
  const int childCap = C >= 4 ? std::min(options.maxChildren, 5) : options.maxChildren;
  const int N = static_cast<int>(rng.range(options.minChildren, std::max(options.minChildren, childCap)));
  region.name = "tiny";
  region.seqPC = static_cast<platform::ClassId>(rng.below(static_cast<std::uint64_t>(C)));
  region.numProcsPerClass.resize(static_cast<std::size_t>(C));
  int totalProcs = 0;
  for (int c = 0; c < C; ++c) {
    region.numProcsPerClass[static_cast<std::size_t>(c)] = static_cast<int>(rng.range(1, 3));
    totalProcs += region.numProcsPerClass[static_cast<std::size_t>(c)];
  }
  region.maxProcs = static_cast<int>(rng.range(1, totalProcs));
  region.maxTasks = std::min(options.maxTasks, region.maxProcs);
  region.taskCreationSeconds = rng.uniform(2e-6, 20e-6);
  region.upperBoundSeconds = 0.0;  // keep the full space feasible

  for (int n = 0; n < N; ++n) {
    parallel::IlpChild child;
    child.label = strings::format("child%d", n);
    child.byClass.resize(static_cast<std::size_t>(C));
    for (int c = 0; c < C; ++c) {
      // First candidate per class consumes no extra processors, so the
      // all-in-main assignment is always feasible.
      parallel::IlpCandidate seq;
      seq.timeSeconds = rng.uniform(1e-6, 100e-6);
      seq.extraProcs.assign(static_cast<std::size_t>(C), 0);
      child.byClass[static_cast<std::size_t>(c)].push_back(seq);
      const int extraCands = static_cast<int>(rng.range(0, options.maxCandidatesPerClass - 1));
      for (int s = 0; s < extraCands; ++s) {
        parallel::IlpCandidate par;
        par.timeSeconds = seq.timeSeconds * rng.uniform(0.3, 0.9);
        par.extraProcs.assign(static_cast<std::size_t>(C), 0);
        par.extraProcs[rng.below(static_cast<std::uint64_t>(C))] = 1;
        // Deeper nested candidates: the second and later extras model a
        // nested region whose own solution fans out over a second class,
        // so their speedup costs processors from two budgets at once.
        if (s > 0 && C >= 2 && rng.chance(0.5)) {
          const auto other = rng.below(static_cast<std::uint64_t>(C));
          par.extraProcs[other] += 1;
          par.timeSeconds *= rng.uniform(0.5, 0.9);
        }
        child.byClass[static_cast<std::size_t>(c)].push_back(par);
      }
    }
    region.children.push_back(std::move(child));
  }

  for (int i = 0; i < N; ++i) {
    for (int j = i + 1; j < N; ++j) {
      if (!rng.chance(options.edgeProbability)) continue;
      parallel::IlpEdgeSpec e;
      e.from = i;
      e.to = j;
      e.orderingOnly = rng.chance(0.2);
      e.commSeconds = e.orderingOnly ? 0.0 : rng.uniform(0.5e-6, 20e-6);
      region.edges.push_back(e);
    }
  }
  for (int n = 0; n < N; ++n) {
    if (rng.chance(options.boundaryEdgeProbability)) {
      parallel::IlpEdgeSpec in;
      in.from = -1;
      in.to = n;
      in.commSeconds = rng.uniform(0.5e-6, 10e-6);
      region.edges.push_back(in);
    }
    if (rng.chance(options.boundaryEdgeProbability)) {
      parallel::IlpEdgeSpec out;
      out.from = n;
      out.to = N;
      out.commSeconds = rng.uniform(0.5e-6, 10e-6);
      region.edges.push_back(out);
    }
  }
  return region;
}

parallel::ChunkRegion randomTinyChunkRegion(Rng& rng, const TinyRegionOptions& options) {
  parallel::ChunkRegion region;
  const int C = static_cast<int>(rng.range(1, options.maxClasses));
  region.name = "tinychunk";
  region.iterations = rng.range(4, 48);
  region.seqPC = static_cast<platform::ClassId>(rng.below(static_cast<std::uint64_t>(C)));
  region.secondsPerIter.resize(static_cast<std::size_t>(C));
  for (int c = 0; c < C; ++c)
    region.secondsPerIter[static_cast<std::size_t>(c)] = rng.uniform(0.5e-6, 10e-6);
  region.commInLatency = rng.uniform(0.0, 3e-6);
  region.commOutLatency = rng.uniform(0.0, 3e-6);
  region.commInSecondsPerIter = rng.uniform(0.0, 0.5e-6);
  region.commOutSecondsPerIter = rng.uniform(0.0, 0.5e-6);
  region.numProcsPerClass.resize(static_cast<std::size_t>(C));
  int totalProcs = 0;
  for (int c = 0; c < C; ++c) {
    region.numProcsPerClass[static_cast<std::size_t>(c)] = static_cast<int>(rng.range(1, 3));
    totalProcs += region.numProcsPerClass[static_cast<std::size_t>(c)];
  }
  region.maxProcs = static_cast<int>(rng.range(1, totalProcs));
  region.maxTasks = std::min(options.maxTasks, region.maxProcs);
  region.taskCreationSeconds = rng.uniform(2e-6, 20e-6);
  region.upperBoundSeconds = 0.0;
  return region;
}

}  // namespace hetpar::verify
