#include "hetpar/verify/generator.hpp"

#include <sstream>

#include "hetpar/support/error.hpp"
#include "hetpar/support/rng.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::verify {

namespace {

/// Emits one self-contained top-level statement chunk at a time. The chunk
/// grammar matches the historical random_program_test generator; only the
/// array extent became configurable.
class ChunkGen {
 public:
  ChunkGen(Rng& rng, const GeneratorOptions& options) : rng_(rng), options_(options) {}

  std::string chunk() {
    os_.str("");
    statement(2);
    return os_.str();
  }

 private:
  int extent() const { return options_.arraySize; }

  void indent(int depth) {
    for (int i = 0; i < depth; ++i) os_ << "  ";
  }

  std::string array() {
    switch (rng_.below(3)) {
      case 0: return "ga";
      case 1: return "gb";
      default: return "gc";
    }
  }

  std::string expr(const std::string& iv) {
    std::ostringstream e;
    switch (rng_.below(5)) {
      case 0: e << rng_.range(1, 20); break;
      case 1: e << array() << "[" << iv << "]"; break;
      case 2: e << iv << " * " << rng_.range(1, 4); break;
      case 3: e << "helper(" << iv << ")"; break;
      default:
        e << array() << "[" << iv << "] + " << rng_.range(0, 8);
        break;
    }
    return e.str();
  }

  void statement(int depth) {
    if (depth > options_.maxDepth) return;
    switch (rng_.below(9)) {
      case 0: {  // elementwise loop
        const std::string iv = "i" + std::to_string(counter_++);
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < " << extent() << "; " << iv
            << " = " << iv << " + 1) {\n";
        indent(depth + 1);
        os_ << array() << "[" << iv << "] = " << expr(iv) << ";\n";
        if (rng_.chance(0.4)) statementInLoop(depth + 1, iv);
        indent(depth);
        os_ << "}\n";
        break;
      }
      case 1: {  // conditional scalar update
        const std::string v = "t" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << v << " = " << rng_.range(0, 30) << ";\n";
        indent(depth);
        os_ << "if (" << v << " > " << rng_.range(0, 30) << ") { " << v << " = " << v
            << " + 1; } else { " << v << " = " << v << " - 1; }\n";
        indent(depth);
        os_ << "gc[" << rng_.range(0, extent() - 1) << "] = " << v << ";\n";
        break;
      }
      case 2: {  // while countdown
        const std::string v = "w" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << v << " = " << rng_.range(1, 6) << ";\n";
        indent(depth);
        os_ << "while (" << v << " > 0) { gc[" << v << "] = gc[" << v << "] + 1; " << v
            << " = " << v << " - 1; }\n";
        break;
      }
      case 3: {  // reduction loop
        const std::string s = "r" + std::to_string(counter_++);
        const std::string iv = "i" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << s << " = 0;\n";
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < " << extent() << "; " << iv
            << " = " << iv << " + 1) { " << s << " = " << s << " + " << array() << "["
            << iv << "]; }\n";
        indent(depth);
        os_ << "gc[0] = " << s << " % 97;\n";
        break;
      }
      case 4: {  // adversarial shapes: section-analysis soundness probes
        switch (rng_.below(3)) {
          case 0: {  // loop body mutates its own induction variable
            const std::string iv = "i" + std::to_string(counter_++);
            indent(depth);
            os_ << "for (int " << iv << " = 0; " << iv << " < " << extent() << "; "
                << iv << " = " << iv << " + 1) {\n";
            indent(depth + 1);
            os_ << array() << "[" << iv << "] = " << array() << "[" << iv << "] + "
                << rng_.range(1, 8) << ";\n";
            indent(depth + 1);
            os_ << "if (" << iv << " % " << rng_.range(3, 5) << " == 1) { " << iv
                << " = " << iv << " + 1; }\n";
            indent(depth);
            os_ << "}\n";
            break;
          }
          case 1: {  // subscript variable written conditionally
            const std::string v = "x" + std::to_string(counter_++);
            const int half = extent() / 2;
            indent(depth);
            os_ << "int " << v << " = " << rng_.range(0, half - 1) << ";\n";
            indent(depth);
            os_ << "if (ga[0] > " << rng_.range(0, 9) << ") { " << v << " = " << v
                << " + " << half << "; }\n";
            indent(depth);
            os_ << array() << "[" << v << "] = " << array() << "[" << v << "] + "
                << rng_.range(1, 9) << ";\n";
            break;
          }
          default: {  // constant subscripts at the array boundaries
            indent(depth);
            os_ << array() << "[0] = " << array() << "[" << (extent() - 1) << "] + "
                << rng_.range(1, 9) << ";\n";
            indent(depth);
            os_ << array() << "[" << (extent() - 1) << "] = " << array() << "[0] + "
                << rng_.range(1, 9) << ";\n";
            break;
          }
        }
        break;
      }
      case 5: {  // dead stores: values overwritten before any read
        const std::string v = "d" + std::to_string(counter_++);
        const int k = static_cast<int>(rng_.range(0, extent() - 1));
        const std::string dst = array();
        indent(depth);
        os_ << "int " << v << " = " << array() << "[" << rng_.range(0, extent() - 1)
            << "] + " << rng_.range(1, 9) << ";\n";
        indent(depth);
        os_ << v << " = " << rng_.range(1, 30) << ";\n";  // kills the first store
        indent(depth);
        os_ << dst << "[" << k << "] = " << rng_.range(1, 9) << ";\n";
        indent(depth);
        os_ << dst << "[" << k << "] = " << v << ";\n";  // overwrites the same element
        break;
      }
      case 6: {  // write-only temporary: assigned in a loop, never read
        const std::string v = "z" + std::to_string(counter_++);
        const std::string iv = "i" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << v << " = 0;\n";
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < " << extent() << "; " << iv
            << " = " << iv << " + 1) { " << v << " = " << array() << "[" << iv << "] * "
            << rng_.range(1, 4) << "; " << array() << "[" << iv << "] = " << array()
            << "[" << iv << "] + 1; }\n";
        break;
      }
      case 7: {  // loop bound flowing through constant propagation
        const std::string a = "n" + std::to_string(counter_++);
        const std::string b = "m" + std::to_string(counter_++);
        const std::string iv = "i" + std::to_string(counter_++);
        const int base = static_cast<int>(rng_.range(2, extent() / 2));
        const int add = static_cast<int>(rng_.range(0, 2));
        const std::string dst = array();
        indent(depth);
        os_ << "int " << a << " = " << base << ";\n";
        indent(depth);
        os_ << "int " << b << " = " << a << " + " << add << ";\n";
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < " << b << "; " << iv << " = "
            << iv << " + 1) { " << dst << "[" << iv << "] = " << dst << "[" << iv
            << "] + " << rng_.range(1, 9) << "; }\n";
        break;
      }
      default: {  // affine-subscript loop (offset / strided / disjoint halves)
        const std::string iv = "i" + std::to_string(counter_++);
        const std::string dst = array();
        indent(depth);
        switch (rng_.below(3)) {
          case 0: {  // dst[iv + c] over [0, extent - c)
            const int c = static_cast<int>(rng_.range(1, 4));
            os_ << "for (int " << iv << " = 0; " << iv << " < " << (extent() - c) << "; "
                << iv << " = " << iv << " + 1) { " << dst << "[" << iv << " + " << c
                << "] = " << array() << "[" << iv << "] + " << rng_.range(0, 8)
                << "; }\n";
            break;
          }
          case 1: {  // dst[2 * iv] over [0, extent / 2)
            os_ << "for (int " << iv << " = 0; " << iv << " < " << extent() / 2 << "; "
                << iv << " = " << iv << " + 1) { " << dst << "[2 * " << iv
                << "] = " << array() << "[2 * " << iv << " + 1] + " << rng_.range(1, 9)
                << "; }\n";
            break;
          }
          default: {  // two loops over disjoint halves of one array
            const std::string iv2 = "i" + std::to_string(counter_++);
            const int half = extent() / 2;
            os_ << "for (int " << iv << " = 0; " << iv << " < " << half << "; " << iv
                << " = " << iv << " + 1) { " << dst << "[" << iv << "] = " << expr(iv)
                << "; }\n";
            indent(depth);
            os_ << "for (int " << iv2 << " = " << half << "; " << iv2 << " < "
                << extent() << "; " << iv2 << " = " << iv2 << " + 1) { " << dst << "["
                << iv2 << "] = " << expr(iv2) << "; }\n";
            break;
          }
        }
        break;
      }
    }
  }

  void statementInLoop(int depth, const std::string& iv) {
    indent(depth);
    os_ << "if (" << iv << " % 2 == 0) { " << array() << "[" << iv << "] = " << iv
        << "; }\n";
  }

  Rng& rng_;
  const GeneratorOptions& options_;
  std::ostringstream os_;
  int counter_ = 0;
};

}  // namespace

std::string GeneratedProgram::render() const {
  const int n = options.arraySize;
  std::ostringstream os;
  os << "int ga[" << n << "];\nint gb[" << n << "];\nint gc[" << n << "];\n";
  os << "int helper(int v) { return v * 3 + 1; }\n";
  os << "void fill(int dst[" << n << "], int base) {\n"
     << "  for (int i = 0; i < " << n << "; i = i + 1) { dst[i] = base + i; }\n"
     << "}\n";
  os << "int main() {\n";
  for (const std::string& s : statements) os << s;
  os << "  int acc = 0;\n";
  os << "  for (int i = 0; i < " << n << "; i = i + 1) { acc = acc + ga[i] + gb[i] + gc[i]; }\n";
  os << "  return acc + 1;\n";  // +1 keeps the checksum nonzero
  os << "}\n";
  return os.str();
}

GeneratedProgram GeneratedProgram::withStatements(std::vector<std::string> subset) const {
  GeneratedProgram out = *this;
  out.statements = std::move(subset);
  return out;
}

GeneratedProgram generateProgram(std::uint64_t seed, const GeneratorOptions& options) {
  require(options.arraySize >= 8, "generator arraySize must be >= 8");
  require(options.minStatements >= 0 && options.maxStatements >= options.minStatements,
          "generator statement bounds are inverted");
  GeneratedProgram program;
  program.options = options;
  program.seed = seed;

  Rng rng(seed);
  // The array fills are ordinary removable chunks: globals are
  // zero-initialized, so any subset still computes a valid checksum.
  program.statements.push_back(
      strings::format("  fill(ga, %d);\n", static_cast<int>(rng.range(1, 9))));
  program.statements.push_back(
      strings::format("  fill(gb, %d);\n", static_cast<int>(rng.range(1, 9))));

  ChunkGen gen(rng, program.options);
  const int chunks =
      static_cast<int>(rng.range(options.minStatements, options.maxStatements));
  for (int i = 0; i < chunks; ++i) program.statements.push_back(gen.chunk());
  return program;
}

platform::Platform generatePlatform(std::uint64_t seed,
                                    const PlatformGeneratorOptions& options) {
  Rng rng(seed ^ 0x9a7f0c5dULL);
  const int numClasses =
      static_cast<int>(rng.range(options.minClasses, options.maxClasses));
  std::vector<platform::ProcessorClass> classes;
  for (int c = 0; c < numClasses; ++c) {
    platform::ProcessorClass pc;
    pc.name = strings::format("c%d", c);
    pc.frequencyMHz = rng.uniform(options.minFrequencyMHz, options.maxFrequencyMHz);
    pc.count = static_cast<int>(rng.range(options.minCountPerClass, options.maxCountPerClass));
    classes.push_back(std::move(pc));
  }
  platform::Interconnect bus;
  bus.latencySeconds = rng.uniform(0.5e-6, 2e-6);
  bus.bytesPerSecond = rng.uniform(100e6, 800e6);
  const double tco = rng.uniform(options.minTcoMicros, options.maxTcoMicros) * 1e-6;
  platform::Platform pf(strings::format("fuzz%llu", static_cast<unsigned long long>(seed)),
                        std::move(classes), bus, tco);
  pf.validate();
  return pf;
}

}  // namespace hetpar::verify
