// Random fuzz-input generators: valid-by-construction mini-C programs and
// randomized (but always structurally valid) platform descriptions.
//
// Promoted out of tests/integration/random_program_test.cpp so the property
// tests, the differential fuzzer (tools/hetpar-fuzz) and the benches all
// share ONE generator: a bug class reproduced by the fuzzer is replayable
// byte-for-byte in a unit test from nothing but its seed.
//
// Programs are kept as a list of independent top-level statement chunks
// plus a fixed prologue/epilogue. Every chunk is self-contained (fresh
// local names, array accesses bounded by construction), so ANY subset of
// chunks renders to another valid program — the property the delta-debugging
// shrinker (hetpar/verify/reduce.hpp) relies on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hetpar/platform/platform.hpp"

namespace hetpar::verify {

struct GeneratorOptions {
  /// Extent of the global arrays and trip count of the element-wise loops.
  /// Must be >= 8 (the while-countdown chunk indexes up to 6). Larger values
  /// push regions past the parallelizer's granularity threshold, which is
  /// what the fuzzer wants; the seed tests keep the historical 32.
  int arraySize = 32;
  /// Number of random top-level statement chunks in main().
  int minStatements = 2;
  int maxStatements = 6;
  /// Nesting depth budget for generated statements.
  int maxDepth = 4;
};

/// A generated program, decomposed for shrinking.
struct GeneratedProgram {
  GeneratorOptions options;
  std::uint64_t seed = 0;
  /// Independent top-level chunks of main()'s body (each possibly several
  /// lines). Removing any subset leaves a valid program.
  std::vector<std::string> statements;

  /// Renders the full program: prologue, the chunks, checksum epilogue.
  std::string render() const;

  /// Copy with a different chunk subset (used by the shrinker).
  GeneratedProgram withStatements(std::vector<std::string> subset) const;
};

/// Deterministically generates a random structured program: global arrays,
/// nested loops, ifs, reductions and helper-function calls. All indices stay
/// in bounds and all loops terminate by construction.
GeneratedProgram generateProgram(std::uint64_t seed, const GeneratorOptions& options = {});

struct PlatformGeneratorOptions {
  int minClasses = 1;
  int maxClasses = 3;
  int minCountPerClass = 1;
  int maxCountPerClass = 3;
  double minFrequencyMHz = 100.0;
  double maxFrequencyMHz = 1000.0;
  /// Default TCO range is low enough that mid-size generated loops clear
  /// the granularity threshold — otherwise every fuzz case degenerates to
  /// sequential-only solutions and the relations check nothing.
  double minTcoMicros = 1.0;
  double maxTcoMicros = 10.0;
};

/// Deterministically generates a random valid heterogeneous platform
/// (classes, counts, frequencies, bus, TCO). `Platform::validate()` holds
/// for every seed.
platform::Platform generatePlatform(std::uint64_t seed,
                                    const PlatformGeneratorOptions& options = {});

}  // namespace hetpar::verify
