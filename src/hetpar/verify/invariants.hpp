// Structural and cost invariants every parallelization outcome must satisfy.
//
// This is a deliberately INDEPENDENT re-implementation of the solution
// semantics (paper Eq 1-18): it shares no code with the ILP model, the
// decoder, or the greedy fallback, so a silent wrong-answer bug in any of
// them — made likelier, not less likely, by the concurrent solve engine and
// the region cache — trips a check here instead of shipping a bogus
// "optimal" mapping. Checked per candidate:
//
//   * structure — every child assigned to exactly one task, chosen nested
//     candidates exist in the child's parallel set and belong to that child,
//     task ids are monotone over the (topological) child order so the
//     induced task graph is acyclic, the main task runs on the candidate's
//     tagged class;
//   * class consistency (Eq 17-18) — each chosen nested candidate's main
//     class equals the class of the task hosting the child;
//   * processor accounting (Eq 14-16) — `extraProcs` equals own extra tasks
//     plus the per-task/per-class maximum of the chosen nested candidates'
//     footprints, and the total per-class allocation fits the platform;
//   * cost re-derivation (Eq 8-9, 11) — the claimed `timeSeconds` is
//     reproduced from per-class node costs, communication charges and the
//     task-creation overhead by an independent longest-path evaluation,
//     within floating-point rounding.
#pragma once

#include <string>
#include <vector>

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/solution.hpp"

namespace hetpar::verify {

struct InvariantOptions {
  /// Tolerances for the cost re-derivation: |claimed - rederived| must be
  /// <= relTol * max(|claimed|, |rederived|) + absTolSeconds. The solver
  /// works in scaled microseconds with ~1e-7 feasibility tolerance plus a
  /// 1e-10 s per-task tie-break, so 1e-9 s absolute slack is generous.
  double relTol = 1e-6;
  double absTolSeconds = 1e-9;
};

/// Checks one candidate of `node`'s parallel set. Returns human-readable
/// problems; empty = all invariants hold.
std::vector<std::string> checkCandidate(const htg::Graph& graph,
                                        const cost::TimingModel& timing,
                                        const parallel::SolutionTable& table,
                                        htg::NodeId node, int index,
                                        const InvariantOptions& options = {});

/// Checks every candidate of every node in `table`, plus per-set guarantees
/// (non-empty, a sequential candidate per processor class). Problems are
/// prefixed with "node <id> cand <i>: " so a failure names its candidate.
std::vector<std::string> checkSolutionTable(const htg::Graph& graph,
                                            const cost::TimingModel& timing,
                                            const parallel::SolutionTable& table,
                                            const InvariantOptions& options = {});

}  // namespace hetpar::verify
