#include "hetpar/verify/metamorphic.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "hetpar/cost/interp.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/parallel/genetic.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/pipeline/session.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"
#include "hetpar/verify/invariants.hpp"
#include "hetpar/verify/oracle.hpp"

namespace hetpar::verify {

namespace {

bool closeEnough(double a, double b, double relTol, double absTol) {
  return std::abs(a - b) <= relTol * std::max(std::abs(a), std::abs(b)) + absTol;
}

RelationResult pass(Relation r) { return RelationResult{r, relationName(r), true, false, ""}; }

RelationResult fail(Relation r, std::string detail) {
  return RelationResult{r, relationName(r), false, false, std::move(detail)};
}

RelationResult skip(Relation r, std::string why) {
  return RelationResult{r, relationName(r), true, true, std::move(why)};
}

/// The verify harness is a pipeline client: its solves and frontend runs go
/// through the staged pipeline so every case feeds the process-wide pass
/// registry (hetpar-fuzz reports the totals in its JSON).
parallel::ParallelizeOutcome runPipeline(const htg::Graph& graph,
                                         const cost::TimingModel& timing,
                                         parallel::ParallelizerOptions options) {
  return pipeline::runParallelize(graph, timing, options);
}

/// Every cost in the platform scaled by `factor` (a power of two, so the
/// scaling is exact in floating point): cores `factor`x slower, bus
/// `factor`x slower in both latency and bandwidth, TCO `factor`x larger.
platform::Platform scaledPlatform(const platform::Platform& pf, double factor) {
  std::vector<platform::ProcessorClass> classes = pf.classes();
  for (auto& c : classes) c.frequencyMHz /= factor;
  platform::Interconnect bus = pf.interconnect();
  bus.latencySeconds *= factor;
  bus.bytesPerSecond /= factor;
  return platform::Platform(pf.name() + "_scaled", std::move(classes), bus,
                            pf.taskCreationOverheadSeconds() * factor);
}

ilp::SolveOptions deterministicSolverOptions() {
  ilp::SolveOptions so;
  so.timeLimitSeconds = 1e9;  // node cap only: wall clock must not matter
  so.maxNodes = 2'000'000;
  return so;
}

/// Same, but honoring the LP engine the caller configured (regression
/// replays re-run every region relation under both engines).
ilp::SolveOptions deterministicSolverOptions(const MetamorphicOptions& options) {
  ilp::SolveOptions so = deterministicSolverOptions();
  so.engine = options.parallelizer.solverEngine;
  return so;
}

// ---------------------------------------------------------------------------
// Program-level relations
// ---------------------------------------------------------------------------

RelationResult checkInvariants(const htg::Graph& graph, const cost::TimingModel& timing,
                               const MetamorphicOptions& options) {
  const parallel::ParallelizeOutcome outcome =
      runPipeline(graph, timing, options.parallelizer);
  InvariantOptions io;
  io.relTol = options.relTol;
  io.absTolSeconds = options.absTolSeconds;
  const std::vector<std::string> problems =
      checkSolutionTable(graph, timing, outcome.table, io);
  if (problems.empty()) return pass(Relation::Invariants);
  return fail(Relation::Invariants,
              strings::format("%zu invariant violations; first: %s", problems.size(),
                              problems.front().c_str()));
}

RelationResult checkCostScaling(const htg::Graph& graph, const platform::Platform& pf,
                                const MetamorphicOptions& options) {
  constexpr double kFactor = 4.0;
  const cost::TimingModel baseTiming(pf);
  const parallel::ParallelizeOutcome base =
      runPipeline(graph, baseTiming, options.parallelizer);

  const platform::Platform scaled = scaledPlatform(pf, kFactor);
  const cost::TimingModel scaledTiming(scaled);
  const parallel::ParallelizeOutcome slow =
      runPipeline(graph, scaledTiming, options.parallelizer);

  const parallel::ParallelSet& baseRoot = base.table.at(graph.root());
  const parallel::ParallelSet& slowRoot = slow.table.at(graph.root());
  for (int c = 0; c < static_cast<int>(pf.classes().size()); ++c) {
    const int bi = baseRoot.bestFor(c);
    const int si = slowRoot.bestFor(c);
    if ((bi < 0) != (si < 0))
      return fail(Relation::CostScaling,
                  strings::format("class %d: best candidate exists only in one run", c));
    if (bi < 0) continue;
    const double expected = baseRoot.at(bi).timeSeconds * kFactor;
    const double actual = slowRoot.at(si).timeSeconds;
    if (!closeEnough(actual, expected, options.relTol, options.absTolSeconds * kFactor))
      return fail(Relation::CostScaling,
                  strings::format("class %d: %gx-scaled platform best %.12g s, expected "
                                  "%.12g s (base %.12g s)",
                                  c, kFactor, actual, expected, baseRoot.at(bi).timeSeconds));
  }
  return pass(Relation::CostScaling);
}

RelationResult checkSingleClassHomogeneous(const htg::Graph& graph,
                                           const platform::Platform& pf,
                                           const MetamorphicOptions& options) {
  if (pf.classes().size() != 1)
    return skip(Relation::SingleClassHomogeneous, "platform has more than one class");
  const cost::TimingModel timing(pf);
  const parallel::ParallelizeOutcome het = runPipeline(graph, timing, options.parallelizer);
  const parallel::HomogeneousRun homog =
      parallel::runHomogeneousBaseline(graph, pf, 0, options.parallelizer);
  const std::string diff = diffSolutionTables(het.table, homog.outcome.table);
  if (diff.empty()) return pass(Relation::SingleClassHomogeneous);
  return fail(Relation::SingleClassHomogeneous,
              "heterogeneous and homogeneous runs disagree on a single-class "
              "platform: " +
                  diff);
}

RelationResult checkJobsInvariance(const htg::Graph& graph, const cost::TimingModel& timing,
                                   const MetamorphicOptions& options) {
  parallel::ParallelizerOptions seq = options.parallelizer;
  seq.jobs = 1;
  parallel::ParallelizerOptions par = options.parallelizer;
  par.jobs = 3;
  const parallel::ParallelizeOutcome a = runPipeline(graph, timing, seq);
  const parallel::ParallelizeOutcome b = runPipeline(graph, timing, par);
  const std::string diff = diffSolutionTables(a.table, b.table);
  if (diff.empty()) return pass(Relation::JobsInvariance);
  return fail(Relation::JobsInvariance, "--jobs 1 vs --jobs 3 outcomes differ: " + diff);
}

RelationResult checkCacheInvariance(const htg::Graph& graph, const cost::TimingModel& timing,
                                    const MetamorphicOptions& options) {
  parallel::ParallelizerOptions off = options.parallelizer;
  off.enableRegionCache = false;
  parallel::ParallelizerOptions on = options.parallelizer;
  on.enableRegionCache = true;
  const parallel::ParallelizeOutcome a = runPipeline(graph, timing, off);
  const parallel::ParallelizeOutcome b = runPipeline(graph, timing, on);
  const std::string diff = diffSolutionTables(a.table, b.table);
  if (!diff.empty())
    return fail(Relation::CacheInvariance, "region cache changed the outcome: " + diff);
  // Accounting: a hit replaces exactly one solve, so solves without the
  // cache == solves + hits with it.
  if (a.stats.numIlps != b.stats.numIlps + b.stats.cacheHits)
    return fail(Relation::CacheInvariance,
                strings::format("cache accounting broken: %lld uncached solves vs "
                                "%lld cached solves + %lld hits",
                                a.stats.numIlps, b.stats.numIlps, b.stats.cacheHits));
  return pass(Relation::CacheInvariance);
}

RelationResult checkSimConsistency(const htg::Graph& graph, const platform::Platform& pf,
                                   const MetamorphicOptions& options) {
  const cost::TimingModel timing(pf);
  const parallel::ParallelizeOutcome outcome =
      runPipeline(graph, timing, options.parallelizer);
  const parallel::ParallelSet& root = outcome.table.at(graph.root());

  std::vector<platform::ClassId> mains = {pf.fastestClass()};
  if (pf.slowestClass() != pf.fastestClass()) mains.push_back(pf.slowestClass());
  for (platform::ClassId mainClass : mains) {
    const int mainCore = pf.firstCoreOfClass(mainClass);

    // Sequential: claim and simulation derive from the same profile; only
    // the summation order differs.
    const int seqIdx = root.sequentialFor(mainClass);
    if (seqIdx < 0)
      return fail(Relation::SimConsistency,
                  strings::format("no sequential root candidate for class %d", mainClass));
    const double claimedSeq = root.at(seqIdx).timeSeconds;
    const sched::FlattenResult seq = sched::flattenSequential(graph, timing, mainCore);
    const double simSeq = sim::simulate(seq.graph).makespanSeconds;
    if (!closeEnough(simSeq, claimedSeq, options.seqSimRelTol, options.absTolSeconds))
      return fail(Relation::SimConsistency,
                  strings::format("class %d: sequential sim %.12g s vs claimed %.12g s",
                                  mainClass, simSeq, claimedSeq));

    // Parallel: the DES serializes the bus, so the band is generous.
    const parallel::SolutionRef best = outcome.bestRoot(graph, mainClass);
    if (!best.valid())
      return fail(Relation::SimConsistency,
                  strings::format("no best root candidate for class %d", mainClass));
    const double claimed = outcome.table.at(best.node).at(best.index).timeSeconds;
    const sched::FlattenResult flat =
        sched::flatten(graph, outcome.table, best, timing, mainCore);
    const double simPar = sim::simulate(flat.graph).makespanSeconds;
    if (simPar < claimed * options.simLowerFactor ||
        simPar > claimed * options.simUpperFactor)
      return fail(Relation::SimConsistency,
                  strings::format("class %d: parallel sim %.12g s outside [%g, %g] x "
                                  "claimed %.12g s",
                                  mainClass, simPar, options.simLowerFactor,
                                  options.simUpperFactor, claimed));
  }
  return pass(Relation::SimConsistency);
}

// ---------------------------------------------------------------------------
// Affine-dependence relations
// ---------------------------------------------------------------------------

/// The scope a node's *statement* lives in. Call nodes carry the callee as
/// their scope (their children live there), but the call-site statement —
/// and therefore its access summary — belongs to the caller.
const frontend::Function* stmtScope(const htg::Graph& g, const htg::Node& n) {
  if (n.kind == htg::NodeKind::Call && n.parent != htg::kNoNode)
    return g.node(n.parent).scope;
  return n.scope;
}

/// First variable on which the two nodes' subtree summaries may conflict
/// (write/write, write/read, or read/write on overlapping sections); "" when
/// provably independent. Identical names in different scopes only conflict
/// when the name is a global.
std::string sectionConflict(const htg::Graph& g, const frontend::SemaResult& sema,
                            const ir::SectionAnalysis& sa, htg::NodeId aId,
                            htg::NodeId bId) {
  const htg::Node& na = g.node(aId);
  const htg::Node& nb = g.node(bId);
  if (na.stmt == nullptr || nb.stmt == nullptr) return "";
  const ir::AccessSummary& a = sa.of(*na.stmt);
  const ir::AccessSummary& b = sa.of(*nb.stmt);
  const frontend::Function* fa = stmtScope(g, na);
  const frontend::Function* fb = stmtScope(g, nb);
  const auto clash = [&](const std::map<std::string, ir::SectionInfo>& x,
                         const std::map<std::string, ir::SectionInfo>& y) -> std::string {
    for (const auto& [v, sx] : x) {
      const auto it = y.find(v);
      if (it == y.end()) continue;
      if (fa != fb && sema.globals.count(v) == 0) continue;
      const frontend::Type* type = sa.typeOf(fa, v);
      if (type == nullptr ||
          ir::SectionAnalysis::mayOverlap(sx.hull, it->second.hull, *type))
        return v;
    }
    return "";
  };
  if (std::string v = clash(a.writes, b.writes); !v.empty()) return v;
  if (std::string v = clash(a.writes, b.reads); !v.empty()) return v;
  return clash(a.reads, b.writes);
}

RelationResult checkRefinementSoundness(const std::string& source) {
  constexpr Relation kR = Relation::RefinementSoundness;
  htg::FrontendBundle cons = pipeline::buildFrontend(source, ir::DependenceMode::Conservative);
  htg::FrontendBundle aff = pipeline::buildFrontend(source, ir::DependenceMode::Affine);
  htg::validateOrThrow(aff.graph);
  if (cons.graph.size() != aff.graph.size())
    return fail(kR, strings::format("graph sizes differ: %zu conservative vs %zu affine",
                                    cons.graph.size(), aff.graph.size()));

  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(cons.graph.size()); ++id) {
    const htg::Node& nc = cons.graph.node(id);
    const htg::Node& na = aff.graph.node(id);
    if (nc.kind != na.kind || nc.children != na.children)
      return fail(kR, strings::format("node %d: modes disagree on graph structure", id));
    if (!nc.isHierarchical()) continue;

    const int n = static_cast<int>(nc.children.size());
    std::map<htg::NodeId, int> childIndex;
    for (int i = 0; i < n; ++i)
      childIndex[nc.children[static_cast<std::size_t>(i)]] = i;

    // Conservative reachability among children (transitive closure), comm
    // variable sets, and the region byte total.
    std::vector<std::vector<bool>> reach(static_cast<std::size_t>(n),
                                         std::vector<bool>(static_cast<std::size_t>(n)));
    std::map<int, std::set<std::string>> consIn, consOut;
    long long consBytes = 0;
    for (const htg::Edge& e : nc.edges) {
      consBytes += e.bytes;
      if (e.from == nc.commIn) {
        auto& vars = consIn[childIndex.at(e.to)];
        vars.insert(e.vars.begin(), e.vars.end());
      } else if (e.to == nc.commOut) {
        auto& vars = consOut[childIndex.at(e.from)];
        vars.insert(e.vars.begin(), e.vars.end());
      } else {
        reach[static_cast<std::size_t>(childIndex.at(e.from))]
             [static_cast<std::size_t>(childIndex.at(e.to))] = true;
      }
    }
    for (int k = 0; k < n; ++k)
      for (int i = 0; i < n; ++i)
        if (reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])
          for (int j = 0; j < n; ++j)
            if (reach[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)])
              reach[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;

    long long affBytes = 0;
    for (const htg::Edge& e : na.edges) {
      affBytes += e.bytes;
      if (e.from == na.commIn) {
        const auto it = consIn.find(childIndex.at(e.to));
        for (const std::string& v : e.vars)
          if (it == consIn.end() || it->second.count(v) == 0)
            return fail(kR, strings::format("node %d child %d: affine comm-in var '%s' "
                                            "absent from the conservative comm-in set",
                                            id, childIndex.at(e.to), v.c_str()));
      } else if (e.to == na.commOut) {
        const auto it = consOut.find(childIndex.at(e.from));
        for (const std::string& v : e.vars)
          if (it == consOut.end() || it->second.count(v) == 0)
            return fail(kR, strings::format("node %d child %d: affine comm-out var '%s' "
                                            "absent from the conservative comm-out set",
                                            id, childIndex.at(e.from), v.c_str()));
      } else {
        const int from = childIndex.at(e.from);
        const int to = childIndex.at(e.to);
        if (!reach[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)])
          return fail(kR, strings::format("node %d: affine edge %d->%d (%s) is not in "
                                          "the conservative closure",
                                          id, from, to,
                                          e.vars.empty() ? "" : e.vars.front().c_str()));
      }
    }
    if (affBytes > consBytes)
      return fail(kR, strings::format("node %d: affine region bytes %lld exceed "
                                      "conservative %lld",
                                      id, affBytes, consBytes));
  }
  return pass(kR);
}

RelationResult checkScheduleValidity(const std::string& source, const platform::Platform& pf,
                                     const MetamorphicOptions& options) {
  constexpr Relation kR = Relation::ScheduleValidity;
  htg::FrontendBundle bundle = pipeline::buildFrontend(source, ir::DependenceMode::Affine);
  htg::validateOrThrow(bundle.graph);
  const cost::TimingModel timing(pf);
  parallel::ParallelizerOptions po = options.parallelizer;
  po.dependenceMode = ir::DependenceMode::Affine;
  const parallel::ParallelizeOutcome outcome = runPipeline(bundle.graph, timing, po);

  std::vector<platform::ClassId> mains = {pf.fastestClass()};
  if (pf.slowestClass() != pf.fastestClass()) mains.push_back(pf.slowestClass());
  for (platform::ClassId mainClass : mains) {
    const parallel::SolutionRef best = outcome.bestRoot(bundle.graph, mainClass);
    if (!best.valid())
      return fail(kR, strings::format("no best root candidate for class %d", mainClass));
    const sched::FlattenResult flat = sched::flatten(
        bundle.graph, outcome.table, best, timing, pf.firstCoreOfClass(mainClass));
    const sim::SimReport report = sim::simulate(flat.graph);

    // Two tasks with conflicting section summaries must never overlap in
    // simulated time (same-core tasks are serialized by the core itself;
    // same-source tasks are chunks of one DOALL loop, independent by the
    // loop-parallelism analysis).
    const auto& tasks = flat.graph.tasks;
    for (std::size_t a = 0; a < tasks.size(); ++a) {
      for (std::size_t b = a + 1; b < tasks.size(); ++b) {
        if (tasks[a].core == tasks[b].core) continue;
        if (tasks[a].sourceNode < 0 || tasks[b].sourceNode < 0) continue;
        if (tasks[a].sourceNode == tasks[b].sourceNode) continue;
        const double overlapStart = std::max(report.taskStart[a], report.taskStart[b]);
        const double overlapEnd = std::min(report.taskFinish[a], report.taskFinish[b]);
        if (overlapStart >= overlapEnd) continue;
        const std::string v = sectionConflict(bundle.graph, bundle.sema, *bundle.sections,
                                              tasks[a].sourceNode, tasks[b].sourceNode);
        if (!v.empty())
          return fail(kR, strings::format(
                              "class %d: tasks '%s' and '%s' conflict on '%s' but run "
                              "concurrently ([%.9g, %.9g] vs [%.9g, %.9g])",
                              mainClass, tasks[a].label.c_str(), tasks[b].label.c_str(),
                              v.c_str(), report.taskStart[a], report.taskFinish[a],
                              report.taskStart[b], report.taskFinish[b]));
      }
    }
  }
  return pass(kR);
}

RelationResult checkSectionSoundness(const std::string& source) {
  constexpr Relation kR = Relation::SectionSoundness;
  htg::FrontendBundle bundle = pipeline::buildFrontend(source, ir::DependenceMode::Affine);
  const frontend::Function& mainFn = bundle.program.entry();

  // Statement id -> index of its enclosing top-level statement of main().
  // The interpreter's attribution stack resolves through here, so callee
  // accesses land on the call site's top-level statement.
  std::map<int, int> topOf;
  for (std::size_t t = 0; t < mainFn.body.size(); ++t)
    frontend::forEachStmt(*mainFn.body[t],
                          [&](frontend::Stmt& s) { topOf[s.id] = static_cast<int>(t); });

  // A local (or parameter) shadowing a global array makes the storage-based
  // name attribution ambiguous; skip such variables entirely.
  std::set<std::string> shadowed;
  for (const auto& fn : bundle.program.functions) {
    for (const auto& p : fn->params)
      if (bundle.sema.globals.count(p.name) != 0) shadowed.insert(p.name);
    for (const auto& s : fn->body)
      frontend::forEachStmt(*s, [&](frontend::Stmt& st) {
        if (st.kind != frontend::StmtKind::Decl) return;
        const auto& d = static_cast<const frontend::DeclStmt&>(st);
        if (bundle.sema.globals.count(d.name) != 0) shadowed.insert(d.name);
      });
  }

  std::map<const void*, std::string> nameOfStorage;
  std::map<std::string, const void*> storageOfName;
  using ElemSet = std::set<std::vector<long long>>;
  std::map<std::pair<int, const void*>, ElemSet> reads, writes;

  cost::AccessObserver obs;
  obs.onGlobalArray = [&](const std::string& name, const void* storage) {
    nameOfStorage[storage] = name;
    storageOfName[name] = storage;
  };
  obs.onAccess = [&](const void* storage, const std::vector<long long>& idx, bool isWrite,
                     const std::vector<int>& attribution) {
    if (nameOfStorage.find(storage) == nameOfStorage.end()) return;  // local array
    for (int id : attribution) {
      const auto it = topOf.find(id);
      if (it == topOf.end()) continue;
      (isWrite ? writes : reads)[{it->second, storage}].insert(idx);
      return;  // attribute to the outermost enclosing main() statement only
    }
  };

  cost::ProgramProfile profile;
  try {
    profile = cost::interpret(bundle.program, bundle.sema, {}, {}, &obs);
  } catch (const Error& e) {
    return skip(kR, std::string("program does not execute cleanly: ") + e.what());
  }

  const auto inHull = [](const ir::ArraySection& hull, const std::vector<long long>& idx) {
    if (hull.whole) return true;
    if (hull.dims.size() != idx.size()) return false;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const ir::DimSection& d = hull.dims[k];
      if (idx[k] < d.lo || idx[k] > d.hi) return false;
      if ((idx[k] - d.lo) % d.stride != 0) return false;
    }
    return true;
  };
  const auto fmtIdx = [](const std::vector<long long>& idx) {
    std::string out;
    for (long long v : idx) out += strings::format("[%lld]", v);
    return out;
  };

  for (std::size_t t = 0; t < mainFn.body.size(); ++t) {
    const frontend::Stmt& stmt = *mainFn.body[t];
    const ir::AccessSummary& su = bundle.sections->of(stmt);

    // (a) Hull soundness: every traced access lies inside the claimed hull.
    for (const bool isWrite : {false, true}) {
      const auto& traced = isWrite ? writes : reads;
      const auto& claimed = isWrite ? su.writes : su.reads;
      const char* dir = isWrite ? "write" : "read";
      for (const auto& [key, elems] : traced) {
        if (key.first != static_cast<int>(t)) continue;
        const std::string& name = nameOfStorage.at(key.second);
        if (shadowed.count(name) != 0) continue;
        const auto it = claimed.find(name);
        if (it == claimed.end())
          return fail(kR, strings::format("statement %zu %ss '%s' but its summary has no %s "
                                          "entry for it",
                                          t, dir, name.c_str(), dir));
        for (const auto& idx : elems)
          if (!inHull(it->second.hull, idx))
            return fail(kR, strings::format(
                                "statement %zu: actual %s of '%s%s' escapes the claimed "
                                "hull %s",
                                t, dir, name.c_str(), fmtIdx(idx).c_str(),
                                ir::SectionAnalysis::toString(it->second.hull).c_str()));
      }
    }

    // (b) Kill-certainty soundness: a mustCover() write must really have
    // touched every element of its hull during the statement's execution.
    if (profile.stmts[static_cast<std::size_t>(stmt.id)].execCount != 1) continue;
    for (const auto& [name, info] : su.writes) {
      if (!info.mustCover() || shadowed.count(name) != 0) continue;
      const auto git = bundle.sema.globals.find(name);
      if (git == bundle.sema.globals.end() || git->second.dims.empty()) continue;
      const frontend::Type& type = git->second;
      std::vector<ir::DimSection> dims;
      if (!info.hull.whole && info.hull.dims.size() == type.dims.size()) {
        dims = info.hull.dims;
      } else {
        for (int extent : type.dims) dims.push_back(ir::DimSection{0, extent - 1, 1});
      }
      const auto wit = writes.find({static_cast<int>(t), storageOfName.at(name)});
      const ElemSet* written = wit == writes.end() ? nullptr : &wit->second;
      std::vector<long long> idx(dims.size());
      std::function<std::string(std::size_t)> walk = [&](std::size_t k) -> std::string {
        if (k == dims.size()) {
          if (written == nullptr || written->count(idx) == 0)
            return strings::format("statement %zu claims a definite exact write of '%s' "
                                   "hull %s but never wrote element %s",
                                   t, name.c_str(),
                                   ir::SectionAnalysis::toString(info.hull).c_str(),
                                   fmtIdx(idx).c_str());
          return "";
        }
        for (long long v = dims[k].lo; v <= dims[k].hi; v += dims[k].stride) {
          idx[k] = v;
          if (std::string err = walk(k + 1); !err.empty()) return err;
        }
        return "";
      };
      if (std::string err = walk(0); !err.empty()) return fail(kR, err);
    }
  }
  return pass(kR);
}

RelationResult checkLivenessSoundness(const std::string& source) {
  constexpr Relation kR = Relation::LivenessSoundness;
  htg::FrontendBundle bundle =
      pipeline::buildFrontend(source, ir::DependenceMode::Affine, ir::FlowMode::Live);
  HETPAR_CHECK(bundle.dataflow != nullptr);
  const ir::DataflowAnalysis& dfa = *bundle.dataflow;
  const frontend::Function& mainFn = bundle.program.entry();

  // Statement id -> index of its enclosing top-level statement of main()
  // (same attribution scheme as SectionSoundness: callee accesses land on
  // their call site).
  std::map<int, int> topOf;
  for (std::size_t t = 0; t < mainFn.body.size(); ++t)
    frontend::forEachStmt(*mainFn.body[t],
                          [&](frontend::Stmt& s) { topOf[s.id] = static_cast<int>(t); });

  // Storage-based name attribution is ambiguous for shadowed globals.
  std::set<std::string> shadowed;
  for (const auto& fn : bundle.program.functions) {
    for (const auto& p : fn->params)
      if (bundle.sema.globals.count(p.name) != 0) shadowed.insert(p.name);
    for (const auto& s : fn->body)
      frontend::forEachStmt(*s, [&](frontend::Stmt& st) {
        if (st.kind != frontend::StmtKind::Decl) return;
        const auto& d = static_cast<const frontend::DeclStmt&>(st);
        if (bundle.sema.globals.count(d.name) != 0) shadowed.insert(d.name);
      });
  }

  // Element-level def-use chains across top-level statements: when a value
  // written under statement t is read under a later statement t', it flowed
  // across every boundary in [t, t'), so liveness must keep the array alive
  // after each of those statements. (Top-level statements execute in order,
  // so the write's index never exceeds the read's.)
  std::map<const void*, std::string> nameOfStorage;
  std::map<std::pair<const void*, std::vector<long long>>, int> lastWrite;
  std::string violation;

  cost::AccessObserver obs;
  obs.onGlobalArray = [&](const std::string& name, const void* storage) {
    nameOfStorage[storage] = name;
  };
  obs.onAccess = [&](const void* storage, const std::vector<long long>& idx, bool isWrite,
                     const std::vector<int>& attribution) {
    if (!violation.empty()) return;
    const auto nit = nameOfStorage.find(storage);
    if (nit == nameOfStorage.end()) return;  // local array
    int top = -1;
    for (int id : attribution) {
      const auto it = topOf.find(id);
      if (it != topOf.end()) {
        top = it->second;
        break;
      }
    }
    if (top < 0) return;  // not under a top-level statement of main()
    const std::pair<const void*, std::vector<long long>> key{storage, idx};
    if (isWrite) {
      lastWrite[key] = top;
      return;
    }
    if (shadowed.count(nit->second) != 0) return;
    const auto wit = lastWrite.find(key);
    // Never written: the zero-initialized value flows from program start.
    const int tw = wit == lastWrite.end() ? 0 : wit->second;
    for (int t = tw; t < top && violation.empty(); ++t) {
      const std::set<std::string>& live =
          dfa.liveAfter(*mainFn.body[static_cast<std::size_t>(t)]);
      if (live.count(nit->second) == 0)
        violation = strings::format(
            "'%s%s' is %s and read under statement %d, but liveness kills '%s' "
            "after statement %d",
            nit->second.c_str(),
            [&] {
              std::string out;
              for (long long v : idx) out += strings::format("[%lld]", v);
              return out;
            }()
                .c_str(),
            wit == lastWrite.end()
                ? "never written"
                : strings::format("written under statement %d", tw).c_str(),
            top, nit->second.c_str(), t);
    }
  };

  try {
    cost::interpret(bundle.program, bundle.sema, {}, {}, &obs);
  } catch (const Error& e) {
    return skip(kR, std::string("program does not execute cleanly: ") + e.what());
  }
  if (!violation.empty()) return fail(kR, violation);
  return pass(kR);
}

RelationResult checkFlowRefinement(const std::string& source) {
  constexpr Relation kR = Relation::FlowRefinement;
  htg::FrontendBundle cons = pipeline::buildFrontend(source, ir::DependenceMode::Affine,
                                                     ir::FlowMode::Conservative);
  htg::FrontendBundle live =
      pipeline::buildFrontend(source, ir::DependenceMode::Affine, ir::FlowMode::Live);
  htg::validateOrThrow(live.graph);
  if (cons.graph.size() != live.graph.size())
    return fail(kR, strings::format("graph sizes differ: %zu conservative vs %zu live",
                                    cons.graph.size(), live.graph.size()));

  for (htg::NodeId id = 0; id < static_cast<htg::NodeId>(cons.graph.size()); ++id) {
    const htg::Node& nc = cons.graph.node(id);
    const htg::Node& nl = live.graph.node(id);
    if (nc.kind != nl.kind || nc.children != nl.children)
      return fail(kR, strings::format("node %d: flow modes disagree on graph structure", id));
    if (!nc.isHierarchical()) continue;

    std::map<htg::NodeId, int> childIndex;
    for (std::size_t i = 0; i < nc.children.size(); ++i)
      childIndex[nc.children[i]] = static_cast<int>(i);

    // Conservative per-child comm variable sets and byte totals, plus the
    // sibling edge set (liveness pruning must leave sibling edges alone).
    std::map<int, std::set<std::string>> consIn, consOut;
    std::map<int, long long> consInBytes, consOutBytes;
    std::set<std::pair<int, int>> consSib;
    long long consBytes = 0;
    for (const htg::Edge& e : nc.edges) {
      consBytes += e.bytes;
      if (e.from == nc.commIn) {
        const int child = childIndex.at(e.to);
        consIn[child].insert(e.vars.begin(), e.vars.end());
        consInBytes[child] += e.bytes;
      } else if (e.to == nc.commOut) {
        const int child = childIndex.at(e.from);
        consOut[child].insert(e.vars.begin(), e.vars.end());
        consOutBytes[child] += e.bytes;
      } else {
        consSib.insert({childIndex.at(e.from), childIndex.at(e.to)});
      }
    }

    std::map<int, long long> liveInBytes, liveOutBytes;
    long long liveBytes = 0;
    for (const htg::Edge& e : nl.edges) {
      liveBytes += e.bytes;
      if (e.from == nl.commIn) {
        const int child = childIndex.at(e.to);
        const auto it = consIn.find(child);
        for (const std::string& v : e.vars)
          if (it == consIn.end() || it->second.count(v) == 0)
            return fail(kR, strings::format("node %d child %d: live comm-in var '%s' "
                                            "absent from the conservative comm-in set",
                                            id, child, v.c_str()));
        liveInBytes[child] += e.bytes;
      } else if (e.to == nl.commOut) {
        const int child = childIndex.at(e.from);
        const auto it = consOut.find(child);
        for (const std::string& v : e.vars)
          if (it == consOut.end() || it->second.count(v) == 0)
            return fail(kR, strings::format("node %d child %d: live comm-out var '%s' "
                                            "absent from the conservative comm-out set",
                                            id, child, v.c_str()));
        liveOutBytes[child] += e.bytes;
      } else {
        if (consSib.count({childIndex.at(e.from), childIndex.at(e.to)}) == 0)
          return fail(kR, strings::format("node %d: live mode introduced sibling edge "
                                          "%d->%d",
                                          id, childIndex.at(e.from), childIndex.at(e.to)));
      }
    }

    for (const auto& [child, bytes] : liveInBytes)
      if (bytes > consInBytes[child])
        return fail(kR, strings::format("node %d child %d: live comm-in bytes %lld exceed "
                                        "conservative %lld",
                                        id, child, bytes, consInBytes[child]));
    for (const auto& [child, bytes] : liveOutBytes)
      if (bytes > consOutBytes[child])
        return fail(kR, strings::format("node %d child %d: live comm-out bytes %lld "
                                        "exceed conservative %lld",
                                        id, child, bytes, consOutBytes[child]));
    if (liveBytes > consBytes)
      return fail(kR, strings::format("node %d: live region bytes %lld exceed "
                                      "conservative %lld",
                                      id, liveBytes, consBytes));
  }
  return pass(kR);
}

// ---------------------------------------------------------------------------
// Region-level relations
// ---------------------------------------------------------------------------

RelationResult checkGaVsIlp(std::uint64_t seed, const MetamorphicOptions& options) {
  Rng rng(seed);
  const parallel::IlpRegion region = randomTinyRegion(rng);
  ilp::BranchAndBoundSolver solver(deterministicSolverOptions(options));
  const parallel::IlpParResult ilp = parallel::solveIlpPar(region, solver);
  if (!ilp.feasible || !ilp.provenOptimal)
    return skip(Relation::GaVsIlp, "ILP did not prove optimality within limits");
  parallel::GaOptions ga;
  ga.seed = seed * 2654435761u + 1;
  const parallel::IlpParResult evolved = parallel::solveGaPar(region, ga);
  if (!evolved.feasible) return pass(Relation::GaVsIlp);  // GA may fail; it must not win
  // The ILP's reported time may sit a hair above the true optimum (the
  // vanishing open-task penalty), hence the tolerance.
  if (evolved.timeSeconds <
      ilp.timeSeconds - (options.relTol * ilp.timeSeconds + options.absTolSeconds))
    return fail(Relation::GaVsIlp,
                strings::format("GA found %.12g s, beating the 'optimal' ILP's %.12g s",
                                evolved.timeSeconds, ilp.timeSeconds));
  return pass(Relation::GaVsIlp);
}

RelationResult checkOracleTask(std::uint64_t seed, const MetamorphicOptions& options) {
  Rng rng(seed);
  const parallel::IlpRegion region = randomTinyRegion(rng);
  ilp::BranchAndBoundSolver solver(deterministicSolverOptions(options));
  const parallel::IlpParResult ilp = parallel::solveIlpPar(region, solver);
  const OracleResult oracle = bruteForceTask(region);
  if (!oracle.feasible)
    return fail(Relation::OracleTask, "oracle found no feasible assignment (generator bug)");
  if (!ilp.feasible)
    return fail(Relation::OracleTask,
                strings::format("ILP infeasible but brute force achieves %.12g s",
                                oracle.bestSeconds));
  if (!ilp.provenOptimal)
    return skip(Relation::OracleTask, "ILP did not prove optimality within limits");
  if (!closeEnough(ilp.timeSeconds, oracle.bestSeconds, options.relTol,
                   options.absTolSeconds))
    return fail(Relation::OracleTask,
                strings::format("ILP claims %.12g s but exhaustive optimum over %lld "
                                "assignments is %.12g s",
                                ilp.timeSeconds, oracle.assignmentsTried,
                                oracle.bestSeconds));
  return pass(Relation::OracleTask);
}

RelationResult checkOracleChunk(std::uint64_t seed, const MetamorphicOptions& options) {
  Rng rng(seed);
  const parallel::ChunkRegion region = randomTinyChunkRegion(rng);
  ilp::BranchAndBoundSolver solver(deterministicSolverOptions(options));
  const parallel::ChunkResult ilp = parallel::solveChunkIlp(region, solver);
  const OracleResult oracle = bruteForceChunk(region);
  if (!oracle.feasible)
    return fail(Relation::OracleChunk, "oracle found no feasible split (generator bug)");
  if (!ilp.feasible)
    return fail(Relation::OracleChunk,
                strings::format("chunk ILP infeasible but brute force achieves %.12g s",
                                oracle.bestSeconds));
  if (!ilp.provenOptimal)
    return skip(Relation::OracleChunk, "chunk ILP did not prove optimality within limits");
  if (!closeEnough(ilp.timeSeconds, oracle.bestSeconds, options.relTol,
                   options.absTolSeconds))
    return fail(Relation::OracleChunk,
                strings::format("chunk ILP claims %.12g s but exhaustive optimum over "
                                "%lld splits is %.12g s",
                                ilp.timeSeconds, oracle.assignmentsTried,
                                oracle.bestSeconds));
  return pass(Relation::OracleChunk);
}

RelationResult checkSolverDifferential(std::uint64_t seed, const MetamorphicOptions& options) {
  Rng rng(seed);
  // Wider than the oracle relations: no enumeration happens here (the dense
  // engine is the reference), so the instances can afford oracle-cap sizes.
  TinyRegionOptions tiny;
  tiny.maxChildren = 8;
  tiny.maxTasks = 4;

  ilp::SolveOptions denseOpts = deterministicSolverOptions();
  denseOpts.engine = ilp::SolverEngine::Dense;
  ilp::SolveOptions revisedOpts = deterministicSolverOptions();
  revisedOpts.engine = ilp::SolverEngine::Revised;
  ilp::BranchAndBoundSolver dense(denseOpts);
  ilp::BranchAndBoundSolver revised(revisedOpts);

  bool dFeasible, rFeasible, dProven, rProven;
  double dSeconds, rSeconds;
  const char* kind;
  if ((seed & 1) == 0) {
    kind = "task";
    const parallel::IlpRegion region = randomTinyRegion(rng, tiny);
    const parallel::IlpParResult d = parallel::solveIlpPar(region, dense);
    const parallel::IlpParResult r = parallel::solveIlpPar(region, revised);
    dFeasible = d.feasible; rFeasible = r.feasible;
    dProven = d.provenOptimal; rProven = r.provenOptimal;
    dSeconds = d.timeSeconds; rSeconds = r.timeSeconds;
  } else {
    kind = "chunk";
    const parallel::ChunkRegion region = randomTinyChunkRegion(rng, tiny);
    const parallel::ChunkResult d = parallel::solveChunkIlp(region, dense);
    const parallel::ChunkResult r = parallel::solveChunkIlp(region, revised);
    dFeasible = d.feasible; rFeasible = r.feasible;
    dProven = d.provenOptimal; rProven = r.provenOptimal;
    dSeconds = d.timeSeconds; rSeconds = r.timeSeconds;
  }

  if (dFeasible != rFeasible)
    return fail(Relation::SolverDifferential,
                strings::format("%s region: dense says %s, revised says %s", kind,
                                dFeasible ? "feasible" : "infeasible",
                                rFeasible ? "feasible" : "infeasible"));
  if (!dFeasible) return pass(Relation::SolverDifferential);
  if (!dProven || !rProven)
    return skip(Relation::SolverDifferential,
                "an engine did not prove optimality within limits");
  if (!closeEnough(dSeconds, rSeconds, options.relTol, options.absTolSeconds))
    return fail(Relation::SolverDifferential,
                strings::format("%s region: dense optimum %.12g s vs revised %.12g s",
                                kind, dSeconds, rSeconds));
  return pass(Relation::SolverDifferential);
}

}  // namespace

parallel::ParallelizerOptions MetamorphicOptions::deterministicOptions() {
  parallel::ParallelizerOptions o;
  // Wall-clock solver limits are the only nondeterminism boundary; replace
  // them with a (deterministic) node cap as the jobs-invariance tests do.
  o.ilpTimeLimitSeconds = 1e9;
  o.ilpMaxNodes = 2'000;
  // Paper-realistic region sizes: the sparse revised simplex keeps the
  // per-region models cheap enough that the fuzz profile no longer needs to
  // shrink them (the dense engine forced 2 tasks / 8 chunks here).
  o.maxTasksPerRegion = 4;
  o.maxCandidatesPerClass = 2;
  o.chunkCount = 16;
  return o;
}

std::vector<Relation> allRelations() {
  return {Relation::Invariants,     Relation::CostScaling,
          Relation::SingleClassHomogeneous, Relation::JobsInvariance,
          Relation::CacheInvariance, Relation::GaVsIlp,
          Relation::OracleTask,     Relation::OracleChunk,
          Relation::SolverDifferential,
          Relation::SimConsistency, Relation::RefinementSoundness,
          Relation::ScheduleValidity, Relation::SectionSoundness,
          Relation::LivenessSoundness, Relation::FlowRefinement};
}

std::string relationName(Relation r) {
  switch (r) {
    case Relation::Invariants: return "invariants";
    case Relation::CostScaling: return "cost-scaling";
    case Relation::SingleClassHomogeneous: return "single-class-homogeneous";
    case Relation::JobsInvariance: return "jobs-invariance";
    case Relation::CacheInvariance: return "cache-invariance";
    case Relation::GaVsIlp: return "ga-vs-ilp";
    case Relation::OracleTask: return "oracle-task";
    case Relation::OracleChunk: return "oracle-chunk";
    case Relation::SolverDifferential: return "solver-differential";
    case Relation::SimConsistency: return "sim-consistency";
    case Relation::RefinementSoundness: return "refinement-soundness";
    case Relation::ScheduleValidity: return "schedule-validity";
    case Relation::SectionSoundness: return "section-soundness";
    case Relation::LivenessSoundness: return "liveness-soundness";
    case Relation::FlowRefinement: return "flow-refinement";
  }
  return "unknown";
}

std::vector<Relation> parseRelations(const std::string& spec) {
  if (strings::trim(spec) == "all") return allRelations();
  std::vector<Relation> out;
  for (const std::string& part : strings::split(spec, ',')) {
    const std::string name(strings::trim(part));
    if (name.empty()) continue;
    bool found = false;
    for (Relation r : allRelations()) {
      if (relationName(r) == name) {
        out.push_back(r);
        found = true;
        break;
      }
    }
    require(found, "unknown relation: " + name);
  }
  require(!out.empty(), "empty relation list");
  return out;
}

bool isProgramRelation(Relation r) {
  switch (r) {
    case Relation::GaVsIlp:
    case Relation::OracleTask:
    case Relation::OracleChunk:
    case Relation::SolverDifferential:
      return false;
    default:
      return true;
  }
}

std::string diffSolutionTables(const parallel::SolutionTable& a,
                               const parallel::SolutionTable& b) {
  if (a.size() != b.size())
    return strings::format("table sizes differ: %zu vs %zu nodes", a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return strings::format("node ids differ: %d vs %d", ia->first, ib->first);
    const parallel::ParallelSet& sa = ia->second;
    const parallel::ParallelSet& sb = ib->second;
    if (sa.size() != sb.size())
      return strings::format("node %d: %zu vs %zu candidates", ia->first, sa.size(),
                             sb.size());
    for (int i = 0; i < static_cast<int>(sa.size()); ++i) {
      const parallel::SolutionCandidate& ca = sa.at(i);
      const parallel::SolutionCandidate& cb = sb.at(i);
      const auto where = [&](const char* field) {
        return strings::format("node %d cand %d: %s differs", ia->first, i, field);
      };
      if (ca.kind != cb.kind) return where("kind");
      if (ca.mainClass != cb.mainClass) return where("mainClass");
      if (ca.timeSeconds != cb.timeSeconds) return where("timeSeconds");
      if (ca.extraProcs != cb.extraProcs) return where("extraProcs");
      if (ca.taskClass != cb.taskClass) return where("taskClass");
      if (ca.childTask != cb.childTask) return where("childTask");
      if (ca.chunkIterations != cb.chunkIterations) return where("chunkIterations");
      if (ca.childChoice.size() != cb.childChoice.size()) return where("childChoice size");
      for (std::size_t k = 0; k < ca.childChoice.size(); ++k)
        if (ca.childChoice[k].node != cb.childChoice[k].node ||
            ca.childChoice[k].index != cb.childChoice[k].index)
          return where("childChoice");
    }
  }
  return "";
}

RelationResult checkProgramRelation(Relation r, const std::string& source,
                                    const platform::Platform& pf,
                                    const MetamorphicOptions& options) {
  require(isProgramRelation(r), "relation " + relationName(r) + " is region-level");
  htg::FrontendBundle bundle = pipeline::buildFrontend(source);
  htg::validateOrThrow(bundle.graph);
  const cost::TimingModel timing(pf);
  switch (r) {
    case Relation::Invariants:
      return checkInvariants(bundle.graph, timing, options);
    case Relation::CostScaling:
      return checkCostScaling(bundle.graph, pf, options);
    case Relation::SingleClassHomogeneous:
      return checkSingleClassHomogeneous(bundle.graph, pf, options);
    case Relation::JobsInvariance:
      return checkJobsInvariance(bundle.graph, timing, options);
    case Relation::CacheInvariance:
      return checkCacheInvariance(bundle.graph, timing, options);
    case Relation::SimConsistency:
      return checkSimConsistency(bundle.graph, pf, options);
    case Relation::RefinementSoundness:
      return checkRefinementSoundness(source);
    case Relation::ScheduleValidity:
      return checkScheduleValidity(source, pf, options);
    case Relation::SectionSoundness:
      return checkSectionSoundness(source);
    case Relation::LivenessSoundness:
      return checkLivenessSoundness(source);
    case Relation::FlowRefinement:
      return checkFlowRefinement(source);
    default:
      break;
  }
  throw Error("unhandled program relation");
}

RelationResult checkRegionRelation(Relation r, std::uint64_t seed,
                                   const MetamorphicOptions& options) {
  switch (r) {
    case Relation::GaVsIlp:
      return checkGaVsIlp(seed, options);
    case Relation::OracleTask:
      return checkOracleTask(seed, options);
    case Relation::OracleChunk:
      return checkOracleChunk(seed, options);
    case Relation::SolverDifferential:
      return checkSolverDifferential(seed, options);
    default:
      break;
  }
  throw Error("relation " + relationName(r) + " is program-level");
}

}  // namespace hetpar::verify
