// Delta-debugging shrinker for failing fuzz inputs (Zeller & Hildebrandt's
// ddmin, TSE 2002), specialized to the chunked program generator: the unit
// of removal is one independent top-level statement chunk, so every subset
// the algorithm probes is again a valid program.
#pragma once

#include <functional>

#include "hetpar/verify/generator.hpp"

namespace hetpar::verify {

/// Returns true when the program still exhibits the failure being chased.
/// The predicate must treat a crash/throw of the system under test as
/// "still failing" itself — the shrinker only sees the boolean.
using FailurePredicate = std::function<bool(const GeneratedProgram&)>;

struct ReduceResult {
  GeneratedProgram program;  ///< 1-minimal over chunk removal
  int probes = 0;            ///< predicate evaluations spent
};

/// Shrinks `program` to a chunk-set 1-minimal failing input: removing any
/// single remaining chunk makes the failure disappear. `failing(program)`
/// must be true on entry (throws hetpar::Error otherwise — a shrink request
/// for a passing input is a harness bug).
ReduceResult reduceProgram(const GeneratedProgram& program, const FailurePredicate& failing);

}  // namespace hetpar::verify
