// Heterogeneous MPSoC platform description.
//
// Mirrors the paper's platform description input [18]: processor classes
// (identical processing units grouped by performance characteristics), the
// number of units per class, a shared interconnect, and the task-creation
// overhead used by the ILP cost model (the `TCO` constant of Eq 8).
//
// Times are modeled in seconds; statement costs are abstract operation
// counts ("ops") which a class executes at `frequencyMHz` million ops per
// second scaled by `cyclesPerOp`. Same-ISA heterogeneity (the paper's
// big.LITTLE-style targets) varies only frequency; `cyclesPerOp` permits
// modeling micro-architectural differences as well.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hetpar::platform {

/// A group of identical processing units (paper: "processor class").
struct ProcessorClass {
  std::string name;
  double frequencyMHz = 0.0;
  int count = 0;             ///< processing units of this class (NUMPROCS_c)
  double cyclesPerOp = 1.0;  ///< abstract CPI; 1.0 for the paper's same-ISA cores
  /// Optional power model (0 = derive from frequency; see hetpar/sim/energy.hpp).
  double wattsActive = 0.0;
  double wattsIdle = 0.0;
  /// Per-op-kind cost multipliers enabling cross-ISA platforms (order:
  /// int-ALU, float-ALU, memory, control; 1.0 = same-ISA baseline). A DSP
  /// class might use {1.0, 0.25, 1.0, 2.0}: fast float units, weak control.
  double kindFactor[4] = {1.0, 1.0, 1.0, 1.0};
};

/// Shared bus connecting all cores (paper: "high performance bus" + L2).
struct Interconnect {
  double latencySeconds = 1e-6;      ///< fixed per-transfer startup cost
  double bytesPerSecond = 400.0e6;   ///< sustained bandwidth
};

/// Index of a processor class within a Platform.
using ClassId = int;

/// Full platform model handed to the parallelizer and the simulator.
class Platform {
 public:
  Platform() = default;
  Platform(std::string name, std::vector<ProcessorClass> classes, Interconnect interconnect,
           double taskCreationOverheadSeconds);

  const std::string& name() const { return name_; }
  const std::vector<ProcessorClass>& classes() const { return classes_; }
  const ProcessorClass& classAt(ClassId c) const;
  int numClasses() const { return static_cast<int>(classes_.size()); }

  /// Total processing units over all classes.
  int numCores() const;

  const Interconnect& interconnect() const { return interconnect_; }
  double taskCreationOverheadSeconds() const { return tcoSeconds_; }

  /// Seconds class `c` needs for `ops` abstract operations.
  double timeForOps(ClassId c, double ops) const;

  /// Seconds class `c` needs for a per-kind operation breakdown
  /// (kindWeighted[k] summed with the class's kindFactor applied).
  double timeForKinds(ClassId c, const double kindOps[4]) const;

  /// Effective op throughput of class `c` in ops/second.
  double opsPerSecond(ClassId c) const;

  /// Seconds to move `bytes` over the interconnect (one cut data-flow edge).
  double commTimeSeconds(double bytes) const;

  /// Index of the fastest / slowest class by op throughput.
  ClassId fastestClass() const;
  ClassId slowestClass() const;

  /// Finds a class by name; -1 if absent.
  ClassId findClass(const std::string& name) const;

  /// Paper's "theoretical maximum speedup limit": sum of all core
  /// frequencies divided by the main core's frequency (footnotes 2-5),
  /// generalized to op throughput.
  double theoreticalMaxSpeedup(ClassId mainClass) const;

  /// Globally unique core ids: cores are numbered class-major, i.e. class 0's
  /// units first. Returns the class owning `coreId`.
  ClassId classOfCore(int coreId) const;

  /// First core id belonging to class `c`.
  int firstCoreOfClass(ClassId c) const;

  /// One-line human-readable summary, e.g. "A: 1x100 + 1x250 + 2x500 MHz".
  std::string summary() const;

  /// Throws hetpar::Error on structural problems (no classes, zero counts...).
  void validate() const;

 private:
  std::string name_ = "unnamed";
  std::vector<ProcessorClass> classes_;
  Interconnect interconnect_;
  double tcoSeconds_ = 20e-6;
};

}  // namespace hetpar::platform
