// The evaluation platforms of the paper's Section VI, plus generic builders.
#pragma once

#include "hetpar/platform/platform.hpp"

namespace hetpar::platform {

/// Platform configuration (A): four ARM cores at 100 MHz (1x), 250 MHz (1x)
/// and 500 MHz (2x) on a shared high-performance bus. Theoretical speedup
/// limits: 13.5x from the 100 MHz core, 2.7x from a 500 MHz core.
Platform platformA();

/// Platform configuration (B): two 200 MHz and two 500 MHz cores, modeling
/// the ~2.5x big.LITTLE performance discrepancy. Limits: 7x / 2.8x.
Platform platformB();

/// A homogeneous platform with `count` cores at `frequencyMHz` (used by the
/// baseline comparisons and tests).
Platform homogeneous(int count, double frequencyMHz);

/// Arbitrary same-ISA platform from (frequencyMHz, count) pairs.
Platform custom(std::string name, const std::vector<std::pair<double, int>>& freqCount);

/// Cross-ISA demo platform: two general-purpose cores plus two DSP-like
/// cores at the *same* clock whose per-op-kind factors make float work 4x
/// cheaper and control flow 2x dearer. Exercises the paper's claim that the
/// approach "would also perform well for different instruction sets ...
/// since it uses different execution costs for each statement".
Platform crossIsaDemo();

}  // namespace hetpar::platform
