#include "hetpar/platform/parser.hpp"

#include <cstdlib>
#include <sstream>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::platform {

namespace {

double parseNumber(const std::string& token, int lineNo) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  require<ParseError>(end && *end == '\0',
                      strings::format("platform line %d: '%s' is not a number", lineNo,
                                      token.c_str()));
  return v;
}

/// Reads `key value` pairs from tokens[start..] into a tiny lookup helper.
class KeyValues {
 public:
  KeyValues(const std::vector<std::string>& tokens, std::size_t start, int lineNo)
      : lineNo_(lineNo) {
    require<ParseError>((tokens.size() - start) % 2 == 0,
                        strings::format("platform line %d: dangling key", lineNo));
    for (std::size_t i = start; i + 1 < tokens.size(); i += 2)
      pairs_.emplace_back(tokens[i], tokens[i + 1]);
  }

  double number(const std::string& key) const {
    for (const auto& [k, v] : pairs_)
      if (k == key) return parseNumber(v, lineNo_);
    throw ParseError(strings::format("platform line %d: missing key '%s'", lineNo_, key.c_str()));
  }

  double numberOr(const std::string& key, double fallback) const {
    for (const auto& [k, v] : pairs_)
      if (k == key) return parseNumber(v, lineNo_);
    return fallback;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
  int lineNo_;
};

}  // namespace

Platform parsePlatform(std::string_view text) {
  std::string name = "unnamed";
  std::vector<ProcessorClass> classes;
  Interconnect bus;
  double tcoSeconds = 25e-6;

  int lineNo = 0;
  for (const std::string& rawLine : strings::split(text, '\n')) {
    ++lineNo;
    std::string line{strings::trim(rawLine)};
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    const auto tokens = strings::splitWhitespace(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];
    if (directive == "platform") {
      require<ParseError>(tokens.size() == 2,
                          strings::format("platform line %d: expected 'platform <name>'", lineNo));
      name = tokens[1];
    } else if (directive == "class") {
      require<ParseError>(tokens.size() >= 2,
                          strings::format("platform line %d: class needs a name", lineNo));
      KeyValues kv(tokens, 2, lineNo);
      ProcessorClass pc;
      pc.name = tokens[1];
      pc.frequencyMHz = kv.number("freq_mhz");
      pc.count = static_cast<int>(kv.number("count"));
      pc.cyclesPerOp = kv.numberOr("cpi", 1.0);
      pc.wattsActive = kv.numberOr("watts_active", 0.0);
      pc.wattsIdle = kv.numberOr("watts_idle", 0.0);
      pc.kindFactor[0] = kv.numberOr("factor_int", 1.0);
      pc.kindFactor[1] = kv.numberOr("factor_float", 1.0);
      pc.kindFactor[2] = kv.numberOr("factor_mem", 1.0);
      pc.kindFactor[3] = kv.numberOr("factor_control", 1.0);
      classes.push_back(std::move(pc));
    } else if (directive == "bus") {
      KeyValues kv(tokens, 1, lineNo);
      bus.latencySeconds = kv.number("latency_us") * 1e-6;
      bus.bytesPerSecond = kv.number("bandwidth_mbps") * 1e6;
    } else if (directive == "tco_us") {
      require<ParseError>(tokens.size() == 2,
                          strings::format("platform line %d: expected 'tco_us <float>'", lineNo));
      tcoSeconds = parseNumber(tokens[1], lineNo) * 1e-6;
    } else {
      throw ParseError(strings::format("platform line %d: unknown directive '%s'", lineNo,
                                       directive.c_str()));
    }
  }
  return Platform(std::move(name), std::move(classes), bus, tcoSeconds);
}

std::string toText(const Platform& p) {
  std::ostringstream os;
  os << "platform " << p.name() << "\n";
  for (const auto& pc : p.classes()) {
    os << "class " << pc.name << " freq_mhz " << pc.frequencyMHz << " count " << pc.count;
    if (pc.cyclesPerOp != 1.0) os << " cpi " << pc.cyclesPerOp;
    if (pc.wattsActive > 0) os << " watts_active " << pc.wattsActive;
    if (pc.wattsIdle > 0) os << " watts_idle " << pc.wattsIdle;
    const char* kindKeys[4] = {"factor_int", "factor_float", "factor_mem", "factor_control"};
    for (int k = 0; k < 4; ++k)
      if (pc.kindFactor[k] != 1.0) os << " " << kindKeys[k] << " " << pc.kindFactor[k];
    os << "\n";
  }
  os << "bus latency_us " << p.interconnect().latencySeconds * 1e6 << " bandwidth_mbps "
     << p.interconnect().bytesPerSecond / 1e6 << "\n";
  os << "tco_us " << p.taskCreationOverheadSeconds() * 1e6 << "\n";
  return os.str();
}

}  // namespace hetpar::platform
