#include "hetpar/platform/presets.hpp"

#include "hetpar/support/strings.hpp"

namespace hetpar::platform {

namespace {
// Shared-bus parameters used for all presets: a 64-bit AXI-class on-chip bus
// with an L2 behind it (paper: "connected with a level 2 cache on a high
// performance bus to enable fast memory accesses for shared data"), plus the
// task-creation overhead charged per task by Eq 8.
constexpr double kBusLatencySeconds = 5e-7;
constexpr double kBusBytesPerSecond = 1.6e9;
constexpr double kTaskCreateSeconds = 25e-6;
}  // namespace

Platform platformA() {
  return Platform("A",
                  {{"arm_100", 100.0, 1}, {"arm_250", 250.0, 1}, {"arm_500", 500.0, 2}},
                  {kBusLatencySeconds, kBusBytesPerSecond}, kTaskCreateSeconds);
}

Platform platformB() {
  return Platform("B", {{"arm_200", 200.0, 2}, {"arm_500", 500.0, 2}},
                  {kBusLatencySeconds, kBusBytesPerSecond}, kTaskCreateSeconds);
}

Platform homogeneous(int count, double frequencyMHz) {
  return Platform(strings::format("homog_%dx%.0f", count, frequencyMHz),
                  {{strings::format("arm_%.0f", frequencyMHz), frequencyMHz, count}},
                  {kBusLatencySeconds, kBusBytesPerSecond}, kTaskCreateSeconds);
}

Platform crossIsaDemo() {
  ProcessorClass gpp{"gpp", 300.0, 2};
  ProcessorClass dsp{"dsp", 300.0, 2};
  dsp.kindFactor[1] = 0.25;  // float ALU: 4x faster
  dsp.kindFactor[3] = 2.0;   // control flow: 2x slower
  return Platform("crossisa", {gpp, dsp}, {kBusLatencySeconds, kBusBytesPerSecond},
                  kTaskCreateSeconds);
}

Platform custom(std::string name, const std::vector<std::pair<double, int>>& freqCount) {
  std::vector<ProcessorClass> classes;
  for (const auto& [freq, count] : freqCount)
    classes.push_back({strings::format("arm_%.0f_c%zu", freq, classes.size()), freq, count});
  return Platform(std::move(name), std::move(classes),
                  {kBusLatencySeconds, kBusBytesPerSecond}, kTaskCreateSeconds);
}

}  // namespace hetpar::platform
