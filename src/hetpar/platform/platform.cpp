#include "hetpar/platform/platform.hpp"

#include <algorithm>
#include <sstream>

#include "hetpar/support/error.hpp"

namespace hetpar::platform {

Platform::Platform(std::string name, std::vector<ProcessorClass> classes,
                   Interconnect interconnect, double taskCreationOverheadSeconds)
    : name_(std::move(name)),
      classes_(std::move(classes)),
      interconnect_(interconnect),
      tcoSeconds_(taskCreationOverheadSeconds) {
  validate();
}

const ProcessorClass& Platform::classAt(ClassId c) const {
  require(c >= 0 && c < numClasses(), "processor class index out of range");
  return classes_[static_cast<std::size_t>(c)];
}

int Platform::numCores() const {
  int total = 0;
  for (const auto& pc : classes_) total += pc.count;
  return total;
}

double Platform::opsPerSecond(ClassId c) const {
  const ProcessorClass& pc = classAt(c);
  return pc.frequencyMHz * 1e6 / pc.cyclesPerOp;
}

double Platform::timeForOps(ClassId c, double ops) const { return ops / opsPerSecond(c); }

double Platform::timeForKinds(ClassId c, const double kindOps[4]) const {
  const ProcessorClass& pc = classAt(c);
  double weighted = 0.0;
  for (int k = 0; k < 4; ++k) weighted += kindOps[k] * pc.kindFactor[k];
  return weighted / opsPerSecond(c);
}

double Platform::commTimeSeconds(double bytes) const {
  if (bytes <= 0) return 0.0;
  return interconnect_.latencySeconds + bytes / interconnect_.bytesPerSecond;
}

ClassId Platform::fastestClass() const {
  require(!classes_.empty(), "platform has no processor classes");
  ClassId best = 0;
  for (ClassId c = 1; c < numClasses(); ++c)
    if (opsPerSecond(c) > opsPerSecond(best)) best = c;
  return best;
}

ClassId Platform::slowestClass() const {
  require(!classes_.empty(), "platform has no processor classes");
  ClassId best = 0;
  for (ClassId c = 1; c < numClasses(); ++c)
    if (opsPerSecond(c) < opsPerSecond(best)) best = c;
  return best;
}

ClassId Platform::findClass(const std::string& name) const {
  for (ClassId c = 0; c < numClasses(); ++c)
    if (classes_[static_cast<std::size_t>(c)].name == name) return c;
  return -1;
}

double Platform::theoreticalMaxSpeedup(ClassId mainClass) const {
  double total = 0.0;
  for (ClassId c = 0; c < numClasses(); ++c)
    total += opsPerSecond(c) * classAt(c).count;
  return total / opsPerSecond(mainClass);
}

ClassId Platform::classOfCore(int coreId) const {
  require(coreId >= 0 && coreId < numCores(), "core id out of range");
  int offset = 0;
  for (ClassId c = 0; c < numClasses(); ++c) {
    offset += classAt(c).count;
    if (coreId < offset) return c;
  }
  return numClasses() - 1;  // unreachable; validate() guarantees coverage
}

int Platform::firstCoreOfClass(ClassId c) const {
  require(c >= 0 && c < numClasses(), "processor class index out of range");
  int offset = 0;
  for (ClassId i = 0; i < c; ++i) offset += classAt(i).count;
  return offset;
}

std::string Platform::summary() const {
  std::ostringstream os;
  os << name_ << ": ";
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (i) os << " + ";
    os << classes_[i].count << "x" << classes_[i].frequencyMHz;
  }
  os << " MHz";
  return os.str();
}

void Platform::validate() const {
  require(!classes_.empty(), "platform '" + name_ + "' has no processor classes");
  for (const auto& pc : classes_) {
    require(pc.count > 0, "processor class '" + pc.name + "' has no units");
    require(pc.frequencyMHz > 0, "processor class '" + pc.name + "' has non-positive frequency");
    require(pc.cyclesPerOp > 0, "processor class '" + pc.name + "' has non-positive CPI");
  }
  require(interconnect_.latencySeconds >= 0, "negative interconnect latency");
  require(interconnect_.bytesPerSecond > 0, "non-positive interconnect bandwidth");
  require(tcoSeconds_ >= 0, "negative task creation overhead");
  // Class names must be unique so findClass is unambiguous.
  for (std::size_t i = 0; i < classes_.size(); ++i)
    for (std::size_t j = i + 1; j < classes_.size(); ++j)
      require(classes_[i].name != classes_[j].name,
              "duplicate processor class name '" + classes_[i].name + "'");
}

}  // namespace hetpar::platform
