// Text format for platform descriptions (paper reference [18] provides a
// system-level platform description; this is our minimal equivalent).
//
// Grammar (one directive per line, '#' starts a comment):
//   platform <name>
//   class <name> freq_mhz <float> count <int> [cpi <float>]
//   bus latency_us <float> bandwidth_mbps <float>
//   tco_us <float>
#pragma once

#include <string_view>

#include "hetpar/platform/platform.hpp"

namespace hetpar::platform {

/// Parses the textual description; throws hetpar::ParseError on malformed
/// input and hetpar::Error on semantically invalid platforms.
Platform parsePlatform(std::string_view text);

/// Renders `p` back into the textual format (round-trips with parsePlatform).
std::string toText(const Platform& p);

}  // namespace hetpar::platform
