#include "hetpar/codegen/premap_spec.hpp"

#include <sstream>

#include "hetpar/support/strings.hpp"

namespace hetpar::codegen {

using parallel::SolutionCandidate;
using parallel::SolutionKind;
using parallel::SolutionRef;

namespace {

void emit(std::ostringstream& os, const htg::Graph& graph,
          const parallel::SolutionTable& table, const platform::Platform& pf, htg::NodeId id,
          const SolutionCandidate& cand, const std::string& path) {
  const htg::Node& node = graph.node(id);
  if (cand.kind == SolutionKind::Sequential) return;
  for (int t = 0; t < cand.numTasks(); ++t) {
    os << "map " << path << "/T" << t << " -> class "
       << pf.classAt(cand.taskClass[static_cast<std::size_t>(t)]).name;
    if (node.stmt != nullptr) os << "   # line " << node.stmt->loc.line;
    os << "\n";
  }
  if (cand.kind == SolutionKind::TaskParallel) {
    for (std::size_t i = 0; i < node.children.size(); ++i) {
      const SolutionRef ref = cand.childChoice[i];
      if (!ref.valid()) continue;
      emit(os, graph, table, pf, ref.node, table.at(ref.node).at(ref.index),
           strings::format("%s/T%d", path.c_str(), cand.childTask[i]));
    }
  }
}

}  // namespace

std::string premapSpec(const htg::Graph& graph, const parallel::SolutionTable& table,
                       SolutionRef rootChoice, const platform::Platform& pf) {
  std::ostringstream os;
  os << "# hetpar pre-mapping specification for platform " << pf.summary() << "\n";
  emit(os, graph, table, pf, rootChoice.node,
       table.at(rootChoice.node).at(rootChoice.index), "main");
  return os.str();
}

}  // namespace hetpar::codegen
