// Source-to-source annotation output (paper Section V).
//
// The paper's tool "annotates the source code of the application to describe
// the extracted parallelism" as "an extension of OpenMP which enables
// heterogeneous mapping". This emitter re-prints the mini-C program with
// `#pragma hetpar ...` lines in front of every parallelized region and every
// statement that moves into an extracted task:
//
//   #pragma hetpar parallel tasks(3) classes(arm_100, arm_500, arm_500)
//   #pragma hetpar task(1)
//   #pragma hetpar parallel_for iterations(12, 48, 48) classes(...)
//
// Designers can diff this against the input (source-to-source transparency).
#pragma once

#include <string>

#include "hetpar/frontend/ast.hpp"
#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/solution.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::codegen {

/// Renders the whole program with parallelization pragmas for the solution
/// tree rooted at `rootChoice`.
std::string annotateSource(const frontend::Program& program, const htg::Graph& graph,
                           const parallel::SolutionTable& table,
                           parallel::SolutionRef rootChoice, const platform::Platform& pf);

}  // namespace hetpar::codegen
