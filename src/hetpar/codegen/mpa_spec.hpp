// ATOMIUM/MPA-style parallel specification (paper Section V, Figure 6).
//
// The MPA tools consume "a parallel specification which maps labeled
// statements of the application to tasks". We emit the equivalent: one
// `parsection` per parallelized region listing, per task, the statement
// labels (line-tagged) that move into it.
#pragma once

#include <string>

#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/solution.hpp"

namespace hetpar::codegen {

std::string mpaSpec(const htg::Graph& graph, const parallel::SolutionTable& table,
                    parallel::SolutionRef rootChoice);

}  // namespace hetpar::codegen
