// Pre-mapping specification (paper Section V): "contains information about
// the extracted task-to-processor class mapping to ensure that tasks are
// mapped to processing units for which they are optimized". Consumed by the
// mapping stage (our flattener honors it when classAwareAllocation is on).
#pragma once

#include <string>

#include "hetpar/htg/graph.hpp"
#include "hetpar/parallel/solution.hpp"
#include "hetpar/platform/platform.hpp"

namespace hetpar::codegen {

std::string premapSpec(const htg::Graph& graph, const parallel::SolutionTable& table,
                       parallel::SolutionRef rootChoice, const platform::Platform& pf);

}  // namespace hetpar::codegen
