#include "hetpar/codegen/annotate.hpp"

#include <map>

#include "hetpar/frontend/printer.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::codegen {

using parallel::SolutionCandidate;
using parallel::SolutionKind;
using parallel::SolutionRef;

namespace {

class Annotator {
 public:
  Annotator(const htg::Graph& graph, const parallel::SolutionTable& table,
            const platform::Platform& pf)
      : graph_(graph), table_(table), pf_(pf) {}

  std::map<const frontend::Stmt*, std::string> collect(SolutionRef rootChoice) {
    walk(rootChoice.node, table_.at(rootChoice.node).at(rootChoice.index));
    return std::move(notes_);
  }

 private:
  std::string classList(const std::vector<parallel::ClassId>& classes) const {
    std::vector<std::string> names;
    for (parallel::ClassId c : classes) names.push_back(pf_.classAt(c).name);
    return strings::join(names, ", ");
  }

  void note(const frontend::Stmt* stmt, const std::string& text) {
    if (stmt == nullptr) return;
    std::string& slot = notes_[stmt];
    if (!slot.empty()) slot += "\n";
    slot += text;
  }

  void walk(htg::NodeId id, const SolutionCandidate& cand) {
    const htg::Node& node = graph_.node(id);
    switch (cand.kind) {
      case SolutionKind::Sequential:
        return;  // nothing to annotate
      case SolutionKind::LoopChunked: {
        std::vector<std::string> iters;
        for (double it : cand.chunkIterations)
          iters.push_back(strings::format("%.0f", it));
        note(node.stmt,
             strings::format("#pragma hetpar parallel_for iterations(%s) classes(%s)",
                             strings::join(iters, ", ").c_str(),
                             classList(cand.taskClass).c_str()));
        return;
      }
      case SolutionKind::TaskParallel: {
        note(node.stmt, strings::format("#pragma hetpar parallel tasks(%d) classes(%s)",
                                        cand.numTasks(), classList(cand.taskClass).c_str()));
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          const htg::Node& child = graph_.node(node.children[i]);
          const int task = cand.childTask[i];
          if (task != 0 && child.stmt != nullptr)
            note(child.stmt, strings::format("#pragma hetpar task(%d)", task));
          const SolutionRef ref = cand.childChoice[i];
          if (ref.valid()) walk(ref.node, table_.at(ref.node).at(ref.index));
        }
        return;
      }
    }
  }

  const htg::Graph& graph_;
  const parallel::SolutionTable& table_;
  const platform::Platform& pf_;
  std::map<const frontend::Stmt*, std::string> notes_;
};

}  // namespace

std::string annotateSource(const frontend::Program& program, const htg::Graph& graph,
                           const parallel::SolutionTable& table, SolutionRef rootChoice,
                           const platform::Platform& pf) {
  Annotator annotator(graph, table, pf);
  const auto notes = annotator.collect(rootChoice);

  frontend::PrintHooks hooks;
  hooks.beforeStmt = [&notes](const frontend::Stmt& stmt) -> std::string {
    auto it = notes.find(&stmt);
    return it == notes.end() ? std::string{} : it->second;
  };
  std::string header =
      "// Parallelized by hetpar for platform " + pf.summary() + "\n" +
      "// (heterogeneous OpenMP-extension annotations; see DESIGN.md)\n\n";
  return header + frontend::printProgram(program, &hooks);
}

}  // namespace hetpar::codegen
