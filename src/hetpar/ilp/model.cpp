#include "hetpar/ilp/model.hpp"

#include <cmath>
#include <sstream>

#include "hetpar/support/error.hpp"

namespace hetpar::ilp {

long long Solution::integral(Var v) const {
  return static_cast<long long>(std::llround(value(v)));
}

Var Model::addVar(VarType type, double lb, double ub, std::string name) {
  require<SolverError>(lb <= ub, "variable '" + name + "' has empty domain");
  if (type == VarType::Binary) {
    require<SolverError>(lb >= 0.0 && ub <= 1.0, "binary variable '" + name + "' bounds not in [0,1]");
  }
  VarInfo info;
  info.name = std::move(name);
  info.type = type;
  info.lowerBound = lb;
  info.upperBound = ub;
  vars_.push_back(std::move(info));
  return Var(static_cast<int>(vars_.size()) - 1);
}

Var Model::addAnd(Var x, Var y, std::string name) {
  HETPAR_CHECK(x.valid() && y.valid());
  Var z = addBool(name);
  // Paper Eq 7: z >= x + y - 1, z <= x, z <= y.
  addGe(LinearExpr(z), LinearExpr(x) + LinearExpr(y) - 1.0, varInfo(z).name + "_and_ge");
  addLe(LinearExpr(z), LinearExpr(x), varInfo(z).name + "_and_le_x");
  addLe(LinearExpr(z), LinearExpr(y), varInfo(z).name + "_and_le_y");
  return z;
}

void Model::addConstraint(const LinearExpr& lhs, Relation relation, const LinearExpr& rhs,
                          std::string name) {
  LinearExpr diff = lhs - rhs;
  Constraint c;
  c.relation = relation;
  c.rhs = -diff.constant();
  c.lhs = diff - diff.constant();  // strip the constant, keep variable terms
  c.name = std::move(name);
  for (const auto& [idx, coef] : c.lhs.terms()) {
    (void)coef;
    HETPAR_CHECK_MSG(idx >= 0 && idx < static_cast<int>(vars_.size()),
                     "constraint references unknown variable");
  }
  constraints_.push_back(std::move(c));
}

std::size_t Model::numIntegerVars() const {
  std::size_t n = 0;
  for (const auto& v : vars_)
    if (v.type != VarType::Continuous) ++n;
  return n;
}

void Model::setObjective(const LinearExpr& objective, Sense sense) {
  objective_ = objective;
  sense_ = sense;
}

bool Model::isFeasible(const std::vector<double>& values, double tol) const {
  if (values.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const VarInfo& v = vars_[i];
    if (values[i] < v.lowerBound - tol || values[i] > v.upperBound + tol) return false;
    if (v.type != VarType::Continuous &&
        std::fabs(values[i] - std::llround(values[i])) > tol)
      return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [idx, coef] : c.lhs.terms()) lhs += coef * values[static_cast<std::size_t>(idx)];
    switch (c.relation) {
      case Relation::LessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::GreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::Equal:
        if (std::fabs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

double Model::evalObjective(const std::vector<double>& values) const {
  double obj = objective_.constant();
  for (const auto& [idx, coef] : objective_.terms())
    obj += coef * values.at(static_cast<std::size_t>(idx));
  return obj;
}

std::string Model::str() const {
  std::ostringstream os;
  os << (sense_ == Sense::Minimize ? "minimize" : "maximize") << " " << objective_.str() << "\n";
  os << "subject to\n";
  for (const Constraint& c : constraints_) {
    os << "  ";
    if (!c.name.empty()) os << c.name << ": ";
    os << c.lhs.str();
    switch (c.relation) {
      case Relation::LessEqual: os << " <= "; break;
      case Relation::GreaterEqual: os << " >= "; break;
      case Relation::Equal: os << " = "; break;
    }
    os << c.rhs << "\n";
  }
  os << "bounds\n";
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const VarInfo& v = vars_[i];
    os << "  " << v.lowerBound << " <= " << v.name << "(x" << i << ") <= " << v.upperBound;
    if (v.type == VarType::Binary) os << " binary";
    else if (v.type == VarType::Integer) os << " integer";
    os << "\n";
  }
  return os.str();
}

}  // namespace hetpar::ilp
