#include "hetpar/ilp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "hetpar/ilp/basis_factor.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::ilp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColStatus : std::uint8_t { AtLower, AtUpper, Basic, Free };

/// Full simplex working state. One instance per `solve` call.
struct Tableau {
  int m = 0;            // rows
  int n = 0;            // structural + slack columns (no artificials)
  int total = 0;        // n + m (artificials appended)
  const LpProblem* lp = nullptr;

  std::vector<std::vector<std::pair<int, double>>> cols;  // incl. artificials
  std::vector<double> lower, upper;                       // incl. artificials
  std::vector<double> costPhase2;                         // incl. artificials (0)

  std::vector<ColStatus> status;
  std::vector<double> nonbasicValue;  // value of nonbasic col (bound or 0)
  std::vector<int> basic;             // basic[i] = column basic in row i
  std::vector<int> basicPos;          // basicPos[j] = row if basic else -1
  std::vector<double> xB;             // values of basic variables

  SolverEngine engine = SolverEngine::Revised;
  std::unique_ptr<BasisFactor> factor;  // basis representation (LU or dense)
  int pricingCursor = 0;                // partial-pricing scan position

  double tol;
  long long iterations = 0;

  void init(const LpProblem& problem, double tolerance);
  /// Seeds statuses/basis from `warm` instead of the artificial basis.
  /// Returns false on structural mismatch or a singular basis.
  /// `readyFactor` (optional) supplies a factorization of exactly this
  /// basis, skipping the refactorization.
  bool initFromBasis(const LpProblem& problem, double tolerance, const SimplexBasis& warm,
                     const BasisFactor* readyFactor);
  /// Drives a warm-started (possibly bound-violating) basis to primal
  /// feasibility by temporarily relaxing the violated variables' bounds.
  /// Optimal = feasible now; Infeasible = proven empty; IterationLimit =
  /// could not decide (caller should cold-start).
  LpStatus boundShiftPhase1(long long maxIterations);
  void exportBasis(SimplexBasis& out) const;
  void recomputeBasicValues();
  bool refactorize();  // rebuild the factorization; false if singular
  LpStatus runPhase(const std::vector<double>& cost, long long maxIterations,
                    bool phase1);
  double primalInfeasibility() const;
  void extractSolution(std::vector<double>& x) const;
};

void Tableau::init(const LpProblem& problem, double tolerance) {
  lp = &problem;
  tol = tolerance;
  m = problem.numRows;
  n = problem.numCols;
  total = n + m;

  cols = problem.cols;
  cols.resize(static_cast<std::size_t>(total));
  lower = problem.lower;
  upper = problem.upper;
  lower.resize(static_cast<std::size_t>(total), 0.0);
  upper.resize(static_cast<std::size_t>(total), kInf);
  costPhase2 = problem.cost;
  costPhase2.resize(static_cast<std::size_t>(total), 0.0);

  status.assign(static_cast<std::size_t>(total), ColStatus::AtLower);
  nonbasicValue.assign(static_cast<std::size_t>(total), 0.0);
  basic.assign(static_cast<std::size_t>(m), -1);
  basicPos.assign(static_cast<std::size_t>(total), -1);
  xB.assign(static_cast<std::size_t>(m), 0.0);

  // Nonbasic structural/slack columns start at their nearest finite bound.
  for (int j = 0; j < n; ++j) {
    if (std::isfinite(lower[j])) {
      status[j] = ColStatus::AtLower;
      nonbasicValue[j] = lower[j];
    } else if (std::isfinite(upper[j])) {
      status[j] = ColStatus::AtUpper;
      nonbasicValue[j] = upper[j];
    } else {
      status[j] = ColStatus::Free;
      nonbasicValue[j] = 0.0;
    }
  }

  // Row residuals with nonbasic columns at their starting values.
  std::vector<double> residual = lp->rhs;
  for (int j = 0; j < n; ++j) {
    const double v = nonbasicValue[j];
    if (v == 0.0) continue;
    for (const auto& [row, coef] : cols[j]) residual[static_cast<std::size_t>(row)] -= coef * v;
  }

  // One artificial per row, signed so its starting (basic) value is >= 0.
  for (int i = 0; i < m; ++i) {
    const int aj = n + i;
    const double sign = residual[static_cast<std::size_t>(i)] >= 0.0 ? 1.0 : -1.0;
    cols[static_cast<std::size_t>(aj)] = {{i, sign}};
    lower[static_cast<std::size_t>(aj)] = 0.0;
    upper[static_cast<std::size_t>(aj)] = kInf;
    status[static_cast<std::size_t>(aj)] = ColStatus::Basic;
    basic[static_cast<std::size_t>(i)] = aj;
    basicPos[static_cast<std::size_t>(aj)] = i;
    xB[static_cast<std::size_t>(i)] = std::fabs(residual[static_cast<std::size_t>(i)]);
  }
  factor = makeBasisFactor(engine);
  factor->factorize(cols, basic, m);  // diagonal basis: cannot fail
}

bool Tableau::initFromBasis(const LpProblem& problem, double tolerance,
                            const SimplexBasis& warm, const BasisFactor* readyFactor) {
  lp = &problem;
  tol = tolerance;
  m = problem.numRows;
  n = problem.numCols;
  total = n + m;
  if (static_cast<int>(warm.basicCols.size()) != m) return false;
  if (static_cast<int>(warm.atUpper.size()) != n) return false;

  cols = problem.cols;
  cols.resize(static_cast<std::size_t>(total));
  lower = problem.lower;
  upper = problem.upper;
  lower.resize(static_cast<std::size_t>(total), 0.0);
  upper.resize(static_cast<std::size_t>(total), 0.0);  // artificials pinned shut
  costPhase2 = problem.cost;
  costPhase2.resize(static_cast<std::size_t>(total), 0.0);

  status.assign(static_cast<std::size_t>(total), ColStatus::AtLower);
  nonbasicValue.assign(static_cast<std::size_t>(total), 0.0);
  basic.assign(static_cast<std::size_t>(m), -1);
  basicPos.assign(static_cast<std::size_t>(total), -1);
  xB.assign(static_cast<std::size_t>(m), 0.0);

  // Artificial columns exist for layout compatibility but stay fixed at 0.
  for (int i = 0; i < m; ++i)
    cols[static_cast<std::size_t>(n + i)] = {{i, 1.0}};

  for (int i = 0; i < m; ++i) {
    const int j = warm.basicCols[static_cast<std::size_t>(i)];
    // Artificial columns (j >= n) may legitimately sit in an optimal basis
    // at value zero; they stay pinned to [0,0] here.
    if (j < 0 || j >= total) return false;
    if (basicPos[static_cast<std::size_t>(j)] != -1) return false;  // duplicate
    basic[static_cast<std::size_t>(i)] = j;
    basicPos[static_cast<std::size_t>(j)] = i;
    status[static_cast<std::size_t>(j)] = ColStatus::Basic;
  }
  for (int j = 0; j < n; ++j) {
    if (status[static_cast<std::size_t>(j)] == ColStatus::Basic) continue;
    const double lo = lower[static_cast<std::size_t>(j)];
    const double hi = upper[static_cast<std::size_t>(j)];
    // Honor the recorded bound when it is finite under the *new* bounds;
    // otherwise snap to the nearest finite bound.
    if (warm.atUpper[static_cast<std::size_t>(j)] && std::isfinite(hi)) {
      status[static_cast<std::size_t>(j)] = ColStatus::AtUpper;
      nonbasicValue[static_cast<std::size_t>(j)] = hi;
    } else if (std::isfinite(lo)) {
      status[static_cast<std::size_t>(j)] = ColStatus::AtLower;
      nonbasicValue[static_cast<std::size_t>(j)] = lo;
    } else if (std::isfinite(hi)) {
      status[static_cast<std::size_t>(j)] = ColStatus::AtUpper;
      nonbasicValue[static_cast<std::size_t>(j)] = hi;
    } else {
      status[static_cast<std::size_t>(j)] = ColStatus::Free;
      nonbasicValue[static_cast<std::size_t>(j)] = 0.0;
    }
  }
  if (readyFactor != nullptr) {
    factor = readyFactor->clone();
    factor->resetStats();  // counts belong to the solve, not the cache
    recomputeBasicValues();
    return true;
  }
  factor = makeBasisFactor(engine);
  if (!refactorize()) return false;
  return true;
}

LpStatus Tableau::boundShiftPhase1(long long maxIterations) {
  const double feasTol = 1e-7;
  for (int round = 0; round < 4; ++round) {
    // Collect violated basic variables.
    std::vector<int> violated;
    for (int i = 0; i < m; ++i) {
      const int j = basic[static_cast<std::size_t>(i)];
      const double v = xB[static_cast<std::size_t>(i)];
      if (v > upper[static_cast<std::size_t>(j)] + feasTol ||
          v < lower[static_cast<std::size_t>(j)] - feasTol)
        violated.push_back(i);
    }
    if (violated.empty()) return LpStatus::Optimal;

    // Relax each violated variable's offending bound to its current value
    // and push it back with a unit phase-1 cost.
    std::vector<double> cost(static_cast<std::size_t>(total), 0.0);
    std::vector<std::pair<int, std::pair<double, double>>> savedBounds;
    for (int i : violated) {
      const int j = basic[static_cast<std::size_t>(i)];
      const double v = xB[static_cast<std::size_t>(i)];
      savedBounds.push_back({j, {lower[static_cast<std::size_t>(j)],
                                 upper[static_cast<std::size_t>(j)]}});
      if (v > upper[static_cast<std::size_t>(j)]) {
        upper[static_cast<std::size_t>(j)] = v + 1.0;
        cost[static_cast<std::size_t>(j)] = 1.0;   // minimize downwards
      } else {
        lower[static_cast<std::size_t>(j)] = v - 1.0;
        cost[static_cast<std::size_t>(j)] = -1.0;  // minimize upwards
      }
    }
    const LpStatus st = runPhase(cost, maxIterations, /*phase1=*/true);
    // Restore the true bounds.
    for (const auto& [j, b] : savedBounds) {
      lower[static_cast<std::size_t>(j)] = b.first;
      upper[static_cast<std::size_t>(j)] = b.second;
    }
    if (st != LpStatus::Optimal) return LpStatus::IterationLimit;

    // Infeasibility certificate (single violation only): the phase
    // minimized that variable's excursion over a *superset* of the feasible
    // region; if its optimal value still breaks the bound, no feasible
    // point exists.
    if (violated.size() == 1) {
      const int j = savedBounds[0].first;
      const double v = status[static_cast<std::size_t>(j)] == ColStatus::Basic
                           ? xB[static_cast<std::size_t>(basicPos[static_cast<std::size_t>(j)])]
                           : nonbasicValue[static_cast<std::size_t>(j)];
      if (v > upper[static_cast<std::size_t>(j)] + feasTol ||
          v < lower[static_cast<std::size_t>(j)] - feasTol)
        return LpStatus::Infeasible;
    }

    // Nonbasic variables may now rest on a relaxed (out-of-bounds) value;
    // snap them back and recompute.
    for (int j = 0; j < total; ++j) {
      if (status[static_cast<std::size_t>(j)] == ColStatus::Basic) continue;
      double& v = nonbasicValue[static_cast<std::size_t>(j)];
      const double lo = lower[static_cast<std::size_t>(j)];
      const double hi = upper[static_cast<std::size_t>(j)];
      if (v > hi) {
        v = hi;
        status[static_cast<std::size_t>(j)] = ColStatus::AtUpper;
      } else if (v < lo) {
        v = lo;
        status[static_cast<std::size_t>(j)] = ColStatus::AtLower;
      }
    }
    recomputeBasicValues();
  }
  return LpStatus::IterationLimit;
}

void Tableau::exportBasis(SimplexBasis& out) const {
  out.basicCols.assign(basic.begin(), basic.end());
  out.atUpper.assign(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j)
    if (status[static_cast<std::size_t>(j)] == ColStatus::AtUpper)
      out.atUpper[static_cast<std::size_t>(j)] = 1;
}

void Tableau::recomputeBasicValues() {
  std::vector<double> rhs = lp->rhs;
  for (int j = 0; j < total; ++j) {
    if (status[j] == ColStatus::Basic) continue;
    const double v = nonbasicValue[j];
    if (v == 0.0) continue;
    for (const auto& [row, coef] : cols[j]) rhs[static_cast<std::size_t>(row)] -= coef * v;
  }
  factor->ftran(rhs);  // row-indexed residual in, slot-indexed values out
  xB = std::move(rhs);
}

bool Tableau::refactorize() {
  if (!factor->factorize(cols, basic, m)) return false;
  recomputeBasicValues();
  return true;
}

double Tableau::primalInfeasibility() const {
  double worst = 0.0;
  for (int i = 0; i < m; ++i) {
    const int j = basic[static_cast<std::size_t>(i)];
    const double v = xB[static_cast<std::size_t>(i)];
    worst = std::max(worst, lower[static_cast<std::size_t>(j)] - v);
    worst = std::max(worst, v - upper[static_cast<std::size_t>(j)]);
  }
  return worst;
}

LpStatus Tableau::runPhase(const std::vector<double>& cost, long long maxIterations,
                           bool phase1) {
  const double dualTol = 1e-7;
  int degenerateStreak = 0;
  bool bland = false;
  bool blandForever = false;
  std::vector<double> y(static_cast<std::size_t>(m));
  std::vector<double> w(static_cast<std::size_t>(m));

  for (long long iter = 0; iter < maxIterations; ++iter) {
    ++iterations;
    // Hard anti-stall: a phase that has not converged after many pivots is
    // either cycling or zigzagging; Bland's rule guarantees termination.
    if (iter == 4000) {
      blandForever = true;
      bland = true;
      if (!refactorize()) return LpStatus::IterationLimit;
    }

    // Duals: solve B^T y = c_B via BTRAN.
    for (int k = 0; k < m; ++k)
      y[static_cast<std::size_t>(k)] = cost[static_cast<std::size_t>(basic[static_cast<std::size_t>(k)])];
    factor->btran(y);

    // Pricing: pick entering column. Returns the improvement score for
    // column j (0 if not a candidate) and writes the movement direction.
    auto priceColumn = [&](int j, double& dir) -> double {
      const ColStatus st = status[static_cast<std::size_t>(j)];
      if (st == ColStatus::Basic) return 0.0;
      if (lower[static_cast<std::size_t>(j)] == upper[static_cast<std::size_t>(j)]) return 0.0;
      double d = cost[static_cast<std::size_t>(j)];
      for (const auto& [row, coef] : cols[static_cast<std::size_t>(j)])
        d -= y[static_cast<std::size_t>(row)] * coef;
      if ((st == ColStatus::AtLower || st == ColStatus::Free) && d < -dualTol) {
        dir = 1.0;
        return -d;
      }
      if ((st == ColStatus::AtUpper || st == ColStatus::Free) && d > dualTol) {
        dir = -1.0;
        return d;
      }
      return 0.0;
    };

    int entering = -1;
    double enteringDir = 0.0;
    double bestScore = dualTol;
    if (bland || engine == SolverEngine::Dense) {
      // Bland: first improving column by index (termination guarantee needs
      // the lowest index, so no cursor). Dense engine: full Dantzig scan,
      // preserving the seed's pivot sequence for the differential oracle.
      for (int j = 0; j < total; ++j) {
        double dir = 0.0;
        const double score = priceColumn(j, dir);
        if (score <= 0.0) continue;
        if (bland) {
          entering = j;
          enteringDir = dir;
          break;
        }
        if (score > bestScore) {
          bestScore = score;
          entering = j;
          enteringDir = dir;
        }
      }
    } else {
      // Partial pricing: cyclic scan from the cursor; once a candidate is in
      // hand, stop at the block boundary instead of pricing every column.
      // Optimality is only declared after a full wrap finds no candidate.
      const int block = std::max(64, total / 8);
      int j = pricingCursor >= total ? 0 : pricingCursor;
      int scanned = 0;
      for (; scanned < total; ++scanned) {
        double dir = 0.0;
        const double score = priceColumn(j, dir);
        if (score > bestScore) {
          bestScore = score;
          entering = j;
          enteringDir = dir;
        }
        j = (j + 1 == total) ? 0 : j + 1;
        if (entering >= 0 && scanned + 1 >= block) break;
      }
      pricingCursor = j;
    }
    if (entering < 0) {
      // Optimal for this phase; verify numerically and refactor once if the
      // basic values drifted.
      recomputeBasicValues();
      if (primalInfeasibility() > 1e-6) {
        if (!refactorize()) return LpStatus::IterationLimit;
        if (primalInfeasibility() > 1e-6) return LpStatus::IterationLimit;
      }
      return LpStatus::Optimal;
    }

    // FTRAN: w = B^{-1} A_entering.
    factor->ftranColumn(cols[static_cast<std::size_t>(entering)], w);

    // Harris-style two-pass ratio test. Entering moves by t >= 0 in
    // direction enteringDir; basic variable i changes by
    // -enteringDir * w[i] * t. Pass 1 computes the step limit with bounds
    // relaxed by `featol`; pass 2 picks, among rows blocking within that
    // relaxed limit, the numerically best (largest) pivot. This both avoids
    // tiny unstable pivots and breaks degenerate ties, which defeats the
    // classic cycling patterns that exact-tie rules fall into with floating
    // point.
    const double featol = 1e-7;
    const double pivTol = 1e-9;
    double ownRange = upper[static_cast<std::size_t>(entering)] -
                      lower[static_cast<std::size_t>(entering)];
    if (status[static_cast<std::size_t>(entering)] == ColStatus::Free) ownRange = kInf;

    double relaxedLimit = ownRange;
    for (int i = 0; i < m; ++i) {
      const double delta = -enteringDir * w[static_cast<std::size_t>(i)];
      if (std::fabs(delta) <= pivTol) continue;
      const int bj = basic[static_cast<std::size_t>(i)];
      double room;
      if (delta > 0) room = upper[static_cast<std::size_t>(bj)] - xB[static_cast<std::size_t>(i)];
      else room = xB[static_cast<std::size_t>(i)] - lower[static_cast<std::size_t>(bj)];
      if (!std::isfinite(room)) continue;
      const double limit = (std::max(room, 0.0) + featol) / std::fabs(delta);
      relaxedLimit = std::min(relaxedLimit, limit);
    }

    int leavingRow = -1;
    bool leavingAtUpper = false;
    double tMax = ownRange;
    if (std::isfinite(relaxedLimit)) {
      double bestPivot = 0.0;
      int bestIndex = -1;
      for (int i = 0; i < m; ++i) {
        const double delta = -enteringDir * w[static_cast<std::size_t>(i)];
        if (std::fabs(delta) <= pivTol) continue;
        const int bj = basic[static_cast<std::size_t>(i)];
        double room;
        bool hitsUpper;
        if (delta > 0) {
          room = upper[static_cast<std::size_t>(bj)] - xB[static_cast<std::size_t>(i)];
          hitsUpper = true;
        } else {
          room = xB[static_cast<std::size_t>(i)] - lower[static_cast<std::size_t>(bj)];
          hitsUpper = false;
        }
        if (!std::isfinite(room)) continue;
        const double strictLimit = std::max(room, 0.0) / std::fabs(delta);
        if (strictLimit > relaxedLimit) continue;
        const bool better = bland ? (bestIndex < 0 || bj < bestIndex)
                                  : std::fabs(delta) > bestPivot;
        if (better) {
          bestPivot = std::fabs(delta);
          bestIndex = bj;
          leavingRow = i;
          leavingAtUpper = hitsUpper;
          tMax = strictLimit;
        }
      }
      // Prefer a full bound flip when the entering variable's own range is
      // within the relaxed limit and shorter than the chosen pivot step.
      if (leavingRow >= 0 && ownRange <= tMax) leavingRow = -1;
      if (leavingRow < 0) tMax = ownRange;
    }

    if (!std::isfinite(tMax)) {
      return phase1 ? LpStatus::IterationLimit  // phase 1 is always bounded
                    : LpStatus::Unbounded;
    }

    if (tMax < 1e-11) {
      if (++degenerateStreak > 64) bland = true;
    } else {
      degenerateStreak = 0;
      if (!blandForever) bland = false;
    }

    // Apply the step to basic values.
    if (tMax > 0.0) {
      for (int i = 0; i < m; ++i)
        xB[static_cast<std::size_t>(i)] += -enteringDir * w[static_cast<std::size_t>(i)] * tMax;
    }

    if (leavingRow < 0) {
      // Bound flip: entering moves to its opposite bound; basis unchanged.
      const auto j = static_cast<std::size_t>(entering);
      if (enteringDir > 0) {
        status[j] = ColStatus::AtUpper;
        nonbasicValue[j] = upper[j];
      } else {
        status[j] = ColStatus::AtLower;
        nonbasicValue[j] = lower[j];
      }
      continue;
    }

    // Pivot: entering becomes basic in leavingRow.
    const double pivot = w[static_cast<std::size_t>(leavingRow)];
    if (std::fabs(pivot) < 1e-9) {
      // Numerically unsafe pivot; rebuild the factors and retry from pricing.
      if (!refactorize()) return LpStatus::IterationLimit;
      continue;
    }

    const int leavingCol = basic[static_cast<std::size_t>(leavingRow)];
    const double enteringValue =
        (status[static_cast<std::size_t>(entering)] == ColStatus::Free
             ? 0.0
             : nonbasicValue[static_cast<std::size_t>(entering)]) +
        enteringDir * tMax;

    status[static_cast<std::size_t>(leavingCol)] =
        leavingAtUpper ? ColStatus::AtUpper : ColStatus::AtLower;
    nonbasicValue[static_cast<std::size_t>(leavingCol)] =
        leavingAtUpper ? upper[static_cast<std::size_t>(leavingCol)]
                       : lower[static_cast<std::size_t>(leavingCol)];
    basicPos[static_cast<std::size_t>(leavingCol)] = -1;

    basic[static_cast<std::size_t>(leavingRow)] = entering;
    basicPos[static_cast<std::size_t>(entering)] = leavingRow;
    status[static_cast<std::size_t>(entering)] = ColStatus::Basic;
    xB[static_cast<std::size_t>(leavingRow)] = enteringValue;

    // Record the basis change in the factorization; if the update is
    // numerically unsafe or the eta file has grown past its trigger,
    // refactorize the (already-updated) basis instead.
    if (!factor->update(leavingRow, w) || factor->wantRefactorize()) {
      if (!refactorize()) return LpStatus::IterationLimit;
    }

    // Periodic hygiene: recompute basic values to cancel drift.
    if ((iterations & 255) == 0) recomputeBasicValues();
  }
  return LpStatus::IterationLimit;
}

void Tableau::extractSolution(std::vector<double>& x) const {
  x.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j)
    if (status[static_cast<std::size_t>(j)] != ColStatus::Basic)
      x[static_cast<std::size_t>(j)] = nonbasicValue[static_cast<std::size_t>(j)];
  for (int i = 0; i < m; ++i) {
    const int j = basic[static_cast<std::size_t>(i)];
    if (j < n) x[static_cast<std::size_t>(j)] = xB[static_cast<std::size_t>(i)];
  }
}

}  // namespace

std::uint64_t lpStructuralDigest(const LpProblem& problem) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(problem.numRows));
  mix(static_cast<std::uint64_t>(problem.numCols));
  for (const auto& col : problem.cols) {
    mix(static_cast<std::uint64_t>(col.size()));
    for (const auto& [row, coef] : col) {
      mix(static_cast<std::uint64_t>(row));
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(coef));
      std::memcpy(&bits, &coef, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

StandardForm buildLp(const Model& model, const std::vector<double>& lowerOverride,
                     const std::vector<double>& upperOverride) {
  const int numStructural = static_cast<int>(model.numVars());
  HETPAR_CHECK(lowerOverride.size() == model.numVars());
  HETPAR_CHECK(upperOverride.size() == model.numVars());

  StandardForm out;
  out.numStructural = numStructural;
  LpProblem& lp = out.problem;
  lp.numRows = static_cast<int>(model.numConstraints());
  lp.cols.resize(static_cast<std::size_t>(numStructural));
  lp.lower = lowerOverride;
  lp.upper = upperOverride;
  lp.cost.assign(static_cast<std::size_t>(numStructural), 0.0);

  const double sign = model.sense() == Sense::Minimize ? 1.0 : -1.0;
  for (const auto& [idx, coef] : model.objective().terms())
    lp.cost[static_cast<std::size_t>(idx)] = sign * coef;

  lp.rhs.reserve(model.numConstraints());
  int row = 0;
  for (const Constraint& c : model.constraints()) {
    for (const auto& [idx, coef] : c.lhs.terms())
      lp.cols[static_cast<std::size_t>(idx)].emplace_back(row, coef);
    lp.rhs.push_back(c.rhs);
    // Slack column turning the row into an equality:
    //   <=  : lhs + s = rhs with s in [0, inf)
    //   >=  : lhs + s = rhs with s in (-inf, 0]
    //   =   : no slack
    if (c.relation != Relation::Equal) {
      lp.cols.push_back({{row, 1.0}});
      if (c.relation == Relation::LessEqual) {
        lp.lower.push_back(0.0);
        lp.upper.push_back(kInf);
      } else {
        lp.lower.push_back(-kInf);
        lp.upper.push_back(0.0);
      }
      lp.cost.push_back(0.0);
    }
    ++row;
  }
  lp.numCols = static_cast<int>(lp.cols.size());
  return out;
}

LpResult BoundedSimplex::solve(const LpProblem& problem, long long maxIterations,
                               const SimplexBasis* warm, SimplexBasis* basisOut) {
  LpResult result;
  for (int j = 0; j < problem.numCols; ++j) {
    if (problem.lower[static_cast<std::size_t>(j)] >
        problem.upper[static_cast<std::size_t>(j)]) {
      result.status = LpStatus::Infeasible;
      return result;
    }
  }
  if (problem.numRows == 0) {
    // Pure bound problem: each variable sits at its cheapest finite bound.
    result.x.resize(static_cast<std::size_t>(problem.numCols));
    double obj = 0.0;
    for (int j = 0; j < problem.numCols; ++j) {
      const double c = problem.cost[static_cast<std::size_t>(j)];
      const double lo = problem.lower[static_cast<std::size_t>(j)];
      const double hi = problem.upper[static_cast<std::size_t>(j)];
      double v;
      if (c > 0) v = lo;
      else if (c < 0) v = hi;
      else v = std::isfinite(lo) ? lo : (std::isfinite(hi) ? hi : 0.0);
      if (!std::isfinite(v)) {
        result.status = LpStatus::Unbounded;
        return result;
      }
      result.x[static_cast<std::size_t>(j)] = v;
      obj += c * v;
    }
    result.status = LpStatus::Optimal;
    result.objective = obj;
    return result;
  }

  if (maxIterations <= 0)
    maxIterations = 20000 + 200LL * (problem.numRows + problem.numCols);

  const std::uint64_t digest = lpStructuralDigest(problem);

  Tableau t;
  t.engine = engine_;
  bool warmed = false;
  if (warm != nullptr && warm->valid()) {
    // Factor-cache hit requires the same matrix (structural digest) and the
    // same basis columns; equal row counts alone are not enough — reusing a
    // factorization across different matrices silently corrupts the solve.
    const bool cacheHit =
        cacheFactor_ != nullptr && cacheDigest_ == digest &&
        warm->basicCols.size() == cacheBasic_.size() &&
        std::equal(cacheBasic_.begin(), cacheBasic_.end(), warm->basicCols.begin());
    warmed = t.initFromBasis(problem, tol_, *warm, cacheHit ? cacheFactor_.get() : nullptr);
    if (warmed) {
      const LpStatus ph1 = t.boundShiftPhase1(maxIterations);
      if (ph1 == LpStatus::Infeasible) {
        result.status = LpStatus::Infeasible;
        result.iterations = t.iterations;
        result.factorStats = t.factor->stats();
        return result;
      }
      if (ph1 != LpStatus::Optimal) warmed = false;  // cold restart below
    }
  }

  if (!warmed) {
    t = Tableau{};
    t.engine = engine_;
    t.init(problem, tol_);

    // Phase 1: minimize the sum of artificial variables.
    std::vector<double> phase1Cost(static_cast<std::size_t>(t.total), 0.0);
    for (int i = 0; i < t.m; ++i) phase1Cost[static_cast<std::size_t>(t.n + i)] = 1.0;
    LpStatus st = t.runPhase(phase1Cost, maxIterations, /*phase1=*/true);
    if (st != LpStatus::Optimal) {
      result.status = st == LpStatus::Unbounded ? LpStatus::IterationLimit : st;
      result.iterations = t.iterations;
      result.factorStats = t.factor->stats();
      return result;
    }
    double artificialSum = 0.0;
    for (int i = 0; i < t.m; ++i) {
      const int j = t.basic[static_cast<std::size_t>(i)];
      if (j >= t.n) artificialSum += std::fabs(t.xB[static_cast<std::size_t>(i)]);
    }
    for (int j = t.n; j < t.total; ++j) {
      if (t.status[static_cast<std::size_t>(j)] != ColStatus::Basic)
        artificialSum += std::fabs(t.nonbasicValue[static_cast<std::size_t>(j)]);
    }
    if (artificialSum > 1e-6) {
      result.status = LpStatus::Infeasible;
      result.iterations = t.iterations;
      result.factorStats = t.factor->stats();
      return result;
    }

    // Pin artificials to zero for phase 2.
    for (int j = t.n; j < t.total; ++j) {
      t.upper[static_cast<std::size_t>(j)] = 0.0;
      if (t.status[static_cast<std::size_t>(j)] != ColStatus::Basic) {
        t.status[static_cast<std::size_t>(j)] = ColStatus::AtLower;
        t.nonbasicValue[static_cast<std::size_t>(j)] = 0.0;
      }
    }
    t.recomputeBasicValues();
  }

  // Phase 2: optimize the real objective.
  LpStatus st = t.runPhase(t.costPhase2, maxIterations, /*phase1=*/false);
  result.iterations = t.iterations;
  result.factorStats = t.factor->stats();
  if (st != LpStatus::Optimal) {
    result.status = st;
    return result;
  }
  if (basisOut != nullptr) t.exportBasis(*basisOut);
  // Retain the final factorization so the next warm start on this basis
  // skips refactorization (the branch-and-bound parent->child pattern).
  cacheDigest_ = digest;
  cacheBasic_.assign(t.basic.begin(), t.basic.end());
  cacheFactor_ = std::move(t.factor);

  t.extractSolution(result.x);
  double obj = 0.0;
  for (int j = 0; j < t.n; ++j)
    obj += problem.cost[static_cast<std::size_t>(j)] * result.x[static_cast<std::size_t>(j)];
  result.objective = obj;
  result.status = LpStatus::Optimal;
  return result;
}

}  // namespace hetpar::ilp
