// Linear expressions over ILP model variables.
//
// A `Var` is a lightweight handle into a `Model`; `LinearExpr` is an affine
// combination of variables (`sum coef_i * var_i + constant`). Expressions are
// value types with the obvious +,-,* operators so ILP constraints read close
// to the paper's equations.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace hetpar::ilp {

/// Handle to a model variable. Only meaningful together with the Model that
/// created it. The default-constructed handle is invalid.
class Var {
 public:
  Var() = default;
  explicit Var(int index) : index_(index) {}

  bool valid() const { return index_ >= 0; }
  int index() const { return index_; }

  friend bool operator==(Var a, Var b) { return a.index_ == b.index_; }
  friend bool operator!=(Var a, Var b) { return !(a == b); }

 private:
  int index_ = -1;
};

/// Affine expression: sum of (coefficient, variable) terms plus a constant.
/// Terms are kept normalized: sorted by variable index, no duplicates, no
/// zero coefficients.
class LinearExpr {
 public:
  LinearExpr() = default;
  /*implicit*/ LinearExpr(double constant) : constant_(constant) {}
  /*implicit*/ LinearExpr(Var v) { terms_.emplace_back(v.index(), 1.0); }

  static LinearExpr term(double coef, Var v) {
    LinearExpr e;
    if (coef != 0.0) e.terms_.emplace_back(v.index(), coef);
    return e;
  }

  double constant() const { return constant_; }
  const std::vector<std::pair<int, double>>& terms() const { return terms_; }
  bool isConstant() const { return terms_.empty(); }
  std::size_t size() const { return terms_.size(); }

  /// Coefficient of `v` (0 if absent).
  double coefficient(Var v) const;

  LinearExpr& operator+=(const LinearExpr& rhs);
  LinearExpr& operator-=(const LinearExpr& rhs);
  LinearExpr& operator*=(double factor);

  friend LinearExpr operator+(LinearExpr a, const LinearExpr& b) { return a += b; }
  friend LinearExpr operator-(LinearExpr a, const LinearExpr& b) { return a -= b; }
  friend LinearExpr operator*(LinearExpr a, double f) { return a *= f; }
  friend LinearExpr operator*(double f, LinearExpr a) { return a *= f; }
  friend LinearExpr operator-(LinearExpr a) { return a *= -1.0; }

  /// Debug rendering, e.g. "2*x3 - x7 + 1.5".
  std::string str() const;

 private:
  void normalize();
  std::vector<std::pair<int, double>> terms_;  // (var index, coefficient)
  double constant_ = 0.0;
};

}  // namespace hetpar::ilp
