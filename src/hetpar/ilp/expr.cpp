#include "hetpar/ilp/expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hetpar::ilp {

double LinearExpr::coefficient(Var v) const {
  auto it = std::lower_bound(terms_.begin(), terms_.end(), v.index(),
                             [](const auto& term, int idx) { return term.first < idx; });
  if (it != terms_.end() && it->first == v.index()) return it->second;
  return 0.0;
}

void LinearExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    int idx = terms_[i].first;
    double coef = 0.0;
    while (i < terms_.size() && terms_[i].first == idx) {
      coef += terms_[i].second;
      ++i;
    }
    if (coef != 0.0) terms_[out++] = {idx, coef};
  }
  terms_.resize(out);
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& rhs) {
  constant_ += rhs.constant_;
  terms_.insert(terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  normalize();
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& rhs) {
  constant_ -= rhs.constant_;
  terms_.reserve(terms_.size() + rhs.terms_.size());
  for (const auto& [idx, coef] : rhs.terms_) terms_.emplace_back(idx, -coef);
  normalize();
  return *this;
}

LinearExpr& LinearExpr::operator*=(double factor) {
  constant_ *= factor;
  if (factor == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [idx, coef] : terms_) coef *= factor;
  return *this;
}

std::string LinearExpr::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [idx, coef] : terms_) {
    if (first) {
      if (coef < 0) os << "-";
    } else {
      os << (coef < 0 ? " - " : " + ");
    }
    const double mag = std::fabs(coef);
    if (mag != 1.0) os << mag << "*";
    os << "x" << idx;
    first = false;
  }
  if (constant_ != 0.0 || first) {
    if (!first) os << (constant_ < 0 ? " - " : " + ") << std::fabs(constant_);
    else os << constant_;
  }
  return os.str();
}

}  // namespace hetpar::ilp
