// Basis-inverse representations for the bounded-variable simplex.
//
// The simplex driver only ever needs four operations on the basis matrix B
// (whose column at slot i is the constraint column of the variable basic in
// row i):
//
//   factorize   rebuild the representation from the basis columns
//   ftran       solve B x = b        (entering column / basic values)
//   btran       solve B^T y = c_B    (duals for pricing)
//   update      replace the column at one slot after a pivot, given the
//               FTRAN'd entering column w = B^{-1} a_entering
//
// Two implementations live behind this interface:
//
//   SparseLuFactor   sparse LU via Gaussian elimination with Markowitz-style
//                    pivot selection (fill-in control) and threshold partial
//                    pivoting (stability), FTRAN/BTRAN against the stored
//                    L/U factors, product-form eta updates per simplex pivot
//                    and an eta-length trigger that asks the driver to
//                    refactorize. This is the production engine: the
//                    parallelizer's ILPPAR models touch 2-5 variables per
//                    constraint, so factors and etas stay tiny while the
//                    dense inverse pays O(m^2) per iteration regardless.
//
//   DenseInverseFactor  the seed's explicit dense inverse (Gauss-Jordan
//                    refactorization, rank-1 pivot updates). Kept for one
//                    release behind SolverEngine::Dense as the differential
//                    oracle for the revised engine.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "hetpar/ilp/model.hpp"

namespace hetpar::ilp {

/// Counters a factorization accumulates over one simplex solve. Absorbed
/// into LpResult/SolveStats and ultimately parallel::IlpStatistics.
struct FactorStats {
  long long refactorizations = 0;  ///< factorize() calls (incl. the first)
  long long etaUpdates = 0;        ///< pivot updates applied between refactorizations
  long long peakEtaLength = 0;     ///< longest eta file seen (sparse engine)
  long long peakFillNonzeros = 0;  ///< largest factor nonzero count seen
};

class BasisFactor {
 public:
  virtual ~BasisFactor() = default;

  /// Deep copy (used by BoundedSimplex's warm-start factor cache).
  virtual std::unique_ptr<BasisFactor> clone() const = 0;

  /// Rebuilds the representation for the basis whose slot-i column is
  /// cols[basic[i]]. Returns false on a (numerically) singular basis, in
  /// which case the object must not be used until a successful factorize.
  virtual bool factorize(const std::vector<std::vector<std::pair<int, double>>>& cols,
                         const std::vector<int>& basic, int m) = 0;

  /// In: b indexed by constraint row. Out: x indexed by basis slot, B x = b.
  virtual void ftran(std::vector<double>& v) const = 0;

  /// FTRAN of a sparse column: scatters `col` into `out` (pre-sized to m,
  /// zeroed here) and solves. The dense engine overrides this to exploit
  /// column sparsity the way the seed's explicit-inverse loop did, so the
  /// differential oracle keeps its historical per-iteration cost.
  virtual void ftranColumn(const std::vector<std::pair<int, double>>& col,
                           std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    for (const auto& [row, coef] : col) out[static_cast<std::size_t>(row)] = coef;
    ftran(out);
  }

  /// In: c indexed by basis slot. Out: y indexed by constraint row,
  /// B^T y = c.
  virtual void btran(std::vector<double>& v) const = 0;

  /// Records the basis change "column at slot r replaced by the column whose
  /// FTRAN is w". Returns false when the update is numerically unsafe (tiny
  /// pivot w[r]); the caller must refactorize instead.
  virtual bool update(int r, const std::vector<double>& w) = 0;

  /// True when the representation has degraded enough (eta-file length /
  /// accumulated fill) that the next iteration should refactorize. The dense
  /// inverse never asks: its rank-1 update cost is flat.
  virtual bool wantRefactorize() const = 0;

  const FactorStats& stats() const { return stats_; }
  /// Zeroes the counters; used after cloning a cached factor so a new solve
  /// does not inherit the previous solve's counts.
  void resetStats() { stats_ = FactorStats{}; }

 protected:
  FactorStats stats_;
};

/// Factory keyed on the engine flag in SolveOptions.
std::unique_ptr<BasisFactor> makeBasisFactor(SolverEngine engine);

}  // namespace hetpar::ilp
