// Branch-and-bound MILP solver on top of the bounded-variable simplex.
//
// Depth-first search with best-incumbent pruning; branches on the most
// fractional integer variable, exploring the child nearest the LP value
// first. Proves optimality (paper: "solvers guarantee to find the optimal
// solution if one exists and they can determine that they found it") unless
// the node or time limit interrupts it, in which case the best incumbent is
// returned with status Feasible.
#pragma once

#include "hetpar/ilp/model.hpp"
#include "hetpar/ilp/simplex.hpp"

namespace hetpar::ilp {

class BranchAndBoundSolver final : public Solver {
 public:
  explicit BranchAndBoundSolver(SolveOptions options = {}) : options_(options) {}

  Solution solve(const Model& model) override;
  const SolveStats& lastStats() const override { return stats_; }

  const SolveOptions& options() const { return options_; }
  void setOptions(const SolveOptions& options) { options_ = options; }

 private:
  SolveOptions options_;
  SolveStats stats_;
};

/// Creates the default solver used across hetpar (mirrors the paper's
/// pluggable lpsolve/CPLEX choice point).
inline BranchAndBoundSolver makeDefaultSolver(SolveOptions options = {}) {
  return BranchAndBoundSolver(options);
}

/// Process-wide LP-engine totals, accumulated atomically by every
/// BranchAndBoundSolver::solve regardless of which thread or subsystem ran
/// it. Drivers report these (hetparc --explain-timings, hetpar-fuzz's
/// "simplex" JSON section) to expose solver behavior without threading
/// statistics through every call chain.
struct SolverTotals {
  long long solves = 0;
  long long bnbNodes = 0;
  long long simplexIterations = 0;
  long long refactorizations = 0;
  long long etaUpdates = 0;
  long long peakFillNonzeros = 0;
  double wallSeconds = 0.0;
};

SolverTotals solverTotals();
void resetSolverTotals();

}  // namespace hetpar::ilp
