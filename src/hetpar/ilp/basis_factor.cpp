#include "hetpar/ilp/basis_factor.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace hetpar::ilp {

namespace {

/// Entries this small relative to the pivot scale are dropped during
/// elimination and eta sparsification: keeping them buys nothing but fill.
constexpr double kDropTol = 1e-13;
/// Threshold partial pivoting: a pivot must carry at least this fraction of
/// the largest entry in its column to be eligible (stability vs sparsity).
constexpr double kPivotThreshold = 0.01;
/// Pivots below this absolute magnitude mean a singular basis.
constexpr double kSingularTol = 1e-11;
/// Columns examined per Markowitz search before settling (real codes cap
/// the search the same way; the matrices here are so sparse that the first
/// few minimum-count columns almost always contain the winner).
constexpr int kMarkowitzSearchCap = 8;

// ---------------------------------------------------------------------------
// Dense explicit inverse (the seed engine, kept as the differential oracle)
// ---------------------------------------------------------------------------

class DenseInverseFactor final : public BasisFactor {
 public:
  std::unique_ptr<BasisFactor> clone() const override {
    return std::make_unique<DenseInverseFactor>(*this);
  }

  bool factorize(const std::vector<std::vector<std::pair<int, double>>>& cols,
                 const std::vector<int>& basic, int m) override {
    m_ = m;
    // Build the basis matrix column-by-column, then invert by Gauss-Jordan
    // with partial pivoting (exactly the seed's refactorization).
    std::vector<double> mat(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) {
      const int j = basic[static_cast<std::size_t>(i)];
      for (const auto& [row, coef] : cols[static_cast<std::size_t>(j)])
        mat[static_cast<std::size_t>(row) * m + i] = coef;
    }
    std::vector<double> inv(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;

    for (int col = 0; col < m; ++col) {
      int pivotRow = col;
      double best = std::fabs(mat[static_cast<std::size_t>(col) * m + col]);
      for (int r = col + 1; r < m; ++r) {
        const double v = std::fabs(mat[static_cast<std::size_t>(r) * m + col]);
        if (v > best) {
          best = v;
          pivotRow = r;
        }
      }
      if (best < 1e-12) return false;
      if (pivotRow != col) {
        for (int k = 0; k < m; ++k) {
          std::swap(mat[static_cast<std::size_t>(pivotRow) * m + k],
                    mat[static_cast<std::size_t>(col) * m + k]);
          std::swap(inv[static_cast<std::size_t>(pivotRow) * m + k],
                    inv[static_cast<std::size_t>(col) * m + k]);
        }
      }
      const double piv = mat[static_cast<std::size_t>(col) * m + col];
      for (int k = 0; k < m; ++k) {
        mat[static_cast<std::size_t>(col) * m + k] /= piv;
        inv[static_cast<std::size_t>(col) * m + k] /= piv;
      }
      for (int r = 0; r < m; ++r) {
        if (r == col) continue;
        const double f = mat[static_cast<std::size_t>(r) * m + col];
        if (f == 0.0) continue;
        for (int k = 0; k < m; ++k) {
          mat[static_cast<std::size_t>(r) * m + k] -=
              f * mat[static_cast<std::size_t>(col) * m + k];
          inv[static_cast<std::size_t>(r) * m + k] -=
              f * inv[static_cast<std::size_t>(col) * m + k];
        }
      }
    }
    binv_ = std::move(inv);
    ++stats_.refactorizations;
    stats_.peakFillNonzeros =
        std::max(stats_.peakFillNonzeros, static_cast<long long>(m) * m);
    return true;
  }

  void ftran(std::vector<double>& v) const override {
    // x = Binv * b; Binv row i covers slot i.
    std::vector<double> x(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const double* row = &binv_[static_cast<std::size_t>(i) * m_];
      double s = 0.0;
      for (int k = 0; k < m_; ++k) s += row[k] * v[static_cast<std::size_t>(k)];
      x[static_cast<std::size_t>(i)] = s;
    }
    v = std::move(x);
  }

  void ftranColumn(const std::vector<std::pair<int, double>>& col,
                   std::vector<double>& out) const override {
    // w[i] = sum over column entries of binv[i][row] * coef — the seed's
    // sparsity-exploiting loop, O(m * nnz(col)) instead of O(m^2).
    std::fill(out.begin(), out.end(), 0.0);
    for (const auto& [row, coef] : col) {
      for (int i = 0; i < m_; ++i)
        out[static_cast<std::size_t>(i)] +=
            binv_[static_cast<std::size_t>(i) * m_ + row] * coef;
    }
  }

  void btran(std::vector<double>& v) const override {
    // y = Binv^T c; accumulate slot-major like the seed's dual loop so the
    // dense engine's floating-point behavior matches the pre-split code.
    std::vector<double> y(static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < m_; ++k) {
      const double c = v[static_cast<std::size_t>(k)];
      if (c == 0.0) continue;
      const double* row = &binv_[static_cast<std::size_t>(k) * m_];
      for (int i = 0; i < m_; ++i) y[static_cast<std::size_t>(i)] += c * row[i];
    }
    v = std::move(y);
  }

  bool update(int r, const std::vector<double>& w) override {
    const double pivot = w[static_cast<std::size_t>(r)];
    if (std::fabs(pivot) < 1e-9) return false;
    double* pivotRowPtr = &binv_[static_cast<std::size_t>(r) * m_];
    const double invPivot = 1.0 / pivot;
    for (int k = 0; k < m_; ++k) pivotRowPtr[k] *= invPivot;
    for (int i = 0; i < m_; ++i) {
      if (i == r) continue;
      const double f = w[static_cast<std::size_t>(i)];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<std::size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * pivotRowPtr[k];
    }
    ++stats_.etaUpdates;
    return true;
  }

  bool wantRefactorize() const override { return false; }

 private:
  int m_ = 0;
  std::vector<double> binv_;  // m x m row-major
};

// ---------------------------------------------------------------------------
// Sparse LU with Markowitz pivot selection + product-form eta updates
// ---------------------------------------------------------------------------

class SparseLuFactor final : public BasisFactor {
 public:
  std::unique_ptr<BasisFactor> clone() const override {
    return std::make_unique<SparseLuFactor>(*this);
  }

  bool factorize(const std::vector<std::vector<std::pair<int, double>>>& cols,
                 const std::vector<int>& basic, int m) override;
  void ftran(std::vector<double>& v) const override;
  void btran(std::vector<double>& v) const override;
  bool update(int r, const std::vector<double>& w) override;

  bool wantRefactorize() const override {
    // Eta-length trigger: each eta adds work to every later FTRAN/BTRAN, so
    // once the file is as long as the basis (or its fill rivals the factor
    // fill several times over) a refactorization is cheaper than carrying
    // on. Clamped so tiny bases still batch a useful number of pivots.
    const long long etaCap = std::clamp<long long>(m_, 32, 160);
    return static_cast<long long>(etas_.size()) > etaCap ||
           etaNonzeros_ > 6 * luNonzeros_ + 8 * m_;
  }

 private:
  /// One L operation: v[row] -= mult * v[pivotRow(step)].
  struct LEntry {
    int row;
    double mult;
  };
  /// One product-form eta: basis slot `slot` was repivoted on column w;
  /// `col` holds the off-pivot entries of w, `pivot` holds w[slot].
  struct Eta {
    int slot;
    double pivot;
    std::vector<std::pair<int, double>> col;
  };

  int m_ = 0;
  std::vector<int> prow_, pcol_;  // per elimination step: pivot row / slot
  std::vector<LEntry> lEntries_;  // grouped by step
  std::vector<int> lStart_;       // size m_+1
  std::vector<std::vector<std::pair<int, double>>> urows_;  // (slot, value), j>step
  std::vector<std::vector<std::pair<int, double>>> ucols_;  // (step k', value), k'<step
  std::vector<double> udiag_;
  std::vector<Eta> etas_;
  long long luNonzeros_ = 0;
  long long etaNonzeros_ = 0;
  // FTRAN/BTRAN run once or twice per simplex iteration; reusing one scratch
  // vector (swapped with the caller's) keeps the hot path allocation-free.
  mutable std::vector<double> scratch_;

  void noteFill() {
    stats_.peakFillNonzeros =
        std::max(stats_.peakFillNonzeros, luNonzeros_ + etaNonzeros_);
    stats_.peakEtaLength =
        std::max(stats_.peakEtaLength, static_cast<long long>(etas_.size()));
  }
};

bool SparseLuFactor::factorize(const std::vector<std::vector<std::pair<int, double>>>& cols,
                               const std::vector<int>& basic, int m) {
  m_ = m;
  etas_.clear();
  etaNonzeros_ = 0;
  prow_.assign(static_cast<std::size_t>(m), -1);
  pcol_.assign(static_cast<std::size_t>(m), -1);
  lEntries_.clear();
  lStart_.assign(static_cast<std::size_t>(m) + 1, 0);
  urows_.assign(static_cast<std::size_t>(m), {});
  ucols_.assign(static_cast<std::size_t>(m), {});
  udiag_.assign(static_cast<std::size_t>(m), 0.0);

  // Working matrix, row-wise. Entries are (slot, value); rows are original
  // constraint rows. colRows tracks candidate rows per slot (may go stale
  // after eliminations; stale hits are filtered through rowValue).
  std::vector<std::vector<std::pair<int, double>>> rows(static_cast<std::size_t>(m));
  std::vector<std::vector<int>> colRows(static_cast<std::size_t>(m));
  std::vector<int> colCount(static_cast<std::size_t>(m), 0);
  for (int slot = 0; slot < m; ++slot) {
    const int j = basic[static_cast<std::size_t>(slot)];
    for (const auto& [row, coef] : cols[static_cast<std::size_t>(j)]) {
      if (coef == 0.0) continue;
      rows[static_cast<std::size_t>(row)].emplace_back(slot, coef);
      colRows[static_cast<std::size_t>(slot)].push_back(row);
      ++colCount[static_cast<std::size_t>(slot)];
    }
  }

  std::vector<bool> rowActive(static_cast<std::size_t>(m), true);
  std::vector<bool> colActive(static_cast<std::size_t>(m), true);
  // Scratch for sparse row combination: value + presence per slot.
  std::vector<double> accum(static_cast<std::size_t>(m), 0.0);
  std::vector<bool> present(static_cast<std::size_t>(m), false);
  // Candidate buffer for the per-step Markowitz search: the few active
  // slots with the smallest column counts, selected by one linear scan
  // (sorting all slots each step costs O(m^2 log m) per refactorization and
  // dominated the whole solve on ~300-row models).
  std::vector<int> slotOrder;
  slotOrder.reserve(static_cast<std::size_t>(kMarkowitzSearchCap));

  auto rowCount = [&](int row) {
    return static_cast<int>(rows[static_cast<std::size_t>(row)].size());
  };

  for (int step = 0; step < m; ++step) {
    // --- Markowitz pivot search over the few minimum-count columns:
    // insertion-select up to kMarkowitzSearchCap active slots by count.
    slotOrder.clear();
    for (int s = 0; s < m; ++s) {
      if (!colActive[static_cast<std::size_t>(s)]) continue;
      const int count = colCount[static_cast<std::size_t>(s)];
      std::size_t pos = slotOrder.size();
      while (pos > 0 &&
             colCount[static_cast<std::size_t>(slotOrder[pos - 1])] > count)
        --pos;
      if (pos >= static_cast<std::size_t>(kMarkowitzSearchCap)) continue;
      if (slotOrder.size() < static_cast<std::size_t>(kMarkowitzSearchCap))
        slotOrder.push_back(s);
      std::copy_backward(slotOrder.begin() + static_cast<std::ptrdiff_t>(pos),
                         slotOrder.end() - 1, slotOrder.end());
      slotOrder[pos] = s;
    }

    int bestRow = -1, bestSlot = -1;
    double bestValue = 0.0;
    long long bestScore = -1;
    auto examine = [&](int slot) {
      // Column max for the stability threshold, and the candidate entries.
      double colMax = 0.0;
      for (int row : colRows[static_cast<std::size_t>(slot)]) {
        if (!rowActive[static_cast<std::size_t>(row)]) continue;
        for (const auto& [s, v] : rows[static_cast<std::size_t>(row)]) {
          if (s == slot) {
            colMax = std::max(colMax, std::fabs(v));
            break;
          }
        }
      }
      if (colMax < kSingularTol) return;
      for (int row : colRows[static_cast<std::size_t>(slot)]) {
        if (!rowActive[static_cast<std::size_t>(row)]) continue;
        double value = 0.0;
        bool found = false;
        for (const auto& [s, v] : rows[static_cast<std::size_t>(row)]) {
          if (s == slot) {
            value = v;
            found = true;
            break;
          }
        }
        if (!found || std::fabs(value) < kPivotThreshold * colMax ||
            std::fabs(value) < kSingularTol)
          continue;
        const long long score =
            static_cast<long long>(rowCount(row) - 1) *
            (colCount[static_cast<std::size_t>(slot)] - 1);
        if (bestRow < 0 || score < bestScore ||
            (score == bestScore && std::fabs(value) > std::fabs(bestValue))) {
          bestScore = score;
          bestRow = row;
          bestSlot = slot;
          bestValue = value;
        }
      }
    };
    for (int slot : slotOrder) {
      examine(slot);
      if (bestScore == 0) break;  // can't beat a singleton pivot
    }
    if (bestRow < 0) {
      // No numerically eligible pivot among the minimum-count candidates;
      // scan every remaining active slot before declaring singularity.
      for (int s = 0; s < m && bestRow < 0; ++s)
        if (colActive[static_cast<std::size_t>(s)]) examine(s);
    }
    if (bestRow < 0) return false;  // structurally or numerically singular

    prow_[static_cast<std::size_t>(step)] = bestRow;
    pcol_[static_cast<std::size_t>(step)] = bestSlot;
    rowActive[static_cast<std::size_t>(bestRow)] = false;
    colActive[static_cast<std::size_t>(bestSlot)] = false;

    // Freeze the pivot row as U row `step`.
    udiag_[static_cast<std::size_t>(step)] = bestValue;
    auto& urow = urows_[static_cast<std::size_t>(step)];
    for (const auto& [s, v] : rows[static_cast<std::size_t>(bestRow)]) {
      if (s == bestSlot) continue;
      urow.emplace_back(s, v);
      --colCount[static_cast<std::size_t>(s)];
    }
    --colCount[static_cast<std::size_t>(bestSlot)];

    // Eliminate the pivot column from every other active row.
    lStart_[static_cast<std::size_t>(step)] = static_cast<int>(lEntries_.size());
    const auto& pivotRow = rows[static_cast<std::size_t>(bestRow)];
    const double dropBelow = kDropTol * std::fabs(bestValue);
    for (int row : colRows[static_cast<std::size_t>(bestSlot)]) {
      if (!rowActive[static_cast<std::size_t>(row)]) continue;
      auto& target = rows[static_cast<std::size_t>(row)];
      double value = 0.0;
      bool found = false;
      for (const auto& [s, v] : target) {
        if (s == bestSlot) {
          value = v;
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale colRows entry
      const double mult = value / bestValue;
      lEntries_.push_back({row, mult});

      // target -= mult * pivotRow (sparse combine through the scratch).
      for (const auto& [s, v] : target) {
        accum[static_cast<std::size_t>(s)] = v;
        present[static_cast<std::size_t>(s)] = true;
      }
      for (const auto& [s, v] : pivotRow) {
        if (!present[static_cast<std::size_t>(s)]) {
          present[static_cast<std::size_t>(s)] = true;
          accum[static_cast<std::size_t>(s)] = -mult * v;
          if (s != bestSlot && colActive[static_cast<std::size_t>(s)]) {
            // Fill-in: register the row under the new column.
            colRows[static_cast<std::size_t>(s)].push_back(row);
            ++colCount[static_cast<std::size_t>(s)];
          }
        } else {
          accum[static_cast<std::size_t>(s)] -= mult * v;
        }
      }
      std::vector<std::pair<int, double>> combined;
      combined.reserve(target.size() + pivotRow.size());
      auto consider = [&](int s) {
        if (!present[static_cast<std::size_t>(s)]) return;
        present[static_cast<std::size_t>(s)] = false;
        const double v = accum[static_cast<std::size_t>(s)];
        accum[static_cast<std::size_t>(s)] = 0.0;
        if (s == bestSlot) {
          --colCount[static_cast<std::size_t>(s)];
          return;  // eliminated by construction
        }
        if (std::fabs(v) <= dropBelow) {
          if (colActive[static_cast<std::size_t>(s)])
            --colCount[static_cast<std::size_t>(s)];
          return;
        }
        combined.emplace_back(s, v);
      };
      for (const auto& [s, v] : target) consider(s);
      for (const auto& [s, v] : pivotRow) consider(s);
      target = std::move(combined);
    }
  }
  lStart_[static_cast<std::size_t>(m)] = static_cast<int>(lEntries_.size());

  // Column-wise U view for BTRAN's forward substitution. slotStep maps a
  // basis slot to the elimination step that pivoted it.
  std::vector<int> slotStep(static_cast<std::size_t>(m), -1);
  for (int k = 0; k < m; ++k) slotStep[static_cast<std::size_t>(pcol_[static_cast<std::size_t>(k)])] = k;
  for (int k = 0; k < m; ++k) {
    for (const auto& [slot, v] : urows_[static_cast<std::size_t>(k)])
      ucols_[static_cast<std::size_t>(slotStep[static_cast<std::size_t>(slot)])].emplace_back(k, v);
  }

  luNonzeros_ = static_cast<long long>(lEntries_.size()) + m;
  for (const auto& urow : urows_) luNonzeros_ += static_cast<long long>(urow.size());
  ++stats_.refactorizations;
  noteFill();
  return true;
}

void SparseLuFactor::ftran(std::vector<double>& v) const {
  // Apply L (the recorded eliminations) to the row-indexed rhs.
  for (int k = 0; k < m_; ++k) {
    const double pv = v[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])];
    if (pv == 0.0) continue;
    for (int e = lStart_[static_cast<std::size_t>(k)]; e < lStart_[static_cast<std::size_t>(k) + 1]; ++e)
      v[static_cast<std::size_t>(lEntries_[static_cast<std::size_t>(e)].row)] -=
          lEntries_[static_cast<std::size_t>(e)].mult * pv;
  }
  // Back-substitute U into slot-indexed x (the reusable scratch).
  std::vector<double>& x = scratch_;
  x.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = m_ - 1; k >= 0; --k) {
    double val = v[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])];
    for (const auto& [slot, u] : urows_[static_cast<std::size_t>(k)])
      val -= u * x[static_cast<std::size_t>(slot)];
    x[static_cast<std::size_t>(pcol_[static_cast<std::size_t>(k)])] =
        val / udiag_[static_cast<std::size_t>(k)];
  }
  v.swap(x);
  // Product-form etas, oldest first.
  for (const Eta& eta : etas_) {
    double& vr = v[static_cast<std::size_t>(eta.slot)];
    if (vr == 0.0) continue;
    vr /= eta.pivot;
    for (const auto& [i, w] : eta.col) v[static_cast<std::size_t>(i)] -= w * vr;
  }
}

void SparseLuFactor::btran(std::vector<double>& v) const {
  // Transposed etas, newest first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double s = v[static_cast<std::size_t>(it->slot)];
    for (const auto& [i, w] : it->col) s -= w * v[static_cast<std::size_t>(i)];
    v[static_cast<std::size_t>(it->slot)] = s / it->pivot;
  }
  // Forward-substitute U^T: z[prow_k] from the slot-indexed costs.
  std::vector<double>& z = scratch_;
  z.assign(static_cast<std::size_t>(m_), 0.0);
  for (int k = 0; k < m_; ++k) {
    double val = v[static_cast<std::size_t>(pcol_[static_cast<std::size_t>(k)])];
    for (const auto& [kPrev, u] : ucols_[static_cast<std::size_t>(k)])
      val -= u * z[static_cast<std::size_t>(prow_[static_cast<std::size_t>(kPrev)])];
    z[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])] =
        val / udiag_[static_cast<std::size_t>(k)];
  }
  // Apply L^T in reverse step order.
  for (int k = m_ - 1; k >= 0; --k) {
    double& pv = z[static_cast<std::size_t>(prow_[static_cast<std::size_t>(k)])];
    for (int e = lStart_[static_cast<std::size_t>(k)]; e < lStart_[static_cast<std::size_t>(k) + 1]; ++e)
      pv -= lEntries_[static_cast<std::size_t>(e)].mult *
            z[static_cast<std::size_t>(lEntries_[static_cast<std::size_t>(e)].row)];
  }
  v.swap(z);
}

bool SparseLuFactor::update(int r, const std::vector<double>& w) {
  const double pivot = w[static_cast<std::size_t>(r)];
  double wMax = 0.0;
  for (double x : w) wMax = std::max(wMax, std::fabs(x));
  // Reject pivots that are absolutely tiny or badly dominated by the rest
  // of the column: the product-form eta would amplify error by wMax/pivot.
  if (std::fabs(pivot) < 1e-9 || std::fabs(pivot) < 1e-7 * wMax) return false;

  Eta eta;
  eta.slot = r;
  eta.pivot = pivot;
  const double dropBelow = kDropTol * std::fabs(pivot);
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double x = w[static_cast<std::size_t>(i)];
    if (std::fabs(x) > dropBelow) eta.col.emplace_back(i, x);
  }
  etaNonzeros_ += static_cast<long long>(eta.col.size()) + 1;
  etas_.push_back(std::move(eta));
  ++stats_.etaUpdates;
  noteFill();
  return true;
}

}  // namespace

std::unique_ptr<BasisFactor> makeBasisFactor(SolverEngine engine) {
  if (engine == SolverEngine::Dense) return std::make_unique<DenseInverseFactor>();
  return std::make_unique<SparseLuFactor>();
}

}  // namespace hetpar::ilp
