#include "hetpar/ilp/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <vector>

#include "hetpar/support/error.hpp"
#include "hetpar/support/log.hpp"

namespace hetpar::ilp {

namespace {

// Process-wide totals (see SolverTotals). Relaxed atomics: the counters are
// diagnostics, not synchronization.
std::atomic<long long> gSolves{0};
std::atomic<long long> gBnbNodes{0};
std::atomic<long long> gSimplexIterations{0};
std::atomic<long long> gRefactorizations{0};
std::atomic<long long> gEtaUpdates{0};
std::atomic<long long> gPeakFillNonzeros{0};
std::atomic<long long> gWallMicros{0};

void accumulateTotals(const SolveStats& s) {
  gSolves.fetch_add(1, std::memory_order_relaxed);
  gBnbNodes.fetch_add(s.nodesExplored, std::memory_order_relaxed);
  gSimplexIterations.fetch_add(s.simplexIterations, std::memory_order_relaxed);
  gRefactorizations.fetch_add(s.refactorizations, std::memory_order_relaxed);
  gEtaUpdates.fetch_add(s.etaUpdates, std::memory_order_relaxed);
  long long peak = gPeakFillNonzeros.load(std::memory_order_relaxed);
  while (s.peakFillNonzeros > peak &&
         !gPeakFillNonzeros.compare_exchange_weak(peak, s.peakFillNonzeros,
                                                  std::memory_order_relaxed)) {
  }
  gWallMicros.fetch_add(static_cast<long long>(s.wallSeconds * 1e6),
                        std::memory_order_relaxed);
}

struct BnbNode {
  // Full bound vectors (models are small enough that replaying deltas is
  // not worth the complexity).
  std::vector<double> lower;
  std::vector<double> upper;
  double parentBound;  // LP bound of the parent, for ordering/pruning
  // Parent's optimal basis: warm start for this node's relaxation (one
  // bound differs, so the dual-feasible parent basis re-solves in a few
  // pivots instead of a cold two-phase run).
  std::shared_ptr<const SimplexBasis> warmBasis;
};

}  // namespace

Solution BranchAndBoundSolver::solve(const Model& model) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  stats_ = SolveStats{};
  stats_.numVars = model.numVars();
  stats_.numConstraints = model.numConstraints();
  stats_.numIntegerVars = model.numIntegerVars();

  const std::size_t n = model.numVars();
  std::vector<double> rootLower(n), rootUpper(n);
  std::vector<bool> isInt(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const VarInfo& v = model.vars()[i];
    rootLower[i] = v.lowerBound;
    rootUpper[i] = v.upperBound;
    isInt[i] = v.type != VarType::Continuous;
    if (isInt[i]) {
      // Integer variables can have their bounds rounded inward immediately.
      rootLower[i] = std::ceil(rootLower[i] - 1e-9);
      rootUpper[i] = std::floor(rootUpper[i] + 1e-9);
    }
  }

  // Standard form is built once; per-node solves only swap structural bounds.
  StandardForm sf = buildLp(model, rootLower, rootUpper);
  LpProblem& lp = sf.problem;

  BoundedSimplex simplex(1e-9, options_.engine);

  Solution best;
  best.status = SolveStatus::Infeasible;
  double bestInternal = kInfinity;  // internal objective (always minimized)
  bool provenOptimal = true;
  bool sawUnbounded = false;

  std::vector<BnbNode> stack;
  stack.push_back({rootLower, rootUpper, -kInfinity, nullptr});

  const double intTol = options_.integralityTol;

  while (!stack.empty()) {
    if (stats_.nodesExplored >= options_.maxNodes || elapsed() > options_.timeLimitSeconds) {
      provenOptimal = false;
      break;
    }
    BnbNode node = std::move(stack.back());
    stack.pop_back();
    ++stats_.nodesExplored;

    if (node.parentBound >= bestInternal - 1e-9) continue;  // pruned by bound

    for (std::size_t i = 0; i < n; ++i) {
      lp.lower[i] = node.lower[i];
      lp.upper[i] = node.upper[i];
    }
    auto solvedBasis = std::make_shared<SimplexBasis>();
    LpResult relax =
        simplex.solve(lp, 0, node.warmBasis.get(), solvedBasis.get());
    stats_.simplexIterations += relax.iterations;
    stats_.refactorizations += relax.factorStats.refactorizations;
    stats_.etaUpdates += relax.factorStats.etaUpdates;
    stats_.peakFillNonzeros =
        std::max(stats_.peakFillNonzeros, relax.factorStats.peakFillNonzeros);

    if (relax.status == LpStatus::Infeasible) continue;
    if (relax.status == LpStatus::Unbounded) {
      sawUnbounded = true;
      break;
    }
    if (relax.status != LpStatus::Optimal) {
      // The LP engine gave up on this node. Instead of dropping it (which
      // would forfeit the optimality proof), split on any still-unfixed
      // integer variable: the children are strictly more constrained and
      // eventually become trivial for the LP.
      int splitVar = -1;
      for (std::size_t i = 0; i < n; ++i) {
        if (isInt[i] && node.lower[i] < node.upper[i] - 0.5) {
          splitVar = static_cast<int>(i);
          break;
        }
      }
      if (splitVar < 0) {
        provenOptimal = false;
        log::warn() << "bnb: dropping fully-fixed node after simplex iteration limit in model '"
                    << model.name() << "'";
        continue;
      }
      const auto sv = static_cast<std::size_t>(splitVar);
      const double mid = std::floor((node.lower[sv] + node.upper[sv]) / 2.0);
      BnbNode down{node.lower, node.upper, node.parentBound, node.warmBasis};
      down.upper[sv] = mid;
      BnbNode up{std::move(node.lower), std::move(node.upper), node.parentBound,
                 node.warmBasis};
      up.lower[sv] = mid + 1.0;
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
      continue;
    }
    if (relax.objective >= bestInternal - 1e-9) continue;

    // Find the fractional integer variable with the highest branch
    // priority; among equals, the most fractional one (closest to .5).
    int branchVar = -1;
    double branchDist = kInfinity;
    int branchPrio = std::numeric_limits<int>::min();
    for (std::size_t i = 0; i < n; ++i) {
      if (!isInt[i]) continue;
      const double v = relax.x[i];
      const double frac = std::fabs(v - std::round(v));
      if (frac <= intTol) continue;
      const int prio = model.vars()[i].branchPriority;
      const double dist = std::fabs(frac - 0.5);
      if (prio > branchPrio || (prio == branchPrio && dist < branchDist)) {
        branchPrio = prio;
        branchDist = dist;
        branchVar = static_cast<int>(i);
      }
    }

    if (branchVar < 0) {
      // Integral: new incumbent.
      if (relax.objective < bestInternal - 1e-9) {
        bestInternal = relax.objective;
        best.values.assign(relax.x.begin(), relax.x.begin() + static_cast<long>(n));
        for (std::size_t i = 0; i < n; ++i)
          if (isInt[i]) best.values[i] = std::round(best.values[i]);
        best.objective = model.evalObjective(best.values);
        best.status = SolveStatus::Optimal;  // finalized below
      }
      continue;
    }

    // Branch: floor child and ceil child; explore the nearer one first
    // (pushed last).
    const auto bv = static_cast<std::size_t>(branchVar);
    const double v = relax.x[bv];
    BnbNode down{node.lower, node.upper, relax.objective, solvedBasis};
    down.upper[bv] = std::floor(v);
    BnbNode up{std::move(node.lower), std::move(node.upper), relax.objective, solvedBasis};
    up.lower[bv] = std::ceil(v);

    const bool downFirst = (v - std::floor(v)) < 0.5;
    if (downFirst) {
      if (up.lower[bv] <= up.upper[bv]) stack.push_back(std::move(up));
      if (down.lower[bv] <= down.upper[bv]) stack.push_back(std::move(down));
    } else {
      if (down.lower[bv] <= down.upper[bv]) stack.push_back(std::move(down));
      if (up.lower[bv] <= up.upper[bv]) stack.push_back(std::move(up));
    }
  }

  stats_.wallSeconds = elapsed();
  accumulateTotals(stats_);

  if (sawUnbounded) {
    Solution out;
    out.status = SolveStatus::Unbounded;
    return out;
  }
  if (!best.hasValues()) {
    Solution out;
    out.status = provenOptimal ? SolveStatus::Infeasible : SolveStatus::IterationLimit;
    return out;
  }
  best.status = provenOptimal ? SolveStatus::Optimal : SolveStatus::Feasible;
  HETPAR_CHECK_MSG(model.isFeasible(best.values, 1e-5),
                   "bnb produced an infeasible incumbent for model '" + model.name() + "'");
  return best;
}

SolverTotals solverTotals() {
  SolverTotals t;
  t.solves = gSolves.load(std::memory_order_relaxed);
  t.bnbNodes = gBnbNodes.load(std::memory_order_relaxed);
  t.simplexIterations = gSimplexIterations.load(std::memory_order_relaxed);
  t.refactorizations = gRefactorizations.load(std::memory_order_relaxed);
  t.etaUpdates = gEtaUpdates.load(std::memory_order_relaxed);
  t.peakFillNonzeros = gPeakFillNonzeros.load(std::memory_order_relaxed);
  t.wallSeconds = static_cast<double>(gWallMicros.load(std::memory_order_relaxed)) / 1e6;
  return t;
}

void resetSolverTotals() {
  gSolves.store(0, std::memory_order_relaxed);
  gBnbNodes.store(0, std::memory_order_relaxed);
  gSimplexIterations.store(0, std::memory_order_relaxed);
  gRefactorizations.store(0, std::memory_order_relaxed);
  gEtaUpdates.store(0, std::memory_order_relaxed);
  gPeakFillNonzeros.store(0, std::memory_order_relaxed);
  gWallMicros.store(0, std::memory_order_relaxed);
}

}  // namespace hetpar::ilp
