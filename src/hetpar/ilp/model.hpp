// Mixed-integer linear programming model builder.
//
// The parallelizer (hetpar/parallel) emits its partitioning-and-mapping
// problem (paper Section IV, Eq 1-18) as a `Model`; any `Solver`
// implementation can then solve it. This mirrors the paper's tool, where the
// generated ILPs can be handed to either lp_solve or CPLEX.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "hetpar/ilp/expr.hpp"

namespace hetpar::ilp {

enum class VarType { Continuous, Integer, Binary };

enum class Relation { LessEqual, GreaterEqual, Equal };

enum class Sense { Minimize, Maximize };

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One linear constraint: `expr (<=|>=|=) 0` after normalization; we store
/// the variable part and the right-hand side separately.
struct Constraint {
  LinearExpr lhs;     ///< variable terms only (constant folded into rhs)
  Relation relation;  ///< lhs `relation` rhs
  double rhs;
  std::string name;
};

struct VarInfo {
  std::string name;
  VarType type = VarType::Continuous;
  double lowerBound = 0.0;
  double upperBound = kInfinity;
  /// Branch-and-bound picks fractional variables of the highest priority
  /// first (structural decisions before derived indicators).
  int branchPriority = 0;
};

/// A solved assignment. `values[i]` is the value of variable index `i`.
enum class SolveStatus { Optimal, Feasible, Infeasible, Unbounded, IterationLimit, Error };

struct Solution {
  SolveStatus status = SolveStatus::Error;
  double objective = 0.0;
  std::vector<double> values;

  bool hasValues() const {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }
  double value(Var v) const { return values.at(static_cast<std::size_t>(v.index())); }
  /// Rounds a binary/integer variable's value to the nearest integer.
  long long integral(Var v) const;
  bool boolean(Var v) const { return integral(v) != 0; }
};

/// MILP model: variables with bounds/types, constraints, one objective.
class Model {
 public:
  explicit Model(std::string name = "model") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- Variables -----------------------------------------------------------
  Var addVar(VarType type, double lb, double ub, std::string name);
  Var addBool(std::string name) { return addVar(VarType::Binary, 0.0, 1.0, std::move(name)); }
  Var addContinuous(double lb, double ub, std::string name) {
    return addVar(VarType::Continuous, lb, ub, std::move(name));
  }

  /// Adds variable z with constraints enforcing z = x AND y for binary x, y
  /// (paper Eq 7: z >= x + y - 1, z <= x, z <= y).
  Var addAnd(Var x, Var y, std::string name);

  std::size_t numVars() const { return vars_.size(); }
  const VarInfo& varInfo(Var v) const { return vars_.at(static_cast<std::size_t>(v.index())); }
  VarInfo& varInfo(Var v) { return vars_.at(static_cast<std::size_t>(v.index())); }
  const std::vector<VarInfo>& vars() const { return vars_; }

  // --- Constraints ---------------------------------------------------------
  /// Adds `lhs relation rhs`; any constant in `lhs`/`rhs` expressions is
  /// folded so the stored constraint has variables on the left only.
  void addConstraint(const LinearExpr& lhs, Relation relation, const LinearExpr& rhs,
                     std::string name = {});
  void addLe(const LinearExpr& lhs, const LinearExpr& rhs, std::string name = {}) {
    addConstraint(lhs, Relation::LessEqual, rhs, std::move(name));
  }
  void addGe(const LinearExpr& lhs, const LinearExpr& rhs, std::string name = {}) {
    addConstraint(lhs, Relation::GreaterEqual, rhs, std::move(name));
  }
  void addEq(const LinearExpr& lhs, const LinearExpr& rhs, std::string name = {}) {
    addConstraint(lhs, Relation::Equal, rhs, std::move(name));
  }

  std::size_t numConstraints() const { return constraints_.size(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  std::size_t numIntegerVars() const;

  // --- Objective -----------------------------------------------------------
  void setObjective(const LinearExpr& objective, Sense sense);
  const LinearExpr& objective() const { return objective_; }
  Sense sense() const { return sense_; }

  /// Checks a candidate assignment against all constraints/bounds/integrality
  /// within `tol`; used by tests and by the branch-and-bound solver's own
  /// paranoia checks.
  bool isFeasible(const std::vector<double>& values, double tol = 1e-6) const;

  /// Objective value of an assignment.
  double evalObjective(const std::vector<double>& values) const;

  /// LP-format-like textual dump for debugging.
  std::string str() const;

 private:
  std::string name_;
  std::vector<VarInfo> vars_;
  std::vector<Constraint> constraints_;
  LinearExpr objective_;
  Sense sense_ = Sense::Minimize;
};

/// LP engine underneath branch and bound. `Revised` is the production
/// sparse revised simplex (LU factors + eta updates); `Dense` keeps the
/// seed's explicit dense inverse for one release as the differential
/// oracle (see DESIGN.md "LP engine").
enum class SolverEngine : std::uint8_t { Revised, Dense };

/// Solver knobs. Defaults suit the parallelizer's many small ILPs.
struct SolveOptions {
  double timeLimitSeconds = 60.0;  ///< wall-clock cap per solve
  long long maxNodes = 2'000'000;  ///< branch-and-bound node cap
  double integralityTol = 1e-6;
  double feasibilityTol = 1e-7;
  bool collectStats = true;
  SolverEngine engine = SolverEngine::Revised;
};

/// Per-solve statistics (feeds the paper's Table I).
struct SolveStats {
  std::size_t numVars = 0;
  std::size_t numConstraints = 0;
  std::size_t numIntegerVars = 0;
  long long nodesExplored = 0;
  long long simplexIterations = 0;
  double wallSeconds = 0.0;
  /// LP-engine behavior (see FactorStats): basis factorizations, eta-file
  /// pivot updates between them, and the peak factor fill seen.
  long long refactorizations = 0;
  long long etaUpdates = 0;
  long long peakFillNonzeros = 0;
};

/// Abstract MILP solver interface (paper: "the user can choose between
/// lpsolve and cplex"; here the branch-and-bound solver is the default).
class Solver {
 public:
  virtual ~Solver() = default;
  virtual Solution solve(const Model& model) = 0;
  virtual const SolveStats& lastStats() const = 0;
};

}  // namespace hetpar::ilp
