// Bounded-variable primal simplex.
//
// Solves LPs in computational standard form
//     minimize c'x   subject to  A x = b,  l <= x <= u
// where general bounds (including infinite ones) are handled implicitly by
// the simplex method rather than as extra rows. This is the LP engine
// underneath the branch-and-bound MILP solver; keeping bounds implicit is
// what makes repeated relaxation solves cheap for the parallelizer's
// binary-heavy models.
//
// Implementation: two-phase method with one artificial variable per row,
// dense explicit basis inverse with eta-style pivot updates, Dantzig pricing
// with a Bland's-rule fallback to guarantee termination under degeneracy.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hetpar/ilp/model.hpp"

namespace hetpar::ilp {

/// LP in computational standard form. Rows are equalities; the caller adds
/// slack columns for inequality rows (see `buildLp`).
struct LpProblem {
  int numRows = 0;
  int numCols = 0;
  /// Column-wise sparse matrix: cols[j] lists (row, coefficient) pairs.
  std::vector<std::vector<std::pair<int, double>>> cols;
  std::vector<double> rhs;    ///< size numRows
  std::vector<double> cost;   ///< size numCols
  std::vector<double> lower;  ///< size numCols, may be -inf
  std::vector<double> upper;  ///< size numCols, may be +inf
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< size numCols; valid when status == Optimal
  long long iterations = 0;
};

/// Conversion of a `Model` (plus per-variable bound overrides used by
/// branch and bound) into standard form. Columns [0, numStructural) of the
/// LpProblem correspond 1:1 to model variables; the rest are slacks.
struct StandardForm {
  LpProblem problem;
  int numStructural = 0;
};

StandardForm buildLp(const Model& model, const std::vector<double>& lowerOverride,
                     const std::vector<double>& upperOverride);

/// A compact simplex basis: which columns are basic, and at which bound each
/// nonbasic column rests. Exported after a solve and fed back as a warm
/// start for a neighboring problem (same matrix, different bounds) — the
/// branch-and-bound workhorse.
struct SimplexBasis {
  std::vector<int> basicCols;      ///< size numRows
  std::vector<std::uint8_t> atUpper;  ///< size numCols; 1 = nonbasic at upper
  bool valid() const { return !basicCols.empty(); }
};

class BoundedSimplex {
 public:
  explicit BoundedSimplex(double tol = 1e-9) : tol_(tol) {}

  /// Solves the LP; `maxIterations <= 0` selects an automatic limit.
  /// `warm` (optional) seeds the solve from a previous basis of a problem
  /// with the same matrix (bounds may differ); on structural mismatch or
  /// numerical failure the solver silently falls back to a cold start.
  /// `basisOut` (optional) receives the final basis on optimal solves.
  LpResult solve(const LpProblem& problem, long long maxIterations = 0,
                 const SimplexBasis* warm = nullptr, SimplexBasis* basisOut = nullptr);

 private:
  double tol_;
  // Retained inverse of the last optimal basis (warm-start accelerator for
  // consecutive branch-and-bound node solves).
  std::vector<int> cacheBasic_;
  std::vector<double> cacheBinv_;
  int cacheRows_ = 0;
};

}  // namespace hetpar::ilp
