// Bounded-variable primal simplex.
//
// Solves LPs in computational standard form
//     minimize c'x   subject to  A x = b,  l <= x <= u
// where general bounds (including infinite ones) are handled implicitly by
// the simplex method rather than as extra rows. This is the LP engine
// underneath the branch-and-bound MILP solver; keeping bounds implicit is
// what makes repeated relaxation solves cheap for the parallelizer's
// binary-heavy models.
//
// Implementation: two-phase method with one artificial variable per row.
// The basis inverse lives behind the `BasisFactor` interface: the default
// `SolverEngine::Revised` engine keeps a sparse LU factorization with
// product-form eta updates and periodic refactorization (partial pricing),
// while `SolverEngine::Dense` retains the seed's explicit dense inverse
// (full Dantzig pricing) as a differential oracle. Both share this driver's
// ratio test, bound flips, and Bland's-rule fallback, so they differ only
// in how B^{-1} is represented — which is what makes dense-vs-revised
// agreement a meaningful check.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "hetpar/ilp/basis_factor.hpp"
#include "hetpar/ilp/model.hpp"

namespace hetpar::ilp {

/// LP in computational standard form. Rows are equalities; the caller adds
/// slack columns for inequality rows (see `buildLp`).
struct LpProblem {
  int numRows = 0;
  int numCols = 0;
  /// Column-wise sparse matrix: cols[j] lists (row, coefficient) pairs.
  std::vector<std::vector<std::pair<int, double>>> cols;
  std::vector<double> rhs;    ///< size numRows
  std::vector<double> cost;   ///< size numCols
  std::vector<double> lower;  ///< size numCols, may be -inf
  std::vector<double> upper;  ///< size numCols, may be +inf
};

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< size numCols; valid when status == Optimal
  long long iterations = 0;
  /// Basis-representation counters for this solve (refactorizations, eta
  /// updates, peak fill); zeroed for the row-free fast path.
  FactorStats factorStats;
};

/// Conversion of a `Model` (plus per-variable bound overrides used by
/// branch and bound) into standard form. Columns [0, numStructural) of the
/// LpProblem correspond 1:1 to model variables; the rest are slacks.
struct StandardForm {
  LpProblem problem;
  int numStructural = 0;
};

StandardForm buildLp(const Model& model, const std::vector<double>& lowerOverride,
                     const std::vector<double>& upperOverride);

/// A compact simplex basis: which columns are basic, and at which bound each
/// nonbasic column rests. Exported after a solve and fed back as a warm
/// start for a neighboring problem (same matrix, different bounds) — the
/// branch-and-bound workhorse.
struct SimplexBasis {
  std::vector<int> basicCols;      ///< size numRows
  std::vector<std::uint8_t> atUpper;  ///< size numCols; 1 = nonbasic at upper
  bool valid() const { return !basicCols.empty(); }
};

class BoundedSimplex {
 public:
  explicit BoundedSimplex(double tol = 1e-9, SolverEngine engine = SolverEngine::Revised)
      : tol_(tol), engine_(engine) {}

  /// Solves the LP; `maxIterations <= 0` selects an automatic limit.
  /// `warm` (optional) seeds the solve from a previous basis of a problem
  /// with the same matrix (bounds may differ); on structural mismatch or
  /// numerical failure the solver silently falls back to a cold start.
  /// `basisOut` (optional) receives the final basis on optimal solves.
  LpResult solve(const LpProblem& problem, long long maxIterations = 0,
                 const SimplexBasis* warm = nullptr, SimplexBasis* basisOut = nullptr);

  SolverEngine engine() const { return engine_; }

 private:
  double tol_;
  SolverEngine engine_;
  // Retained factorization of the last optimal basis (warm-start accelerator
  // for consecutive branch-and-bound node solves). Keyed on the problem's
  // structural digest *and* the basis columns: matrices with equal row
  // counts but different structure must never share a factorization (the
  // historical cross-problem reuse hazard).
  std::uint64_t cacheDigest_ = 0;
  std::vector<int> cacheBasic_;
  std::unique_ptr<BasisFactor> cacheFactor_;
};

/// FNV-1a digest of an LpProblem's matrix structure and coefficients
/// (dimensions + column entries; bounds/cost/rhs excluded since a basis
/// factorization depends only on the matrix). Exposed for tests.
std::uint64_t lpStructuralDigest(const LpProblem& problem);

}  // namespace hetpar::ilp
