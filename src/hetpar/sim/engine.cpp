#include "hetpar/sim/engine.hpp"

#include "hetpar/support/error.hpp"

namespace hetpar::sim {

void Engine::schedule(double when, Action action) {
  HETPAR_CHECK_MSG(when >= now_ - 1e-15, "cannot schedule events in the past");
  queue_.push(Event{when, seq_++, std::move(action)});
}

double Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the action is moved out via const_cast,
    // which is safe because the element is popped immediately after.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = e.when;
    ++processed_;
    e.action();
  }
  return now_;
}

}  // namespace hetpar::sim
