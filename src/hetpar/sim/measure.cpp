#include "hetpar/sim/measure.hpp"

#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/sched/flatten.hpp"
#include "hetpar/sim/mpsoc.hpp"

namespace hetpar::sim {

platform::ClassId mainClassFor(const platform::Platform& pf, Scenario scenario) {
  return scenario == Scenario::Accelerator ? pf.slowestClass() : pf.fastestClass();
}

namespace {

/// Fills one scenario's numbers given an already-computed heterogeneous
/// parallelization outcome.
EvalResult evaluateScenario(const std::string& name, htg::FrontendBundle& bundle,
                            const platform::Platform& pf, Scenario scenario,
                            const parallel::ParallelizeOutcome& hetOutcome,
                            const EvalOptions& options) {
  EvalResult result;
  result.benchmark = name;
  result.mainClass = mainClassFor(pf, scenario);
  result.theoreticalLimit = pf.theoreticalMaxSpeedup(result.mainClass);

  const cost::TimingModel realTiming(pf);
  const int mainCore = pf.firstCoreOfClass(result.mainClass);

  // Baseline: sequential on the main processor.
  {
    const sched::FlattenResult seq = sched::flattenSequential(bundle.graph, realTiming, mainCore);
    result.sequentialSeconds = simulate(seq.graph).makespanSeconds;
  }

  // Heterogeneous tool: honor the task-to-class pre-mapping.
  {
    result.heterogeneousStats = hetOutcome.stats;
    const parallel::SolutionRef best = hetOutcome.bestRoot(bundle.graph, result.mainClass);
    sched::FlattenOptions fo;
    fo.classAwareAllocation = true;
    const sched::FlattenResult flat =
        sched::flatten(bundle.graph, hetOutcome.table, best, realTiming, mainCore, fo);
    result.heterogeneousSeconds = simulate(flat.graph).makespanSeconds;
    result.heterogeneousSpeedup = result.sequentialSeconds / result.heterogeneousSeconds;
  }

  // Homogeneous baseline [6]: plans against a uniform view of the platform
  // (all cores look like the main one); its tasks land on the real cores
  // round-robin, oblivious to classes.
  if (options.runHomogeneousBaseline) {
    parallel::HomogeneousRun homog = parallel::runHomogeneousBaseline(
        bundle.graph, pf, result.mainClass, options.parallelizer);
    result.homogeneousStats = homog.outcome.stats;
    const parallel::SolutionRef best = homog.outcome.bestRoot(bundle.graph, 0);
    sched::FlattenOptions fo;
    fo.classAwareAllocation = false;
    const sched::FlattenResult flat =
        sched::flatten(bundle.graph, homog.outcome.table, best, realTiming, mainCore, fo);
    result.homogeneousSeconds = simulate(flat.graph).makespanSeconds;
    result.homogeneousSpeedup = result.sequentialSeconds / result.homogeneousSeconds;
  }
  return result;
}

parallel::ParallelizeOutcome runHeterogeneous(htg::FrontendBundle& bundle,
                                              const platform::Platform& pf,
                                              const EvalOptions& options) {
  const cost::TimingModel timing(pf);
  parallel::Parallelizer tool(bundle.graph, timing, options.parallelizer);
  return tool.run();
}

}  // namespace

EvalResult evaluateBenchmark(const std::string& name, const std::string& source,
                             const platform::Platform& pf, Scenario scenario,
                             const EvalOptions& options) {
  htg::FrontendBundle bundle =
      htg::buildFromSource(source, options.parallelizer.dependenceMode);
  htg::validateOrThrow(bundle.graph);
  const parallel::ParallelizeOutcome hetOutcome = runHeterogeneous(bundle, pf, options);
  return evaluateScenario(name, bundle, pf, scenario, hetOutcome, options);
}

ScenarioResults evaluateBenchmarkAllScenarios(const std::string& name,
                                              const std::string& source,
                                              const platform::Platform& pf,
                                              const EvalOptions& options) {
  htg::FrontendBundle bundle =
      htg::buildFromSource(source, options.parallelizer.dependenceMode);
  htg::validateOrThrow(bundle.graph);
  const parallel::ParallelizeOutcome hetOutcome = runHeterogeneous(bundle, pf, options);
  ScenarioResults results;
  results.accelerator =
      evaluateScenario(name, bundle, pf, Scenario::Accelerator, hetOutcome, options);
  results.slowerCores =
      evaluateScenario(name, bundle, pf, Scenario::SlowerCores, hetOutcome, options);
  return results;
}

}  // namespace hetpar::sim
