// MPSoC simulator: executes a flattened TaskGraph on N cores sharing one
// bus (our stand-in for the paper's CoMET virtual prototyping platform).
//
// Model: each task is statically mapped to a core. A task becomes ready when
// all predecessor tasks have finished AND all its inbound bus transfers have
// arrived; transfers are issued when their producer finishes and are
// serialized FIFO on the single shared bus. A free core runs the lowest-id
// ready task mapped to it (program order). Compute durations were fixed by
// the flattener against real core speeds.
#pragma once

#include <vector>

#include "hetpar/sched/taskgraph.hpp"

namespace hetpar::sim {

struct CoreStats {
  double busySeconds = 0.0;
  int tasksRun = 0;
};

struct SimReport {
  double makespanSeconds = 0.0;
  std::vector<double> taskStart;
  std::vector<double> taskFinish;
  std::vector<CoreStats> cores;
  double busBusySeconds = 0.0;
  int busTransfers = 0;

  double utilization(int core) const {
    return makespanSeconds > 0 ? cores[static_cast<std::size_t>(core)].busySeconds /
                                     makespanSeconds
                               : 0.0;
  }
};

/// Simulates the task graph; throws hetpar::Error if the graph is invalid
/// or deadlocks (cyclic waits cannot occur with topological graphs, so a
/// non-drained simulation indicates a malformed graph).
SimReport simulate(const sched::TaskGraph& graph);

}  // namespace hetpar::sim
