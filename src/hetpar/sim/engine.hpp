// Minimal discrete-event engine: a time-ordered queue of closures.
//
// Kept generic so the MPSoC model (hetpar/sim/mpsoc.hpp) reads as plain
// domain logic; also reused by tests to build tiny custom simulations.
#pragma once

#include <functional>
#include <queue>
#include <vector>

namespace hetpar::sim {

class Engine {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when` (>= now()).
  void schedule(double when, Action action);

  /// Runs until the event queue drains. Returns the time of the last event.
  double run();

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t eventsProcessed() const { return processed_; }

 private:
  struct Event {
    double when;
    std::size_t seq;  ///< FIFO among simultaneous events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::size_t seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace hetpar::sim
