// Energy accounting over simulation reports (the paper's future work:
// "we will also consider taking other objectives into account, like, e.g.,
// energy consumption").
//
// Per-core energy = busy time x active power + idle time x idle power,
// evaluated over the program's makespan; the shared bus adds transfer
// energy. Default per-class powers derive from frequency (approximately
// linear in f for same-ISA cores at a fixed voltage step); platform files
// can override them per class (`watts_active` / `watts_idle`).
#pragma once

#include <vector>

#include "hetpar/platform/platform.hpp"
#include "hetpar/sched/taskgraph.hpp"
#include "hetpar/sim/mpsoc.hpp"

namespace hetpar::sim {

struct EnergyReport {
  double totalJoules = 0.0;
  double busJoules = 0.0;
  std::vector<double> coreJoules;  ///< per physical core

  /// Energy-delay product, a common embedded figure of merit.
  double edp(double makespanSeconds) const { return totalJoules * makespanSeconds; }
};

/// Active power of a processor class in watts (override or derived default).
double activeWatts(const platform::ProcessorClass& pc);
/// Idle power of a processor class in watts.
double idleWatts(const platform::ProcessorClass& pc);

/// Computes the energy of a simulated execution. All cores are powered for
/// the whole makespan (no power gating), which is what makes "slow main
/// core + fast accelerators finishing early" interesting energy-wise.
EnergyReport energyOf(const SimReport& report, const sched::TaskGraph& graph,
                      const platform::Platform& pf);

}  // namespace hetpar::sim
