#include "hetpar/sim/mpsoc.hpp"

#include <algorithm>
#include <set>

#include "hetpar/sim/engine.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::sim {

namespace {

struct TaskState {
  int waitingPreds = 0;
  int waitingTransfers = 0;
  bool started = false;
  bool finished = false;
};

}  // namespace

SimReport simulate(const sched::TaskGraph& graph) {
  {
    const auto problems = graph.validate();
    require(problems.empty(),
            "cannot simulate invalid task graph: " + (problems.empty() ? "" : problems[0]));
  }

  const int numTasks = static_cast<int>(graph.tasks.size());
  SimReport report;
  report.taskStart.assign(static_cast<std::size_t>(numTasks), -1.0);
  report.taskFinish.assign(static_cast<std::size_t>(numTasks), -1.0);
  report.cores.assign(static_cast<std::size_t>(graph.numCores), {});

  Engine engine;
  std::vector<TaskState> state(static_cast<std::size_t>(numTasks));
  std::vector<std::vector<int>> dependents(static_cast<std::size_t>(numTasks));
  // transfersOut[p] = (consumer, duration) transfers issued when p finishes.
  std::vector<std::vector<std::pair<int, double>>> transfersOut(
      static_cast<std::size_t>(numTasks));

  for (int i = 0; i < numTasks; ++i) {
    const sched::SimTask& t = graph.tasks[static_cast<std::size_t>(i)];
    std::set<int> uniquePreds(t.preds.begin(), t.preds.end());
    state[static_cast<std::size_t>(i)].waitingPreds = static_cast<int>(uniquePreds.size());
    for (int p : uniquePreds) dependents[static_cast<std::size_t>(p)].push_back(i);
    state[static_cast<std::size_t>(i)].waitingTransfers = static_cast<int>(t.transfers.size());
    for (const auto& [p, secs] : t.transfers)
      transfersOut[static_cast<std::size_t>(p)].emplace_back(i, secs);
  }

  std::vector<bool> coreBusy(static_cast<std::size_t>(graph.numCores), false);
  // Ready tasks per core, ordered by task id (program order).
  std::vector<std::set<int>> readyOnCore(static_cast<std::size_t>(graph.numCores));
  double busFreeAt = 0.0;

  // Forward declarations via std::function to allow mutual recursion.
  std::function<void(int)> maybeStart;
  std::function<void(int)> finishTask;

  auto tryDispatch = [&](int core) {
    if (coreBusy[static_cast<std::size_t>(core)]) return;
    auto& ready = readyOnCore[static_cast<std::size_t>(core)];
    if (ready.empty()) return;
    const int task = *ready.begin();
    ready.erase(ready.begin());
    coreBusy[static_cast<std::size_t>(core)] = true;
    state[static_cast<std::size_t>(task)].started = true;
    report.taskStart[static_cast<std::size_t>(task)] = engine.now();
    const double dur = graph.tasks[static_cast<std::size_t>(task)].computeSeconds;
    report.cores[static_cast<std::size_t>(core)].busySeconds += dur;
    ++report.cores[static_cast<std::size_t>(core)].tasksRun;
    engine.schedule(engine.now() + dur, [&, task] { finishTask(task); });
  };

  maybeStart = [&](int task) {
    TaskState& st = state[static_cast<std::size_t>(task)];
    if (st.started || st.waitingPreds > 0 || st.waitingTransfers > 0) return;
    const int core = graph.tasks[static_cast<std::size_t>(task)].core;
    readyOnCore[static_cast<std::size_t>(core)].insert(task);
    tryDispatch(core);
  };

  finishTask = [&](int task) {
    TaskState& st = state[static_cast<std::size_t>(task)];
    st.finished = true;
    report.taskFinish[static_cast<std::size_t>(task)] = engine.now();
    const int core = graph.tasks[static_cast<std::size_t>(task)].core;
    coreBusy[static_cast<std::size_t>(core)] = false;

    // Issue outbound transfers, serialized on the shared bus.
    for (const auto& [consumer, secs] : transfersOut[static_cast<std::size_t>(task)]) {
      const double start = std::max(engine.now(), busFreeAt);
      busFreeAt = start + secs;
      report.busBusySeconds += secs;
      ++report.busTransfers;
      const int c = consumer;
      engine.schedule(busFreeAt, [&, c] {
        --state[static_cast<std::size_t>(c)].waitingTransfers;
        maybeStart(c);
      });
    }
    for (int d : dependents[static_cast<std::size_t>(task)]) {
      --state[static_cast<std::size_t>(d)].waitingPreds;
      maybeStart(d);
    }
    tryDispatch(core);
  };

  // Seed: tasks with no preds/transfers.
  for (int i = 0; i < numTasks; ++i) {
    const int task = i;
    engine.schedule(0.0, [&, task] { maybeStart(task); });
  }

  report.makespanSeconds = engine.run();
  for (int i = 0; i < numTasks; ++i)
    require(state[static_cast<std::size_t>(i)].finished,
            "simulation deadlocked: task graph is not well-formed");
  return report;
}

}  // namespace hetpar::sim
