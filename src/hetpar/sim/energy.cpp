#include "hetpar/sim/energy.hpp"

#include "hetpar/support/error.hpp"

namespace hetpar::sim {

namespace {
// Derived defaults: ~1 mW per MHz active (ARM9-class cores), 12% leak idle.
constexpr double kWattsPerMHz = 1e-3;
constexpr double kIdleFraction = 0.12;
// Shared bus power while transferring.
constexpr double kBusWatts = 0.08;
}  // namespace

double activeWatts(const platform::ProcessorClass& pc) {
  return pc.wattsActive > 0 ? pc.wattsActive : pc.frequencyMHz * kWattsPerMHz;
}

double idleWatts(const platform::ProcessorClass& pc) {
  if (pc.wattsIdle > 0) return pc.wattsIdle;
  return kIdleFraction * activeWatts(pc);
}

EnergyReport energyOf(const SimReport& report, const sched::TaskGraph& graph,
                      const platform::Platform& pf) {
  require(graph.numCores == pf.numCores(),
          "task graph and platform disagree on the core count");
  EnergyReport energy;
  energy.coreJoules.assign(static_cast<std::size_t>(graph.numCores), 0.0);
  const double makespan = report.makespanSeconds;
  for (int core = 0; core < graph.numCores; ++core) {
    const platform::ProcessorClass& pc = pf.classAt(pf.classOfCore(core));
    const double busy = report.cores[static_cast<std::size_t>(core)].busySeconds;
    const double idle = std::max(0.0, makespan - busy);
    const double joules = busy * activeWatts(pc) + idle * idleWatts(pc);
    energy.coreJoules[static_cast<std::size_t>(core)] = joules;
    energy.totalJoules += joules;
  }
  energy.busJoules = report.busBusySeconds * kBusWatts;
  energy.totalJoules += energy.busJoules;
  return energy;
}

}  // namespace hetpar::sim
