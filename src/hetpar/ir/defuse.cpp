#include "hetpar/ir/defuse.hpp"

#include "hetpar/support/error.hpp"

namespace hetpar::ir {

using frontend::AssignStmt;
using frontend::BinaryExpr;
using frontend::BlockStmt;
using frontend::CallExpr;
using frontend::DeclStmt;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprStmt;
using frontend::ForStmt;
using frontend::Function;
using frontend::IfStmt;
using frontend::IndexExpr;
using frontend::Program;
using frontend::ReturnStmt;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::UnaryExpr;
using frontend::VarRef;
using frontend::WhileStmt;

DefUseAnalysis::DefUseAnalysis(const Program& program, const frontend::SemaResult& sema)
    : program_(program), sema_(sema) {
  // Callees before callers so call-site resolution finds summaries ready.
  for (const Function* fn : sema.bottomUpOrder) {
    effects_.emplace(fn, computeEffects(*fn));
    for (const auto& s : fn->body) analyzeStmt(*s, fn);
  }
  for (const auto& g : program.globals) analyzeStmt(*g, nullptr);
}

const DefUse& DefUseAnalysis::of(const Stmt& stmt) const {
  auto it = perStmt_.find(&stmt);
  HETPAR_CHECK_MSG(it != perStmt_.end(), "statement was not analyzed");
  return it->second;
}

const FunctionEffects& DefUseAnalysis::effects(const Function& fn) const {
  auto it = effects_.find(&fn);
  HETPAR_CHECK_MSG(it != effects_.end(), "function was not analyzed");
  return it->second;
}

long long DefUseAnalysis::byteSizeOf(const Function* fn, const std::string& name) const {
  const frontend::Type* t = sema_.lookup(fn, name);
  return t == nullptr ? 0 : t->byteSize();
}

void DefUseAnalysis::collectExprUses(const Expr& expr, const Function* fn, DefUse& du) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      break;
    case ExprKind::VarRef:
      du.uses.insert(static_cast<const VarRef&>(expr).name);
      break;
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      du.uses.insert(e.name);
      for (const auto& i : e.indices) collectExprUses(*i, fn, du);
      break;
    }
    case ExprKind::Unary:
      collectExprUses(*static_cast<const UnaryExpr&>(expr).operand, fn, du);
      break;
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      collectExprUses(*e.lhs, fn, du);
      collectExprUses(*e.rhs, fn, du);
      break;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      if (frontend::isBuiltinFunction(e.callee)) {
        for (const auto& a : e.args) collectExprUses(*a, fn, du);
        break;
      }
      const Function* callee = program_.findFunction(e.callee);
      HETPAR_CHECK(callee != nullptr);
      const FunctionEffects& fx = effects(*callee);
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        const Expr& arg = *e.args[i];
        if (callee->params[i].type.isArray()) {
          const auto& ref = static_cast<const VarRef&>(arg);
          if (fx.paramRead[i]) du.uses.insert(ref.name);
          if (fx.paramWritten[i]) du.defs.insert(ref.name);
        } else {
          collectExprUses(arg, fn, du);
        }
      }
      for (const auto& g : fx.globalsRead) du.uses.insert(g);
      for (const auto& g : fx.globalsWritten) du.defs.insert(g);
      break;
    }
  }
}

DefUse DefUseAnalysis::analyzeStmt(const Stmt& stmt, const Function* fn) {
  DefUse du;
  switch (stmt.kind) {
    case StmtKind::Decl: {
      const auto& s = static_cast<const DeclStmt&>(stmt);
      if (s.init) {
        collectExprUses(*s.init, fn, du);
        du.defs.insert(s.name);
      }
      // Uninitialized declarations produce no values: recording a def here
      // would manufacture bogus flow edges (full-array payloads) from the
      // declaration to the first real writer.
      break;
    }
    case StmtKind::Assign: {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      for (const auto& i : s.indices) collectExprUses(*i, fn, du);
      collectExprUses(*s.value, fn, du);
      du.defs.insert(s.target);
      // A partial (element) write both reads and writes the array object.
      if (!s.indices.empty()) du.uses.insert(s.target);
      break;
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      collectExprUses(*s.cond, fn, du);
      for (const auto& c : s.thenBody) {
        const DefUse child = analyzeStmt(*c, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      for (const auto& c : s.elseBody) {
        const DefUse child = analyzeStmt(*c, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      break;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      if (s.init) {
        const DefUse child = analyzeStmt(*s.init, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      if (s.cond) collectExprUses(*s.cond, fn, du);
      if (s.step) {
        const DefUse child = analyzeStmt(*s.step, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      for (const auto& c : s.body) {
        const DefUse child = analyzeStmt(*c, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      break;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      collectExprUses(*s.cond, fn, du);
      for (const auto& c : s.body) {
        const DefUse child = analyzeStmt(*c, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      break;
    }
    case StmtKind::Return: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      if (s.value) collectExprUses(*s.value, fn, du);
      break;
    }
    case StmtKind::Expr: {
      const auto& s = static_cast<const ExprStmt&>(stmt);
      collectExprUses(*s.expr, fn, du);
      break;
    }
    case StmtKind::Block: {
      const auto& s = static_cast<const BlockStmt&>(stmt);
      for (const auto& c : s.body) {
        const DefUse child = analyzeStmt(*c, fn);
        du.defs.insert(child.defs.begin(), child.defs.end());
        du.uses.insert(child.uses.begin(), child.uses.end());
      }
      break;
    }
  }
  perStmt_.emplace(&stmt, du);
  return du;
}

FunctionEffects DefUseAnalysis::computeEffects(const Function& fn) {
  // Aggregate the function body's def/use, then project onto parameters
  // and globals.
  DefUse all;
  for (const auto& s : fn.body) {
    const DefUse child = analyzeStmt(*s, &fn);
    all.defs.insert(child.defs.begin(), child.defs.end());
    all.uses.insert(child.uses.begin(), child.uses.end());
  }
  FunctionEffects fx;
  fx.paramRead.resize(fn.params.size(), false);
  fx.paramWritten.resize(fn.params.size(), false);
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    fx.paramRead[i] = all.uses.count(fn.params[i].name) > 0;
    fx.paramWritten[i] = all.defs.count(fn.params[i].name) > 0;
    // Scalar parameters are by-value: a write stays local to the callee.
    if (!fn.params[i].type.isArray()) fx.paramWritten[i] = false;
  }
  auto isParamOrLocal = [&](const std::string& name) {
    for (const auto& p : fn.params)
      if (p.name == name) return true;
    // Locals shadow globals; only names visible as globals and not declared
    // locally count as global effects.
    const frontend::Type* global = nullptr;
    auto git = sema_.globals.find(name);
    if (git != sema_.globals.end()) global = &git->second;
    if (global == nullptr) return true;  // purely local name
    // Declared locally too? Scan the body for a DeclStmt of that name.
    bool declaredLocally = false;
    for (const auto& s : fn.body) {
      frontend::forEachStmt(*s, [&](frontend::Stmt& st) {
        if (st.kind == StmtKind::Decl &&
            static_cast<const DeclStmt&>(st).name == name)
          declaredLocally = true;
      });
      if (declaredLocally) break;
    }
    return declaredLocally;
  };
  for (const auto& name : all.uses)
    if (!isParamOrLocal(name)) fx.globalsRead.insert(name);
  for (const auto& name : all.defs)
    if (!isParamOrLocal(name)) fx.globalsWritten.insert(name);
  return fx;
}

}  // namespace hetpar::ir
