#include "hetpar/ir/affine.hpp"

#include "hetpar/ir/tripcount.hpp"

namespace hetpar::ir {

using frontend::AssignStmt;
using frontend::BinaryExpr;
using frontend::BinaryOp;
using frontend::DeclStmt;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ForStmt;
using frontend::StmtKind;
using frontend::UnaryExpr;
using frontend::UnaryOp;
using frontend::VarRef;

namespace {

using ConstEnv = std::map<std::string, long long>;

/// (variable, start value) of the loop init; mirrors the canonical shapes
/// staticTripCount accepts.
std::optional<std::pair<std::string, long long>> canonicalInit(const ForStmt& loop,
                                                               const ConstEnv* env) {
  if (!loop.init) return std::nullopt;
  if (loop.init->kind == StmtKind::Decl) {
    const auto& d = static_cast<const DeclStmt&>(*loop.init);
    if (!d.init) return std::nullopt;
    auto v = evalConstInt(*d.init, env);
    if (!v) return std::nullopt;
    return std::make_pair(d.name, *v);
  }
  if (loop.init->kind == StmtKind::Assign) {
    const auto& a = static_cast<const AssignStmt&>(*loop.init);
    if (!a.indices.empty()) return std::nullopt;
    auto v = evalConstInt(*a.value, env);
    if (!v) return std::nullopt;
    return std::make_pair(a.target, *v);
  }
  return std::nullopt;
}

/// The constant step of `var = var +/- c`.
std::optional<long long> canonicalStep(const ForStmt& loop, const std::string& var,
                                       const ConstEnv* env) {
  if (!loop.step || loop.step->kind != StmtKind::Assign) return std::nullopt;
  const auto& a = static_cast<const AssignStmt&>(*loop.step);
  if (a.target != var || !a.indices.empty()) return std::nullopt;
  if (a.value->kind != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(*a.value);
  if (b.lhs->kind != ExprKind::VarRef || static_cast<const VarRef&>(*b.lhs).name != var)
    return std::nullopt;
  auto c = evalConstInt(*b.rhs, env);
  if (!c) return std::nullopt;
  if (b.op == BinaryOp::Add) return *c;
  if (b.op == BinaryOp::Sub) return -*c;
  return std::nullopt;
}

}  // namespace

std::optional<std::pair<std::string, IvRange>> ivRangeOf(const ForStmt& loop,
                                                         const ConstEnv* env) {
  const auto trip = staticTripCount(loop, env);
  if (!trip || *trip <= 0) return std::nullopt;
  const auto init = canonicalInit(loop, env);
  if (!init) return std::nullopt;
  const auto step = canonicalStep(loop, init->first, env);
  if (!step || *step == 0) return std::nullopt;
  IvRange range;
  range.first = init->second;
  range.step = *step;
  range.last = init->second + (*trip - 1) * *step;
  return std::make_pair(init->first, range);
}

std::optional<std::pair<std::string, IvRange>> ivRangeOf(const ForStmt& loop) {
  return ivRangeOf(loop, nullptr);
}

std::optional<AffineForm> liftAffine(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return AffineForm{static_cast<const frontend::IntLit&>(expr).value, 0, ""};
    case ExprKind::VarRef:
      return AffineForm{0, 1, static_cast<const VarRef&>(expr).name};
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      if (e.op != UnaryOp::Neg) return std::nullopt;
      auto f = liftAffine(*e.operand);
      if (!f) return std::nullopt;
      return AffineForm{-f->c0, -f->c1, f->c1 == 0 ? std::string() : f->iv};
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      auto l = liftAffine(*e.lhs);
      auto r = liftAffine(*e.rhs);
      if (!l || !r) return std::nullopt;
      switch (e.op) {
        case BinaryOp::Add:
        case BinaryOp::Sub: {
          const long long sign = e.op == BinaryOp::Add ? 1 : -1;
          AffineForm out;
          out.c0 = l->c0 + sign * r->c0;
          if (l->isConstant()) {
            out.c1 = sign * r->c1;
            out.iv = r->iv;
          } else if (r->isConstant()) {
            out.c1 = l->c1;
            out.iv = l->iv;
          } else if (l->iv == r->iv) {
            out.c1 = l->c1 + sign * r->c1;
            out.iv = l->iv;
          } else {
            return std::nullopt;  // two distinct variables
          }
          if (out.c1 == 0) out.iv.clear();
          return out;
        }
        case BinaryOp::Mul: {
          const AffineForm* var = nullptr;
          const AffineForm* cst = nullptr;
          if (l->isConstant()) {
            cst = &*l;
            var = &*r;
          } else if (r->isConstant()) {
            cst = &*r;
            var = &*l;
          } else {
            return std::nullopt;  // iv * iv is not affine
          }
          AffineForm out;
          out.c0 = var->c0 * cst->c0;
          out.c1 = var->c1 * cst->c0;
          out.iv = out.c1 == 0 ? std::string() : var->iv;
          return out;
        }
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

}  // namespace hetpar::ir
