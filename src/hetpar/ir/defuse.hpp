// Statement-level def/use analysis.
//
// hetpar's data-flow edges (paper Section III-A) operate at variable
// granularity: an array is one object whose whole byte size is the
// communication payload when a data-flow edge is cut. Each statement gets
// the set of variables it defines and uses; hierarchical statements
// aggregate their headers and bodies. Calls are resolved through per-callee
// side-effect summaries (the call graph is acyclic by sema).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "hetpar/frontend/ast.hpp"
#include "hetpar/frontend/sema.hpp"

namespace hetpar::ir {

struct DefUse {
  std::set<std::string> defs;
  std::set<std::string> uses;
};

/// Side effects of calling a function, summarized over its whole body.
struct FunctionEffects {
  std::vector<bool> paramRead;     ///< by parameter position
  std::vector<bool> paramWritten;  ///< by parameter position (arrays only)
  std::set<std::string> globalsRead;
  std::set<std::string> globalsWritten;
};

class DefUseAnalysis {
 public:
  /// `program` must have been through sema (`analyze`).
  DefUseAnalysis(const frontend::Program& program, const frontend::SemaResult& sema);

  /// Aggregated def/use of `stmt` including its header expressions and all
  /// statements nested below it.
  const DefUse& of(const frontend::Stmt& stmt) const;

  const FunctionEffects& effects(const frontend::Function& fn) const;

  /// Byte size of variable `name` in the scope of `fn` (0 if unknown).
  long long byteSizeOf(const frontend::Function* fn, const std::string& name) const;

  const frontend::Program& program() const { return program_; }

 private:
  DefUse analyzeStmt(const frontend::Stmt& stmt, const frontend::Function* fn);
  void collectExprUses(const frontend::Expr& expr, const frontend::Function* fn, DefUse& du);
  FunctionEffects computeEffects(const frontend::Function& fn);

  const frontend::Program& program_;
  const frontend::SemaResult& sema_;
  std::map<const frontend::Stmt*, DefUse> perStmt_;
  std::map<const frontend::Function*, FunctionEffects> effects_;
};

}  // namespace hetpar::ir
