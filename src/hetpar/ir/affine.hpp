// Affine-index recognition for array subscripts.
//
// The section analysis (ir/sections.hpp) needs subscript expressions in the
// canonical form `c0 + c1 * iv` over a single enclosing loop induction
// variable, plus the value range that variable sweeps. Both pieces reuse the
// canonical-loop machinery from ir/tripcount: only loops whose trip count is
// statically known yield usable IV ranges, everything else falls back to the
// conservative whole-object treatment.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::ir {

/// Values swept by a canonical loop's induction variable: `first`,
/// `first + step`, ..., `last` (inclusive; `step` keeps the loop's sign,
/// so decreasing loops have `last < first`). Empty loops (trip count 0)
/// yield nullopt.
struct IvRange {
  long long first = 0;
  long long last = 0;
  long long step = 1;

  long long lo() const { return first < last ? first : last; }
  long long hi() const { return first < last ? last : first; }
};

/// IV name + range of `for (i = c0; i REL c1; i = i +/- c2) ...`; nullopt
/// when the loop is not canonical, has an unknown trip count, or runs zero
/// iterations. The `env` overload also folds bounds through variables the
/// constant-propagation client proved constant at the loop head
/// (ir/dataflow.hpp), matching the staticTripCount overload.
std::optional<std::pair<std::string, IvRange>> ivRangeOf(const frontend::ForStmt& loop);
std::optional<std::pair<std::string, IvRange>> ivRangeOf(
    const frontend::ForStmt& loop, const std::map<std::string, long long>* env);

/// A subscript lifted to `c0 + c1 * iv`. `iv` empty (with c1 == 0) means
/// the subscript is the constant c0.
struct AffineForm {
  long long c0 = 0;
  long long c1 = 0;
  std::string iv;

  bool isConstant() const { return iv.empty(); }
};

/// Lifts an index expression into affine form over at most one variable:
/// integer literals, a variable reference, negation, +/-, and
/// multiplication by a constant. nullopt for anything else (division,
/// two distinct variables, calls, array reads inside the subscript, ...).
std::optional<AffineForm> liftAffine(const frontend::Expr& expr);

}  // namespace hetpar::ir
