// Array-section summaries for the affine dependence mode.
//
// The name-based def/use layer treats an element write `a[i] = ...` as
// touching the whole array, which over-serializes siblings and over-charges
// communication. This analysis attaches to every statement a per-variable
// summary of the *sections* it reads and writes: per-dimension
// `[lo:hi:stride]` triplets lifted from affine subscripts (ir/affine.hpp)
// and widened over the enclosing canonical loops' induction ranges. Accesses
// that are not affine — or whose induction variable has no static range —
// fall back to the conservative ⊤ section (the whole object).
//
// Summaries are widened over the full enclosing iteration space, so all
// siblings of one HTG region describe their effects against the same
// iteration space and region-level overlap/kill reasoning stays consistent.
//
// Soundness contract:
//   hull      over-approximates the touched elements (usable for overlap
//             tests: disjoint hulls ⇒ no dependence),
//   definite && exact
//             under-approximates certainty: the hull is touched in its
//             entirety whenever the statement executes (usable for kill /
//             coverage tests: a definite exact write hides earlier writers).
//
// Interprocedural: per-function section effects are computed bottom-up over
// the acyclic call graph, so a callee writing `dst[i]` for i in [0,n) shows
// up at the call site as that section of the argument array instead of
// smearing to the whole object.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hetpar/frontend/ast.hpp"
#include "hetpar/frontend/sema.hpp"

namespace hetpar::ir {

/// One dimension of a section: the arithmetic progression
/// lo, lo + stride, ..., hi (hi is reachable from lo; stride >= 1).
struct DimSection {
  long long lo = 0;
  long long hi = 0;
  long long stride = 1;

  long long count() const { return (hi - lo) / stride + 1; }
};

/// The elements of one variable an access touches. `whole` is the ⊤
/// fallback (the entire object — also the only representation for
/// scalars); otherwise `dims` holds one triplet per array dimension.
struct ArraySection {
  bool whole = true;
  std::vector<DimSection> dims;  ///< rank-sized when !whole
};

/// Section plus the certainty flags the kill/coverage tests need.
struct SectionInfo {
  ArraySection hull;
  bool definite = false;  ///< access happens whenever the statement executes
  bool exact = false;     ///< hull == union of touched elements

  /// True when the hull is guaranteed to be touched in its entirety.
  bool mustCover() const { return definite && exact; }
};

/// Per-statement access summary. `writes` keys match `DefUse::defs`;
/// `reads` holds *actual* reads only — the def/use layer's pseudo-use of a
/// partially written array is deliberately absent (that artifact is what
/// the affine mode exists to remove).
struct AccessSummary {
  std::map<std::string, SectionInfo> reads;
  std::map<std::string, SectionInfo> writes;
};

/// Interprocedural section effects of calling a function.
struct FunctionSectionEffects {
  std::map<std::size_t, SectionInfo> paramReads;   ///< by parameter position
  std::map<std::size_t, SectionInfo> paramWrites;  ///< array parameters only
  std::map<std::string, SectionInfo> globalReads;
  std::map<std::string, SectionInfo> globalWrites;
};

class SectionAnalysis {
 public:
  /// Optional constant-propagation hook: given a loop, the integer scalars
  /// provably constant at its head (nullptr when nothing is known). Queried
  /// only during construction, so the callable need not outlive the ctor.
  using ConstEnvFn =
      std::function<const std::map<std::string, long long>*(const frontend::ForStmt&)>;

  /// `program` must have been through sema (`analyze`). When `constEnv` is
  /// set, loops whose bounds fold to constants under it get real induction
  /// ranges instead of the ⊤ fallback.
  SectionAnalysis(const frontend::Program& program, const frontend::SemaResult& sema,
                  ConstEnvFn constEnv = nullptr);

  /// Summary of `stmt` (aggregated over its whole subtree, widened over the
  /// enclosing loops' iteration spaces).
  const AccessSummary& of(const frontend::Stmt& stmt) const;

  const FunctionSectionEffects& effects(const frontend::Function& fn) const;

  /// Type of `name` in the scope of `fn` (nullptr if unknown).
  const frontend::Type* typeOf(const frontend::Function* fn, const std::string& name) const;

  // --- Section algebra (static: pure functions of sections + type) --------

  /// May the two sections share an element? Range disjointness plus a GCD
  /// test on the strides; `true` is the safe answer whenever unsure.
  static bool mayOverlap(const ArraySection& a, const ArraySection& b,
                         const frontend::Type& type);

  /// Does `writer` definitely touch every element of `target`? Requires
  /// writer.mustCover() plus per-dimension progression containment; `false`
  /// is the safe answer.
  static bool covers(const SectionInfo& writer, const ArraySection& target,
                     const frontend::Type& type);

  /// Storage touched by `s`, in bytes.
  static long long sectionBytes(const ArraySection& s, const frontend::Type& type);

  /// Upper bound on the bytes shared by `a` and `b` (0 when provably
  /// disjoint); never exceeds min(sectionBytes(a), sectionBytes(b)).
  static long long overlapBytes(const ArraySection& a, const ArraySection& b,
                                const frontend::Type& type);

  /// "[0:127:1]" / "[0:7:1][0:7:2]" / "whole" — for --dump-deps.
  static std::string toString(const ArraySection& s);

 private:
  struct Context;
  AccessSummary analyzeStmt(const frontend::Stmt& stmt, const frontend::Function* fn,
                            const Context& ctx);
  void collectExprReads(const frontend::Expr& expr, const frontend::Function* fn,
                        const Context& ctx, AccessSummary& out);
  SectionInfo liftAccess(const std::string& name,
                         const std::vector<frontend::ExprPtr>& indices,
                         const frontend::Function* fn, const Context& ctx);
  FunctionSectionEffects computeEffects(const frontend::Function& fn);

  /// May evaluating `expr` write `name`? Covers calls whose callee writes a
  /// same-named global or writes `name` through an array parameter.
  bool exprWritesVar(const frontend::Expr& expr, const std::string& name) const;
  /// May executing the subtree of `stmt` write (or shadow) `name`?
  bool stmtWritesVar(const frontend::Stmt& stmt, const std::string& name) const;

  const frontend::Program& program_;
  const frontend::SemaResult& sema_;
  ConstEnvFn constEnv_;  ///< cleared after construction (see ctor)
  std::map<const frontend::Stmt*, AccessSummary> perStmt_;
  std::map<const frontend::Function*, FunctionSectionEffects> effects_;
};

}  // namespace hetpar::ir
