// Static trip-count analysis for canonical counted loops.
//
// The interpreter-based profiler provides exact execution counts; this
// static analysis is the fallback for code paths that profiling did not
// reach and is used for HTG iteration-count annotations (paper: leaves are
// "annotated with iteration counts").
#pragma once

#include <optional>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::ir {

/// Trip count of `for (i = c0; i REL c1; i = i +/- c2) ...` with integer
/// literal constants; nullopt when the loop is not in that canonical shape.
std::optional<long long> staticTripCount(const frontend::ForStmt& loop);

/// Evaluates an integer-constant expression (literals and + - * / % of
/// them); nullopt if the expression involves variables or floats.
std::optional<long long> evalConstInt(const frontend::Expr& expr);

}  // namespace hetpar::ir
