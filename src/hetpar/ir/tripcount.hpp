// Static trip-count analysis for canonical counted loops.
//
// The interpreter-based profiler provides exact execution counts; this
// static analysis is the fallback for code paths that profiling did not
// reach and is used for HTG iteration-count annotations (paper: leaves are
// "annotated with iteration counts").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "hetpar/frontend/ast.hpp"

namespace hetpar::ir {

/// Trip count of `for (i = c0; i REL c1; i = i +/- c2) ...` with integer
/// literal constants; nullopt when the loop is not in that canonical shape.
/// The `env` overload also folds variables the constant-propagation client
/// proved constant at the loop head (ir/dataflow.hpp), so
/// symbolic-looking-but-constant bounds stop degrading to "unknown".
std::optional<long long> staticTripCount(const frontend::ForStmt& loop);
std::optional<long long> staticTripCount(const frontend::ForStmt& loop,
                                         const std::map<std::string, long long>* env);

/// Evaluates an integer-constant expression (literals and + - * / % of
/// them); nullopt if the expression involves variables or floats. The `env`
/// overload resolves variable references through the given constant map.
std::optional<long long> evalConstInt(const frontend::Expr& expr);
std::optional<long long> evalConstInt(const frontend::Expr& expr,
                                      const std::map<std::string, long long>* env);

}  // namespace hetpar::ir
