// Monotone dataflow framework over the mini-C statement hierarchy.
//
// The mini-C AST has structured control flow only (no goto), so instead of
// building a CFG the framework walks the statement tree directly: backward
// analyses fold statement lists right-to-left, forward analyses left-to-right,
// and loop bodies are iterated to a fixpoint (the lattices are finite maps
// over the program's variable names, so termination is by monotonicity).
// Calls are resolved through the existing `FunctionEffects` summaries
// (ir/defuse.hpp): a callee's global/array-parameter reads appear as uses at
// the call site, its writes as *may*-writes (they never kill).
//
// Three clients share the framework:
//
//   Live variables (backward) — liveAfter(stmt) is the set of variables whose
//   current value may still be read after `stmt` completes (within the
//   enclosing function; at a non-main function's exit every global and array
//   parameter is conservatively live, at main's exit nothing is). The htg
//   builder uses it in FlowMode::Live to prune CommOut payloads to live
//   values and CommIn payloads to upward-exposed uses. Kills compose with
//   the affine section layer: a statement whose write summary must-covers the
//   whole object (and that reads nothing of it) kills the variable — but only
//   at loop depth 0, where the widened per-statement sections describe a
//   single execution of the statement exactly.
//
//   Reaching definitions (forward) — powers `hetparc --diagnose`: reads of
//   possibly-uninitialized scalars, stores never read (dead stores), and
//   variables written but never read anywhere (write-only), each with source
//   locations.
//
//   Conditional constant propagation (forward) — per canonical loop, the map
//   of integer scalars provably constant at the loop head on every entry.
//   ir/tripcount and ir/affine accept these environments so
//   symbolic-looking-but-constant bounds fold instead of degrading to ⊤;
//   the section analysis wires them in through its ConstEnvFn hook.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "hetpar/frontend/ast.hpp"
#include "hetpar/frontend/sema.hpp"
#include "hetpar/ir/defuse.hpp"
#include "hetpar/ir/sections.hpp"

namespace hetpar::ir {

/// How the htg builder books communication payloads. Conservative reproduces
/// the historical behavior bit for bit; Live prunes CommIn/CommOut payloads
/// by liveness (requires a DataflowAnalysis).
enum class FlowMode { Conservative, Live };

/// One lint finding from the reaching-definitions / write-only clients.
struct FlowDiagnostic {
  enum class Kind { UninitializedRead, DeadStore, WriteOnly };
  Kind kind = Kind::UninitializedRead;
  std::string function;  ///< enclosing function; empty for global scope
  std::string variable;
  frontend::SourceLoc loc;
};

/// "uninitialized-read" / "dead-store" / "write-only".
std::string flowDiagnosticKindName(FlowDiagnostic::Kind kind);

/// Human-readable one-line rendering ("'x' may be read uninitialized").
std::string flowDiagnosticMessage(const FlowDiagnostic& d);

class DataflowAnalysis {
 public:
  /// `program` must have been through sema (`analyze`); `defuse` must have
  /// been built for the same program. The constructor runs constant
  /// propagation first, builds an internal SectionAnalysis sharpened by the
  /// folded loop bounds, then runs liveness and the diagnostics clients
  /// against it. All query results are precomputed here.
  DataflowAnalysis(const frontend::Program& program, const frontend::SemaResult& sema,
                   const DefUseAnalysis& defuse);

  /// Variables whose value may be read after `stmt` completes (including by
  /// later loop iterations and, transitively, by code after the enclosing
  /// function returns). `stmt` must belong to a function body.
  const std::set<std::string>& liveAfter(const frontend::Stmt& stmt) const;

  /// Variables with an upward-exposed use in `stmt`'s subtree: their value
  /// on entry to the statement may be read before being overwritten. Always
  /// a subset of the subtree's actual reads (the def/use layer's pseudo-use
  /// of a partially written array is not upward-exposed by itself).
  const std::set<std::string>& upwardExposed(const frontend::Stmt& stmt) const;

  /// Integer scalars provably constant at the loop head on every entry
  /// (suitable for evalConstInt / staticTripCount / ivRangeOf env
  /// parameters); nullptr when nothing is known.
  const std::map<std::string, long long>* constEnvAt(const frontend::ForStmt& loop) const;

  /// Lint findings, sorted by source location. Populated at construction.
  const std::vector<FlowDiagnostic>& diagnostics() const { return diagnostics_; }

  /// The constant-propagation-sharpened section analysis built internally.
  const SectionAnalysis& sections() const { return *sections_; }

  /// Transfers ownership of the internal section analysis (the caller must
  /// keep it alive no longer than this object's other results are used; all
  /// dataflow results are precomputed, so no back-reference survives).
  std::unique_ptr<SectionAnalysis> takeSections() { return std::move(sections_); }

  /// Test-only fault injection: treat partial (element) array writes as full
  /// kills. This is deliberately unsound — the verify harness's
  /// liveness-soundness relation must catch it (falsifiability check).
  static bool& testTreatPartialArrayWritesAsKills();

 private:
  using LiveSet = std::set<std::string>;
  using ConstEnv = std::map<std::string, long long>;

  // --- liveness ---
  void runLiveness(const frontend::Function& fn);
  LiveSet seqBefore(const std::vector<frontend::StmtPtr>& stmts, LiveSet after,
                    const frontend::Function* fn, bool record, int loopDepth);
  LiveSet stmtBefore(const frontend::Stmt& stmt, LiveSet after, const frontend::Function* fn,
                     bool record, int loopDepth);
  void liveExprUses(const frontend::Expr& expr, LiveSet& out) const;
  bool ambiguousName(const frontend::Function* fn, const std::string& name) const;

  // --- constant propagation ---
  void runConstProp(const frontend::Function& fn, ConstEnv entry);
  ConstEnv cpSeq(const std::vector<frontend::StmtPtr>& stmts, ConstEnv env,
                 const frontend::Function* fn);
  ConstEnv cpStmt(const frontend::Stmt& stmt, ConstEnv env, const frontend::Function* fn);
  void cpKillExprCallWrites(const frontend::Expr& expr, ConstEnv& env) const;
  bool isTrackedInt(const frontend::Function* fn, const std::string& name) const;

  // --- diagnostics ---
  void runReachingDefs(const frontend::Function& fn);
  void runWriteOnlyScan();

  const frontend::Program& program_;
  const frontend::SemaResult& sema_;
  const DefUseAnalysis& defuse_;
  std::unique_ptr<SectionAnalysis> sections_;

  std::map<const frontend::Stmt*, LiveSet> liveAfter_;
  std::map<const frontend::Stmt*, LiveSet> upward_;
  std::map<const frontend::ForStmt*, ConstEnv> constEnv_;
  /// Names that are a param/local of the function *and* a global: name-based
  /// reasoning cannot tell the two objects apart, so kills are suppressed.
  std::map<const frontend::Function*, std::set<std::string>> shadowed_;
  std::vector<FlowDiagnostic> diagnostics_;
};

}  // namespace hetpar::ir
