#include "hetpar/ir/tripcount.hpp"

#include <string>

namespace hetpar::ir {

using frontend::AssignStmt;
using frontend::BinaryExpr;
using frontend::BinaryOp;
using frontend::DeclStmt;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ForStmt;
using frontend::StmtKind;
using frontend::UnaryExpr;
using frontend::UnaryOp;
using frontend::VarRef;

using ConstEnv = std::map<std::string, long long>;

std::optional<long long> evalConstInt(const Expr& expr, const ConstEnv* env) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return static_cast<const frontend::IntLit&>(expr).value;
    case ExprKind::VarRef: {
      if (env == nullptr) return std::nullopt;
      const auto it = env->find(static_cast<const VarRef&>(expr).name);
      if (it == env->end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      if (e.op != UnaryOp::Neg) return std::nullopt;
      auto v = evalConstInt(*e.operand, env);
      if (!v) return std::nullopt;
      return -*v;
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      auto l = evalConstInt(*e.lhs, env);
      auto r = evalConstInt(*e.rhs, env);
      if (!l || !r) return std::nullopt;
      switch (e.op) {
        case BinaryOp::Add: return *l + *r;
        case BinaryOp::Sub: return *l - *r;
        case BinaryOp::Mul: return *l * *r;
        case BinaryOp::Div: return *r == 0 ? std::nullopt : std::optional<long long>(*l / *r);
        case BinaryOp::Mod: return *r == 0 ? std::nullopt : std::optional<long long>(*l % *r);
        default: return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<long long> evalConstInt(const Expr& expr) {
  return evalConstInt(expr, nullptr);
}

namespace {

/// Extracts (variable, start) from the loop init statement.
std::optional<std::pair<std::string, long long>> initOf(const ForStmt& loop,
                                                        const ConstEnv* env) {
  if (!loop.init) return std::nullopt;
  if (loop.init->kind == StmtKind::Decl) {
    const auto& d = static_cast<const DeclStmt&>(*loop.init);
    if (!d.init) return std::nullopt;
    auto v = evalConstInt(*d.init, env);
    if (!v) return std::nullopt;
    return std::make_pair(d.name, *v);
  }
  if (loop.init->kind == StmtKind::Assign) {
    const auto& a = static_cast<const AssignStmt&>(*loop.init);
    if (!a.indices.empty()) return std::nullopt;
    auto v = evalConstInt(*a.value, env);
    if (!v) return std::nullopt;
    return std::make_pair(a.target, *v);
  }
  return std::nullopt;
}

/// Extracts the step `i = i (+|-) c` for variable `var`.
std::optional<long long> stepOf(const ForStmt& loop, const std::string& var,
                                const ConstEnv* env) {
  if (!loop.step || loop.step->kind != StmtKind::Assign) return std::nullopt;
  const auto& a = static_cast<const AssignStmt&>(*loop.step);
  if (a.target != var || !a.indices.empty()) return std::nullopt;
  if (a.value->kind != ExprKind::Binary) return std::nullopt;
  const auto& b = static_cast<const BinaryExpr&>(*a.value);
  if (b.lhs->kind != ExprKind::VarRef ||
      static_cast<const VarRef&>(*b.lhs).name != var)
    return std::nullopt;
  auto c = evalConstInt(*b.rhs, env);
  if (!c) return std::nullopt;
  if (b.op == BinaryOp::Add) return *c;
  if (b.op == BinaryOp::Sub) return -*c;
  return std::nullopt;
}

}  // namespace

std::optional<long long> staticTripCount(const ForStmt& loop, const ConstEnv* env) {
  // `env` maps variables to their values at the loop head on every entry
  // (ir/dataflow.hpp constant propagation). The induction variable itself is
  // never constant across iterations of a nonzero-step loop, so it can never
  // be folded here; every other variable the init/cond/step read is, by the
  // head-environment argument, unchanged between init and head.
  auto init = initOf(loop, env);
  if (!init || !loop.cond) return std::nullopt;
  const auto& [var, start] = *init;
  auto step = stepOf(loop, var, env);
  if (!step || *step == 0) return std::nullopt;

  if (loop.cond->kind != ExprKind::Binary) return std::nullopt;
  const auto& cond = static_cast<const BinaryExpr&>(*loop.cond);
  if (cond.lhs->kind != ExprKind::VarRef ||
      static_cast<const VarRef&>(*cond.lhs).name != var)
    return std::nullopt;
  auto boundOpt = evalConstInt(*cond.rhs, env);
  if (!boundOpt) return std::nullopt;
  long long bound = *boundOpt;

  // Normalize to `i < bound` / `i > bound` exclusive forms.
  switch (cond.op) {
    case BinaryOp::Lt: break;
    case BinaryOp::Le: bound += 1; break;
    case BinaryOp::Gt: break;
    case BinaryOp::Ge: bound -= 1; break;
    default: return std::nullopt;
  }

  if ((cond.op == BinaryOp::Lt || cond.op == BinaryOp::Le)) {
    if (*step <= 0) return std::nullopt;  // non-terminating or backwards
    if (start >= bound) return 0;
    return (bound - start + *step - 1) / *step;
  }
  // Decreasing loops: `i > bound` with negative step.
  if (*step >= 0) return std::nullopt;
  if (start <= bound) return 0;
  return (start - bound + (-*step) - 1) / (-*step);
}

std::optional<long long> staticTripCount(const ForStmt& loop) {
  return staticTripCount(loop, nullptr);
}

}  // namespace hetpar::ir
