// Loop parallelism classification.
//
// The paper's HTG reconsiders code "on different granularity levels like
// instructions, loop iterations, or functions". To parallelize on the
// *loop iteration* level, the tool must know whether a counted loop's
// iterations are independent (DOALL) apart from recognized reductions.
//
// The test is deliberately conservative and classic:
//   * every array that is written in the body must be accessed only through
//     subscripts whose relevant dimension is exactly the loop induction
//     variable (so iterations touch disjoint elements);
//   * scalars written in the body must be either privatizable (defined
//     before use in every iteration, e.g. temporaries) or recognized
//     reductions (`s = s + e` / `s = s - e` / `s = s * e` with no other use);
//   * the loop must be in canonical counted form with unit step.
#pragma once

#include <set>
#include <string>

#include "hetpar/frontend/ast.hpp"
#include "hetpar/ir/defuse.hpp"

namespace hetpar::ir {

struct LoopParallelism {
  bool isDoall = false;
  /// Scalars accumulated via a reduction pattern (parallelizable with a
  /// cheap merge step).
  std::set<std::string> reductions;
  /// Scalars that are written before read each iteration (each task gets a
  /// private copy).
  std::set<std::string> privatizable;
  /// Human-readable reason when isDoall is false.
  std::string reason;
};

/// Classifies `loop` (which must have been through sema). `du` supplies
/// def/use sets; `fn` is the enclosing function (for name lookup).
LoopParallelism analyzeLoop(const frontend::ForStmt& loop, const DefUseAnalysis& du,
                            const frontend::Function* fn);

}  // namespace hetpar::ir
