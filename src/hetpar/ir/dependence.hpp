// Data-dependence analysis between ordered sibling statements.
//
// The HTG needs, per hierarchical region, the dependence edges among the
// region's direct children (paper: "Data-Flow edges ... denote communication
// if source and target node are executed in different tasks") plus the flows
// that cross the region boundary (feeding the Communication-In/Out nodes).
//
// Two modes, selected by DependenceOptions:
//
//   Conservative (default) — variables are whole objects (array
//   granularity); flow edges go from the *last* writer to each reader,
//   anti/output edges are pure ordering (zero communication payload — task
//   spawn copies data, so WAR hazards dissolve, but we keep the ordering to
//   stay conservative).
//
//   Affine — array accesses are refined by the section analysis
//   (ir/sections.hpp): provably disjoint sections produce no edge, and
//   overlapping sections pay only the overlap in bytes. Edges may target
//   non-nearest writers (a partial write does not hide earlier writers);
//   a *definite, exact* covering write still does. Every affine edge lies
//   in the transitive closure of the conservative edge set, and the
//   per-region byte totals never exceed the conservative ones (the verify
//   harness checks both as the refinement-soundness relation).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "hetpar/ir/dataflow.hpp"
#include "hetpar/ir/defuse.hpp"
#include "hetpar/ir/sections.hpp"

namespace hetpar::ir {

enum class DepKind { Flow, Anti, Output };

enum class DependenceMode { Conservative, Affine };

struct DependenceOptions {
  DependenceMode mode = DependenceMode::Conservative;
  /// Required when mode == Affine; ignored otherwise.
  const SectionAnalysis* sections = nullptr;
  /// FlowMode::Live prunes region-boundary payloads by liveness: inbound
  /// keeps only variables with an upward-exposed use in the consuming
  /// sibling, outbound only variables live after the region. Orthogonal to
  /// `mode` (composes with either granularity); Conservative leaves the
  /// historical payloads untouched.
  FlowMode flow = FlowMode::Conservative;
  /// Required when flow == Live; ignored otherwise.
  const DataflowAnalysis* dataflow = nullptr;
};

struct DepEdge {
  int from = 0;  ///< index into the sibling vector
  int to = 0;
  DepKind kind = DepKind::Flow;
  long long bytes = 0;  ///< communication payload if the edge is cut
  std::vector<std::string> vars;
};

/// Dependences among `siblings` (in program order, within function `fn`;
/// pass nullptr for global scope).
std::vector<DepEdge> computeSiblingDeps(const std::vector<const frontend::Stmt*>& siblings,
                                        const DefUseAnalysis& du,
                                        const frontend::Function* fn,
                                        const DependenceOptions& options = {});

/// Flows crossing the region boundary.
struct RegionFlow {
  /// inbound[i]: variables sibling i consumes that no earlier sibling
  /// produced (they arrive through the region's Communication-In node).
  std::vector<std::map<std::string, long long>> inbound;
  /// outbound[i]: variables sibling i produces with no later sibling
  /// overwriting them (they leave through the Communication-Out node).
  std::vector<std::map<std::string, long long>> outbound;
};

RegionFlow computeRegionFlow(const std::vector<const frontend::Stmt*>& siblings,
                             const DefUseAnalysis& du, const frontend::Function* fn,
                             const DependenceOptions& options = {});

}  // namespace hetpar::ir
