#include "hetpar/ir/dataflow.hpp"

#include <algorithm>
#include <optional>

#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::ir {

using frontend::AssignStmt;
using frontend::BinaryExpr;
using frontend::BinaryOp;
using frontend::BlockStmt;
using frontend::CallExpr;
using frontend::DeclStmt;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprStmt;
using frontend::ForStmt;
using frontend::Function;
using frontend::IfStmt;
using frontend::IndexExpr;
using frontend::Program;
using frontend::ReturnStmt;
using frontend::ScalarType;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::StmtPtr;
using frontend::Type;
using frontend::UnaryExpr;
using frontend::UnaryOp;
using frontend::VarRef;
using frontend::WhileStmt;

std::string flowDiagnosticKindName(FlowDiagnostic::Kind kind) {
  switch (kind) {
    case FlowDiagnostic::Kind::UninitializedRead: return "uninitialized-read";
    case FlowDiagnostic::Kind::DeadStore: return "dead-store";
    case FlowDiagnostic::Kind::WriteOnly: return "write-only";
  }
  return "unknown";
}

std::string flowDiagnosticMessage(const FlowDiagnostic& d) {
  switch (d.kind) {
    case FlowDiagnostic::Kind::UninitializedRead:
      return strings::format("'%s' may be read uninitialized", d.variable.c_str());
    case FlowDiagnostic::Kind::DeadStore:
      return strings::format("value stored to '%s' is never read", d.variable.c_str());
    case FlowDiagnostic::Kind::WriteOnly:
      return strings::format("'%s' is written but never read", d.variable.c_str());
  }
  return "unknown diagnostic";
}

bool& DataflowAnalysis::testTreatPartialArrayWritesAsKills() {
  static bool knob = false;
  return knob;
}

namespace {

/// Constant evaluation over the Const-entries-only environment (absent keys
/// are ⊥/NAC). Richer than ir::evalConstInt: comparisons and short-circuit
/// logic fold too, so `if` conditions can select a single branch.
std::optional<long long> cpEval(const Expr& expr,
                                const std::map<std::string, long long>& env) {
  switch (expr.kind) {
    case ExprKind::IntLit:
      return static_cast<const frontend::IntLit&>(expr).value;
    case ExprKind::VarRef: {
      const auto it = env.find(static_cast<const VarRef&>(expr).name);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ExprKind::Unary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      const auto v = cpEval(*e.operand, env);
      if (!v) return std::nullopt;
      if (e.op == UnaryOp::Neg) return -*v;
      return *v == 0 ? 1 : 0;  // Not
    }
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      const auto l = cpEval(*e.lhs, env);
      if (!l) return std::nullopt;
      if (e.op == BinaryOp::And && *l == 0) return 0;
      if (e.op == BinaryOp::Or && *l != 0) return 1;
      const auto r = cpEval(*e.rhs, env);
      if (!r) return std::nullopt;
      switch (e.op) {
        case BinaryOp::Add: return *l + *r;
        case BinaryOp::Sub: return *l - *r;
        case BinaryOp::Mul: return *l * *r;
        case BinaryOp::Div:
          return *r == 0 ? std::nullopt : std::optional<long long>(*l / *r);
        case BinaryOp::Mod:
          return *r == 0 ? std::nullopt : std::optional<long long>(*l % *r);
        case BinaryOp::Lt: return *l < *r ? 1 : 0;
        case BinaryOp::Le: return *l <= *r ? 1 : 0;
        case BinaryOp::Gt: return *l > *r ? 1 : 0;
        case BinaryOp::Ge: return *l >= *r ? 1 : 0;
        case BinaryOp::Eq: return *l == *r ? 1 : 0;
        case BinaryOp::Ne: return *l != *r ? 1 : 0;
        case BinaryOp::And: return *r != 0 ? 1 : 0;  // lhs already nonzero
        case BinaryOp::Or: return *r != 0 ? 1 : 0;   // lhs already zero
      }
      return std::nullopt;
    }
    default:  // FloatLit, Index, Call: not an integer constant
      return std::nullopt;
  }
}

/// Intersection with equal values: the lattice join of two Const-only maps.
std::map<std::string, long long> joinEnv(const std::map<std::string, long long>& a,
                                         const std::map<std::string, long long>& b) {
  std::map<std::string, long long> out;
  for (const auto& [k, v] : a) {
    const auto it = b.find(k);
    if (it != b.end() && it->second == v) out.emplace(k, v);
  }
  return out;
}

}  // namespace

DataflowAnalysis::DataflowAnalysis(const Program& program, const frontend::SemaResult& sema,
                                   const DefUseAnalysis& defuse)
    : program_(program), sema_(sema), defuse_(defuse) {
  // Names declared locally (or as parameters) that also exist as globals:
  // the flat name-based sets cannot tell the two objects apart once a callee
  // touches the global, so kills on those names are suppressed.
  for (const auto& fn : program.functions) {
    std::set<std::string>& amb = shadowed_[fn.get()];
    for (const auto& p : fn->params)
      if (sema.globals.count(p.name) != 0) amb.insert(p.name);
    for (const auto& s : fn->body)
      frontend::forEachStmt(*s, [&](Stmt& st) {
        if (st.kind != StmtKind::Decl) return;
        const auto& d = static_cast<const DeclStmt&>(st);
        if (sema.globals.count(d.name) != 0) amb.insert(d.name);
      });
  }

  // Constant propagation first: it needs no section information, and its
  // folded loop-head environments sharpen the section analysis below.
  const Function& mainFn = program.entry();
  ConstEnv globalEnv;
  for (const auto& g : program.globals) {
    const auto& d = static_cast<const DeclStmt&>(*g);
    if (!d.type.dims.empty() || d.type.scalar != ScalarType::Int) continue;
    if (d.init == nullptr) {
      globalEnv[d.name] = 0;  // mini-C zero-initializes globals
    } else if (const auto v = cpEval(*d.init, globalEnv)) {
      globalEnv[d.name] = *v;
    }
  }
  for (const auto& fn : program.functions)
    runConstProp(*fn, fn.get() == &mainFn ? globalEnv : ConstEnv{});

  sections_ = std::make_unique<SectionAnalysis>(
      program, sema, [this](const ForStmt& loop) { return constEnvAt(loop); });

  for (const auto& fn : program.functions) runLiveness(*fn);

  // Upward-exposed uses, precomputed for every statement: a backward walk of
  // the statement alone from the empty set (scalar kills only; the widened
  // sections of a statement nested in outer loops do not describe one region
  // execution, so section kills are disabled here), intersected with the
  // subtree's actual reads to strip the def/use layer's array pseudo-uses.
  for (const auto& fn : program.functions) {
    for (const auto& top : fn->body) {
      frontend::forEachStmt(*top, [&](Stmt& s) {
        LiveSet ue = stmtBefore(s, LiveSet{}, fn.get(), /*record=*/false, /*loopDepth=*/1);
        const AccessSummary& su = sections_->of(s);
        LiveSet kept;
        for (const auto& v : ue)
          if (su.reads.count(v) != 0) kept.insert(v);
        upward_.emplace(&s, std::move(kept));
      });
    }
  }

  for (const auto& fn : program.functions) runReachingDefs(*fn);
  runWriteOnlyScan();
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const FlowDiagnostic& a, const FlowDiagnostic& b) {
                     if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                     if (a.loc.column != b.loc.column) return a.loc.column < b.loc.column;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.variable < b.variable;
                   });
}

const std::set<std::string>& DataflowAnalysis::liveAfter(const Stmt& stmt) const {
  const auto it = liveAfter_.find(&stmt);
  HETPAR_CHECK_MSG(it != liveAfter_.end(), "statement has no liveness record");
  return it->second;
}

const std::set<std::string>& DataflowAnalysis::upwardExposed(const Stmt& stmt) const {
  const auto it = upward_.find(&stmt);
  HETPAR_CHECK_MSG(it != upward_.end(), "statement has no upward-exposure record");
  return it->second;
}

const std::map<std::string, long long>* DataflowAnalysis::constEnvAt(
    const ForStmt& loop) const {
  const auto it = constEnv_.find(&loop);
  return it == constEnv_.end() ? nullptr : &it->second;
}

bool DataflowAnalysis::ambiguousName(const Function* fn, const std::string& name) const {
  if (fn == nullptr) return true;
  const auto it = shadowed_.find(fn);
  return it != shadowed_.end() && it->second.count(name) != 0;
}

// --- live variables ---------------------------------------------------------

void DataflowAnalysis::liveExprUses(const Expr& expr, LiveSet& out) const {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      break;
    case ExprKind::VarRef:
      out.insert(static_cast<const VarRef&>(expr).name);
      break;
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      out.insert(e.name);
      for (const auto& i : e.indices) liveExprUses(*i, out);
      break;
    }
    case ExprKind::Unary:
      liveExprUses(*static_cast<const UnaryExpr&>(expr).operand, out);
      break;
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      liveExprUses(*e.lhs, out);
      liveExprUses(*e.rhs, out);
      break;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      if (frontend::isBuiltinFunction(e.callee)) {
        for (const auto& a : e.args) liveExprUses(*a, out);
        break;
      }
      const Function* callee = program_.findFunction(e.callee);
      HETPAR_CHECK(callee != nullptr);
      const FunctionEffects& fx = defuse_.effects(*callee);
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (callee->params[i].type.isArray()) {
          if (fx.paramRead[i])
            out.insert(static_cast<const VarRef&>(*e.args[i]).name);
        } else {
          liveExprUses(*e.args[i], out);
        }
      }
      for (const auto& g : fx.globalsRead) out.insert(g);
      break;
    }
  }
}

void DataflowAnalysis::runLiveness(const Function& fn) {
  LiveSet exitLive;
  if (&fn != &program_.entry()) {
    // Callers (and code after the call) may read any global or anything
    // reachable through an array parameter; scalar parameters are by-value
    // copies that die with the frame.
    for (const auto& [g, type] : sema_.globals) exitLive.insert(g);
    for (const auto& p : fn.params)
      if (p.type.isArray()) exitLive.insert(p.name);
  }
  seqBefore(fn.body, std::move(exitLive), &fn, /*record=*/true, /*loopDepth=*/0);
}

DataflowAnalysis::LiveSet DataflowAnalysis::seqBefore(const std::vector<StmtPtr>& stmts,
                                                      LiveSet after, const Function* fn,
                                                      bool record, int loopDepth) {
  LiveSet cur = std::move(after);
  for (std::size_t i = stmts.size(); i-- > 0;) {
    if (record) liveAfter_[stmts[i].get()] = cur;
    cur = stmtBefore(*stmts[i], std::move(cur), fn, record, loopDepth);
  }
  return cur;
}

DataflowAnalysis::LiveSet DataflowAnalysis::stmtBefore(const Stmt& stmt, LiveSet after,
                                                       const Function* fn, bool record,
                                                       int loopDepth) {
  LiveSet result;
  switch (stmt.kind) {
    case StmtKind::Decl: {
      const auto& s = static_cast<const DeclStmt&>(stmt);
      result = std::move(after);
      // The declaration rebinds the name to fresh storage: the value visible
      // under this name before the declaration cannot be read through it.
      if (!ambiguousName(fn, s.name)) result.erase(s.name);
      const DefUse& du = defuse_.of(stmt);
      result.insert(du.uses.begin(), du.uses.end());
      break;
    }
    case StmtKind::Assign: {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      result = std::move(after);
      const DefUse& du = defuse_.of(stmt);
      LiveSet gen(du.uses);
      if (s.indices.empty()) {
        // A scalar store always overwrites the whole object.
        if (!ambiguousName(fn, s.target)) result.erase(s.target);
      } else if (testTreatPartialArrayWritesAsKills() && !ambiguousName(fn, s.target)) {
        // Fault injection: pretend the element write kills the array and has
        // no upward-exposed read of it. Unsound by construction.
        result.erase(s.target);
        gen.erase(s.target);
      }
      result.insert(gen.begin(), gen.end());
      break;
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      if (s.cond) liveExprUses(*s.cond, result);
      LiveSet t = seqBefore(s.thenBody, after, fn, record, loopDepth);
      LiveSet e = seqBefore(s.elseBody, std::move(after), fn, record, loopDepth);
      result.insert(t.begin(), t.end());
      result.insert(e.begin(), e.end());
      break;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      // H: the live set at the loop head (just before each cond check).
      // Union-only transfer over a finite name set, so the iteration from
      // the exit state climbs monotonically to the least fixpoint.
      LiveSet H = after;
      if (s.cond) liveExprUses(*s.cond, H);
      while (true) {
        LiveSet next = after;
        if (s.cond) liveExprUses(*s.cond, next);
        LiveSet bodyAfter =
            s.step ? stmtBefore(*s.step, H, fn, false, loopDepth + 1) : H;
        const LiveSet b = seqBefore(s.body, std::move(bodyAfter), fn, false, loopDepth + 1);
        next.insert(b.begin(), b.end());
        if (next == H) break;
        H = std::move(next);
      }
      if (record) {
        LiveSet bodyAfter;
        if (s.step) {
          liveAfter_[s.step.get()] = H;
          bodyAfter = stmtBefore(*s.step, H, fn, true, loopDepth + 1);
        } else {
          bodyAfter = H;
        }
        seqBefore(s.body, std::move(bodyAfter), fn, true, loopDepth + 1);
      }
      result = H;
      if (s.init) {
        if (record) liveAfter_[s.init.get()] = H;
        result = stmtBefore(*s.init, std::move(result), fn, record, loopDepth);
      }
      break;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      LiveSet H = after;
      liveExprUses(*s.cond, H);
      while (true) {
        LiveSet next = after;
        liveExprUses(*s.cond, next);
        const LiveSet b = seqBefore(s.body, H, fn, false, loopDepth + 1);
        next.insert(b.begin(), b.end());
        if (next == H) break;
        H = std::move(next);
      }
      if (record) seqBefore(s.body, H, fn, true, loopDepth + 1);
      result = std::move(H);
      break;
    }
    case StmtKind::Return:
    case StmtKind::Expr: {
      result = std::move(after);
      const DefUse& du = defuse_.of(stmt);
      result.insert(du.uses.begin(), du.uses.end());
      break;
    }
    case StmtKind::Block: {
      const auto& s = static_cast<const BlockStmt&>(stmt);
      result = seqBefore(s.body, std::move(after), fn, record, loopDepth);
      break;
    }
  }

  // Affine section kill: a write summary that must-covers the whole object,
  // with no read of it anywhere in the subtree, ends the variable's liveness
  // at this statement. Sound only at loop depth 0: inside a loop body the
  // per-statement summary is widened over the enclosing iteration space and
  // does not describe a single execution, so a "covering" sibling may in
  // fact write its elements before the killed value's writer does.
  if (loopDepth == 0 && fn != nullptr) {
    const AccessSummary& su = sections_->of(stmt);
    for (const auto& [v, w] : su.writes) {
      if (!w.mustCover() || su.reads.count(v) != 0) continue;
      if (ambiguousName(fn, v)) continue;
      const Type* type = sema_.lookup(fn, v);
      if (type == nullptr) continue;
      if (!SectionAnalysis::covers(w, ArraySection{}, *type)) continue;
      result.erase(v);
    }
  }
  return result;
}

// --- constant propagation ---------------------------------------------------

bool DataflowAnalysis::isTrackedInt(const Function* fn, const std::string& name) const {
  const Type* t = sema_.lookup(fn, name);
  return t != nullptr && t->dims.empty() && t->scalar == ScalarType::Int;
}

void DataflowAnalysis::cpKillExprCallWrites(const Expr& expr, ConstEnv& env) const {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::VarRef:
      break;
    case ExprKind::Index:
      for (const auto& i : static_cast<const IndexExpr&>(expr).indices)
        cpKillExprCallWrites(*i, env);
      break;
    case ExprKind::Unary:
      cpKillExprCallWrites(*static_cast<const UnaryExpr&>(expr).operand, env);
      break;
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      cpKillExprCallWrites(*e.lhs, env);
      cpKillExprCallWrites(*e.rhs, env);
      break;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      for (const auto& a : e.args) cpKillExprCallWrites(*a, env);
      if (frontend::isBuiltinFunction(e.callee)) break;
      const Function* callee = program_.findFunction(e.callee);
      HETPAR_CHECK(callee != nullptr);
      for (const auto& g : defuse_.effects(*callee).globalsWritten) env.erase(g);
      break;
    }
  }
}

void DataflowAnalysis::runConstProp(const Function& fn, ConstEnv entry) {
  cpSeq(fn.body, std::move(entry), &fn);
}

DataflowAnalysis::ConstEnv DataflowAnalysis::cpSeq(const std::vector<StmtPtr>& stmts,
                                                   ConstEnv env, const Function* fn) {
  for (const auto& s : stmts) env = cpStmt(*s, std::move(env), fn);
  return env;
}

DataflowAnalysis::ConstEnv DataflowAnalysis::cpStmt(const Stmt& stmt, ConstEnv env,
                                                    const Function* fn) {
  switch (stmt.kind) {
    case StmtKind::Decl: {
      const auto& s = static_cast<const DeclStmt&>(stmt);
      for (const auto& d : defuse_.of(stmt).defs) env.erase(d);
      env.erase(s.name);  // no-init declarations have no def entry
      if (s.init && isTrackedInt(fn, s.name))
        if (const auto v = cpEval(*s.init, env)) env[s.name] = *v;
      return env;
    }
    case StmtKind::Assign: {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      // Kill everything the statement may write (callee effects included),
      // then re-establish the direct target: the store happens last.
      for (const auto& d : defuse_.of(stmt).defs) env.erase(d);
      if (s.indices.empty() && isTrackedInt(fn, s.target))
        if (const auto v = cpEval(*s.value, env)) env[s.target] = *v;
      return env;
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      cpKillExprCallWrites(*s.cond, env);
      if (const auto c = cpEval(*s.cond, env))
        return cpSeq(*c != 0 ? s.thenBody : s.elseBody, std::move(env), fn);
      ConstEnv t = cpSeq(s.thenBody, env, fn);
      ConstEnv e = cpSeq(s.elseBody, std::move(env), fn);
      return joinEnv(t, e);
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      if (s.init) env = cpStmt(*s.init, std::move(env), fn);
      // H: constants holding at the loop head on every entry — the join of
      // the loop-entry environment and the back-edge environment. Entries
      // only ever drop to NAC, so the descent terminates.
      ConstEnv H = env;
      while (true) {
        ConstEnv headEnv = H;
        if (s.cond) cpKillExprCallWrites(*s.cond, headEnv);
        ConstEnv bodyEnv = cpSeq(s.body, std::move(headEnv), fn);
        if (s.step) bodyEnv = cpStmt(*s.step, std::move(bodyEnv), fn);
        ConstEnv next = joinEnv(env, bodyEnv);
        if (next == H) break;
        H = std::move(next);
      }
      if (s.cond) cpKillExprCallWrites(*s.cond, H);
      if (H.empty())
        constEnv_.erase(&s);
      else
        constEnv_[&s] = H;
      return H;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      ConstEnv H = env;
      while (true) {
        ConstEnv headEnv = H;
        cpKillExprCallWrites(*s.cond, headEnv);
        ConstEnv bodyEnv = cpSeq(s.body, std::move(headEnv), fn);
        ConstEnv next = joinEnv(env, bodyEnv);
        if (next == H) break;
        H = std::move(next);
      }
      cpKillExprCallWrites(*s.cond, H);
      return H;
    }
    case StmtKind::Return:
    case StmtKind::Expr: {
      for (const auto& d : defuse_.of(stmt).defs) env.erase(d);
      return env;
    }
    case StmtKind::Block:
      return cpSeq(static_cast<const BlockStmt&>(stmt).body, std::move(env), fn);
  }
  return env;
}

// --- reaching definitions / diagnostics -------------------------------------

namespace {

/// Per-variable reaching state for the diagnostics client: the direct scalar
/// defs that may reach this point, plus whether an uninitialized declaration
/// may. Callee may-writes neither kill nor register (they are not dead-store
/// candidates and cannot un-initialize anything).
struct DefState {
  bool uninit = false;
  std::set<const Stmt*> defs;

  bool operator==(const DefState& o) const { return uninit == o.uninit && defs == o.defs; }
};
using RDState = std::map<std::string, DefState>;

RDState mergeState(const RDState& a, const RDState& b) {
  RDState out = a;
  for (const auto& [v, st] : b) {
    auto [it, inserted] = out.try_emplace(v, st);
    if (!inserted) {
      it->second.uninit = it->second.uninit || st.uninit;
      it->second.defs.insert(st.defs.begin(), st.defs.end());
    }
  }
  return out;
}

}  // namespace

void DataflowAnalysis::runReachingDefs(const Function& fn) {
  const bool isMain = &fn == &program_.entry();
  std::set<const Stmt*> allDefs;  // direct scalar stores: dead-store candidates
  std::map<const Stmt*, std::string> defVar;
  std::set<const Stmt*> used;
  std::set<std::pair<int, std::string>> uninitReported;

  const auto isScalar = [&](const std::string& name) {
    const Type* t = sema_.lookup(&fn, name);
    return t != nullptr && t->dims.empty();
  };

  const auto markUses = [&](const std::set<std::string>& uses, RDState& st,
                            const Stmt& at) {
    for (const auto& u : uses) {
      if (!isScalar(u)) continue;
      const auto it = st.find(u);
      if (it == st.end()) continue;
      for (const Stmt* d : it->second.defs) used.insert(d);
      if (it->second.uninit && uninitReported.emplace(at.id, u).second)
        diagnostics_.push_back(FlowDiagnostic{FlowDiagnostic::Kind::UninitializedRead,
                                              fn.name, u, at.loc});
    }
  };

  std::function<void(const Stmt&, RDState&)> walk;
  const auto walkSeq = [&](const std::vector<StmtPtr>& stmts, RDState& st) {
    for (const auto& s : stmts) walk(*s, st);
  };

  walk = [&](const Stmt& stmt, RDState& st) {
    switch (stmt.kind) {
      case StmtKind::Decl: {
        const auto& s = static_cast<const DeclStmt&>(stmt);
        if (s.init) {
          markUses(defuse_.of(stmt).uses, st, stmt);
          if (isScalar(s.name)) {
            st[s.name] = DefState{false, {&stmt}};
            allDefs.insert(&stmt);
            defVar[&stmt] = s.name;
          }
        } else if (isScalar(s.name)) {
          st[s.name] = DefState{true, {}};
        }
        break;
      }
      case StmtKind::Assign: {
        const auto& s = static_cast<const AssignStmt&>(stmt);
        markUses(defuse_.of(stmt).uses, st, stmt);
        if (s.indices.empty() && isScalar(s.target) &&
            !ambiguousName(&fn, s.target)) {
          st[s.target] = DefState{false, {&stmt}};
          allDefs.insert(&stmt);
          defVar[&stmt] = s.target;
        }
        break;
      }
      case StmtKind::If: {
        const auto& s = static_cast<const IfStmt&>(stmt);
        LiveSet condUses;
        liveExprUses(*s.cond, condUses);
        markUses({condUses.begin(), condUses.end()}, st, stmt);
        RDState t = st;
        RDState e = std::move(st);
        walkSeq(s.thenBody, t);
        walkSeq(s.elseBody, e);
        st = mergeState(t, e);
        break;
      }
      case StmtKind::For: {
        const auto& s = static_cast<const ForStmt&>(stmt);
        if (s.init) walk(*s.init, st);
        RDState H = st;
        while (true) {
          RDState body = H;
          if (s.cond) {
            LiveSet condUses;
            liveExprUses(*s.cond, condUses);
            markUses({condUses.begin(), condUses.end()}, body, stmt);
          }
          walkSeq(s.body, body);
          if (s.step) walk(*s.step, body);
          RDState next = mergeState(st, body);
          if (next == H) break;
          H = std::move(next);
        }
        st = std::move(H);
        break;
      }
      case StmtKind::While: {
        const auto& s = static_cast<const WhileStmt&>(stmt);
        RDState H = st;
        while (true) {
          RDState body = H;
          LiveSet condUses;
          liveExprUses(*s.cond, condUses);
          markUses({condUses.begin(), condUses.end()}, body, stmt);
          walkSeq(s.body, body);
          RDState next = mergeState(st, body);
          if (next == H) break;
          H = std::move(next);
        }
        st = std::move(H);
        break;
      }
      case StmtKind::Return:
      case StmtKind::Expr:
        markUses(defuse_.of(stmt).uses, st, stmt);
        break;
      case StmtKind::Block:
        walkSeq(static_cast<const BlockStmt&>(stmt).body, st);
        break;
    }
  };

  RDState st;
  for (const auto& [g, type] : sema_.globals)
    if (type.dims.empty()) st[g] = DefState{false, {}};
  for (const auto& p : fn.params)
    if (p.type.dims.empty()) st[p.name] = DefState{false, {}};
  for (const auto& s : fn.body) walk(*s, st);

  // Non-main exits publish globals to the caller; main's exit is the end of
  // the program, so a final global store really is dead.
  if (!isMain) {
    for (const auto& [v, ds] : st)
      if (sema_.globals.count(v) != 0 && !ambiguousName(&fn, v))
        for (const Stmt* d : ds.defs) used.insert(d);
  }

  for (const Stmt* d : allDefs)
    if (used.count(d) == 0)
      diagnostics_.push_back(
          FlowDiagnostic{FlowDiagnostic::Kind::DeadStore, fn.name, defVar[d], d->loc});
}

void DataflowAnalysis::runWriteOnlyScan() {
  std::set<std::string> shadowedAnywhere;
  for (const auto& [fn, names] : shadowed_)
    shadowedAnywhere.insert(names.begin(), names.end());

  const auto addNames = [](const std::map<std::string, SectionInfo>& m,
                           std::set<std::string>& out) {
    for (const auto& [v, info] : m) out.insert(v);
  };

  std::set<std::string> globalReads, globalWrites;
  for (const auto& g : program_.globals) {
    const AccessSummary& su = sections_->of(*g);
    addNames(su.reads, globalReads);
    addNames(su.writes, globalWrites);
  }

  for (const auto& fn : program_.functions) {
    std::set<std::string> localNames;
    for (const auto& p : fn->params) localNames.insert(p.name);
    std::map<std::string, frontend::SourceLoc> declLoc;
    for (const auto& top : fn->body)
      frontend::forEachStmt(*top, [&](Stmt& s) {
        if (s.kind != StmtKind::Decl) return;
        const auto& d = static_cast<const DeclStmt&>(s);
        localNames.insert(d.name);
        declLoc.try_emplace(d.name, s.loc);
      });

    std::set<std::string> reads, writes;
    for (const auto& top : fn->body) {
      const AccessSummary& su = sections_->of(*top);
      addNames(su.reads, reads);
      addNames(su.writes, writes);
    }
    for (const auto& v : writes) {
      const bool isLocal = localNames.count(v) != 0;
      if (isLocal) {
        // Array parameters escape to the caller; shadowed names are skipped
        // as ambiguous. Everything else written-but-never-read is flagged.
        bool isParam = false;
        for (const auto& p : fn->params) isParam = isParam || p.name == v;
        if (isParam || shadowedAnywhere.count(v) != 0) continue;
        if (reads.count(v) != 0) continue;
        const auto lit = declLoc.find(v);
        diagnostics_.push_back(FlowDiagnostic{
            FlowDiagnostic::Kind::WriteOnly, fn->name, v,
            lit != declLoc.end() ? lit->second : fn->loc});
      } else {
        globalWrites.insert(v);
      }
      if (!isLocal && reads.count(v) != 0) globalReads.insert(v);
    }
    for (const auto& v : reads)
      if (localNames.count(v) == 0) globalReads.insert(v);
  }

  for (const auto& v : globalWrites) {
    if (globalReads.count(v) != 0 || shadowedAnywhere.count(v) != 0) continue;
    frontend::SourceLoc loc;
    for (const auto& g : program_.globals)
      if (static_cast<const DeclStmt&>(*g).name == v) loc = g->loc;
    diagnostics_.push_back(FlowDiagnostic{FlowDiagnostic::Kind::WriteOnly, "", v, loc});
  }
}

}  // namespace hetpar::ir
