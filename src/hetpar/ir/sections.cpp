#include "hetpar/ir/sections.hpp"

#include <algorithm>
#include <numeric>

#include "hetpar/ir/affine.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar::ir {

using frontend::AssignStmt;
using frontend::BinaryExpr;
using frontend::BlockStmt;
using frontend::CallExpr;
using frontend::DeclStmt;
using frontend::Expr;
using frontend::ExprKind;
using frontend::ExprStmt;
using frontend::ForStmt;
using frontend::Function;
using frontend::IfStmt;
using frontend::IndexExpr;
using frontend::Program;
using frontend::ReturnStmt;
using frontend::Stmt;
using frontend::StmtKind;
using frontend::Type;
using frontend::UnaryExpr;
using frontend::VarRef;
using frontend::WhileStmt;

namespace {

long long gcdNZ(long long a, long long b) { return std::gcd(a < 0 ? -a : a, b < 0 ? -b : b); }

/// ⊤ with no certainty: the defensive fallback for anything unanalyzable.
SectionInfo topSection() { return SectionInfo{ArraySection{}, false, false}; }

/// Per-dimension triplets of `s` against `type` (whole sections expand to
/// the full extent; scalars yield an empty list).
std::vector<DimSection> materialize(const ArraySection& s, const Type& type) {
  std::vector<DimSection> dims;
  if (!s.whole && s.dims.size() == type.dims.size()) return s.dims;
  dims.reserve(type.dims.size());
  for (int extent : type.dims) dims.push_back(DimSection{0, extent - 1, 1});
  return dims;
}

/// b's progression is a subset of a's, per dimension.
bool containsSection(const ArraySection& a, const ArraySection& b, const Type& type) {
  if (a.whole) return true;
  const std::vector<DimSection> da = materialize(a, type);
  const std::vector<DimSection> db = materialize(b, type);
  if (da.size() != db.size()) return false;
  for (std::size_t k = 0; k < da.size(); ++k) {
    const DimSection& w = da[k];
    const DimSection& t = db[k];
    if (t.lo < w.lo || t.hi > w.hi) return false;
    if (t.stride % w.stride != 0) return false;
    if ((t.lo - w.lo) % w.stride != 0) return false;
  }
  return true;
}

/// Smallest per-dimension progression hull containing both sections.
ArraySection hullUnion(const ArraySection& a, const ArraySection& b) {
  if (a.whole || b.whole || a.dims.size() != b.dims.size()) return ArraySection{};
  ArraySection out;
  out.whole = false;
  out.dims.reserve(a.dims.size());
  for (std::size_t k = 0; k < a.dims.size(); ++k) {
    const DimSection& x = a.dims[k];
    const DimSection& y = b.dims[k];
    DimSection d;
    d.lo = std::min(x.lo, y.lo);
    d.hi = std::max(x.hi, y.hi);
    d.stride = gcdNZ(gcdNZ(x.stride, y.stride), x.lo - y.lo);
    if (d.stride == 0) d.stride = 1;
    out.dims.push_back(d);
  }
  return out;
}

/// Merge of two access infos for the same variable. Exactness survives only
/// when one hull contains the other (the union is then itself a clean
/// progression); anything else keeps the sound hull but loses the
/// kill-test certainty.
SectionInfo mergeTwo(const SectionInfo& a, const SectionInfo& b, const Type* type) {
  if (type != nullptr) {
    if (containsSection(a.hull, b.hull, *type))
      return SectionInfo{a.hull, a.definite, a.exact};
    if (containsSection(b.hull, a.hull, *type))
      return SectionInfo{b.hull, b.definite, b.exact};
  }
  SectionInfo out;
  out.hull = type == nullptr ? ArraySection{} : hullUnion(a.hull, b.hull);
  out.definite = a.definite && b.definite;
  out.exact = false;
  return out;
}

void mergeInfo(std::map<std::string, SectionInfo>& m, const std::string& name,
               const SectionInfo& info, const Type* type) {
  auto [it, inserted] = m.try_emplace(name, info);
  if (!inserted) it->second = mergeTwo(it->second, info, type);
}

/// True when the subtree contains a return (an early function exit breaks
/// the "all iterations run to completion" widening assumption).
bool subtreeHasReturn(const Stmt& stmt) {
  bool found = false;
  frontend::forEachStmt(const_cast<Stmt&>(stmt),
                        [&](Stmt& s) { found = found || s.kind == StmtKind::Return; });
  return found;
}

}  // namespace

struct SectionAnalysis::Context {
  std::map<std::string, IvRange> ivs;
  bool definite = true;
  bool* sawReturn = nullptr;  ///< per-function: an earlier return was seen
};

SectionAnalysis::SectionAnalysis(const Program& program, const frontend::SemaResult& sema,
                                 ConstEnvFn constEnv)
    : program_(program), sema_(sema), constEnv_(std::move(constEnv)) {
  // Callees before callers so call sites find section effects ready.
  for (const Function* fn : sema.bottomUpOrder)
    effects_.emplace(fn, computeEffects(*fn));
  bool sawReturn = false;
  Context ctx;
  ctx.sawReturn = &sawReturn;
  for (const auto& g : program.globals) analyzeStmt(*g, nullptr, ctx);
  // All per-statement summaries exist now; drop the hook so the analysis
  // never calls back into a provider that may have been destroyed.
  constEnv_ = nullptr;
}

const AccessSummary& SectionAnalysis::of(const Stmt& stmt) const {
  auto it = perStmt_.find(&stmt);
  HETPAR_CHECK_MSG(it != perStmt_.end(), "statement has no section summary");
  return it->second;
}

const FunctionSectionEffects& SectionAnalysis::effects(const Function& fn) const {
  auto it = effects_.find(&fn);
  HETPAR_CHECK_MSG(it != effects_.end(), "function has no section effects");
  return it->second;
}

const Type* SectionAnalysis::typeOf(const Function* fn, const std::string& name) const {
  return sema_.lookup(fn, name);
}

SectionInfo SectionAnalysis::liftAccess(const std::string& name,
                                        const std::vector<frontend::ExprPtr>& indices,
                                        const Function* fn, const Context& ctx) {
  const Type* type = sema_.lookup(fn, name);
  if (indices.empty()) {
    // Scalar (or whole-object) access: the hull is trivially the object.
    return SectionInfo{ArraySection{}, ctx.definite, true};
  }
  if (type == nullptr || type->dims.size() != indices.size()) return topSection();

  ArraySection sec;
  sec.whole = false;
  std::vector<std::string> usedIvs;
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const long long extent = type->dims[k];
    const auto form = liftAffine(*indices[k]);
    if (!form) return topSection();
    DimSection d;
    if (form->isConstant()) {
      // An out-of-bounds constant subscript has no sound in-bounds section:
      // clamping would fabricate a definite+exact access to an element the
      // program never touches (and feed covers() a bogus kill).
      if (form->c0 < 0 || form->c0 > extent - 1) return topSection();
      d.lo = d.hi = form->c0;
      d.stride = 1;
    } else {
      const auto it = ctx.ivs.find(form->iv);
      if (it == ctx.ivs.end()) return topSection();  // not an enclosing canonical IV
      const IvRange& r = it->second;
      const long long e1 = form->c0 + form->c1 * r.first;
      const long long e2 = form->c0 + form->c1 * r.last;
      d.lo = std::min(e1, e2);
      d.hi = std::max(e1, e2);
      const long long step = form->c1 * r.step;
      d.stride = step < 0 ? -step : step;
      if (d.stride == 0) d.stride = 1;
      // Clamp to the array bounds along the progression.
      if (d.lo < 0) d.lo += (-d.lo + d.stride - 1) / d.stride * d.stride;
      if (d.hi > extent - 1) d.hi -= (d.hi - (extent - 1) + d.stride - 1) / d.stride * d.stride;
      if (d.lo > d.hi) return topSection();  // fully out of bounds: give up
      usedIvs.push_back(form->iv);
    }
    sec.dims.push_back(d);
  }
  // A repeated IV across dimensions (a[i][i]) touches a diagonal; the
  // rectangular hull is sound but not exact.
  std::sort(usedIvs.begin(), usedIvs.end());
  const bool repeated = std::adjacent_find(usedIvs.begin(), usedIvs.end()) != usedIvs.end();
  return SectionInfo{std::move(sec), ctx.definite, !repeated};
}

void SectionAnalysis::collectExprReads(const Expr& expr, const Function* fn,
                                       const Context& ctx, AccessSummary& out) {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
      break;
    case ExprKind::VarRef: {
      const auto& e = static_cast<const VarRef&>(expr);
      mergeInfo(out.reads, e.name, SectionInfo{ArraySection{}, ctx.definite, true},
                sema_.lookup(fn, e.name));
      break;
    }
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      mergeInfo(out.reads, e.name, liftAccess(e.name, e.indices, fn, ctx),
                sema_.lookup(fn, e.name));
      for (const auto& i : e.indices) collectExprReads(*i, fn, ctx, out);
      break;
    }
    case ExprKind::Unary:
      collectExprReads(*static_cast<const UnaryExpr&>(expr).operand, fn, ctx, out);
      break;
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      collectExprReads(*e.lhs, fn, ctx, out);
      collectExprReads(*e.rhs, fn, ctx, out);
      break;
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      if (frontend::isBuiltinFunction(e.callee)) {
        for (const auto& a : e.args) collectExprReads(*a, fn, ctx, out);
        break;
      }
      const Function* callee = program_.findFunction(e.callee);
      HETPAR_CHECK(callee != nullptr);
      const FunctionSectionEffects& fx = effects(*callee);
      auto demoted = [&](SectionInfo info) {
        info.definite = info.definite && ctx.definite;
        return info;
      };
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        const Expr& arg = *e.args[i];
        if (callee->params[i].type.isArray()) {
          const auto& ref = static_cast<const VarRef&>(arg);
          const Type* type = sema_.lookup(fn, ref.name);
          if (auto it = fx.paramReads.find(i); it != fx.paramReads.end())
            mergeInfo(out.reads, ref.name, demoted(it->second), type);
          if (auto it = fx.paramWrites.find(i); it != fx.paramWrites.end())
            mergeInfo(out.writes, ref.name, demoted(it->second), type);
        } else {
          collectExprReads(arg, fn, ctx, out);
        }
      }
      for (const auto& [g, info] : fx.globalReads)
        mergeInfo(out.reads, g, demoted(info), sema_.lookup(nullptr, g));
      for (const auto& [g, info] : fx.globalWrites)
        mergeInfo(out.writes, g, demoted(info), sema_.lookup(nullptr, g));
      break;
    }
  }
}

AccessSummary SectionAnalysis::analyzeStmt(const Stmt& stmt, const Function* fn,
                                           const Context& ctx) {
  // A previously seen return means this statement may never run.
  Context here = ctx;
  if (here.sawReturn != nullptr && *here.sawReturn) here.definite = false;

  AccessSummary su;
  auto absorb = [&](const AccessSummary& child, bool demote) {
    for (const auto& [v, info] : child.reads) {
      SectionInfo i2 = info;
      if (demote) i2.definite = false;
      mergeInfo(su.reads, v, i2, sema_.lookup(fn, v));
    }
    for (const auto& [v, info] : child.writes) {
      SectionInfo i2 = info;
      if (demote) i2.definite = false;
      mergeInfo(su.writes, v, i2, sema_.lookup(fn, v));
    }
  };

  switch (stmt.kind) {
    case StmtKind::Decl: {
      const auto& s = static_cast<const DeclStmt&>(stmt);
      if (s.init) {
        collectExprReads(*s.init, fn, here, su);
        mergeInfo(su.writes, s.name, SectionInfo{ArraySection{}, here.definite, true},
                  sema_.lookup(fn, s.name));
      }
      break;
    }
    case StmtKind::Assign: {
      const auto& s = static_cast<const AssignStmt&>(stmt);
      for (const auto& i : s.indices) collectExprReads(*i, fn, here, su);
      collectExprReads(*s.value, fn, here, su);
      mergeInfo(su.writes, s.target, liftAccess(s.target, s.indices, fn, here),
                sema_.lookup(fn, s.target));
      break;
    }
    case StmtKind::If: {
      const auto& s = static_cast<const IfStmt&>(stmt);
      collectExprReads(*s.cond, fn, here, su);
      Context branch = here;
      branch.definite = false;
      for (const auto& c : s.thenBody) absorb(analyzeStmt(*c, fn, branch), true);
      for (const auto& c : s.elseBody) absorb(analyzeStmt(*c, fn, branch), true);
      break;
    }
    case StmtKind::For: {
      const auto& s = static_cast<const ForStmt&>(stmt);
      if (s.init) absorb(analyzeStmt(*s.init, fn, here), false);
      Context body = here;
      auto ivr = constEnv_ ? ivRangeOf(s, constEnv_(s)) : ivRangeOf(s);
      // The widening over ivRangeOf assumes the canonical step is the only
      // update of the IV. A body (or cond) write to it — direct assignment,
      // a shadowing redeclaration, or a callee writing a same-named global —
      // makes the actual accesses escape the computed hull, so drop the
      // range and the certainty; subscripts over the IV then take ⊤.
      if (ivr) {
        bool ivMutated = s.cond != nullptr && exprWritesVar(*s.cond, ivr->first);
        for (const auto& c : s.body)
          ivMutated = ivMutated || stmtWritesVar(*c, ivr->first);
        if (ivMutated) {
          body.ivs.erase(ivr->first);  // defensive: no outer range may survive
          ivr.reset();
        }
      }
      if (ivr)
        body.ivs[ivr->first] = ivr->second;
      else
        body.definite = false;  // unknown trip count or unstable IV
      // An early exit breaks the "every iteration completes" widening.
      for (const auto& c : s.body)
        if (subtreeHasReturn(*c)) body.definite = false;
      if (s.cond) collectExprReads(*s.cond, fn, body, su);
      if (s.step) absorb(analyzeStmt(*s.step, fn, body), false);
      for (const auto& c : s.body) absorb(analyzeStmt(*c, fn, body), !body.definite);
      break;
    }
    case StmtKind::While: {
      const auto& s = static_cast<const WhileStmt&>(stmt);
      collectExprReads(*s.cond, fn, here, su);
      Context body = here;
      body.definite = false;  // iteration space unknown
      for (const auto& c : s.body) absorb(analyzeStmt(*c, fn, body), true);
      break;
    }
    case StmtKind::Return: {
      const auto& s = static_cast<const ReturnStmt&>(stmt);
      if (s.value) collectExprReads(*s.value, fn, here, su);
      if (here.sawReturn != nullptr) *here.sawReturn = true;
      break;
    }
    case StmtKind::Expr: {
      const auto& s = static_cast<const ExprStmt&>(stmt);
      collectExprReads(*s.expr, fn, here, su);
      break;
    }
    case StmtKind::Block: {
      const auto& s = static_cast<const BlockStmt&>(stmt);
      for (const auto& c : s.body) absorb(analyzeStmt(*c, fn, here), false);
      break;
    }
  }
  perStmt_.emplace(&stmt, su);
  return su;
}

FunctionSectionEffects SectionAnalysis::computeEffects(const Function& fn) {
  bool sawReturn = false;
  Context ctx;
  ctx.sawReturn = &sawReturn;
  AccessSummary all;
  for (const auto& s : fn.body) {
    const AccessSummary child = analyzeStmt(*s, &fn, ctx);
    for (const auto& [v, info] : child.reads) mergeInfo(all.reads, v, info, sema_.lookup(&fn, v));
    for (const auto& [v, info] : child.writes)
      mergeInfo(all.writes, v, info, sema_.lookup(&fn, v));
  }

  FunctionSectionEffects fx;
  auto isParamOrLocal = [&](const std::string& name) {
    for (const auto& p : fn.params)
      if (p.name == name) return true;
    if (sema_.globals.find(name) == sema_.globals.end()) return true;  // purely local
    bool declaredLocally = false;
    for (const auto& s : fn.body) {
      frontend::forEachStmt(*s, [&](Stmt& st) {
        if (st.kind == StmtKind::Decl && static_cast<const DeclStmt&>(st).name == name)
          declaredLocally = true;
      });
      if (declaredLocally) break;
    }
    return declaredLocally;
  };
  for (std::size_t i = 0; i < fn.params.size(); ++i) {
    if (!fn.params[i].type.isArray()) continue;  // scalars are by-value
    if (auto it = all.reads.find(fn.params[i].name); it != all.reads.end())
      fx.paramReads.emplace(i, it->second);
    if (auto it = all.writes.find(fn.params[i].name); it != all.writes.end())
      fx.paramWrites.emplace(i, it->second);
  }
  for (const auto& [v, info] : all.reads)
    if (!isParamOrLocal(v)) fx.globalReads.emplace(v, info);
  for (const auto& [v, info] : all.writes)
    if (!isParamOrLocal(v)) fx.globalWrites.emplace(v, info);
  return fx;
}

bool SectionAnalysis::exprWritesVar(const Expr& expr, const std::string& name) const {
  switch (expr.kind) {
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::VarRef:
      return false;
    case ExprKind::Index: {
      const auto& e = static_cast<const IndexExpr&>(expr);
      for (const auto& i : e.indices)
        if (exprWritesVar(*i, name)) return true;
      return false;
    }
    case ExprKind::Unary:
      return exprWritesVar(*static_cast<const UnaryExpr&>(expr).operand, name);
    case ExprKind::Binary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return exprWritesVar(*e.lhs, name) || exprWritesVar(*e.rhs, name);
    }
    case ExprKind::Call: {
      const auto& e = static_cast<const CallExpr&>(expr);
      for (const auto& a : e.args)
        if (exprWritesVar(*a, name)) return true;
      if (frontend::isBuiltinFunction(e.callee)) return false;
      const Function* callee = program_.findFunction(e.callee);
      HETPAR_CHECK(callee != nullptr);
      const FunctionSectionEffects& fx = effects(*callee);
      if (fx.globalWrites.count(name) != 0) return true;
      for (const auto& [i, info] : fx.paramWrites) {
        (void)info;
        if (i < e.args.size() && e.args[i]->kind == ExprKind::VarRef &&
            static_cast<const VarRef&>(*e.args[i]).name == name)
          return true;
      }
      return false;
    }
  }
  return true;  // unreachable; conservative
}

bool SectionAnalysis::stmtWritesVar(const Stmt& stmt, const std::string& name) const {
  bool writes = false;
  frontend::forEachStmt(const_cast<Stmt&>(stmt), [&](Stmt& s) {
    if (writes) return;
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        // A shadowing redeclaration rebinds the name for the remainder of
        // the body, so later subscripts no longer range over the outer IV.
        if (d.name == name) {
          writes = true;
          return;
        }
        if (d.init && exprWritesVar(*d.init, name)) writes = true;
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target == name) {
          writes = true;
          return;
        }
        for (const auto& i : a.indices)
          if (exprWritesVar(*i, name)) {
            writes = true;
            return;
          }
        if (exprWritesVar(*a.value, name)) writes = true;
        break;
      }
      case StmtKind::If:
        if (exprWritesVar(*static_cast<const IfStmt&>(s).cond, name)) writes = true;
        break;
      case StmtKind::For: {
        const auto& f = static_cast<const ForStmt&>(s);
        if (f.cond && exprWritesVar(*f.cond, name)) writes = true;
        break;
      }
      case StmtKind::While:
        if (exprWritesVar(*static_cast<const WhileStmt&>(s).cond, name)) writes = true;
        break;
      case StmtKind::Return: {
        const auto& r = static_cast<const ReturnStmt&>(s);
        if (r.value && exprWritesVar(*r.value, name)) writes = true;
        break;
      }
      case StmtKind::Expr:
        if (exprWritesVar(*static_cast<const ExprStmt&>(s).expr, name)) writes = true;
        break;
      case StmtKind::Block:
        break;
    }
  });
  return writes;
}

// --- Section algebra --------------------------------------------------------

bool SectionAnalysis::mayOverlap(const ArraySection& a, const ArraySection& b,
                                 const Type& type) {
  const std::vector<DimSection> da = materialize(a, type);
  const std::vector<DimSection> db = materialize(b, type);
  if (da.size() != db.size()) return true;  // defensive
  for (std::size_t k = 0; k < da.size(); ++k) {
    const DimSection& x = da[k];
    const DimSection& y = db[k];
    if (std::max(x.lo, y.lo) > std::min(x.hi, y.hi)) return false;  // ranges disjoint
    const long long g = gcdNZ(x.stride, y.stride);
    if (g > 1 && (x.lo - y.lo) % g != 0) return false;  // GCD test on strides
  }
  return true;
}

bool SectionAnalysis::covers(const SectionInfo& writer, const ArraySection& target,
                             const Type& type) {
  if (!writer.mustCover()) return false;
  return containsSection(writer.hull, target, type);
}

long long SectionAnalysis::sectionBytes(const ArraySection& s, const Type& type) {
  if (s.whole || type.dims.empty()) return type.byteSize();
  long long elems = 1;
  for (const DimSection& d : materialize(s, type)) elems *= d.count();
  return elems * type.elementBytes();
}

long long SectionAnalysis::overlapBytes(const ArraySection& a, const ArraySection& b,
                                        const Type& type) {
  const std::vector<DimSection> da = materialize(a, type);
  const std::vector<DimSection> db = materialize(b, type);
  if (da.size() != db.size()) return std::min(sectionBytes(a, type), sectionBytes(b, type));
  long long elems = 1;
  for (std::size_t k = 0; k < da.size(); ++k) {
    const DimSection& x = da[k];
    const DimSection& y = db[k];
    const long long lo = std::max(x.lo, y.lo);
    const long long hi = std::min(x.hi, y.hi);
    if (lo > hi) return 0;
    const long long g = gcdNZ(x.stride, y.stride);
    if (g > 1 && (x.lo - y.lo) % g != 0) return 0;
    // The common elements form a progression of stride lcm within [lo, hi]:
    // an upper bound on the count suffices for payload sizing.
    const long long l = x.stride / g * y.stride;
    long long count = (hi - lo) / l + 1;
    count = std::min({count, x.count(), y.count()});
    elems *= count;
  }
  return std::min(elems * type.elementBytes(),
                  std::min(sectionBytes(a, type), sectionBytes(b, type)));
}

std::string SectionAnalysis::toString(const ArraySection& s) {
  if (s.whole) return "whole";
  std::string out;
  for (const DimSection& d : s.dims)
    out += strings::format("[%lld:%lld:%lld]", d.lo, d.hi, d.stride);
  return out.empty() ? "whole" : out;
}

}  // namespace hetpar::ir
