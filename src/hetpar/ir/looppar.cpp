#include "hetpar/ir/looppar.hpp"

#include <map>
#include <vector>

#include "hetpar/ir/tripcount.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::ir {

using namespace frontend;

namespace {

/// One variable access in body order.
struct Access {
  std::string name;
  bool isWrite = false;
  bool isElement = false;                 ///< through a subscript
  const std::vector<ExprPtr>* indices = nullptr;  ///< valid when isElement
  bool conditional = false;               ///< under an if or nested loop
};

struct Collector {
  std::vector<Access> accesses;
  std::set<std::string> declaredInBody;  ///< fresh per iteration -> private
  bool sawUnsafeCall = false;
  const Program* program = nullptr;
  const DefUseAnalysis* du = nullptr;

  void expr(const Expr& e, bool conditional) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::FloatLit:
        break;
      case ExprKind::VarRef:
        accesses.push_back({static_cast<const VarRef&>(e).name, false, false, nullptr,
                            conditional});
        break;
      case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        for (const auto& i : x.indices) expr(*i, conditional);
        accesses.push_back({x.name, false, true, &x.indices, conditional});
        break;
      }
      case ExprKind::Unary:
        expr(*static_cast<const UnaryExpr&>(e).operand, conditional);
        break;
      case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        expr(*x.lhs, conditional);
        expr(*x.rhs, conditional);
        break;
      }
      case ExprKind::Call: {
        const auto& x = static_cast<const CallExpr&>(e);
        for (const auto& a : x.args) expr(*a, conditional);
        if (!isBuiltinFunction(x.callee)) {
          // A user call is unsafe for iteration splitting if it writes
          // through array parameters or touches globals at all (conservative).
          const Function* callee = program->findFunction(x.callee);
          HETPAR_CHECK(callee != nullptr);
          const FunctionEffects& fx = du->effects(*callee);
          bool writes = !fx.globalsWritten.empty();
          for (bool w : fx.paramWritten) writes = writes || w;
          if (writes) sawUnsafeCall = true;
        }
        break;
      }
    }
  }

  void stmt(const Stmt& s, bool conditional) {
    switch (s.kind) {
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) expr(*d.init, conditional);
        accesses.push_back({d.name, true, false, nullptr, conditional});
        declaredInBody.insert(d.name);
        break;
      }
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        for (const auto& i : a.indices) expr(*i, conditional);
        expr(*a.value, conditional);
        accesses.push_back({a.target, true, !a.indices.empty(), &a.indices, conditional});
        break;
      }
      case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        expr(*x.cond, conditional);
        for (const auto& c : x.thenBody) stmt(*c, true);
        for (const auto& c : x.elseBody) stmt(*c, true);
        break;
      }
      case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init) stmt(*x.init, conditional);
        if (x.cond) expr(*x.cond, conditional);
        if (x.step) stmt(*x.step, true);
        for (const auto& c : x.body) stmt(*c, true);
        break;
      }
      case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        expr(*x.cond, conditional);
        for (const auto& c : x.body) stmt(*c, true);
        break;
      }
      case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        if (x.value) expr(*x.value, conditional);
        break;
      }
      case StmtKind::Expr:
        expr(*static_cast<const ExprStmt&>(s).expr, conditional);
        break;
      case StmtKind::Block:
        for (const auto& c : static_cast<const BlockStmt&>(s).body) stmt(*c, conditional);
        break;
    }
  }
};

bool indexIsExactly(const Expr& e, const std::string& var) {
  return e.kind == ExprKind::VarRef && static_cast<const VarRef&>(e).name == var;
}

/// True if every assignment to `name` in the body is `name = name OP e`
/// with a consistent associative OP, and `name` appears nowhere else.
bool isReduction(const std::string& name, const std::vector<const Stmt*>& bodyStmts) {
  int assignments = 0;
  bool otherUse = false;

  std::function<void(const Expr&, bool)> scanExpr = [&](const Expr& e, bool isReductionRhsTop) {
    switch (e.kind) {
      case ExprKind::VarRef:
        if (static_cast<const VarRef&>(e).name == name && !isReductionRhsTop) otherUse = true;
        break;
      case ExprKind::Index: {
        const auto& x = static_cast<const IndexExpr&>(e);
        if (x.name == name) otherUse = true;
        for (const auto& i : x.indices) scanExpr(*i, false);
        break;
      }
      case ExprKind::Unary:
        scanExpr(*static_cast<const UnaryExpr&>(e).operand, false);
        break;
      case ExprKind::Binary: {
        const auto& x = static_cast<const BinaryExpr&>(e);
        scanExpr(*x.lhs, false);
        scanExpr(*x.rhs, false);
        break;
      }
      case ExprKind::Call:
        for (const auto& a : static_cast<const CallExpr&>(e).args) scanExpr(*a, false);
        break;
      default:
        break;
    }
  };

  std::function<void(const Stmt&)> scanStmt = [&](const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Assign: {
        const auto& a = static_cast<const AssignStmt&>(s);
        if (a.target == name && a.indices.empty()) {
          // Must be `name = name (+|-|*) rhs` or `name = rhs + name` etc.
          ++assignments;
          bool ok = false;
          if (a.value->kind == ExprKind::Binary) {
            const auto& b = static_cast<const BinaryExpr&>(*a.value);
            const bool assoc = b.op == BinaryOp::Add || b.op == BinaryOp::Sub ||
                               b.op == BinaryOp::Mul;
            if (assoc && indexIsExactly(*b.lhs, name)) {
              ok = true;
              scanExpr(*b.rhs, false);
            } else if ((b.op == BinaryOp::Add || b.op == BinaryOp::Mul) &&
                       indexIsExactly(*b.rhs, name)) {
              ok = true;
              scanExpr(*b.lhs, false);
            }
          }
          if (!ok) otherUse = true;  // unrecognized update form
          return;
        }
        for (const auto& i : a.indices) scanExpr(*i, false);
        scanExpr(*a.value, false);
        break;
      }
      case StmtKind::Decl: {
        const auto& d = static_cast<const DeclStmt&>(s);
        if (d.init) scanExpr(*d.init, false);
        break;
      }
      case StmtKind::If: {
        const auto& x = static_cast<const IfStmt&>(s);
        scanExpr(*x.cond, false);
        for (const auto& c : x.thenBody) scanStmt(*c);
        for (const auto& c : x.elseBody) scanStmt(*c);
        break;
      }
      case StmtKind::For: {
        const auto& x = static_cast<const ForStmt&>(s);
        if (x.init) scanStmt(*x.init);
        if (x.cond) scanExpr(*x.cond, false);
        if (x.step) scanStmt(*x.step);
        for (const auto& c : x.body) scanStmt(*c);
        break;
      }
      case StmtKind::While: {
        const auto& x = static_cast<const WhileStmt&>(s);
        scanExpr(*x.cond, false);
        for (const auto& c : x.body) scanStmt(*c);
        break;
      }
      case StmtKind::Return: {
        const auto& x = static_cast<const ReturnStmt&>(s);
        if (x.value) scanExpr(*x.value, false);
        break;
      }
      case StmtKind::Expr:
        scanExpr(*static_cast<const ExprStmt&>(s).expr, false);
        break;
      case StmtKind::Block:
        for (const auto& c : static_cast<const BlockStmt&>(s).body) scanStmt(*c);
        break;
    }
  };

  for (const Stmt* s : bodyStmts) scanStmt(*s);
  return assignments > 0 && !otherUse;
}

}  // namespace

LoopParallelism analyzeLoop(const ForStmt& loop, const DefUseAnalysis& du,
                            const frontend::Function* fn) {
  (void)fn;
  LoopParallelism result;

  // Canonical counted loop with unit step.
  std::string iv;
  if (loop.init) {
    if (loop.init->kind == StmtKind::Decl) iv = static_cast<const DeclStmt&>(*loop.init).name;
    else if (loop.init->kind == StmtKind::Assign)
      iv = static_cast<const AssignStmt&>(*loop.init).target;
  }
  if (iv.empty()) {
    result.reason = "no induction variable";
    return result;
  }
  if (!staticTripCount(loop)) {
    // Not constant-bounded; chunking still works with profiled trip counts,
    // but we require the canonical step form.
  }
  if (!loop.step || loop.step->kind != StmtKind::Assign) {
    result.reason = "no canonical step";
    return result;
  }
  {
    const auto& st = static_cast<const AssignStmt&>(*loop.step);
    if (st.target != iv) {
      result.reason = "step does not update induction variable";
      return result;
    }
    bool unit = false;
    if (st.value->kind == ExprKind::Binary) {
      const auto& b = static_cast<const BinaryExpr&>(*st.value);
      if ((b.op == BinaryOp::Add || b.op == BinaryOp::Sub) && indexIsExactly(*b.lhs, iv) &&
          b.rhs->kind == ExprKind::IntLit &&
          std::llabs(static_cast<const IntLit&>(*b.rhs).value) == 1)
        unit = true;
    }
    if (!unit) {
      result.reason = "non-unit step";
      return result;
    }
  }

  // Gather all accesses in the body.
  Collector col;
  col.program = &du.program();
  col.du = &du;
  std::vector<const Stmt*> bodyStmts;
  for (const auto& s : loop.body) bodyStmts.push_back(s.get());
  for (const Stmt* s : bodyStmts) col.stmt(*s, false);
  if (col.sawUnsafeCall) {
    result.reason = "body calls a function with side effects";
    return result;
  }

  // Classify written names.
  std::map<std::string, bool> writtenIsArrayElem;  // name -> always element-wise
  for (const Access& a : col.accesses) {
    if (!a.isWrite) continue;
    auto [it, inserted] = writtenIsArrayElem.emplace(a.name, a.isElement);
    if (!inserted) it->second = it->second && a.isElement;
  }

  // Whole-object writes (scalar or full-array, e.g. via calls) are handled
  // by the scalar rules; calls writing arrays appear as whole-object writes
  // in def/use and therefore fail the element-wise requirement below.
  for (const auto& [name, elementWise] : writtenIsArrayElem) {
    if (name == iv) {
      result.reason = "body writes the induction variable";
      return result;
    }
    if (elementWise) {
      // Array: every access must subscript the distributed dimension with
      // exactly the induction variable, consistently.
      int requiredDim = -1;
      for (const Access& a : col.accesses) {
        if (a.name != name || !a.isElement) continue;
        int dim = -1;
        for (std::size_t d = 0; d < a.indices->size(); ++d) {
          if (indexIsExactly(*(*a.indices)[d], iv)) {
            dim = static_cast<int>(d);
            break;
          }
        }
        if (dim < 0) {
          result.reason = "array '" + name + "' accessed without induction subscript";
          return result;
        }
        if (requiredDim < 0) requiredDim = dim;
        if (requiredDim != dim) {
          result.reason = "array '" + name + "' distributed dimension is inconsistent";
          return result;
        }
      }
      // Bare (whole-object) uses of a written array, e.g. passing it to a
      // function, defeat the disjointness argument.
      for (const Access& a : col.accesses) {
        if (a.name == name && !a.isElement) {
          result.reason = "array '" + name + "' used as a whole object";
          return result;
        }
      }
    } else {
      // Scalar (or whole-object) write: reduction or privatizable?
      // Variables declared inside the body are fresh every iteration and
      // therefore private by construction (sema's alpha-renaming guarantees
      // the name is unique to this scope).
      if (col.declaredInBody.count(name) > 0) {
        result.privatizable.insert(name);
        continue;
      }
      if (isReduction(name, bodyStmts)) {
        result.reductions.insert(name);
        continue;
      }
      // Privatizable: first access in body order is an unconditional write.
      bool classified = false;
      for (const Access& a : col.accesses) {
        if (a.name != name) continue;
        if (a.isWrite && !a.conditional) {
          result.privatizable.insert(name);
        } else {
          result.reason = "scalar '" + name + "' carried across iterations";
          return result;
        }
        classified = true;
        break;
      }
      if (!classified) {
        result.reason = "scalar '" + name + "' write not found";
        return result;
      }
    }
  }

  result.isDoall = true;
  return result;
}

}  // namespace hetpar::ir
