#include "hetpar/ir/dependence.hpp"

#include <algorithm>

namespace hetpar::ir {

std::vector<DepEdge> computeSiblingDeps(const std::vector<const frontend::Stmt*>& siblings,
                                        const DefUseAnalysis& du,
                                        const frontend::Function* fn) {
  const int n = static_cast<int>(siblings.size());
  // Edge map keyed by (from, to, kind) so multiple shared variables merge
  // into a single edge with summed payload.
  std::map<std::tuple<int, int, DepKind>, DepEdge> edges;
  auto addEdge = [&](int from, int to, DepKind kind, const std::string& var, long long bytes) {
    auto [it, inserted] = edges.try_emplace({from, to, kind});
    DepEdge& e = it->second;
    if (inserted) {
      e.from = from;
      e.to = to;
      e.kind = kind;
    }
    if (std::find(e.vars.begin(), e.vars.end(), var) == e.vars.end()) {
      e.vars.push_back(var);
      e.bytes += bytes;
    }
  };

  for (int j = 0; j < n; ++j) {
    const DefUse& dj = du.of(*siblings[static_cast<std::size_t>(j)]);
    // Flow: last writer of each used variable.
    for (const auto& v : dj.uses) {
      for (int i = j - 1; i >= 0; --i) {
        if (du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) {
          addEdge(i, j, DepKind::Flow, v, du.byteSizeOf(fn, v));
          break;
        }
      }
    }
    for (const auto& v : dj.defs) {
      // Output: nearest earlier writer.
      for (int i = j - 1; i >= 0; --i) {
        if (du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) {
          addEdge(i, j, DepKind::Output, v, 0);
          break;
        }
      }
      // Anti: readers since the previous write.
      for (int i = j - 1; i >= 0; --i) {
        const DefUse& di = du.of(*siblings[static_cast<std::size_t>(i)]);
        if (di.uses.count(v) && i != j) addEdge(i, j, DepKind::Anti, v, 0);
        if (di.defs.count(v)) break;  // earlier reads belong to the previous write
      }
    }
  }

  std::vector<DepEdge> out;
  out.reserve(edges.size());
  for (auto& [key, e] : edges) out.push_back(std::move(e));
  return out;
}

RegionFlow computeRegionFlow(const std::vector<const frontend::Stmt*>& siblings,
                             const DefUseAnalysis& du, const frontend::Function* fn) {
  const int n = static_cast<int>(siblings.size());
  RegionFlow flow;
  flow.inbound.resize(static_cast<std::size_t>(n));
  flow.outbound.resize(static_cast<std::size_t>(n));

  for (int j = 0; j < n; ++j) {
    const DefUse& dj = du.of(*siblings[static_cast<std::size_t>(j)]);
    for (const auto& v : dj.uses) {
      bool producedEarlier = false;
      for (int i = 0; i < j && !producedEarlier; ++i)
        producedEarlier = du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v) > 0;
      if (!producedEarlier)
        flow.inbound[static_cast<std::size_t>(j)][v] = du.byteSizeOf(fn, v);
    }
    for (const auto& v : dj.defs) {
      bool overwrittenLater = false;
      for (int i = j + 1; i < n && !overwrittenLater; ++i) {
        const DefUse& di = du.of(*siblings[static_cast<std::size_t>(i)]);
        // A later sibling that *uses then redefines* still forwards our
        // value; only a pure overwrite kills it.
        overwrittenLater = di.defs.count(v) > 0 && di.uses.count(v) == 0;
      }
      if (!overwrittenLater)
        flow.outbound[static_cast<std::size_t>(j)][v] = du.byteSizeOf(fn, v);
    }
  }
  return flow;
}

}  // namespace hetpar::ir
