#include "hetpar/ir/dependence.hpp"

#include <algorithm>

#include "hetpar/support/error.hpp"

namespace hetpar::ir {

namespace {

/// Edge map keyed by (from, to, kind) so multiple shared variables merge
/// into a single edge with summed payload.
class EdgeBuilder {
 public:
  void add(int from, int to, DepKind kind, const std::string& var, long long bytes) {
    auto [it, inserted] = edges_.try_emplace({from, to, kind});
    DepEdge& e = it->second;
    if (inserted) {
      e.from = from;
      e.to = to;
      e.kind = kind;
    }
    if (std::find(e.vars.begin(), e.vars.end(), var) == e.vars.end()) {
      e.vars.push_back(var);
      e.bytes += bytes;
    }
  }

  std::vector<DepEdge> take() {
    std::vector<DepEdge> out;
    out.reserve(edges_.size());
    for (auto& [key, e] : edges_) out.push_back(std::move(e));
    return out;
  }

 private:
  std::map<std::tuple<int, int, DepKind>, DepEdge> edges_;
};

std::vector<DepEdge> siblingDepsConservative(
    const std::vector<const frontend::Stmt*>& siblings, const DefUseAnalysis& du,
    const frontend::Function* fn) {
  const int n = static_cast<int>(siblings.size());
  EdgeBuilder edges;
  for (int j = 0; j < n; ++j) {
    const DefUse& dj = du.of(*siblings[static_cast<std::size_t>(j)]);
    // Flow: last writer of each used variable.
    for (const auto& v : dj.uses) {
      for (int i = j - 1; i >= 0; --i) {
        if (du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) {
          edges.add(i, j, DepKind::Flow, v, du.byteSizeOf(fn, v));
          break;
        }
      }
    }
    for (const auto& v : dj.defs) {
      // Output: nearest earlier writer.
      for (int i = j - 1; i >= 0; --i) {
        if (du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) {
          edges.add(i, j, DepKind::Output, v, 0);
          break;
        }
      }
      // Anti: readers since the previous write.
      for (int i = j - 1; i >= 0; --i) {
        const DefUse& di = du.of(*siblings[static_cast<std::size_t>(i)]);
        if (di.uses.count(v) && i != j) edges.add(i, j, DepKind::Anti, v, 0);
        if (di.defs.count(v)) break;  // earlier reads belong to the previous write
      }
    }
  }
  return edges.take();
}

/// The section a writer statement claims for `v`; falls back to an
/// indefinite ⊤ when the summary has no entry (defensive: the def/use and
/// section layers are built from the same traversal, so this should not
/// happen).
SectionInfo writeSectionOf(const AccessSummary& su, const std::string& v) {
  auto it = su.writes.find(v);
  if (it != su.writes.end()) return it->second;
  return SectionInfo{ArraySection{}, false, false};
}

std::vector<DepEdge> siblingDepsAffine(const std::vector<const frontend::Stmt*>& siblings,
                                       const DefUseAnalysis& du, const frontend::Function* fn,
                                       const SectionAnalysis& sa) {
  const int n = static_cast<int>(siblings.size());
  EdgeBuilder edges;
  for (int j = 0; j < n; ++j) {
    const frontend::Stmt& stj = *siblings[static_cast<std::size_t>(j)];
    const AccessSummary& sj = sa.of(stj);

    // Flow: every earlier writer whose section may overlap the read, nearest
    // first; a definite exact covering write hides anything earlier. The
    // pseudo-use a partial write adds at the def/use layer has no entry in
    // `reads`, so write-only array statements stop attracting flow edges.
    // The per-(reader, var) payload is capped at the object size, which
    // keeps the region's affine byte total below the conservative one.
    for (const auto& [v, read] : sj.reads) {
      const frontend::Type* type = sa.typeOf(fn, v);
      long long budget = du.byteSizeOf(fn, v);
      for (int i = j - 1; i >= 0; --i) {
        if (!du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) continue;
        const SectionInfo w = writeSectionOf(sa.of(*siblings[static_cast<std::size_t>(i)]), v);
        if (type == nullptr) {  // unknown type: conservative nearest-writer edge
          edges.add(i, j, DepKind::Flow, v, budget);
          break;
        }
        if (SectionAnalysis::mayOverlap(w.hull, read.hull, *type)) {
          long long pay =
              std::min(budget, SectionAnalysis::overlapBytes(w.hull, read.hull, *type));
          budget -= pay;
          edges.add(i, j, DepKind::Flow, v, pay);
        }
        if (SectionAnalysis::covers(w, read.hull, *type)) break;
      }
    }

    for (const auto& [v, wj] : sj.writes) {
      const frontend::Type* type = sa.typeOf(fn, v);
      // Output: earlier writers with overlapping write sections; a covering
      // write hides the rest (their values are dead past it).
      for (int i = j - 1; i >= 0; --i) {
        if (!du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v)) continue;
        const SectionInfo w = writeSectionOf(sa.of(*siblings[static_cast<std::size_t>(i)]), v);
        if (type == nullptr) {
          edges.add(i, j, DepKind::Output, v, 0);
          break;
        }
        if (SectionAnalysis::mayOverlap(w.hull, wj.hull, *type))
          edges.add(i, j, DepKind::Output, v, 0);
        if (SectionAnalysis::covers(w, wj.hull, *type)) break;
      }
      // Anti: earlier readers whose sections this write may clobber. The
      // scan stops at a covering write: readers before it conflict with
      // *that* write and reach us transitively through its output edge.
      for (int i = j - 1; i >= 0; --i) {
        const frontend::Stmt& sti = *siblings[static_cast<std::size_t>(i)];
        const DefUse& di = du.of(sti);
        if (di.uses.count(v)) {
          const AccessSummary& si = sa.of(sti);
          if (auto rit = si.reads.find(v); rit != si.reads.end()) {
            if (type == nullptr ||
                SectionAnalysis::mayOverlap(rit->second.hull, wj.hull, *type))
              edges.add(i, j, DepKind::Anti, v, 0);
          }
        }
        if (di.defs.count(v)) {
          if (type == nullptr) break;
          const SectionInfo w = writeSectionOf(sa.of(sti), v);
          if (SectionAnalysis::covers(w, wj.hull, *type)) break;
        }
      }
    }
  }
  return edges.take();
}

RegionFlow regionFlowConservative(const std::vector<const frontend::Stmt*>& siblings,
                                  const DefUseAnalysis& du, const frontend::Function* fn) {
  const int n = static_cast<int>(siblings.size());
  RegionFlow flow;
  flow.inbound.resize(static_cast<std::size_t>(n));
  flow.outbound.resize(static_cast<std::size_t>(n));

  for (int j = 0; j < n; ++j) {
    const DefUse& dj = du.of(*siblings[static_cast<std::size_t>(j)]);
    for (const auto& v : dj.uses) {
      bool producedEarlier = false;
      for (int i = 0; i < j && !producedEarlier; ++i)
        producedEarlier = du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v) > 0;
      if (!producedEarlier)
        flow.inbound[static_cast<std::size_t>(j)][v] = du.byteSizeOf(fn, v);
    }
    for (const auto& v : dj.defs) {
      bool overwrittenLater = false;
      for (int i = j + 1; i < n && !overwrittenLater; ++i) {
        const DefUse& di = du.of(*siblings[static_cast<std::size_t>(i)]);
        // A later sibling that *uses then redefines* still forwards our
        // value; only a pure overwrite kills it.
        overwrittenLater = di.defs.count(v) > 0 && di.uses.count(v) == 0;
      }
      if (!overwrittenLater)
        flow.outbound[static_cast<std::size_t>(j)][v] = du.byteSizeOf(fn, v);
    }
  }
  return flow;
}

RegionFlow regionFlowAffine(const std::vector<const frontend::Stmt*>& siblings,
                            const DefUseAnalysis& du, const frontend::Function* fn,
                            const SectionAnalysis& sa) {
  const int n = static_cast<int>(siblings.size());
  RegionFlow flow;
  flow.inbound.resize(static_cast<std::size_t>(n));
  flow.outbound.resize(static_cast<std::size_t>(n));

  // The in/out *pair* conditions are the conservative, name-based ones (so
  // the affine comm edges are a subset of the conservative ones); the
  // sections shrink the payload to the accessed hull, and a later covering
  // write additionally kills an outbound value.
  for (int j = 0; j < n; ++j) {
    const AccessSummary& sj = sa.of(*siblings[static_cast<std::size_t>(j)]);
    for (const auto& [v, read] : sj.reads) {
      bool producedEarlier = false;
      for (int i = 0; i < j && !producedEarlier; ++i)
        producedEarlier = du.of(*siblings[static_cast<std::size_t>(i)]).defs.count(v) > 0;
      if (producedEarlier) continue;
      const frontend::Type* type = sa.typeOf(fn, v);
      flow.inbound[static_cast<std::size_t>(j)][v] =
          type == nullptr ? du.byteSizeOf(fn, v)
                          : SectionAnalysis::sectionBytes(read.hull, *type);
    }
    for (const auto& [v, wj] : sj.writes) {
      const frontend::Type* type = sa.typeOf(fn, v);
      bool deadLater = false;
      for (int i = j + 1; i < n && !deadLater; ++i) {
        const frontend::Stmt& sti = *siblings[static_cast<std::size_t>(i)];
        const DefUse& di = du.of(sti);
        if (di.defs.count(v) == 0) continue;
        if (di.uses.count(v) == 0) deadLater = true;  // conservative pure overwrite
        if (type != nullptr &&
            SectionAnalysis::covers(writeSectionOf(sa.of(sti), v), wj.hull, *type))
          deadLater = true;  // a covering rewrite kills the value even if it reads first
      }
      if (deadLater) continue;
      flow.outbound[static_cast<std::size_t>(j)][v] =
          type == nullptr ? du.byteSizeOf(fn, v)
                          : SectionAnalysis::sectionBytes(wj.hull, *type);
    }
  }
  return flow;
}

}  // namespace

std::vector<DepEdge> computeSiblingDeps(const std::vector<const frontend::Stmt*>& siblings,
                                        const DefUseAnalysis& du,
                                        const frontend::Function* fn,
                                        const DependenceOptions& options) {
  if (options.mode == DependenceMode::Affine) {
    HETPAR_CHECK_MSG(options.sections != nullptr,
                     "affine dependence mode requires a SectionAnalysis");
    return siblingDepsAffine(siblings, du, fn, *options.sections);
  }
  return siblingDepsConservative(siblings, du, fn);
}

RegionFlow computeRegionFlow(const std::vector<const frontend::Stmt*>& siblings,
                             const DefUseAnalysis& du, const frontend::Function* fn,
                             const DependenceOptions& options) {
  RegionFlow flow;
  if (options.mode == DependenceMode::Affine) {
    HETPAR_CHECK_MSG(options.sections != nullptr,
                     "affine dependence mode requires a SectionAnalysis");
    flow = regionFlowAffine(siblings, du, fn, *options.sections);
  } else {
    flow = regionFlowConservative(siblings, du, fn);
  }
  if (options.flow == FlowMode::Live && !siblings.empty()) {
    HETPAR_CHECK_MSG(options.dataflow != nullptr,
                     "live flow mode requires a DataflowAnalysis");
    // Inbound: a sibling only needs a variable whose incoming value it may
    // actually read (upward-exposed use); the def/use pseudo-use of a
    // partially written array books bytes here otherwise. Outbound: the
    // region only publishes variables still live after it completes —
    // liveAfter of the last sibling is exactly the region's live-out set
    // (values consumed between two siblings travel on the internal flow
    // edge, not through the Communication-Out node).
    const DataflowAnalysis& dfa = *options.dataflow;
    const std::set<std::string>& liveOut = dfa.liveAfter(*siblings.back());
    for (std::size_t i = 0; i < siblings.size(); ++i) {
      const std::set<std::string>& exposed = dfa.upwardExposed(*siblings[i]);
      std::erase_if(flow.inbound[i],
                    [&](const auto& kv) { return exposed.count(kv.first) == 0; });
      std::erase_if(flow.outbound[i],
                    [&](const auto& kv) { return liveOut.count(kv.first) == 0; });
    }
  }
  return flow;
}

}  // namespace hetpar::ir
