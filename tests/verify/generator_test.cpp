// The fuzz-input generators must produce valid-by-construction inputs:
// every generated program survives the full frontend pipeline, every chunk
// subset is again a valid program (the shrinker's contract), and every
// generated platform validates. Determinism per seed is what makes a fuzz
// failure replayable from its seed alone.
#include <gtest/gtest.h>

#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/verify/generator.hpp"

namespace hetpar {
namespace {

TEST(GeneratorTest, DeterministicPerSeed) {
  const verify::GeneratedProgram a = verify::generateProgram(42);
  const verify::GeneratedProgram b = verify::generateProgram(42);
  EXPECT_EQ(a.render(), b.render());
  EXPECT_EQ(a.statements, b.statements);

  const verify::GeneratedProgram c = verify::generateProgram(43);
  EXPECT_NE(a.render(), c.render());
}

TEST(GeneratorTest, StatementCountWithinBounds) {
  // The two array-fill calls are emitted as removable chunks too (so the
  // shrinker may drop them), hence the +2 on the upper bound.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const verify::GeneratedProgram p = verify::generateProgram(seed);
    EXPECT_GE(static_cast<int>(p.statements.size()), p.options.minStatements) << seed;
    EXPECT_LE(static_cast<int>(p.statements.size()), p.options.maxStatements + 2) << seed;
  }
}

TEST(GeneratorTest, EveryChunkSubsetIsValid) {
  // Drop each single chunk in turn: the rendered program must still pass the
  // whole frontend (this is exactly what ddmin probes rely on).
  const verify::GeneratedProgram p = verify::generateProgram(7);
  for (std::size_t drop = 0; drop < p.statements.size(); ++drop) {
    std::vector<std::string> subset;
    for (std::size_t i = 0; i < p.statements.size(); ++i)
      if (i != drop) subset.push_back(p.statements[i]);
    const verify::GeneratedProgram reduced = p.withStatements(subset);
    htg::FrontendBundle bundle;
    ASSERT_NO_THROW(bundle = htg::buildFromSource(reduced.render()))
        << "dropping chunk " << drop << ":\n"
        << reduced.render();
    EXPECT_TRUE(htg::validate(bundle.graph).empty());
  }
  // The empty subset (prologue + epilogue only) is valid too.
  const verify::GeneratedProgram empty = p.withStatements({});
  ASSERT_NO_THROW(htg::buildFromSource(empty.render()));
}

TEST(GeneratorTest, PlatformsValidateForManySeeds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const platform::Platform pf = verify::generatePlatform(seed);
    ASSERT_NO_THROW(pf.validate()) << "seed " << seed;
    EXPECT_GE(pf.numClasses(), 1) << seed;
    EXPECT_LE(pf.numClasses(), 3) << seed;
    EXPECT_GT(pf.taskCreationOverheadSeconds(), 0.0) << seed;
  }
}

TEST(GeneratorTest, PlatformDeterministicPerSeed) {
  const platform::Platform a = verify::generatePlatform(11);
  const platform::Platform b = verify::generatePlatform(11);
  ASSERT_EQ(a.numClasses(), b.numClasses());
  for (int c = 0; c < a.numClasses(); ++c) {
    EXPECT_EQ(a.classAt(c).name, b.classAt(c).name);
    EXPECT_EQ(a.classAt(c).frequencyMHz, b.classAt(c).frequencyMHz);
    EXPECT_EQ(a.classAt(c).count, b.classAt(c).count);
  }
  EXPECT_EQ(a.taskCreationOverheadSeconds(), b.taskCreationOverheadSeconds());
}

TEST(GeneratorTest, ArraySizeOptionIsRespected) {
  verify::GeneratorOptions options;
  options.arraySize = 128;
  const verify::GeneratedProgram p = verify::generateProgram(3, options);
  EXPECT_NE(p.render().find("int ga[128]"), std::string::npos);
  ASSERT_NO_THROW(htg::buildFromSource(p.render()));
}

}  // namespace
}  // namespace hetpar
