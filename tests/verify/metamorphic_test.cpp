// Unit coverage for the metamorphic relation harness itself: name/parse
// round-trips, each relation passes on generated inputs (what the fuzzer
// round-robins over), the single-class relation actually engages on a
// single-class platform, and the table differ detects mutations.
#include <gtest/gtest.h>

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/verify/generator.hpp"
#include "hetpar/verify/metamorphic.hpp"

namespace hetpar {
namespace {

TEST(MetamorphicTest, RelationNamesRoundTrip) {
  for (verify::Relation r : verify::allRelations()) {
    const std::string name = verify::relationName(r);
    const std::vector<verify::Relation> parsed = verify::parseRelations(name);
    ASSERT_EQ(parsed.size(), 1u) << name;
    EXPECT_EQ(parsed[0], r) << name;
  }
}

TEST(MetamorphicTest, ParseRelationsAllAndLists) {
  EXPECT_EQ(verify::parseRelations("all").size(), verify::allRelations().size());
  const auto two = verify::parseRelations("cost-scaling,oracle-task");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], verify::Relation::CostScaling);
  EXPECT_EQ(two[1], verify::Relation::OracleTask);
  EXPECT_THROW(verify::parseRelations("no-such-relation"), Error);
  EXPECT_THROW(verify::parseRelations(""), Error);
}

TEST(MetamorphicTest, ProgramRelationsPassOnGeneratedInputs) {
  // One mid-size generated case through every program-level relation — the
  // exact pairing the fuzzer uses, pinned here so a pipeline regression
  // fails a unit test and not just a nightly fuzz run.
  verify::GeneratorOptions genOptions;
  genOptions.arraySize = 128;
  const std::string source = verify::generateProgram(9001, genOptions).render();
  const platform::Platform pf = verify::generatePlatform(9001);
  for (verify::Relation r : verify::allRelations()) {
    if (!verify::isProgramRelation(r)) continue;
    const verify::RelationResult result = verify::checkProgramRelation(r, source, pf);
    EXPECT_TRUE(result.passed || result.skipped)
        << result.name << ": " << result.detail;
  }
}

TEST(MetamorphicTest, RegionRelationsPassOnSeeds) {
  for (verify::Relation r : verify::allRelations()) {
    if (verify::isProgramRelation(r)) continue;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const verify::RelationResult result = verify::checkRegionRelation(r, seed);
      EXPECT_TRUE(result.passed || result.skipped)
          << result.name << " seed " << seed << ": " << result.detail;
    }
  }
}

TEST(MetamorphicTest, SectionSoundnessPassesOnIvMutatingLoop) {
  // An IV-mutating body once made the section analysis claim a definite
  // exact full sweep it never performed; the ground-truth trace relation
  // must agree with the (now conservative) analysis on this shape.
  const std::string source = R"(
    int ga[16]; int gb[16]; int gc[16];
    int main() {
      for (int i = 0; i < 16; i = i + 1) {
        gc[i] = gb[i] + 3;
        if (i % 4 == 1) { i = i + 1; }
      }
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + ga[i] + gb[i] + gc[i]; }
      return acc + 1;
    }
  )";
  const platform::Platform pf = verify::generatePlatform(1);
  const verify::RelationResult result =
      verify::checkProgramRelation(verify::Relation::SectionSoundness, source, pf);
  EXPECT_FALSE(result.skipped) << result.detail;
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(MetamorphicTest, SingleClassRelationEngagesOnSingleClassPlatform) {
  verify::PlatformGeneratorOptions pfOptions;
  pfOptions.minClasses = 1;
  pfOptions.maxClasses = 1;
  const platform::Platform pf = verify::generatePlatform(5, pfOptions);
  ASSERT_EQ(pf.numClasses(), 1);
  const std::string source = verify::generateProgram(5).render();
  const verify::RelationResult result =
      verify::checkProgramRelation(verify::Relation::SingleClassHomogeneous, source, pf);
  EXPECT_FALSE(result.skipped) << result.detail;
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(MetamorphicTest, DiffSolutionTablesDetectsMutations) {
  const std::string source = verify::generateProgram(17).render();
  const platform::Platform pf = verify::generatePlatform(17);
  const htg::FrontendBundle bundle = htg::buildFromSource(source);
  const cost::TimingModel timing(pf);
  parallel::Parallelizer par(bundle.graph, timing,
                             verify::MetamorphicOptions::deterministicOptions());
  const parallel::ParallelizeOutcome outcome = par.run();

  EXPECT_EQ(verify::diffSolutionTables(outcome.table, outcome.table), "");

  parallel::SolutionTable mutated = outcome.table;
  ASSERT_FALSE(mutated.empty());
  auto& set = mutated.begin()->second;
  ASSERT_GT(set.size(), 0u);
  set.at(0).timeSeconds += 1e-12;  // sub-tolerance drift must still be seen
  EXPECT_NE(verify::diffSolutionTables(outcome.table, mutated), "");

  parallel::SolutionTable truncated = outcome.table;
  truncated.erase(truncated.begin());
  EXPECT_NE(verify::diffSolutionTables(outcome.table, truncated), "");
}

TEST(MetamorphicTest, DeterministicOptionsDisableWallClockLimits) {
  const parallel::ParallelizerOptions options =
      verify::MetamorphicOptions::deterministicOptions();
  EXPECT_GE(options.ilpTimeLimitSeconds, 1e8);
  EXPECT_GT(options.ilpMaxNodes, 0);
}

}  // namespace
}  // namespace hetpar
