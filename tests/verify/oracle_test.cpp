// Differential optimality check: on enumerable instances, the ILPPAR solver
// and the loop-chunking ILP must match an exhaustive brute-force oracle
// exactly (up to the documented per-task tie-break). This is the direct test
// of the paper's optimality claim — run over well beyond 100 random regions
// (the acceptance floor), with a vacuity guard that a healthy share of the
// optima actually open extra tasks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/parallel/genetic.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/support/rng.hpp"
#include "hetpar/verify/oracle.hpp"

namespace hetpar {
namespace {

ilp::SolveOptions solverOptions() {
  ilp::SolveOptions so;
  so.timeLimitSeconds = 1e9;  // node-capped only: deterministic
  so.maxNodes = 2'000'000;
  return so;
}

/// The ILP objective carries a 1e-4 us tie-break per opened task, so two
/// independently derived optima agree only up to a tiny slack.
bool closeEnough(double a, double b) {
  const double tol = 1e-6 * std::max(std::abs(a), std::abs(b)) + 1e-9;
  return std::abs(a - b) <= tol;
}

TEST(OracleTest, IlpParMatchesBruteForceOnRandomTinyRegions) {
  constexpr int kRegions = 120;
  Rng rng(0xacc01adeULL);
  int multiTask = 0;
  for (int i = 0; i < kRegions; ++i) {
    const parallel::IlpRegion region = verify::randomTinyRegion(rng);
    const verify::OracleResult oracle = verify::bruteForceTask(region);
    ilp::BranchAndBoundSolver solver(solverOptions());
    const parallel::IlpParResult ilpResult = parallel::solveIlpPar(region, solver);

    ASSERT_TRUE(ilpResult.provenOptimal) << "region " << i;
    ASSERT_EQ(ilpResult.feasible, oracle.feasible) << "region " << i;
    if (!oracle.feasible) continue;
    EXPECT_TRUE(closeEnough(ilpResult.timeSeconds, oracle.bestSeconds))
        << "region " << i << ": ilp " << ilpResult.timeSeconds << " s vs oracle "
        << oracle.bestSeconds << " s over " << oracle.assignmentsTried << " assignments";
    if (static_cast<int>(ilpResult.taskClass.size()) > 1) ++multiTask;
  }
  // Vacuity guard: if the optimum were always "everything in the main task"
  // the comparison would prove nothing about the interesting constraints.
  EXPECT_GE(multiTask, kRegions / 10) << "only " << multiTask << " multi-task optima";
}

TEST(OracleTest, IlpParMatchesBruteForceOnFourClassDeepRegions) {
  // Widened envelope (ROADMAP follow-up from PR 3): push the generator to
  // the oracle's full 4-class cap with deeper nested-candidate menus and
  // multi-class extraProcs. The optimality claim must survive out there too.
  constexpr int kRegions = 40;
  verify::TinyRegionOptions wide;
  wide.maxChildren = 5;
  wide.maxClasses = 4;
  wide.maxTasks = 4;
  wide.maxCandidatesPerClass = 3;

  Rng rng(0x4c1a55e5ULL);
  int fourClass = 0;
  int proven = 0;
  for (int i = 0; i < kRegions; ++i) {
    const parallel::IlpRegion region = verify::randomTinyRegion(rng, wide);
    if (static_cast<int>(region.numProcsPerClass.size()) == 4) ++fourClass;
    const verify::OracleResult oracle = verify::bruteForceTask(region);
    ilp::BranchAndBoundSolver solver(solverOptions());
    const parallel::IlpParResult ilpResult = parallel::solveIlpPar(region, solver);

    if (!ilpResult.provenOptimal) continue;  // node cap hit on a big instance
    ++proven;
    ASSERT_EQ(ilpResult.feasible, oracle.feasible) << "region " << i;
    if (!oracle.feasible) continue;
    EXPECT_TRUE(closeEnough(ilpResult.timeSeconds, oracle.bestSeconds))
        << "region " << i << ": ilp " << ilpResult.timeSeconds << " s vs oracle "
        << oracle.bestSeconds << " s over " << oracle.assignmentsTried << " assignments";
  }
  // Vacuity guards: the widened generator must actually reach the 4th class,
  // and the solver must prove optimality on most of the widened instances.
  EXPECT_GE(fourClass, kRegions / 8) << "only " << fourClass << " four-class regions";
  EXPECT_GE(proven, (3 * kRegions) / 4) << "only " << proven << " proven optima";
}

TEST(OracleTest, ChunkIlpMatchesBruteForceOnFourClassLoops) {
  constexpr int kRegions = 30;
  verify::TinyRegionOptions wide;
  wide.maxClasses = 4;
  wide.maxTasks = 4;

  Rng rng(0x10af0c05ULL);
  int fourClass = 0;
  for (int i = 0; i < kRegions; ++i) {
    const parallel::ChunkRegion region = verify::randomTinyChunkRegion(rng, wide);
    if (static_cast<int>(region.numProcsPerClass.size()) == 4) ++fourClass;
    const verify::OracleResult oracle = verify::bruteForceChunk(region);
    ilp::BranchAndBoundSolver solver(solverOptions());
    const parallel::ChunkResult ilpResult = parallel::solveChunkIlp(region, solver);

    ASSERT_TRUE(ilpResult.provenOptimal) << "region " << i;
    ASSERT_EQ(ilpResult.feasible, oracle.feasible) << "region " << i;
    if (!oracle.feasible) continue;
    EXPECT_TRUE(closeEnough(ilpResult.timeSeconds, oracle.bestSeconds))
        << "region " << i << ": chunk ilp " << ilpResult.timeSeconds << " s vs oracle "
        << oracle.bestSeconds << " s over " << oracle.assignmentsTried << " splits";
  }
  EXPECT_GE(fourClass, kRegions / 8) << "only " << fourClass << " four-class loops";
}

TEST(OracleTest, OracleWitnessScoresAtItsClaimedCost) {
  // The oracle's argmin witness must evaluate to its own reported optimum
  // through the shared evaluator — guards the enumerator against recording
  // a stale witness.
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    const parallel::IlpRegion region = verify::randomTinyRegion(rng);
    const verify::OracleResult oracle = verify::bruteForceTask(region);
    if (!oracle.feasible) continue;
    const double witness = parallel::evaluateAssignment(region, oracle.childTask,
                                                        oracle.taskClass, oracle.childPick);
    EXPECT_TRUE(closeEnough(witness, oracle.bestSeconds))
        << "region " << i << ": witness " << witness << " vs " << oracle.bestSeconds;
  }
}

TEST(OracleTest, GaNeverBeatsBruteForceOptimum) {
  Rng rng(0xbeefULL);
  for (int i = 0; i < 30; ++i) {
    const parallel::IlpRegion region = verify::randomTinyRegion(rng);
    const verify::OracleResult oracle = verify::bruteForceTask(region);
    if (!oracle.feasible) continue;
    parallel::GaOptions ga;
    ga.seed = 0x5eedULL + static_cast<std::uint64_t>(i);
    const parallel::IlpParResult evolved = parallel::solveGaPar(region, ga);
    if (!evolved.feasible) continue;
    EXPECT_GE(evolved.timeSeconds, oracle.bestSeconds - 1e-9)
        << "region " << i << ": GA " << evolved.timeSeconds << " s beat the optimum "
        << oracle.bestSeconds << " s";
  }
}

TEST(OracleTest, ChunkIlpMatchesBruteForceOnRandomTinyLoops) {
  constexpr int kRegions = 120;
  Rng rng(0xc0ffeeULL);
  int multiTask = 0;
  for (int i = 0; i < kRegions; ++i) {
    const parallel::ChunkRegion region = verify::randomTinyChunkRegion(rng);
    const verify::OracleResult oracle = verify::bruteForceChunk(region);
    ilp::BranchAndBoundSolver solver(solverOptions());
    const parallel::ChunkResult ilpResult = parallel::solveChunkIlp(region, solver);

    ASSERT_TRUE(ilpResult.provenOptimal) << "region " << i;
    ASSERT_EQ(ilpResult.feasible, oracle.feasible) << "region " << i;
    if (!oracle.feasible) continue;
    EXPECT_TRUE(closeEnough(ilpResult.timeSeconds, oracle.bestSeconds))
        << "region " << i << ": chunk ilp " << ilpResult.timeSeconds << " s vs oracle "
        << oracle.bestSeconds << " s over " << oracle.assignmentsTried << " splits";
    if (static_cast<int>(ilpResult.taskClass.size()) > 1) ++multiTask;
  }
  EXPECT_GE(multiTask, kRegions / 10) << "only " << multiTask << " multi-task optima";
}

TEST(OracleTest, BruteForceRejectsUnenumerableRegions) {
  Rng rng(1);
  parallel::IlpRegion region = verify::randomTinyRegion(rng);
  region.children.resize(20, region.children.front());  // way past the cap
  EXPECT_THROW(verify::bruteForceTask(region), Error);

  // Five classes are past the widened envelope...
  parallel::IlpRegion wide = verify::randomTinyRegion(rng);
  wide.numProcsPerClass.assign(5, 1);
  EXPECT_THROW(verify::bruteForceTask(wide), Error);

  // ...and at exactly four classes the child cap tightens to 5.
  parallel::IlpRegion fourDeep = verify::randomTinyRegion(rng);
  fourDeep.numProcsPerClass.assign(4, 1);
  fourDeep.children.resize(6, fourDeep.children.front());
  EXPECT_THROW(verify::bruteForceTask(fourDeep), Error);

  parallel::ChunkRegion loop = verify::randomTinyChunkRegion(rng);
  loop.iterations = 1'000'000;
  EXPECT_THROW(verify::bruteForceChunk(loop), Error);

  parallel::ChunkRegion wideLoop = verify::randomTinyChunkRegion(rng);
  wideLoop.numProcsPerClass.assign(5, 1);
  wideLoop.secondsPerIter.assign(5, 1e-6);
  EXPECT_THROW(verify::bruteForceChunk(wideLoop), Error);
}

}  // namespace
}  // namespace hetpar
