// Replays every committed fuzz regression: each <relation>-seed<N>.c file in
// tests/data/regressions/ (with its .platform sibling) re-runs its relation
// and must pass — a fixed bug stays fixed. Region-level relations have no
// program; their repro is the case seed alone, committed as
// <relation>-seed<N>.seed and replayed through checkRegionRelation. The
// directory starts empty; the fuzzer (tools/hetpar-fuzz) populates it with
// shrunk failing inputs which get committed together with the fix.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "hetpar/platform/parser.hpp"
#include "hetpar/verify/metamorphic.hpp"

#ifndef HETPAR_REGRESSIONS_DIR
#define HETPAR_REGRESSIONS_DIR "tests/data/regressions"
#endif

namespace hetpar {
namespace {

namespace fs = std::filesystem;

// Every repro is replayed once per LP engine: a fixed bug must stay fixed
// under the production revised simplex AND the dense differential oracle
// (a regression that only reproduces under one engine is still a bug).
const std::pair<ilp::SolverEngine, const char*> kEngines[] = {
    {ilp::SolverEngine::Revised, "revised"},
    {ilp::SolverEngine::Dense, "dense"},
};

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// "invariants-seed123.c" -> "invariants".
std::string relationOf(const fs::path& path) {
  const std::string stem = path.stem().string();
  const std::size_t dash = stem.rfind("-seed");
  return dash == std::string::npos ? stem : stem.substr(0, dash);
}

/// "oracle-matches-ilp-seed123.seed" -> 123 (0 = malformed).
std::uint64_t seedOf(const fs::path& path) {
  const std::string stem = path.stem().string();
  const std::size_t dash = stem.rfind("-seed");
  if (dash == std::string::npos) return 0;
  return std::strtoull(stem.c_str() + dash + 5, nullptr, 10);
}

TEST(RegressionsTest, AllCommittedReprosPass) {
  const fs::path dir{HETPAR_REGRESSIONS_DIR};
  if (!fs::exists(dir)) GTEST_SKIP() << "no regression directory";

  int replayed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".c") continue;
    const fs::path platformPath = fs::path(entry.path()).replace_extension(".platform");
    ASSERT_TRUE(fs::exists(platformPath))
        << entry.path() << " has no .platform sibling";

    const std::string source = slurp(entry.path());
    const platform::Platform pf = platform::parsePlatform(slurp(platformPath));
    const std::vector<verify::Relation> relations =
        verify::parseRelations(relationOf(entry.path()));
    ASSERT_EQ(relations.size(), 1u) << entry.path();

    for (const auto& [engine, engineName] : kEngines) {
      verify::MetamorphicOptions options;
      options.parallelizer.solverEngine = engine;
      const verify::RelationResult result =
          verify::checkProgramRelation(relations[0], source, pf, options);
      EXPECT_TRUE(result.passed || result.skipped)
          << entry.path() << " (" << engineName << "): " << result.detail;
    }
    ++replayed;
  }
  // Empty directory = nothing to replay; that is a pass, not a failure.
  RecordProperty("replayed", replayed);
}

TEST(RegressionsTest, AllCommittedSeedReprosPass) {
  const fs::path dir{HETPAR_REGRESSIONS_DIR};
  if (!fs::exists(dir)) GTEST_SKIP() << "no regression directory";

  int replayed = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".seed") continue;
    const std::uint64_t seed = seedOf(entry.path());
    ASSERT_NE(seed, 0u) << entry.path() << ": malformed fixture name";

    const std::vector<verify::Relation> relations =
        verify::parseRelations(relationOf(entry.path()));
    ASSERT_EQ(relations.size(), 1u) << entry.path();
    ASSERT_FALSE(verify::isProgramRelation(relations[0]))
        << entry.path() << ": .seed fixtures are for region-level relations";

    for (const auto& [engine, engineName] : kEngines) {
      verify::MetamorphicOptions options;
      options.parallelizer.solverEngine = engine;
      const verify::RelationResult result =
          verify::checkRegionRelation(relations[0], seed, options);
      EXPECT_TRUE(result.passed || result.skipped)
          << entry.path() << " (" << engineName << "): " << result.detail;
    }
    ++replayed;
  }
  RecordProperty("seedReplayed", replayed);
}

}  // namespace
}  // namespace hetpar
