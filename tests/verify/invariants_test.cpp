// The invariant checker is the harness's wrong-answer detector: a clean
// pipeline run must pass, and seeded defects — wrong cost, wrong processor
// accounting, broken structure — must each trip at least one check. The
// mutation tests double as the acceptance criterion that an injected
// cost-model bug is caught.
#include <gtest/gtest.h>

#include <memory>

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/verify/invariants.hpp"
#include "hetpar/verify/metamorphic.hpp"

namespace hetpar {
namespace {

// Three independent fill loops followed by a reduction: enough exposed
// task- and loop-level parallelism that the solver emits TaskParallel and
// LoopChunked candidates on a two-class platform with a cheap TCO.
constexpr const char* kSource = R"(
int ga[512];
int gb[512];
int gc[512];
int main() {
  for (int i = 0; i < 512; i = i + 1) { ga[i] = i * 3 + 1; }
  for (int j = 0; j < 512; j = j + 1) { gb[j] = j * 5 + 2; }
  for (int k = 0; k < 512; k = k + 1) { gc[k] = k * 7 + 3; }
  int acc = 0;
  for (int m = 0; m < 512; m = m + 1) { acc = acc + ga[m] + gb[m] + gc[m]; }
  return acc + 1;
}
)";

platform::Platform makePlatform() {
  platform::ProcessorClass big;
  big.name = "big";
  big.frequencyMHz = 400.0;
  big.count = 2;
  platform::ProcessorClass little;
  little.name = "little";
  little.frequencyMHz = 200.0;
  little.count = 2;
  return platform::Platform("invtest", {big, little}, platform::Interconnect{},
                            /*taskCreationOverheadSeconds=*/1.5e-6);
}

class InvariantsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bundle_ = new htg::FrontendBundle(htg::buildFromSource(kSource));
    pf_ = new platform::Platform(makePlatform());
    timing_ = new cost::TimingModel(*pf_);
    parallel::ParallelizerOptions opts =
        verify::MetamorphicOptions::deterministicOptions();
    // The mutation tests below need a TaskParallel candidate spawning >= 2
    // tasks. Under the widened fuzz profile (4 tasks / 16 chunks) the
    // chunked child loops absorb all four processors and the optimum
    // carries this region on one task, so pin the narrower profile the
    // fixture's source program was designed around.
    opts.maxTasksPerRegion = 2;
    opts.chunkCount = 8;
    parallel::Parallelizer par(bundle_->graph, *timing_, opts);
    outcome_ = new parallel::ParallelizeOutcome(par.run());
  }
  static void TearDownTestSuite() {
    delete outcome_;
    delete timing_;
    delete pf_;
    delete bundle_;
    outcome_ = nullptr;
    timing_ = nullptr;
    pf_ = nullptr;
    bundle_ = nullptr;
  }

  /// First candidate of the requested kind with at least `minTasks` tasks
  /// ({kNoNode, -1} if absent).
  static std::pair<htg::NodeId, int> findKind(const parallel::SolutionTable& table,
                                              parallel::SolutionKind kind,
                                              int minTasks = 0) {
    for (const auto& [node, set] : table)
      for (std::size_t i = 0; i < set.size(); ++i) {
        const parallel::SolutionCandidate& cand = set.at(static_cast<int>(i));
        if (cand.kind == kind && cand.numTasks() >= minTasks)
          return {node, static_cast<int>(i)};
      }
    return {htg::kNoNode, -1};
  }

  static htg::FrontendBundle* bundle_;
  static platform::Platform* pf_;
  static cost::TimingModel* timing_;
  static parallel::ParallelizeOutcome* outcome_;
};

htg::FrontendBundle* InvariantsTest::bundle_ = nullptr;
platform::Platform* InvariantsTest::pf_ = nullptr;
cost::TimingModel* InvariantsTest::timing_ = nullptr;
parallel::ParallelizeOutcome* InvariantsTest::outcome_ = nullptr;

TEST_F(InvariantsTest, CleanRunPasses) {
  const auto problems =
      verify::checkSolutionTable(bundle_->graph, *timing_, outcome_->table);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST_F(InvariantsTest, PipelineExtractsParallelCandidates) {
  // Guard against vacuity: if everything degenerates to Sequential the
  // mutation tests below would test nothing interesting.
  EXPECT_NE(findKind(outcome_->table, parallel::SolutionKind::TaskParallel).second, -1);
  EXPECT_NE(findKind(outcome_->table, parallel::SolutionKind::LoopChunked).second, -1);
}

TEST_F(InvariantsTest, CatchesCostUnderclaim) {
  // The classic cost-model bug: the tool claims a faster time than the
  // mapping achieves (e.g. a dropped TCO or comm charge).
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::TaskParallel);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  mutated.at(node).at(index).timeSeconds *= 0.5;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesCostOverclaim) {
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::LoopChunked);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  mutated.at(node).at(index).timeSeconds *= 2.0;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesDroppedTcoCharge) {
  // Subtract exactly one task-creation overhead from a multi-task
  // candidate's claim — the kind of off-by-one a refactor of Eq 8 invites.
  auto [node, index] =
      findKind(outcome_->table, parallel::SolutionKind::TaskParallel, /*minTasks=*/2);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  mutated.at(node).at(index).timeSeconds -= timing_->taskCreationSeconds();
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesProcessorAccountingDrift) {
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::TaskParallel);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  mutated.at(node).at(index).extraProcs[0] += 1;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesMainClassMismatch) {
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::TaskParallel);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  parallel::SolutionCandidate& cand = mutated.at(node).at(index);
  ASSERT_FALSE(cand.taskClass.empty());
  cand.taskClass[0] = cand.taskClass[0] == 0 ? 1 : 0;  // != mainClass now
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesDanglingChildChoice) {
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::TaskParallel);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  parallel::SolutionCandidate& cand = mutated.at(node).at(index);
  ASSERT_FALSE(cand.childChoice.empty());
  cand.childChoice[0].index = 9999;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesChunkIterationLoss) {
  // A chunked candidate that silently drops iterations claims impossible
  // speedups; the checker re-derives the per-task load.
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::LoopChunked);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  parallel::SolutionCandidate& cand = mutated.at(node).at(index);
  ASSERT_FALSE(cand.chunkIterations.empty());
  cand.chunkIterations[0] = cand.chunkIterations[0] * 0.5;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

TEST_F(InvariantsTest, CatchesSequentialCostTampering) {
  auto [node, index] = findKind(outcome_->table, parallel::SolutionKind::Sequential);
  ASSERT_NE(index, -1);
  parallel::SolutionTable mutated = outcome_->table;
  mutated.at(node).at(index).timeSeconds *= 0.9;
  EXPECT_FALSE(verify::checkSolutionTable(bundle_->graph, *timing_, mutated).empty());
}

}  // namespace
}  // namespace hetpar
