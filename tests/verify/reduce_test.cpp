// ddmin shrinker: drives it with synthetic predicates whose minimal failing
// chunk sets are known exactly, so 1-minimality is checkable, plus the
// contract checks (passing input rejected, probe accounting sane).
#include <gtest/gtest.h>

#include <algorithm>

#include "hetpar/support/error.hpp"
#include "hetpar/verify/generator.hpp"
#include "hetpar/verify/reduce.hpp"

namespace hetpar {
namespace {

verify::GeneratedProgram programWithChunks(std::vector<std::string> chunks) {
  verify::GeneratedProgram p = verify::generateProgram(1);
  return p.withStatements(std::move(chunks));
}

bool contains(const std::vector<std::string>& haystack, const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

TEST(ReduceTest, ShrinksToSingleCulpritChunk) {
  const verify::GeneratedProgram input = programWithChunks(
      {"  ga[0] = 1;\n", "  ga[1] = 2;\n", "  gc[0] = 99;\n", "  gb[2] = 3;\n",
       "  gb[3] = 4;\n", "  ga[4] = 5;\n"});
  int calls = 0;
  const verify::FailurePredicate failsOnMarker = [&](const verify::GeneratedProgram& p) {
    ++calls;
    return contains(p.statements, "  gc[0] = 99;\n");
  };
  const verify::ReduceResult result = verify::reduceProgram(input, failsOnMarker);
  ASSERT_EQ(result.program.statements.size(), 1u);
  EXPECT_EQ(result.program.statements[0], "  gc[0] = 99;\n");
  EXPECT_LE(result.probes, calls);  // probe accounting never exceeds calls
  EXPECT_GT(result.probes, 0);
}

TEST(ReduceTest, ShrinksToMinimalPair) {
  // Failure needs BOTH markers: the 1-minimal result is exactly the pair
  // (removing either one makes the failure vanish).
  const verify::GeneratedProgram input = programWithChunks(
      {"  ga[0] = 1;\n", "  gc[0] = 7;\n", "  gb[1] = 2;\n", "  gc[1] = 8;\n",
       "  gb[2] = 3;\n"});
  const verify::FailurePredicate needsBoth = [](const verify::GeneratedProgram& p) {
    return contains(p.statements, "  gc[0] = 7;\n") &&
           contains(p.statements, "  gc[1] = 8;\n");
  };
  const verify::ReduceResult result = verify::reduceProgram(input, needsBoth);
  ASSERT_EQ(result.program.statements.size(), 2u);
  EXPECT_TRUE(contains(result.program.statements, "  gc[0] = 7;\n"));
  EXPECT_TRUE(contains(result.program.statements, "  gc[1] = 8;\n"));
}

TEST(ReduceTest, ResultStillRendersValidProgram) {
  const verify::GeneratedProgram input = verify::generateProgram(23);
  ASSERT_GE(input.statements.size(), 2u);
  const std::string marker = input.statements.front();
  const verify::FailurePredicate failsOnMarker = [&](const verify::GeneratedProgram& p) {
    return contains(p.statements, marker);
  };
  const verify::ReduceResult result = verify::reduceProgram(input, failsOnMarker);
  EXPECT_EQ(result.program.statements.size(), 1u);
  // Rendered shrunk program keeps the prologue/epilogue scaffolding.
  EXPECT_NE(result.program.render().find("int main()"), std::string::npos);
}

TEST(ReduceTest, AlwaysFailingInputShrinksToAtMostOneChunk) {
  // Classic ddmin stops once no single removal keeps the failure, so an
  // always-failing input bottoms out at one chunk (it never probes empty).
  const verify::GeneratedProgram input = verify::generateProgram(4);
  const verify::FailurePredicate alwaysFails = [](const verify::GeneratedProgram&) {
    return true;
  };
  const verify::ReduceResult result = verify::reduceProgram(input, alwaysFails);
  EXPECT_LE(result.program.statements.size(), 1u);
}

TEST(ReduceTest, RejectsPassingInput) {
  const verify::GeneratedProgram input = verify::generateProgram(4);
  const verify::FailurePredicate neverFails = [](const verify::GeneratedProgram&) {
    return false;
  };
  EXPECT_THROW(verify::reduceProgram(input, neverFails), Error);
}

}  // namespace
}  // namespace hetpar
