#include "hetpar/sim/energy.hpp"

#include <gtest/gtest.h>

#include "hetpar/platform/parser.hpp"
#include "hetpar/support/error.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::sim {
namespace {

sched::SimTask task(int core, double secs, std::vector<int> preds = {}) {
  sched::SimTask t;
  t.core = core;
  t.computeSeconds = secs;
  t.preds = std::move(preds);
  return t;
}

TEST(Energy, DefaultPowersScaleWithFrequency) {
  const platform::Platform a = platform::platformA();
  const double p100 = activeWatts(a.classAt(a.findClass("arm_100")));
  const double p500 = activeWatts(a.classAt(a.findClass("arm_500")));
  EXPECT_NEAR(p500 / p100, 5.0, 1e-9);
  EXPECT_LT(idleWatts(a.classAt(0)), p100);
}

TEST(Energy, ExplicitPowersOverrideDefaults) {
  const platform::Platform p = platform::parsePlatform(R"(
    platform pw
    class little freq_mhz 200 count 1 watts_active 0.5 watts_idle 0.02
    bus latency_us 1 bandwidth_mbps 400
    tco_us 25
  )");
  EXPECT_DOUBLE_EQ(activeWatts(p.classAt(0)), 0.5);
  EXPECT_DOUBLE_EQ(idleWatts(p.classAt(0)), 0.02);
}

TEST(Energy, BusyPlusIdleOverMakespan) {
  const platform::Platform pf = platform::platformB();  // 2x200 + 2x500
  sched::TaskGraph g;
  g.numCores = pf.numCores();
  g.addTask(task(0, 2.0));
  g.addTask(task(2, 1.0));  // fast core busy half the makespan
  const SimReport r = simulate(g);
  ASSERT_DOUBLE_EQ(r.makespanSeconds, 2.0);
  const EnergyReport e = energyOf(r, g, pf);
  const double a200 = activeWatts(pf.classAt(0));
  const double i200 = idleWatts(pf.classAt(0));
  const double a500 = activeWatts(pf.classAt(1));
  const double i500 = idleWatts(pf.classAt(1));
  const double expected = 2.0 * a200                    // core 0 busy whole time
                          + 2.0 * i200                  // core 1 idle
                          + (1.0 * a500 + 1.0 * i500)   // core 2 half busy
                          + 2.0 * i500;                 // core 3 idle
  EXPECT_NEAR(e.totalJoules, expected, 1e-12);
}

TEST(Energy, BusTransfersCost) {
  const platform::Platform pf = platform::platformB();
  sched::TaskGraph g;
  g.numCores = pf.numCores();
  g.addTask(task(0, 1.0));
  sched::SimTask consumer = task(2, 1.0, {0});
  consumer.transfers.emplace_back(0, 0.5);
  g.addTask(std::move(consumer));
  const SimReport r = simulate(g);
  const EnergyReport e = energyOf(r, g, pf);
  EXPECT_GT(e.busJoules, 0.0);
  EXPECT_NEAR(e.busJoules, 0.5 * 0.08, 1e-12);
}

TEST(Energy, RaceToIdleTradeoffIsVisible) {
  // The same work sequential-on-little vs split-across-everything: the
  // parallel version finishes earlier (less idle-burn on the other cores),
  // so with whole-chip accounting it can even SAVE energy.
  const platform::Platform pf = platform::platformB();
  const double work200 = 8.0;  // seconds of class-200 work

  sched::TaskGraph seq;
  seq.numCores = pf.numCores();
  seq.addTask(task(0, work200));
  const SimReport seqRep = simulate(seq);
  const EnergyReport seqEnergy = energyOf(seqRep, seq, pf);

  sched::TaskGraph par;
  par.numCores = pf.numCores();
  // Perfect 200/200/500/500-proportional split: makespan = 8 * 200/1400 s.
  const double ms = work200 * 200.0 / 1400.0;
  par.addTask(task(0, ms));
  par.addTask(task(1, ms));
  par.addTask(task(2, ms));
  par.addTask(task(3, ms));
  const SimReport parRep = simulate(par);
  const EnergyReport parEnergy = energyOf(parRep, par, pf);

  EXPECT_LT(parRep.makespanSeconds, seqRep.makespanSeconds);
  // Energy-delay product must favor the parallel version decisively.
  EXPECT_LT(parEnergy.edp(parRep.makespanSeconds), seqEnergy.edp(seqRep.makespanSeconds));
}

TEST(Energy, MismatchedCoreCountRejected) {
  sched::TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.0));
  const SimReport r = simulate(g);
  EXPECT_THROW(energyOf(r, g, platform::platformA()), hetpar::Error);
}

}  // namespace
}  // namespace hetpar::sim
