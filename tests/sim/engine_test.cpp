#include "hetpar/sim/engine.hpp"

#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"

namespace hetpar::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(e.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SimultaneousEventsAreFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) e.schedule(1.0, [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void(int)> chain = [&](int depth) {
    ++fired;
    if (depth < 4) e.schedule(e.now() + 1.0, [&, depth] { chain(depth + 1); });
  };
  e.schedule(0.0, [&] { chain(0); });
  EXPECT_DOUBLE_EQ(e.run(), 4.0);
  EXPECT_EQ(fired, 5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule(5.0, [&] {
    EXPECT_THROW(e.schedule(1.0, [] {}), Error);
  });
  e.run();
}

TEST(Engine, NowAdvancesMonotonically) {
  Engine e;
  double last = -1.0;
  for (double t : {0.5, 0.1, 0.9, 0.3}) {
    e.schedule(t, [&, t] {
      EXPECT_GE(t, last);
      last = t;
      EXPECT_DOUBLE_EQ(e.now(), t);
    });
  }
  e.run();
  EXPECT_EQ(e.eventsProcessed(), 4u);
}

}  // namespace
}  // namespace hetpar::sim
