// End-to-end evaluation harness tests: the full paper pipeline on one
// benchmark, asserting the qualitative results of Section VI.
#include "hetpar/sim/measure.hpp"

#include <gtest/gtest.h>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::sim {
namespace {

const EvalResult& firResultA() {
  static const EvalResult r = evaluateBenchmark(
      "fir_256", benchsuite::find("fir_256").source, platform::platformA(),
      Scenario::Accelerator);
  return r;
}

TEST(Measure, MainClassSelection) {
  const platform::Platform a = platform::platformA();
  EXPECT_EQ(mainClassFor(a, Scenario::Accelerator), a.slowestClass());
  EXPECT_EQ(mainClassFor(a, Scenario::SlowerCores), a.fastestClass());
}

TEST(Measure, AcceleratorScenarioShape) {
  const EvalResult& r = firResultA();
  EXPECT_GT(r.sequentialSeconds, 0.0);
  EXPECT_NEAR(r.theoreticalLimit, 13.5, 1e-9);
  // Heterogeneous beats homogeneous, both beat sequential, nothing beats
  // the theoretical limit (paper Figure 7(a)).
  EXPECT_GT(r.heterogeneousSpeedup, r.homogeneousSpeedup);
  EXPECT_GT(r.heterogeneousSpeedup, 4.0);
  EXPECT_LT(r.heterogeneousSpeedup, r.theoreticalLimit);
  EXPECT_GT(r.homogeneousSpeedup, 1.5);
}

TEST(Measure, StatsShapeMatchesTableI) {
  const EvalResult& r = firResultA();
  EXPECT_GT(r.heterogeneousStats.numIlps, r.homogeneousStats.numIlps);
  EXPECT_GT(r.heterogeneousStats.numVars, r.homogeneousStats.numVars);
  EXPECT_GT(r.heterogeneousStats.numConstraints, r.homogeneousStats.numConstraints);
}

TEST(Measure, SlowerCoresScenarioShape) {
  static const EvalResult r = evaluateBenchmark(
      "fir_256", benchsuite::find("fir_256").source, platform::platformA(),
      Scenario::SlowerCores);
  EXPECT_NEAR(r.theoreticalLimit, 2.7, 1e-9);
  // Paper Figure 7(b): heterogeneous > 1x, homogeneous around or below 1x,
  // heterogeneous strictly better.
  EXPECT_GE(r.heterogeneousSpeedup, 1.0);
  EXPECT_GT(r.heterogeneousSpeedup, r.homogeneousSpeedup);
  EXPECT_LT(r.homogeneousSpeedup, 1.6);
  EXPECT_LT(r.heterogeneousSpeedup, r.theoreticalLimit + 1e-9);
}

}  // namespace
}  // namespace hetpar::sim
