#include "hetpar/sim/mpsoc.hpp"

#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"

namespace hetpar::sim {
namespace {

sched::SimTask task(int core, double secs, std::vector<int> preds = {},
                    std::vector<std::pair<int, double>> transfers = {}) {
  sched::SimTask t;
  t.core = core;
  t.computeSeconds = secs;
  t.preds = std::move(preds);
  t.transfers = std::move(transfers);
  return t;
}

TEST(Mpsoc, SingleTask) {
  sched::TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, 2.5));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 2.5);
  EXPECT_DOUBLE_EQ(r.cores[0].busySeconds, 2.5);
  EXPECT_EQ(r.cores[0].tasksRun, 1);
}

TEST(Mpsoc, IndependentTasksOnDifferentCoresOverlap) {
  sched::TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 3.0));
  g.addTask(task(1, 2.0));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 3.0);
}

TEST(Mpsoc, SameCoreSerializesInIdOrder) {
  sched::TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, 1.0));
  g.addTask(task(0, 2.0));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 3.0);
  EXPECT_DOUBLE_EQ(r.taskStart[1], 1.0);
}

TEST(Mpsoc, PrecedenceRespected) {
  sched::TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 2.0));
  g.addTask(task(1, 1.0, {0}));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.taskStart[1], 2.0);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 3.0);
}

TEST(Mpsoc, TransfersDelayConsumers) {
  sched::TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.0));
  g.addTask(task(1, 1.0, {0}, {{0, 0.5}}));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.taskStart[1], 1.5);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 2.5);
  EXPECT_EQ(r.busTransfers, 1);
  EXPECT_DOUBLE_EQ(r.busBusySeconds, 0.5);
}

TEST(Mpsoc, BusSerializesTransfers) {
  sched::TaskGraph g;
  g.numCores = 3;
  g.addTask(task(0, 1.0));                            // producer A
  g.addTask(task(1, 1.0));                            // producer B
  g.addTask(task(2, 0.1, {0, 1}, {{0, 2.0}, {1, 2.0}}));  // consumer
  SimReport r = simulate(g);
  // Both transfers finish at 1.0 + 2.0 + 2.0 = 5.0 (FIFO on one bus).
  EXPECT_DOUBLE_EQ(r.taskStart[2], 5.0);
}

TEST(Mpsoc, DiamondCriticalPath) {
  sched::TaskGraph g;
  g.numCores = 3;
  g.addTask(task(0, 1.0));             // source
  g.addTask(task(1, 5.0, {0}));        // slow branch
  g.addTask(task(2, 1.0, {0}));        // fast branch
  g.addTask(task(0, 1.0, {1, 2}));     // join
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 1.0 + 5.0 + 1.0);
}

TEST(Mpsoc, HeterogeneousFinishImbalance) {
  // Models the paper's slowdown mechanism: equal work on unequal cores.
  sched::TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.0));        // fast core finishes its half early
  g.addTask(task(1, 5.0));        // slow core drags the makespan
  g.addTask(task(0, 0.0, {0, 1}));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 5.0);
  EXPECT_NEAR(r.utilization(0), 0.2, 1e-9);
  EXPECT_NEAR(r.utilization(1), 1.0, 1e-9);
}

TEST(Mpsoc, ReadyTaskPrefersLowestId) {
  sched::TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, 1.0));
  g.addTask(task(0, 1.0));  // both ready at t=0; id order
  g.addTask(task(0, 1.0));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.taskStart[0], 0.0);
  EXPECT_DOUBLE_EQ(r.taskStart[1], 1.0);
  EXPECT_DOUBLE_EQ(r.taskStart[2], 2.0);
}

TEST(Mpsoc, InvalidGraphRejected) {
  sched::TaskGraph g;
  g.numCores = 1;
  g.addTask(task(3, 1.0));  // core out of range
  EXPECT_THROW(simulate(g), Error);
}

TEST(Mpsoc, ZeroDurationChainsAreFine) {
  sched::TaskGraph g;
  g.numCores = 1;
  int prev = g.addTask(task(0, 0.0));
  for (int i = 0; i < 5; ++i) prev = g.addTask(task(0, 0.0, {prev}));
  SimReport r = simulate(g);
  EXPECT_DOUBLE_EQ(r.makespanSeconds, 0.0);
}

}  // namespace
}  // namespace hetpar::sim
