// hetpar-fuzz regression: relation liveness-soundness, case seed 10451216379200822465
int ga[32];
int gb[32];
int gc[32];
int helper(int v) { return v * 3 + 1; }
void fill(int dst[32], int base) {
  for (int i = 0; i < 32; i = i + 1) { dst[i] = base + i; }
}
int main() {
    gb[0] = gc[31] + 2;
    gb[31] = gc[0] + 6;
  int acc = 0;
  for (int i = 0; i < 32; i = i + 1) { acc = acc + ga[i] + gb[i] + gc[i]; }
  return acc + 1;
}
