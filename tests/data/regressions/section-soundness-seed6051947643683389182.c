// hetpar-fuzz regression: relation section-soundness, case seed 6051947643683389182
int ga[128];
int gb[128];
int gc[128];
int helper(int v) { return v * 3 + 1; }
void fill(int dst[128], int base) {
  for (int i = 0; i < 128; i = i + 1) { dst[i] = base + i; }
}
int main() {
    for (int i0 = 0; i0 < 128; i0 = i0 + 1) {
      gc[i0] = gb[i0] + 3;
      if (i0 % 4 == 1) { i0 = i0 + 1; }
    }
  int acc = 0;
  for (int i = 0; i < 128; i = i + 1) { acc = acc + ga[i] + gb[i] + gc[i]; }
  return acc + 1;
}
