/* Sample input for hetparc: a three-stage array pipeline. */
int src[4096];
int mid[4096];
int dst[4096];

int main() {
  for (int i = 0; i < 4096; i = i + 1) {
    src[i] = (i * 13 + 7) % 101;
  }
  for (int i = 0; i < 4096; i = i + 1) {
    mid[i] = src[i] * src[i] + 3;
  }
  for (int i = 0; i < 4096; i = i + 1) {
    dst[i] = mid[i] / 2 + src[i];
  }
  int sum = 0;
  for (int i = 0; i < 4096; i = i + 1) {
    sum = sum + dst[i];
  }
  return sum;
}
