#include "hetpar/ir/defuse.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

using frontend::analyze;
using frontend::parseProgram;

struct Ctx {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<DefUseAnalysis> du;

  explicit Ctx(const char* src) : program(parseProgram(src)), sema(analyze(program)) {
    du = std::make_unique<DefUseAnalysis>(program, sema);
  }
  const frontend::Stmt& mainStmt(std::size_t i) const {
    return *program.findFunction("main")->body[i];
  }
};

TEST(DefUse, SimpleAssignment) {
  Ctx c("int main() { int a = 1; int b = a + 2; return b; }");
  const DefUse& d0 = c.du->of(c.mainStmt(0));
  EXPECT_TRUE(d0.defs.count("a"));
  EXPECT_TRUE(d0.uses.empty());
  const DefUse& d1 = c.du->of(c.mainStmt(1));
  EXPECT_TRUE(d1.defs.count("b"));
  EXPECT_TRUE(d1.uses.count("a"));
  const DefUse& d2 = c.du->of(c.mainStmt(2));
  EXPECT_TRUE(d2.uses.count("b"));
  EXPECT_TRUE(d2.defs.empty());
}

TEST(DefUse, ElementWriteAlsoUsesArray) {
  Ctx c("int a[8]; int main() { int i = 0; a[i] = 3; return 0; }");
  const DefUse& d = c.du->of(c.mainStmt(1));
  EXPECT_TRUE(d.defs.count("a"));
  EXPECT_TRUE(d.uses.count("a")) << "partial writes keep the rest of the array live";
  EXPECT_TRUE(d.uses.count("i"));
}

TEST(DefUse, UninitializedDeclProducesNoDef) {
  Ctx c("int main() { int a[8]; a[0] = 1; return a[0]; }");
  const DefUse& d = c.du->of(c.mainStmt(0));
  EXPECT_TRUE(d.defs.empty()) << "uninitialized declarations must not look like producers";
}

TEST(DefUse, LoopAggregatesBodyAndHeader) {
  Ctx c(R"(int b[4]; int main() {
    int s = 0;
    for (int i = 0; i < 4; i = i + 1) { s = s + b[i]; }
    return s;
  })");
  const DefUse& d = c.du->of(c.mainStmt(1));
  EXPECT_TRUE(d.defs.count("s"));
  EXPECT_TRUE(d.defs.count("i"));
  EXPECT_TRUE(d.uses.count("b"));
  EXPECT_TRUE(d.uses.count("s"));
}

TEST(DefUse, IfAggregatesBothBranches) {
  Ctx c(R"(int main() {
    int x = 1; int a = 0; int b = 0;
    if (x > 0) { a = 1; } else { b = 2; }
    return a + b;
  })");
  const DefUse& d = c.du->of(c.mainStmt(3));
  EXPECT_TRUE(d.defs.count("a"));
  EXPECT_TRUE(d.defs.count("b"));
  EXPECT_TRUE(d.uses.count("x"));
}

TEST(DefUse, CallEffectsArrayParams) {
  Ctx c(R"(
    void produce(int v[4]) { v[0] = 1; }
    int consume(int v[4]) { return v[0]; }
    int main() {
      int data[4];
      produce(data);
      int r = consume(data);
      return r;
    }
  )");
  const DefUse& dp = c.du->of(c.mainStmt(1));
  EXPECT_TRUE(dp.defs.count("data"));
  const DefUse& dc = c.du->of(c.mainStmt(2));
  EXPECT_TRUE(dc.uses.count("data"));
  EXPECT_FALSE(dc.defs.count("data"));
}

TEST(DefUse, CallEffectsGlobals) {
  Ctx c(R"(
    int g = 0;
    void setit() { g = 5; }
    int getit() { return g; }
    int main() { setit(); int x = getit(); return x; }
  )");
  EXPECT_TRUE(c.du->of(c.mainStmt(0)).defs.count("g"));
  EXPECT_TRUE(c.du->of(c.mainStmt(1)).uses.count("g"));
}

TEST(DefUse, TransitiveCallEffects) {
  Ctx c(R"(
    int g = 0;
    void inner() { g = 1; }
    void outer() { inner(); }
    int main() { outer(); return g; }
  )");
  EXPECT_TRUE(c.du->of(c.mainStmt(0)).defs.count("g"));
}

TEST(DefUse, ScalarParamWriteStaysLocal) {
  Ctx c(R"(
    int f(int x) { x = x + 1; return x; }
    int main() { int a = 1; int b = f(a); return b; }
  )");
  const DefUse& d = c.du->of(c.mainStmt(1));
  EXPECT_TRUE(d.uses.count("a"));
  EXPECT_FALSE(d.defs.count("a"));
  const FunctionEffects& fx = c.du->effects(*c.program.findFunction("f"));
  EXPECT_TRUE(fx.paramRead[0]);
  EXPECT_FALSE(fx.paramWritten[0]);
}

TEST(DefUse, EffectsLocalShadowingGlobalStaysLocal) {
  Ctx c(R"(
    int g = 0;
    int shadow() { int g = 1; g = g + 2; return g; }
    int main() { int r = shadow(); return r + g; }
  )");
  const FunctionEffects& fx = c.du->effects(*c.program.findFunction("shadow"));
  EXPECT_FALSE(fx.globalsWritten.count("g")) << "writes hit the shadowing local, not the global";
  EXPECT_FALSE(fx.globalsRead.count("g"));
  const DefUse& d = c.du->of(c.mainStmt(0));
  EXPECT_FALSE(d.defs.count("g")) << "call sites must not inherit shadowed-global defs";
  EXPECT_FALSE(d.uses.count("g"));
}

TEST(DefUse, EffectsParamShadowingGlobalStaysLocal) {
  Ctx c(R"(
    int g = 3;
    int bump(int g) { g = g + 1; return g; }
    int main() { int r = bump(g); return r; }
  )");
  const FunctionEffects& fx = c.du->effects(*c.program.findFunction("bump"));
  EXPECT_FALSE(fx.globalsWritten.count("g")) << "the parameter shadows the global";
  EXPECT_FALSE(fx.globalsRead.count("g"));
  EXPECT_TRUE(fx.paramRead[0]);
  EXPECT_FALSE(fx.paramWritten[0]) << "scalar params are pass-by-value";
  const DefUse& d = c.du->of(c.mainStmt(0));
  EXPECT_TRUE(d.uses.count("g")) << "the argument expression still reads the global";
  EXPECT_FALSE(d.defs.count("g"));
}

TEST(DefUse, EffectsMixedParamsWriteOnlyThroughArrays) {
  Ctx c(R"(
    void fill(int n, int dst[8]) { dst[n] = n; }
    int main() { int data[8]; fill(2, data); return data[2]; }
  )");
  const FunctionEffects& fx = c.du->effects(*c.program.findFunction("fill"));
  EXPECT_TRUE(fx.paramRead[0]);
  EXPECT_FALSE(fx.paramWritten[0]) << "the scalar index is read-only by construction";
  EXPECT_TRUE(fx.paramWritten[1]) << "element stores reach the caller's array";
}

TEST(DefUse, ByteSizes) {
  Ctx c("double m[4][4]; float v[8]; int s; int main() { s = 1; return s; }");
  EXPECT_EQ(c.du->byteSizeOf(nullptr, "m"), 128);
  EXPECT_EQ(c.du->byteSizeOf(nullptr, "v"), 32);
  EXPECT_EQ(c.du->byteSizeOf(nullptr, "s"), 4);
  EXPECT_EQ(c.du->byteSizeOf(nullptr, "missing"), 0);
}

}  // namespace
}  // namespace hetpar::ir
