#include "hetpar/ir/looppar.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

struct Ctx {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<DefUseAnalysis> du;

  explicit Ctx(const std::string& src)
      : program(frontend::parseProgram(src)), sema(frontend::analyze(program)) {
    du = std::make_unique<DefUseAnalysis>(program, sema);
  }

  LoopParallelism firstLoop() const {
    const frontend::Function* fn = program.findFunction("main");
    for (const auto& s : fn->body) {
      if (s->kind == frontend::StmtKind::For)
        return analyzeLoop(static_cast<const frontend::ForStmt&>(*s), *du, fn);
    }
    throw std::runtime_error("no loop in main");
  }
};

TEST(LoopPar, ElementwiseMapIsDoall) {
  Ctx c(R"(
    int a[64]; int b[64];
    int main() {
      for (int i = 0; i < 64; i = i + 1) { a[i] = b[i] * 2; }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason;
}

TEST(LoopPar, StencilReadIsNotDoall) {
  Ctx c(R"(
    int a[64];
    int main() {
      for (int i = 1; i < 64; i = i + 1) { a[i] = a[i - 1] + 1; }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
  EXPECT_NE(lp.reason.find("a"), std::string::npos);
}

TEST(LoopPar, ReadOnlyStencilOfOtherArrayIsDoall) {
  Ctx c(R"(
    int src[64]; int dst[64];
    int main() {
      for (int i = 1; i < 63; i = i + 1) { dst[i] = src[i - 1] + src[i + 1]; }
      return dst[1];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason << " (src is read-only, dst is written at [i])";
}

TEST(LoopPar, SumReductionRecognized) {
  Ctx c(R"(
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) { s = s + a[i]; }
      return s;
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason;
  EXPECT_TRUE(lp.reductions.count("s"));
}

TEST(LoopPar, ProductReductionRecognized) {
  Ctx c(R"(
    int main() {
      int p = 1;
      for (int i = 1; i < 10; i = i + 1) { p = p * i; }
      return p;
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason;
  EXPECT_TRUE(lp.reductions.count("p"));
}

TEST(LoopPar, ReductionVarUsedElsewhereRejected) {
  Ctx c(R"(
    int a[64];
    int main() {
      int s = 0;
      for (int i = 0; i < 64; i = i + 1) { s = s + 1; a[i] = s; }
      return s;
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall) << "s feeds a[i], order matters";
}

TEST(LoopPar, PrivatizableTemporary) {
  Ctx c(R"(
    int a[64]; int b[64];
    int main() {
      for (int i = 0; i < 64; i = i + 1) {
        int t = b[i] * 3;
        a[i] = t + 1;
      }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason;
  EXPECT_TRUE(lp.privatizable.count("t"));
}

TEST(LoopPar, CarriedScalarRejected) {
  Ctx c(R"(
    int a[64];
    int main() {
      int prev = 0;
      for (int i = 0; i < 64; i = i + 1) {
        a[i] = prev;
        prev = a[i] + i;
      }
      return a[63];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
}

TEST(LoopPar, TwoDimensionalRowDistribution) {
  Ctx c(R"(
    int m[16][16];
    int main() {
      for (int i = 0; i < 16; i = i + 1) {
        for (int j = 0; j < 16; j = j + 1) { m[i][j] = i + j; }
      }
      return m[3][4];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason << " (outer loop distributes rows)";
}

TEST(LoopPar, TransposedAccessRejected) {
  Ctx c(R"(
    int m[16][16];
    int main() {
      for (int i = 0; i < 16; i = i + 1) {
        for (int j = 0; j < 16; j = j + 1) { m[i][j] = m[j][i] + 1; }
      }
      return m[3][4];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall) << "i appears in different dimensions across accesses";
}

TEST(LoopPar, OffsetWriteRejected) {
  Ctx c(R"(
    int a[64];
    int main() {
      for (int i = 0; i < 63; i = i + 1) { a[i + 1] = i; }
      return a[1];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall) << "a[i+1] is not the exact induction subscript";
}

TEST(LoopPar, NonUnitStepRejected) {
  Ctx c(R"(
    int a[64];
    int main() {
      for (int i = 0; i < 64; i = i + 2) { a[i] = i; }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
  EXPECT_NE(lp.reason.find("step"), std::string::npos);
}

TEST(LoopPar, CallWithWritesRejected) {
  Ctx c(R"(
    int g = 0;
    void bump() { g = g + 1; }
    int main() {
      for (int i = 0; i < 8; i = i + 1) { bump(); }
      return g;
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
}

TEST(LoopPar, PureCallAllowed) {
  Ctx c(R"(
    int a[32];
    int f(int x) { return x * x + 1; }
    int main() {
      for (int i = 0; i < 32; i = i + 1) { a[i] = f(i); }
      return a[5];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_TRUE(lp.isDoall) << lp.reason;
}

TEST(LoopPar, WholeArrayUseRejected) {
  Ctx c(R"(
    int a[8];
    int sum(int v[8]) { int s = 0; for (int k = 0; k < 8; k = k + 1) { s = s + v[k]; } return s; }
    int main() {
      for (int i = 0; i < 8; i = i + 1) { a[i] = sum(a); }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
}

TEST(LoopPar, InductionVariableWriteInBodyRejected) {
  Ctx c(R"(
    int a[32];
    int main() {
      for (int i = 0; i < 32; i = i + 1) { a[i] = 1; i = i + 1; }
      return a[0];
    }
  )");
  auto lp = c.firstLoop();
  EXPECT_FALSE(lp.isDoall);
}

}  // namespace
}  // namespace hetpar::ir
