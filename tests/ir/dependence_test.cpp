#include "hetpar/ir/dependence.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

struct Ctx {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<DefUseAnalysis> du;
  std::vector<const frontend::Stmt*> mainStmts;
  const frontend::Function* mainFn;

  explicit Ctx(const char* src)
      : program(frontend::parseProgram(src)), sema(frontend::analyze(program)) {
    du = std::make_unique<DefUseAnalysis>(program, sema);
    mainFn = program.findFunction("main");
    for (const auto& s : mainFn->body) mainStmts.push_back(s.get());
  }
  std::vector<DepEdge> deps() const { return computeSiblingDeps(mainStmts, *du, mainFn); }
};

const DepEdge* findEdge(const std::vector<DepEdge>& edges, int from, int to, DepKind kind) {
  for (const auto& e : edges)
    if (e.from == from && e.to == to && e.kind == kind) return &e;
  return nullptr;
}

TEST(Dependence, FlowFromLastWriter) {
  Ctx c(R"(int main() {
    int a = 1;
    a = 2;
    int b = a;
    return b;
  })");
  auto deps = c.deps();
  EXPECT_NE(findEdge(deps, 1, 2, DepKind::Flow), nullptr) << "reads come from the LAST writer";
  EXPECT_EQ(findEdge(deps, 0, 2, DepKind::Flow), nullptr);
  EXPECT_NE(findEdge(deps, 0, 1, DepKind::Output), nullptr);
}

TEST(Dependence, IndependentStatementsHaveNoEdges) {
  Ctx c(R"(int main() {
    int a = 1;
    int b = 2;
    int c = 3;
    return a + b + c;
  })");
  auto deps = c.deps();
  EXPECT_EQ(findEdge(deps, 0, 1, DepKind::Flow), nullptr);
  EXPECT_EQ(findEdge(deps, 1, 2, DepKind::Flow), nullptr);
  // The return depends on all three.
  EXPECT_NE(findEdge(deps, 0, 3, DepKind::Flow), nullptr);
  EXPECT_NE(findEdge(deps, 1, 3, DepKind::Flow), nullptr);
  EXPECT_NE(findEdge(deps, 2, 3, DepKind::Flow), nullptr);
}

TEST(Dependence, AntiDependence) {
  Ctx c(R"(int main() {
    int a = 1;
    int b = a;
    a = 5;
    return a + b;
  })");
  auto deps = c.deps();
  EXPECT_NE(findEdge(deps, 1, 2, DepKind::Anti), nullptr);
  const DepEdge* anti = findEdge(deps, 1, 2, DepKind::Anti);
  ASSERT_NE(anti, nullptr);
  EXPECT_EQ(anti->bytes, 0) << "anti edges are ordering-only";
}

TEST(Dependence, FlowEdgeBytesMatchTypes) {
  Ctx c(R"(
    double big[100];
    void fill(double v[100]) { v[0] = 1.0; }
    double head(double v[100]) { return v[0]; }
    int main() {
      fill(big);
      double x = head(big);
      return x;
    }
  )");
  auto deps = c.deps();
  const DepEdge* e = findEdge(deps, 0, 1, DepKind::Flow);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->bytes, 800);
  ASSERT_EQ(e->vars.size(), 1u);
  EXPECT_EQ(e->vars[0], "big");
}

TEST(Dependence, MultipleVarsMergeOntoOneEdge) {
  Ctx c(R"(int main() {
    int a = 1;
    int b = 2;
    int c = a + b;
    return c;
  })");
  // A different shape: statement 2 reads both a and b — but from different
  // producers, so two distinct edges. Merge happens when one producer
  // defines several consumed variables.
  Ctx m(R"(
    int x; int y;
    void both() { x = 1; y = 2; }
    int main() {
      both();
      int s = x + y;
      return s;
    }
  )");
  auto deps = m.deps();
  const DepEdge* e = findEdge(deps, 0, 1, DepKind::Flow);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->vars.size(), 2u);
  EXPECT_EQ(e->bytes, 8);
  (void)c;
}

TEST(Dependence, RegionFlowInbound) {
  Ctx c(R"(
    int g = 7;
    int main() {
      int a = g + 1;
      int b = a * 2;
      return b;
    }
  )");
  RegionFlow flow = computeRegionFlow(c.mainStmts, *c.du, c.mainFn);
  EXPECT_TRUE(flow.inbound[0].count("g")) << "g arrives from outside the region";
  EXPECT_FALSE(flow.inbound[1].count("a")) << "a is produced inside";
}

TEST(Dependence, RegionFlowOutboundLastWriterOnly) {
  Ctx c(R"(int main() {
    int a = 1;
    a = 2;
    return a;
  })");
  RegionFlow flow = computeRegionFlow(c.mainStmts, *c.du, c.mainFn);
  EXPECT_FALSE(flow.outbound[0].count("a")) << "overwritten value does not escape";
  EXPECT_TRUE(flow.outbound[1].count("a"));
}

TEST(Dependence, RegionFlowOutboundUseThenRedefineForwards) {
  // Statement 1 *uses* a before redefining it, so statement 0's value is
  // consumed on the way out — it must stay outbound. Contrast with the pure
  // overwrite in RegionFlowOutboundLastWriterOnly, which kills it.
  Ctx c(R"(int main() {
    int a = 1;
    a = a + 1;
    return a;
  })");
  RegionFlow flow = computeRegionFlow(c.mainStmts, *c.du, c.mainFn);
  EXPECT_TRUE(flow.outbound[0].count("a")) << "use-then-redefine forwards the value";
  EXPECT_TRUE(flow.outbound[1].count("a"));
}

TEST(Dependence, NoSelfEdges) {
  Ctx c(R"(int main() {
    int s = 0;
    s = s + 1;
    return s;
  })");
  for (const auto& e : c.deps()) EXPECT_NE(e.from, e.to);
}

TEST(Dependence, EdgesAlwaysPointForward) {
  Ctx c(R"(int b[16]; int main() {
    int s = 0;
    for (int i = 0; i < 16; i = i + 1) { b[i] = i; }
    for (int i = 0; i < 16; i = i + 1) { s = s + b[i]; }
    return s;
  })");
  for (const auto& e : c.deps()) EXPECT_LT(e.from, e.to);
  // Second loop consumes the first loop's array.
  EXPECT_NE(findEdge(c.deps(), 1, 2, DepKind::Flow), nullptr);
}

}  // namespace
}  // namespace hetpar::ir
