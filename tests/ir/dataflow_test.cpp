#include "hetpar/ir/dataflow.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"
#include "hetpar/ir/tripcount.hpp"

namespace hetpar::ir {
namespace {

using frontend::analyze;
using frontend::parseProgram;

struct Ctx {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<DefUseAnalysis> du;
  std::unique_ptr<DataflowAnalysis> dfa;

  explicit Ctx(const char* src) : program(parseProgram(src)), sema(analyze(program)) {
    du = std::make_unique<DefUseAnalysis>(program, sema);
    dfa = std::make_unique<DataflowAnalysis>(program, sema, *du);
  }
  const frontend::Stmt& mainStmt(std::size_t i) const {
    return *program.findFunction("main")->body[i];
  }
  const frontend::ForStmt& mainLoop(std::size_t i) const {
    const frontend::Stmt& s = mainStmt(i);
    EXPECT_EQ(s.kind, frontend::StmtKind::For);
    return static_cast<const frontend::ForStmt&>(s);
  }
  std::vector<FlowDiagnostic> findings(FlowDiagnostic::Kind kind,
                                       const std::string& variable) const {
    std::vector<FlowDiagnostic> out;
    for (const FlowDiagnostic& d : dfa->diagnostics())
      if (d.kind == kind && d.variable == variable) out.push_back(d);
    return out;
  }
};

/// RAII for the deliberate-fault knob so a failing test cannot leak it.
struct KnobGuard {
  KnobGuard() { DataflowAnalysis::testTreatPartialArrayWritesAsKills() = true; }
  ~KnobGuard() { DataflowAnalysis::testTreatPartialArrayWritesAsKills() = false; }
};

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(DataflowLiveness, NestedLoopsReachFixpoint) {
  // `s` is accumulated in the inner loop and fed back through `a[i]`: both
  // must stay live across every iteration boundary, which only a converged
  // loop fixpoint discovers.
  Ctx c(R"(int a[8]; int main() {
    int s = 0;
    for (int i = 0; i < 8; i = i + 1) {
      for (int j = 0; j < 8; j = j + 1) { s = s + a[j]; }
      a[i] = s;
    }
    return s;
  })");
  const std::set<std::string>& afterDecl = c.dfa->liveAfter(c.mainStmt(0));
  EXPECT_TRUE(afterDecl.count("s")) << "read by the inner loop";
  EXPECT_TRUE(afterDecl.count("a")) << "read by the inner loop";
  const std::set<std::string>& afterLoop = c.dfa->liveAfter(c.mainStmt(1));
  EXPECT_TRUE(afterLoop.count("s")) << "read by the return";
  const std::set<std::string>& exposed = c.dfa->upwardExposed(c.mainStmt(1));
  EXPECT_TRUE(exposed.count("s")) << "inner loop reads s before the first overwrite";
  EXPECT_TRUE(exposed.count("a")) << "a[j] is read before a[i] is rewritten";
}

TEST(DataflowLiveness, IfElseJoinUnionsBranches) {
  Ctx c(R"(int g[8]; int main() {
    int x = 1;
    int y = 2;
    if (g[0] > 0) { g[1] = x; } else { g[2] = 3; }
    y = 5;
    g[3] = y;
    return g[3];
  })");
  const std::set<std::string>& afterY = c.dfa->liveAfter(c.mainStmt(1));
  EXPECT_TRUE(afterY.count("x")) << "read in the then-branch only: join keeps it";
  EXPECT_FALSE(afterY.count("y")) << "overwritten before any read";
  const std::set<std::string>& afterIf = c.dfa->liveAfter(c.mainStmt(2));
  EXPECT_FALSE(afterIf.count("x")) << "never read again after the if";
}

TEST(DataflowLiveness, CoveringWriteKillsPartialWriteDoesNot) {
  Ctx c(R"(int a[8]; int b[8]; int main() {
    a[0] = 7;
    for (int i = 0; i < 8; i = i + 1) { a[i] = 1; }
    b[0] = 7;
    b[1] = 8;
    return a[3] + b[3];
  })");
  EXPECT_FALSE(c.dfa->liveAfter(c.mainStmt(0)).count("a"))
      << "the must-cover sweep overwrites every element of a";
  EXPECT_TRUE(c.dfa->liveAfter(c.mainStmt(1)).count("a")) << "read by the return";
  EXPECT_TRUE(c.dfa->liveAfter(c.mainStmt(2)).count("b"))
      << "b[1] = 8 is a partial write: b[0] survives it";
}

TEST(DataflowLiveness, FaultInjectionKnobIsObservablyUnsound) {
  const char* src = R"(int b[8]; int main() {
    b[0] = 7;
    b[1] = 8;
    return b[0];
  })";
  {
    Ctx sound(src);
    EXPECT_TRUE(sound.dfa->liveAfter(sound.mainStmt(0)).count("b"));
  }
  {
    KnobGuard knob;
    Ctx buggy(src);
    EXPECT_FALSE(buggy.dfa->liveAfter(buggy.mainStmt(0)).count("b"))
        << "the deliberate fault must actually change the analysis, or the "
           "liveness-soundness falsifiability check proves nothing";
  }
}

// ---------------------------------------------------------------------------
// Reaching definitions / lint diagnostics
// ---------------------------------------------------------------------------

TEST(DataflowDiagnostics, CallEffectsKeepGlobalStoresAlive) {
  // helperRead reads gs through a call: the first store is NOT dead. The
  // second store is never observed before main returns, so it is.
  Ctx c(R"(int gs;
    int helperRead() { return gs; }
    int main() {
      gs = 1;
      int x = helperRead();
      gs = 2;
      return x;
    })");
  const auto dead = c.findings(FlowDiagnostic::Kind::DeadStore, "gs");
  ASSERT_EQ(dead.size(), 1u) << "exactly the final store is dead";
  EXPECT_EQ(dead[0].loc.line, c.mainStmt(2).loc.line);
  EXPECT_EQ(dead[0].function, "main");
}

TEST(DataflowDiagnostics, NonMainFunctionsKeepFinalGlobalStores) {
  // A non-main function's global writes outlive it (main may read them), so
  // its final store is not dead — unlike main's.
  Ctx c(R"(int gs;
    void setup() { gs = 3; }
    int main() {
      setup();
      return gs;
    })");
  EXPECT_TRUE(c.findings(FlowDiagnostic::Kind::DeadStore, "gs").empty());
}

TEST(DataflowDiagnostics, UninitializedReadThroughJoin) {
  Ctx c(R"(int g[8]; int main() {
    int x;
    if (g[0] > 0) { x = 1; }
    int y = x + 1;
    g[1] = y;
    return g[1];
  })");
  const auto uninit = c.findings(FlowDiagnostic::Kind::UninitializedRead, "x");
  ASSERT_EQ(uninit.size(), 1u) << "only one branch initializes x";
  EXPECT_EQ(uninit[0].loc.line, c.mainStmt(2).loc.line);
}

TEST(DataflowDiagnostics, WriteOnlyTemporaryIsReported) {
  Ctx c(R"(int g[8]; int main() {
    int z = 0;
    for (int i = 0; i < 8; i = i + 1) { z = g[i]; }
    return g[0];
  })");
  const auto wo = c.findings(FlowDiagnostic::Kind::WriteOnly, "z");
  ASSERT_EQ(wo.size(), 1u);
  EXPECT_EQ(wo[0].function, "main");
}

TEST(DataflowDiagnostics, CleanProgramHasNoFindings) {
  Ctx c(R"(int a[8]; int main() {
    int s = 0;
    for (int i = 0; i < 8; i = i + 1) { a[i] = i; s = s + a[i]; }
    return s;
  })");
  EXPECT_TRUE(c.dfa->diagnostics().empty());
}

// ---------------------------------------------------------------------------
// Constant propagation
// ---------------------------------------------------------------------------

TEST(DataflowConstProp, LatticeTopConstAndBottom) {
  Ctx c(R"(int a[16]; int main() {
    int n = 4;
    int m = n + 2;
    int u = a[0];
    int t = 0;
    if (a[1] > 0) { t = 1; } else { t = 2; }
    for (int i = 0; i < m; i = i + 1) { a[i] = t + u; }
    return a[0];
  })");
  const auto* env = c.dfa->constEnvAt(c.mainLoop(5));
  ASSERT_NE(env, nullptr);
  ASSERT_TRUE(env->count("n"));
  EXPECT_EQ(env->at("n"), 4);
  ASSERT_TRUE(env->count("m")) << "constants propagate through arithmetic";
  EXPECT_EQ(env->at("m"), 6);
  EXPECT_FALSE(env->count("u")) << "array loads are unknown (top)";
  EXPECT_FALSE(env->count("t")) << "branch join of 1 and 2 is not-a-constant";
  EXPECT_EQ(staticTripCount(c.mainLoop(5), env), std::optional<long long>(6))
      << "the folded bound sharpens the trip count";
  EXPECT_EQ(staticTripCount(c.mainLoop(5)), std::nullopt)
      << "without the environment the symbolic bound stays unknown";
}

TEST(DataflowConstProp, FoldsConstantConditions) {
  Ctx c(R"(int a[16]; int main() {
    int n = 2;
    if (n < 3) { n = 8; } else { n = 1; }
    for (int i = 0; i < n; i = i + 1) { a[i] = 1; }
    return a[0];
  })");
  const auto* env = c.dfa->constEnvAt(c.mainLoop(2));
  ASSERT_NE(env, nullptr);
  ASSERT_TRUE(env->count("n")) << "the condition is constant: only one branch runs";
  EXPECT_EQ(env->at("n"), 8);
}

TEST(DataflowConstProp, LoopVariantValuesAreDropped) {
  Ctx c(R"(int a[16]; int main() {
    int k = 3;
    for (int i = 0; i < 4; i = i + 1) { k = k + 1; }
    for (int i = 0; i < 8; i = i + 1) { a[i] = k; }
    return a[0];
  })");
  const auto* env1 = c.dfa->constEnvAt(c.mainLoop(1));
  if (env1 != nullptr)
    EXPECT_TRUE(env1->count("k")) << "k is still 3 at the first loop's head";
  const auto* env2 = c.dfa->constEnvAt(c.mainLoop(2));
  if (env2 != nullptr)
    EXPECT_FALSE(env2->count("k")) << "the first loop made k unknown";
}

TEST(DataflowConstProp, SharpensInternalSections) {
  // The internal section analysis must see the folded bound: a loop over
  // [0, m) with constant m is a must-cover write of a[0..5].
  Ctx c(R"(int a[6]; int main() {
    int m = 6;
    for (int i = 0; i < m; i = i + 1) { a[i] = 1; }
    return a[0];
  })");
  const AccessSummary& s = c.dfa->sections().of(c.mainStmt(1));
  ASSERT_TRUE(s.writes.count("a"));
  const ArraySection& hull = s.writes.at("a").hull;
  ASSERT_FALSE(hull.whole) << "constprop folds the bound so the hull is exact";
  ASSERT_EQ(hull.dims.size(), 1u);
  EXPECT_EQ(hull.dims[0].lo, 0);
  EXPECT_EQ(hull.dims[0].hi, 5);
  EXPECT_TRUE(s.writes.at("a").mustCover());
}

}  // namespace
}  // namespace hetpar::ir
