#include "hetpar/ir/sections.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

using frontend::analyze;
using frontend::parseProgram;

struct Ctx {
  frontend::Program program;
  frontend::SemaResult sema;
  std::unique_ptr<SectionAnalysis> sa;

  explicit Ctx(const char* src) : program(parseProgram(src)), sema(analyze(program)) {
    sa = std::make_unique<SectionAnalysis>(program, sema);
  }
  const frontend::Stmt& mainStmt(std::size_t i) const {
    return *program.findFunction("main")->body[i];
  }
  const frontend::Type& typeOf(const char* name) const { return sema.globals.at(name); }
};

void expectDim(const ArraySection& s, long long lo, long long hi, long long stride) {
  ASSERT_FALSE(s.whole);
  ASSERT_EQ(s.dims.size(), 1u);
  EXPECT_EQ(s.dims[0].lo, lo);
  EXPECT_EQ(s.dims[0].hi, hi);
  EXPECT_EQ(s.dims[0].stride, stride);
}

TEST(Sections, LoopWriteWidensOverIvRange) {
  Ctx c(R"(int a[16]; int main() {
    for (int i = 0; i < 16; i = i + 1) { a[i] = i; }
    return a[3];
  })");
  const AccessSummary& s = c.sa->of(c.mainStmt(0));
  ASSERT_TRUE(s.writes.count("a"));
  expectDim(s.writes.at("a").hull, 0, 15, 1);
  EXPECT_TRUE(s.writes.at("a").mustCover()) << "unconditional unit-stride sweep";
  EXPECT_FALSE(s.reads.count("a")) << "no pseudo-use: the loop never reads a";
}

TEST(Sections, OffsetAndStrideSubscripts) {
  Ctx c(R"(int a[16]; int b[16]; int main() {
    for (int i = 0; i < 8; i = i + 1) { a[i + 2] = i; }
    for (int i = 0; i < 8; i = i + 1) { b[2 * i] = a[2 * i + 1]; }
    return b[0];
  })");
  expectDim(c.sa->of(c.mainStmt(0)).writes.at("a").hull, 2, 9, 1);
  const AccessSummary& s1 = c.sa->of(c.mainStmt(1));
  expectDim(s1.writes.at("b").hull, 0, 14, 2);
  expectDim(s1.reads.at("a").hull, 1, 15, 2);
}

TEST(Sections, NonAffineSubscriptFallsBackToTop) {
  Ctx c(R"(int a[16]; int main() {
    for (int i = 0; i < 4; i = i + 1) { a[i * i] = i; }
    return a[0];
  })");
  const SectionInfo& w = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_TRUE(w.hull.whole) << "quadratic subscripts take the whole-object fallback";
  EXPECT_FALSE(w.mustCover());
}

TEST(Sections, ConditionalWriteIsNotDefinite) {
  Ctx c(R"(int a[16]; int main() {
    for (int i = 0; i < 16; i = i + 1) { if (i > 3) { a[i] = i; } }
    return a[5];
  })");
  const SectionInfo& w = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_FALSE(w.definite) << "guarded writes cannot kill earlier producers";
  EXPECT_FALSE(w.mustCover());
}

TEST(Sections, IvMutatingBodyDropsWidening) {
  // The body bumps i past the canonical range: the only touched element is
  // a[7], so a hull of [0:2] would be unsound. The IV range must be dropped
  // and the write demoted to the indefinite whole-object fallback.
  Ctx c(R"(int a[16]; int main() {
    for (int i = 0; i < 3; i = i + 1) { i = i + 7; a[i] = 1; }
    return a[0];
  })");
  const SectionInfo& w = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_TRUE(w.hull.whole) << "IV-mutating body must not widen over ivRangeOf";
  EXPECT_FALSE(w.definite);
  EXPECT_FALSE(w.mustCover());
}

TEST(Sections, CalleeWritingGlobalIvDropsWidening) {
  Ctx c(R"(int i; int a[16];
    void bump() { i = i + 7; }
    int main() {
      for (i = 0; i < 16; i = i + 1) { a[i] = 1; bump(); }
      return a[0];
    })");
  const SectionInfo& w = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_TRUE(w.hull.whole) << "a callee writing the global IV breaks the widening";
  EXPECT_FALSE(w.mustCover());
}

TEST(Sections, InnerWriteToOuterIvDropsOuterWidening) {
  Ctx c(R"(int a[16]; int main() {
    for (int i = 0; i < 4; i = i + 1) {
      for (int j = 0; j < 2; j = j + 1) { i = i + 1; }
      a[i] = 1;
    }
    return a[0];
  })");
  const SectionInfo& w = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_TRUE(w.hull.whole) << "nested write to the outer IV breaks the widening";
  EXPECT_FALSE(w.mustCover());
}

TEST(Sections, OutOfBoundsConstantSubscriptIsTop) {
  Ctx c(R"(int a[16]; int main() {
    a[16] = 1;
    a[0 - 1] = 2;
    a[15] = 3;
    return a[0];
  })");
  const SectionInfo& past = c.sa->of(c.mainStmt(0)).writes.at("a");
  EXPECT_TRUE(past.hull.whole) << "clamping would fabricate a kill of a[15]";
  EXPECT_FALSE(past.mustCover());
  const SectionInfo& neg = c.sa->of(c.mainStmt(1)).writes.at("a");
  EXPECT_TRUE(neg.hull.whole);
  EXPECT_FALSE(neg.mustCover());
  const SectionInfo& last = c.sa->of(c.mainStmt(2)).writes.at("a");
  expectDim(last.hull, 15, 15, 1);
  EXPECT_TRUE(last.mustCover()) << "in-bounds boundary constants stay exact";
}

TEST(Sections, InterproceduralParamSections) {
  Ctx c(R"(
    int dst[16];
    void fillHalf(int v[16]) { for (int i = 0; i < 8; i = i + 1) { v[i] = i; } }
    int main() { fillHalf(dst); return dst[0]; }
  )");
  const FunctionSectionEffects& fx = c.sa->effects(*c.program.findFunction("fillHalf"));
  ASSERT_TRUE(fx.paramWrites.count(0));
  expectDim(fx.paramWrites.at(0).hull, 0, 7, 1);
  // The call site sees the callee's section on the argument array, not ⊤.
  const AccessSummary& s = c.sa->of(c.mainStmt(0));
  ASSERT_TRUE(s.writes.count("dst"));
  expectDim(s.writes.at("dst").hull, 0, 7, 1);
}

TEST(Sections, OverlapAlgebra) {
  Ctx c("double a[16]; int main() { return 0; }");
  const frontend::Type& t = c.typeOf("a");
  const ArraySection low{false, {{0, 7, 1}}};
  const ArraySection high{false, {{8, 15, 1}}};
  const ArraySection evens{false, {{0, 14, 2}}};
  const ArraySection odds{false, {{1, 15, 2}}};
  const ArraySection whole{};

  EXPECT_FALSE(SectionAnalysis::mayOverlap(low, high, t)) << "disjoint ranges";
  EXPECT_TRUE(SectionAnalysis::mayOverlap(low, evens, t));
  EXPECT_FALSE(SectionAnalysis::mayOverlap(evens, odds, t)) << "GCD stride test";
  EXPECT_TRUE(SectionAnalysis::mayOverlap(whole, low, t)) << "⊤ overlaps everything";

  EXPECT_EQ(SectionAnalysis::sectionBytes(low, t), 64);
  EXPECT_EQ(SectionAnalysis::sectionBytes(whole, t), 128);
  EXPECT_EQ(SectionAnalysis::overlapBytes(low, high, t), 0);
  EXPECT_LE(SectionAnalysis::overlapBytes(low, whole, t), 64)
      << "overlap never exceeds the smaller section";
}

TEST(Sections, CoverageAlgebra) {
  Ctx c("double a[16]; int main() { return 0; }");
  const frontend::Type& t = c.typeOf("a");
  const SectionInfo full{ArraySection{false, {{0, 15, 1}}}, true, true};
  const SectionInfo sparse{ArraySection{false, {{0, 14, 2}}}, true, true};
  const SectionInfo indefinite{ArraySection{false, {{0, 15, 1}}}, false, true};
  const ArraySection middle{false, {{3, 9, 1}}};

  EXPECT_TRUE(SectionAnalysis::covers(full, middle, t));
  EXPECT_FALSE(SectionAnalysis::covers(sparse, middle, t)) << "stride 2 misses elements";
  EXPECT_FALSE(SectionAnalysis::covers(indefinite, middle, t))
      << "a conditional write never covers";
}

TEST(Sections, TwoDimensionalQuadrants) {
  Ctx c("double c[16][16]; int main() { return 0; }");
  const frontend::Type& t = c.typeOf("c");
  const ArraySection nw{false, {{0, 7, 1}, {0, 7, 1}}};
  const ArraySection ne{false, {{0, 7, 1}, {8, 15, 1}}};
  const ArraySection sw{false, {{8, 15, 1}, {0, 7, 1}}};

  EXPECT_FALSE(SectionAnalysis::mayOverlap(nw, ne, t)) << "disjoint in the column dim";
  EXPECT_FALSE(SectionAnalysis::mayOverlap(nw, sw, t)) << "disjoint in the row dim";
  EXPECT_FALSE(SectionAnalysis::mayOverlap(ne, sw, t));
  EXPECT_EQ(SectionAnalysis::sectionBytes(nw, t), 512);
  EXPECT_EQ(SectionAnalysis::toString(nw), "[0:7:1][0:7:1]");
}

}  // namespace
}  // namespace hetpar::ir
