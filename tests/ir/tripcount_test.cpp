#include "hetpar/ir/tripcount.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

const frontend::ForStmt& firstLoop(const frontend::Program& p) {
  for (const auto& s : p.findFunction("main")->body)
    if (s->kind == frontend::StmtKind::For)
      return static_cast<const frontend::ForStmt&>(*s);
  throw std::runtime_error("no loop");
}

std::optional<long long> tripOf(const char* header) {
  static std::vector<std::unique_ptr<frontend::Program>> keepAlive;
  std::string src = std::string("int main() { int s = 0; ") + header +
                    " { s = s + 1; } return s; }";
  keepAlive.push_back(std::make_unique<frontend::Program>(frontend::parseProgram(src)));
  return staticTripCount(firstLoop(*keepAlive.back()));
}

TEST(TripCount, CanonicalAscending) {
  EXPECT_EQ(tripOf("for (int i = 0; i < 10; i = i + 1)"), 10);
  EXPECT_EQ(tripOf("for (int i = 0; i <= 10; i = i + 1)"), 11);
  EXPECT_EQ(tripOf("for (int i = 2; i < 10; i = i + 1)"), 8);
}

TEST(TripCount, NonUnitStep) {
  EXPECT_EQ(tripOf("for (int i = 0; i < 10; i = i + 3)"), 4);
  EXPECT_EQ(tripOf("for (int i = 0; i < 9; i = i + 3)"), 3);
}

TEST(TripCount, Descending) {
  EXPECT_EQ(tripOf("for (int i = 10; i > 0; i = i - 1)"), 10);
  EXPECT_EQ(tripOf("for (int i = 10; i >= 0; i = i - 2)"), 6);
}

TEST(TripCount, ZeroTrip) {
  EXPECT_EQ(tripOf("for (int i = 5; i < 5; i = i + 1)"), 0);
  EXPECT_EQ(tripOf("for (int i = 9; i < 5; i = i + 1)"), 0);
}

TEST(TripCount, AssignInitForm) {
  // Canonical assign-init inside the for header:
  static frontend::Program p = frontend::parseProgram(
      "int main() { int i; int s = 0; for (i = 0; i < 7; i = i + 1) { s = s + 1; } return s; }");
  EXPECT_EQ(staticTripCount(firstLoop(p)), 7);
}

TEST(TripCount, NonConstantBoundsRejected) {
  static frontend::Program p = frontend::parseProgram(
      "int main() { int n = 10; int s = 0; for (int i = 0; i < n; i = i + 1) { s = s + 1; } return s; }");
  EXPECT_EQ(staticTripCount(firstLoop(p)), std::nullopt);
}

TEST(TripCount, WrongDirectionRejected) {
  EXPECT_EQ(tripOf("for (int i = 0; i < 10; i = i - 1)"), std::nullopt);
  EXPECT_EQ(tripOf("for (int i = 10; i > 0; i = i + 1)"), std::nullopt);
}

TEST(EvalConstInt, Arithmetic) {
  auto eval = [](const char* expr) {
    std::string src = std::string("int main() { int x = ") + expr + "; return x; }";
    static std::vector<std::unique_ptr<frontend::Program>> keepAlive;
    keepAlive.push_back(std::make_unique<frontend::Program>(frontend::parseProgram(src)));
    const auto& d = static_cast<const frontend::DeclStmt&>(
        *keepAlive.back()->findFunction("main")->body[0]);
    return evalConstInt(*d.init);
  };
  EXPECT_EQ(eval("2 + 3 * 4"), 14);
  EXPECT_EQ(eval("-(5 - 2)"), -3);
  EXPECT_EQ(eval("20 / 3"), 6);
  EXPECT_EQ(eval("20 % 3"), 2);
  EXPECT_EQ(eval("1 / 0"), std::nullopt);
  EXPECT_EQ(eval("2 * (1 + 1)"), 4);
}

}  // namespace
}  // namespace hetpar::ir
