#include "hetpar/ir/affine.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::ir {
namespace {

using frontend::DeclStmt;
using frontend::ExprKind;
using frontend::ForStmt;
using frontend::IndexExpr;
using frontend::StmtKind;

/// Parses `a[<subscript>]` in a tiny harness program and returns the lifted
/// form of the subscript expression.
std::optional<AffineForm> lift(const std::string& subscript) {
  const std::string src =
      "int a[1024]; int main() { int i = 3; int j = 4; int x = a[" + subscript +
      "]; return x + j; }";
  static std::vector<frontend::Program> keepAlive;  // forms point into the AST
  keepAlive.push_back(frontend::parseProgram(src));
  const frontend::Program& program = keepAlive.back();
  const auto& decl = static_cast<const DeclStmt&>(*program.findFunction("main")->body[2]);
  EXPECT_EQ(decl.init->kind, ExprKind::Index);
  const auto& index = static_cast<const IndexExpr&>(*decl.init);
  return liftAffine(*index.indices[0]);
}

/// Parses a `for` loop as main's first statement and returns its IV range.
std::optional<std::pair<std::string, IvRange>> range(const std::string& loop) {
  static std::vector<frontend::Program> keepAlive;
  keepAlive.push_back(frontend::parseProgram("int main() { " + loop + " return 0; }"));
  const frontend::Stmt& s = *keepAlive.back().findFunction("main")->body[0];
  EXPECT_EQ(s.kind, StmtKind::For);
  return ivRangeOf(static_cast<const ForStmt&>(s));
}

TEST(Affine, ConstantSubscript) {
  auto f = lift("7");
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->isConstant());
  EXPECT_EQ(f->c0, 7);
  EXPECT_EQ(f->c1, 0);
}

TEST(Affine, PlainVariable) {
  auto f = lift("i");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->iv, "i");
  EXPECT_EQ(f->c0, 0);
  EXPECT_EQ(f->c1, 1);
}

TEST(Affine, OffsetsBothSides) {
  auto plus = lift("i + 3");
  ASSERT_TRUE(plus.has_value());
  EXPECT_EQ(plus->c0, 3);
  EXPECT_EQ(plus->c1, 1);

  auto flipped = lift("3 + i");
  ASSERT_TRUE(flipped.has_value());
  EXPECT_EQ(flipped->c0, 3);
  EXPECT_EQ(flipped->c1, 1);

  auto minus = lift("i - 1");
  ASSERT_TRUE(minus.has_value());
  EXPECT_EQ(minus->c0, -1);
  EXPECT_EQ(minus->c1, 1);
}

TEST(Affine, ScaledVariable) {
  auto twice = lift("2 * i");
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(twice->c1, 2);
  EXPECT_EQ(twice->c0, 0);

  auto composed = lift("2 * i + 1");
  ASSERT_TRUE(composed.has_value());
  EXPECT_EQ(composed->c1, 2);
  EXPECT_EQ(composed->c0, 1);

  auto negated = lift("0 - i");
  ASSERT_TRUE(negated.has_value());
  EXPECT_EQ(negated->c1, -1);
}

TEST(Affine, RejectsNonAffineForms) {
  EXPECT_FALSE(lift("i * i").has_value()) << "quadratic";
  EXPECT_FALSE(lift("i + j").has_value()) << "two variables";
  EXPECT_FALSE(lift("i / 2").has_value()) << "division";
  EXPECT_FALSE(lift("a[i]").has_value()) << "array read inside subscript";
}

TEST(Affine, CanonicalLoopRange) {
  auto r = range("for (int i = 0; i < 10; i = i + 1) { int t = i; }");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, "i");
  EXPECT_EQ(r->second.first, 0);
  EXPECT_EQ(r->second.last, 9);
  EXPECT_EQ(r->second.step, 1);
  EXPECT_EQ(r->second.lo(), 0);
  EXPECT_EQ(r->second.hi(), 9);
}

TEST(Affine, StridedAndDescendingLoops) {
  auto strided = range("for (int i = 0; i < 10; i = i + 2) { int t = i; }");
  ASSERT_TRUE(strided.has_value());
  EXPECT_EQ(strided->second.first, 0);
  EXPECT_EQ(strided->second.last, 8);
  EXPECT_EQ(strided->second.step, 2);

  auto down = range("for (int i = 9; i > 0; i = i - 1) { int t = i; }");
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->second.first, 9);
  EXPECT_EQ(down->second.last, 1);
  EXPECT_EQ(down->second.step, -1);
  EXPECT_EQ(down->second.lo(), 1);
  EXPECT_EQ(down->second.hi(), 9);
}

TEST(Affine, NonCanonicalLoopsYieldNoRange) {
  EXPECT_FALSE(range("for (int i = 0; i < 10; i = i * 2) { int t = i; }").has_value());
  EXPECT_FALSE(range("for (int i = 5; i < 5; i = i + 1) { int t = i; }").has_value())
      << "zero-trip loops sweep nothing";
}

}  // namespace
}  // namespace hetpar::ir
