// Validates the ten evaluation kernels: they parse, run, produce stable
// checksums, build valid HTGs, and expose the parallelism profile each
// kernel is designed to have.
#include "hetpar/benchsuite/suite.hpp"

#include <gtest/gtest.h>

#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::benchsuite {
namespace {

TEST(Suite, HasTheTenPaperBenchmarks) {
  const auto& all = suite();
  ASSERT_EQ(all.size(), 10u);
  const char* expected[] = {"adpcm_enc", "bound_value", "compress",  "edge_detect",
                            "filterbank", "fir_256",     "iir_4",     "latnrm_32",
                            "mult_10",    "spectral"};
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(all[i].name, expected[i]);
}

TEST(Suite, FindByName) {
  EXPECT_EQ(find("compress").name, "compress");
  EXPECT_THROW(find("nope"), Error);
}

class EveryBenchmark : public ::testing::TestWithParam<int> {};

TEST_P(EveryBenchmark, ParsesRunsAndValidates) {
  const Benchmark& b = suite()[static_cast<std::size_t>(GetParam())];
  htg::FrontendBundle bundle = htg::buildFromSource(b.source);
  EXPECT_TRUE(htg::validate(bundle.graph).empty()) << b.name;
  EXPECT_NE(bundle.profile.exitValue, 0) << b.name << ": checksum must be nonzero";
  EXPECT_GT(bundle.profile.totalOps, 10'000.0) << b.name << ": workload too small";
  EXPECT_LT(bundle.profile.totalOps, 50'000'000.0) << b.name << ": workload too large";
}

TEST_P(EveryBenchmark, ChecksumIsDeterministic) {
  const Benchmark& b = suite()[static_cast<std::size_t>(GetParam())];
  htg::FrontendBundle a = htg::buildFromSource(b.source);
  htg::FrontendBundle c = htg::buildFromSource(b.source);
  EXPECT_EQ(a.profile.exitValue, c.profile.exitValue) << b.name;
}

INSTANTIATE_TEST_SUITE_P(All, EveryBenchmark, ::testing::Range(0, 10),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return suite()[static_cast<std::size_t>(info.param)].name;
                         });

// The kernels were designed with specific parallelism profiles; assert the
// DOALL classification sees them that way.
int countDoallLoops(const htg::Graph& g) {
  int count = 0;
  g.forEach([&](const htg::Node& n) {
    if (n.kind == htg::NodeKind::Loop && n.doall) ++count;
  });
  return count;
}

TEST(Suite, DoallProfiles) {
  struct Expectation {
    const char* name;
    int minDoall;
  };
  const Expectation expectations[] = {
      {"adpcm_enc", 2},    // init frames + encode frames
      {"bound_value", 2},  // both sweep loops (time loop is carried)
      {"compress", 3},     // basis + blocks + dct + quant loops
      {"edge_detect", 2},  // init + sobel rows
      {"filterbank", 2},   // banks + init loops
      {"fir_256", 2},      // taps init + sample loop
      {"iir_4", 1},        // channel loop
      {"latnrm_32", 1},    // frame loop
      {"mult_10", 2},      // init + row loop
      {"spectral", 2},     // window + bins
  };
  for (const auto& e : expectations) {
    htg::FrontendBundle bundle = htg::buildFromSource(find(e.name).source);
    EXPECT_GE(countDoallLoops(bundle.graph), e.minDoall) << e.name;
  }
}

TEST(Suite, SerialLoopsStaySerial) {
  // boundary value's outer time loop and spectral's smoothing must NOT be
  // classified DOALL.
  {
    htg::FrontendBundle b = htg::buildFromSource(find("bound_value").source);
    bool sawSerialLoop = false;
    b.graph.forEach([&](const htg::Node& n) {
      if (n.kind == htg::NodeKind::Loop && !n.doall && n.iterationsPerExec >= 5.0)
        sawSerialLoop = true;
    });
    EXPECT_TRUE(sawSerialLoop) << "the relaxation time loop is carried";
  }
  {
    htg::FrontendBundle s = htg::buildFromSource(find("spectral").source);
    // The recursive smoothing loop reads smooth[k-1]: must be serial.
    bool foundSmoothing = false;
    s.graph.forEach([&](const htg::Node& n) {
      if (n.kind == htg::NodeKind::Loop && !n.doall &&
          n.doallReason.find("smooth") != std::string::npos)
        foundSmoothing = true;
    });
    EXPECT_TRUE(foundSmoothing);
  }
}

TEST(Suite, ReductionsDetectedInChecksumLoops) {
  htg::FrontendBundle b = htg::buildFromSource(find("fir_256").source);
  bool sawReduction = false;
  b.graph.forEach([&](const htg::Node& n) {
    if (n.kind == htg::NodeKind::Loop && n.doall && !n.reductionVars.empty())
      sawReduction = true;
  });
  EXPECT_TRUE(sawReduction) << "the final accumulation is a sum reduction";
}

}  // namespace
}  // namespace hetpar::benchsuite
