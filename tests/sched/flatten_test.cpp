// Flattener + simulator integration: chosen solutions must become valid
// task graphs whose simulated behavior matches the planning predictions.
#include "hetpar/sched/flatten.hpp"

#include <gtest/gtest.h>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/sim/mpsoc.hpp"

namespace hetpar::sched {
namespace {

const char* kProgram = R"(
  int a[8192];
  int b[8192];
  int main() {
    for (int i = 0; i < 8192; i = i + 1) { a[i] = i % 17; }
    for (int i = 0; i < 8192; i = i + 1) { b[i] = a[i] * a[i] + 3; }
    int s = 0;
    for (int i = 0; i < 8192; i = i + 1) { s = s + b[i]; }
    return s;
  }
)";

struct Fixture {
  htg::FrontendBundle bundle;
  platform::Platform pf;
  std::unique_ptr<cost::TimingModel> timing;
  parallel::ParallelizeOutcome outcome;

  explicit Fixture(platform::Platform p) : bundle(htg::buildFromSource(kProgram)), pf(std::move(p)) {
    timing = std::make_unique<cost::TimingModel>(pf);
    parallel::Parallelizer tool(bundle.graph, *timing);
    outcome = tool.run();
  }
};

Fixture& sharedFixture() {
  static Fixture f(platform::platformA());
  return f;
}

TEST(Flatten, SequentialReferenceMatchesSubtreeOps) {
  Fixture& f = sharedFixture();
  const int mainCore = f.pf.firstCoreOfClass(f.pf.slowestClass());
  FlattenResult seq = flattenSequential(f.bundle.graph, *f.timing, mainCore);
  ASSERT_EQ(seq.graph.tasks.size(), 1u);
  const double expected =
      f.timing->seconds(f.pf.slowestClass(), f.bundle.graph.subtreeOpsPerExec(f.bundle.graph.root()));
  EXPECT_NEAR(seq.graph.tasks[0].computeSeconds, expected, expected * 1e-9);
  EXPECT_DOUBLE_EQ(sim::simulate(seq.graph).makespanSeconds, seq.graph.tasks[0].computeSeconds);
}

TEST(Flatten, ParallelSolutionProducesValidGraph) {
  Fixture& f = sharedFixture();
  const auto best = f.outcome.bestRoot(f.bundle.graph, f.pf.slowestClass());
  FlattenResult flat = flatten(f.bundle.graph, f.outcome.table, best, *f.timing,
                               f.pf.firstCoreOfClass(f.pf.slowestClass()));
  EXPECT_TRUE(flat.graph.validate().empty());
  EXPECT_GT(flat.graph.tasks.size(), 1u);
  EXPECT_GE(flat.finalTask, 0);
}

TEST(Flatten, WorkIsConserved) {
  // Total compute across all tasks must be close to the sequential work
  // executed at the assigned cores' speeds: chunked loops split exactly,
  // overheads add a little.
  Fixture& f = sharedFixture();
  const auto best = f.outcome.bestRoot(f.bundle.graph, f.pf.slowestClass());
  FlattenResult flat = flatten(f.bundle.graph, f.outcome.table, best, *f.timing,
                               f.pf.firstCoreOfClass(f.pf.slowestClass()));
  const double totalOps = f.bundle.graph.subtreeOpsPerExec(f.bundle.graph.root());
  // Lower bound: all work on the fastest class. Upper: all on the slowest.
  const double fastest = f.timing->seconds(f.pf.fastestClass(), totalOps);
  const double slowest = f.timing->seconds(f.pf.slowestClass(), totalOps);
  const double compute = flat.graph.totalComputeSeconds();
  EXPECT_GT(compute, 0.8 * fastest);
  EXPECT_LT(compute, 1.2 * slowest);
}

TEST(Flatten, SimulatedTimeTracksIlpPrediction) {
  Fixture& f = sharedFixture();
  const auto& set = f.outcome.table.at(f.bundle.graph.root());
  const int bestIdx = set.bestFor(f.pf.slowestClass());
  const double predicted = set.at(bestIdx).timeSeconds;
  FlattenResult flat = flatten(f.bundle.graph, f.outcome.table,
                               {f.bundle.graph.root(), bestIdx}, *f.timing,
                               f.pf.firstCoreOfClass(f.pf.slowestClass()));
  const double simulated = sim::simulate(flat.graph).makespanSeconds;
  // The DES adds bus serialization the ILP's additive model ignores, so
  // allow a generous band -- but the two must agree to ~25%.
  EXPECT_NEAR(simulated, predicted, predicted * 0.25);
}

TEST(Flatten, HeterogeneousSpeedupShapeOnPlatformA) {
  Fixture& f = sharedFixture();
  const int mainCore = f.pf.firstCoreOfClass(f.pf.slowestClass());
  const double seq =
      sim::simulate(flattenSequential(f.bundle.graph, *f.timing, mainCore).graph).makespanSeconds;
  const auto best = f.outcome.bestRoot(f.bundle.graph, f.pf.slowestClass());
  FlattenResult flat = flatten(f.bundle.graph, f.outcome.table, best, *f.timing, mainCore);
  const double par = sim::simulate(flat.graph).makespanSeconds;
  const double speedup = seq / par;
  EXPECT_GT(speedup, 5.0);
  EXPECT_LT(speedup, 13.5);
}

TEST(Flatten, ObliviousRoundRobinIgnoresClasses) {
  // The homogeneous baseline's tasks land round-robin; on platform A's
  // scenario II this must cost performance vs the heterogeneous mapping.
  htg::FrontendBundle bundle = htg::buildFromSource(kProgram);
  const platform::Platform pf = platform::platformA();
  const cost::TimingModel timing(pf);
  const int mainCore = pf.firstCoreOfClass(pf.fastestClass());
  const double seq =
      sim::simulate(flattenSequential(bundle.graph, timing, mainCore).graph).makespanSeconds;

  parallel::HomogeneousRun homog =
      parallel::runHomogeneousBaseline(bundle.graph, pf, pf.fastestClass());
  FlattenOptions oblivious;
  oblivious.classAwareAllocation = false;
  FlattenResult flat = flatten(bundle.graph, homog.outcome.table,
                               homog.outcome.bestRoot(bundle.graph, 0), timing, mainCore,
                               oblivious);
  EXPECT_TRUE(flat.graph.validate().empty());
  const double par = sim::simulate(flat.graph).makespanSeconds;
  // Paper Figure 7(b): the heterogeneity-oblivious tool lands below 1x.
  EXPECT_LT(seq / par, 1.05);
}

TEST(Flatten, SpawnOverheadAppearsInGraph) {
  Fixture& f = sharedFixture();
  const auto best = f.outcome.bestRoot(f.bundle.graph, f.pf.slowestClass());
  FlattenResult flat = flatten(f.bundle.graph, f.outcome.table, best, *f.timing,
                               f.pf.firstCoreOfClass(f.pf.slowestClass()));
  int spawnish = 0;
  for (const SimTask& t : flat.graph.tasks)
    if (t.label.find("spawn") != std::string::npos ||
        t.label.find("chunk") != std::string::npos)
      ++spawnish;
  EXPECT_GT(spawnish, 0);
}

}  // namespace
}  // namespace hetpar::sched
