#include "hetpar/sched/taskgraph.hpp"

#include <gtest/gtest.h>

namespace hetpar::sched {
namespace {

SimTask task(int core, double secs, std::vector<int> preds = {},
             std::vector<std::pair<int, double>> transfers = {}) {
  SimTask t;
  t.core = core;
  t.computeSeconds = secs;
  t.preds = std::move(preds);
  t.transfers = std::move(transfers);
  return t;
}

TEST(TaskGraph, AddAssignsSequentialIds) {
  TaskGraph g;
  g.numCores = 2;
  EXPECT_EQ(g.addTask(task(0, 1.0)), 0);
  EXPECT_EQ(g.addTask(task(1, 2.0)), 1);
  EXPECT_EQ(g.tasks[1].id, 1);
}

TEST(TaskGraph, ValidAcyclicGraphPasses) {
  TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.0));
  g.addTask(task(1, 1.0, {0}, {{0, 0.25}}));
  g.addTask(task(0, 0.0, {0, 1}));
  EXPECT_TRUE(g.validate().empty());
}

TEST(TaskGraph, DetectsBadCore) {
  TaskGraph g;
  g.numCores = 1;
  g.addTask(task(3, 1.0));
  EXPECT_FALSE(g.validate().empty());
}

TEST(TaskGraph, DetectsNonTopologicalPred) {
  TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, 1.0, {1}));  // refers forward
  g.addTask(task(0, 1.0));
  EXPECT_FALSE(g.validate().empty());
}

TEST(TaskGraph, DetectsSelfPred) {
  TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, 1.0, {0}));
  EXPECT_FALSE(g.validate().empty());
}

TEST(TaskGraph, DetectsNegativeCompute) {
  TaskGraph g;
  g.numCores = 1;
  g.addTask(task(0, -0.5));
  EXPECT_FALSE(g.validate().empty());
}

TEST(TaskGraph, DetectsNegativeTransferAndForwardTransfer) {
  TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.0));
  g.addTask(task(1, 1.0, {0}, {{0, -1.0}}));
  EXPECT_FALSE(g.validate().empty());

  TaskGraph h;
  h.numCores = 2;
  h.addTask(task(0, 1.0, {}, {{0, 1.0}}));  // transfer from itself
  EXPECT_FALSE(h.validate().empty());
}

TEST(TaskGraph, TotalComputeSums) {
  TaskGraph g;
  g.numCores = 2;
  g.addTask(task(0, 1.5));
  g.addTask(task(1, 2.5));
  EXPECT_DOUBLE_EQ(g.totalComputeSeconds(), 4.0);
}

}  // namespace
}  // namespace hetpar::sched
