// Direct tests of the HTG validator on hand-built (including malformed)
// graphs; builder_test covers the well-formed construction path.
#include "hetpar/htg/validate.hpp"

#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"

namespace hetpar::htg {
namespace {

/// Minimal well-formed graph: root with one Simple child + comm nodes.
Graph tinyGraph() {
  Graph g;
  Node root;
  root.kind = NodeKind::Root;
  root.execCount = 1.0;
  const NodeId rootId = g.addNode(std::move(root));
  g.setRoot(rootId);

  Node leaf;
  leaf.kind = NodeKind::Simple;
  leaf.parent = rootId;
  leaf.execCount = 1.0;
  leaf.opsPerExec = 10.0;
  const NodeId leafId = g.addNode(std::move(leaf));

  Node cin;
  cin.kind = NodeKind::CommIn;
  cin.parent = rootId;
  cin.execCount = 1.0;
  const NodeId cinId = g.addNode(std::move(cin));
  Node cout;
  cout.kind = NodeKind::CommOut;
  cout.parent = rootId;
  cout.execCount = 1.0;
  const NodeId coutId = g.addNode(std::move(cout));

  Node& r = g.node(rootId);
  r.children = {leafId};
  r.commIn = cinId;
  r.commOut = coutId;
  return g;
}

TEST(HtgValidate, WellFormedPasses) {
  const Graph g = tinyGraph();
  EXPECT_TRUE(validate(g).empty());
  EXPECT_NO_THROW(validateOrThrow(g));
}

TEST(HtgValidate, NoRootFails) {
  Graph g;
  const auto problems = validate(g);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("no root"), std::string::npos);
  EXPECT_THROW(validateOrThrow(g), InternalError);
}

TEST(HtgValidate, MissingCommNodesFail) {
  Graph g = tinyGraph();
  g.node(g.root()).commOut = kNoNode;
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, BrokenParentLinkFails) {
  Graph g = tinyGraph();
  g.node(g.node(g.root()).children[0]).parent = kNoNode;
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, NegativeCostsFail) {
  Graph g = tinyGraph();
  g.node(g.node(g.root()).children[0]).opsPerExec = -1.0;
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, CommExecMismatchFails) {
  Graph g = tinyGraph();
  g.node(g.node(g.root()).commIn).execCount = 7.0;
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, BackwardEdgeFails) {
  Graph g = tinyGraph();
  Node& root = g.node(g.root());
  Edge e;
  e.from = root.commOut;  // comm-out must never be a producer
  e.to = root.children[0];
  e.kind = ir::DepKind::Flow;
  e.bytes = 4;
  root.edges.push_back(e);
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, SelfLoopFails) {
  Graph g = tinyGraph();
  Node& root = g.node(g.root());
  Edge e;
  e.from = root.children[0];
  e.to = root.children[0];
  root.edges.push_back(e);
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, ForeignEdgeEndpointFails) {
  Graph g = tinyGraph();
  Node stray;
  stray.kind = NodeKind::Simple;
  stray.execCount = 1.0;
  const NodeId strayId = g.addNode(std::move(stray));
  Node& root = g.node(g.root());
  Edge e;
  e.from = root.children[0];
  e.to = strayId;  // not a child of root
  root.edges.push_back(e);
  EXPECT_FALSE(validate(g).empty());
}

TEST(HtgValidate, HierarchicalLeafMustBeSimple) {
  Graph g = tinyGraph();
  // Turn the leaf into a childless Loop: violates "all leaves are Simple".
  g.node(g.node(g.root()).children[0]).kind = NodeKind::Loop;
  EXPECT_FALSE(validate(g).empty());
}

}  // namespace
}  // namespace hetpar::htg
