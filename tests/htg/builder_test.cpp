#include "hetpar/htg/builder.hpp"

#include <gtest/gtest.h>

#include "hetpar/htg/dot.hpp"
#include "hetpar/htg/validate.hpp"

namespace hetpar::htg {
namespace {

FrontendBundle bundle(const char* src) { return buildFromSource(src); }

const Node* findByLabel(const Graph& g, const std::string& needle) {
  const Node* found = nullptr;
  g.forEach([&](const Node& n) {
    if (!found && n.label.find(needle) != std::string::npos) found = &n;
  });
  return found;
}

TEST(HtgBuilder, RootOverMainBody) {
  auto b = bundle(R"(int main() {
    int a = 1;
    int c = a + 2;
    return c;
  })");
  const Graph& g = b.graph;
  EXPECT_TRUE(validate(g).empty());
  const Node& root = g.node(g.root());
  EXPECT_EQ(root.kind, NodeKind::Root);
  EXPECT_EQ(root.children.size(), 3u);
  EXPECT_EQ(root.execCount, 1.0);
  for (NodeId c : root.children) EXPECT_EQ(g.node(c).kind, NodeKind::Simple);
}

TEST(HtgBuilder, ValidatePassesOnRepresentativePrograms) {
  const char* programs[] = {
      "int main() { return 0; }",
      R"(int a[32]; int main() {
        for (int i = 0; i < 32; i = i + 1) { a[i] = i; }
        int s = 0;
        for (int i = 0; i < 32; i = i + 1) { s = s + a[i]; }
        return s;
      })",
      R"(
        int buf[16];
        void fill(int v[16]) { for (int i = 0; i < 16; i = i + 1) { v[i] = i; } }
        int total(int v[16]) { int s = 0; for (int i = 0; i < 16; i = i + 1) { s = s + v[i]; } return s; }
        int main() { fill(buf); int t = total(buf); return t; }
      )",
  };
  for (const char* src : programs) {
    auto b = bundle(src);
    const auto problems = validate(b.graph);
    EXPECT_TRUE(problems.empty()) << src << "\nfirst problem: "
                                  << (problems.empty() ? "" : problems[0]);
  }
}

TEST(HtgBuilder, LoopBecomesHierarchicalWithIterations) {
  auto b = bundle(R"(int a[20]; int main() {
    for (int i = 0; i < 20; i = i + 1) { a[i] = i * 3; }
    return a[7];
  })");
  const Node* loop = findByLabel(b.graph, "for");
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->kind, NodeKind::Loop);
  EXPECT_TRUE(loop->isHierarchical());
  EXPECT_NE(loop->commIn, kNoNode);
  EXPECT_NE(loop->commOut, kNoNode);
  EXPECT_DOUBLE_EQ(loop->execCount, 1.0);
  EXPECT_DOUBLE_EQ(loop->iterationsPerExec, 20.0);
  EXPECT_TRUE(loop->doall) << loop->doallReason;
  ASSERT_EQ(loop->children.size(), 1u);
  EXPECT_DOUBLE_EQ(b.graph.node(loop->children[0]).execCount, 20.0);
}

TEST(HtgBuilder, SerialLoopFlagged) {
  auto b = bundle(R"(int a[20]; int main() {
    a[0] = 1;
    for (int i = 1; i < 20; i = i + 1) { a[i] = a[i - 1] + 1; }
    return a[19];
  })");
  const Node* loop = findByLabel(b.graph, "for");
  ASSERT_NE(loop, nullptr);
  EXPECT_FALSE(loop->doall);
  EXPECT_FALSE(loop->doallReason.empty());
}

TEST(HtgBuilder, WholeStatementCallExpands) {
  auto b = bundle(R"(
    int data[8];
    void fill(int v[8]) { for (int i = 0; i < 8; i = i + 1) { v[i] = i; } }
    int main() { fill(data); return data[3]; }
  )");
  const Node* call = findByLabel(b.graph, "call fill");
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->kind, NodeKind::Call);
  EXPECT_EQ(call->children.size(), 1u);  // the fill loop
  EXPECT_EQ(b.graph.node(call->children[0]).kind, NodeKind::Loop);
}

TEST(HtgBuilder, IfStaysAtomic) {
  auto b = bundle(R"(int main() {
    int x = 5;
    int y = 0;
    if (x > 3) { y = 1; } else { y = 2; }
    return y;
  })");
  b.graph.forEach([&](const Node& n) {
    if (n.stmt != nullptr && n.stmt->kind == frontend::StmtKind::If)
      EXPECT_EQ(n.kind, NodeKind::Simple);
  });
}

TEST(HtgBuilder, IfLeafCostIncludesBranchWork) {
  auto b = bundle(R"(int a[64]; int main() {
    int x = 1;
    if (x > 0) {
      for (int i = 0; i < 64; i = i + 1) { a[i] = i * i; }
    }
    return a[10];
  })");
  const Node* ifNode = nullptr;
  b.graph.forEach([&](const Node& n) {
    if (n.stmt != nullptr && n.stmt->kind == frontend::StmtKind::If) ifNode = &n;
  });
  ASSERT_NE(ifNode, nullptr);
  EXPECT_GT(ifNode->opsPerExec, 64.0) << "leaf cost must include the inner loop";
}

TEST(HtgBuilder, EdgesCarryDataFlowBytes) {
  auto b = bundle(R"(
    double buf[50];
    void produce(double v[50]) { for (int i = 0; i < 50; i = i + 1) { v[i] = i; } }
    double consume(double v[50]) { double s = 0.0; for (int i = 0; i < 50; i = i + 1) { s = s + v[i]; } return s; }
    int main() {
      produce(buf);
      double t = consume(buf);
      return t;
    }
  )");
  const Node& root = b.graph.node(b.graph.root());
  bool found = false;
  for (const Edge& e : root.edges) {
    if (e.kind == ir::DepKind::Flow && e.bytes == 400) found = true;
  }
  EXPECT_TRUE(found) << "produce -> consume must carry the 400-byte array";
}

TEST(HtgBuilder, CommEdgesForBoundaryFlows) {
  auto b = bundle(R"(
    int g = 9;
    int main() {
      int a = g + 1;
      return a;
    }
  )");
  const Node& root = b.graph.node(b.graph.root());
  bool inEdge = false;
  bool outEdge = false;
  for (const Edge& e : root.edges) {
    if (e.from == root.commIn) inEdge = true;
    if (e.to == root.commOut) outEdge = true;
  }
  EXPECT_TRUE(inEdge);
  EXPECT_TRUE(outEdge);
}

TEST(HtgBuilder, SubtreeOpsConsistency) {
  auto b = bundle(R"(int a[100]; int main() {
    for (int i = 0; i < 100; i = i + 1) { a[i] = i * 2; }
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + a[i]; }
    return s;
  })");
  const double rootOps = b.graph.subtreeOpsPerExec(b.graph.root());
  EXPECT_NEAR(rootOps, b.profile.totalOps, b.profile.totalOps * 0.05)
      << "root subtree ops must approximate the profiled total";
}

TEST(HtgBuilder, ExecCountsScaledByCallShare) {
  auto b = bundle(R"(
    int a[16];
    void touch(int v[16], int k) { v[k] = k; }
    int main() {
      touch(a, 0);
      touch(a, 1);
      return a[0] + a[1];
    }
  )");
  // Each call site owns half the callee executions.
  int callNodes = 0;
  b.graph.forEach([&](const Node& n) {
    if (n.kind == NodeKind::Call) {
      ++callNodes;
      for (NodeId c : n.children)
        EXPECT_DOUBLE_EQ(b.graph.node(c).execCount, 1.0);
    }
  });
  EXPECT_EQ(callNodes, 2);
}

TEST(HtgBuilder, DotOutputIsWellFormed) {
  auto b = bundle(R"(int a[8]; int main() {
    for (int i = 0; i < 8; i = i + 1) { a[i] = i; }
    return a[1];
  })");
  const std::string dot = toDot(b.graph);
  EXPECT_NE(dot.find("digraph htg"), std::string::npos);
  EXPECT_NE(dot.find("comm-in"), std::string::npos);
  EXPECT_NE(dot.find("comm-out"), std::string::npos);
  EXPECT_NE(dot.find("doall"), std::string::npos);
  // Braces balance.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), std::count(dot.begin(), dot.end(), '}'));
}

TEST(HtgBuilder, HierarchicalCountMatchesStructure) {
  auto b = bundle(R"(int a[8]; int main() {
    for (int i = 0; i < 8; i = i + 1) { a[i] = i; }
    int s = 0;
    for (int i = 0; i < 8; i = i + 1) { s = s + a[i]; }
    return s;
  })");
  // Root + 2 loops.
  EXPECT_EQ(b.graph.hierarchicalCount(), 3);
}

}  // namespace
}  // namespace hetpar::htg
