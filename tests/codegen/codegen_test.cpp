#include <gtest/gtest.h>

#include <sstream>

#include "hetpar/codegen/annotate.hpp"
#include "hetpar/codegen/mpa_spec.hpp"
#include "hetpar/codegen/premap_spec.hpp"
#include "hetpar/frontend/parser.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::codegen {
namespace {

struct Fixture {
  htg::FrontendBundle bundle;
  platform::Platform pf = platform::platformA();
  std::unique_ptr<cost::TimingModel> timing;
  parallel::ParallelizeOutcome outcome;
  parallel::SolutionRef best;

  Fixture()
      : bundle(htg::buildFromSource(R"(
          int a[8192];
          int b[8192];
          int main() {
            for (int i = 0; i < 8192; i = i + 1) { a[i] = i % 13; }
            for (int i = 0; i < 8192; i = i + 1) { b[i] = a[i] * 3 + 1; }
            int s = 0;
            for (int i = 0; i < 8192; i = i + 1) { s = s + b[i]; }
            return s;
          }
        )")) {
    timing = std::make_unique<cost::TimingModel>(pf);
    parallel::Parallelizer tool(bundle.graph, *timing);
    outcome = tool.run();
    best = outcome.bestRoot(bundle.graph, pf.slowestClass());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Annotate, EmitsHetparPragmas) {
  Fixture& f = fixture();
  const std::string out =
      annotateSource(f.bundle.program, f.bundle.graph, f.outcome.table, f.best, f.pf);
  EXPECT_NE(out.find("#pragma hetpar"), std::string::npos);
  EXPECT_NE(out.find("parallel_for"), std::string::npos) << "DOALL loops must be annotated";
  EXPECT_NE(out.find("classes("), std::string::npos);
  EXPECT_NE(out.find("arm_"), std::string::npos) << "class names come from the platform";
}

TEST(Annotate, OutputStillContainsTheProgram) {
  Fixture& f = fixture();
  const std::string out =
      annotateSource(f.bundle.program, f.bundle.graph, f.outcome.table, f.best, f.pf);
  EXPECT_NE(out.find("int main()"), std::string::npos);
  EXPECT_NE(out.find("a[i] = (i % 13)"), std::string::npos);
}

TEST(Annotate, StrippedOutputReparses) {
  // Dropping the pragma/comment lines must leave a valid mini-C program
  // (source-to-source transparency).
  Fixture& f = fixture();
  const std::string out =
      annotateSource(f.bundle.program, f.bundle.graph, f.outcome.table, f.best, f.pf);
  std::string stripped;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(' ');
    if (first != std::string::npos && line[first] == '#') continue;
    stripped += line + "\n";
  }
  EXPECT_NO_THROW(frontend::parseProgram(stripped));
}

TEST(Annotate, SequentialChoiceHasNoPragmas) {
  Fixture& f = fixture();
  const auto& set = f.outcome.table.at(f.bundle.graph.root());
  const int seq = set.sequentialFor(f.pf.slowestClass());
  const std::string out = annotateSource(f.bundle.program, f.bundle.graph, f.outcome.table,
                                         {f.bundle.graph.root(), seq}, f.pf);
  EXPECT_EQ(out.find("#pragma hetpar parallel"), std::string::npos);
}

TEST(MpaSpec, ListsSectionsAndTasks) {
  Fixture& f = fixture();
  const std::string spec = mpaSpec(f.bundle.graph, f.outcome.table, f.best);
  EXPECT_NE(spec.find("parsection"), std::string::npos);
  EXPECT_NE(spec.find("task T0"), std::string::npos);
  EXPECT_NE(spec.find("iterations"), std::string::npos);
}

TEST(PremapSpec, MapsTasksToClasses) {
  Fixture& f = fixture();
  const std::string spec = premapSpec(f.bundle.graph, f.outcome.table, f.best, f.pf);
  EXPECT_NE(spec.find("map main"), std::string::npos);
  EXPECT_NE(spec.find("-> class arm_"), std::string::npos);
}

TEST(PremapSpec, SequentialChoiceIsHeaderOnly) {
  Fixture& f = fixture();
  const auto& set = f.outcome.table.at(f.bundle.graph.root());
  const int seq = set.sequentialFor(f.pf.slowestClass());
  const std::string spec =
      premapSpec(f.bundle.graph, f.outcome.table, {f.bundle.graph.root(), seq}, f.pf);
  EXPECT_EQ(spec.find("-> class"), std::string::npos);
}

}  // namespace
}  // namespace hetpar::codegen
