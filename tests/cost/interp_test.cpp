#include "hetpar/cost/interp.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::cost {
namespace {

using frontend::analyze;
using frontend::parseProgram;
using frontend::Program;
using frontend::SemaResult;

struct RunResult {
  Program program;
  SemaResult sema;
  ProgramProfile profile;
};

RunResult run(const char* src) {
  RunResult r{parseProgram(src), {}, {}};
  r.sema = analyze(r.program);
  r.profile = interpret(r.program, r.sema);
  return r;
}

TEST(Interp, ReturnsMainValue) {
  EXPECT_EQ(run("int main() { return 42; }").profile.exitValue, 42);
}

TEST(Interp, IntegerArithmeticSemantics) {
  EXPECT_EQ(run("int main() { return 7 / 2; }").profile.exitValue, 3);
  EXPECT_EQ(run("int main() { return 7 % 3; }").profile.exitValue, 1);
  EXPECT_EQ(run("int main() { return -7 / 2; }").profile.exitValue, -3);
  EXPECT_EQ(run("int main() { return 2 + 3 * 4; }").profile.exitValue, 14);
}

TEST(Interp, FloatToIntTruncation) {
  EXPECT_EQ(run("int main() { int x = 7.9; return x; }").profile.exitValue, 7);
  EXPECT_EQ(run("int main() { double d = 7.0 / 2.0; int x = d * 2.0; return x; }")
                .profile.exitValue,
            7);
}

TEST(Interp, ShortCircuitLogic) {
  // The right operand would divide by zero; && must not evaluate it.
  EXPECT_EQ(run("int main() { int z = 0; if (0 && 1 / z) { return 1; } return 2; }")
                .profile.exitValue,
            2);
  EXPECT_EQ(run("int main() { int z = 0; if (1 || 1 / z) { return 1; } return 2; }")
                .profile.exitValue,
            1);
}

TEST(Interp, LoopsAndArrays) {
  RunResult r = run(R"(
    int a[10];
    int main() {
      for (int i = 0; i < 10; i = i + 1) { a[i] = i * i; }
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + a[i]; }
      return s;
    }
  )");
  EXPECT_EQ(r.profile.exitValue, 285);
}

TEST(Interp, TwoDimensionalArrays) {
  EXPECT_EQ(run(R"(
    int m[3][3];
    int main() {
      for (int i = 0; i < 3; i = i + 1) {
        for (int j = 0; j < 3; j = j + 1) { m[i][j] = i * 3 + j; }
      }
      return m[2][1];
    }
  )").profile.exitValue, 7);
}

TEST(Interp, ArraysPassedByReference) {
  EXPECT_EQ(run(R"(
    void fill(int v[4]) { for (int i = 0; i < 4; i = i + 1) { v[i] = i + 1; } }
    int main() { int a[4]; fill(a); return a[3]; }
  )").profile.exitValue, 4);
}

TEST(Interp, ScalarsPassedByValue) {
  EXPECT_EQ(run(R"(
    void bump(int x) { x = x + 100; }
    int main() { int x = 1; bump(x); return x; }
  )").profile.exitValue, 1);
}

TEST(Interp, Builtins) {
  EXPECT_EQ(run("int main() { return sqrt(49.0); }").profile.exitValue, 7);
  EXPECT_EQ(run("int main() { return fabs(-2.5) * 2.0; }").profile.exitValue, 5);
  EXPECT_EQ(run("int main() { return abs(-9); }").profile.exitValue, 9);
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(run("int main() { int n = 1; while (n < 100) { n = n * 2; } return n; }")
                .profile.exitValue,
            128);
}

TEST(Interp, GlobalInitializers) {
  EXPECT_EQ(run("int k = 6; int main() { return k * 7; }").profile.exitValue, 42);
}

TEST(Interp, DivisionByZeroThrows) {
  EXPECT_THROW(run("int main() { int z = 0; return 1 / z; }"), Error);
}

TEST(Interp, OutOfBoundsThrows) {
  EXPECT_THROW(run("int a[4]; int main() { return a[9]; }"), Error);
  EXPECT_THROW(run("int a[4]; int main() { int i = -1; return a[i]; }"), Error);
}

TEST(Interp, StepBudgetAborts) {
  InterpLimits limits;
  limits.maxSteps = 1000;
  frontend::Program p =
      parseProgram("int main() { int s = 0; for (int i = 0; i < 100000; i = i + 1) { s = s + i; } return s; }");
  auto sema = analyze(p);
  EXPECT_THROW(interpret(p, sema, {}, limits), Error);
}

TEST(Interp, ExecutionCountsMatchControlFlow) {
  RunResult r = run(R"(
    int main() {
      int s = 0;
      for (int i = 0; i < 5; i = i + 1) {
        s = s + i;
      }
      return s;
    }
  )");
  // Find the body assignment by scanning statement profiles: exactly one
  // statement executed 5 times.
  int fives = 0;
  for (const auto& sp : r.profile.stmts)
    if (sp.execCount == 5) ++fives;
  EXPECT_GE(fives, 1);
  EXPECT_EQ(r.profile.exitValue, 10);
}

TEST(Interp, OpsAttributedInclusivelyThroughCalls) {
  RunResult r = run(R"(
    int work(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i * i; }
      return s;
    }
    int main() {
      int total = work(50);
      return total;
    }
  )");
  // The call-site declaration `int total = work(50)` must carry (at least)
  // the callee's loop work inclusively.
  const frontend::Function* mainFn = r.program.findFunction("main");
  const auto& callStmt = *mainFn->body[0];
  const double callOps = r.profile.of(callStmt.id).ops;
  EXPECT_GT(callOps, 50 * 4.0);  // far more than a bare declaration
}

TEST(Interp, CallSiteCountsRecorded) {
  RunResult r = run(R"(
    int id(int x) { return x; }
    int main() {
      int a = id(1);
      int b = 0;
      for (int i = 0; i < 3; i = i + 1) { b = b + id(i); }
      return a + b;
    }
  )");
  EXPECT_EQ(r.profile.functionCalls.at("id"), 4);
  // The loop body call site accounts for 3 of the 4 calls.
  double maxShare = 0.0;
  for (const auto& [key, count] : r.profile.callSiteCalls) {
    (void)count;
    maxShare = std::max(maxShare, r.profile.callShare(key.first, "id"));
  }
  EXPECT_NEAR(maxShare, 0.75, 1e-9);
}

TEST(Interp, TotalOpsPositiveAndBounded) {
  RunResult r = run("int main() { int x = 1 + 2; return x; }");
  EXPECT_GT(r.profile.totalOps, 0.0);
  EXPECT_LT(r.profile.totalOps, 100.0);
}

}  // namespace
}  // namespace hetpar::cost
