#include "hetpar/cost/timing.hpp"

#include <gtest/gtest.h>

#include "hetpar/platform/presets.hpp"

namespace hetpar::cost {
namespace {

TEST(OpMix, ArithmeticAndTotals) {
  OpMix a;
  a.of(OpKind::IntAlu) = 10.0;
  a.of(OpKind::FloatAlu) = 20.0;
  OpMix b;
  b.of(OpKind::Memory) = 5.0;
  a += b;
  EXPECT_DOUBLE_EQ(a.total(), 35.0);
  const OpMix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.total(), 70.0);
  EXPECT_DOUBLE_EQ(scaled.of(OpKind::Memory), 10.0);
  EXPECT_DOUBLE_EQ(a.total(), 35.0) << "operator* must not mutate";
}

TEST(OpMix, MinusClampedNeverNegative) {
  OpMix a;
  a.of(OpKind::IntAlu) = 10.0;
  a.of(OpKind::Control) = 2.0;
  OpMix b;
  b.of(OpKind::IntAlu) = 4.0;
  b.of(OpKind::Control) = 5.0;  // more than a has
  const OpMix d = a.minusClamped(b);
  EXPECT_DOUBLE_EQ(d.of(OpKind::IntAlu), 6.0);
  EXPECT_DOUBLE_EQ(d.of(OpKind::Control), 0.0);
}

TEST(TimingModel, ScalarAndMixAgreeOnSameIsa) {
  const platform::Platform pf = platform::platformA();
  const TimingModel tm(pf);
  OpMix mix;
  mix.of(OpKind::IntAlu) = 400.0;
  mix.of(OpKind::FloatAlu) = 300.0;
  mix.of(OpKind::Memory) = 200.0;
  mix.of(OpKind::Control) = 100.0;
  for (platform::ClassId c = 0; c < pf.numClasses(); ++c)
    EXPECT_NEAR(tm.seconds(c, mix), tm.seconds(c, 1000.0), 1e-15)
        << "kindFactor defaults must reproduce the scalar path";
}

TEST(TimingModel, SecondsInverselyProportionalToFrequency) {
  const platform::Platform pf = platform::platformA();
  const TimingModel tm(pf);
  const platform::ClassId slow = pf.slowestClass();
  const platform::ClassId fast = pf.fastestClass();
  EXPECT_NEAR(tm.seconds(slow, 1e6) / tm.seconds(fast, 1e6), 5.0, 1e-12);
}

TEST(TimingModel, CommAndTco) {
  const platform::Platform pf = platform::platformB();
  const TimingModel tm(pf);
  EXPECT_DOUBLE_EQ(tm.taskCreationSeconds(), pf.taskCreationOverheadSeconds());
  EXPECT_DOUBLE_EQ(tm.commSeconds(0), 0.0);
  EXPECT_GT(tm.commSeconds(1), 0.0);
  EXPECT_GT(tm.commSeconds(1 << 20), tm.commSeconds(1 << 10));
}

TEST(TimingModel, CrossIsaFactorsChangeRanking) {
  const platform::Platform pf = platform::crossIsaDemo();
  const TimingModel tm(pf);
  const platform::ClassId gpp = pf.findClass("gpp");
  const platform::ClassId dsp = pf.findClass("dsp");
  OpMix floats;
  floats.of(OpKind::FloatAlu) = 1000.0;
  OpMix branches;
  branches.of(OpKind::Control) = 1000.0;
  EXPECT_LT(tm.seconds(dsp, floats), tm.seconds(gpp, floats));
  EXPECT_GT(tm.seconds(dsp, branches), tm.seconds(gpp, branches));
}

}  // namespace
}  // namespace hetpar::cost
