#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"
#include "hetpar/support/log.hpp"
#include "hetpar/support/rng.hpp"
#include "hetpar/support/strings.hpp"

namespace hetpar {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  abc  "), "abc");
  EXPECT_EQ(strings::trim("abc"), "abc");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("\t a b \n"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(strings::split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(strings::split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(strings::split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(strings::split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(strings::splitWhitespace("  a   b \t c "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(strings::splitWhitespace("   ").empty());
}

TEST(Strings, Join) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_EQ(strings::join({"solo"}, ","), "solo");
}

TEST(Strings, FormatMinSec) {
  EXPECT_EQ(strings::formatMinSec(0.0), "00:00");
  EXPECT_EQ(strings::formatMinSec(8.0), "00:08");
  EXPECT_EQ(strings::formatMinSec(190.0), "03:10");  // the paper's average
  EXPECT_EQ(strings::formatMinSec(732.4), "12:12");
  EXPECT_EQ(strings::formatMinSec(-5.0), "00:00");
}

TEST(Strings, FormatThousands) {
  EXPECT_EQ(strings::formatThousands(0), "0");
  EXPECT_EQ(strings::formatThousands(999), "999");
  EXPECT_EQ(strings::formatThousands(1000), "1,000");
  EXPECT_EQ(strings::formatThousands(242382), "242,382");  // Table I, compress
  EXPECT_EQ(strings::formatThousands(-54321), "-54,321");
}

TEST(Strings, PrintfFormat) {
  EXPECT_EQ(strings::format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strings::format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strings::format("plain"), "plain");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, RangesRespected) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double w = rng.uniform(2.0, 5.0);
    EXPECT_GE(w, 2.0);
    EXPECT_LT(w, 5.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Log, LevelGating) {
  log::ScopedLevel quiet(log::Level::Off);
  log::error() << "must not crash while gated";
  EXPECT_EQ(log::level(), log::Level::Off);
  {
    log::ScopedLevel chatty(log::Level::Debug);
    EXPECT_EQ(log::level(), log::Level::Debug);
  }
  EXPECT_EQ(log::level(), log::Level::Off);
}

TEST(Error, HierarchyAndMessages) {
  try {
    throw ParseError("bad token");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "bad token");
  }
  EXPECT_THROW(require<SemaError>(false, "nope"), SemaError);
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(HETPAR_CHECK(1 == 2), InternalError);
}

}  // namespace
}  // namespace hetpar
