// Concurrency tests for the solve engine's worker pool. These are the ones
// the `tsan` preset is aimed at (cmake --preset tsan).
#include "hetpar/support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hetpar::support {
namespace {

TEST(ThreadPool, SpawnsRequestedWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, ClampsNonPositiveCountToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-4);
  EXPECT_EQ(negative.size(), 1);
}

TEST(ThreadPool, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.submit([]() -> int { throw std::runtime_error("lane failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPostedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, SurvivesThrowingPostedTask) {
  ThreadPool pool(1);
  pool.post([] { throw std::runtime_error("escapes into the worker"); });
  // The single worker must have swallowed the exception and stayed alive.
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, ConcurrentPostersAreSerialized) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    std::vector<std::thread> posters;
    for (int p = 0; p < 4; ++p)
      posters.emplace_back([&pool, &ran] {
        for (int i = 0; i < 100; ++i)
          pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      });
    for (std::thread& t : posters) t.join();
  }
  EXPECT_EQ(ran.load(), 400);
}

TEST(ThreadPool, ResolveJobsPassesPositiveThrough) {
  EXPECT_EQ(ThreadPool::resolveJobs(1), 1);
  EXPECT_EQ(ThreadPool::resolveJobs(7), 7);
}

TEST(ThreadPool, ResolveJobsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::resolveJobs(0), 1);
  EXPECT_GE(ThreadPool::resolveJobs(-1), 1);
}

}  // namespace
}  // namespace hetpar::support
