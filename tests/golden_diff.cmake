# Golden-diff harness for hetparc: runs the full single-program flow on
# tests/data/pipeline.c and byte-compares stdout and every emitted artifact
# against the goldens captured from the pre-pipeline driver. Guards the
# refactor invariant that staging the compiler changed NOTHING about what a
# single compile produces.
#
# Expects: -DHETPARC=<binary> -DSOURCE=<source.c> -DGOLDEN_DIR=<dir> -DWORK_DIR=<dir>
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${HETPARC}" --preset A --simulate
          --emit-annotated "${WORK_DIR}/pipeline.annotated.c"
          --emit-parspec "${WORK_DIR}/pipeline.parspec"
          --emit-premap "${WORK_DIR}/pipeline.premap"
          --emit-dot "${WORK_DIR}/pipeline.dot"
          "${SOURCE}"
  OUTPUT_FILE "${WORK_DIR}/pipeline.stdout"
  RESULT_VARIABLE exit_code)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "hetparc exited with ${exit_code}")
endif()

foreach(artifact stdout annotated.c parspec premap dot)
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${GOLDEN_DIR}/pipeline.${artifact}" "${WORK_DIR}/pipeline.${artifact}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "pipeline.${artifact} differs from the golden copy "
                        "(${GOLDEN_DIR}/pipeline.${artifact} vs ${WORK_DIR}/pipeline.${artifact})")
  endif()
endforeach()
