// Unit tests for the greedy all-in-main assignment (the ILP's seed bound
// and its fallback candidate when the solver exhausts its limits).
#include <gtest/gtest.h>

#include "hetpar/parallel/parallelizer.hpp"

namespace hetpar::parallel {
namespace {

IlpCandidate candidate(double seconds, std::vector<int> extraProcs, htg::NodeId node,
                       int index) {
  IlpCandidate c;
  c.timeSeconds = seconds;
  c.extraProcs = std::move(extraProcs);
  c.ref = SolutionRef{node, index};
  return c;
}

/// Region skeleton: two classes, seqPC = 0, children added by the tests.
IlpRegion makeRegion(int maxProcs, std::vector<int> numProcsPerClass) {
  IlpRegion region;
  region.seqPC = 0;
  region.maxProcs = maxProcs;
  region.maxTasks = 2;
  region.taskCreationSeconds = 1e-5;
  region.numProcsPerClass = std::move(numProcsPerClass);
  return region;
}

void addChild(IlpRegion& region, std::vector<IlpCandidate> class0,
              std::vector<IlpCandidate> class1 = {}) {
  IlpChild child;
  child.byClass.push_back(std::move(class0));
  child.byClass.push_back(std::move(class1));
  region.children.push_back(std::move(child));
}

TEST(GreedyAllInMain, AllSequentialWhenChildrenOfferNothingBetter) {
  IlpRegion region = makeRegion(/*maxProcs=*/4, {2, 2});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0)});
  addChild(region, {candidate(0.5, {0, 0}, 11, 0)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 1.5);
  EXPECT_EQ(greedy.kind, SolutionKind::TaskParallel);
  EXPECT_EQ(greedy.mainClass, 0);
  EXPECT_EQ(greedy.totalProcs(), 1) << "nothing borrowed: main processor only";
  ASSERT_EQ(greedy.childChoice.size(), 2u);
  EXPECT_EQ(greedy.childChoice[0].node, 10);
  EXPECT_EQ(greedy.childChoice[1].node, 11);
}

TEST(GreedyAllInMain, UpgradesToNestedParallelCandidateThatFits) {
  IlpRegion region = makeRegion(/*maxProcs=*/4, {2, 2});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0), candidate(0.4, {1, 0}, 10, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 0.4);
  EXPECT_EQ(greedy.extraProcs, (std::vector<int>{1, 0}));
  EXPECT_EQ(greedy.totalProcs(), 2);
  EXPECT_EQ(greedy.childChoice[0].index, 1) << "the faster nested candidate wins";
}

TEST(GreedyAllInMain, ZeroTimeSentinelWhenSeqPcHasNoZeroExtraOption) {
  IlpRegion region = makeRegion(/*maxProcs=*/4, {2, 2});
  // The child's class-0 menu only offers candidates that borrow processors;
  // all-in-main needs a zero-extra option to run the child on the main task.
  addChild(region, {candidate(0.4, {1, 0}, 10, 0), candidate(0.3, {1, 1}, 10, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_EQ(greedy.timeSeconds, 0.0) << "no valid greedy candidate sentinel";
  EXPECT_EQ(allInMainBound(region), 0.0) << "sentinel disables the seed bound";
}

TEST(GreedyAllInMain, ProcessorBudgetOfOneForcesSequentialChoices) {
  IlpRegion region = makeRegion(/*maxProcs=*/1, {2, 2});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0), candidate(0.1, {1, 0}, 10, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 1.0) << "upgrade would exceed maxProcs";
  EXPECT_EQ(greedy.totalProcs(), 1);
  EXPECT_EQ(greedy.childChoice[0].index, 0);
}

TEST(GreedyAllInMain, MainTaskOccupiesItsClassProcessor) {
  // One processor per class and the main task sits on class 0, so an
  // upgrade borrowing another class-0 processor can never fit.
  IlpRegion region = makeRegion(/*maxProcs=*/2, {1, 1});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0), candidate(0.1, {1, 0}, 10, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 1.0);
  EXPECT_EQ(greedy.childChoice[0].index, 0);

  // A class-1 borrow, in contrast, fits fine.
  IlpRegion other = makeRegion(/*maxProcs=*/2, {1, 1});
  addChild(other, {candidate(1.0, {0, 0}, 10, 0), candidate(0.1, {0, 1}, 10, 1)});
  EXPECT_DOUBLE_EQ(greedyAllInMain(other).timeSeconds, 0.1);
}

TEST(GreedyAllInMain, SequentialChildrenShareBorrowedProcessors) {
  // Children run one after another on the main task, so their nested
  // solutions reuse the same borrowed processors: the footprint is the
  // per-class MAX, not the sum.
  IlpRegion region = makeRegion(/*maxProcs=*/2, {2, 2});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0), candidate(0.4, {1, 0}, 10, 1)});
  addChild(region, {candidate(1.0, {0, 0}, 11, 0), candidate(0.5, {1, 0}, 11, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 0.9) << "both children upgraded";
  EXPECT_EQ(greedy.extraProcs, (std::vector<int>{1, 0})) << "shared, not summed";
  EXPECT_EQ(greedy.totalProcs(), 2);
}

TEST(GreedyAllInMain, BudgetGoesToTheLargestSaving) {
  // Budget admits one borrowed processor; the child saving 0.8s must win it
  // over the child saving 0.1s when their borrows conflict.
  IlpRegion region = makeRegion(/*maxProcs=*/2, {2, 2});
  addChild(region, {candidate(1.0, {0, 0}, 10, 0), candidate(0.2, {1, 0}, 10, 1)});
  addChild(region, {candidate(1.0, {0, 0}, 11, 0), candidate(0.9, {0, 1}, 11, 1)});

  const SolutionCandidate greedy = greedyAllInMain(region);
  EXPECT_DOUBLE_EQ(greedy.timeSeconds, 0.2 + 1.0);
  EXPECT_EQ(greedy.extraProcs, (std::vector<int>{1, 0}));
  EXPECT_EQ(greedy.childChoice[0].index, 1);
  EXPECT_EQ(greedy.childChoice[1].index, 0) << "smaller saving loses the budget";
}

TEST(GreedyAllInMain, BoundAppliesSolverSlack) {
  IlpRegion region = makeRegion(/*maxProcs=*/4, {2, 2});
  addChild(region, {candidate(2.0, {0, 0}, 10, 0)});
  EXPECT_DOUBLE_EQ(allInMainBound(region), 2.0 * 1.02);
}

}  // namespace
}  // namespace hetpar::parallel
