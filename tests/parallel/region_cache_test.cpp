// IlpRegionCache unit tests: the key must capture exactly the
// model-relevant fields (names/labels/refs excluded, every numeric included),
// hits must return the stored decode with zeroed stats, and a cache shared
// across Parallelizer runs must turn the second run into pure hits without
// changing its outcome.
#include <gtest/gtest.h>

#include <memory>

#include "hetpar/cost/timing.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/support/rng.hpp"
#include "hetpar/verify/generator.hpp"
#include "hetpar/verify/metamorphic.hpp"
#include "hetpar/verify/oracle.hpp"

namespace hetpar::parallel {
namespace {

ilp::SolveOptions solveOptions() {
  ilp::SolveOptions so;
  so.timeLimitSeconds = 1e9;
  so.maxNodes = 100'000;
  return so;
}

IlpRegion sampleRegion(std::uint64_t seed) {
  Rng rng(seed);
  return verify::randomTinyRegion(rng);
}

TEST(RegionCacheTest, KeyIgnoresNamesLabelsAndRefs) {
  IlpRegion a = sampleRegion(1);
  IlpRegion b = a;
  b.name = "renamed";
  for (auto& child : b.children) {
    child.label = "relabeled";
    for (auto& menu : child.byClass)
      for (auto& cand : menu) cand.ref = SolutionRef{42, 7};
  }
  EXPECT_EQ(IlpRegionCache::taskKey(a, solveOptions()),
            IlpRegionCache::taskKey(b, solveOptions()));
}

TEST(RegionCacheTest, KeySeesEveryModelField) {
  const IlpRegion base = sampleRegion(2);
  const std::string baseKey = IlpRegionCache::taskKey(base, solveOptions());

  IlpRegion m = base;
  m.children[0].byClass[0][0].timeSeconds *= 1.0000001;
  EXPECT_NE(IlpRegionCache::taskKey(m, solveOptions()), baseKey) << "candidate time";

  m = base;
  m.maxProcs += 1;
  EXPECT_NE(IlpRegionCache::taskKey(m, solveOptions()), baseKey) << "maxProcs";

  m = base;
  m.taskCreationSeconds += 1e-9;
  EXPECT_NE(IlpRegionCache::taskKey(m, solveOptions()), baseKey) << "TCO";

  m = base;
  m.upperBoundSeconds = base.upperBoundSeconds + 1e-6;
  EXPECT_NE(IlpRegionCache::taskKey(m, solveOptions()), baseKey) << "pruning bound";

  ilp::SolveOptions limits = solveOptions();
  limits.maxNodes += 1;
  EXPECT_NE(IlpRegionCache::taskKey(base, limits), baseKey) << "solver limits";
}

TEST(RegionCacheTest, TaskLookupReturnsStoredDecodeWithZeroedStats) {
  IlpRegionCache cache;
  const std::string key = IlpRegionCache::taskKey(sampleRegion(3), solveOptions());

  IlpParResult miss;
  EXPECT_FALSE(cache.lookupTask(key, miss));
  EXPECT_EQ(cache.size(), 0u);

  IlpParResult stored;
  stored.feasible = true;
  stored.provenOptimal = true;
  stored.timeSeconds = 12.5e-6;
  stored.childTask = {0, 1};
  stored.taskClass = {0, 1};
  stored.childChoice = {{0, 0}, {1, 1}};
  stored.stats.nodesExplored = 77;
  stored.stats.simplexIterations = 1234;
  cache.storeTask(key, stored);
  EXPECT_EQ(cache.size(), 1u);

  IlpParResult hit;
  ASSERT_TRUE(cache.lookupTask(key, hit));
  EXPECT_TRUE(hit.feasible);
  EXPECT_TRUE(hit.provenOptimal);
  EXPECT_EQ(hit.timeSeconds, stored.timeSeconds);
  EXPECT_EQ(hit.childTask, stored.childTask);
  EXPECT_EQ(hit.taskClass, stored.taskClass);
  EXPECT_EQ(hit.childChoice, stored.childChoice);
  // A hit performed no solve: its stats must not double-count the original.
  EXPECT_EQ(hit.stats.nodesExplored, 0);
  EXPECT_EQ(hit.stats.simplexIterations, 0);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookupTask(key, hit));
}

TEST(RegionCacheTest, ChunkKeyAndRoundTrip) {
  Rng rng(4);
  const ChunkRegion region = verify::randomTinyChunkRegion(rng);
  const std::string key = IlpRegionCache::chunkKey(region, solveOptions());

  ChunkRegion renamed = region;
  renamed.name = "other";
  EXPECT_EQ(IlpRegionCache::chunkKey(renamed, solveOptions()), key);

  ChunkRegion more = region;
  more.iterations += 1;
  EXPECT_NE(IlpRegionCache::chunkKey(more, solveOptions()), key);

  IlpRegionCache cache;
  ChunkResult stored;
  stored.feasible = true;
  stored.timeSeconds = 3e-6;
  stored.taskClass = {0, 1};
  stored.taskIterations = {10.0, 6.0};
  stored.stats.nodesExplored = 9;
  cache.storeChunk(key, stored);

  ChunkResult hit;
  ASSERT_TRUE(cache.lookupChunk(key, hit));
  EXPECT_EQ(hit.taskIterations, stored.taskIterations);
  EXPECT_EQ(hit.stats.nodesExplored, 0);
}

TEST(RegionCacheTest, SharedCacheMakesSecondRunAllHits) {
  const std::string source = verify::generateProgram(31).render();
  const platform::Platform pf = verify::generatePlatform(31);
  const htg::FrontendBundle bundle = htg::buildFromSource(source);
  const cost::TimingModel timing(pf);

  ParallelizerOptions options = verify::MetamorphicOptions::deterministicOptions();
  options.regionCache = std::make_shared<IlpRegionCache>();
  const ParallelizeOutcome first = Parallelizer(bundle.graph, timing, options).run();
  const ParallelizeOutcome second = Parallelizer(bundle.graph, timing, options).run();

  // Identical model + warm cache: the second run never solves, and every
  // region request it makes is answered by the cache.
  EXPECT_EQ(second.stats.numIlps, 0);
  EXPECT_EQ(second.stats.cacheMisses, 0);
  EXPECT_EQ(second.stats.cacheHits + second.stats.numIlps,
            first.stats.cacheHits + first.stats.numIlps);

  // And the cache must never change the outcome.
  EXPECT_EQ(verify::diffSolutionTables(first.table, second.table), "");
}

TEST(RegionCacheTest, DisabledCacheReportsNoTraffic) {
  const std::string source = verify::generateProgram(31).render();
  const platform::Platform pf = verify::generatePlatform(31);
  const htg::FrontendBundle bundle = htg::buildFromSource(source);
  const cost::TimingModel timing(pf);

  ParallelizerOptions options = verify::MetamorphicOptions::deterministicOptions();
  options.enableRegionCache = false;
  const ParallelizeOutcome outcome = Parallelizer(bundle.graph, timing, options).run();
  EXPECT_EQ(outcome.stats.cacheHits, 0);
  EXPECT_EQ(outcome.stats.cacheMisses, 0);

  ParallelizerOptions cached = verify::MetamorphicOptions::deterministicOptions();
  const ParallelizeOutcome withCache = Parallelizer(bundle.graph, timing, cached).run();
  EXPECT_EQ(verify::diffSolutionTables(outcome.table, withCache.table), "");
}

}  // namespace
}  // namespace hetpar::parallel
