// Integration tests: Algorithm 1 end-to-end on mini-C programs.
#include "hetpar/parallel/parallelizer.hpp"

#include <gtest/gtest.h>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::parallel {
namespace {

struct Run {
  htg::FrontendBundle bundle;
  platform::Platform pf;
  std::unique_ptr<cost::TimingModel> timing;
  ParallelizeOutcome outcome;
};

std::unique_ptr<Run> runOn(const char* src, platform::Platform pf,
                           ParallelizerOptions opts = {}) {
  auto r = std::make_unique<Run>();
  r->bundle = htg::buildFromSource(src);
  r->pf = std::move(pf);
  r->timing = std::make_unique<cost::TimingModel>(r->pf);
  Parallelizer par(r->bundle.graph, *r->timing, opts);
  r->outcome = par.run();
  return r;
}

// A heavy DOALL workload: init + map + reduce over a large array.
const char* kDoallProgram = R"(
  int a[8192];
  int b[8192];
  int main() {
    for (int i = 0; i < 8192; i = i + 1) { a[i] = i % 17; }
    for (int i = 0; i < 8192; i = i + 1) { b[i] = a[i] * a[i] + 3; }
    int s = 0;
    for (int i = 0; i < 8192; i = i + 1) { s = s + b[i]; }
    return s;
  }
)";

double speedupAtRoot(const Run& r, ClassId mainClass) {
  const auto& set = r.outcome.table.at(r.bundle.graph.root());
  const int seq = set.sequentialFor(mainClass);
  const int best = set.bestFor(mainClass);
  return set.at(seq).timeSeconds / set.at(best).timeSeconds;
}

TEST(Parallelizer, EveryNodeGetsSequentialCandidatesPerClass) {
  auto r = runOn(kDoallProgram, platform::platformA());
  const int C = r->pf.numClasses();
  r->bundle.graph.forEach([&](const htg::Node& n) {
    if (n.isComm()) return;
    const ParallelSet& set = r->outcome.table.at(n.id);
    for (ClassId c = 0; c < C; ++c)
      EXPECT_GE(set.sequentialFor(c), 0) << "node " << n.id << " class " << c;
  });
}

TEST(Parallelizer, SequentialTimesScaleWithFrequency) {
  auto r = runOn(kDoallProgram, platform::platformA());
  const auto& set = r->outcome.table.at(r->bundle.graph.root());
  const ClassId slow = r->pf.slowestClass();
  const ClassId fast = r->pf.fastestClass();
  const double tSlow = set.at(set.sequentialFor(slow)).timeSeconds;
  const double tFast = set.at(set.sequentialFor(fast)).timeSeconds;
  EXPECT_NEAR(tSlow / tFast, 5.0, 0.01) << "100 vs 500 MHz";
}

TEST(Parallelizer, DoallLoopsYieldLargeHeterogeneousSpeedup) {
  auto r = runOn(kDoallProgram, platform::platformA());
  // Scenario (I): main on the 100 MHz core; theoretical limit 13.5x.
  const double s = speedupAtRoot(*r, r->pf.slowestClass());
  EXPECT_GT(s, 6.0) << "heterogeneous chunking must exploit the fast cores";
  EXPECT_LT(s, 13.5 + 1e-6) << "cannot beat the theoretical limit";
}

TEST(Parallelizer, FastMainScenarioStillGains) {
  auto r = runOn(kDoallProgram, platform::platformA());
  // Scenario (II): main on a 500 MHz core; limit 2.7x. The workload is
  // small, so task-creation overhead keeps the gain well under the limit.
  const double s = speedupAtRoot(*r, r->pf.fastestClass());
  EXPECT_GT(s, 1.15);
  EXPECT_LT(s, 2.7 + 1e-6);
}

TEST(Parallelizer, SerialChainGainsNothing) {
  auto r = runOn(R"(
    int a[512];
    int main() {
      a[0] = 1;
      for (int i = 1; i < 512; i = i + 1) { a[i] = a[i - 1] + i; }
      return a[511];
    }
  )", platform::platformA());
  const double s = speedupAtRoot(*r, r->pf.slowestClass());
  EXPECT_NEAR(s, 1.0, 0.05) << "loop-carried dependence: no parallelism available";
}

TEST(Parallelizer, NeverSlowerThanSequential) {
  // The sequential candidate is always in the set, so best <= sequential.
  auto r = runOn(kDoallProgram, platform::platformB());
  for (ClassId c = 0; c < r->pf.numClasses(); ++c) {
    EXPECT_GE(speedupAtRoot(*r, c), 1.0 - 1e-9);
  }
}

TEST(Parallelizer, IndependentFunctionCallsRunInParallel) {
  auto r = runOn(R"(
    int a[6000]; int b[6000];
    void fa(int v[6000]) { for (int i = 0; i < 6000; i = i + 1) { v[i] = i * 3 + i % 7; } }
    void fb(int v[6000]) { for (int i = 0; i < 6000; i = i + 1) { v[i] = i * 5 + i % 11; } }
    int main() {
      fa(a);
      fb(b);
      return a[1] + b[1];
    }
  )", platform::platformB(), [] {
    ParallelizerOptions o;
    o.enableChunking = false;  // force pure task-level parallelism
    return o;
  }());
  const double s = speedupAtRoot(*r, r->pf.fastestClass());
  EXPECT_GT(s, 1.3) << "two independent calls should overlap";
}

TEST(Parallelizer, StatsCountIlps) {
  auto r = runOn(kDoallProgram, platform::platformA());
  EXPECT_GT(r->outcome.stats.numIlps, 0);
  EXPECT_GT(r->outcome.stats.numVars, 0);
  EXPECT_GT(r->outcome.stats.numConstraints, 0);
  EXPECT_GT(r->outcome.stats.wallSeconds, 0.0);
}

TEST(Parallelizer, HeterogeneousGeneratesMoreIlpsThanHomogeneous) {
  auto het = runOn(kDoallProgram, platform::platformA());
  auto bundle = htg::buildFromSource(kDoallProgram);
  const platform::Platform real = platform::platformA();
  HomogeneousRun homog =
      runHomogeneousBaseline(bundle.graph, real, real.slowestClass());
  EXPECT_GT(het->outcome.stats.numIlps, homog.outcome.stats.numIlps)
      << "per-class candidate extraction multiplies ILP count (Table I)";
  EXPECT_GT(het->outcome.stats.numVars, homog.outcome.stats.numVars);
  EXPECT_GT(het->outcome.stats.numConstraints, homog.outcome.stats.numConstraints);
}

TEST(Parallelizer, HomogeneousViewHasOneClass) {
  const platform::Platform real = platform::platformA();
  const platform::Platform view = homogeneousView(real, real.slowestClass());
  EXPECT_EQ(view.numClasses(), 1);
  EXPECT_EQ(view.numCores(), real.numCores());
  EXPECT_NEAR(view.classAt(0).frequencyMHz, 100.0, 1e-9);
}

TEST(Parallelizer, BestRootRefIsValid) {
  auto r = runOn(kDoallProgram, platform::platformA());
  const SolutionRef ref = r->outcome.bestRoot(r->bundle.graph, 0);
  EXPECT_TRUE(ref.valid());
  EXPECT_EQ(ref.node, r->bundle.graph.root());
}

TEST(Parallelizer, ChunkingAblationReducesSpeedup) {
  ParallelizerOptions noChunks;
  noChunks.enableChunking = false;
  auto with = runOn(kDoallProgram, platform::platformA());
  auto without = runOn(kDoallProgram, platform::platformA(), noChunks);
  EXPECT_GE(speedupAtRoot(*with, 0) + 1e-9, speedupAtRoot(*without, 0))
      << "iteration chunking can only help on DOALL-dominated code";
}

TEST(Parallelizer, TinyRegionsSkipIlp) {
  auto r = runOn("int main() { int x = 1; int y = 2; return x + y; }",
                 platform::platformA());
  EXPECT_EQ(r->outcome.stats.numIlps, 0) << "granularity control must skip trivial regions";
  EXPECT_NEAR(speedupAtRoot(*r, 0), 1.0, 1e-9);
}

}  // namespace
}  // namespace hetpar::parallel
