#include "hetpar/parallel/solution.hpp"

#include <gtest/gtest.h>

namespace hetpar::parallel {
namespace {

SolutionCandidate make(SolutionKind kind, ClassId cls, double time, int extra = 0) {
  SolutionCandidate c;
  c.kind = kind;
  c.mainClass = cls;
  c.timeSeconds = time;
  c.extraProcs = {extra, 0};
  c.taskClass.assign(static_cast<std::size_t>(1 + extra), cls);
  return c;
}

TEST(ParallelSet, SequentialLookupPerClass) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::Sequential, 1, 4.0));
  set.add(make(SolutionKind::TaskParallel, 0, 3.0, 2));
  EXPECT_EQ(set.sequentialFor(0), 0);
  EXPECT_EQ(set.sequentialFor(1), 1);
  EXPECT_EQ(set.sequentialFor(2), -1);
}

TEST(ParallelSet, BestForPicksFastestOfClass) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::TaskParallel, 0, 3.0, 2));
  set.add(make(SolutionKind::TaskParallel, 0, 5.0, 1));
  set.add(make(SolutionKind::Sequential, 1, 1.0));
  EXPECT_EQ(set.bestFor(0), 1);
  EXPECT_EQ(set.bestFor(1), 3);
  EXPECT_EQ(set.bestFor(2), -1);
}

TEST(ParallelSet, ForClassFilters) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::Sequential, 1, 4.0));
  set.add(make(SolutionKind::TaskParallel, 1, 2.0, 1));
  const auto c1 = set.forClass(1);
  EXPECT_EQ(c1, (std::vector<int>{1, 2}));
}

TEST(ParallelSet, PruneDropsDominated) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::TaskParallel, 0, 5.0, 2));  // dominated by next
  set.add(make(SolutionKind::TaskParallel, 0, 4.0, 2));
  set.add(make(SolutionKind::TaskParallel, 0, 6.0, 1));  // fewer procs: kept
  set.pruneDominated();
  EXPECT_EQ(set.size(), 3u);
  // 5.0/2-extra candidate must be gone.
  for (const auto& c : set.all()) EXPECT_NE(c.timeSeconds, 5.0);
}

TEST(ParallelSet, PruneKeepsSequentialAlways) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  // A parallel candidate that is faster AND uses the same procs would
  // dominate, but sequential candidates are protected by contract.
  SolutionCandidate p = make(SolutionKind::TaskParallel, 0, 1.0, 0);
  set.add(p);
  set.pruneDominated();
  EXPECT_GE(set.sequentialFor(0), 0);
}

TEST(ParallelSet, PruneNeverCrossesClasses) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::Sequential, 1, 1.0));
  set.add(make(SolutionKind::TaskParallel, 0, 9.0, 1));
  set.pruneDominated();
  // Class 1 being faster must not delete class 0 candidates.
  EXPECT_GE(set.bestFor(0), 0);
  EXPECT_EQ(set.size(), 3u);
}

TEST(ParallelSet, CapPerClassKeepsSequentialPlusFastest) {
  ParallelSet set;
  set.add(make(SolutionKind::Sequential, 0, 10.0));
  set.add(make(SolutionKind::TaskParallel, 0, 7.0, 1));
  set.add(make(SolutionKind::TaskParallel, 0, 3.0, 3));
  set.add(make(SolutionKind::TaskParallel, 0, 5.0, 2));
  set.capPerClass(2);  // sequential + 1 fastest
  EXPECT_EQ(set.size(), 2u);
  EXPECT_GE(set.sequentialFor(0), 0);
  EXPECT_DOUBLE_EQ(set.at(set.bestFor(0)).timeSeconds, 3.0);
}

TEST(SolutionCandidate, TotalProcsIsMainPlusExtras) {
  SolutionCandidate c;
  c.taskClass = {0, 1, 1};  // 3 tasks: main + 2 extras...
  c.extraProcs = {1, 3};    // ...already counted here, plus 2 nested borrows
  EXPECT_EQ(c.totalProcs(), 5);
  EXPECT_EQ(c.numTasks(), 3);
}

TEST(SolutionRef, Validity) {
  SolutionRef r;
  EXPECT_FALSE(r.valid());
  r.node = 3;
  EXPECT_FALSE(r.valid());
  r.index = 0;
  EXPECT_TRUE(r.valid());
}

}  // namespace
}  // namespace hetpar::parallel
