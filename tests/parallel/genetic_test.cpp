// Genetic-algorithm baseline [7] vs the ILP: the GA must produce feasible
// solutions with the same cost semantics, and the ILP must never be worse
// (it is optimal; the GA only iterates until its stopping criterion).
#include "hetpar/parallel/genetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hetpar::parallel {
namespace {

IlpChild seqChild(std::vector<double> timePerClass) {
  IlpChild child;
  for (double t : timePerClass) {
    IlpCandidate cand;
    cand.timeSeconds = t;
    cand.extraProcs.assign(timePerClass.size(), 0);
    child.byClass.push_back({cand});
  }
  return child;
}

IlpRegion makeRegion(int children) {
  IlpRegion r;
  r.name = "ga";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 1e-6;
  r.numProcsPerClass = {2, 2};
  for (int i = 0; i < children; ++i)
    r.children.push_back(seqChild({(1.0 + i % 3) * 1e-3, (1.0 + i % 3) * 0.4e-3}));
  return r;
}

TEST(Genetic, ProducesFeasibleSolutions) {
  const IlpRegion r = makeRegion(6);
  const IlpParResult res = solveGaPar(r);
  ASSERT_TRUE(res.feasible);
  EXPECT_FALSE(res.provenOptimal) << "a GA cannot certify optimality";
  // Re-evaluating the returned assignment must reproduce the fitness.
  std::vector<int> picks;
  for (auto [cls, s] : res.childChoice) {
    (void)cls;
    picks.push_back(s);
  }
  const double check = evaluateAssignment(r, res.childTask, res.taskClass, picks);
  EXPECT_NEAR(check, res.timeSeconds, 1e-12);
}

TEST(Genetic, IlpNeverWorse) {
  for (int children : {3, 5, 8}) {
    const IlpRegion r = makeRegion(children);
    ilp::BranchAndBoundSolver solver;
    const IlpParResult ilpRes = solveIlpPar(r, solver);
    const IlpParResult gaRes = solveGaPar(r);
    ASSERT_TRUE(ilpRes.feasible);
    ASSERT_TRUE(gaRes.feasible);
    EXPECT_LE(ilpRes.timeSeconds, gaRes.timeSeconds + 1e-9)
        << children << " children: the ILP optimum cannot lose to the GA";
  }
}

TEST(Genetic, FindsNearOptimalOnEasyInstances) {
  // Independent equal children across two classes: a well-known optimum.
  const IlpRegion r = makeRegion(8);
  ilp::BranchAndBoundSolver solver;
  const IlpParResult ilpRes = solveIlpPar(r, solver);
  GaOptions opts;
  opts.generations = 250;
  const IlpParResult gaRes = solveGaPar(r, opts);
  ASSERT_TRUE(ilpRes.feasible && gaRes.feasible);
  EXPECT_LE(gaRes.timeSeconds, ilpRes.timeSeconds * 1.4)
      << "the GA should land within 40% of the optimum here";
}

TEST(Genetic, DeterministicForFixedSeed) {
  const IlpRegion r = makeRegion(6);
  GaOptions opts;
  opts.seed = 777;
  const IlpParResult a = solveGaPar(r, opts);
  const IlpParResult b = solveGaPar(r, opts);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.childTask, b.childTask);
  EXPECT_DOUBLE_EQ(a.timeSeconds, b.timeSeconds);
}

TEST(EvaluateAssignment, MatchesHandComputedCosts) {
  IlpRegion r = makeRegion(2);  // children cost 1ms / 2ms on class 0
  // Both on main task: no TCO, no comm.
  EXPECT_NEAR(evaluateAssignment(r, {0, 0}, {0}, {0, 0}), 3e-3, 1e-12);
  // Split without dependence: makespan = max(1ms, TCO + 2ms).
  EXPECT_NEAR(evaluateAssignment(r, {0, 1}, {0, 0}, {0, 0}), 2e-3 + 1e-6, 1e-12);
  // Fast class on task 1: 2ms * 0.4 = 0.8ms + TCO.
  EXPECT_NEAR(evaluateAssignment(r, {0, 1}, {0, 1}, {0, 0}), std::max(1e-3, 0.8e-3 + 1e-6),
              1e-12);
}

TEST(EvaluateAssignment, DependenceSerializesAcrossTasks) {
  IlpRegion r = makeRegion(2);
  IlpEdgeSpec e;
  e.from = 0;
  e.to = 1;
  e.commSeconds = 0.5e-3;
  r.edges.push_back(e);
  // Cut dependence: 1ms + (2ms + comm + TCO) path.
  EXPECT_NEAR(evaluateAssignment(r, {0, 1}, {0, 0}, {0, 0}),
              1e-3 + 2e-3 + 0.5e-3 + 1e-6, 1e-12);
  // Same task: plain sum, no comm.
  EXPECT_NEAR(evaluateAssignment(r, {0, 0}, {0}, {0, 0}), 3e-3, 1e-12);
}

TEST(EvaluateAssignment, RejectsInfeasibleAssignments) {
  IlpRegion r = makeRegion(3);
  // Backward task order violates Eq 10.
  EXPECT_TRUE(std::isinf(evaluateAssignment(r, {1, 0, 0}, {0, 0}, {0, 0, 0})));
  // Task 0 not on seqPC.
  EXPECT_TRUE(std::isinf(evaluateAssignment(r, {0, 0, 0}, {1}, {0, 0, 0})));
  // Class budget: 5 tasks needed but maxTasks... use class with 2 units.
  r.numProcsPerClass = {1, 1};
  EXPECT_TRUE(std::isinf(evaluateAssignment(r, {0, 1, 2}, {0, 0, 0}, {0, 0, 0})))
      << "two extra class-0 tasks exceed the single class-0 unit";
}

}  // namespace
}  // namespace hetpar::parallel
