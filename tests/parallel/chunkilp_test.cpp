// Unit tests of the iteration-count DOALL ILP (solveChunkIlp).
#include <gtest/gtest.h>

#include <numeric>

#include "hetpar/parallel/ilppar_model.hpp"

namespace hetpar::parallel {
namespace {

ChunkRegion platformARegion(long long iterations) {
  ChunkRegion r;
  r.name = "test";
  r.iterations = iterations;
  // 100/250/500 MHz -> per-iteration times 50/20/10 us at 5000 ops/iter.
  r.secondsPerIter = {50e-6, 20e-6, 10e-6};
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 25e-6;
  r.numProcsPerClass = {1, 1, 2};
  return r;
}

TEST(ChunkIlp, CoversAllIterations) {
  const ChunkRegion r = platformARegion(1000);
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.provenOptimal);
  const double total = std::accumulate(res.taskIterations.begin(), res.taskIterations.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 1000.0);
}

TEST(ChunkIlp, BalancesProportionallyToFrequency) {
  const ChunkRegion r = platformARegion(1350);
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  // Ideal split over 100+250+500+500 "MHz" = 1350 total: 100, 250, 500, 500
  // iterations (modulo TCO rounding). Check per-class totals.
  std::map<ClassId, double> perClass;
  for (std::size_t t = 0; t < res.taskClass.size(); ++t)
    perClass[res.taskClass[t]] += res.taskIterations[t];
  EXPECT_NEAR(perClass[0], 100.0, 15.0);
  EXPECT_NEAR(perClass[1], 250.0, 20.0);
  EXPECT_NEAR(perClass[2], 1000.0, 30.0);
  // Makespan close to the balanced optimum: 100 iters * 50us = 5ms.
  EXPECT_NEAR(res.timeSeconds, 5e-3, 0.5e-3);
}

TEST(ChunkIlp, MainTaskOnSeqPC) {
  const ChunkRegion r = platformARegion(500);
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  ASSERT_FALSE(res.taskClass.empty());
  EXPECT_EQ(res.taskClass[0], 0);
}

TEST(ChunkIlp, RespectsClassBudgets) {
  ChunkRegion r = platformARegion(2000);
  r.numProcsPerClass = {1, 1, 1};  // only one fast core now
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  int fastTasks = 0;
  for (std::size_t t = 0; t < res.taskClass.size(); ++t)
    if (res.taskClass[t] == 2) ++fastTasks;
  EXPECT_LE(fastTasks, 1);
}

TEST(ChunkIlp, MaxProcsCapsTaskCount) {
  ChunkRegion r = platformARegion(2000);
  r.maxProcs = 2;
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.taskClass.size(), 2u);
}

TEST(ChunkIlp, TcoMakesTinyLoopsStaySequential) {
  ChunkRegion r = platformARegion(4);
  r.taskCreationSeconds = 10e-3;  // spawning costs far more than the work
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  // All iterations on the main task.
  EXPECT_NEAR(res.taskIterations[0], 4.0, 1e-9);
}

TEST(ChunkIlp, CommunicationShiftsWorkHome) {
  ChunkRegion cheap = platformARegion(1000);
  ChunkRegion pricey = platformARegion(1000);
  pricey.commInLatency = 1e-3;
  pricey.commInSecondsPerIter = 40e-6;  // shipping data ~ as expensive as work
  ilp::BranchAndBoundSolver solver;
  const ChunkResult a = solveChunkIlp(cheap, solver);
  const ChunkResult b = solveChunkIlp(pricey, solver);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_GE(b.taskIterations[0], a.taskIterations[0])
      << "expensive communication keeps more iterations on the main task";
  EXPECT_GE(b.timeSeconds, a.timeSeconds);
}

TEST(ChunkIlp, UpperBoundPrunesWithoutChangingOptimum) {
  const ChunkRegion base = platformARegion(1350);
  ilp::BranchAndBoundSolver solver;
  const ChunkResult free = solveChunkIlp(base, solver);
  ASSERT_TRUE(free.feasible);
  ChunkRegion bounded = base;
  bounded.upperBoundSeconds = free.timeSeconds * 1.001;
  const ChunkResult tight = solveChunkIlp(bounded, solver);
  ASSERT_TRUE(tight.feasible);
  EXPECT_NEAR(tight.timeSeconds, free.timeSeconds, free.timeSeconds * 0.01);
}

TEST(ChunkIlp, SingleIterationGranularity) {
  // 5 iterations over two equal classes: the split must be exact integers.
  ChunkRegion r;
  r.name = "tiny";
  r.iterations = 5;
  r.secondsPerIter = {1e-3, 1e-3};
  r.seqPC = 0;
  r.maxProcs = 2;
  r.maxTasks = 2;
  r.taskCreationSeconds = 1e-6;
  r.numProcsPerClass = {1, 1};
  ilp::BranchAndBoundSolver solver;
  const ChunkResult res = solveChunkIlp(r, solver);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.taskIterations.size(), 2u);
  // 3 + 2 split (either order).
  const double a = res.taskIterations[0];
  const double b = res.taskIterations[1];
  EXPECT_DOUBLE_EQ(a + b, 5.0);
  EXPECT_NEAR(std::max(a, b), 3.0, 1e-9);
}

}  // namespace
}  // namespace hetpar::parallel
