// Solve-engine tests: jobs-count invariance of the wavefront scheduler,
// stack-safety on degenerate HTG shapes, and ILP region memoization.
// Thread-heavy cases carry the `tsan` ctest label via CMake and run under
// the ThreadSanitizer preset.
#include "hetpar/parallel/parallelizer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/homogeneous.hpp"
#include "hetpar/parallel/region_cache.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::parallel {
namespace {

// ThreadSanitizer slows the solver by an order of magnitude; the tsan preset
// still runs these tests, just on a trimmed workload.
#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

/// Field-exact candidate comparison: the determinism guarantee is that any
/// jobs count produces THE SAME outcome, down to the last double bit, not
/// merely an equally good one.
void expectSameCandidate(const SolutionCandidate& a, const SolutionCandidate& b,
                         const std::string& where) {
  EXPECT_EQ(a.kind, b.kind) << where;
  EXPECT_EQ(a.mainClass, b.mainClass) << where;
  EXPECT_EQ(a.timeSeconds, b.timeSeconds) << where;
  EXPECT_EQ(a.extraProcs, b.extraProcs) << where;
  EXPECT_EQ(a.taskClass, b.taskClass) << where;
  EXPECT_EQ(a.childTask, b.childTask) << where;
  ASSERT_EQ(a.childChoice.size(), b.childChoice.size()) << where;
  for (std::size_t i = 0; i < a.childChoice.size(); ++i) {
    EXPECT_EQ(a.childChoice[i].node, b.childChoice[i].node) << where << " choice " << i;
    EXPECT_EQ(a.childChoice[i].index, b.childChoice[i].index) << where << " choice " << i;
  }
  EXPECT_EQ(a.chunkIterations, b.chunkIterations) << where;
}

void expectSameOutcome(const ParallelizeOutcome& a, const ParallelizeOutcome& b,
                       const std::string& label) {
  ASSERT_EQ(a.table.size(), b.table.size()) << label;
  for (const auto& [id, setA] : a.table) {
    const auto it = b.table.find(id);
    ASSERT_NE(it, b.table.end()) << label << " node " << id;
    const ParallelSet& setB = it->second;
    ASSERT_EQ(setA.size(), setB.size()) << label << " node " << id;
    for (std::size_t i = 0; i < setA.size(); ++i)
      expectSameCandidate(setA.at(static_cast<int>(i)), setB.at(static_cast<int>(i)),
                          label + " node " + std::to_string(id) + " cand " +
                              std::to_string(i));
  }
}

ParallelizeOutcome planWithJobs(const htg::Graph& graph, const platform::Platform& pf,
                                int jobs, ParallelizerOptions opts = {}) {
  const cost::TimingModel timing(pf);
  opts.jobs = jobs;
  Parallelizer par(graph, timing, opts);
  return par.run();
}

TEST(ParallelizerJobs, FullBenchsuiteOutcomeIsJobsInvariant) {
  // The acceptance bar for the concurrent engine: --jobs 1 and --jobs N
  // yield identical candidates and objective values on every benchmark.
  //
  // The solver's wall-clock limit is the one nondeterministic input: with
  // more workers than cores a heavy solve runs slower in wall time and can
  // be interrupted at a different incumbent. Invariance is guaranteed for
  // wall-clock-free limits, so the test disables the time limit and lets
  // the (deterministic) node limit bound the work. `spectral` — the only
  // benchmark with solves heavy enough to hit limits at all — gets its own
  // test below with a tighter node budget.
  const platform::Platform pf = platform::platformA();
  ParallelizerOptions opts;
  opts.ilpTimeLimitSeconds = 1e9;
  opts.ilpMaxNodes = 50'000;
  for (const auto& b : benchsuite::suite()) {
    if (b.name == "spectral") continue;
    // tsan multiplies solver cost ~30x; one light benchmark still covers
    // the heterogeneous multi-class engine path under the race detector.
    if (kUnderTsan && b.name != "iir_4") continue;
    SCOPED_TRACE(b.name);
    htg::FrontendBundle bundle = htg::buildFromSource(b.source);
    const ParallelizeOutcome seq = planWithJobs(bundle.graph, pf, 1, opts);
    const ParallelizeOutcome par = planWithJobs(bundle.graph, pf, 4, opts);
    expectSameOutcome(seq, par, b.name);
  }
}

TEST(ParallelizerJobs, SpectralInvariantUnderDeterministicLimits) {
  // Deliberately starve the node budget so several solves stop on the
  // limit: interrupted incumbents must ALSO be jobs-invariant as long as
  // the interruption criterion is deterministic (nodes, not seconds).
  if (kUnderTsan) GTEST_SKIP() << "solver workload too heavy under tsan";
  const platform::Platform pf = platform::platformA();
  ParallelizerOptions opts;
  opts.ilpTimeLimitSeconds = 1e9;
  opts.ilpMaxNodes = 50'000;
  htg::FrontendBundle bundle = htg::buildFromSource(benchsuite::find("spectral").source);
  const ParallelizeOutcome seq = planWithJobs(bundle.graph, pf, 1, opts);
  const ParallelizeOutcome par = planWithJobs(bundle.graph, pf, 4, opts);
  expectSameOutcome(seq, par, "spectral");
}

TEST(ParallelizerJobs, JobsInvariantOnHomogeneousView) {
  // The baseline planner shares the engine; cover the single-class path.
  const platform::Platform real = platform::platformB();
  htg::FrontendBundle bundle = htg::buildFromSource(benchsuite::find("fir_256").source);
  ParallelizerOptions seqOpts;
  seqOpts.jobs = 1;
  ParallelizerOptions parOpts;
  parOpts.jobs = 8;
  const HomogeneousRun seq =
      runHomogeneousBaseline(bundle.graph, real, real.fastestClass(), seqOpts);
  const HomogeneousRun par =
      runHomogeneousBaseline(bundle.graph, real, real.fastestClass(), parOpts);
  expectSameOutcome(seq.outcome, par.outcome, "fir_256 homogeneous");
}

/// A pathological HTG: one Block chain tens of thousands of levels deep.
/// Zero op mixes keep every region below the granularity threshold, so the
/// walk is pure parallel-set propagation — exactly the shape that used to
/// recurse once per level.
htg::Graph deepChain(int depth) {
  htg::Graph g;
  for (int i = 0; i < depth; ++i) {
    htg::Node n;
    n.kind = htg::NodeKind::Block;
    n.execCount = 1.0;
    g.addNode(std::move(n));
  }
  htg::Node leaf;
  leaf.kind = htg::NodeKind::Simple;
  leaf.execCount = 1.0;
  g.addNode(std::move(leaf));
  for (int i = 0; i < depth; ++i) g.node(i).children = {i + 1};
  g.setRoot(0);
  return g;
}

TEST(ParallelizerJobs, DeepNestingDoesNotOverflowTheStack) {
  const int depth = 100000;
  const htg::Graph g = deepChain(depth);
  const platform::Platform pf = platform::platformA();
  const ParallelizeOutcome out = planWithJobs(g, pf, 1);
  ASSERT_EQ(out.table.size(), static_cast<std::size_t>(depth) + 1);
  const ParallelSet& root = out.table.at(g.root());
  for (ClassId c = 0; c < pf.numClasses(); ++c) EXPECT_GE(root.sequentialFor(c), 0);
  EXPECT_EQ(out.stats.numIlps, 0);
}

TEST(ParallelizerJobs, DeepNestingSurvivesConcurrentEngine) {
  // The wavefront scheduler posts parent continuations to the pool's queue
  // instead of unwinding them on a worker's stack; a long trivial chain is
  // the worst case.
  const int depth = 100000;
  const htg::Graph g = deepChain(depth);
  const ParallelizeOutcome out = planWithJobs(g, platform::platformA(), 4);
  EXPECT_EQ(out.table.size(), static_cast<std::size_t>(depth) + 1);
}

TEST(ParallelizerJobs, SharedCacheMemoizesAcrossRuns) {
  // Planning the same program twice against the same platform with a shared
  // cache must answer every region request of the second run from memory.
  htg::FrontendBundle bundle = htg::buildFromSource(benchsuite::find("fir_256").source);
  const platform::Platform pf = platform::platformA();
  ParallelizerOptions opts;
  opts.regionCache = std::make_shared<IlpRegionCache>();

  const ParallelizeOutcome first = planWithJobs(bundle.graph, pf, 1, opts);
  ASSERT_GT(first.stats.numIlps, 0);
  const ParallelizeOutcome second = planWithJobs(bundle.graph, pf, 1, opts);

  expectSameOutcome(first, second, "cached replan");
  EXPECT_EQ(second.stats.numIlps, 0) << "every solve must be a cache hit";
  EXPECT_EQ(second.stats.cacheMisses, 0);
  EXPECT_EQ(second.stats.cacheHits, first.stats.numIlps + first.stats.cacheHits);
}

TEST(ParallelizerJobs, CacheDoesNotChangeTheOutcome) {
  htg::FrontendBundle bundle = htg::buildFromSource(benchsuite::find("iir_4").source);
  const platform::Platform pf = platform::platformB();
  ParallelizerOptions cached;  // default: private region cache
  ParallelizerOptions uncached;
  uncached.enableRegionCache = false;
  const ParallelizeOutcome with = planWithJobs(bundle.graph, pf, 1, cached);
  const ParallelizeOutcome without = planWithJobs(bundle.graph, pf, 1, uncached);
  expectSameOutcome(with, without, "iir_4 cache ablation");
  EXPECT_EQ(without.stats.cacheHits, 0);
  EXPECT_EQ(without.stats.cacheMisses, 0);
}

TEST(ParallelizerJobs, IdenticalSubprogramsHitTheCacheWithinOneRun) {
  // Two structurally identical function bodies over different (same-sized)
  // arrays produce byte-identical regions at some sweep step.
  const char* twins = R"(
    int a[4096]; int b[4096];
    void fa(int v[4096]) { for (int i = 0; i < 4096; i = i + 1) { v[i] = i * 3 + 1; } }
    void fb(int v[4096]) { for (int i = 0; i < 4096; i = i + 1) { v[i] = i * 3 + 1; } }
    int main() {
      fa(a);
      fb(b);
      return a[7] + b[9];
    }
  )";
  htg::FrontendBundle bundle = htg::buildFromSource(twins);
  const ParallelizeOutcome out = planWithJobs(bundle.graph, platform::platformA(), 1);
  EXPECT_GT(out.stats.cacheHits, 0) << "twin subtrees must memoize";
}

TEST(ParallelizerJobs, ExhaustedSolverLimitsStillYieldValidPlans) {
  // With a starved node budget every ILP gives up; the engine must fall
  // back to sequential/greedy candidates and never produce a worse-than-
  // sequential "best".
  htg::FrontendBundle bundle = htg::buildFromSource(benchsuite::find("fir_256").source);
  const platform::Platform pf = platform::platformA();
  ParallelizerOptions starved;
  starved.ilpMaxNodes = 1;
  const ParallelizeOutcome out = planWithJobs(bundle.graph, pf, 2, starved);
  for (ClassId c = 0; c < pf.numClasses(); ++c) {
    const ParallelSet& root = out.table.at(bundle.graph.root());
    const int seq = root.sequentialFor(c);
    const int best = root.bestFor(c);
    ASSERT_GE(seq, 0);
    ASSERT_GE(best, 0);
    EXPECT_LE(root.at(best).timeSeconds, root.at(seq).timeSeconds + 1e-12);
  }
}

}  // namespace
}  // namespace hetpar::parallel
