// White-box tests of the ILPPAR model (Eq 1-18) on hand-built regions.
#include "hetpar/parallel/ilppar_model.hpp"

#include <gtest/gtest.h>

namespace hetpar::parallel {
namespace {

// Convenience: a child whose candidates are sequential-only, with the given
// per-class times.
IlpChild seqChild(std::vector<double> timePerClass) {
  IlpChild child;
  for (double t : timePerClass) {
    IlpCandidate cand;
    cand.timeSeconds = t;
    cand.extraProcs.assign(timePerClass.size(), 0);
    child.byClass.push_back({cand});
  }
  return child;
}

IlpRegion twoClassRegion(int children, double slowTime, double fastTime) {
  IlpRegion r;
  r.name = "test";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 4;
  r.taskCreationSeconds = 1e-6;
  r.numProcsPerClass = {2, 2};
  for (int i = 0; i < children; ++i) r.children.push_back(seqChild({slowTime, fastTime}));
  return r;
}

TEST(IlpPar, IndependentChildrenSpreadAcrossTasks) {
  // 4 independent children, 10ms each on class 0, 4ms on class 1.
  IlpRegion r = twoClassRegion(4, 10e-3, 4e-3);
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.provenOptimal);
  // Optimum: 4 tasks; two on fast cores (1 child each: 4ms), two slow cores
  // wait... better: fast cores take more children. Possible optimum: fast
  // cores take 3 children between them (8ms max) + slow takes 1 (10ms)
  // -> 10ms; or 2 fast tasks with 2 children each = 8ms total.
  EXPECT_LE(res.timeSeconds, 10.1e-3);
  EXPECT_GE(res.taskClass.size(), 2u);
}

TEST(IlpPar, SequentialChainStaysTogether) {
  IlpRegion r = twoClassRegion(3, 5e-3, 5e-3);
  // chain 0 -> 1 -> 2 with hefty communication
  for (int i = 0; i + 1 < 3; ++i) {
    IlpEdgeSpec e;
    e.from = i;
    e.to = i + 1;
    e.commSeconds = 50e-3;  // cutting is catastrophic
    r.edges.push_back(e);
  }
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  // All children in one task: 3 * 5ms + TCO.
  EXPECT_NEAR(res.timeSeconds, 15e-3, 1e-3);
  EXPECT_EQ(res.childTask[0], res.childTask[1]);
  EXPECT_EQ(res.childTask[1], res.childTask[2]);
}

TEST(IlpPar, DependentChildrenRespectPredecessorCosts) {
  // 0 -> 1 with cheap comm: splitting cannot beat sequential because the
  // path length is the same, so the solver must not report a speedup.
  IlpRegion r = twoClassRegion(2, 5e-3, 5e-3);
  IlpEdgeSpec e;
  e.from = 0;
  e.to = 1;
  e.commSeconds = 1e-4;
  r.edges.push_back(e);
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_GE(res.timeSeconds, 10e-3 - 1e-9) << "a dependence chain cannot run faster than its sum";
}

TEST(IlpPar, MainTaskPinnedToSeqPC) {
  IlpRegion r = twoClassRegion(3, 8e-3, 2e-3);
  r.seqPC = 1;
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  ASSERT_FALSE(res.taskClass.empty());
  EXPECT_EQ(res.taskClass[0], 1);
}

TEST(IlpPar, ClassBudgetRespected) {
  // Only one fast core: at most one task may map to class 1.
  IlpRegion r = twoClassRegion(4, 10e-3, 1e-3);
  r.numProcsPerClass = {3, 1};
  r.seqPC = 0;
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  int fastTasks = 0;
  for (ClassId c : res.taskClass)
    if (c == 1) ++fastTasks;
  EXPECT_LE(fastTasks, 1);
}

TEST(IlpPar, MaxProcsBudgetLimitsTasks) {
  IlpRegion r = twoClassRegion(4, 10e-3, 10e-3);
  r.maxProcs = 2;
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.taskClass.size(), 2u);
}

TEST(IlpPar, HeterogeneousBalancingPrefersFastCores) {
  // 8 equal chunks; class 1 is 5x faster. The fast cores should receive
  // the bulk of the work.
  IlpRegion r = twoClassRegion(8, 10e-3, 2e-3);
  r.maxTasks = 4;
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  std::map<int, int> childrenPerTask;
  for (int t : res.childTask) ++childrenPerTask[t];
  // Count children on fast-class tasks.
  int fastChildren = 0;
  for (std::size_t n = 0; n < res.childTask.size(); ++n) {
    const int t = res.childTask[static_cast<std::size_t>(n)];
    if (t < static_cast<int>(res.taskClass.size()) &&
        res.taskClass[static_cast<std::size_t>(t)] == 1)
      ++fastChildren;
  }
  EXPECT_GE(fastChildren, 5) << "5x faster cores must carry most of the load";
}

TEST(IlpPar, NestedCandidateConsumesBudget) {
  // One child offers a parallel candidate using 3 extra procs; with
  // maxProcs = 2 the model must fall back to its sequential candidate.
  IlpRegion r;
  r.name = "nested";
  r.seqPC = 0;
  r.maxProcs = 2;
  r.maxTasks = 2;
  r.taskCreationSeconds = 1e-6;
  r.numProcsPerClass = {4};
  IlpChild child;
  IlpCandidate seq;
  seq.timeSeconds = 10e-3;
  seq.extraProcs = {0};
  IlpCandidate par;
  par.timeSeconds = 3e-3;
  par.extraProcs = {3};
  child.byClass.push_back({seq, par});
  r.children.push_back(child);
  // A second child so the region is non-trivial.
  r.children.push_back(seqChild({5e-3}));
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  // Budget 2: child0 parallel (1 + 3 procs) is infeasible; expect the
  // sequential candidate => time >= 10ms.
  EXPECT_GE(res.timeSeconds, 10e-3 - 1e-9);
}

TEST(IlpPar, NestedCandidateUsedWhenBudgetAllows) {
  IlpRegion r;
  r.name = "nested_ok";
  r.seqPC = 0;
  r.maxProcs = 4;
  r.maxTasks = 2;
  r.taskCreationSeconds = 1e-6;
  r.numProcsPerClass = {4};
  IlpChild child;
  IlpCandidate seq;
  seq.timeSeconds = 10e-3;
  seq.extraProcs = {0};
  IlpCandidate par;
  par.timeSeconds = 3e-3;
  par.extraProcs = {3};
  child.byClass.push_back({seq, par});
  r.children.push_back(child);
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.timeSeconds, 3.5e-3) << "Parallel Set Mapping must pick the nested candidate";
}

TEST(IlpPar, CommInChargesOffMainTasks) {
  // One child with a huge comm-in payload: moving it off the main task
  // costs more than the work saves.
  IlpRegion r = twoClassRegion(2, 5e-3, 5e-3);
  IlpEdgeSpec in;
  in.from = -1;
  in.to = 1;
  in.commSeconds = 100e-3;
  r.edges.push_back(in);
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.childTask[1], 0) << "child 1 must stay on the main task";
}

TEST(IlpPar, StatsReported) {
  IlpRegion r = twoClassRegion(3, 1e-3, 1e-3);
  ilp::BranchAndBoundSolver solver;
  IlpParResult res = solveIlpPar(r, solver);
  ASSERT_TRUE(res.feasible);
  EXPECT_GT(res.stats.numVars, 10u);
  EXPECT_GT(res.stats.numConstraints, 10u);
  EXPECT_GE(res.stats.nodesExplored, 1);
}

TEST(IlpPar, ModelCountsGrowWithClasses) {
  IlpRegion homog = twoClassRegion(4, 1e-3, 1e-3);
  homog.numProcsPerClass = {4};
  for (auto& c : homog.children) c.byClass.resize(1);
  IlpParVars v1, v2;
  ilp::Model m1 = buildIlpParModel(homog, v1);
  IlpRegion het = twoClassRegion(4, 1e-3, 1e-3);
  ilp::Model m2 = buildIlpParModel(het, v2);
  EXPECT_GT(m2.numVars(), m1.numVars()) << "the class dimension adds variables (Table I)";
  EXPECT_GT(m2.numConstraints(), m1.numConstraints());
}

}  // namespace
}  // namespace hetpar::parallel
