#include "hetpar/frontend/sema.hpp"

#include <gtest/gtest.h>

#include <set>

#include "hetpar/frontend/parser.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::frontend {
namespace {

Program parsed(const char* src) { return parseProgram(src); }

TEST(Sema, AssignsUniqueStatementIds) {
  Program p = parsed(R"(int main() {
    int x = 1;
    for (int i = 0; i < 3; i = i + 1) { x = x + i; }
    return x;
  })");
  SemaResult r = analyze(p);
  std::set<int> ids;
  forEachStmt(p, [&](Stmt& s) {
    EXPECT_GE(s.id, 0);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
  });
  EXPECT_EQ(static_cast<int>(ids.size()), r.numStatements);
}

TEST(Sema, RequiresMain) {
  Program p = parsed("int foo() { return 1; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsUndeclaredVariable) {
  Program p = parsed("int main() { x = 3; return 0; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsUndeclaredInExpression) {
  Program p = parsed("int main() { int x = y + 1; return x; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsDuplicateGlobal) {
  Program p = parsed("int a; int a; int main() { return 0; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsDuplicateFunction) {
  Program p = parsed("int f() { return 1; } int f() { return 2; } int main() { return 0; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsRedeclarationInFunction) {
  Program p = parsed("int main() { int x = 1; int x = 2; return x; }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, LocalMayShadowGlobal) {
  Program p = parsed("int x = 5; int main() { int x = 1; return x; }");
  EXPECT_NO_THROW(analyze(p));
}

TEST(Sema, RejectsIndexCountMismatch) {
  Program p = parsed("int a[4][4]; int main() { a[1] = 2; return 0; }");
  EXPECT_THROW(analyze(p), SemaError);
  Program q = parsed("int b[4]; int main() { return b[1][2]; }");
  EXPECT_THROW(analyze(q), SemaError);
}

TEST(Sema, RejectsCallArityMismatch) {
  Program p = parsed("int f(int a, int b) { return a + b; } int main() { return f(1); }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsUnknownCallee) {
  Program p = parsed("int main() { return g(1); }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, RejectsArrayArgumentShapeMismatch) {
  Program p = parsed(R"(
    int a[8];
    void f(int v[16]) { v[0] = 1; }
    int main() { f(a); return 0; }
  )");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, AcceptsMatchingArrayArgument) {
  Program p = parsed(R"(
    int a[8];
    void f(int v[8]) { v[0] = 1; }
    int main() { f(a); return a[0]; }
  )");
  EXPECT_NO_THROW(analyze(p));
}

TEST(Sema, RejectsRecursion) {
  Program p = parsed("int f(int n) { return f(n - 1); } int main() { return f(3); }");
  EXPECT_THROW(analyze(p), SemaError);
}

TEST(Sema, ForwardDeclarationsRejectedByGrammar) {
  // Mutual recursion needs forward declarations, which mini-C's grammar has
  // no syntax for — the parser rejects them, so only self-recursion can
  // reach sema (covered by RejectsRecursion).
  EXPECT_THROW(parsed("int g(int n); int main() { return 0; }"), ParseError);
}

TEST(Sema, RejectsVoidReturnMismatch) {
  Program p = parsed("void f() { return 3; } int main() { f(); return 0; }");
  EXPECT_THROW(analyze(p), SemaError);
  Program q = parsed("int f() { return; } int main() { return f(); }");
  EXPECT_THROW(analyze(q), SemaError);
}

TEST(Sema, BottomUpOrderHasCalleesFirst) {
  Program p = parsed(R"(
    int leaf(int x) { return x + 1; }
    int mid(int x) { return leaf(x) * 2; }
    int main() { return mid(3); }
  )");
  SemaResult r = analyze(p);
  ASSERT_EQ(r.bottomUpOrder.size(), 3u);
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < r.bottomUpOrder.size(); ++i)
    pos[r.bottomUpOrder[i]->name] = i;
  EXPECT_LT(pos["leaf"], pos["mid"]);
  EXPECT_LT(pos["mid"], pos["main"]);
}

TEST(Sema, LookupFindsLocalsParamsGlobals) {
  Program p = parsed(R"(
    float g[4];
    int f(int n) { double d = 1.0; return n; }
    int main() { return f(2); }
  )");
  SemaResult r = analyze(p);
  const Function* f = p.findFunction("f");
  ASSERT_NE(r.lookup(f, "d"), nullptr);
  EXPECT_EQ(r.lookup(f, "d")->scalar, ScalarType::Double);
  ASSERT_NE(r.lookup(f, "n"), nullptr);
  ASSERT_NE(r.lookup(f, "g"), nullptr);
  EXPECT_TRUE(r.lookup(f, "g")->isArray());
  EXPECT_EQ(r.lookup(f, "nope"), nullptr);
}

}  // namespace
}  // namespace hetpar::frontend
