#include "hetpar/frontend/printer.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"

namespace hetpar::frontend {
namespace {

std::string roundTrip(const char* src) {
  Program p = parseProgram(src);
  return printProgram(p);
}

TEST(Printer, ExpressionsParenthesizeExplicitly) {
  Program p = parseProgram("int main() { int x = 1 + 2 * 3 - 4; return x; }");
  const auto& d = static_cast<const DeclStmt&>(*p.functions[0]->body[0]);
  // Fully parenthesized output leaves no precedence ambiguity.
  EXPECT_EQ(printExpr(*d.init), "((1 + (2 * 3)) - 4)");
}

TEST(Printer, FloatLiteralsKeepDecimalPoint) {
  Program p = parseProgram("int main() { double d = 2.0; double e = 0.5; return 0; }");
  const std::string out = printProgram(p);
  EXPECT_NE(out.find("2.0"), std::string::npos)
      << "integral-valued float literals must not print as ints";
  EXPECT_NE(out.find("0.5"), std::string::npos);
}

TEST(Printer, ForHeaderPrintsInline) {
  const std::string out = roundTrip(
      "int main() { int s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } return s; }");
  EXPECT_NE(out.find("for (int i = 0; (i < 4); i = (i + 1)) {"), std::string::npos);
}

TEST(Printer, ElseBranchRendered) {
  const std::string out = roundTrip(
      "int main() { int x = 1; if (x > 0) { x = 2; } else { x = 3; } return x; }");
  EXPECT_NE(out.find("} else {"), std::string::npos);
}

TEST(Printer, ArrayDeclsAndIndexing) {
  const std::string out = roundTrip(
      "double m[3][4]; int main() { m[1][2] = 0.25; return 0; }");
  EXPECT_NE(out.find("double m[3][4];"), std::string::npos);
  EXPECT_NE(out.find("m[1][2] = 0.25;"), std::string::npos);
}

TEST(Printer, FunctionSignatures) {
  const std::string out = roundTrip(
      "void f(int n, float v[8]) { v[0] = n; } int main() { return 0; }");
  EXPECT_NE(out.find("void f(int n, float v[8]) {"), std::string::npos);
}

TEST(Printer, HooksInjectBeforeStatements) {
  Program p = parseProgram("int main() { int a = 1; int b = 2; return a + b; }");
  PrintHooks hooks;
  hooks.beforeStmt = [](const Stmt& s) -> std::string {
    if (s.kind == StmtKind::Return) return "#pragma marker";
    return {};
  };
  const std::string out = printProgram(p, &hooks);
  const auto markerPos = out.find("#pragma marker");
  const auto returnPos = out.find("return");
  ASSERT_NE(markerPos, std::string::npos);
  EXPECT_LT(markerPos, returnPos) << "hook text must precede its statement";
}

TEST(Printer, HooksIndentWithStatement) {
  Program p = parseProgram(
      "int main() { for (int i = 0; i < 2; i = i + 1) { i = i + 0; } return 0; }");
  PrintHooks hooks;
  hooks.beforeStmt = [](const Stmt& s) -> std::string {
    return s.kind == StmtKind::Assign ? "#pragma inner" : "";
  };
  const std::string out = printProgram(p, &hooks);
  EXPECT_NE(out.find("    #pragma inner"), std::string::npos)
      << "pragma should share the loop body's indentation";
}

TEST(Printer, FixpointOnRepresentativeProgram) {
  const char* src = R"(
    int g = 3;
    double buf[16];
    int work(int k) {
      int s = 0;
      while (s < k) { s = s + 1; }
      return s;
    }
    int main() {
      for (int i = 0; i < 16; i = i + 1) {
        if (i % 2 == 0) { buf[i] = sqrt(1.0 * i); } else { buf[i] = -1.0; }
      }
      return work(g);
    }
  )";
  Program p1 = parseProgram(src);
  const std::string once = printProgram(p1);
  Program p2 = parseProgram(once);
  EXPECT_EQ(printProgram(p2), once);
}

}  // namespace
}  // namespace hetpar::frontend
