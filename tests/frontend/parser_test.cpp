#include "hetpar/frontend/parser.hpp"

#include <gtest/gtest.h>

#include "hetpar/frontend/printer.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::frontend {
namespace {

TEST(Parser, MinimalMain) {
  Program p = parseProgram("int main() { return 0; }");
  ASSERT_EQ(p.functions.size(), 1u);
  EXPECT_EQ(p.functions[0]->name, "main");
  ASSERT_EQ(p.functions[0]->body.size(), 1u);
  EXPECT_EQ(p.functions[0]->body[0]->kind, StmtKind::Return);
}

TEST(Parser, GlobalsAndArrays) {
  Program p = parseProgram(R"(
    int n = 8;
    float buf[64];
    double m[4][4];
    int main() { return 0; }
  )");
  ASSERT_EQ(p.globals.size(), 3u);
  const auto& m = static_cast<const DeclStmt&>(*p.globals[2]);
  EXPECT_EQ(m.type.scalar, ScalarType::Double);
  ASSERT_EQ(m.type.dims.size(), 2u);
  EXPECT_EQ(m.type.dims[0], 4);
  EXPECT_EQ(m.type.byteSize(), 4 * 4 * 8);
}

TEST(Parser, FunctionParams) {
  Program p = parseProgram("void f(int n, float a[16]) { } int main() { return 0; }");
  const Function& f = *p.functions[0];
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_FALSE(f.params[0].type.isArray());
  EXPECT_TRUE(f.params[1].type.isArray());
  EXPECT_EQ(f.params[1].type.dims[0], 16);
}

TEST(Parser, ForLoopCanonical) {
  Program p = parseProgram("int main() { int s = 0; for (int i = 0; i < 10; i++) { s = s + i; } return s; }");
  const auto& loop = static_cast<const ForStmt&>(*p.functions[0]->body[1]);
  ASSERT_NE(loop.init, nullptr);
  EXPECT_EQ(loop.init->kind, StmtKind::Decl);
  ASSERT_NE(loop.step, nullptr);
  // i++ desugars to i = i + 1.
  const auto& step = static_cast<const AssignStmt&>(*loop.step);
  EXPECT_EQ(step.target, "i");
  EXPECT_EQ(step.value->kind, ExprKind::Binary);
}

TEST(Parser, CompoundAssignDesugars) {
  Program p = parseProgram("int main() { int x = 1; x += 4; x *= 2; return x; }");
  const auto& s1 = static_cast<const AssignStmt&>(*p.functions[0]->body[1]);
  const auto& b1 = static_cast<const BinaryExpr&>(*s1.value);
  EXPECT_EQ(b1.op, BinaryOp::Add);
  const auto& s2 = static_cast<const AssignStmt&>(*p.functions[0]->body[2]);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*s2.value).op, BinaryOp::Mul);
}

TEST(Parser, ArrayElementCompoundAssign) {
  Program p = parseProgram("int a[4]; int main() { a[2] += 5; return a[2]; }");
  const auto& s = static_cast<const AssignStmt&>(*p.functions[0]->body[0]);
  EXPECT_EQ(s.target, "a");
  ASSERT_EQ(s.indices.size(), 1u);
  const auto& rhs = static_cast<const BinaryExpr&>(*s.value);
  EXPECT_EQ(rhs.lhs->kind, ExprKind::Index);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  Program p = parseProgram("int main() { int x = 1 + 2 * 3; return x; }");
  const auto& d = static_cast<const DeclStmt&>(*p.functions[0]->body[0]);
  const auto& add = static_cast<const BinaryExpr&>(*d.init);
  EXPECT_EQ(add.op, BinaryOp::Add);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*add.rhs).op, BinaryOp::Mul);
}

TEST(Parser, PrecedenceComparisonBelowLogic) {
  Program p = parseProgram("int main() { int x = 1 < 2 && 3 > 2 || 0; return x; }");
  const auto& d = static_cast<const DeclStmt&>(*p.functions[0]->body[0]);
  EXPECT_EQ(static_cast<const BinaryExpr&>(*d.init).op, BinaryOp::Or);
}

TEST(Parser, IfElseChained) {
  Program p = parseProgram(R"(int main() {
    int x = 3;
    if (x > 2) x = 1; else if (x > 1) x = 2; else x = 3;
    return x;
  })");
  const auto& s = static_cast<const IfStmt&>(*p.functions[0]->body[1]);
  ASSERT_EQ(s.elseBody.size(), 1u);
  EXPECT_EQ(s.elseBody[0]->kind, StmtKind::If);
}

TEST(Parser, WhileLoop) {
  Program p = parseProgram("int main() { int i = 0; while (i < 4) i = i + 1; return i; }");
  EXPECT_EQ(p.functions[0]->body[1]->kind, StmtKind::While);
}

TEST(Parser, CallsAndBuiltins) {
  Program p = parseProgram(R"(
    int twice(int v) { return v * 2; }
    int main() { int x = twice(21); double y = sqrt(4.0); return x; }
  )");
  const auto& d = static_cast<const DeclStmt&>(*p.functions[1]->body[0]);
  EXPECT_EQ(d.init->kind, ExprKind::Call);
  EXPECT_EQ(static_cast<const CallExpr&>(*d.init).callee, "twice");
}

TEST(Parser, TwoDimensionalIndexing) {
  Program p = parseProgram("int m[3][3]; int main() { m[1][2] = 7; return m[1][2]; }");
  const auto& a = static_cast<const AssignStmt&>(*p.functions[0]->body[0]);
  EXPECT_EQ(a.indices.size(), 2u);
}

TEST(Parser, RejectsThreeDimensionalArrays) {
  EXPECT_THROW(parseProgram("int a[2][2][2]; int main() { return 0; }"), ParseError);
}

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_THROW(parseProgram("int main() { return 0 }"), ParseError);       // missing ;
  EXPECT_THROW(parseProgram("int main() { int = 3; }"), ParseError);       // missing name
  EXPECT_THROW(parseProgram("int main() { if x > 2 x = 1; }"), ParseError);  // missing (
  EXPECT_THROW(parseProgram("int main() { foo(; }"), ParseError);
}

TEST(Parser, CloneExprDeepCopies) {
  Program p = parseProgram("int main() { int x = (1 + 2) * sqrt(9.0); return x; }");
  const auto& d = static_cast<const DeclStmt&>(*p.functions[0]->body[0]);
  ExprPtr copy = cloneExpr(*d.init);
  EXPECT_EQ(printExpr(*copy), printExpr(*d.init));
  EXPECT_NE(copy.get(), d.init.get());
}

TEST(Parser, PrintRoundTrips) {
  const char* src = R"(
    int n = 4;
    int a[8];
    int sum(int k) {
      int s = 0;
      for (int i = 0; i < k; i = i + 1) {
        s = s + a[i];
      }
      return s;
    }
    int main() {
      for (int i = 0; i < 8; i = i + 1) {
        a[i] = i * i;
      }
      return sum(n);
    }
  )";
  Program p1 = parseProgram(src);
  const std::string printed = printProgram(p1);
  Program p2 = parseProgram(printed);  // printed output must re-parse
  EXPECT_EQ(printProgram(p2), printed);
}

}  // namespace
}  // namespace hetpar::frontend
