#include "hetpar/frontend/lexer.hpp"

#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"

namespace hetpar::frontend {
namespace {

TEST(Lexer, EmptyInputYieldsEof) {
  auto toks = tokenize("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_TRUE(toks[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, IdentifiersAndKeywords) {
  auto toks = tokenize("int foo _bar if elsewhere");
  EXPECT_TRUE(toks[0].isKeyword("int"));
  EXPECT_TRUE(toks[1].is(TokenKind::Identifier));
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[2].text, "_bar");
  EXPECT_TRUE(toks[3].isKeyword("if"));
  EXPECT_TRUE(toks[4].is(TokenKind::Identifier)) << "'elsewhere' must not lex as keyword";
}

TEST(Lexer, IntegerLiterals) {
  auto toks = tokenize("0 42 123456");
  EXPECT_EQ(toks[0].intValue, 0);
  EXPECT_EQ(toks[1].intValue, 42);
  EXPECT_EQ(toks[2].intValue, 123456);
  EXPECT_TRUE(toks[1].is(TokenKind::IntLiteral));
}

TEST(Lexer, FloatLiterals) {
  auto toks = tokenize("1.5 0.25 2e3 1.5e-2 3.0f");
  EXPECT_TRUE(toks[0].is(TokenKind::FloatLiteral));
  EXPECT_DOUBLE_EQ(toks[0].floatValue, 1.5);
  EXPECT_DOUBLE_EQ(toks[1].floatValue, 0.25);
  EXPECT_DOUBLE_EQ(toks[2].floatValue, 2000.0);
  EXPECT_DOUBLE_EQ(toks[3].floatValue, 0.015);
  EXPECT_DOUBLE_EQ(toks[4].floatValue, 3.0);
}

TEST(Lexer, TwoCharOperatorsMatchGreedily) {
  auto toks = tokenize("<= >= == != && || ++ --");
  EXPECT_TRUE(toks[0].isPunct("<="));
  EXPECT_TRUE(toks[1].isPunct(">="));
  EXPECT_TRUE(toks[2].isPunct("=="));
  EXPECT_TRUE(toks[3].isPunct("!="));
  EXPECT_TRUE(toks[4].isPunct("&&"));
  EXPECT_TRUE(toks[5].isPunct("||"));
  EXPECT_TRUE(toks[6].isPunct("++"));
  EXPECT_TRUE(toks[7].isPunct("--"));
}

TEST(Lexer, SingleCharOperators) {
  auto toks = tokenize("a<b;c[2]");
  EXPECT_TRUE(toks[1].isPunct("<"));
  EXPECT_TRUE(toks[3].isPunct(";"));
  EXPECT_TRUE(toks[5].isPunct("["));
}

TEST(Lexer, LineCommentsSkipped) {
  auto toks = tokenize("a // everything here vanishes\nb");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  auto toks = tokenize("a /* multi\nline */ b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].loc.line, 2);
}

TEST(Lexer, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(tokenize("a /* never closed"), ParseError);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW(tokenize("a $ b"), ParseError);
}

TEST(Lexer, TracksLineAndColumn) {
  auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[0].loc.column, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

}  // namespace
}  // namespace hetpar::frontend
