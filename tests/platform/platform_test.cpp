#include "hetpar/platform/platform.hpp"

#include <gtest/gtest.h>

#include "hetpar/platform/parser.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/support/error.hpp"

namespace hetpar::platform {
namespace {

TEST(Platform, PresetAMatchesPaper) {
  Platform a = platformA();
  EXPECT_EQ(a.numClasses(), 3);
  EXPECT_EQ(a.numCores(), 4);
  // Paper footnote 2: (1*100 + 1*250 + 2*500) / 100 = 13.5x
  EXPECT_NEAR(a.theoreticalMaxSpeedup(a.slowestClass()), 13.5, 1e-9);
  // Footnote 3: / 500 = 2.7x
  EXPECT_NEAR(a.theoreticalMaxSpeedup(a.fastestClass()), 2.7, 1e-9);
}

TEST(Platform, PresetBMatchesPaper) {
  Platform b = platformB();
  EXPECT_EQ(b.numClasses(), 2);
  EXPECT_EQ(b.numCores(), 4);
  // Footnote 4: (2*200 + 2*500) / 200 = 7x ; footnote 5: / 500 = 2.8x
  EXPECT_NEAR(b.theoreticalMaxSpeedup(b.slowestClass()), 7.0, 1e-9);
  EXPECT_NEAR(b.theoreticalMaxSpeedup(b.fastestClass()), 2.8, 1e-9);
}

TEST(Platform, TimeForOpsScalesWithFrequency) {
  Platform a = platformA();
  const ClassId slow = a.slowestClass();
  const ClassId fast = a.fastestClass();
  EXPECT_NEAR(a.timeForOps(slow, 1e6) / a.timeForOps(fast, 1e6), 5.0, 1e-9);
  EXPECT_NEAR(a.timeForOps(fast, 500e6), 1.0, 1e-9);  // 500 MHz: 500M ops/s
}

TEST(Platform, CommTimeLatencyPlusBandwidth) {
  Platform a = platformA();
  const double t = a.commTimeSeconds(400.0);
  EXPECT_GT(t, a.interconnect().latencySeconds);
  EXPECT_NEAR(t, a.interconnect().latencySeconds + 400.0 / a.interconnect().bytesPerSecond,
              1e-15);
  EXPECT_EQ(a.commTimeSeconds(0.0), 0.0);
}

TEST(Platform, CoreNumberingClassMajor) {
  Platform a = platformA();  // 1x100, 1x250, 2x500
  EXPECT_EQ(a.classOfCore(0), 0);
  EXPECT_EQ(a.classOfCore(1), 1);
  EXPECT_EQ(a.classOfCore(2), 2);
  EXPECT_EQ(a.classOfCore(3), 2);
  EXPECT_EQ(a.firstCoreOfClass(2), 2);
  EXPECT_THROW(a.classOfCore(4), Error);
}

TEST(Platform, FindClassByName) {
  Platform a = platformA();
  EXPECT_EQ(a.findClass("arm_250"), 1);
  EXPECT_EQ(a.findClass("nope"), -1);
}

TEST(Platform, ValidationRejectsBadPlatforms) {
  EXPECT_THROW(Platform("empty", {}, {}, 0.0), Error);
  EXPECT_THROW(Platform("zerocount", {{"c", 100.0, 0}}, {}, 0.0), Error);
  EXPECT_THROW(Platform("zerofreq", {{"c", 0.0, 1}}, {}, 0.0), Error);
  EXPECT_THROW(Platform("dup", {{"c", 100.0, 1}, {"c", 200.0, 1}}, {}, 0.0), Error);
  EXPECT_THROW(Platform("negtco", {{"c", 100.0, 1}}, {}, -1.0), Error);
}

TEST(Platform, CustomBuilder) {
  Platform p = custom("X", {{300.0, 2}, {600.0, 1}});
  EXPECT_EQ(p.numCores(), 3);
  EXPECT_NEAR(p.theoreticalMaxSpeedup(p.slowestClass()), (2 * 300 + 600) / 300.0, 1e-9);
}

TEST(PlatformParser, ParsesFullDescription) {
  Platform p = parsePlatform(R"(
    # big.LITTLE-like config
    platform demo
    class little freq_mhz 200 count 2
    class big freq_mhz 500 count 2 cpi 1.0
    bus latency_us 2 bandwidth_mbps 200
    tco_us 30
  )");
  EXPECT_EQ(p.name(), "demo");
  EXPECT_EQ(p.numCores(), 4);
  EXPECT_NEAR(p.interconnect().latencySeconds, 2e-6, 1e-12);
  EXPECT_NEAR(p.interconnect().bytesPerSecond, 200e6, 1e-3);
  EXPECT_NEAR(p.taskCreationOverheadSeconds(), 30e-6, 1e-12);
}

TEST(PlatformParser, RoundTripsPresets) {
  for (const Platform& p : {platformA(), platformB()}) {
    Platform q = parsePlatform(toText(p));
    EXPECT_EQ(q.name(), p.name());
    EXPECT_EQ(q.numCores(), p.numCores());
    EXPECT_EQ(q.numClasses(), p.numClasses());
    for (ClassId c = 0; c < p.numClasses(); ++c) {
      EXPECT_NEAR(q.classAt(c).frequencyMHz, p.classAt(c).frequencyMHz, 1e-9);
      EXPECT_EQ(q.classAt(c).count, p.classAt(c).count);
    }
    EXPECT_NEAR(q.taskCreationOverheadSeconds(), p.taskCreationOverheadSeconds(), 1e-12);
  }
}

TEST(PlatformParser, RejectsMalformedInput) {
  EXPECT_THROW(parsePlatform("class broken freq_mhz"), ParseError);
  EXPECT_THROW(parsePlatform("class broken count 1"), ParseError);  // missing freq
  EXPECT_THROW(parsePlatform("wat 12"), ParseError);
  EXPECT_THROW(parsePlatform("class c freq_mhz abc count 1"), ParseError);
}

TEST(Platform, SummaryMentionsAllClasses) {
  const std::string s = platformA().summary();
  EXPECT_NE(s.find("1x100"), std::string::npos);
  EXPECT_NE(s.find("1x250"), std::string::npos);
  EXPECT_NE(s.find("2x500"), std::string::npos);
}

}  // namespace
}  // namespace hetpar::platform
