// Property test over randomly generated (valid-by-construction) mini-C
// programs: the whole pipeline — parse, print round-trip, sema, profiling
// interpreter, HTG construction + validation — must hold for every seed.
//
// The generator lives in hetpar/verify/generator.hpp and is shared with the
// differential fuzzer (tools/hetpar-fuzz): any program the fuzzer can
// produce is also in this sweep's input space, seed for seed.
#include <gtest/gtest.h>

#include "hetpar/frontend/parser.hpp"
#include "hetpar/frontend/printer.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/verify/generator.hpp"

namespace hetpar {
namespace {

class RandomProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramSweep, PipelineHolds) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 48611 + 5;
  const std::string src = verify::generateProgram(seed).render();

  // Parse and print round-trip: the printed form re-parses and re-prints
  // identically (printer fixpoint).
  frontend::Program p1 = frontend::parseProgram(src);
  const std::string printed1 = frontend::printProgram(p1);
  frontend::Program p2 = frontend::parseProgram(printed1);
  EXPECT_EQ(frontend::printProgram(p2), printed1) << "seed " << GetParam();

  // Full pipeline: sema + interpreter + HTG.
  htg::FrontendBundle bundle;
  ASSERT_NO_THROW(bundle = htg::buildFromSource(src)) << "seed " << GetParam() << "\n" << src;
  const auto problems = htg::validate(bundle.graph);
  EXPECT_TRUE(problems.empty()) << "seed " << GetParam() << ": " << problems.front();
  EXPECT_NE(bundle.profile.exitValue, 0) << "seed " << GetParam();

  // Determinism: a second run agrees.
  htg::FrontendBundle again = htg::buildFromSource(src);
  EXPECT_EQ(again.profile.exitValue, bundle.profile.exitValue);
  EXPECT_DOUBLE_EQ(again.profile.totalOps, bundle.profile.totalOps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep, ::testing::Range(0, 50));

}  // namespace
}  // namespace hetpar
