// Property test over randomly generated (valid-by-construction) mini-C
// programs: the whole pipeline — parse, print round-trip, sema, profiling
// interpreter, HTG construction + validation — must hold for every seed.
#include <gtest/gtest.h>

#include <sstream>

#include "hetpar/frontend/parser.hpp"
#include "hetpar/frontend/printer.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/support/rng.hpp"

namespace hetpar {
namespace {

/// Emits a random structured program: a few global arrays, nested loops,
/// ifs, reductions, and helper-function calls. All indices stay in bounds
/// and all loops terminate by construction.
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  std::string generate() {
    os_ << "int ga[32];\nint gb[32];\nint gc[32];\n";
    os_ << "int helper(int v) { return v * 3 + 1; }\n";
    os_ << "void fill(int dst[32], int base) {\n"
           "  for (int i = 0; i < 32; i = i + 1) { dst[i] = base + i; }\n"
           "}\n";
    os_ << "int main() {\n";
    os_ << "  fill(ga, " << rng_.range(1, 9) << ");\n";
    os_ << "  fill(gb, " << rng_.range(1, 9) << ");\n";
    const int stmts = static_cast<int>(rng_.range(2, 6));
    for (int i = 0; i < stmts; ++i) statement(2);
    os_ << "  int acc = 0;\n";
    os_ << "  for (int i = 0; i < 32; i = i + 1) { acc = acc + ga[i] + gb[i] + gc[i]; }\n";
    os_ << "  return acc + 1;\n";  // +1 keeps the checksum nonzero
    os_ << "}\n";
    return os_.str();
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth; ++i) os_ << "  ";
  }

  std::string array() {
    switch (rng_.below(3)) {
      case 0: return "ga";
      case 1: return "gb";
      default: return "gc";
    }
  }

  std::string expr(const std::string& iv) {
    std::ostringstream e;
    switch (rng_.below(5)) {
      case 0: e << rng_.range(1, 20); break;
      case 1: e << array() << "[" << iv << "]"; break;
      case 2: e << iv << " * " << rng_.range(1, 4); break;
      case 3: e << "helper(" << iv << ")"; break;
      default:
        e << array() << "[" << iv << "] + " << rng_.range(0, 8);
        break;
    }
    return e.str();
  }

  void statement(int depth) {
    if (depth > 4) return;
    switch (rng_.below(4)) {
      case 0: {  // elementwise loop
        const std::string iv = "i" + std::to_string(counter_++);
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < 32; " << iv << " = " << iv
            << " + 1) {\n";
        indent(depth + 1);
        os_ << array() << "[" << iv << "] = " << expr(iv) << ";\n";
        if (rng_.chance(0.4)) statementInLoop(depth + 1, iv);
        indent(depth);
        os_ << "}\n";
        break;
      }
      case 1: {  // conditional scalar update
        const std::string v = "t" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << v << " = " << rng_.range(0, 30) << ";\n";
        indent(depth);
        os_ << "if (" << v << " > " << rng_.range(0, 30) << ") { " << v << " = " << v
            << " + 1; } else { " << v << " = " << v << " - 1; }\n";
        indent(depth);
        os_ << "gc[" << rng_.range(0, 31) << "] = " << v << ";\n";
        break;
      }
      case 2: {  // while countdown
        const std::string v = "w" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << v << " = " << rng_.range(1, 6) << ";\n";
        indent(depth);
        os_ << "while (" << v << " > 0) { gc[" << v << "] = gc[" << v << "] + 1; " << v
            << " = " << v << " - 1; }\n";
        break;
      }
      default: {  // reduction loop
        const std::string s = "r" + std::to_string(counter_++);
        const std::string iv = "i" + std::to_string(counter_++);
        indent(depth);
        os_ << "int " << s << " = 0;\n";
        indent(depth);
        os_ << "for (int " << iv << " = 0; " << iv << " < 32; " << iv << " = " << iv
            << " + 1) { " << s << " = " << s << " + " << array() << "[" << iv << "]; }\n";
        indent(depth);
        os_ << "gc[0] = " << s << " % 97;\n";
        break;
      }
    }
  }

  void statementInLoop(int depth, const std::string& iv) {
    indent(depth);
    os_ << "if (" << iv << " % 2 == 0) { " << array() << "[" << iv << "] = " << iv
        << "; }\n";
  }

  Rng rng_;
  std::ostringstream os_;
  int counter_ = 0;
};

class RandomProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramSweep, PipelineHolds) {
  const std::string src = ProgramGen(static_cast<std::uint64_t>(GetParam()) * 48611 + 5).generate();

  // Parse and print round-trip: the printed form re-parses and re-prints
  // identically (printer fixpoint).
  frontend::Program p1 = frontend::parseProgram(src);
  const std::string printed1 = frontend::printProgram(p1);
  frontend::Program p2 = frontend::parseProgram(printed1);
  EXPECT_EQ(frontend::printProgram(p2), printed1) << "seed " << GetParam();

  // Full pipeline: sema + interpreter + HTG.
  htg::FrontendBundle bundle;
  ASSERT_NO_THROW(bundle = htg::buildFromSource(src)) << "seed " << GetParam() << "\n" << src;
  const auto problems = htg::validate(bundle.graph);
  EXPECT_TRUE(problems.empty()) << "seed " << GetParam() << ": " << problems.front();
  EXPECT_NE(bundle.profile.exitValue, 0) << "seed " << GetParam();

  // Determinism: a second run agrees.
  htg::FrontendBundle again = htg::buildFromSource(src);
  EXPECT_EQ(again.profile.exitValue, bundle.profile.exitValue);
  EXPECT_DOUBLE_EQ(again.profile.totalOps, bundle.profile.totalOps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep, ::testing::Range(0, 50));

}  // namespace
}  // namespace hetpar
