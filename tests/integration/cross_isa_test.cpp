// Cross-ISA cost modeling (paper Section VI: the approach "would also
// perform well for different instruction sets and specialized processing
// units since it uses different execution costs for each statement").
//
// On a platform whose classes run at the SAME clock but differ per op kind
// (DSP: 4x faster float, 2x slower control), the ILP must route float-heavy
// loops to the DSP class and keep integer work on the general-purpose one.
#include <gtest/gtest.h>

#include "hetpar/htg/builder.hpp"
#include "hetpar/parallel/parallelizer.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar {
namespace {

const char* kMixedProgram = R"(
  double fsrc[8192];
  double fdst[8192];
  int isrc[8192];
  int idst[8192];
  int main() {
    for (int i = 0; i < 8192; i = i + 1) { fsrc[i] = 0.5 * i; }
    for (int i = 0; i < 8192; i = i + 1) { isrc[i] = i % 23; }
    for (int i = 0; i < 8192; i = i + 1) {
      fdst[i] = sqrt(fsrc[i] + 1.0) * 1.5 + sin(fsrc[i]) * fsrc[i];
    }
    for (int i = 0; i < 8192; i = i + 1) {
      idst[i] = isrc[i] * 3 + isrc[i] % 7;
    }
    int s = 0;
    for (int i = 0; i < 8192; i = i + 1) { s = s + idst[i] + fdst[i]; }
    return s;
  }
)";

TEST(CrossIsa, TimeForKindsAppliesFactors) {
  const platform::Platform pf = platform::crossIsaDemo();
  const platform::ClassId gpp = pf.findClass("gpp");
  const platform::ClassId dsp = pf.findClass("dsp");
  ASSERT_GE(gpp, 0);
  ASSERT_GE(dsp, 0);
  const double pureFloat[4] = {0.0, 1000.0, 0.0, 0.0};
  const double pureInt[4] = {1000.0, 0.0, 0.0, 0.0};
  const double pureControl[4] = {0.0, 0.0, 0.0, 1000.0};
  EXPECT_NEAR(pf.timeForKinds(dsp, pureFloat) / pf.timeForKinds(gpp, pureFloat), 0.25, 1e-12);
  EXPECT_NEAR(pf.timeForKinds(dsp, pureInt) / pf.timeForKinds(gpp, pureInt), 1.0, 1e-12);
  EXPECT_NEAR(pf.timeForKinds(dsp, pureControl) / pf.timeForKinds(gpp, pureControl), 2.0,
              1e-12);
}

TEST(CrossIsa, ProfilerSeparatesKinds) {
  htg::FrontendBundle b = htg::buildFromSource(kMixedProgram);
  // Find the float and int compute loops and compare their mixes.
  const htg::Node* floatLoop = nullptr;
  const htg::Node* intLoop = nullptr;
  b.graph.forEach([&](const htg::Node& n) {
    if (n.kind != htg::NodeKind::Loop || n.stmt == nullptr) return;
    if (n.stmt->loc.line == 9) floatLoop = &n;
    if (n.stmt->loc.line == 12) intLoop = &n;
  });
  ASSERT_NE(floatLoop, nullptr);
  ASSERT_NE(intLoop, nullptr);
  const cost::OpMix fm = b.graph.subtreeMixPerExec(floatLoop->id);
  const cost::OpMix im = b.graph.subtreeMixPerExec(intLoop->id);
  EXPECT_GT(fm.of(cost::OpKind::FloatAlu), fm.of(cost::OpKind::IntAlu))
      << "the float kernel is float-dominated (induction updates aside)";
  EXPECT_GT(im.of(cost::OpKind::IntAlu), im.of(cost::OpKind::FloatAlu));
  // Mix totals must agree with the scalar ops view.
  EXPECT_NEAR(fm.total(), b.graph.subtreeOpsPerExec(floatLoop->id), 1e-6);
}

TEST(CrossIsa, IlpRoutesFloatWorkToDsp) {
  htg::FrontendBundle b = htg::buildFromSource(kMixedProgram);
  const platform::Platform pf = platform::crossIsaDemo();
  const cost::TimingModel timing(pf);
  parallel::Parallelizer tool(b.graph, timing);
  const parallel::ParallelizeOutcome out = tool.run();

  const platform::ClassId gpp = pf.findClass("gpp");
  const platform::ClassId dsp = pf.findClass("dsp");

  auto dspShare = [&](const htg::Node& loop) {
    const parallel::ParallelSet& set = out.table.at(loop.id);
    const int best = set.bestFor(gpp);  // main task on the GPP
    const parallel::SolutionCandidate& cand = set.at(best);
    if (cand.kind != parallel::SolutionKind::LoopChunked) return -1.0;
    double dspIters = 0.0;
    double total = 0.0;
    for (int t = 0; t < cand.numTasks(); ++t) {
      total += cand.chunkIterations[static_cast<std::size_t>(t)];
      if (cand.taskClass[static_cast<std::size_t>(t)] == dsp)
        dspIters += cand.chunkIterations[static_cast<std::size_t>(t)];
    }
    return total > 0 ? dspIters / total : -1.0;
  };

  const htg::Node* floatLoop = nullptr;
  const htg::Node* intLoop = nullptr;
  b.graph.forEach([&](const htg::Node& n) {
    if (n.kind != htg::NodeKind::Loop || n.stmt == nullptr) return;
    if (n.stmt->loc.line == 9) floatLoop = &n;
    if (n.stmt->loc.line == 12) intLoop = &n;
  });
  ASSERT_NE(floatLoop, nullptr);
  ASSERT_NE(intLoop, nullptr);

  const double floatShare = dspShare(*floatLoop);
  const double intShare = dspShare(*intLoop);
  ASSERT_GE(floatShare, 0.0) << "float loop must have a chunked candidate";
  EXPECT_GT(floatShare, 0.6) << "the 4x-faster float units must attract the bulk of the work";
  if (intShare >= 0.0) {
    EXPECT_LT(intShare, floatShare)
        << "integer work has no reason to prefer the DSP over the GPP";
  }
}

TEST(CrossIsa, SameIsaPlatformsUnchanged) {
  // Default kindFactor == 1 must reproduce the pure-frequency model.
  const platform::Platform a = platform::platformA();
  const double mix[4] = {250.0, 250.0, 250.0, 250.0};
  for (platform::ClassId c = 0; c < a.numClasses(); ++c)
    EXPECT_NEAR(a.timeForKinds(c, mix), a.timeForOps(c, 1000.0), 1e-15);
}

}  // namespace
}  // namespace hetpar
