// Acceptance guard for the affine dependence mode: on the example pair
// (bench/affine_programs.hpp) the affine analysis must strictly reduce the
// HTG's total edge count and communicated bytes versus conservative mode,
// and the resulting ILP plan must be strictly faster on at least one preset
// platform. bench/affine_deps prints the same numbers as a table.
#include <gtest/gtest.h>

#include "affine_programs.hpp"
#include "hetpar/htg/builder.hpp"
#include "hetpar/htg/validate.hpp"
#include "hetpar/platform/presets.hpp"
#include "hetpar/pipeline/evaluate.hpp"

namespace hetpar {
namespace {

struct ModePair {
  bench::DepTotals conservative;
  bench::DepTotals affine;
};

ModePair totalsFor(const char* source) {
  const htg::FrontendBundle cons =
      htg::buildFromSource(source, ir::DependenceMode::Conservative);
  const htg::FrontendBundle aff = htg::buildFromSource(source, ir::DependenceMode::Affine);
  htg::validateOrThrow(cons.graph);
  htg::validateOrThrow(aff.graph);
  return {bench::depTotals(cons.graph), bench::depTotals(aff.graph)};
}

double speedup(const char* source, const platform::Platform& pf, ir::DependenceMode mode) {
  return bench::ilpEstimatedSpeedup(source, pf,
                                    pipeline::mainClassFor(pf, pipeline::Scenario::Accelerator), mode);
}

TEST(AffineExamples, StencilStrictlyReducesEdgesAndBytes) {
  const ModePair t = totalsFor(bench::kStencilSource);
  EXPECT_LT(t.affine.edges, t.conservative.edges);
  EXPECT_LT(t.affine.bytes, t.conservative.bytes);
}

TEST(AffineExamples, MatmulStrictlyReducesEdgesAndBytes) {
  const ModePair t = totalsFor(bench::kMatmulSource);
  EXPECT_LT(t.affine.edges, t.conservative.edges);
  EXPECT_LT(t.affine.bytes, t.conservative.bytes);
}

TEST(AffineExamples, IlpSpeedupImprovesOnAPreset) {
  const std::pair<const char*, const char*> programs[] = {
      {bench::kStencilName, bench::kStencilSource},
      {bench::kMatmulName, bench::kMatmulSource},
  };
  for (const auto& [name, source] : programs) {
    const platform::Platform pa = platform::platformA();
    const double consA = speedup(source, pa, ir::DependenceMode::Conservative);
    const double affA = speedup(source, pa, ir::DependenceMode::Affine);
    if (affA > consA) continue;  // improved on preset A — done for this program
    const platform::Platform pb = platform::platformB();
    const double consB = speedup(source, pb, ir::DependenceMode::Conservative);
    const double affB = speedup(source, pb, ir::DependenceMode::Affine);
    EXPECT_GT(affB, consB) << name << ": affine must beat conservative on preset A or B"
                           << " (A: " << affA << " vs " << consA << ")";
  }
}

}  // namespace
}  // namespace hetpar
