// Differential test between the two LP engines behind BoundedSimplex: the
// production sparse revised simplex (LU factors + product-form etas) and the
// retained dense explicit inverse. The engines share the simplex driver but
// nothing about the basis representation, so agreement on hundreds of random
// bounded-variable LPs — plus the real ILPPAR models from the verify
// generators, plus warm-started resolves along a simulated branch-and-bound
// bound-tightening path — is strong evidence neither factorization is wrong.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/ilp/simplex.hpp"
#include "hetpar/parallel/ilppar_model.hpp"
#include "hetpar/support/rng.hpp"
#include "hetpar/verify/oracle.hpp"

namespace hetpar::ilp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Random LP directly in computational standard form: sparse equality rows
/// over columns with a mix of [0,u], [l,u] (l possibly negative), fixed,
/// one-sided, and free bounds. Deliberately wider than what buildLp emits so
/// the engines also disagree-or-not on shapes only property tests produce.
LpProblem randomLp(Rng& rng) {
  LpProblem lp;
  lp.numRows = static_cast<int>(rng.range(2, 10));
  lp.numCols = static_cast<int>(rng.range(lp.numRows + 1, lp.numRows + 12));
  lp.cols.resize(static_cast<std::size_t>(lp.numCols));
  for (int j = 0; j < lp.numCols; ++j) {
    for (int i = 0; i < lp.numRows; ++i) {
      if (!rng.chance(0.4)) continue;
      double coef = double(rng.range(1, 4));
      if (rng.chance(0.5)) coef = -coef;
      lp.cols[static_cast<std::size_t>(j)].emplace_back(i, coef);
    }
    const std::uint64_t shape = rng.range(0, 5);
    double lo = 0.0, hi = double(rng.range(1, 9));
    switch (shape) {
      case 0: break;                                   // [0, u]
      case 1: lo = -double(rng.range(1, 5)); break;    // [-l, u]
      case 2: lo = hi; break;                          // fixed
      case 3: hi = kInf; break;                        // [0, inf)
      case 4: lo = -kInf; hi = double(rng.range(0, 6)); break;  // (-inf, u]
      default: lo = -kInf; hi = kInf; break;           // free
    }
    lp.lower.push_back(lo);
    lp.upper.push_back(hi);
    lp.cost.push_back(double(rng.range(-6, 6)));
  }
  for (int i = 0; i < lp.numRows; ++i) lp.rhs.push_back(double(rng.range(-10, 10)));
  return lp;
}

void expectAgreement(const LpResult& dense, const LpResult& revised, const char* what) {
  ASSERT_EQ(dense.status, revised.status) << what;
  if (dense.status != LpStatus::Optimal) return;
  EXPECT_NEAR(dense.objective, revised.objective,
              1e-6 * (1.0 + std::abs(dense.objective)))
      << what;
}

class SolverDifferentialSweep : public ::testing::TestWithParam<int> {};

// 100 seeds x 5 LPs = 500 random LPs, every one solved by both engines.
TEST_P(SolverDifferentialSweep, RandomLpsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 3);
  for (int k = 0; k < 5; ++k) {
    const LpProblem lp = randomLp(rng);
    BoundedSimplex dense(1e-9, SolverEngine::Dense);
    BoundedSimplex revised(1e-9, SolverEngine::Revised);
    const LpResult d = dense.solve(lp);
    const LpResult r = revised.solve(lp);
    if (d.status == LpStatus::IterationLimit || r.status == LpStatus::IterationLimit)
      continue;  // no claim when either engine gave up
    expectAgreement(d, r,
                    ("seed " + std::to_string(GetParam()) + " lp " + std::to_string(k)).c_str());
  }
}

// Simulated branch-and-bound descent: repeatedly tighten one structural
// bound and warm-start each engine from ITS OWN previous basis. The engines
// may follow different pivot paths, but every node's optimum must match.
TEST_P(SolverDifferentialSweep, WarmResolvePathAgrees) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 41);
  LpProblem lp = randomLp(rng);
  // Finite bounds everywhere so tightening always makes sense.
  for (int j = 0; j < lp.numCols; ++j) {
    if (!std::isfinite(lp.lower[static_cast<std::size_t>(j)]))
      lp.lower[static_cast<std::size_t>(j)] = -double(rng.range(1, 6));
    if (!std::isfinite(lp.upper[static_cast<std::size_t>(j)]))
      lp.upper[static_cast<std::size_t>(j)] =
          lp.lower[static_cast<std::size_t>(j)] + double(rng.range(1, 8));
  }

  BoundedSimplex dense(1e-9, SolverEngine::Dense);
  BoundedSimplex revised(1e-9, SolverEngine::Revised);
  SimplexBasis denseBasis, revisedBasis;
  const LpResult d0 = dense.solve(lp, 0, nullptr, &denseBasis);
  const LpResult r0 = revised.solve(lp, 0, nullptr, &revisedBasis);
  ASSERT_EQ(d0.status, r0.status);
  if (d0.status != LpStatus::Optimal) GTEST_SKIP() << "root not optimal";
  expectAgreement(d0, r0, "root");

  for (int depth = 0; depth < 6; ++depth) {
    const auto j = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(lp.numCols)));
    if (rng.chance(0.5)) {
      lp.upper[j] = std::floor((lp.lower[j] + lp.upper[j]) / 2.0);
      if (lp.upper[j] < lp.lower[j]) lp.upper[j] = lp.lower[j];
    } else {
      lp.lower[j] = std::ceil((lp.lower[j] + lp.upper[j]) / 2.0);
      if (lp.lower[j] > lp.upper[j]) lp.lower[j] = lp.upper[j];
    }
    SimplexBasis dNext, rNext;
    const LpResult d = dense.solve(lp, 0, &denseBasis, &dNext);
    const LpResult r = revised.solve(lp, 0, &revisedBasis, &rNext);
    if (d.status == LpStatus::IterationLimit || r.status == LpStatus::IterationLimit) break;
    expectAgreement(d, r, ("depth " + std::to_string(depth)).c_str());
    if (d.status != LpStatus::Optimal) break;
    denseBasis = dNext;
    revisedBasis = rNext;
  }
}

// The real thing: ILPPAR task-partitioning and loop-chunking models from the
// shared verify generators, solved end-to-end (branch and bound on top of
// each engine). Optimal objective values must match.
TEST_P(SolverDifferentialSweep, IlpParModelsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 0x2545f4914f6cdd1dULL + 7);
  verify::TinyRegionOptions tiny;
  tiny.maxChildren = 8;
  tiny.maxTasks = 4;

  SolveOptions denseOpts;
  denseOpts.timeLimitSeconds = 1e9;
  denseOpts.maxNodes = 2'000'000;
  denseOpts.engine = SolverEngine::Dense;
  SolveOptions revisedOpts = denseOpts;
  revisedOpts.engine = SolverEngine::Revised;
  BranchAndBoundSolver dense(denseOpts);
  BranchAndBoundSolver revised(revisedOpts);

  if (GetParam() % 2 == 0) {
    const parallel::IlpRegion region = verify::randomTinyRegion(rng, tiny);
    const parallel::IlpParResult d = parallel::solveIlpPar(region, dense);
    const parallel::IlpParResult r = parallel::solveIlpPar(region, revised);
    ASSERT_EQ(d.feasible, r.feasible);
    if (d.feasible && d.provenOptimal && r.provenOptimal) {
      EXPECT_NEAR(d.timeSeconds, r.timeSeconds, 1e-6 * (1.0 + d.timeSeconds));
    }
  } else {
    const parallel::ChunkRegion region = verify::randomTinyChunkRegion(rng, tiny);
    const parallel::ChunkResult d = parallel::solveChunkIlp(region, dense);
    const parallel::ChunkResult r = parallel::solveChunkIlp(region, revised);
    ASSERT_EQ(d.feasible, r.feasible);
    if (d.feasible && d.provenOptimal && r.provenOptimal) {
      EXPECT_NEAR(d.timeSeconds, r.timeSeconds, 1e-6 * (1.0 + d.timeSeconds));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverDifferentialSweep, ::testing::Range(0, 100));

// The historical cross-problem cache hazard (see BoundedSimplex): two
// different matrices with EQUAL row counts, solved alternately through the
// same BoundedSimplex with warm bases exported from each other's solves.
// Before the structural-digest cache key, the second solve could adopt the
// first problem's retained basis inverse and silently corrupt the result.
TEST(SolverCacheHazard, EqualRowCountProblemsDoNotShareFactors) {
  // Problem A: x + y = 4, 0 <= x,y <= 4, minimize -x (optimum x=4, obj -4).
  LpProblem a;
  a.numRows = 1;
  a.numCols = 2;
  a.cols = {{{0, 1.0}}, {{0, 1.0}}};
  a.rhs = {4.0};
  a.cost = {-1.0, 0.0};
  a.lower = {0.0, 0.0};
  a.upper = {4.0, 4.0};

  // Problem B: same dimensions, DIFFERENT matrix: 2x + y = 6, minimize -y
  // (optimum y=6, x=0, obj -6).
  LpProblem b;
  b.numRows = 1;
  b.numCols = 2;
  b.cols = {{{0, 2.0}}, {{0, 1.0}}};
  b.rhs = {6.0};
  b.cost = {0.0, -1.0};
  b.lower = {0.0, 0.0};
  b.upper = {4.0, 6.0};

  ASSERT_NE(lpStructuralDigest(a), lpStructuralDigest(b));

  for (SolverEngine engine : {SolverEngine::Revised, SolverEngine::Dense}) {
    BoundedSimplex solver(1e-9, engine);
    SimplexBasis basisA;
    const LpResult firstA = solver.solve(a, 0, nullptr, &basisA);
    ASSERT_EQ(firstA.status, LpStatus::Optimal);
    EXPECT_NEAR(firstA.objective, -4.0, 1e-9);

    // Feed problem B the basis from problem A: same row count, same basic
    // column indices are plausible, but the matrix differs. The solver must
    // refactorize from B's columns, not reuse A's cached factors.
    const LpResult firstB = solver.solve(b, 0, &basisA, nullptr);
    ASSERT_EQ(firstB.status, LpStatus::Optimal);
    EXPECT_NEAR(firstB.objective, -6.0, 1e-9);

    // And back again, exercising the cache in both directions.
    SimplexBasis basisB;
    const LpResult secondB = solver.solve(b, 0, nullptr, &basisB);
    ASSERT_EQ(secondB.status, LpStatus::Optimal);
    const LpResult secondA = solver.solve(a, 0, &basisB, nullptr);
    ASSERT_EQ(secondA.status, LpStatus::Optimal);
    EXPECT_NEAR(secondA.objective, -4.0, 1e-9);
  }
}

// Same-basis warm restart must hit the factor cache (no refactorization
// beyond the count a fresh factorization would cause) and still be exact.
TEST(SolverCacheHazard, SameProblemWarmRestartReusesFactors) {
  LpProblem lp;
  lp.numRows = 2;
  lp.numCols = 4;
  lp.cols = {{{0, 1.0}, {1, 1.0}}, {{0, 2.0}}, {{1, 1.0}}, {{0, 1.0}, {1, -1.0}}};
  lp.rhs = {5.0, 3.0};
  lp.cost = {-2.0, -1.0, 0.0, 1.0};
  lp.lower = {0.0, 0.0, 0.0, 0.0};
  lp.upper = {4.0, 4.0, 4.0, 4.0};

  BoundedSimplex solver;  // Revised by default
  SimplexBasis basis;
  const LpResult cold = solver.solve(lp, 0, nullptr, &basis);
  ASSERT_EQ(cold.status, LpStatus::Optimal);

  // Resolve the identical problem from the exported basis: already optimal,
  // so no pivots and — thanks to the cache — no refactorization either.
  const LpResult warm = solver.solve(lp, 0, &basis, nullptr);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_EQ(warm.factorStats.refactorizations, 0);
}

}  // namespace
}  // namespace hetpar::ilp
