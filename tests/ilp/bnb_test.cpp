#include "hetpar/ilp/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hetpar::ilp {
namespace {

TEST(BranchAndBound, PureLpPassesThrough) {
  Model m;
  Var x = m.addContinuous(0, 4, "x");
  Var y = m.addContinuous(0, 4, "y");
  m.addLe(LinearExpr(x) + LinearExpr(y), 5.0);
  m.setObjective(LinearExpr(x) + 2.0 * LinearExpr(y), Sense::Maximize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-6);  // x=1, y=4
  EXPECT_EQ(solver.lastStats().nodesExplored, 1);
}

TEST(BranchAndBound, SimpleIntegerRounding) {
  // max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5)
  Model m;
  Var x = m.addVar(VarType::Integer, 0, 100, "x");
  m.addLe(2.0 * LinearExpr(x), 7.0);
  m.setObjective(LinearExpr(x), Sense::Maximize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_EQ(s.integral(x), 3);
}

TEST(BranchAndBound, KnapsackKnownOptimum) {
  // Classic 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50 -> 220.
  Model m;
  std::vector<double> value{60, 100, 120};
  std::vector<double> weight{10, 20, 30};
  std::vector<Var> take;
  LinearExpr totalWeight, totalValue;
  for (int i = 0; i < 3; ++i) {
    take.push_back(m.addBool("take" + std::to_string(i)));
    totalWeight += LinearExpr::term(weight[size_t(i)], take.back());
    totalValue += LinearExpr::term(value[size_t(i)], take.back());
  }
  m.addLe(totalWeight, 50.0);
  m.setObjective(totalValue, Sense::Maximize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 220.0, 1e-6);
  EXPECT_EQ(s.integral(take[0]), 0);
  EXPECT_EQ(s.integral(take[1]), 1);
  EXPECT_EQ(s.integral(take[2]), 1);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 2x = 1 has no integer solution.
  Model m;
  Var x = m.addVar(VarType::Integer, 0, 10, "x");
  m.addEq(2.0 * LinearExpr(x), 1.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(m).status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, InfeasibleLpDetected) {
  Model m;
  Var x = m.addBool("x");
  m.addGe(LinearExpr(x), 2.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(m).status, SolveStatus::Infeasible);
}

TEST(BranchAndBound, UnboundedDetected) {
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  BranchAndBoundSolver solver;
  EXPECT_EQ(solver.solve(m).status, SolveStatus::Unbounded);
}

TEST(BranchAndBound, EqualityWithBinariesExactCover) {
  // Choose exactly one of three options with different costs.
  Model m;
  Var a = m.addBool("a");
  Var b = m.addBool("b");
  Var c = m.addBool("c");
  m.addEq(LinearExpr(a) + LinearExpr(b) + LinearExpr(c), 1.0);
  m.setObjective(5.0 * LinearExpr(a) + 3.0 * LinearExpr(b) + 4.0 * LinearExpr(c),
                 Sense::Minimize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-6);
  EXPECT_EQ(s.integral(b), 1);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // max 3x + 2y, x integer in [0,10], y continuous in [0, 4.5], x + y <= 6.2
  // -> x=6, y=0.2: 18.4
  Model m;
  Var x = m.addVar(VarType::Integer, 0, 10, "x");
  Var y = m.addContinuous(0, 4.5, "y");
  m.addLe(LinearExpr(x) + LinearExpr(y), 6.2);
  m.setObjective(3.0 * LinearExpr(x) + 2.0 * LinearExpr(y), Sense::Maximize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_EQ(s.integral(x), 6);
  EXPECT_NEAR(s.value(y), 0.2, 1e-6);
  EXPECT_NEAR(s.objective, 18.4, 1e-6);
}

TEST(BranchAndBound, AndVariablesResolveThroughSearch) {
  // maximize z = x AND y with a budget forbidding both -> optimum 0;
  // then relax the budget -> optimum 1.
  for (double budget : {1.0, 2.0}) {
    Model m;
    Var x = m.addBool("x");
    Var y = m.addBool("y");
    Var z = m.addAnd(x, y, "z");
    m.addLe(LinearExpr(x) + LinearExpr(y), budget);
    m.setObjective(LinearExpr(z), Sense::Maximize);
    BranchAndBoundSolver solver;
    Solution s = solver.solve(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    EXPECT_NEAR(s.objective, budget >= 2.0 ? 1.0 : 0.0, 1e-6);
  }
}

TEST(BranchAndBound, BigMIndicatorPattern) {
  // The parallelizer's Eq 9 pattern: cost >= base - M*(1 - pred).
  // With pred forced to 1 by a dependence, cost must absorb the base.
  const double M = 1e5;
  Model m;
  Var pred = m.addBool("pred");
  Var cost = m.addContinuous(0, kInfinity, "cost");
  m.addGe(LinearExpr(pred), 1.0);  // dependence forces pred
  // Big-M row: cost >= 42 - M*(1 - pred)  ==>  cost - M*pred >= 42 - M.
  m.addGe(LinearExpr(cost) - M * LinearExpr(pred), 42.0 - M);
  m.setObjective(LinearExpr(cost), Sense::Minimize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 42.0, 1e-5);
}

TEST(BranchAndBound, NodeLimitYieldsFeasibleOrLimit) {
  // A 12-item knapsack with a tiny node budget: must not claim optimality.
  Model m;
  LinearExpr w, v;
  std::vector<Var> xs;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(m.addBool("x" + std::to_string(i)));
    w += LinearExpr::term(3 + (i * 7) % 11, xs.back());
    v += LinearExpr::term(5 + (i * 5) % 13, xs.back());
  }
  m.addLe(w, 31.0);
  m.setObjective(v, Sense::Maximize);
  SolveOptions opts;
  opts.maxNodes = 3;
  BranchAndBoundSolver solver(opts);
  Solution s = solver.solve(m);
  EXPECT_TRUE(s.status == SolveStatus::Feasible || s.status == SolveStatus::IterationLimit);
}

TEST(BranchAndBound, StatsArePopulated) {
  Model m;
  Var x = m.addVar(VarType::Integer, 0, 9, "x");
  Var y = m.addVar(VarType::Integer, 0, 9, "y");
  m.addLe(3.0 * LinearExpr(x) + 5.0 * LinearExpr(y), 22.0);
  m.setObjective(2.0 * LinearExpr(x) + 3.0 * LinearExpr(y), Sense::Maximize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  const SolveStats& st = solver.lastStats();
  EXPECT_EQ(st.numVars, 2u);
  EXPECT_EQ(st.numConstraints, 1u);
  EXPECT_EQ(st.numIntegerVars, 2u);
  EXPECT_GE(st.nodesExplored, 1);
  EXPECT_GE(st.simplexIterations, 1);
}

TEST(BranchAndBound, SolutionSatisfiesModel) {
  Model m;
  std::vector<Var> xs;
  LinearExpr sum;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(m.addBool("x" + std::to_string(i)));
    sum += LinearExpr(xs.back());
  }
  m.addEq(sum, 4.0);
  LinearExpr obj;
  for (int i = 0; i < 8; ++i) obj += LinearExpr::term((i % 3) + 1, xs[size_t(i)]);
  m.setObjective(obj, Sense::Minimize);
  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.isFeasible(s.values));
  EXPECT_NEAR(s.objective, 1 + 1 + 1 + 2, 1e-6);  // three weight-1 items + one weight-2
}

}  // namespace
}  // namespace hetpar::ilp
