#include "hetpar/ilp/model.hpp"

#include <gtest/gtest.h>

#include "hetpar/support/error.hpp"

namespace hetpar::ilp {
namespace {

TEST(Model, AddVarAssignsSequentialIndices) {
  Model m;
  Var a = m.addBool("a");
  Var b = m.addContinuous(0, 5, "b");
  Var c = m.addVar(VarType::Integer, -2, 7, "c");
  EXPECT_EQ(a.index(), 0);
  EXPECT_EQ(b.index(), 1);
  EXPECT_EQ(c.index(), 2);
  EXPECT_EQ(m.numVars(), 3u);
  EXPECT_EQ(m.numIntegerVars(), 2u);
  EXPECT_EQ(m.varInfo(b).upperBound, 5.0);
  EXPECT_EQ(m.varInfo(c).type, VarType::Integer);
}

TEST(Model, RejectsEmptyDomain) {
  Model m;
  EXPECT_THROW(m.addVar(VarType::Continuous, 3, 2, "bad"), SolverError);
}

TEST(Model, RejectsBadBinaryBounds) {
  Model m;
  EXPECT_THROW(m.addVar(VarType::Binary, 0, 2, "bad"), SolverError);
}

TEST(Model, ConstraintNormalizationFoldsConstants) {
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  // x + 3 <= 2*x + 5  ==>  -x <= 2
  m.addLe(LinearExpr(x) + 3.0, 2.0 * LinearExpr(x) + 5.0, "c0");
  ASSERT_EQ(m.numConstraints(), 1u);
  const Constraint& c = m.constraints()[0];
  EXPECT_DOUBLE_EQ(c.lhs.coefficient(x), -1.0);
  EXPECT_DOUBLE_EQ(c.rhs, 2.0);
  EXPECT_EQ(c.relation, Relation::LessEqual);
}

TEST(Model, IsFeasibleChecksBoundsIntegralityConstraints) {
  Model m;
  Var x = m.addVar(VarType::Integer, 0, 10, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.addLe(LinearExpr(x) + LinearExpr(y), 8.0);
  EXPECT_TRUE(m.isFeasible({3.0, 4.0}));
  EXPECT_FALSE(m.isFeasible({3.5, 4.0}));   // integrality
  EXPECT_FALSE(m.isFeasible({3.0, 6.0}));   // constraint
  EXPECT_FALSE(m.isFeasible({-1.0, 4.0}));  // lower bound
  EXPECT_FALSE(m.isFeasible({3.0}));        // wrong arity
}

TEST(Model, EvalObjective) {
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.setObjective(2.0 * LinearExpr(x) - LinearExpr(y) + 7.0, Sense::Minimize);
  EXPECT_DOUBLE_EQ(m.evalObjective({3.0, 4.0}), 2 * 3 - 4 + 7);
}

TEST(Model, AddAndEncodesConjunction) {
  // Exhaustively check the Eq 7 linearization: for every corner of (x, y),
  // the only feasible integral z equals x AND y.
  for (int xv = 0; xv <= 1; ++xv) {
    for (int yv = 0; yv <= 1; ++yv) {
      Model m;
      Var x = m.addBool("x");
      Var y = m.addBool("y");
      Var z = m.addAnd(x, y, "z");
      (void)z;
      for (int zv = 0; zv <= 1; ++zv) {
        const bool feasible = m.isFeasible({double(xv), double(yv), double(zv)});
        EXPECT_EQ(feasible, zv == (xv & yv))
            << "x=" << xv << " y=" << yv << " z=" << zv;
      }
    }
  }
}

TEST(Model, AndAddsThreeConstraints) {
  Model m;
  Var x = m.addBool("x");
  Var y = m.addBool("y");
  m.addAnd(x, y, "z");
  EXPECT_EQ(m.numVars(), 3u);
  EXPECT_EQ(m.numConstraints(), 3u);
}

TEST(Model, StrDumpMentionsEverything) {
  Model m("demo");
  Var x = m.addBool("flag");
  m.addLe(LinearExpr(x), 1.0, "cap");
  m.setObjective(LinearExpr(x), Sense::Maximize);
  const std::string s = m.str();
  EXPECT_NE(s.find("maximize"), std::string::npos);
  EXPECT_NE(s.find("cap"), std::string::npos);
  EXPECT_NE(s.find("binary"), std::string::npos);
}

TEST(Solution, IntegralRounds) {
  Solution s;
  s.status = SolveStatus::Optimal;
  s.values = {0.9999999, 2.0000001, 0.0};
  EXPECT_EQ(s.integral(Var(0)), 1);
  EXPECT_EQ(s.integral(Var(1)), 2);
  EXPECT_TRUE(s.boolean(Var(0)));
  EXPECT_FALSE(s.boolean(Var(2)));
}

}  // namespace
}  // namespace hetpar::ilp
