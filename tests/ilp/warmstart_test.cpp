// Warm-start correctness: re-solving a perturbed problem from the previous
// basis must reach the same optimum a cold solve finds, across many random
// models and perturbations (the branch-and-bound usage pattern).
#include <gtest/gtest.h>

#include "hetpar/ilp/simplex.hpp"
#include "hetpar/support/rng.hpp"

namespace hetpar::ilp {
namespace {

Model randomModel(Rng& rng, int nv, int nc) {
  Model m("warm");
  std::vector<Var> xs;
  for (int i = 0; i < nv; ++i)
    xs.push_back(m.addContinuous(0, double(rng.range(1, 10)), "x" + std::to_string(i)));
  for (int c = 0; c < nc; ++c) {
    LinearExpr lhs;
    for (int i = 0; i < nv; ++i)
      if (rng.chance(0.5)) lhs += LinearExpr::term(double(rng.range(1, 4)), xs[size_t(i)]);
    if (rng.chance(0.5)) m.addLe(lhs, double(rng.range(2, 3 * nv)));
    else m.addGe(lhs, double(rng.range(0, nv)));
  }
  LinearExpr obj;
  for (int i = 0; i < nv; ++i)
    obj += LinearExpr::term(double(rng.range(-6, 6)), xs[size_t(i)]);
  m.setObjective(obj, rng.chance(0.5) ? Sense::Minimize : Sense::Maximize);
  return m;
}

class WarmStartSweep : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartSweep, WarmEqualsCold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  const int nv = int(rng.range(3, 12));
  const int nc = int(rng.range(2, 10));
  Model m = randomModel(rng, nv, nc);

  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  StandardForm sf = buildLp(m, lb, ub);
  BoundedSimplex solver;
  SimplexBasis basis;
  LpResult first = solver.solve(sf.problem, 0, nullptr, &basis);
  if (first.status != LpStatus::Optimal) GTEST_SKIP() << "base problem not optimal";
  ASSERT_TRUE(basis.valid());

  // Branch-and-bound-style perturbations: tighten one structural bound.
  for (int round = 0; round < 4; ++round) {
    const int j = int(rng.below(static_cast<std::uint64_t>(nv)));
    LpProblem perturbed = sf.problem;
    if (rng.chance(0.5)) perturbed.upper[size_t(j)] = perturbed.upper[size_t(j)] / 2.0;
    else perturbed.lower[size_t(j)] =
        (perturbed.lower[size_t(j)] + perturbed.upper[size_t(j)]) / 2.0;

    BoundedSimplex coldSolver;
    const LpResult cold = coldSolver.solve(perturbed);
    const LpResult warm = solver.solve(perturbed, 0, &basis, nullptr);
    ASSERT_EQ(warm.status, cold.status) << "seed " << GetParam() << " round " << round;
    if (cold.status == LpStatus::Optimal) {
      EXPECT_NEAR(warm.objective, cold.objective, 1e-5 * (1.0 + std::abs(cold.objective)))
          << "seed " << GetParam() << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartSweep, ::testing::Range(0, 60));

TEST(WarmStart, DetectsInfeasibleChild) {
  // x + y >= 8 with x,y in [0,5]; child forces x <= 2, y <= 2 -> infeasible.
  Model m("inf");
  Var x = m.addContinuous(0, 5, "x");
  Var y = m.addContinuous(0, 5, "y");
  m.addGe(LinearExpr(x) + LinearExpr(y), 8.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  std::vector<double> lb{0, 0}, ub{5, 5};
  StandardForm sf = buildLp(m, lb, ub);
  BoundedSimplex solver;
  SimplexBasis basis;
  ASSERT_EQ(solver.solve(sf.problem, 0, nullptr, &basis).status, LpStatus::Optimal);
  sf.problem.upper[0] = 2.0;
  sf.problem.upper[1] = 2.0;
  EXPECT_EQ(solver.solve(sf.problem, 0, &basis, nullptr).status, LpStatus::Infeasible);
}

TEST(WarmStart, MismatchedBasisFallsBackToCold) {
  Model m("fallback");
  Var x = m.addContinuous(0, 5, "x");
  m.addLe(LinearExpr(x), 4.0);
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  std::vector<double> lb{0}, ub{5};
  StandardForm sf = buildLp(m, lb, ub);
  SimplexBasis bogus;
  bogus.basicCols = {0, 1, 2};  // wrong row count
  bogus.atUpper = {0};
  BoundedSimplex solver;
  const LpResult r = solver.solve(sf.problem, 0, &bogus, nullptr);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 4.0, 1e-7);
}

}  // namespace
}  // namespace hetpar::ilp
