#include "hetpar/ilp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hetpar::ilp {
namespace {

// Convenience: solve a Model's LP relaxation via buildLp + BoundedSimplex.
LpResult relaxWith(const Model& m, SolverEngine engine) {
  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  StandardForm sf = buildLp(m, lb, ub);
  BoundedSimplex simplex(1e-9, engine);
  return simplex.solve(sf.problem);
}

LpResult relax(const Model& m) { return relaxWith(m, SolverEngine::Revised); }

TEST(Simplex, TextbookTwoVarMaximize) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> 36 at (2,6)
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addLe(LinearExpr(x), 4.0);
  m.addLe(2.0 * LinearExpr(y), 12.0);
  m.addLe(3.0 * LinearExpr(x) + 2.0 * LinearExpr(y), 18.0);
  m.setObjective(3.0 * LinearExpr(x) + 5.0 * LinearExpr(y), Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);  // internal objective is minimized
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(Simplex, MinimizeWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0 -> x=10-y... optimum x=10,y=0? cost 20
  Model m;
  Var x = m.addContinuous(2, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addGe(LinearExpr(x) + LinearExpr(y), 10.0);
  m.setObjective(2.0 * LinearExpr(x) + 3.0 * LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[0], 10.0, 1e-6);
  EXPECT_NEAR(r.x[1], 0.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 6, 0<=x,y<=10 -> y=3, x=0 -> 3
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.addEq(LinearExpr(x) + 2.0 * LinearExpr(y), 6.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  Var x = m.addContinuous(0, 1, "x");
  m.addGe(LinearExpr(x), 2.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsInfeasibleSystem) {
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 1.0);
  m.addEq(LinearExpr(x) + LinearExpr(y), 2.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addGe(LinearExpr(x) - LinearExpr(y), 1.0);
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Unbounded);
}

TEST(Simplex, BoundedVariablesHandledImplicitly) {
  // max x + y with 1 <= x <= 3, 2 <= y <= 5 and x + y <= 7 -> (3, 4) or (2, 5): 7
  Model m;
  Var x = m.addContinuous(1, 3, "x");
  Var y = m.addContinuous(2, 5, "y");
  m.addLe(LinearExpr(x) + LinearExpr(y), 7.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(-r.objective, 7.0, 1e-6);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with -5 <= x <= 5, -5 <= y <= 5, x + y >= -3 -> -3
  Model m;
  Var x = m.addContinuous(-5, 5, "x");
  Var y = m.addContinuous(-5, 5, "y");
  m.addGe(LinearExpr(x) + LinearExpr(y), -3.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(Simplex, FreeVariable) {
  // min y s.t. y >= x - 2, y >= -x, x free -> x=1, y=-1
  Model m;
  Var x = m.addContinuous(-kInfinity, kInfinity, "x");
  Var y = m.addContinuous(-kInfinity, kInfinity, "y");
  m.addGe(LinearExpr(y) - LinearExpr(x), -2.0);
  m.addGe(LinearExpr(y) + LinearExpr(x), 0.0);
  m.setObjective(LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  Model m;
  Var x1 = m.addContinuous(0, kInfinity, "x1");
  Var x2 = m.addContinuous(0, kInfinity, "x2");
  Var x3 = m.addContinuous(0, kInfinity, "x3");
  m.addLe(0.5 * LinearExpr(x1) - 5.5 * LinearExpr(x2) - 2.5 * LinearExpr(x3), 0.0);
  m.addLe(0.5 * LinearExpr(x1) - 1.5 * LinearExpr(x2) - 0.5 * LinearExpr(x3), 0.0);
  m.addLe(LinearExpr(x1), 1.0);
  m.setObjective(-10.0 * LinearExpr(x1) + 57.0 * LinearExpr(x2) + 9.0 * LinearExpr(x3),
                 Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  // Optimum: x1=1, x3=1, x2=0 -> -10 + 9 = -1.
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(Simplex, NoRowsPureBounds) {
  Model m;
  Var x = m.addContinuous(1, 4, "x");
  Var y = m.addContinuous(-2, 3, "y");
  m.setObjective(LinearExpr(x) - 2.0 * LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0 - 6.0, 1e-9);
}

TEST(Simplex, FixedVariables) {
  Model m;
  Var x = m.addContinuous(3, 3, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 8.0);
  m.setObjective(LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[1], 5.0, 1e-6);
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  for (int i = 0; i < 6; ++i) m.addLe(LinearExpr(x), 5.0);
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 5.0, 1e-6);
}

TEST(Simplex, ModeratelySizedDiagonalSystem) {
  // 60 rows: x_i + x_{i+1} <= 2 with objective max sum x_i.
  Model m;
  std::vector<Var> xs;
  for (int i = 0; i < 61; ++i) xs.push_back(m.addContinuous(0, 2, "x" + std::to_string(i)));
  LinearExpr sum;
  for (auto v : xs) sum += LinearExpr(v);
  for (int i = 0; i < 60; ++i) m.addLe(LinearExpr(xs[i]) + LinearExpr(xs[i + 1]), 2.0);
  m.setObjective(sum, Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  // Optimum alternates 2,0,2,... -> 31 * 2 = 62.
  EXPECT_NEAR(-r.objective, 62.0, 1e-5);
}

// ---------------------------------------------------------------------------
// Adversarial numeric corpus. Each case is a known LP pathology — cycling
// degeneracy, near-singular bases, extreme coefficient scales — with a known
// optimum, run through BOTH engines. The corpus pins down behaviors the
// random differential sweep only hits by luck.

struct AdversarialCase {
  const char* name;
  Model (*build)();
  double expectedObjective;  // internal (minimized) objective
  double tol;
};

// Beale's classic cycling example: the Dantzig rule cycles forever on this
// degenerate LP; termination requires the anti-cycling (Bland) fallback.
Model bealeCycling() {
  Model m;
  Var x1 = m.addContinuous(0, kInfinity, "x1");
  Var x2 = m.addContinuous(0, kInfinity, "x2");
  Var x3 = m.addContinuous(0, kInfinity, "x3");
  Var x4 = m.addContinuous(0, kInfinity, "x4");
  m.addLe(0.25 * LinearExpr(x1) - 60.0 * LinearExpr(x2) - 0.04 * LinearExpr(x3) +
              9.0 * LinearExpr(x4),
          0.0);
  m.addLe(0.5 * LinearExpr(x1) - 90.0 * LinearExpr(x2) - 0.02 * LinearExpr(x3) +
              3.0 * LinearExpr(x4),
          0.0);
  m.addLe(LinearExpr(x3), 1.0);
  m.setObjective(-0.75 * LinearExpr(x1) + 150.0 * LinearExpr(x2) -
                     0.02 * LinearExpr(x3) + 6.0 * LinearExpr(x4),
                 Sense::Minimize);
  return m;  // optimum -0.05 at (0.04, 0, 1, 0)
}

// Two rows that differ by 1e-5 in one coefficient: a basis containing both
// rows has condition number ~1e5, stressing the pivot tolerance (dense) and
// the Markowitz threshold + singularity guard (LU). The perturbation sits
// above the 1e-7 feasibility tolerance on purpose — anything smaller and
// the solver is entitled to treat the rows as one constraint.
Model nearSingularRows() {
  Model m;
  Var x = m.addContinuous(-5, 5, "x");
  Var y = m.addContinuous(-5, 5, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 1.0);
  m.addEq(LinearExpr(x) + (1.0 + 1e-5) * LinearExpr(y), 1.0 + 2e-5);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  return m;  // unique solution x=-1, y=2
}

// Cost/rhs magnitudes at 1e+8: absolute tolerances tuned for O(1) data must
// not misclassify feasibility or optimality.
Model largeScale() {
  Model m;
  Var x = m.addContinuous(0, 1e8, "x");
  Var y = m.addContinuous(0, 1e8, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 1e8);
  m.setObjective(1e-8 * LinearExpr(x) + 2e-8 * LinearExpr(y), Sense::Minimize);
  return m;  // x takes everything: objective 1.0
}

// Matrix coefficient at 1e+8 against O(1) rows: the ratio test and the
// factor update both see pivots eight orders of magnitude apart.
Model mixedScale() {
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  Var y = m.addContinuous(0, 1, "y");
  m.addEq(1e8 * LinearExpr(x) + LinearExpr(y), 1e8);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  return m;  // y=1, x=(1e8-1)/1e8: objective 1 - 1e-8
}

// 3x3 assignment polytope written with ALL six (redundant, rank-5) equality
// rows: every basis carries a zero-level artificial, every vertex is
// degenerate. Exercises rank-deficient phase 1 and degenerate pivoting.
Model degenerateAssignment() {
  Model m;
  const double cost[3][3] = {{1, 2, 3}, {2, 1, 3}, {3, 2, 1}};
  Var x[3][3];
  LinearExpr obj;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      x[i][j] = m.addContinuous(0, 1, "x" + std::to_string(i) + std::to_string(j));
      obj += cost[i][j] * LinearExpr(x[i][j]);
    }
  for (int i = 0; i < 3; ++i) {
    LinearExpr row, col;
    for (int j = 0; j < 3; ++j) {
      row += LinearExpr(x[i][j]);
      col += LinearExpr(x[j][i]);
    }
    m.addEq(row, 1.0);
    m.addEq(col, 1.0);
  }
  m.setObjective(obj, Sense::Minimize);
  return m;  // diagonal assignment: objective 3
}

class AdversarialSweep : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(AdversarialSweep, BothEnginesReachKnownOptimum) {
  const AdversarialCase& c = GetParam();
  const Model m = c.build();
  for (SolverEngine engine : {SolverEngine::Revised, SolverEngine::Dense}) {
    const LpResult r = relaxWith(m, engine);
    ASSERT_EQ(r.status, LpStatus::Optimal)
        << c.name << (engine == SolverEngine::Dense ? " (dense)" : " (revised)");
    EXPECT_NEAR(r.objective, c.expectedObjective, c.tol)
        << c.name << (engine == SolverEngine::Dense ? " (dense)" : " (revised)");
    if (engine == SolverEngine::Revised) {
      // Every cold revised solve factorizes at least once and reports it.
      EXPECT_GE(r.factorStats.refactorizations, 1) << c.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, AdversarialSweep,
    ::testing::Values(AdversarialCase{"beale-cycling", &bealeCycling, -0.05, 1e-9},
                      AdversarialCase{"near-singular-rows", &nearSingularRows, -1.0, 1e-5},
                      AdversarialCase{"large-scale", &largeScale, 1.0, 1e-4},
                      AdversarialCase{"mixed-scale", &mixedScale, 1.0 - 1e-8, 1e-6},
                      AdversarialCase{"degenerate-assignment", &degenerateAssignment, 3.0,
                                      1e-6}),
    [](const ::testing::TestParamInfo<AdversarialCase>& info) {
      std::string n = info.param.name;
      for (char& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

// An 80-row chained system needs well over 80 pivots; the product-form eta
// file must overflow its cap (clamp(m, 32, 160)) mid-solve and trigger at
// least one refactorization beyond the initial factorize.
TEST(SimplexAdversarial, EtaCapTriggersRefactorization) {
  Model m;
  std::vector<Var> xs;
  for (int i = 0; i < 81; ++i) xs.push_back(m.addContinuous(0, 2, "x" + std::to_string(i)));
  LinearExpr sum;
  for (auto v : xs) sum += LinearExpr(v);
  for (int i = 0; i < 80; ++i) m.addLe(LinearExpr(xs[i]) + LinearExpr(xs[i + 1]), 2.0);
  m.setObjective(sum, Sense::Maximize);
  const LpResult r = relaxWith(m, SolverEngine::Revised);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(-r.objective, 82.0, 1e-5);
  EXPECT_GE(r.iterations, 81);
  EXPECT_GE(r.factorStats.refactorizations, 2)
      << "eta-length trigger never fired over " << r.iterations << " iterations";
  EXPECT_GE(r.factorStats.etaUpdates, 1);
  EXPECT_GE(r.factorStats.peakEtaLength, 1);
  EXPECT_GT(r.factorStats.peakFillNonzeros, 0);
}

}  // namespace
}  // namespace hetpar::ilp
