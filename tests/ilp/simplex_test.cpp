#include "hetpar/ilp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hetpar::ilp {
namespace {

// Convenience: solve a Model's LP relaxation via buildLp + BoundedSimplex.
LpResult relax(const Model& m) {
  std::vector<double> lb, ub;
  for (const auto& v : m.vars()) {
    lb.push_back(v.lowerBound);
    ub.push_back(v.upperBound);
  }
  StandardForm sf = buildLp(m, lb, ub);
  BoundedSimplex simplex;
  return simplex.solve(sf.problem);
}

TEST(Simplex, TextbookTwoVarMaximize) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0 -> 36 at (2,6)
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addLe(LinearExpr(x), 4.0);
  m.addLe(2.0 * LinearExpr(y), 12.0);
  m.addLe(3.0 * LinearExpr(x) + 2.0 * LinearExpr(y), 18.0);
  m.setObjective(3.0 * LinearExpr(x) + 5.0 * LinearExpr(y), Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-6);  // internal objective is minimized
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 6.0, 1e-6);
}

TEST(Simplex, MinimizeWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0 -> x=10-y... optimum x=10,y=0? cost 20
  Model m;
  Var x = m.addContinuous(2, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addGe(LinearExpr(x) + LinearExpr(y), 10.0);
  m.setObjective(2.0 * LinearExpr(x) + 3.0 * LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 20.0, 1e-6);
  EXPECT_NEAR(r.x[0], 10.0, 1e-6);
  EXPECT_NEAR(r.x[1], 0.0, 1e-6);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 6, 0<=x,y<=10 -> y=3, x=0 -> 3
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.addEq(LinearExpr(x) + 2.0 * LinearExpr(y), 6.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  Var x = m.addContinuous(0, 1, "x");
  m.addGe(LinearExpr(x), 2.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsInfeasibleSystem) {
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 1.0);
  m.addEq(LinearExpr(x) + LinearExpr(y), 2.0);
  m.setObjective(LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  Var x = m.addContinuous(0, kInfinity, "x");
  Var y = m.addContinuous(0, kInfinity, "y");
  m.addGe(LinearExpr(x) - LinearExpr(y), 1.0);
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  EXPECT_EQ(relax(m).status, LpStatus::Unbounded);
}

TEST(Simplex, BoundedVariablesHandledImplicitly) {
  // max x + y with 1 <= x <= 3, 2 <= y <= 5 and x + y <= 7 -> (3, 4) or (2, 5): 7
  Model m;
  Var x = m.addContinuous(1, 3, "x");
  Var y = m.addContinuous(2, 5, "y");
  m.addLe(LinearExpr(x) + LinearExpr(y), 7.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(-r.objective, 7.0, 1e-6);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with -5 <= x <= 5, -5 <= y <= 5, x + y >= -3 -> -3
  Model m;
  Var x = m.addContinuous(-5, 5, "x");
  Var y = m.addContinuous(-5, 5, "y");
  m.addGe(LinearExpr(x) + LinearExpr(y), -3.0);
  m.setObjective(LinearExpr(x) + LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(Simplex, FreeVariable) {
  // min y s.t. y >= x - 2, y >= -x, x free -> x=1, y=-1
  Model m;
  Var x = m.addContinuous(-kInfinity, kInfinity, "x");
  Var y = m.addContinuous(-kInfinity, kInfinity, "y");
  m.addGe(LinearExpr(y) - LinearExpr(x), -2.0);
  m.addGe(LinearExpr(y) + LinearExpr(x), 0.0);
  m.setObjective(LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  Model m;
  Var x1 = m.addContinuous(0, kInfinity, "x1");
  Var x2 = m.addContinuous(0, kInfinity, "x2");
  Var x3 = m.addContinuous(0, kInfinity, "x3");
  m.addLe(0.5 * LinearExpr(x1) - 5.5 * LinearExpr(x2) - 2.5 * LinearExpr(x3), 0.0);
  m.addLe(0.5 * LinearExpr(x1) - 1.5 * LinearExpr(x2) - 0.5 * LinearExpr(x3), 0.0);
  m.addLe(LinearExpr(x1), 1.0);
  m.setObjective(-10.0 * LinearExpr(x1) + 57.0 * LinearExpr(x2) + 9.0 * LinearExpr(x3),
                 Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  // Optimum: x1=1, x3=1, x2=0 -> -10 + 9 = -1.
  EXPECT_NEAR(r.objective, -1.0, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-6);
}

TEST(Simplex, NoRowsPureBounds) {
  Model m;
  Var x = m.addContinuous(1, 4, "x");
  Var y = m.addContinuous(-2, 3, "y");
  m.setObjective(LinearExpr(x) - 2.0 * LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0 - 6.0, 1e-9);
}

TEST(Simplex, FixedVariables) {
  Model m;
  Var x = m.addContinuous(3, 3, "x");
  Var y = m.addContinuous(0, 10, "y");
  m.addEq(LinearExpr(x) + LinearExpr(y), 8.0);
  m.setObjective(LinearExpr(y), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[1], 5.0, 1e-6);
}

TEST(Simplex, RedundantConstraintsAreHarmless) {
  Model m;
  Var x = m.addContinuous(0, 10, "x");
  for (int i = 0; i < 6; ++i) m.addLe(LinearExpr(x), 5.0);
  m.setObjective(-LinearExpr(x), Sense::Minimize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 5.0, 1e-6);
}

TEST(Simplex, ModeratelySizedDiagonalSystem) {
  // 60 rows: x_i + x_{i+1} <= 2 with objective max sum x_i.
  Model m;
  std::vector<Var> xs;
  for (int i = 0; i < 61; ++i) xs.push_back(m.addContinuous(0, 2, "x" + std::to_string(i)));
  LinearExpr sum;
  for (auto v : xs) sum += LinearExpr(v);
  for (int i = 0; i < 60; ++i) m.addLe(LinearExpr(xs[i]) + LinearExpr(xs[i + 1]), 2.0);
  m.setObjective(sum, Sense::Maximize);
  LpResult r = relax(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  // Optimum alternates 2,0,2,... -> 31 * 2 = 62.
  EXPECT_NEAR(-r.objective, 62.0, 1e-5);
}

}  // namespace
}  // namespace hetpar::ilp
