// Property tests: the branch-and-bound solver must agree with exhaustive
// enumeration on randomly generated small binary programs, across many seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "hetpar/ilp/branch_and_bound.hpp"
#include "hetpar/support/rng.hpp"

namespace hetpar::ilp {
namespace {

struct RandomBip {
  Model model;
  std::vector<Var> vars;
};

/// Builds a random pure-binary program with `nv` variables and `nc`
/// constraints whose coefficients mimic the parallelizer's models
/// (small integers, mixed relations).
RandomBip makeRandom(Rng& rng, int nv, int nc) {
  RandomBip out;
  out.model = Model("random_bip");
  for (int i = 0; i < nv; ++i) out.vars.push_back(out.model.addBool("b" + std::to_string(i)));
  for (int c = 0; c < nc; ++c) {
    LinearExpr lhs;
    for (int i = 0; i < nv; ++i) {
      if (rng.chance(0.6)) lhs += LinearExpr::term(double(rng.range(-3, 3)), out.vars[size_t(i)]);
    }
    const double rhs = double(rng.range(-2, nv));
    switch (rng.below(3)) {
      case 0: out.model.addLe(lhs, rhs); break;
      case 1: out.model.addGe(lhs, rhs - nv); break;
      default: {
        // Equalities are kept loose enough to stay frequently feasible.
        out.model.addLe(lhs, rhs);
        out.model.addGe(lhs, rhs - 2.0);
        break;
      }
    }
  }
  LinearExpr obj;
  for (int i = 0; i < nv; ++i)
    obj += LinearExpr::term(double(rng.range(-5, 5)), out.vars[size_t(i)]);
  out.model.setObjective(obj, rng.chance(0.5) ? Sense::Minimize : Sense::Maximize);
  return out;
}

/// Exhaustive optimum over all 2^nv assignments; nullopt if infeasible.
std::optional<double> bruteForce(const Model& m, int nv) {
  std::optional<double> best;
  std::vector<double> x(static_cast<size_t>(nv), 0.0);
  for (unsigned mask = 0; mask < (1u << nv); ++mask) {
    for (int i = 0; i < nv; ++i) x[size_t(i)] = (mask >> i) & 1u ? 1.0 : 0.0;
    if (!m.isFeasible(x)) continue;
    const double obj = m.evalObjective(x);
    if (!best) {
      best = obj;
    } else if (m.sense() == Sense::Minimize) {
      best = std::min(*best, obj);
    } else {
      best = std::max(*best, obj);
    }
  }
  return best;
}

class RandomBipSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomBipSweep, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const int nv = int(rng.range(2, 10));
  const int nc = int(rng.range(1, 8));
  RandomBip bip = makeRandom(rng, nv, nc);

  BranchAndBoundSolver solver;
  Solution s = solver.solve(bip.model);
  std::optional<double> expected = bruteForce(bip.model, nv);

  if (!expected) {
    EXPECT_EQ(s.status, SolveStatus::Infeasible) << "seed " << seed;
  } else {
    ASSERT_EQ(s.status, SolveStatus::Optimal)
        << "seed " << seed << " expected obj " << *expected;
    EXPECT_NEAR(s.objective, *expected, 1e-6) << "seed " << seed;
    EXPECT_TRUE(bip.model.isFeasible(s.values)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBipSweep, ::testing::Range(0, 120));

class RandomMixedSweep : public ::testing::TestWithParam<int> {};

// Mixed binary/continuous: check returned solutions are feasible and the
// binary part agrees with an exhaustive scan over the binaries where, for
// each binary assignment, the continuous tail is optimized by the LP itself
// (we reuse the solver with binaries fixed).
TEST_P(RandomMixedSweep, BinaryFixingConsistency) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 7);
  const int nb = int(rng.range(2, 6));

  Model m("mixed");
  std::vector<Var> bs;
  for (int i = 0; i < nb; ++i) bs.push_back(m.addBool("b" + std::to_string(i)));
  Var y = m.addContinuous(0, 10, "y");

  LinearExpr sumB;
  for (auto b : bs) sumB += LinearExpr(b);
  m.addLe(sumB + LinearExpr(y), double(nb));
  m.addGe(2.0 * LinearExpr(y) - sumB, -1.0);
  LinearExpr obj = LinearExpr::term(-1.5, y);
  for (int i = 0; i < nb; ++i)
    obj += LinearExpr::term(double(rng.range(-4, 4)), bs[size_t(i)]);
  m.setObjective(obj, Sense::Minimize);

  BranchAndBoundSolver solver;
  Solution s = solver.solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal) << "seed " << seed;
  EXPECT_TRUE(m.isFeasible(s.values));

  // Exhaustive over binaries: fix them via bounds and re-solve the LP.
  double bestObj = kInfinity;
  for (unsigned mask = 0; mask < (1u << nb); ++mask) {
    Model fixed = m;
    for (int i = 0; i < nb; ++i) {
      const double v = (mask >> i) & 1u ? 1.0 : 0.0;
      fixed.varInfo(bs[size_t(i)]).lowerBound = v;
      fixed.varInfo(bs[size_t(i)]).upperBound = v;
    }
    BranchAndBoundSolver sub;
    Solution fs = sub.solve(fixed);
    if (fs.status == SolveStatus::Optimal) bestObj = std::min(bestObj, fs.objective);
  }
  EXPECT_NEAR(s.objective, bestObj, 1e-6) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMixedSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace hetpar::ilp
