#include "hetpar/ilp/expr.hpp"

#include <gtest/gtest.h>

namespace hetpar::ilp {
namespace {

TEST(LinearExpr, DefaultIsZero) {
  LinearExpr e;
  EXPECT_TRUE(e.isConstant());
  EXPECT_DOUBLE_EQ(e.constant(), 0.0);
  EXPECT_EQ(e.size(), 0u);
}

TEST(LinearExpr, ImplicitConversions) {
  LinearExpr c = 3.5;
  EXPECT_TRUE(c.isConstant());
  EXPECT_DOUBLE_EQ(c.constant(), 3.5);

  Var x(0);
  LinearExpr v = x;
  EXPECT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v.coefficient(x), 1.0);
}

TEST(LinearExpr, TermFactory) {
  Var x(2);
  LinearExpr e = LinearExpr::term(4.0, x);
  EXPECT_DOUBLE_EQ(e.coefficient(x), 4.0);
  LinearExpr zero = LinearExpr::term(0.0, x);
  EXPECT_TRUE(zero.isConstant());
}

TEST(LinearExpr, AdditionMergesTerms) {
  Var x(0), y(1);
  LinearExpr e = LinearExpr(x) + LinearExpr(y) + LinearExpr(x);
  EXPECT_EQ(e.size(), 2u);
  EXPECT_DOUBLE_EQ(e.coefficient(x), 2.0);
  EXPECT_DOUBLE_EQ(e.coefficient(y), 1.0);
}

TEST(LinearExpr, SubtractionCancelsToZeroCoefficient) {
  Var x(0), y(1);
  LinearExpr e = LinearExpr(x) + LinearExpr(y);
  e -= LinearExpr(x);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e.coefficient(x), 0.0);
  EXPECT_DOUBLE_EQ(e.coefficient(y), 1.0);
}

TEST(LinearExpr, ScalarMultiplication) {
  Var x(0);
  LinearExpr e = 2.0 * (LinearExpr(x) + 3.0);
  EXPECT_DOUBLE_EQ(e.coefficient(x), 2.0);
  EXPECT_DOUBLE_EQ(e.constant(), 6.0);

  e *= 0.0;
  EXPECT_TRUE(e.isConstant());
  EXPECT_DOUBLE_EQ(e.constant(), 0.0);
}

TEST(LinearExpr, UnaryMinus) {
  Var x(0);
  LinearExpr e = -(LinearExpr(x) - 2.0);
  EXPECT_DOUBLE_EQ(e.coefficient(x), -1.0);
  EXPECT_DOUBLE_EQ(e.constant(), 2.0);
}

TEST(LinearExpr, TermsStaySortedByIndex) {
  Var a(5), b(1), c(3);
  LinearExpr e = LinearExpr(a) + LinearExpr(b) + LinearExpr(c);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e.terms()[0].first, 1);
  EXPECT_EQ(e.terms()[1].first, 3);
  EXPECT_EQ(e.terms()[2].first, 5);
}

TEST(LinearExpr, StrRendering) {
  Var x(0), y(1);
  LinearExpr e = 2.0 * LinearExpr(x) - LinearExpr(y) + 1.5;
  const std::string s = e.str();
  EXPECT_NE(s.find("2*x0"), std::string::npos);
  EXPECT_NE(s.find("x1"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(Var, DefaultInvalid) {
  Var v;
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.index(), -1);
  EXPECT_TRUE(Var(0).valid());
}

}  // namespace
}  // namespace hetpar::ilp
