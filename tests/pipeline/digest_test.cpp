#include "hetpar/pipeline/digest.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hetpar::pipeline {
namespace {

TEST(Digest, HexIs32LowercaseChars) {
  Digest d;
  d.put("hello");
  const std::string hex = d.hex();
  ASSERT_EQ(hex.size(), 32u);
  for (char c : hex) EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
}

TEST(Digest, Deterministic) {
  Digest a, b;
  a.put("source");
  a.putU64(7);
  b.put("source");
  b.putU64(7);
  EXPECT_EQ(a.hex(), b.hex());
}

TEST(Digest, SensitiveToEveryField) {
  const auto keyed = [](const std::string& s, std::uint64_t v, double f, bool b) {
    Digest d;
    d.put(s);
    d.putU64(v);
    d.putF64(f);
    d.putBool(b);
    return d.hex();
  };
  const std::string base = keyed("src", 1, 2.5, true);
  EXPECT_NE(keyed("srC", 1, 2.5, true), base);
  EXPECT_NE(keyed("src", 2, 2.5, true), base);
  EXPECT_NE(keyed("src", 1, 2.5000001, true), base);
  EXPECT_NE(keyed("src", 1, 2.5, false), base);
}

TEST(Digest, LengthPrefixPreventsConcatenationAliasing) {
  // ("ab","c") and ("a","bc") feed the same bytes; the length prefix must
  // keep their digests apart.
  Digest a, b;
  a.put("ab");
  a.put("c");
  b.put("a");
  b.put("bc");
  EXPECT_NE(a.hex(), b.hex());
}

TEST(Digest, NegativeZeroAndZeroDiffer) {
  // Bit-pattern hashing: -0.0 and 0.0 are distinct keys, matching the
  // byte-exact artifact serialization.
  Digest a, b;
  a.putF64(0.0);
  b.putF64(-0.0);
  EXPECT_NE(a.hex(), b.hex());
}

TEST(Fnv1a64, MatchesReferenceVectors) {
  // Classic FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace hetpar::pipeline
