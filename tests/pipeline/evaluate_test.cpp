// End-to-end evaluation harness tests: the full paper pipeline on one
// benchmark, asserting the qualitative results of Section VI.
#include "hetpar/pipeline/evaluate.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "hetpar/benchsuite/suite.hpp"
#include "hetpar/platform/presets.hpp"

namespace hetpar::pipeline {
namespace {

const EvalResult& firResultA() {
  static const EvalResult r = evaluateBenchmark(
      "fir_256", benchsuite::find("fir_256").source, platform::platformA(),
      Scenario::Accelerator);
  return r;
}

TEST(Evaluate, MainClassSelection) {
  const platform::Platform a = platform::platformA();
  EXPECT_EQ(mainClassFor(a, Scenario::Accelerator), a.slowestClass());
  EXPECT_EQ(mainClassFor(a, Scenario::SlowerCores), a.fastestClass());
}

TEST(Evaluate, AcceleratorScenarioShape) {
  const EvalResult& r = firResultA();
  EXPECT_GT(r.sequentialSeconds, 0.0);
  EXPECT_NEAR(r.theoreticalLimit, 13.5, 1e-9);
  // Heterogeneous beats homogeneous, both beat sequential, nothing beats
  // the theoretical limit (paper Figure 7(a)).
  EXPECT_GT(r.heterogeneousSpeedup, r.homogeneousSpeedup);
  EXPECT_GT(r.heterogeneousSpeedup, 4.0);
  EXPECT_LT(r.heterogeneousSpeedup, r.theoreticalLimit);
  EXPECT_GT(r.homogeneousSpeedup, 1.5);
}

TEST(Evaluate, StatsShapeMatchesTableI) {
  const EvalResult& r = firResultA();
  EXPECT_GT(r.heterogeneousStats.numIlps, r.homogeneousStats.numIlps);
  EXPECT_GT(r.heterogeneousStats.numVars, r.homogeneousStats.numVars);
  EXPECT_GT(r.heterogeneousStats.numConstraints, r.homogeneousStats.numConstraints);
}

TEST(Evaluate, SlowerCoresScenarioShape) {
  static const EvalResult r = evaluateBenchmark(
      "fir_256", benchsuite::find("fir_256").source, platform::platformA(),
      Scenario::SlowerCores);
  EXPECT_NEAR(r.theoreticalLimit, 2.7, 1e-9);
  // Paper Figure 7(b): heterogeneous > 1x, homogeneous around or below 1x,
  // heterogeneous strictly better.
  EXPECT_GE(r.heterogeneousSpeedup, 1.0);
  EXPECT_GT(r.heterogeneousSpeedup, r.homogeneousSpeedup);
  EXPECT_LT(r.homogeneousSpeedup, 1.6);
  EXPECT_LT(r.heterogeneousSpeedup, r.theoreticalLimit + 1e-9);
}

TEST(Evaluate, WarmArtifactCacheReproducesColdNumbers) {
  const auto& bench = benchsuite::find("fir_256");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "hetpar-evaluate-cache-test").string();
  std::filesystem::remove_all(dir);

  EvalOptions options;
  options.artifactCache = std::make_shared<ArtifactCache>(dir);
  const EvalResult cold = evaluateBenchmark(bench.name, bench.source, platform::platformA(),
                                            Scenario::Accelerator, options);
  EXPECT_EQ(options.artifactCache->stats().hits, 0u);
  EXPECT_EQ(options.artifactCache->stats().misses, 1u);

  const EvalResult warm = evaluateBenchmark(bench.name, bench.source, platform::platformA(),
                                            Scenario::Accelerator, options);
  EXPECT_EQ(options.artifactCache->stats().hits, 1u);
  // The cache hit must be outcome-invisible: identical simulated numbers.
  EXPECT_EQ(warm.sequentialSeconds, cold.sequentialSeconds);
  EXPECT_EQ(warm.heterogeneousSeconds, cold.heterogeneousSeconds);
  EXPECT_EQ(warm.homogeneousSeconds, cold.homogeneousSeconds);
  // ...except the statistics, which honestly report that nothing was solved.
  EXPECT_EQ(warm.heterogeneousStats.numIlps, 0);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hetpar::pipeline
